// Chaos-engine microbench: what the fault model costs and what it does to
// robustness. Emits machine-readable JSON (default BENCH_fault.json) with
//   - robustness: SignGuard-vs-SignFlip best accuracy plus the fault
//     accounting (churn, deadline misses, lost uplinks, retry overhead)
//     across the fault-profile presets (none/lan/wan/flaky/mobile),
//   - engine: raw chaos-engine query throughput — the per-(client, round)
//     overhead the trainer pays for uplink simulation and churn lookups,
//   - checkpoint: save/restore throughput of the crash-consistent
//     checkpoint path (checksummed + fsync'd atomic writes),
//   - recovery: a kill-at-round-r + resume run compared bitwise against
//     the uninterrupted run via per-round aggregate checksums.
//
// Usage:
//   ./fault_microbench [--json=BENCH_fault.json] [--rounds=16]
//
// The recovery self-check is always on: any divergence between the
// resumed and uninterrupted traces makes the binary exit non-zero, so CI
// cannot stay green while crash recovery silently breaks.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "data/synth_image.h"
#include "fl/chaos.h"
#include "fl/checkpoint.h"
#include "fl/experiment.h"
#include "fl/trainer.h"
#include "nn/models.h"

namespace signguard {
namespace {

using bench::Stopwatch;

struct Entry {
  std::string group, name;
  double value = 0.0;
  std::string unit;
};

std::vector<Entry> entries;

void record(const std::string& group, const std::string& name, double value,
            const std::string& unit) {
  entries.push_back({group, name, value, unit});
  std::printf("%-12s %-28s %14.4f %s\n", group.c_str(), name.c_str(), value,
              unit.c_str());
}

void write_json(const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"signguard/fault_microbench/v1\",\n"
      << "  \"threads\": " << common::thread_count() << ",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << "    {\"group\": \"" << e.group << "\", \"name\": \"" << e.name
        << "\", \"value\": " << obs::StopwatchReporter::json_num(e.value)
        << ", \"unit\": \"" << e.unit << "\"}"
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
}

data::TrainTest bench_data() {
  data::SynthImageConfig cfg;
  cfg.train_per_class = 60;
  cfg.test_per_class = 20;
  cfg.seed = 5;
  return data::make_synth_image(cfg);
}

fl::TrainerConfig base_config(std::size_t rounds) {
  fl::TrainerConfig cfg;
  cfg.n_clients = 24;
  cfg.byzantine_frac = 0.25;
  cfg.rounds = rounds;
  cfg.batch_size = 8;
  cfg.lr = 0.2;
  cfg.eval_every = 4;
  cfg.eval_max_samples = 0;
  cfg.seed = 3;
  return cfg;
}

fl::ModelFactory bench_model() {
  return [](std::uint64_t seed) { return nn::make_mlp(256, 16, 10, seed); };
}

// ---- accuracy & fault accounting across the profile presets ----------------

void bench_robustness(const data::TrainTest& tt, std::size_t rounds) {
  for (const auto& name : fl::fault_profile_names()) {
    fl::TrainerConfig cfg = base_config(rounds);
    cfg.chaos.profile = fl::fault_profile_from_name(name);
    if (!cfg.chaos.profile.none()) {
      // A deadline four medians out and mild churn: faults visible every
      // few rounds without starving the aggregator outright.
      cfg.chaos.deadline_ms = 4.0 * cfg.chaos.profile.latency_median_ms;
      cfg.chaos.churn_leave_prob = 0.05;
    }
    fl::Trainer trainer(tt, bench_model(), cfg);
    auto attack = fl::make_attack("SignFlip");
    Stopwatch w;
    const fl::TrainingResult res =
        trainer.run(*attack, fl::make_aggregator("SignGuard", 1), nullptr);
    const double wall_ms = w.seconds() * 1e3;
    record("robustness", name + "_best_acc", res.best_accuracy, "%");
    record("robustness", name + "_wall", wall_ms, "ms");
    if (cfg.chaos.active()) {
      const double transmitted = double(rounds * cfg.n_clients) -
                                 double(res.churned_total);
      record("robustness", name + "_churned", double(res.churned_total),
             "client-rounds");
      record("robustness", name + "_deadline_misses",
             double(res.deadline_miss_total), "uplinks");
      record("robustness", name + "_lost", double(res.lost_uplink_total),
             "uplinks");
      if (transmitted > 0)
        record("robustness", name + "_attempts_per_uplink",
               double(res.uplink_attempts) / transmitted, "x");
      record("robustness", name + "_sim_round_time",
             res.sim_time_ms / double(rounds), "ms");
    }
  }
}

// ---- raw engine query throughput -------------------------------------------

void bench_engine() {
  fl::ChaosConfig cfg;
  cfg.profile = fl::fault_profile_from_name("wan");
  cfg.deadline_ms = 500.0;
  cfg.churn_leave_prob = 0.1;
  constexpr std::size_t kClients = 4096;
  constexpr std::size_t kQueries = 200'000;
  fl::ChaosEngine engine(kClients, cfg, 99);
  volatile double sink = 0.0;
  Stopwatch wu;
  for (std::size_t i = 0; i < kQueries; ++i)
    sink = sink +
           engine.simulate_uplink(i % kClients, i / kClients).elapsed_ms;
  record("engine", "simulate_uplink", double(kQueries) / wu.seconds() / 1e6,
         "Mqueries/s");
  // Churn lookups hit the lazily built per-client schedule cache after
  // the first touch — this measures the steady-state (cached) rate.
  std::size_t up = 0;
  Stopwatch wc;
  for (std::size_t i = 0; i < kQueries; ++i)
    up += engine.client_up(i % kClients, i / kClients) ? 1 : 0;
  record("engine", "client_up", double(kQueries) / wc.seconds() / 1e6,
         "Mqueries/s");
  record("engine", "client_up_fraction", double(up) / double(kQueries), "");
}

// ---- checkpoint file I/O ---------------------------------------------------

void bench_checkpoint_io() {
  const std::string path = "/tmp/signguard_fault_bench.ckpt";
  // A payload the size of a mid-size trainer checkpoint (model parameters
  // dominate): 32 MB of non-trivial bytes.
  std::string payload(std::size_t(32) << 20, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = char((i * 2654435761u) >> 24);
  const double mb = double(payload.size()) / double(1u << 20);
  Stopwatch ws;
  fl::write_checkpoint_file(path, payload);
  const double save_s = ws.seconds();
  Stopwatch wr;
  const std::string back = fl::read_checkpoint_file(path);
  const double load_s = wr.seconds();
  std::remove(path.c_str());
  if (back != payload) {
    std::fprintf(stderr, "FAIL: checkpoint payload round-trip mismatch\n");
    std::exit(1);
  }
  record("checkpoint", "save", mb / save_s, "MB/s");
  record("checkpoint", "restore", mb / load_s, "MB/s");
}

// ---- kill + resume self-check ----------------------------------------------

std::vector<std::uint64_t> run_traced(fl::TrainerConfig cfg,
                                      const data::TrainTest& tt) {
  std::vector<std::uint64_t> checksums;
  const auto observer = [&](const fl::RoundObservation& obs) {
    checksums.push_back(obs.aggregate.empty()
                            ? 0
                            : common::fnv1a64(obs.aggregate.data(),
                                              obs.aggregate.size() *
                                                  sizeof(float)));
  };
  fl::Trainer trainer(tt, bench_model(), cfg);
  auto attack = fl::make_attack("LIE");
  trainer.run(*attack, fl::make_aggregator("SignGuard", 1), observer);
  return checksums;
}

bool bench_recovery(const data::TrainTest& tt, std::size_t rounds) {
  const std::string path = "/tmp/signguard_fault_bench_resume.ckpt";
  std::remove(path.c_str());
  fl::TrainerConfig cfg = base_config(rounds);
  cfg.chaos.profile = fl::fault_profile_from_name("flaky");
  cfg.chaos.deadline_ms = 300.0;
  cfg.chaos.churn_leave_prob = 0.1;

  const std::vector<std::uint64_t> ref = run_traced(cfg, tt);

  const std::size_t kill_at = rounds / 2;
  const std::size_t ckpt_every = 3;
  cfg.checkpoint.path = path;
  cfg.checkpoint.every = ckpt_every;
  cfg.checkpoint.halt_after_round = kill_at;
  Stopwatch wk;
  const std::vector<std::uint64_t> killed = run_traced(cfg, tt);
  const double killed_ms = wk.seconds() * 1e3;
  cfg.checkpoint.halt_after_round = 0;
  cfg.checkpoint.resume = true;
  Stopwatch wr;
  const std::vector<std::uint64_t> resumed = run_traced(cfg, tt);
  const double resumed_ms = wr.seconds() * 1e3;
  std::remove(path.c_str());

  // The durable state at the kill is the last every-boundary before it
  // (the halt does not force a save); stitch the durable prefix of the
  // killed run to the resumed tail and compare against the reference.
  const std::size_t durable = (kill_at / ckpt_every) * ckpt_every;
  std::vector<std::uint64_t> stitched(killed.begin(),
                                      killed.begin() + durable);
  stitched.insert(stitched.end(), resumed.begin(), resumed.end());
  const bool ok = stitched == ref && killed.size() == kill_at &&
                  resumed.size() == rounds - durable;
  record("recovery", "kill_run_wall", killed_ms, "ms");
  record("recovery", "resume_run_wall", resumed_ms, "ms");
  record("recovery", "bitwise_identical", ok ? 1.0 : 0.0, "");
  if (!ok)
    std::fprintf(stderr,
                 "FAIL: kill+resume trace diverges from the uninterrupted "
                 "run (ref %zu rounds, stitched %zu)\n",
                 ref.size(), stitched.size());
  return ok;
}

}  // namespace
}  // namespace signguard

int main(int argc, char** argv) {
  using namespace signguard;
  std::printf("== fault_microbench ==\n");
  // Single-thread: the numbers (and BENCH_fault.json) stay comparable
  // across machines with different core counts, and determinism is
  // separately pinned across thread counts by tests/test_chaos.cc.
  common::set_thread_count(1);
  const std::string json_path =
      bench::arg_value(argc, argv, "json", "BENCH_fault.json");
  const std::size_t rounds = std::strtoull(
      bench::arg_value(argc, argv, "rounds", "16").c_str(), nullptr, 10);

  const data::TrainTest tt = bench_data();
  bench_robustness(tt, rounds);
  bench_engine();
  bench_checkpoint_io();
  const bool ok = bench_recovery(tt, rounds);
  write_json(json_path);
  return ok ? 0 : 1;
}
