// Observability-overhead microbench: pins the cost of the obs subsystem
// itself (src/obs) so the instrumentation can stay compiled into every
// hot path. Three prices are measured:
//
//   primitives  per-call cost of obs::count() and Span construction on
//               the disabled path (no registry attached, SIGNGUARD_TRACE
//               off: one TLS load / one relaxed atomic load plus a
//               branch) and on the enabled paths (sharded atomic
//               fetch_add; ring-buffer span record),
//   round       wall time of the paper's flagship aggregation round
//               (SignGuard, n=256 clients, d=1M) with obs off, with
//               counters attached, and with counters + tracing,
//   bound       the analytic disabled-path overhead of that round: the
//               number of count()/Span sites it executes (from
//               MetricsRegistry::ops() and a traced event count) times
//               the measured disabled per-call cost, as a percentage of
//               the round — an upper bound that, unlike the raw round
//               deltas, is not washed out by run-to-run noise.
//
// Usage:
//   ./obs_microbench [--json=BENCH_obs.json] [--min-ms=200]
//                    [--n=256] [--d=1000000]
//                    [--assert-disabled-overhead-pct=2]
//
// --assert-disabled-overhead-pct makes the binary exit non-zero unless
// the analytic disabled-path bound stays at or below the given percent —
// CI pins the "observability is free when off" contract with it.
//
// Timed on ONE pool thread (like aggregate_microbench): the committed
// numbers compare instrumentation structure, not core counts.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/gradient_matrix.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/signguard.h"
#include "obs/trace.h"

namespace signguard {
namespace {

obs::StopwatchReporter timer(200.0);

struct Entry {
  std::string group, name;
  double value = 0.0;
  std::string unit;
};

std::vector<Entry> entries;

void record(const std::string& group, const std::string& name, double value,
            const std::string& unit) {
  entries.push_back({group, name, value, unit});
  std::printf("%-12s %-28s %14.4f %s\n", group.c_str(), name.c_str(), value,
              unit.c_str());
}

void write_json(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"schema\": \"signguard/obs_microbench/v1\",\n"
      << "  \"threads\": 1,\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << "    {\"group\": \"" << e.group << "\", \"name\": \"" << e.name
        << "\", \"value\": " << obs::StopwatchReporter::json_num(e.value)
        << ", \"unit\": \"" << e.unit << "\"}"
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
}

// Same deterministic fill as aggregate_microbench: inputs must not
// depend on RNG streaming speed.
common::GradientMatrix make_matrix(std::size_t n, std::size_t d) {
  common::GradientMatrix m(n, d);
  common::parallel_for(n, [&](std::size_t i) {
    const auto row = m.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      const std::uint64_t h = common::splitmix64(i * d + j);
      row[j] = static_cast<float>((double(h >> 11) * 0x1.0p-53 - 0.5) * 2.0 +
                                  0.1);
    }
  });
  return m;
}

// Per-call cost of `op` in nanoseconds, amortized over a batch large
// enough that the stopwatch quantization vanishes.
template <class F>
double per_call_ns(F&& op) {
  constexpr int kBatch = 4096;
  const double usec = timer.time_usec([&] {
    for (int i = 0; i < kBatch; ++i) op();
  });
  return usec * 1e3 / kBatch;
}

}  // namespace
}  // namespace signguard

int main(int argc, char** argv) {
  using namespace signguard;
  bench::banner("obs_microbench", fl::scale_from_env());
  timer.set_min_ms(std::stod(bench::arg_value(argc, argv, "min-ms", "200")));
  const std::string json_path =
      bench::arg_value(argc, argv, "json", "BENCH_obs.json");
  const std::string assert_arg =
      bench::arg_value(argc, argv, "assert-disabled-overhead-pct", "");
  const std::size_t n = std::strtoull(
      bench::arg_value(argc, argv, "n", "256").c_str(), nullptr, 10);
  const std::size_t d = std::strtoull(
      bench::arg_value(argc, argv, "d", "1000000").c_str(), nullptr, 10);

  common::set_thread_count(1);
  obs::set_trace_enabled(false);

  // --- primitives ------------------------------------------------------
  volatile std::uint64_t sink = 0;
  const double count_off_ns = per_call_ns([&] {
    obs::count(obs::Counter::kGemmFlops, 1);
    sink = sink + 1;  // the loop body must not be empty after inlining
  });
  record("primitives", "count_disabled", count_off_ns, "ns/call");
  const double span_off_ns = per_call_ns([&] {
    obs::Span span("bench/probe");
    sink = sink + 1;
  });
  record("primitives", "span_disabled", span_off_ns, "ns/call");

  {
    obs::MetricsRegistry reg(false);
    obs::ScopedMetrics scope(&reg);
    reg.begin_round(0);
    const double count_on_ns = per_call_ns([&] {
      obs::count(obs::Counter::kGemmFlops, 1);
    });
    reg.end_round();
    record("primitives", "count_enabled", count_on_ns, "ns/call");
  }
  {
    obs::set_trace_enabled(true);
    const double span_on_ns = per_call_ns([&] {
      obs::Span span("bench/probe");
    });
    obs::set_trace_enabled(false);
    obs::trace_reset();
    record("primitives", "span_enabled", span_on_ns, "ns/call");
    record("primitives", "spans_per_sec_enabled", 1e9 / span_on_ns, "/s");
  }

  // --- the SignGuard round, three ways ---------------------------------
  const auto m = make_matrix(n, d);
  core::SignGuard sg(core::plain_config(7));
  Rng rng(7);
  agg::GarContext ctx;
  ctx.assumed_byzantine = n / 5;
  ctx.rng = &rng;
  const auto round = [&] {
    auto out = sg.aggregate(m, ctx);
    if (out.empty()) std::abort();
  };

  const double round_off_usec = timer.time_usec(round);
  record("round", "signguard_obs_off", round_off_usec, "us");

  // How many obs call sites the round executes: count() invocations from
  // the registry's op counter, spans from a traced run.
  std::uint64_t ops_per_round = 0;
  std::uint64_t spans_per_round = 0;
  double round_counters_usec = 0.0;
  {
    obs::MetricsRegistry reg(false);
    obs::ScopedMetrics scope(&reg);
    reg.begin_round(0);
    round();
    ops_per_round = reg.ops();
    reg.end_round();
    reg.begin_round(1);
    round_counters_usec = timer.time_usec(round);
    reg.end_round();
  }
  record("round", "signguard_counters_on", round_counters_usec, "us");
  {
    obs::set_trace_enabled(true);
    obs::trace_reset();
    round();
    for (const auto& lane : obs::trace_snapshot())
      spans_per_round += lane.size();
    const double round_traced_usec = timer.time_usec(round);
    obs::set_trace_enabled(false);
    obs::trace_reset();
    record("round", "signguard_trace_on", round_traced_usec, "us");
  }
  record("round", "count_sites_per_round", double(ops_per_round), "calls");
  record("round", "span_sites_per_round", double(spans_per_round), "calls");

  // --- the disabled-path bound -----------------------------------------
  const double bound_pct = 100.0 *
                           (double(ops_per_round) * count_off_ns +
                            double(spans_per_round) * span_off_ns) /
                           (round_off_usec * 1e3);
  record("bound", "disabled_overhead", bound_pct, "%");
  // The measured delta: honest but noisy, reported, never asserted.
  record("bound", "counters_on_delta",
         100.0 * (round_counters_usec - round_off_usec) / round_off_usec,
         "%");

  write_json(json_path);

  if (!assert_arg.empty()) {
    const double need = std::stod(assert_arg);
    if (bound_pct > need) {
      std::fprintf(stderr,
                   "FAIL: disabled-path overhead bound %.4f%% > %.2f%%\n",
                   bound_pct, need);
      return 1;
    }
    std::printf("disabled-path overhead bound %.4f%% <= %.2f%%\n", bound_pct,
                need);
  }
  return 0;
}
