// Fig. 2 reproduction: sign statistics (positive / zero / negative
// fractions) of the averaged honest gradient vs a virtual LIE-crafted
// gradient (Eq. 1, z = 0.3), tracked over training iterations for the
// CNN (MNIST-like) and the residual ColorCNN (CIFAR-like, the paper's
// ResNet-18 slot).
//
// Paper reference (Fig. 2): honest gradients keep a stable sign profile;
// the LIE gradient's positive fraction collapses while its negative
// fraction inflates — the signal SignGuard's filter exploits. For the
// ResNet-18-like model the honest profile is near 50/50.

#include "attacks/lie.h"
#include "bench_common.h"
#include "common/gradient_stats.h"
#include "common/table.h"
#include "common/vecops.h"
#include "fl/trainer.h"

namespace {

using namespace signguard;

void run_workload(fl::WorkloadKind kind, const char* title,
                  fl::Scale scale) {
  fl::Workload w = fl::make_workload(kind, fl::ModelProfile::kPaper, scale);
  // Fig. 2 needs the iteration trace, not final accuracy: fewer rounds,
  // paper-profile (CNN / residual) models, no attack interference.
  w.config.rounds = scale == fl::Scale::kSmoke
                        ? 20
                        : (scale == fl::Scale::kFull ? 200 : 60);
  w.config.eval_every = w.config.rounds;  // skip intermediate evals
  w.config.byzantine_frac = 0.0;

  TextTable table({"iteration", "honest pos", "honest zero", "honest neg",
                   "LIE pos", "LIE zero", "LIE neg"});

  // Observe gradients by wrapping an attack that records sign statistics
  // of the honest average and of a virtual LIE vector each round.
  class Probe : public attacks::Attack {
   public:
    explicit Probe(TextTable& table, std::size_t stride)
        : table_(table), stride_(stride) {}
    std::vector<std::vector<float>> craft(
        const attacks::AttackContext& ctx) override {
      if (ctx.round % stride_ == 0) {
        const auto avg = vec::mean_of(ctx.benign_grads);
        const SignStats honest = sign_statistics(avg);
        const auto lie =
            attacks::LieAttack::craft_vector(ctx.benign_grads, 0.3);
        const SignStats mal = sign_statistics(lie);
        table_.add_row({std::to_string(ctx.round),
                        TextTable::fmt(honest.pos, 3),
                        TextTable::fmt(honest.zero, 3),
                        TextTable::fmt(honest.neg, 3),
                        TextTable::fmt(mal.pos, 3),
                        TextTable::fmt(mal.zero, 3),
                        TextTable::fmt(mal.neg, 3)});
      }
      std::vector<std::vector<float>> out;
      out.reserve(ctx.byz_honest_grads.size());
      for (const attacks::GradientView g : ctx.byz_honest_grads)
        out.emplace_back(g.begin(), g.end());
      return out;
    }
    std::string name() const override { return "Fig2Probe"; }

   private:
    TextTable& table_;
    std::size_t stride_;
  };

  fl::Trainer trainer(w.data, w.model_factory, w.config);
  Probe probe(table, std::max<std::size_t>(1, w.config.rounds / 10));
  trainer.run(probe, fl::make_aggregator("Mean"));

  std::printf("[%s]\n%s\n", title, table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  const auto scale = fl::scale_from_env();
  bench::banner("Fig. 2: sign statistics of honest vs LIE gradients", scale);
  bench::Stopwatch total;
  run_workload(fl::WorkloadKind::kMnistLike, "CNN on MNIST-like (Fig. 2a/2b)",
               scale);
  run_workload(fl::WorkloadKind::kCifarLike,
               "Residual CNN on CIFAR-like (Fig. 2c/2d)", scale);
  bench::report_wall(total);
  return 0;
}
