// Hierarchical-aggregation microbench: the sharded tree at cohort sizes
// the flat path cannot run. Three tiers, all single-pool-thread timed so
// the committed numbers compare tree structure, not core counts:
//
//   1. flat vs sharded at n=1024, d=100k — the largest cell the flat
//      O(n^2 d) Multi-Krum still affords (8.3 s in BENCH_aggregate.json),
//      so the tree's speedup is measured, not projected;
//   2. end-to-end ShardedAggregator rounds at n=4096, d=100k, S=16 —
//      including a sign1 wire cell routed through comm::decode_shard_into
//      (per-shard decode of exactly the shard's uplinks, never the flat
//      round matrix);
//   3. a streaming n=65536, d=32768, S=256 robust-aggregation round with
//      20% Byzantine clients: rows are generated shard by shard, each
//      shard filtered by its own Multi-Krum, partials merged at the root
//      — the flat n x d matrix (8.6 GB) and the flat packed pairwise
//      triangle (8.6 GB, 7.0e13 multiply-adds) never exist. The round's
//      output is checked against the honest mean (robustness, not just
//      completion) before it is recorded.
//
// A flat-infeasibility estimate group records what tier 3 would cost
// without the tree, projected from the measured per-shard throughput.
// A thread-invariance group re-runs one sharded aggregate under pool
// sizes {1, 4} and fails the binary unless the outputs are bitwise
// identical — the determinism contract from src/aggregators/sharded.h,
// enforced where the bench numbers are produced.
//
// Usage:
//   ./shard_microbench [--json=BENCH_shard.json] [--min-ms=200]
//                      [--max-clients=65536] [--gars=Multi-Krum,...]
//                      [--assert-multikrum-4096-sec=SEC]
//
// --max-clients=4096 lets CI skip the streaming tier (minutes of wall
// clock) while still exercising every code path; the committed JSON is
// generated locally with the full grid. --assert-multikrum-4096-sec
// makes the binary exit non-zero when the n=4096, S=16 Multi-Krum round
// exceeds the cap — the CI guard that sharding keeps the flagship
// defense inside a round budget the flat path already cannot meet.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "aggregators/sharded.h"
#include "bench_common.h"
#include "comm/shard.h"
#include "comm/wire.h"
#include "common/gradient_matrix.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/shard_stats.h"
#include "common/vecops.h"
#include "fl/experiment.h"

namespace signguard {
namespace {

using bench::Stopwatch;

// Expensive cells naturally run once; cheap ones repeat until the
// budget is spent.
obs::StopwatchReporter timer(200.0);

struct Entry {
  std::string group, name;
  std::size_t n = 0, d = 0, shards = 0;
  double usec = 0.0;
  double rate = 0.0;  // rounds/s, speedup factor, or the estimate value
};

std::vector<Entry> entries;

void record(const std::string& group, const std::string& name, std::size_t n,
            std::size_t d, std::size_t shards, double usec, double rate) {
  entries.push_back({group, name, n, d, shards, usec, rate});
  std::printf("%-10s %-22s n=%-6zu d=%-7zu S=%-4zu %14.1f us  %12.4g\n",
              group.c_str(), name.c_str(), n, d, shards, usec, rate);
}

// Deterministic cheap fill, identical to aggregate_microbench: the value
// of global client `i`, coordinate `j` depends only on (i, j), so the
// streaming tier can regenerate any shard's rows without a flat matrix.
// Clients with id % 5 == 4 are Byzantine and send -10x their honest row
// — large-norm collinear poison the per-shard Multi-Krum must drop.
float client_value(std::size_t i, std::size_t j, std::size_t d) {
  const std::uint64_t h = common::splitmix64(i * d + j);
  const float v = static_cast<float>(
      (double(h >> 11) * 0x1.0p-53 - 0.5) * 2.0 + 0.1);
  return i % 5 == 4 ? -10.0f * v : v;
}

void fill_rows(common::GradientMatrix& m, std::size_t first_client) {
  const std::size_t d = m.cols();
  common::parallel_for(m.rows(), [&](std::size_t i) {
    const auto row = m.row(i);
    for (std::size_t j = 0; j < d; ++j)
      row[j] = client_value(first_client + i, j, d);
  });
}

std::uint64_t checksum(std::span<const float> v) {
  return common::fnv1a64(v.data(), v.size() * sizeof(float),
                         common::kFnvOffsetBasis);
}

agg::ShardedAggregator make_sharded(const std::string& gar,
                                    std::size_t shards) {
  agg::ShardedConfig cfg;
  cfg.shards = shards;
  return agg::ShardedAggregator(
      [gar](std::uint64_t s) { return fl::make_aggregator(gar, s); }, 0x5d17,
      cfg);
}

// One sharded aggregate on a fresh scenario-stream Rng each run, so
// repeats are identical work.
double time_sharded(agg::ShardedAggregator& sharded,
                    const common::GradientMatrix& m, std::size_t byz) {
  return timer.time_usec([&] {
    Rng rng(7);
    agg::GarContext ctx;
    ctx.assumed_byzantine = byz;
    ctx.rng = &rng;
    auto out = sharded.aggregate(m, ctx);
    if (out.empty()) std::abort();
  });
}

// --- tier 3: streaming n=65536 round, no flat matrix ever ---
// Returns the round's wall seconds; records generate/aggregate splits
// and verifies the root output against the honest mean.
bool run_streaming_round(std::size_t n, std::size_t d, std::size_t S) {
  const std::size_t per = n / S;
  const std::size_t byz_s = per / 5 + 1;  // id % 5 == 4 pattern, rounded up

  common::GradientMatrix shard_mat(per, d);
  common::GradientMatrix shard_aggs(S, d);
  common::ShardPartial root;
  common::ShardPartial honest_ref;  // flat honest mean, for the check
  std::vector<std::size_t> survivors(S, 0);

  double gen_sec = 0.0, agg_sec = 0.0;
  Stopwatch total;
  const std::uint64_t shard_root = Rng(7).engine()();
  for (std::size_t s = 0; s < S; ++s) {
    Stopwatch gw;
    fill_rows(shard_mat, s * per);
    for (std::size_t i = 0; i < per; ++i)
      if ((s * per + i) % 5 != 4)
        common::accumulate_row(honest_ref, shard_mat.row(i), 1.0);
    gen_sec += gw.seconds();

    Stopwatch aw;
    auto rule = fl::make_aggregator("Multi-Krum",
                                    common::splitmix64(0x5d17 ^ s));
    Rng shard_rng = Rng::stream(shard_root, s);
    agg::GarContext ctx;
    ctx.assumed_byzantine = byz_s;
    ctx.rng = &shard_rng;
    const auto out = rule->aggregate(shard_mat, ctx);
    const auto sel = rule->last_selected();
    survivors[s] = sel.empty() ? per : sel.size();
    std::copy(out.begin(), out.end(), shard_aggs.row(s).begin());
    common::accumulate_stats(root, shard_mat, {});
    root.survivors += survivors[s];
    common::accumulate_row(root, shard_aggs.row(s), double(survivors[s]));
    agg_sec += aw.seconds();
  }
  const auto merged = common::finalize_mean(root);
  const double total_sec = total.seconds();

  // Robustness, not just completion: the survivor-weighted root mean
  // must sit on the honest mean, far below the -10x poison scale.
  const auto honest_mean = common::finalize_mean(honest_ref);
  const double err = vec::dist(merged, honest_mean);
  const double ref = vec::norm(honest_mean);
  std::printf("stream     n=%zu: honest-mean dist %.3f (|honest| %.3f), "
              "%zu/%zu survivors\n",
              n, err, ref, root.survivors, root.clients);
  if (!(err < 0.25 * ref)) {
    std::fprintf(stderr,
                 "FAIL: streaming n=%zu round is not robust: dist %.3f vs "
                 "honest norm %.3f\n",
                 n, err, ref);
    return false;
  }
  record("stream", "generate", n, d, S, gen_sec * 1e6, double(n) / gen_sec);
  record("stream", "multikrum_round", n, d, S, agg_sec * 1e6,
         double(n) / agg_sec);
  record("stream", "round_total", n, d, S, total_sec * 1e6,
         1.0 / total_sec);

  // What the flat path would need for the same round: the pairwise block
  // alone is (n^2/2) d multiply-adds and an (n^2/2) float triangle, both
  // projected from the measured per-shard throughput (each shard is the
  // same kernel at n/S rows, so flat = S^2 x the sharded pairwise work).
  const double flat_madds = 0.5 * double(n) * double(n) * double(d);
  const double shard_madds = double(S) * 0.5 * double(per) * double(per) *
                             double(d);
  const double flat_proj_sec = agg_sec * flat_madds / shard_madds;
  record("estimate", "flat_pairwise_madds", n, d, 1, 0.0, flat_madds);
  record("estimate", "flat_triangle_gb", n, d, 1, 0.0,
         0.5 * double(n) * double(n) * 4.0 / 1e9);
  record("estimate", "flat_matrix_gb", n, d, 1, 0.0,
         double(n) * double(d) * 4.0 / 1e9);
  record("estimate", "flat_projected_sec", n, d, 1, flat_proj_sec * 1e6,
         flat_proj_sec);
  return true;
}

void write_json(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"schema\": \"signguard/shard_microbench/v1\",\n"
      << "  \"threads\": 1,\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << "    {\"group\": \"" << e.group << "\", \"name\": \"" << e.name
        << "\", \"n\": " << e.n << ", \"d\": " << e.d
        << ", \"shards\": " << e.shards
        << ", \"usec\": " << obs::StopwatchReporter::json_num(e.usec)
        << ", \"rate\": " << obs::StopwatchReporter::json_num(e.rate) << "}"
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
}

}  // namespace
}  // namespace signguard

int main(int argc, char** argv) {
  using namespace signguard;
  bench::banner("shard_microbench", fl::scale_from_env());
  timer.set_min_ms(
      std::stod(bench::arg_value(argc, argv, "min-ms", "200")));
  const std::string json_path =
      bench::arg_value(argc, argv, "json", "BENCH_shard.json");
  const std::string assert_arg =
      bench::arg_value(argc, argv, "assert-multikrum-4096-sec", "");
  const auto gar_filter = bench::arg_values(argc, argv, "gars");
  const std::size_t max_clients = std::strtoull(
      bench::arg_value(argc, argv, "max-clients", "65536").c_str(), nullptr,
      10);

  // Every timed cell runs on one pool thread (see the header comment).
  common::set_thread_count(1);

  // --- tier 1: flat vs sharded where flat is still affordable ---
  {
    const std::size_t n = 1024, d = 100'000, S = 16;
    common::GradientMatrix m(n, d);
    fill_rows(m, 0);
    if (bench::keep(gar_filter, "Multi-Krum")) {
      auto flat = fl::make_aggregator("Multi-Krum");
      const double flat_usec = timer.time_usec([&] {
        Rng rng(7);
        agg::GarContext ctx;
        ctx.assumed_byzantine = n / 5 + 1;
        ctx.rng = &rng;
        auto out = flat->aggregate(m, ctx);
        if (out.empty()) std::abort();
      });
      record("flatvs", "multikrum_flat", n, d, 1, flat_usec,
             1e6 / flat_usec);
      auto sharded = make_sharded("Multi-Krum", S);
      const double shard_usec = time_sharded(sharded, m, n / 5 + 1);
      record("flatvs", "multikrum_sharded", n, d, S, shard_usec,
             1e6 / shard_usec);
      record("flatvs", "speedup", n, d, S, shard_usec,
             flat_usec / shard_usec);
    }
  }

  // --- tier 2: end-to-end sharded rounds at n=4096 ---
  double multikrum_4096_sec = 0.0;
  {
    const std::size_t n = 4096, d = 100'000, S = 16;
    common::GradientMatrix m(n, d);
    fill_rows(m, 0);
    for (const char* gar : {"Multi-Krum", "SignGuard", "Median"}) {
      if (!bench::keep(gar_filter, gar)) continue;
      auto sharded = make_sharded(gar, S);
      const double usec = time_sharded(sharded, m, n / 5 + 1);
      record("sharded", gar, n, d, S, usec, 1e6 / usec);
      if (std::string(gar) == "Multi-Krum") multikrum_4096_sec = usec / 1e6;
    }

    // Wire cell: encode the round once (sign1), then route each shard's
    // uplinks through comm::decode_shard_into — the per-shard decode path
    // the 65536-client deployment would use instead of a flat decode.
    comm::CompressionSpec spec;
    spec.codec = comm::CodecKind::kSign1;
    const auto codec = comm::make_codec(spec);
    std::vector<std::vector<std::uint8_t>> uplinks(n);
    std::vector<comm::CodecScratch> scratch;
    const double enc_usec = timer.time_usec([&] {
      common::parallel_for(n, [&](std::size_t i) {
        comm::encode_into(*codec, m.row(i), uplinks[i], scratch);
      });
    });
    record("wire", "sign1_encode_round", n, d, 1, enc_usec, 1e6 / enc_usec);

    std::vector<std::size_t> ids;
    common::GradientMatrix shard_mat;
    const std::size_t per = n / S;
    const double dec_usec = timer.time_usec([&] {
      std::size_t rejected = 0;
      for (std::size_t s = 0; s < S; ++s) {
        ids.clear();
        for (std::size_t i = 0; i < per; ++i) ids.push_back(s * per + i);
        rejected +=
            comm::decode_shard_into(*codec, uplinks, ids, d, shard_mat)
                .rejected;
      }
      if (rejected != 0) std::abort();  // honest round: all must decode
    });
    record("wire", "sign1_decode_shards", n, d, S, dec_usec,
           1e6 / dec_usec);
  }

  // --- tier 3: the cohort size the flat path cannot run ---
  bool ok = true;
  if (max_clients >= 65536) {
    ok = run_streaming_round(65536, 32768, 256);
  } else {
    std::printf("stream     skipped (--max-clients=%zu < 65536)\n",
                max_clients);
  }

  // --- determinism: one sharded aggregate across pool sizes {1, 4} ---
  {
    const std::size_t n = 512, d = 4096, S = 8;
    common::GradientMatrix m(n, d);
    fill_rows(m, 0);
    std::uint64_t sums[2] = {0, 0};
    const std::size_t pools[2] = {1, 4};
    for (int t = 0; t < 2; ++t) {
      common::set_thread_count(pools[t]);
      auto sharded = make_sharded("Multi-Krum", S);
      Rng rng(7);
      agg::GarContext ctx;
      ctx.assumed_byzantine = n / 5 + 1;
      ctx.rng = &rng;
      sums[t] = checksum(sharded.aggregate(m, ctx));
    }
    common::set_thread_count(1);
    if (sums[0] != sums[1]) {
      std::fprintf(stderr,
                   "FAIL: sharded aggregate differs across pool sizes "
                   "(%016llx vs %016llx)\n",
                   (unsigned long long)sums[0], (unsigned long long)sums[1]);
      ok = false;
    }
    record("invariance", "threads_1_vs_4", n, d, S, 0.0,
           sums[0] == sums[1] ? 1.0 : 0.0);
  }

  write_json(json_path);

  if (!assert_arg.empty()) {
    const double cap = std::stod(assert_arg);
    if (multikrum_4096_sec <= 0.0 || multikrum_4096_sec > cap) {
      std::fprintf(stderr,
                   "FAIL: sharded Multi-Krum n=4096 round took %.2fs > "
                   "cap %.2fs (or did not run)\n",
                   multikrum_4096_sec, cap);
      return 1;
    }
    std::printf("multikrum n=4096 sharded round %.2fs <= cap %.2fs\n",
                multikrum_4096_sec, cap);
  }
  return ok ? 0 : 1;
}
