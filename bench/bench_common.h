#pragma once
// Shared plumbing for the paper-experiment bench binaries: scale banner,
// simple argv filters (--dataset=, --defense=, --attack=) so individual
// rows/cells can be re-run in isolation, and wall-clock reporting.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "fl/experiment.h"

namespace signguard::bench {

// Parses "--key=value" occurrences of `key` from argv; empty = no filter.
inline std::vector<std::string> arg_values(int argc, char** argv,
                                           const std::string& key) {
  std::vector<std::string> out;
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) out.push_back(arg.substr(prefix.size()));
  }
  return out;
}

inline bool keep(const std::vector<std::string>& filter,
                 const std::string& value) {
  if (filter.empty()) return true;
  for (const auto& f : filter)
    if (f == value) return true;
  return false;
}

// Last "--key=value" occurrence, or `fallback` when absent.
inline std::string arg_value(int argc, char** argv, const std::string& key,
                             const std::string& fallback = "") {
  const auto all = arg_values(argc, argv, key);
  return all.empty() ? fallback : all.back();
}

// Bare "--key" flag (no value).
inline bool has_flag(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 1; i < argc; ++i)
    if (flag == argv[i]) return true;
  return false;
}

// Splits "a,b,c" on commas, dropping empty tokens (so "a,,b," is
// {"a","b"} and a stray trailing comma cannot create a phantom entry).
inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t comma = s.find(',', begin);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > begin) out.push_back(s.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

inline void banner(const char* experiment, fl::Scale scale) {
  std::printf("== %s ==\n", experiment);
  std::printf("%s\n\n", fl::runtime_summary(scale).c_str());
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace signguard::bench
