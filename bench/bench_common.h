#pragma once
// Shared plumbing for the paper-experiment bench binaries: scale banner,
// simple argv filters (--dataset=, --defense=, --attack=) so individual
// rows/cells can be re-run in isolation, and wall-clock reporting.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "fl/experiment.h"

namespace signguard::bench {

// Parses "--key=value" occurrences of `key` from argv; empty = no filter.
inline std::vector<std::string> arg_values(int argc, char** argv,
                                           const std::string& key) {
  std::vector<std::string> out;
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) out.push_back(arg.substr(prefix.size()));
  }
  return out;
}

inline bool keep(const std::vector<std::string>& filter,
                 const std::string& value) {
  if (filter.empty()) return true;
  for (const auto& f : filter)
    if (f == value) return true;
  return false;
}

inline void banner(const char* experiment, fl::Scale scale) {
  std::printf("== %s ==\n", experiment);
  std::printf("%s\n\n", fl::runtime_summary(scale).c_str());
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace signguard::bench
