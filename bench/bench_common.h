#pragma once
// Shared plumbing for the paper-experiment bench binaries: scale banner,
// simple argv filters (--dataset=, --defense=, --attack=) so individual
// rows/cells can be re-run in isolation, and wall-clock reporting.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/format.h"
#include "fl/experiment.h"

namespace signguard::bench {

// Parses "--key=value" occurrences of `key` from argv; empty = no filter.
inline std::vector<std::string> arg_values(int argc, char** argv,
                                           const std::string& key) {
  std::vector<std::string> out;
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) out.push_back(arg.substr(prefix.size()));
  }
  return out;
}

inline bool keep(const std::vector<std::string>& filter,
                 const std::string& value) {
  if (filter.empty()) return true;
  for (const auto& f : filter)
    if (f == value) return true;
  return false;
}

// Last "--key=value" occurrence, or `fallback` when absent.
inline std::string arg_value(int argc, char** argv, const std::string& key,
                             const std::string& fallback = "") {
  const auto all = arg_values(argc, argv, key);
  return all.empty() ? fallback : all.back();
}

// Bare "--key" flag (no value).
inline bool has_flag(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 1; i < argc; ++i)
    if (flag == argv[i]) return true;
  return false;
}

// Splits "a,b,c" on commas, dropping empty tokens (so "a,,b," is
// {"a","b"} and a stray trailing comma cannot create a phantom entry).
inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t comma = s.find(',', begin);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > begin) out.push_back(s.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

inline void banner(const char* experiment, fl::Scale scale) {
  std::printf("== %s ==\n", experiment);
  std::printf("%s\n\n", fl::runtime_summary(scale).c_str());
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// The standard closing line of the paper-table binaries.
inline void report_wall(const Stopwatch& w) {
  std::printf("total wall time: %.1fs\n", w.seconds());
}

}  // namespace signguard::bench

namespace signguard::obs {

// Shared best-of-repeats timing harness for the microbench binaries
// (previously each one carried its own time_usec copy). After `warmup`
// unmeasured runs, repeats batches of `batch` ops until `min_ms` of
// budget is spent, keeping the fastest per-op batch average — expensive
// ops naturally get one measurement, cheap ones repeat until scheduler
// noise cannot dominate. Wall time only; the deterministic work-counter
// plane lives in src/obs/metrics.h.
class StopwatchReporter {
 public:
  explicit StopwatchReporter(double min_ms, std::size_t warmup = 0,
                             std::size_t batch = 1)
      : min_ms_(min_ms), warmup_(warmup), batch_(batch < 1 ? 1 : batch) {}

  // Best single-op wall time in microseconds.
  template <class F>
  double time_usec(F&& op) const {
    for (std::size_t i = 0; i < warmup_; ++i) op();
    double best = 1e300;
    bench::Stopwatch budget;
    do {
      bench::Stopwatch w;
      for (std::size_t i = 0; i < batch_; ++i) op();
      best = std::min(best, w.seconds() * 1e6 / double(batch_));
    } while (budget.seconds() * 1e3 < min_ms_);
    return best;
  }

  double min_ms() const { return min_ms_; }
  void set_min_ms(double min_ms) { min_ms_ = min_ms; }

  // Canonical JSON number rendering for reported measurements (%.9g) —
  // the bench write_json emitters all go through this.
  static std::string json_num(double v) { return common::fmt_g9(v); }

 private:
  double min_ms_;
  std::size_t warmup_;
  std::size_t batch_;
};

}  // namespace signguard::obs
