// Fig. 6 reproduction: model accuracy under {Sign-flip, LIE, ByzMean}
// at three non-IID skew levels s in {0.3, 0.5, 0.8} for {TrMean,
// Multi-Krum, Bulyan, DnC, SignGuard-Sim}, on the Fashion-like and
// CIFAR-like workloads (sort-and-partition scheme of §VI-B).
//
// Paper reference (Fig. 6): SignGuard-Sim keeps high accuracy at every
// skew; TrMean/Multi-Krum fail under LIE and ByzMean, Bulyan fails under
// LIE on the CIFAR task, DnC only handles sign-flip reliably.

#include "bench_common.h"
#include "common/table.h"
#include "fl/trainer.h"

namespace {

using namespace signguard;

void run_workload(fl::WorkloadKind kind, const char* title, fl::Scale scale,
                  const std::vector<std::string>& attack_filter) {
  fl::Workload w = fl::make_workload(kind, fl::ModelProfile::kGrid, scale);
  w.config.noniid = true;

  const std::vector<double> skews = {0.3, 0.5, 0.8};
  const std::vector<std::string> defenses = {"TrMean", "Multi-Krum",
                                             "Bulyan", "DnC",
                                             "SignGuard-Sim"};
  const std::vector<std::string> attacks = {"SignFlip", "LIE", "ByzMean"};

  for (const auto& attack_name : attacks) {
    if (!bench::keep(attack_filter, attack_name)) continue;
    std::vector<std::string> header = {"GAR \\ s"};
    for (const double s : skews)
      header.push_back("s=" + TextTable::fmt(s, 1));
    TextTable table(header);
    for (const auto& defense : defenses) {
      std::vector<std::string> row = {defense};
      for (const double s : skews) {
        fl::Workload ws = w;
        ws.config.noniid_s = s;
        fl::Trainer trainer(ws.data, ws.model_factory, ws.config);
        auto attack = fl::make_attack(attack_name);
        const auto res = trainer.run(*attack, fl::make_aggregator(defense));
        row.push_back(TextTable::fmt(res.best_accuracy));
      }
      table.add_row(std::move(row));
    }
    std::printf("[%s / %s] accuracy (%%) vs non-IID skew:\n%s\n", title,
                attack_name.c_str(), table.to_string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace signguard;
  const auto scale = fl::scale_from_env();
  bench::banner("Fig. 6: non-IID robustness", scale);
  const auto dataset_filter = bench::arg_values(argc, argv, "dataset");
  const auto attack_filter = bench::arg_values(argc, argv, "attack");

  bench::Stopwatch total;
  if (bench::keep(dataset_filter, "Fashion-like"))
    run_workload(fl::WorkloadKind::kFashionLike, "Fashion-like (Fig. 6a)",
                 scale, attack_filter);
  if (bench::keep(dataset_filter, "CIFAR-like"))
    run_workload(fl::WorkloadKind::kCifarLike, "CIFAR-like (Fig. 6b)",
                 scale, attack_filter);
  bench::report_wall(total);
  return 0;
}
