// Large-cohort aggregation microbench: per-GAR server-side latency on the
// cohort grid n x {50, 256, 1024} x d x {100k, 1M} — the ROADMAP's
// "millions of users" direction stresses exactly the O(n^2 d) pairwise
// and O(n d log n) coordinate-statistic blocks the Table I defenses pay
// every round — plus Gram-vs-direct speedups for the pairwise backends.
// Emits machine-readable JSON (default BENCH_aggregate.json) for the
// bench trajectory and CI artifact upload.
//
// Usage:
//   ./aggregate_microbench [--json=BENCH_aggregate.json] [--min-ms=200]
//                          [--gars=Mean,Multi-Krum] [--max-n=N] [--max-d=D]
//                          [--assert-krum-speedup=3.0]
//
// --assert-krum-speedup makes the binary exit non-zero unless the Gram
// backend beats the direct pair loops on the Multi-Krum n=256, d=1M
// aggregate by at least the given factor — CI uses it as a smoke guard
// against a silent fallback to the scalar pairwise path.
//
// Everything is timed on ONE pool thread (set_thread_count(1)): the
// committed numbers compare kernel structure (GEMM tiling vs scalar
// loops, column panels vs strided walks), not core counts, and stay
// comparable across hosts. Shapes a rule cannot afford are skipped
// loudly (printed, never silently dropped): the O(n^2 d) and
// O(iters * n d) rules skip the 1024 x 1M cell, which only the O(n d)
// family (Mean/TrMean/Median/SignGuard) runs.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/gradient_matrix.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/vecops.h"
#include "fl/experiment.h"

namespace signguard {
namespace {

// Expensive ops (seconds per run at the large shapes) naturally get one
// measurement; cheap ones repeat until the budget is spent.
obs::StopwatchReporter timer(200.0);

struct Entry {
  std::string group, name, backend;
  std::size_t n = 0, d = 0;
  double usec = 0.0;
  double rate = 0.0;  // runs/s, or the speedup factor for group=speedup
};

std::vector<Entry> entries;

void record(const std::string& group, const std::string& name,
            const std::string& backend, std::size_t n, std::size_t d,
            double usec, double rate) {
  entries.push_back({group, name, backend, n, d, usec, rate});
  std::printf("%-8s %-14s %-14s n=%-5zu d=%-8zu %12.1f us  %10.3f\n",
              group.c_str(), name.c_str(), backend.c_str(), n, d, usec,
              rate);
}

// Deterministic cheap fill (splitmix64 of the flat index): benchmark
// inputs must not depend on how fast the RNG can stream a 4 GB matrix.
common::GradientMatrix make_matrix(std::size_t n, std::size_t d) {
  common::GradientMatrix m(n, d);
  common::parallel_for(n, [&](std::size_t i) {
    const auto row = m.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      const std::uint64_t h = common::splitmix64(i * d + j);
      row[j] = static_cast<float>((double(h >> 11) * 0x1.0p-53 - 0.5) * 2.0 +
                                  0.1);
    }
  });
  return m;
}

const char* backend_name(vec::DistBackend b) {
  return b == vec::DistBackend::kGram ? "gram" : "direct";
}

// Which rules can afford which cells. The 1024 x 1M cell (4 GB, ~10^12
// scalar flops for a pairwise block) is reserved for the O(n d) family.
bool runs_at(const std::string& gar, std::size_t n, std::size_t d) {
  const bool huge = n * d > std::size_t{256} * 1'000'000;
  if (!huge) return true;
  return gar == "Mean" || gar == "TrMean" || gar == "Median" ||
         gar == "SignGuard";
}

double time_gar(const std::string& name, const common::GradientMatrix& m) {
  auto gar = fl::make_aggregator(name);
  Rng rng(7);
  agg::GarContext ctx;
  ctx.assumed_byzantine = m.rows() / 5;
  ctx.rng = &rng;
  return timer.time_usec([&] {
    auto out = gar->aggregate(m, ctx);
    // The result feeds the entry count so the call cannot be elided.
    if (out.empty()) std::abort();
  });
}

std::string shape_tag(std::size_t n, std::size_t d) {
  return std::to_string(n) + "x" + (d >= 1'000'000 ? "1M" : "100k");
}

void write_json(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"schema\": \"signguard/aggregate_microbench/v1\",\n"
      << "  \"threads\": 1,\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << "    {\"group\": \"" << e.group << "\", \"name\": \"" << e.name
        << "\", \"backend\": \"" << e.backend << "\", \"n\": " << e.n
        << ", \"d\": " << e.d
        << ", \"usec\": " << obs::StopwatchReporter::json_num(e.usec)
        << ", \"rate\": " << obs::StopwatchReporter::json_num(e.rate) << "}"
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
}

}  // namespace
}  // namespace signguard

int main(int argc, char** argv) {
  using namespace signguard;
  bench::banner("aggregate_microbench", fl::scale_from_env());
  timer.set_min_ms(std::stod(bench::arg_value(argc, argv, "min-ms", "200")));
  const std::string json_path =
      bench::arg_value(argc, argv, "json", "BENCH_aggregate.json");
  const std::string assert_arg =
      bench::arg_value(argc, argv, "assert-krum-speedup", "");
  const auto gar_filter = bench::arg_values(argc, argv, "gars");
  const std::size_t max_n = std::strtoull(
      bench::arg_value(argc, argv, "max-n", "1024").c_str(), nullptr, 10);
  const std::size_t max_d = std::strtoull(
      bench::arg_value(argc, argv, "max-d", "1000000").c_str(), nullptr, 10);

  static const std::vector<std::string> kGars = {
      "Mean",       "TrMean", "Median", "GeoMed",
      "Multi-Krum", "Bulyan", "DnC",    "SignGuard"};
  static const std::size_t kCohorts[] = {50, 256, 1024};
  static const std::size_t kDims[] = {100'000, 1'000'000};

  // One pool thread for every measurement (see the header comment).
  common::set_thread_count(1);

  double krum_speedup_256x1m = 0.0;

  // Shape-outer so at most one cohort matrix is resident (the 1024 x 1M
  // cell alone is 4 GB).
  for (const std::size_t d : kDims) {
    if (d > max_d) continue;
    for (const std::size_t n : kCohorts) {
      if (n > max_n) continue;
      const auto m = make_matrix(n, d);
      // Gram-vs-direct cells: the pairwise kernel everywhere it is
      // affordable, plus the full Multi-Krum aggregate (the paper's
      // flagship O(n^2 d) defense) — n=256, d=1M is the asserted pair.
      const bool speedup_cell =
          (d == 100'000 && n <= 256) || (d == 1'000'000 && n == 256);

      // Per-GAR timings on the default (Gram) backend.
      vec::set_dist_backend(vec::DistBackend::kGram);
      for (const auto& gar : kGars) {
        if (!bench::keep(gar_filter, gar)) continue;
        if (gar == "Multi-Krum" && speedup_cell)
          continue;  // timed on both backends below
        if (!runs_at(gar, n, d)) {
          std::printf("%-8s %-14s skipped at n=%zu d=%zu (cost cap)\n",
                      "gar", gar.c_str(), n, d);
          continue;
        }
        const double usec = time_gar(gar, m);
        record("gar", gar, "gram", n, d, usec, 1e6 / usec);
      }

      if (speedup_cell && bench::keep(gar_filter, "Multi-Krum")) {
        double usec_by_backend[2] = {0.0, 0.0};
        for (const auto backend :
             {vec::DistBackend::kDirect, vec::DistBackend::kGram}) {
          vec::set_dist_backend(backend);
          const double kernel_usec = timer.time_usec([&] {
            auto d2 = vec::pairwise_dist2_packed(m);
            if (d2.empty()) std::abort();
          });
          record("kernel", "pairwise_dist2", backend_name(backend), n, d,
                 kernel_usec, 1e6 / kernel_usec);
          const double gar_usec = time_gar("Multi-Krum", m);
          record("gar", "Multi-Krum", backend_name(backend), n, d, gar_usec,
                 1e6 / gar_usec);
          usec_by_backend[backend == vec::DistBackend::kGram ? 1 : 0] =
              gar_usec;
        }
        vec::set_dist_backend(vec::DistBackend::kGram);
        const double speedup = usec_by_backend[0] / usec_by_backend[1];
        record("speedup", "krum_" + shape_tag(n, d), "gram_vs_direct", n, d,
               usec_by_backend[1], speedup);
        if (n == 256 && d == 1'000'000) krum_speedup_256x1m = speedup;
      }
    }
  }

  write_json(json_path);

  if (!assert_arg.empty()) {
    const double need = std::stod(assert_arg);
    if (krum_speedup_256x1m < need) {
      std::fprintf(stderr,
                   "FAIL: Gram Multi-Krum speedup %.2fx < required %.2fx at "
                   "n=256, d=1M — Gram path regressed or silently fell back\n",
                   krum_speedup_256x1m, need);
      return 1;
    }
    std::printf("krum speedup %.2fx >= required %.2fx\n",
                krum_speedup_256x1m, need);
  }
  return 0;
}
