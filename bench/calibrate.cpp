// Internal calibration tool (not a paper experiment): sweeps learning
// rates and round budgets per workload to pick trainer defaults.

#include <cstdio>

#include "fl/experiment.h"

int main() {
  using namespace signguard;
  for (const auto kind :
       {fl::WorkloadKind::kMnistLike, fl::WorkloadKind::kFashionLike,
        fl::WorkloadKind::kCifarLike, fl::WorkloadKind::kAgNewsLike}) {
    fl::Workload w =
        fl::make_workload(kind, fl::ModelProfile::kGrid, fl::Scale::kDefault);
    for (const double lr : {0.05, 0.1, 0.2}) {
      w.config.lr = lr;
      w.config.rounds = 200;
      w.config.eval_every = 50;
      fl::Trainer trainer(w.data, w.model_factory, w.config);
      auto attack = fl::make_attack("NoAttack");
      const auto res = trainer.run(*attack, fl::make_aggregator("Mean"));
      std::printf("%s lr=%.2f:", w.name.c_str(), lr);
      for (const auto& r : res.history)
        std::printf("  r%zu=%.1f", r.round + 1, r.test_accuracy);
      std::printf("  best=%.1f\n", res.best_accuracy);
    }
  }
  return 0;
}
