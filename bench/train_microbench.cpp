// NN training microbench: per-layer kernel latency and end-to-end
// client-round throughput for the MLP / CNN / RNN workloads, on both GEMM
// backends (tiled vs the plain-loop reference — the pre-GEMM scalar
// path). Emits machine-readable JSON (default BENCH_train.json) for the
// bench trajectory and CI artifact upload.
//
// Usage:
//   ./train_microbench [--json=BENCH_train.json] [--min-ms=80]
//                      [--assert-cnn-speedup=1.2]
//
// --assert-cnn-speedup makes the binary exit non-zero unless the tiled
// backend beats the reference backend on CNN end-to-end client-round
// throughput by at least the given factor — CI uses it as a smoke guard
// against a silent fallback to the reference loops.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "fl/client.h"
#include "fl/experiment.h"
#include "nn/conv.h"
#include "nn/gemm.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "nn/rnn.h"
#include "nn/workspace.h"

namespace signguard {
namespace {

// Warm up once (first-touch allocation, cache fill), then keep the
// fastest batch-of-8 average.
obs::StopwatchReporter timer(80.0, /*warmup=*/1, /*batch=*/8);

struct Entry {
  std::string group, name, backend;
  double usec = 0.0;
  double per_sec = 0.0;
};

std::vector<Entry> entries;

void record(const std::string& group, const std::string& name,
            nn::GemmBackend backend, double usec) {
  Entry e;
  e.group = group;
  e.name = name;
  e.backend = backend == nn::GemmBackend::kTiled ? "tiled" : "ref";
  e.usec = usec;
  e.per_sec = 1e6 / usec;
  entries.push_back(e);
  std::printf("%-14s %-24s %-6s %10.1f us  %10.1f /s\n", group.c_str(),
              name.c_str(), e.backend.c_str(), usec, e.per_sec);
}

void bench_layer(const std::string& name, nn::Layer& layer,
                 const nn::Tensor& x) {
  nn::Workspace ws;
  nn::Tensor y, gy, gx;
  for (const auto backend :
       {nn::GemmBackend::kReference, nn::GemmBackend::kTiled}) {
    nn::set_gemm_backend(backend);
    ws.begin_pass();
    layer.forward(x, y, ws);
    gy.resize(y.shape());
    for (std::size_t i = 0; i < gy.numel(); ++i)
      gy[i] = float(i % 7) * 0.1f - 0.3f;
    record("layer", name + "_fwd", backend, timer.time_usec([&] {
             ws.begin_pass();
             layer.forward(x, y, ws);
           }));
    // Rewind the scratch cursor each iteration so repeated backwards
    // replay onto the same workspace slots instead of growing the arena
    // (which would fold allocation cost into the timing).
    const std::size_t after_fwd = ws.mark();
    record("layer", name + "_bwd", backend, timer.time_usec([&] {
             ws.rewind(after_fwd);
             layer.zero_grad();
             layer.backward(gy, gx, ws);
           }));
  }
}

void bench_layers() {
  Rng rng(1);
  {
    nn::Linear lin(256, 128, rng);
    nn::Tensor x({32, 256});
    for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
    bench_layer("linear_32x256x128", lin, x);
  }
  {
    nn::Conv2d conv(6, 12, rng);
    nn::Tensor x({8, 6, 16, 16});
    for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
    bench_layer("conv_8x6x16x16_oc12", conv, x);
  }
  {
    nn::RnnTanh rnn(16, 32, rng, nn::RnnOutput::kMeanPool);
    nn::Tensor x({8, 16, 16});
    for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
    bench_layer("rnn_8x16_e16_h32", rnn, x);
  }
}

void bench_gemm() {
  Rng rng(2);
  for (const std::size_t d : {128ul, 256ul}) {
    const std::vector<float> a = rng.normal_vector(d * d);
    const std::vector<float> b = rng.normal_vector(d * d);
    std::vector<float> c(d * d, 0.0f);
    for (const auto backend :
         {nn::GemmBackend::kReference, nn::GemmBackend::kTiled}) {
      nn::set_gemm_backend(backend);
      const double usec = timer.time_usec([&] {
        nn::gemm_nn(d, d, d, a.data(), d, b.data(), d, c.data(), d, false);
      });
      Entry e;
      e.group = "gemm";
      e.name = "gemm_nn_" + std::to_string(d);
      e.backend = backend == nn::GemmBackend::kTiled ? "tiled" : "ref";
      e.usec = usec;
      e.per_sec = 2.0 * double(d) * d * d / (usec * 1e-6) / 1e9;  // GFLOP/s
      entries.push_back(e);
      std::printf("%-14s %-24s %-6s %10.1f us  %10.2f GFLOP/s\n", "gemm",
                  e.name.c_str(), e.backend.c_str(), usec, e.per_sec);
    }
  }
}

// End-to-end: one client-round = sample a batch, forward, loss, backward,
// flatten the gradient — exactly fl::Client::compute_gradient_into.
double bench_client_round(fl::Workload& w, nn::GemmBackend backend) {
  nn::set_gemm_backend(backend);
  nn::Model model = w.model_factory(13);
  std::vector<std::size_t> shard(w.data.train.size());
  for (std::size_t i = 0; i < shard.size(); ++i) shard[i] = i;
  fl::Client client(&w.data.train, std::move(shard), 17);
  std::vector<float> grad(model.parameter_count());
  const double usec = timer.time_usec([&] {
    client.compute_gradient_into(grad, model, w.config.batch_size,
                                 w.config.weight_decay, false);
  });
  return usec;
}

double bench_workload(const std::string& name, fl::WorkloadKind kind,
                      fl::ModelProfile profile) {
  fl::Workload w = fl::make_workload(kind, profile, fl::Scale::kSmoke);
  const double ref_usec = bench_client_round(w, nn::GemmBackend::kReference);
  record("client_round", name, nn::GemmBackend::kReference, ref_usec);
  const double tiled_usec = bench_client_round(w, nn::GemmBackend::kTiled);
  record("client_round", name, nn::GemmBackend::kTiled, tiled_usec);
  const double speedup = ref_usec / tiled_usec;
  std::printf("%-14s %-24s speedup %.2fx\n", "client_round", name.c_str(),
              speedup);
  Entry e;
  e.group = "speedup";
  e.name = name;
  e.backend = "tiled_vs_ref";
  e.usec = tiled_usec;
  e.per_sec = speedup;
  entries.push_back(e);
  return speedup;
}

void write_json(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"schema\": \"signguard/train_microbench/v1\",\n"
      << "  \"threads\": " << common::thread_count() << ",\n"
      << "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << "    {\"group\": \"" << e.group << "\", \"name\": \"" << e.name
        << "\", \"backend\": \"" << e.backend
        << "\", \"usec\": " << obs::StopwatchReporter::json_num(e.usec)
        << ", \"rate\": " << obs::StopwatchReporter::json_num(e.per_sec)
        << "}"
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
}

}  // namespace
}  // namespace signguard

int main(int argc, char** argv) {
  using namespace signguard;
  bench::banner("train_microbench", fl::scale_from_env());
  timer.set_min_ms(
      std::stod(bench::arg_value(argc, argv, "min-ms", "80")));
  const std::string json_path =
      bench::arg_value(argc, argv, "json", "BENCH_train.json");
  const std::string assert_arg =
      bench::arg_value(argc, argv, "assert-cnn-speedup", "");

  bench_gemm();
  bench_layers();
  const double mlp = bench_workload("mlp", fl::WorkloadKind::kMnistLike,
                                    fl::ModelProfile::kGrid);
  const double cnn = bench_workload("cnn", fl::WorkloadKind::kMnistLike,
                                    fl::ModelProfile::kPaper);
  const double rnn = bench_workload("rnn", fl::WorkloadKind::kAgNewsLike,
                                    fl::ModelProfile::kPaper);
  std::printf("\nend-to-end client-round speedups: mlp %.2fx  cnn %.2fx  "
              "rnn %.2fx\n",
              mlp, cnn, rnn);
  write_json(json_path);

  if (!assert_arg.empty()) {
    const double need = std::stod(assert_arg);
    if (cnn < need) {
      std::fprintf(stderr,
                   "FAIL: tiled CNN client-round speedup %.2fx < required "
                   "%.2fx — GEMM path regressed or silently fell back\n",
                   cnn, need);
      return 1;
    }
    std::printf("cnn speedup %.2fx >= required %.2fx\n", cnn, need);
  }
  return 0;
}
