// Table II reproduction: average selected rate of honest (H) and
// malicious (M) gradients for the three SignGuard variants under the five
// strong attacks, on the CIFAR-like workload (the paper uses ResNet-18 on
// CIFAR-10, whose near-balanced gradient signs make sign-flip the hard
// case — our ColorCnn/MLP stand-in shares that property).
//
// Paper reference (Table II): H ~ 0.69-0.97, M == 0 for everything except
// sign-flip, where plain SignGuard admits ~0.39 of malicious gradients.

#include "bench_common.h"
#include "common/table.h"
#include "fl/trainer.h"

int main(int argc, char** argv) {
  using namespace signguard;
  const auto scale = fl::scale_from_env();
  bench::banner(
      "Table II: honest/malicious selected rates (CIFAR-like workload)",
      scale);

  const auto attack_filter = bench::arg_values(argc, argv, "attack");

  fl::Workload w =
      fl::make_workload(fl::WorkloadKind::kCifarLike,
                        fl::ModelProfile::kGrid, scale);

  const std::vector<std::string> attacks = {"ByzMean", "SignFlip", "LIE",
                                            "MinMax", "MinSum"};
  const std::vector<std::string> variants = {"SignGuard", "SignGuard-Sim",
                                             "SignGuard-Dist"};

  std::vector<std::string> header = {"Attack"};
  for (const auto& v : variants) {
    header.push_back(v + " H");
    header.push_back(v + " M");
  }
  TextTable table(header);

  fl::Trainer trainer(w.data, w.model_factory, w.config);
  bench::Stopwatch total;
  for (const auto& attack_name : attacks) {
    if (!bench::keep(attack_filter, attack_name)) continue;
    std::vector<std::string> row = {attack_name};
    for (const auto& variant : variants) {
      auto attack = fl::make_attack(attack_name);
      const auto res = trainer.run(*attack, fl::make_aggregator(variant));
      row.push_back(TextTable::fmt(res.selection.honest_rate, 4));
      row.push_back(TextTable::fmt(res.selection.malicious_rate, 4));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::report_wall(total);
  return 0;
}
