// Table III reproduction: ablation of SignGuard-Sim's defensive
// components — norm thresholding, sign clustering, norm clipping — under
// Random, Reverse-with-scaling and LIE attacks on the CIFAR-like
// workload, IID.
//
// Paper reference (Table III): no single component handles all three
// attacks; clustering plus either norm control does.
//
// The reverse attack scales by the norm-filter upper bound R when
// thresholding/clipping is active (staying inside the admissible band)
// and by 100 otherwise — exactly the paper's §VI-C adversary.

#include "attacks/simple_attacks.h"
#include "bench_common.h"
#include "common/table.h"
#include "core/signguard.h"
#include "fl/trainer.h"

int main(int argc, char** argv) {
  using namespace signguard;
  const auto scale = fl::scale_from_env();
  bench::banner("Table III: SignGuard component ablation (CIFAR-like)",
                scale);
  (void)argc;
  (void)argv;

  fl::Workload w = fl::make_workload(fl::WorkloadKind::kCifarLike,
                                     fl::ModelProfile::kGrid, scale);

  struct Combo {
    bool threshold;
    bool cluster;
    bool clip;
  };
  const std::vector<Combo> combos = {
      {true, false, false}, {false, true, false}, {false, false, true},
      {true, true, false},  {false, true, true},  {true, true, true},
  };

  TextTable table(
      {"Thresholding", "Clustering", "Norm-Clip", "Random", "Reverse",
       "LIE"});

  fl::Trainer trainer(w.data, w.model_factory, w.config);
  bench::Stopwatch total;
  for (const auto& combo : combos) {
    auto make_variant = [&] {
      core::SignGuardConfig cfg = core::sim_config();
      cfg.enable_norm_filter = combo.threshold;
      cfg.enable_sign_cluster = combo.cluster;
      cfg.enable_norm_clipping = combo.clip;
      return std::make_unique<core::SignGuard>(cfg);
    };
    // Scaled reverse: r = R inside the band when any norm control is
    // active, r = 100 otherwise.
    const double r = (combo.threshold || combo.clip) ? 3.0 : 100.0;

    std::vector<std::string> row = {combo.threshold ? "x" : "",
                                    combo.cluster ? "x" : "",
                                    combo.clip ? "x" : ""};
    {
      attacks::RandomAttack attack(0.0, 0.5);
      row.push_back(
          TextTable::fmt(trainer.run(attack, make_variant()).best_accuracy));
    }
    {
      attacks::ReverseScalingAttack attack(r);
      row.push_back(
          TextTable::fmt(trainer.run(attack, make_variant()).best_accuracy));
    }
    {
      auto attack = fl::make_attack("LIE");
      row.push_back(
          TextTable::fmt(trainer.run(*attack, make_variant()).best_accuracy));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::report_wall(total);
  return 0;
}
