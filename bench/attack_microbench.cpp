// Adaptive-adversary microbench: what feedback-driven attackers do to
// each defense and what they cost. Emits machine-readable JSON (default
// BENCH_attack.json) with
//   - scoreboard: best accuracy per defense under static vs adaptive
//     Min-Max (attacks/adaptive.h) plus the no-attack baselines, the
//     headline being the adaptive gap — how many accuracy points the
//     feedback loop buys against the most breakable baseline GAR — and
//     SignGuard's worst case across the attacked cells,
//   - wirecraft: the same duel on a sign1 wire (attacks/wirecraft.h),
//     where every crafted payload is a codec fixed point,
//   - craft: attacker-side craft cost per round for the static attack
//     and each wrapper layer (adaptive, wirecraft, collude).
//
// Usage:
//   ./attack_microbench [--json=BENCH_attack.json] [--rounds=40]
//       [--assert-adaptive-gap=PTS] [--assert-signguard-worstcase-acc=PCT]
//
// The assert flags are the CI robustness smoke: the adaptive attacker
// must keep beating at least one baseline GAR by the given margin, and
// SignGuard's worst attacked cell must stay above the floor — the
// binary exits non-zero otherwise, so CI cannot stay green while either
// side of the arms race regresses.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "attacks/adaptive.h"
#include "attacks/minmax_minsum.h"
#include "attacks/wirecraft.h"
#include "bench_common.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "fl/sweep.h"

namespace signguard {
namespace {

using bench::Stopwatch;

struct Entry {
  std::string group, name;
  double value = 0.0;
  std::string unit;
};

std::vector<Entry> entries;

void record(const std::string& group, const std::string& name, double value,
            const std::string& unit) {
  entries.push_back({group, name, value, unit});
  std::printf("%-12s %-32s %14.4f %s\n", group.c_str(), name.c_str(), value,
              unit.c_str());
}

void write_json(const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"signguard/attack_microbench/v1\",\n"
      << "  \"threads\": " << common::thread_count() << ",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << "    {\"group\": \"" << e.group << "\", \"name\": \"" << e.name
        << "\", \"value\": " << obs::StopwatchReporter::json_num(e.value)
        << ", \"unit\": \"" << e.unit << "\"}"
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
}

// Every scenario below pins rounds and clients explicitly, so the
// numbers are scale-independent; the sweep engine supplies the rest of
// the bench config (MNIST-like grid model, byz=0.2, seed 7).
constexpr std::size_t kClients = 50;

std::vector<fl::ScenarioResult> run_cells(std::vector<fl::ScenarioSpec> specs) {
  fl::SweepOptions opts;
  opts.capture_rounds = false;
  return fl::run_sweep(std::move(specs), opts);
}

const fl::ScenarioResult& cell(const std::vector<fl::ScenarioResult>& results,
                               const std::string& attack,
                               const std::string& gar, bool adaptive,
                               bool wirecraft = false) {
  for (const auto& r : results)
    if (r.spec.attack == attack && r.spec.gar == gar &&
        r.spec.adaptive == adaptive && r.spec.wirecraft == wirecraft) {
      if (!r.error.empty()) {
        std::fprintf(stderr, "FAIL: %s errored: %s\n", r.spec.id().c_str(),
                     r.error.c_str());
        std::exit(1);
      }
      return r;
    }
  std::fprintf(stderr, "FAIL: missing cell %s/%s\n", attack.c_str(),
               gar.c_str());
  std::exit(1);
}

// ---- scoreboard: static vs adaptive Min-Max per defense --------------------

struct ScoreboardOutcome {
  double adaptive_gap = 0.0;          // max static-vs-adaptive gap, baselines
  double signguard_worstcase = 0.0;   // min over SignGuard attacked cells
  double signguard_noattack = 0.0;
};

ScoreboardOutcome bench_scoreboard(std::size_t rounds) {
  const std::vector<std::string> gars = {"TrMean", "Median", "Multi-Krum",
                                         "SignGuard"};
  fl::SweepGrid grid;
  grid.attacks = {"NoAttack", "MinMax"};
  grid.gars = gars;
  grid.adaptives = {false, true};
  grid.rounds = rounds;
  grid.n_clients = kClients;
  Stopwatch w;
  const auto results = run_cells(grid.expand());
  record("scoreboard", "wall", w.seconds(), "s");

  ScoreboardOutcome out;
  for (const auto& gar : gars) {
    const double clean = cell(results, "NoAttack", gar, false).best_accuracy;
    const double st = cell(results, "MinMax", gar, false).best_accuracy;
    const double ad = cell(results, "MinMax", gar, true).best_accuracy;
    record("scoreboard", gar + "_noattack", clean, "%");
    record("scoreboard", gar + "_static", st, "%");
    record("scoreboard", gar + "_adaptive", ad, "%");
    if (gar == "SignGuard") {
      out.signguard_noattack = clean;
      out.signguard_worstcase = std::min(st, ad);
    } else {
      out.adaptive_gap = std::max(out.adaptive_gap, st - ad);
    }
  }
  const auto& mk_ad = cell(results, "MinMax", "Multi-Krum", true);
  const auto& mk_st = cell(results, "MinMax", "Multi-Krum", false);
  record("scoreboard", "multikrum_malicious_pass_static",
         mk_st.malicious_pass_rate, "");
  record("scoreboard", "multikrum_malicious_pass_adaptive",
         mk_ad.malicious_pass_rate, "");
  record("scoreboard", "adaptive_gap", out.adaptive_gap, "pts");
  record("scoreboard", "signguard_worstcase_acc", out.signguard_worstcase,
         "%");
  record("scoreboard", "signguard_attack_delta",
         out.signguard_noattack - out.signguard_worstcase, "pts");
  return out;
}

// ---- wirecraft: the duel on a sign1 wire -----------------------------------

void bench_wirecraft(std::size_t rounds) {
  std::vector<fl::ScenarioSpec> specs;
  const auto add = [&](const char* attack, const char* gar, bool adaptive,
                       bool wirecraft) {
    fl::ScenarioSpec s;
    s.attack = attack;
    s.gar = gar;
    s.codec = "sign1";
    s.adaptive = adaptive;
    s.wirecraft = wirecraft;
    s.rounds = rounds;
    s.n_clients = kClients;
    specs.push_back(s);
  };
  add("NoAttack", "SignGuard", false, false);
  add("NoAttack", "Multi-Krum", false, false);
  for (const char* gar : {"Multi-Krum", "SignGuard"}) {
    add("MinMax", gar, false, false);
    add("MinMax", gar, true, false);
    add("MinMax", gar, true, true);
  }
  Stopwatch w;
  const auto results = run_cells(std::move(specs));
  record("wirecraft", "wall", w.seconds(), "s");
  for (const char* gar : {"Multi-Krum", "SignGuard"}) {
    const std::string g(gar);
    record("wirecraft", g + "_noattack",
           cell(results, "NoAttack", g, false).best_accuracy, "%");
    record("wirecraft", g + "_static",
           cell(results, "MinMax", g, false).best_accuracy, "%");
    record("wirecraft", g + "_adaptive",
           cell(results, "MinMax", g, true).best_accuracy, "%");
    record("wirecraft", g + "_adaptive_wirecraft",
           cell(results, "MinMax", g, true, true).best_accuracy, "%");
    // Wire-legality: a crafted uplink the decoder rejects would show up
    // here; the corpus property is separately pinned by tests/test_comm.
    record("wirecraft", g + "_crafted_decode_rejects",
           double(cell(results, "MinMax", g, true, true).decode_rejects),
           "uplinks");
  }
}

// ---- attacker-side craft cost ----------------------------------------------

void bench_craft_cost() {
  constexpr std::size_t kBenign = 36, kByz = 12, kDim = 8192, kReps = 20;
  Rng gen(41);
  std::vector<std::vector<float>> benign, byz;
  for (std::size_t i = 0; i < kBenign; ++i)
    benign.push_back(gen.normal_vector(kDim, 0.05, 1.0));
  for (std::size_t i = 0; i < kByz; ++i)
    byz.push_back(gen.normal_vector(kDim, 0.05, 1.0));

  comm::CompressionSpec sign1;
  sign1.codec = comm::CodecKind::kSign1;
  const auto wrap_adaptive = [] {
    return std::make_unique<attacks::AdaptiveAttack>(
        std::make_unique<attacks::MinMaxAttack>());
  };
  struct Case {
    const char* name;
    std::unique_ptr<attacks::Attack> attack;
  };
  Case cases[] = {
      {"minmax", std::make_unique<attacks::MinMaxAttack>()},
      {"adaptive_minmax", wrap_adaptive()},
      {"wirecraft_sign1_adaptive",
       std::make_unique<attacks::WirecraftAttack>(wrap_adaptive(), sign1)},
      {"collude_adaptive",
       std::make_unique<attacks::ChaosColludeAttack>(wrap_adaptive(), 99)},
  };
  for (Case& c : cases) {
    Rng rng(7);
    auto in = attacks::make_attack_input(benign, byz, kBenign + kByz, kByz,
                                         &rng);
    volatile float sink = 0.0f;
    Stopwatch w;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      in.ctx.round = rep;
      c.attack->begin_round(rep, rng);
      const auto rows = c.attack->craft(in.ctx);
      sink = sink + rows.front().front();
      // Close the loop so the adaptive layer pays its bookkeeping too.
      attacks::RoundFeedback fb;
      fb.round = rep;
      fb.participants = kBenign + kByz;
      fb.byzantine = kByz;
      fb.has_selection = true;
      fb.selected_byzantine = rep % 2 == 0 ? kByz : 0;
      c.attack->observe_round(fb);
    }
    record("craft", c.name, w.seconds() * 1e3 / double(kReps), "ms/round");
  }
}

}  // namespace
}  // namespace signguard

int main(int argc, char** argv) {
  using namespace signguard;
  std::printf("== attack_microbench ==\n");
  // Single-thread: the numbers (and BENCH_attack.json) stay comparable
  // across machines with different core counts; determinism across
  // thread counts is separately pinned by tests/test_adaptive.cc.
  common::set_thread_count(1);
  const std::string json_path =
      bench::arg_value(argc, argv, "json", "BENCH_attack.json");
  const std::size_t rounds = std::strtoull(
      bench::arg_value(argc, argv, "rounds", "40").c_str(), nullptr, 10);

  const ScoreboardOutcome sb = bench_scoreboard(rounds);
  bench_wirecraft(rounds);
  bench_craft_cost();
  write_json(json_path);

  bool ok = true;
  const std::string gap_floor =
      bench::arg_value(argc, argv, "assert-adaptive-gap");
  if (!gap_floor.empty() && sb.adaptive_gap < std::atof(gap_floor.c_str())) {
    std::fprintf(stderr,
                 "FAIL: adaptive gap %.2f pts < asserted floor %s — the "
                 "feedback loop no longer breaks any baseline GAR\n",
                 sb.adaptive_gap, gap_floor.c_str());
    ok = false;
  }
  const std::string acc_floor =
      bench::arg_value(argc, argv, "assert-signguard-worstcase-acc");
  if (!acc_floor.empty() &&
      sb.signguard_worstcase < std::atof(acc_floor.c_str())) {
    std::fprintf(stderr,
                 "FAIL: SignGuard worst-case accuracy %.2f%% < asserted "
                 "floor %s%% — the defense lost the arms race\n",
                 sb.signguard_worstcase, acc_floor.c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}
