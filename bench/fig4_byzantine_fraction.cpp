// Fig. 4 reproduction: attack impact (accuracy drop vs the no-attack,
// no-defense baseline — Definition 3) as the Byzantine fraction sweeps
// 10%..40%, for {Median, TrMean, Multi-Krum, DnC, SignGuard-Sim} under
// the five strong attacks, on (a) the Fashion-like and (b) the
// CIFAR-like workloads. The whole grid — baselines included — is one
// fl::run_sweep call, executed concurrently.
//
// Paper reference (Fig. 4): SignGuard-Sim's impact curve stays near zero
// at every fraction; the baselines degrade sharply as the fraction grows.

#include <map>

#include "bench_common.h"
#include "common/table.h"
#include "fl/metrics.h"
#include "fl/sweep.h"

namespace {

using namespace signguard;

const std::vector<double> kFractions = {0.1, 0.2, 0.3, 0.4};
const std::vector<std::string> kDefenses = {"Median", "TrMean", "Multi-Krum",
                                            "DnC", "SignGuard-Sim"};
const std::vector<std::string> kAttacks = {"ByzMean", "SignFlip", "LIE",
                                           "MinMax", "MinSum"};

}  // namespace

int main(int argc, char** argv) {
  using namespace signguard;
  const auto scale = fl::scale_from_env();
  bench::banner("Fig. 4: attack impact vs Byzantine fraction", scale);
  const auto dataset_filter = bench::arg_values(argc, argv, "dataset");
  const auto defense_filter = bench::arg_values(argc, argv, "defense");
  const auto attack_filter = bench::arg_values(argc, argv, "attack");

  const std::vector<fl::WorkloadKind> kinds = {fl::WorkloadKind::kFashionLike,
                                               fl::WorkloadKind::kCifarLike};

  std::vector<fl::ScenarioSpec> specs;
  for (const auto kind : kinds) {
    if (!bench::keep(dataset_filter, fl::workload_name(kind))) continue;
    // Baseline: no attack, plain mean, no Byzantine clients.
    fl::ScenarioSpec base;
    base.workload = kind;
    base.byzantine_frac = 0.0;
    specs.push_back(base);
    for (const auto& defense : kDefenses) {
      if (!bench::keep(defense_filter, defense)) continue;
      for (const auto& attack : kAttacks) {
        if (!bench::keep(attack_filter, attack)) continue;
        for (const double f : kFractions) {
          fl::ScenarioSpec s;
          s.workload = kind;
          s.gar = defense;
          s.attack = attack;
          s.byzantine_frac = f;
          specs.push_back(s);
        }
      }
    }
  }

  fl::SweepOptions opts;
  opts.scale = scale;
  opts.capture_rounds = false;
  opts.progress = [](std::size_t done, std::size_t total,
                     const fl::ScenarioResult& r) {
    std::fprintf(stderr, "[%zu/%zu] %s\n", done, total, r.spec.id().c_str());
  };

  bench::Stopwatch total;
  const auto results = fl::run_sweep(std::move(specs), opts);

  // Index by (workload, gar, attack, fraction).
  std::map<std::string, double> best;
  for (const auto& r : results)
    best[fl::workload_name(r.spec.workload) + "|" + r.spec.gar + "|" +
         r.spec.attack + "|" + TextTable::fmt(r.spec.byzantine_frac, 2)] =
        r.best_accuracy;

  for (const auto kind : kinds) {
    const std::string title = fl::workload_name(kind);
    if (!bench::keep(dataset_filter, title)) continue;
    const auto base_it =
        best.find(title + "|Mean|NoAttack|" + TextTable::fmt(0.0, 2));
    const double baseline = base_it == best.end() ? 0.0 : base_it->second;
    std::printf("[%s] baseline accuracy (no attack, Mean): %.2f%%\n",
                title.c_str(), baseline);
    for (const auto& defense : kDefenses) {
      if (!bench::keep(defense_filter, defense)) continue;
      std::vector<std::string> header = {"Attack \\ Byz%"};
      for (const double f : kFractions)
        header.push_back(TextTable::fmt(100.0 * f, 0) + "%");
      TextTable table(header);
      for (const auto& attack : kAttacks) {
        if (!bench::keep(attack_filter, attack)) continue;
        std::vector<std::string> row = {attack};
        for (const double f : kFractions) {
          const auto it = best.find(title + "|" + defense + "|" + attack +
                                    "|" + TextTable::fmt(f, 2));
          row.push_back(it == best.end()
                            ? "-"
                            : TextTable::fmt(
                                  fl::attack_impact(baseline, it->second)));
        }
        table.add_row(std::move(row));
      }
      std::printf("\n[%s / %s] attack impact (accuracy drop, %%):\n%s",
                  title.c_str(), defense.c_str(), table.to_string().c_str());
    }
    std::printf("\n");
  }
  bench::report_wall(total);
  return 0;
}
