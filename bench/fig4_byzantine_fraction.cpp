// Fig. 4 reproduction: attack impact (accuracy drop vs the no-attack,
// no-defense baseline — Definition 3) as the Byzantine fraction sweeps
// 10%..40%, for {Median, TrMean, Multi-Krum, DnC, SignGuard-Sim} under
// the five strong attacks, on (a) the Fashion-like and (b) the
// CIFAR-like workloads.
//
// Paper reference (Fig. 4): SignGuard-Sim's impact curve stays near zero
// at every fraction; the baselines degrade sharply as the fraction grows.

#include "bench_common.h"
#include "common/table.h"
#include "fl/trainer.h"

namespace {

using namespace signguard;

void run_workload(fl::WorkloadKind kind, const char* title, fl::Scale scale,
                  const std::vector<std::string>& defense_filter,
                  const std::vector<std::string>& attack_filter) {
  fl::Workload w = fl::make_workload(kind, fl::ModelProfile::kGrid, scale);

  const std::vector<double> fractions = {0.1, 0.2, 0.3, 0.4};
  const std::vector<std::string> defenses = {"Median", "TrMean",
                                             "Multi-Krum", "DnC",
                                             "SignGuard-Sim"};
  const std::vector<std::string> attacks = {"ByzMean", "SignFlip", "LIE",
                                            "MinMax", "MinSum"};

  // Baseline: no attack, plain mean, no Byzantine clients.
  fl::Workload base = w;
  base.config.byzantine_frac = 0.0;
  fl::Trainer base_trainer(base.data, base.model_factory, base.config);
  auto no_attack = fl::make_attack("NoAttack");
  const double baseline =
      base_trainer.run(*no_attack, fl::make_aggregator("Mean"))
          .best_accuracy;
  std::printf("[%s] baseline accuracy (no attack, Mean): %.2f%%\n", title,
              baseline);

  for (const auto& defense : defenses) {
    if (!bench::keep(defense_filter, defense)) continue;
    std::vector<std::string> header = {"Attack \\ Byz%"};
    for (const double f : fractions)
      header.push_back(TextTable::fmt(100.0 * f, 0) + "%");
    TextTable table(header);
    for (const auto& attack_name : attacks) {
      if (!bench::keep(attack_filter, attack_name)) continue;
      std::vector<std::string> row = {attack_name};
      for (const double f : fractions) {
        fl::Workload wf = w;
        wf.config.byzantine_frac = f;
        fl::Trainer trainer(wf.data, wf.model_factory, wf.config);
        auto attack = fl::make_attack(attack_name);
        const auto res = trainer.run(*attack, fl::make_aggregator(defense));
        row.push_back(
            TextTable::fmt(fl::attack_impact(baseline, res.best_accuracy)));
      }
      table.add_row(std::move(row));
    }
    std::printf("\n[%s / %s] attack impact (accuracy drop, %%):\n%s", title,
                defense.c_str(), table.to_string().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace signguard;
  const auto scale = fl::scale_from_env();
  bench::banner("Fig. 4: attack impact vs Byzantine fraction", scale);
  const auto dataset_filter = bench::arg_values(argc, argv, "dataset");
  const auto defense_filter = bench::arg_values(argc, argv, "defense");
  const auto attack_filter = bench::arg_values(argc, argv, "attack");

  bench::Stopwatch total;
  if (bench::keep(dataset_filter, "Fashion-like"))
    run_workload(fl::WorkloadKind::kFashionLike,
                 "Fashion-like (Fig. 4a)", scale, defense_filter,
                 attack_filter);
  if (bench::keep(dataset_filter, "CIFAR-like"))
    run_workload(fl::WorkloadKind::kCifarLike, "CIFAR-like (Fig. 4b)",
                 scale, defense_filter, attack_filter);
  std::printf("total wall time: %.1fs\n", total.seconds());
  return 0;
}
