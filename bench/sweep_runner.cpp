// sweep_runner: declarative scenario-sweep CLI over the fl::run_sweep
// engine. Expands a cartesian grid (workload × attack × GAR × partition
// skew × Byzantine fraction × participation × failure injection), runs
// every scenario concurrently on the SIGNGUARD_THREADS pool, and streams
// one JSONL line per scenario to stdout (or --out=FILE) in canonical
// order — bit-identical for any thread count. Progress, the banner and
// the Table-I-style summary go to stderr so `sweep_runner > run.jsonl`
// stays clean.
//
// Usage (all list args comma-separated; defaults form a 24-scenario
// smoke grid):
// Run `sweep_runner --help` for the full axis set with defaults; --list
// prints the expanded scenario ids without running anything.
// Scale via SIGNGUARD_SCALE=smoke|default|full (rounds=0 resolves to it).

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "common/parallel.h"
#include "fl/chaos.h"
#include "fl/sweep.h"
#include "obs/trace.h"

namespace {

using namespace signguard;

// The full axis set with defaults (satisfying `--help` and the header
// comment above in one place). Kept in sync with the parsing below — a
// new axis lands in both or the help is lying.
void print_usage() {
  std::string profiles;
  for (const auto& p : fl::fault_profile_names())
    (profiles += profiles.empty() ? "" : "|") += p;
  std::fprintf(stderr, R"(sweep_runner: scenario-sweep CLI over fl::run_sweep.

Grid axes (comma-separated lists; one scenario per combination):
  --workloads=LIST      workloads                    [MNIST-like]
  --attacks=LIST        attack names                 [NoAttack,SignFlip,LIE,ByzMean]
  --gars=LIST           aggregation rules            [Mean,Median,SignGuard]
                        ("table1" expands to every Table-I defense)
  --skews=LIST          "iid" or non-IID s in [0,1]  [iid,0.5]
  --byz=LIST            Byzantine fractions          [0.2]
  --participation=LIST  sampled client fractions     [1.0]
  --dropout=LIST        per-round dropout probs      [0.0]
  --straggler=LIST      per-round straggler probs    [0.0]
  --codecs=LIST         none|sign1|int8|topk         [none]
  --shards=LIST         shard counts (1 = flat)      [1]
  --faults=LIST         %s  [none]
  --deadline=LIST       uplink deadlines, ms (0 = unbounded)  [0]
  --churn=LIST          churn leave probability      [0.0]
  --adaptive=LIST       0|1: feedback-driven amplitude adaptation  [0]
  --wirecraft=LIST      0|1: codec-aware wire crafting             [0]
  --collude=LIST        chaos-colluding base fraction (0 = off)    [0]

Grid-wide scalars:
  --profile=grid|paper  model profile                [grid]
  --codec-chunk=N       coords per wire chunk        [4096]
  --codec-k=F           top-k keep fraction          [0.05]
  --shard-merge=NAME    wmean|momed                  [wmean]
  --churn-absence=F     mean churn absence, rounds   [2.0]
  --quorum-min=N        min gradients at aggregator  [0 = policy off]
  --quorum-survivors=N  min post-filter survivors    [0]
  --quorum-action=NAME  cmean|prev|skip              [cmean]
  --rounds=N            rounds (0 = scale default)   [0]
  --clients=N           clients (0 = scale default)  [0]
  --seed=N              sweep seed                   [7]

Checkpoint / crash recovery (fl/checkpoint.h):
  --checkpoint-dir=DIR  per-scenario checkpoint files in DIR  [off]
  --checkpoint-every=N  save cadence, rounds         [1]
  --resume              continue from existing checkpoints
  --halt-after-round=N  simulated kill after N rounds (0 = off)

Output:
  --out=FILE            JSONL to FILE instead of stdout
  --timing              include wall/cpu seconds in the JSONL
  --no-round-checksums  omit the per-round checksum arrays
  --summary             Table-I-style text summary on stderr
  --list                print expanded scenario ids, run nothing
  --help                this text

Observability (src/obs; see ARCHITECTURE.md "Observability"):
  --obs                 per-round deterministic work counters in the
                        JSONL ("obs" block; bit-identical across
                        SIGNGUARD_THREADS)
  --profile             per-scenario per-stage cost table on stderr
                        (implies --obs, plus coordinator stage timing
                        in the JSONL; --stage-profile is an alias —
                        note --profile=VALUE still selects the model
                        profile above)
  --trace-out=DIR       enable timing spans (as if SIGNGUARD_TRACE=1)
                        and write DIR/trace.json (Chrome trace_event,
                        Perfetto-loadable) + DIR/metrics.prom

Scale via SIGNGUARD_SCALE=smoke|default|full. JSONL streams to stdout in
canonical id order, bit-identical for any SIGNGUARD_THREADS.
)",
               profiles.c_str());
}

std::vector<double> parse_skews(const std::vector<std::string>& items) {
  std::vector<double> out;
  for (const auto& s : items)
    out.push_back(s == "iid" ? fl::kIidSkew : std::atof(s.c_str()));
  return out;
}

std::vector<double> parse_doubles(const std::vector<std::string>& items) {
  std::vector<double> out;
  for (const auto& s : items) out.push_back(std::atof(s.c_str()));
  return out;
}

std::vector<bool> parse_bools(const std::vector<std::string>& items) {
  std::vector<bool> out;
  for (const auto& s : items) out.push_back(s != "0" && s != "false");
  return out;
}

// Every defense from the paper's Table I, in its row order — the
// "--gars=table1" shorthand. Names are fl::make_aggregator names.
std::vector<std::string> expand_gars(const std::vector<std::string>& items) {
  static const char* kTable1[] = {
      "Mean",      "TrMean", "Median",  "GeoMed",        "Multi-Krum",
      "Bulyan",    "DnC",    "SignSGD", "SignGuard-Sim", "SignGuard-Dist",
      "SignGuard",
  };
  std::vector<std::string> out;
  for (const auto& g : items) {
    if (g == "table1")
      out.insert(out.end(), std::begin(kTable1), std::end(kTable1));
    else
      out.push_back(g);
  }
  return out;
}

// --profile: one text table per scenario, stages down, summed over the
// scenario's rounds. ms/round comes from the coordinator's StageScope
// timings (nondeterministic); the work columns are the deterministic
// counter totals, nonzero ones only so the table stays readable.
void print_stage_profile(const fl::ScenarioResult& r) {
  if (r.obs_rounds.empty()) return;
  obs::RoundCost tot;
  for (const auto& rc : r.obs_rounds) {
    for (std::size_t s = 0; s < obs::kNumStages; ++s) {
      tot.stage_ms[s] += rc.stage_ms[s];
      for (std::size_t c = 0; c < obs::kNumCounters; ++c)
        tot.counters[s][c] += rc.counters[s][c];
    }
  }
  const double rounds = double(r.obs_rounds.size());
  std::fprintf(stderr, "\n-- stage profile: %s (%zu rounds) --\n",
               r.spec.id().c_str(), r.obs_rounds.size());
  std::fprintf(stderr, "  %-16s %12s  %s\n", "stage", "ms/round",
               "work (run totals)");
  for (std::size_t s = 0; s < obs::kNumStages; ++s) {
    std::string work;
    for (std::size_t c = 0; c < obs::kNumCounters; ++c) {
      if (tot.counters[s][c] == 0) continue;
      work += work.empty() ? "" : "  ";
      work += obs::to_string(obs::Counter(c));
      work += "=" + std::to_string(tot.counters[s][c]);
    }
    if (tot.stage_ms[s] == 0.0 && work.empty()) continue;
    std::fprintf(stderr, "  %-16s %12.3f  %s\n",
                 obs::to_string(obs::Stage(s)), tot.stage_ms[s] / rounds,
                 work.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace signguard;
  if (bench::has_flag(argc, argv, "help")) {
    print_usage();
    return 0;
  }
  const auto scale = fl::scale_from_env();

  fl::SweepGrid grid;
  grid.workloads.clear();
  try {
    for (const auto& name : bench::split_csv(
             bench::arg_value(argc, argv, "workloads", "MNIST-like")))
      grid.workloads.push_back(fl::workload_kind_from_name(name));
  } catch (const std::exception& e) {
    // Unknown attack/GAR names surface per scenario in the results; a
    // workload typo must fail up front with a usable message.
    std::string known;
    for (const auto kind : fl::all_workloads())
      (known += known.empty() ? "" : ", ") += fl::workload_name(kind);
    std::fprintf(stderr, "%s (known workloads: %s)\n", e.what(),
                 known.c_str());
    return 1;
  }
  grid.profile = bench::arg_value(argc, argv, "profile", "grid") == "paper"
                     ? fl::ModelProfile::kPaper
                     : fl::ModelProfile::kGrid;
  grid.attacks = bench::split_csv(
      bench::arg_value(argc, argv, "attacks", "NoAttack,SignFlip,LIE,ByzMean"));
  grid.gars = expand_gars(bench::split_csv(
      bench::arg_value(argc, argv, "gars", "Mean,Median,SignGuard")));
  grid.skews =
      parse_skews(bench::split_csv(bench::arg_value(argc, argv, "skews",
                                                    "iid,0.5")));
  grid.byzantine_fracs =
      parse_doubles(bench::split_csv(bench::arg_value(argc, argv, "byz",
                                                      "0.2")));
  grid.participations = parse_doubles(
      bench::split_csv(bench::arg_value(argc, argv, "participation", "1.0")));
  grid.dropout_probs = parse_doubles(
      bench::split_csv(bench::arg_value(argc, argv, "dropout", "0.0")));
  grid.straggler_probs = parse_doubles(
      bench::split_csv(bench::arg_value(argc, argv, "straggler", "0.0")));
  // Compression axis: unknown codec names surface per scenario in the
  // results (like attack/GAR typos), so no up-front validation here.
  grid.codecs =
      bench::split_csv(bench::arg_value(argc, argv, "codecs", "none"));
  grid.codec_chunk = std::strtoull(
      bench::arg_value(argc, argv, "codec-chunk", "4096").c_str(), nullptr,
      10);
  grid.codec_k = std::atof(
      bench::arg_value(argc, argv, "codec-k", "0.05").c_str());
  // Sharding axis: an unknown merge name surfaces per scenario, like a
  // codec typo.
  grid.shard_counts.clear();
  for (const auto& s :
       bench::split_csv(bench::arg_value(argc, argv, "shards", "1")))
    grid.shard_counts.push_back(std::strtoull(s.c_str(), nullptr, 10));
  grid.shard_merge = bench::arg_value(argc, argv, "shard-merge", "wmean");
  // Chaos axes: an unknown fault-profile or quorum-action name surfaces
  // per scenario, like a codec typo.
  grid.faults =
      bench::split_csv(bench::arg_value(argc, argv, "faults", "none"));
  grid.deadlines = parse_doubles(
      bench::split_csv(bench::arg_value(argc, argv, "deadline", "0")));
  grid.churns = parse_doubles(
      bench::split_csv(bench::arg_value(argc, argv, "churn", "0")));
  // Adversary axes (src/attacks/adaptive.h, wirecraft.h): wrappers
  // around each scenario's base attack, gated out of ids/JSONL when off.
  grid.adaptives = parse_bools(
      bench::split_csv(bench::arg_value(argc, argv, "adaptive", "0")));
  grid.wirecrafts = parse_bools(
      bench::split_csv(bench::arg_value(argc, argv, "wirecraft", "0")));
  grid.colludes = parse_doubles(
      bench::split_csv(bench::arg_value(argc, argv, "collude", "0")));
  grid.churn_absence = std::atof(
      bench::arg_value(argc, argv, "churn-absence", "2.0").c_str());
  grid.quorum_min = std::strtoull(
      bench::arg_value(argc, argv, "quorum-min", "0").c_str(), nullptr, 10);
  grid.quorum_survivors = std::strtoull(
      bench::arg_value(argc, argv, "quorum-survivors", "0").c_str(), nullptr,
      10);
  grid.quorum_action = bench::arg_value(argc, argv, "quorum-action", "cmean");
  grid.rounds = std::strtoull(
      bench::arg_value(argc, argv, "rounds", "0").c_str(), nullptr, 10);
  grid.n_clients = std::strtoull(
      bench::arg_value(argc, argv, "clients", "0").c_str(), nullptr, 10);
  grid.seed = std::strtoull(bench::arg_value(argc, argv, "seed", "7").c_str(),
                            nullptr, 10);

  std::vector<fl::ScenarioSpec> specs = grid.expand();
  std::fprintf(stderr, "== sweep_runner: %zu scenarios ==\n%s\n",
               specs.size(), fl::runtime_summary(scale).c_str());

  if (bench::has_flag(argc, argv, "list")) {
    for (const auto& s : specs) std::printf("%s\n", s.id().c_str());
    return 0;
  }

  std::ofstream out_file;
  const std::string out_path = bench::arg_value(argc, argv, "out");
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) {
      std::fprintf(stderr, "cannot open --out=%s\n", out_path.c_str());
      return 1;
    }
  }

  fl::SweepOptions opts;
  opts.scale = scale;
  opts.capture_rounds = !bench::has_flag(argc, argv, "no-round-checksums");
  opts.include_timing = bench::has_flag(argc, argv, "timing");
  opts.jsonl = out_path.empty() ? &std::cout
                                : static_cast<std::ostream*>(&out_file);
  opts.checkpoint_dir = bench::arg_value(argc, argv, "checkpoint-dir");
  opts.checkpoint_every = std::strtoull(
      bench::arg_value(argc, argv, "checkpoint-every", "1").c_str(), nullptr,
      10);
  opts.resume = bench::has_flag(argc, argv, "resume");
  opts.halt_after_round = std::strtoull(
      bench::arg_value(argc, argv, "halt-after-round", "0").c_str(), nullptr,
      10);
  // Bare "--profile" (exact match) is the stage-cost table; the valued
  // "--profile=grid|paper" form above never matches has_flag.
  const bool stage_profile = bench::has_flag(argc, argv, "profile") ||
                             bench::has_flag(argc, argv, "stage-profile");
  opts.obs_counters = bench::has_flag(argc, argv, "obs") || stage_profile;
  opts.obs_timing = stage_profile;
  const std::string trace_dir = bench::arg_value(argc, argv, "trace-out");
  if (!trace_dir.empty()) obs::set_trace_enabled(true);
  opts.progress = [](std::size_t done, std::size_t total,
                     const fl::ScenarioResult& r) {
    std::fprintf(stderr, "[%zu/%zu] %s  best=%.2f%%%s%s\n", done, total,
                 r.spec.id().c_str(), r.best_accuracy,
                 r.error.empty() ? "" : "  ERROR: ",
                 r.error.c_str());
  };

  bench::Stopwatch total;
  const auto results = fl::run_sweep(std::move(specs), opts);

  std::size_t failed = 0;
  for (const auto& r : results) failed += r.error.empty() ? 0 : 1;
  if (bench::has_flag(argc, argv, "summary"))
    std::fprintf(stderr, "\n%s", fl::summary_table(results).c_str());
  if (stage_profile)
    for (const auto& r : results) print_stage_profile(r);
  if (!trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(trace_dir, ec);
    std::ofstream tf(trace_dir + "/trace.json");
    tf << obs::chrome_trace_json();
    std::ofstream pf(trace_dir + "/metrics.prom");
    obs::write_prometheus(pf);
    if (!tf || !pf) {
      std::fprintf(stderr, "cannot write --trace-out=%s\n", trace_dir.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %s/trace.json (%llu dropped), %s/metrics.prom\n",
                 trace_dir.c_str(),
                 static_cast<unsigned long long>(obs::trace_dropped()),
                 trace_dir.c_str());
  }
  std::fprintf(stderr,
               "%zu scenarios (%zu failed), wall %.1fs, threads=%zu\n",
               results.size(), failed, total.seconds(),
               common::thread_count());
  // Any failed scenario fails the run: scripts and CI must not stay
  // green while part of the grid errors out.
  return failed > 0 ? 1 : 0;
}
