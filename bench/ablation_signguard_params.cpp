// Extension ablation (not a paper table): sensitivity of SignGuard to its
// own hyperparameters, on the MNIST-like workload under a strong LIE
// attack (z chosen by Eq. 2) and ByzMean:
//   - randomized coordinate fraction (paper fixes 10%)
//   - clustering algorithm: Mean-Shift (adaptive #clusters) vs 2-means
//   - similarity feature: none / cosine / distance
//
// This backs DESIGN.md's design-choice notes: the defense is flat across
// coordinate fractions (cheap sampling suffices), and Mean-Shift's
// adaptive cluster count is what lets it absorb multi-modal attacks where
// fixed k=2 can split the benign majority instead.

#include "bench_common.h"
#include "common/table.h"
#include "core/signguard.h"
#include "fl/trainer.h"

namespace {

using namespace signguard;

std::unique_ptr<core::SignGuard> make_variant(double coord_frac,
                                              core::Clusterer clusterer,
                                              core::SimilarityFeature sim) {
  core::SignGuardConfig cfg = core::plain_config();
  cfg.cluster.coord_frac = coord_frac;
  cfg.cluster.clusterer = clusterer;
  cfg.cluster.similarity = sim;
  return std::make_unique<core::SignGuard>(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace signguard;
  (void)argc;
  (void)argv;
  const auto scale = fl::scale_from_env();
  bench::banner("Extension: SignGuard hyperparameter ablation (MNIST-like)",
                scale);

  fl::Workload w = fl::make_workload(fl::WorkloadKind::kMnistLike,
                                     fl::ModelProfile::kGrid, scale);
  fl::Trainer trainer(w.data, w.model_factory, w.config);
  bench::Stopwatch total;

  // --- coordinate fraction sweep -------------------------------------------
  {
    TextTable table({"coord frac", "LIE acc", "LIE mal-kept", "ByzMean acc",
                     "ByzMean mal-kept"});
    for (const double frac : {0.01, 0.05, 0.1, 0.5, 1.0}) {
      std::vector<std::string> row = {TextTable::fmt(frac, 2)};
      for (const char* attack_name : {"LIE", "ByzMean"}) {
        auto attack = fl::make_attack(attack_name);
        const auto res = trainer.run(
            *attack, make_variant(frac, core::Clusterer::kMeanShift,
                                  core::SimilarityFeature::kNone));
        row.push_back(TextTable::fmt(res.best_accuracy));
        row.push_back(TextTable::fmt(res.selection.malicious_rate, 3));
      }
      table.add_row(std::move(row));
    }
    std::printf("[coordinate fraction]\n%s\n", table.to_string().c_str());
  }

  // --- clusterer x similarity sweep -----------------------------------------
  {
    TextTable table({"clusterer", "similarity", "LIE acc", "ByzMean acc",
                     "SignFlip acc"});
    const std::pair<core::Clusterer, const char*> clusterers[] = {
        {core::Clusterer::kMeanShift, "MeanShift"},
        {core::Clusterer::kKMeans2, "KMeans(2)"}};
    const std::pair<core::SimilarityFeature, const char*> sims[] = {
        {core::SimilarityFeature::kNone, "none"},
        {core::SimilarityFeature::kCosine, "cosine"},
        {core::SimilarityFeature::kDistance, "distance"}};
    for (const auto& [clusterer, cname] : clusterers) {
      for (const auto& [sim, sname] : sims) {
        std::vector<std::string> row = {cname, sname};
        for (const char* attack_name : {"LIE", "ByzMean", "SignFlip"}) {
          auto attack = fl::make_attack(attack_name);
          const auto res = trainer.run(
              *attack, make_variant(0.1, clusterer, sim));
          row.push_back(TextTable::fmt(res.best_accuracy));
        }
        table.add_row(std::move(row));
      }
    }
    std::printf("[clusterer x similarity]\n%s\n", table.to_string().c_str());
  }

  bench::report_wall(total);
  return 0;
}
