// Gradient-transport microbench: encode/decode throughput and wire-level
// compression ratio for every comm codec at d in {100k, 1M}, the
// compressed-domain statistics kernels (comm/stats.h), and the filtered
// SignGuard round end to end — decode-everything vs the wire path that
// filters on wire bytes and decodes only the trusted set. Emits
// machine-readable JSON (default BENCH_comm.json) for the bench
// trajectory and CI artifact upload.
//
// Usage:
//   ./comm_microbench [--json=BENCH_comm.json] [--min-ms=120]
//                     [--assert-sign1-ratio=16]
//                     [--assert-sign1-decode-gbps=1.0]
//                     [--assert-wirepath-filter-bytes=5]
//                     [--assert-wirepath-speedup=1.1]
//
// The assertion flags are CI smoke guards for the transport layer's
// headline numbers: sign1 must shrink uplinks by at least the given
// factor, its single-thread decode must sustain at least the given GB/s
// (gigabytes of *dense gradient* per second), the wire path's filter
// stage must touch at least the given factor fewer bytes than the
// decode-everything filter stage (n=256, d=1M, sign1), and the whole
// filtered round must be at least the given factor faster wall-clock.
//
// Codec structure rows are timed on ONE pool thread: the committed
// numbers compare codec structure, not core counts, and stay comparable
// across hosts. Pool-threaded rows (threads=4) ride alongside for the
// decode and statistics kernels — on a single-core runner they show the
// fan-out overhead floor, on multi-core hosts the scaling.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "comm/codec.h"
#include "comm/stats.h"
#include "comm/wire.h"
#include "common/gradient_matrix.h"
#include "common/gradient_stats.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/signguard.h"

namespace signguard {
namespace {

// One unmeasured warm-up run (first-touch allocation, cache fill), then
// best-of-repeats until the budget is spent.
obs::StopwatchReporter timer(120.0, /*warmup=*/1);

struct Entry {
  std::string group, codec;
  std::size_t d = 0;
  std::size_t threads = 1;
  double usec = 0.0;
  double rate = 0.0;  // GB/s for throughput rows, x-factor for ratios
};

std::vector<Entry> entries;

void record(const std::string& group, const std::string& codec,
            std::size_t d, std::size_t threads, double usec, double rate,
            const char* unit) {
  entries.push_back({group, codec, d, threads, usec, rate});
  std::printf("%-14s %-6s d=%-8zu t=%zu %12.1f us  %8.3f %s\n", group.c_str(),
              codec.c_str(), d, threads, usec, rate, unit);
}

// Deterministic cheap fill (splitmix64 of the index): bench inputs must
// not depend on RNG streaming speed, and stay identical across hosts.
// The positive bias keeps the sign statistics of benign rows away from
// 50/50, so the e2e cell's sign clusters are separable — same regime the
// paper's benign gradients live in.
void fill_row(std::span<float> row, std::uint64_t salt, float bias) {
  for (std::size_t j = 0; j < row.size(); ++j) {
    const std::uint64_t h = common::splitmix64(salt ^ (j * 0x9e3779b97f4a7c15ull));
    row[j] =
        static_cast<float>((double(h >> 11) * 0x1.0p-53 - 0.5) * 2.0) + bias;
  }
}

std::vector<float> make_row(std::size_t d) {
  std::vector<float> row(d);
  fill_row(row, 0, 0.01f);
  return row;
}

struct CodecNumbers {
  double ratio = 0.0;
  double decode_gbps = 0.0;
};

CodecNumbers bench_codec(comm::CodecKind kind, std::size_t d) {
  comm::CompressionSpec spec;
  spec.codec = kind;
  const auto codec = comm::make_codec(spec);
  const std::vector<float> row = make_row(d);
  std::vector<float> out(d);
  std::vector<std::uint8_t> buf;
  std::vector<comm::CodecScratch> scratch;
  const double dense_gb = double(d) * 4.0 / 1e9;

  common::set_thread_count(1);
  const double enc_usec = timer.time_usec(
      [&] { comm::encode_into(*codec, row, buf, scratch); });
  record("encode", codec->name(), d, 1, enc_usec,
         dense_gb / (enc_usec * 1e-6), "GB/s");
  const auto decode_op = [&] {
    if (comm::decode_into(*codec, buf, out) != comm::DecodeStatus::kOk)
      std::abort();
  };
  const double dec_usec = timer.time_usec(decode_op);
  const double dec_gbps = dense_gb / (dec_usec * 1e-6);
  record("decode", codec->name(), d, 1, dec_usec, dec_gbps, "GB/s");
  // Pool-threaded decode of the same buffer: chunk records fan out over
  // the pool into disjoint coordinate ranges (bitwise-identical rows).
  common::set_thread_count(4);
  const double dec4_usec = timer.time_usec(decode_op);
  record("decode", codec->name(), d, 4, dec4_usec,
         dense_gb / (dec4_usec * 1e-6), "GB/s");
  common::set_thread_count(1);
  const double ratio = double(d) * 4.0 / double(buf.size());
  record("ratio", codec->name(), d, 1, 0.0, ratio, "x");
  return {ratio, dec_gbps};
}

// The compressed-domain statistics kernels over a small cohort: the
// filter inputs (row norms + sampled sign statistics) computed straight
// from wire bytes. Rates are dense-equivalent GB/s — the rate at which
// the pass covers gradient coordinates it never materialized — directly
// comparable to the decode rows above, which must pay that traffic.
void bench_wire_stats(comm::CodecKind kind, std::size_t d) {
  comm::CompressionSpec spec;
  spec.codec = kind;
  const auto codec = comm::make_codec(spec);
  const std::size_t n = 8;
  std::vector<std::vector<std::uint8_t>> uplinks(n);
  std::vector<comm::CodecScratch> scratch;
  std::vector<float> row(d);
  for (std::size_t i = 0; i < n; ++i) {
    fill_row(row, i + 1, 0.01f);
    comm::encode_into(*codec, row, uplinks[i], scratch);
  }
  const comm::WireRound wire{codec.get(), uplinks, d};
  Rng rng(1);
  const auto coords = select_coordinates(d, 0.1, rng);
  const comm::CoordMask mask(d, codec->chunk(), coords);
  const double dense_gb = double(n) * double(d) * 4.0 / 1e9;

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    common::set_thread_count(threads);
    const double norm_usec =
        timer.time_usec([&] { (void)comm::wire_row_norms(wire); });
    record("norms", codec->name(), d, threads, norm_usec,
           dense_gb / (norm_usec * 1e-6), "GB/s");
    const double sign_usec =
        timer.time_usec([&] { (void)comm::wire_sign_stats(wire, mask); });
    record("signstats", codec->name(), d, threads, sign_usec,
           dense_gb / (sign_usec * 1e-6), "GB/s");
    if (kind == comm::CodecKind::kSign1) {
      // The popcount pass's traffic in *wire* bytes: per row the packed
      // sign bits plus the shared coordinate mask.
      const double wire_gb =
          double(n) * 2.0 * (double(d) / 8.0) / 1e9;
      record("signstats-wire", codec->name(), d, threads, sign_usec,
             wire_gb / (sign_usec * 1e-6), "GB/s");
    }
  }
  common::set_thread_count(1);
}

struct WirePathNumbers {
  double filter_bytes_ratio = 0.0;
  double speedup = 0.0;  // threads=1 round wall-clock, decode/wire
};

// The tentpole cell: one SignGuard aggregation round at cohort scale
// (n=256 clients, d=1M, sign1), ~20% adversarial rows (half sign-flipped
// inside the norm band, half norm-inflated), timed both ways from the
// same validated uplinks:
//   decode path: decode all n uplinks into the round matrix, then
//                SignGuard::aggregate on the matrix
//   wire path:   SignGuard::aggregate_wire — filters on wire statistics,
//                decodes only the trusted set
// The two are bitwise-identical by contract (checked here with fresh
// same-seed instances before timing; the test suite pins it down across
// the full codec/attack grid).
WirePathNumbers bench_filtered_round() {
  const std::size_t n = 256, d = 1'000'000;
  const std::size_t n_byz = n / 5;  // 51 adversarial rows
  comm::CompressionSpec spec;
  spec.codec = comm::CodecKind::kSign1;
  const auto codec = comm::make_codec(spec);

  std::vector<std::vector<std::uint8_t>> uplinks(n);
  std::vector<comm::CodecScratch> scratch;
  std::vector<float> row(d);
  for (std::size_t i = 0; i < n; ++i) {
    fill_row(row, i + 1, 0.2f);
    if (i < n_byz / 2) {
      for (auto& v : row) v = -v;  // sign flip, norm preserved
    } else if (i < n_byz) {
      for (auto& v : row) v *= 100.0f;  // norm inflation
    }
    comm::encode_into(*codec, row, uplinks[i], scratch);
    if (comm::validate(*codec, uplinks[i], d) != comm::DecodeStatus::kOk)
      std::abort();
  }
  const comm::WireRound wire{codec.get(), uplinks, d};
  const agg::GarContext ctx;

  common::GradientMatrix grads(n, d);
  const auto decode_all = [&] {
    for (std::size_t i = 0; i < n; ++i)
      if (comm::decode_into(*codec, uplinks[i], grads.row(i)) !=
          comm::DecodeStatus::kOk)
        std::abort();
  };

  // Bitwise sanity at full bench scale: fresh same-seed instances.
  decode_all();
  std::size_t n_selected = 0;
  {
    core::SignGuard a(core::plain_config(5)), b(core::plain_config(5));
    const auto ref = a.aggregate(grads, ctx);
    const auto got = b.aggregate_wire(wire, ctx);
    if (a.last_selected() != b.last_selected() || ref.size() != got.size() ||
        std::memcmp(ref.data(), got.data(), ref.size() * 4) != 0) {
      std::fprintf(stderr, "FAIL: wire path diverged from decode path\n");
      std::abort();
    }
    n_selected = b.last_selected().size();
    if (n_selected + n_byz / 2 > n) {
      std::fprintf(stderr, "FAIL: norm-inflated rows were admitted\n");
      std::abort();
    }
  }
  std::printf("filtered round: n=%zu d=%zu byz=%zu -> trusted=%zu\n", n, d,
              n_byz, n_selected);

  WirePathNumbers out;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    common::set_thread_count(threads);
    core::SignGuard sg_dec(core::plain_config(9));
    const double dec_usec = timer.time_usec([&] {
      decode_all();
      (void)sg_dec.aggregate(grads, ctx);
    });
    const double dense_gb = double(n) * double(d) * 4.0 / 1e9;
    record("round-decode", "sign1", d, threads, dec_usec,
           dense_gb / (dec_usec * 1e-6), "GB/s");
    core::SignGuard sg_wire(core::plain_config(9));
    const double wire_usec =
        timer.time_usec([&] { (void)sg_wire.aggregate_wire(wire, ctx); });
    record("round-wire", "sign1", d, threads, wire_usec,
           dense_gb / (wire_usec * 1e-6), "GB/s");
    const double speedup = dec_usec / wire_usec;
    record("round-speedup", "sign1", d, threads, 0.0, speedup, "x");
    if (threads == 1) out.speedup = speedup;
  }
  common::set_thread_count(1);

  // Bytes the FILTER stage touches to reach the admission decision —
  // the traffic the wire path exists to avoid. Decode path: read every
  // wire buffer, write 4d dense floats per row, read them back for the
  // norm pass, gather the sampled coordinates for the sign pass. Wire
  // path: 4 scale bytes per chunk for the norms, the packed sign bits
  // plus the shared mask for the popcount pass. Survivor decoding is
  // excluded on both sides — the wire path pays it too, once, for the
  // |trusted| rows the round actually aggregates.
  std::uint64_t wire_bytes = 0;
  for (const auto& u : uplinks) wire_bytes += u.size();
  Rng crng(1);
  const std::size_t n_coords = select_coordinates(d, 0.1, crng).size();
  const double decode_filter =
      double(wire_bytes) + 2.0 * 4.0 * double(n) * double(d) +
      4.0 * double(n) * double(n_coords);
  const auto layout = comm::wire_layout(*codec, d);
  const double wire_filter =
      double(n) * (4.0 * double(layout.n_chunks) + 2.0 * double(d) / 8.0);
  out.filter_bytes_ratio = decode_filter / wire_filter;
  record("filter-bytes", "sign1", d, 1, 0.0, out.filter_bytes_ratio, "x");
  return out;
}

void write_json(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"schema\": \"signguard/comm_microbench/v2\",\n"
      << "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << "    {\"group\": \"" << e.group << "\", \"codec\": \"" << e.codec
        << "\", \"d\": " << e.d << ", \"threads\": " << e.threads
        << ", \"usec\": " << obs::StopwatchReporter::json_num(e.usec)
        << ", \"rate\": " << obs::StopwatchReporter::json_num(e.rate) << "}"
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
}

bool check_min(const char* what, double got, const std::string& need_arg,
               const char* unit) {
  if (need_arg.empty()) return true;
  const double need = std::stod(need_arg);
  if (got < need) {
    std::fprintf(stderr, "FAIL: %s %.2f%s < required %.2f%s\n", what, got,
                 unit, need, unit);
    return false;
  }
  std::printf("%s %.2f%s >= required %.2f%s\n", what, got, unit, need, unit);
  return true;
}

}  // namespace
}  // namespace signguard

int main(int argc, char** argv) {
  using namespace signguard;
  std::printf("== comm_microbench ==\n");
  common::set_thread_count(1);
  timer.set_min_ms(
      std::stod(bench::arg_value(argc, argv, "min-ms", "120")));
  const std::string json_path =
      bench::arg_value(argc, argv, "json", "BENCH_comm.json");

  CodecNumbers sign1_1m;
  for (const std::size_t d : {std::size_t{100'000}, std::size_t{1'000'000}}) {
    for (const auto kind :
         {comm::CodecKind::kNone, comm::CodecKind::kSign1,
          comm::CodecKind::kInt8, comm::CodecKind::kTopK}) {
      const CodecNumbers n = bench_codec(kind, d);
      if (kind == comm::CodecKind::kSign1 && d == 1'000'000) sign1_1m = n;
    }
  }
  for (const auto kind :
       {comm::CodecKind::kNone, comm::CodecKind::kSign1,
        comm::CodecKind::kInt8, comm::CodecKind::kTopK})
    bench_wire_stats(kind, 1'000'000);
  const WirePathNumbers wp = bench_filtered_round();
  write_json(json_path);

  bool ok = true;
  ok &= check_min("sign1 compression ratio", sign1_1m.ratio,
                  bench::arg_value(argc, argv, "assert-sign1-ratio", ""), "x");
  ok &= check_min(
      "sign1 decode", sign1_1m.decode_gbps,
      bench::arg_value(argc, argv, "assert-sign1-decode-gbps", ""), " GB/s");
  ok &= check_min(
      "wire-path filter-bytes advantage", wp.filter_bytes_ratio,
      bench::arg_value(argc, argv, "assert-wirepath-filter-bytes", ""), "x");
  ok &= check_min("wire-path filtered-round speedup", wp.speedup,
                  bench::arg_value(argc, argv, "assert-wirepath-speedup", ""),
                  "x");
  return ok ? 0 : 1;
}
