// Gradient-transport microbench: encode/decode throughput and wire-level
// compression ratio for every comm codec at d in {100k, 1M} — the
// uplink-bytes dimension of the ROADMAP's "millions of users" direction.
// Emits machine-readable JSON (default BENCH_comm.json) for the bench
// trajectory and CI artifact upload.
//
// Usage:
//   ./comm_microbench [--json=BENCH_comm.json] [--min-ms=120]
//                     [--assert-sign1-ratio=16]
//                     [--assert-sign1-decode-gbps=1.0]
//
// The assertion flags are CI smoke guards for the transport layer's two
// headline numbers: sign1 must shrink uplinks by at least the given
// factor, and its single-thread decode must sustain at least the given
// GB/s (gigabytes of *dense gradient* per second — the rate at which a
// server core turns wire bytes back into GradientMatrix rows).
//
// Everything is timed on ONE pool thread (set_thread_count(1)): the
// committed numbers compare codec structure, not core counts, and stay
// comparable across hosts. Throughput is dense bytes (4d) per second on
// both directions, so encode and decode are directly comparable.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "comm/codec.h"
#include "comm/wire.h"
#include "common/hash.h"
#include "common/parallel.h"

namespace signguard {
namespace {

using bench::Stopwatch;

double min_ms = 120.0;

// Best-of-repeats wall time per op in microseconds (same discipline as
// train_microbench: robust to scheduler noise on a busy CI runner).
double time_usec(const std::function<void()>& op) {
  op();  // warm up
  double best = 1e300;
  Stopwatch budget;
  while (budget.seconds() * 1e3 < min_ms) {
    Stopwatch w;
    op();
    best = std::min(best, w.seconds() * 1e6);
  }
  return best;
}

struct Entry {
  std::string group, codec;
  std::size_t d = 0;
  double usec = 0.0;
  double rate = 0.0;  // GB/s for encode/decode, x-factor for ratio
};

std::vector<Entry> entries;

void record(const std::string& group, const std::string& codec,
            std::size_t d, double usec, double rate, const char* unit) {
  entries.push_back({group, codec, d, usec, rate});
  std::printf("%-8s %-6s d=%-8zu %12.1f us  %8.3f %s\n", group.c_str(),
              codec.c_str(), d, usec, rate, unit);
}

// Deterministic cheap fill (splitmix64 of the index): bench inputs must
// not depend on RNG streaming speed, and stay identical across hosts.
std::vector<float> make_row(std::size_t d) {
  std::vector<float> row(d);
  for (std::size_t j = 0; j < d; ++j) {
    const std::uint64_t h = common::splitmix64(j);
    row[j] =
        static_cast<float>((double(h >> 11) * 0x1.0p-53 - 0.5) * 2.0 + 0.01);
  }
  return row;
}

struct CodecNumbers {
  double ratio = 0.0;
  double decode_gbps = 0.0;
};

CodecNumbers bench_codec(comm::CodecKind kind, std::size_t d) {
  comm::CompressionSpec spec;
  spec.codec = kind;
  const auto codec = comm::make_codec(spec);
  const std::vector<float> row = make_row(d);
  std::vector<float> out(d);
  std::vector<std::uint8_t> buf;
  std::vector<comm::CodecScratch> scratch;
  const double dense_gb = double(d) * 4.0 / 1e9;

  const double enc_usec = time_usec(
      [&] { comm::encode_into(*codec, row, buf, scratch); });
  record("encode", codec->name(), d, enc_usec, dense_gb / (enc_usec * 1e-6),
         "GB/s");
  const double dec_usec = time_usec([&] {
    if (comm::decode_into(*codec, buf, out) != comm::DecodeStatus::kOk)
      std::abort();
  });
  const double dec_gbps = dense_gb / (dec_usec * 1e-6);
  record("decode", codec->name(), d, dec_usec, dec_gbps, "GB/s");
  const double ratio = double(d) * 4.0 / double(buf.size());
  record("ratio", codec->name(), d, 0.0, ratio, "x");
  return {ratio, dec_gbps};
}

void write_json(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"schema\": \"signguard/comm_microbench/v1\",\n"
      << "  \"threads\": 1,\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << "    {\"group\": \"" << e.group << "\", \"codec\": \"" << e.codec
        << "\", \"d\": " << e.d << ", \"usec\": " << e.usec
        << ", \"rate\": " << e.rate << "}"
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
}

}  // namespace
}  // namespace signguard

int main(int argc, char** argv) {
  using namespace signguard;
  std::printf("== comm_microbench ==\n");
  common::set_thread_count(1);
  min_ms = std::stod(bench::arg_value(argc, argv, "min-ms", "120"));
  const std::string json_path =
      bench::arg_value(argc, argv, "json", "BENCH_comm.json");
  const std::string ratio_arg =
      bench::arg_value(argc, argv, "assert-sign1-ratio", "");
  const std::string gbps_arg =
      bench::arg_value(argc, argv, "assert-sign1-decode-gbps", "");

  CodecNumbers sign1_1m;
  for (const std::size_t d : {std::size_t{100'000}, std::size_t{1'000'000}}) {
    for (const auto kind :
         {comm::CodecKind::kNone, comm::CodecKind::kSign1,
          comm::CodecKind::kInt8, comm::CodecKind::kTopK}) {
      const CodecNumbers n = bench_codec(kind, d);
      if (kind == comm::CodecKind::kSign1 && d == 1'000'000) sign1_1m = n;
    }
  }
  write_json(json_path);

  int rc = 0;
  if (!ratio_arg.empty()) {
    const double need = std::stod(ratio_arg);
    if (sign1_1m.ratio < need) {
      std::fprintf(stderr,
                   "FAIL: sign1 compression ratio %.2fx < required %.2fx\n",
                   sign1_1m.ratio, need);
      rc = 1;
    } else {
      std::printf("sign1 ratio %.2fx >= required %.2fx\n", sign1_1m.ratio,
                  need);
    }
  }
  if (!gbps_arg.empty()) {
    const double need = std::stod(gbps_arg);
    if (sign1_1m.decode_gbps < need) {
      std::fprintf(stderr,
                   "FAIL: sign1 decode %.2f GB/s < required %.2f GB/s "
                   "single-thread\n",
                   sign1_1m.decode_gbps, need);
      rc = 1;
    } else {
      std::printf("sign1 decode %.2f GB/s >= required %.2f GB/s\n",
                  sign1_1m.decode_gbps, need);
    }
  }
  return rc;
}
