// Table I reproduction: best test accuracy for every (defense, attack)
// pair on the four workloads, IID data, n=50 clients, 20% Byzantine —
// expressed as one declarative grid and executed concurrently by the
// fl::run_sweep engine.
//
// Paper reference (Table I): state-of-the-art attacks (LIE, Min-Max,
// Min-Sum, ByzMean) break the median/distance-based defenses while the
// SignGuard family stays within a point or two of the no-attack baseline.
//
// Usage: table1_defense_grid [--dataset=MNIST-like] [--defense=SignGuard]
//                            [--attack=LIE] [--jsonl=FILE]
// Scale via SIGNGUARD_SCALE=smoke|default|full; concurrency via
// SIGNGUARD_THREADS.

#include <fstream>

#include "bench_common.h"
#include "fl/sweep.h"

int main(int argc, char** argv) {
  using namespace signguard;
  const auto scale = fl::scale_from_env();
  bench::banner("Table I: defenses x attacks, IID, 20% Byzantine", scale);

  const auto dataset_filter = bench::arg_values(argc, argv, "dataset");
  const auto defense_filter = bench::arg_values(argc, argv, "defense");
  const auto attack_filter = bench::arg_values(argc, argv, "attack");

  fl::SweepGrid grid;
  grid.workloads.clear();
  for (const auto kind : fl::all_workloads())
    if (bench::keep(dataset_filter, fl::workload_name(kind)))
      grid.workloads.push_back(kind);
  grid.attacks.clear();
  for (const auto& a : fl::table1_attacks())
    if (bench::keep(attack_filter, a)) grid.attacks.push_back(a);
  grid.gars.clear();
  for (const auto& d : fl::table1_defenses())
    if (bench::keep(defense_filter, d)) grid.gars.push_back(d);

  std::ofstream jsonl_file;
  const std::string jsonl_path = bench::arg_value(argc, argv, "jsonl");
  if (!jsonl_path.empty()) {
    jsonl_file.open(jsonl_path);
    if (!jsonl_file) {
      std::fprintf(stderr, "cannot open --jsonl=%s\n", jsonl_path.c_str());
      return 1;
    }
  }

  fl::SweepOptions opts;
  opts.scale = scale;
  opts.capture_rounds = false;
  if (jsonl_file.is_open()) opts.jsonl = &jsonl_file;
  opts.progress = [](std::size_t done, std::size_t total,
                     const fl::ScenarioResult& r) {
    std::fprintf(stderr, "[%zu/%zu] %s\n", done, total, r.spec.id().c_str());
  };

  bench::Stopwatch total;
  const auto results = fl::run_sweep(grid.expand(), opts);
  std::printf("%s", fl::summary_table(results).c_str());
  bench::report_wall(total);
  return 0;
}
