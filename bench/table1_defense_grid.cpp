// Table I reproduction: best test accuracy for every (defense, attack)
// pair on the four workloads, IID data, n=50 clients, 20% Byzantine.
//
// Paper reference (Table I): state-of-the-art attacks (LIE, Min-Max,
// Min-Sum, ByzMean) break the median/distance-based defenses while the
// SignGuard family stays within a point or two of the no-attack baseline.
//
// Usage: table1_defense_grid [--dataset=MNIST-like] [--defense=SignGuard]
//                            [--attack=LIE]
// Scale via SIGNGUARD_SCALE=smoke|default|full.

#include "bench_common.h"
#include "common/table.h"
#include "fl/trainer.h"

int main(int argc, char** argv) {
  using namespace signguard;
  const auto scale = fl::scale_from_env();
  bench::banner("Table I: defenses x attacks, IID, 20% Byzantine", scale);

  const auto dataset_filter = bench::arg_values(argc, argv, "dataset");
  const auto defense_filter = bench::arg_values(argc, argv, "defense");
  const auto attack_filter = bench::arg_values(argc, argv, "attack");

  const auto kinds = {
      fl::WorkloadKind::kMnistLike, fl::WorkloadKind::kFashionLike,
      fl::WorkloadKind::kCifarLike, fl::WorkloadKind::kAgNewsLike};

  bench::Stopwatch total;
  for (const auto kind : kinds) {
    fl::Workload w = fl::make_workload(kind, fl::ModelProfile::kGrid, scale);
    if (!bench::keep(dataset_filter, w.name)) continue;

    std::vector<std::string> header = {"GAR"};
    for (const auto& a : fl::table1_attacks()) header.push_back(a);
    TextTable table(header);

    fl::Trainer trainer(w.data, w.model_factory, w.config);
    for (const auto& defense : fl::table1_defenses()) {
      if (!bench::keep(defense_filter, defense)) continue;
      std::vector<std::string> row = {defense};
      for (const auto& attack_name : fl::table1_attacks()) {
        if (!bench::keep(attack_filter, attack_name)) {
          row.push_back("-");
          continue;
        }
        auto attack = fl::make_attack(attack_name);
        const auto res =
            trainer.run(*attack, fl::make_aggregator(defense));
        row.push_back(TextTable::fmt(res.best_accuracy));
      }
      table.add_row(std::move(row));
    }
    std::printf("[%s]  (n=%zu, byz=%.0f%%, rounds=%zu)\n", w.name.c_str(),
                w.config.n_clients, 100.0 * w.config.byzantine_frac,
                w.config.rounds);
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf("total wall time: %.1fs\n", total.seconds());
  return 0;
}
