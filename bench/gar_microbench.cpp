// Aggregation-rule micro-benchmark (google-benchmark): per-round latency
// of every GAR as a function of client count n and gradient dimension d,
// plus the threaded matrix kernels behind the SignGuard pipeline.
//
// This backs the paper's §IV-A "Efficiency" defense goal: SignGuard's
// filters cost O(nd) plus a clustering step on n 3-4 dim feature points,
// so it must land near Mean/TrMean — far below the O(n^2 d) of
// Krum/Bulyan — and that is exactly what this bench shows.
//
// All GAR benchmarks run the flat GradientMatrix entry point (the
// trainer's zero-copy path); "<GAR>/legacy" variants measure the
// vector-of-vectors adapter on the Table I grid shape so the copy
// overhead stays visible. The `/threads:N` benchmarks pin the pool size
// (overriding SIGNGUARD_THREADS) — e.g.
//   ./gar_microbench --benchmark_filter='SignGuard_50x1M'
// compares SignGuard aggregation at n=50, d=1M across pool sizes, and
//   ./gar_microbench --benchmark_filter='kernel_'
// prints the per-kernel timings (row norms, pairwise block on both
// SIGNGUARD_DIST backends, fused sign stats, clipped mean) the CI job
// logs. The committed large-cohort numbers (n up to 1024, d up to 1M,
// Gram-vs-direct speedups, BENCH_aggregate.json) come from the sibling
// aggregate_microbench binary.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <numeric>

#include "common/gradient_matrix.h"
#include "common/gradient_stats.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/vecops.h"
#include "core/filters.h"
#include "fl/experiment.h"

namespace {

using namespace signguard;

std::vector<std::vector<float>> make_grads(std::size_t n, std::size_t d,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(rng.normal_vector(d, 0.1, 1.0));
  return out;
}

// One cached matrix per shape: the 50 x 1M fixture alone is 200 MB, so
// every benchmark that needs it shares a single copy.
const common::GradientMatrix& cached_matrix(std::size_t n, std::size_t d) {
  static std::map<std::pair<std::size_t, std::size_t>,
                  common::GradientMatrix>
      cache;
  auto it = cache.find({n, d});
  if (it == cache.end()) {
    Rng rng(42);
    common::GradientMatrix m(n, d);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = m.row(i);
      for (auto& v : row) v = static_cast<float>(rng.normal(0.1, 1.0));
    }
    it = cache.emplace(std::make_pair(n, d), std::move(m)).first;
  }
  return it->second;
}

// threads == 0 keeps the ambient pool size (SIGNGUARD_THREADS / cores).
void run_gar_matrix(benchmark::State& state, const std::string& name,
                    std::size_t threads) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  if (threads > 0) common::set_thread_count(threads);
  const auto& grads = cached_matrix(n, d);
  auto gar = fl::make_aggregator(name);
  Rng rng(7);
  agg::GarContext ctx;
  ctx.assumed_byzantine = n / 5;
  ctx.rng = &rng;
  for (auto _ : state) {
    auto out = gar->aggregate(grads, ctx);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
  if (threads > 0) common::set_thread_count(0);
}

void run_gar_legacy(benchmark::State& state, const std::string& name) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const auto grads = make_grads(n, d, 42);
  auto gar = fl::make_aggregator(name);
  Rng rng(7);
  agg::GarContext ctx;
  ctx.assumed_byzantine = n / 5;
  ctx.rng = &rng;
  for (auto _ : state) {
    auto out = gar->aggregate(grads, ctx);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}

// ---- matrix kernel micro-benchmarks ---------------------------------------

template <typename Fn>
void run_kernel(benchmark::State& state, std::size_t threads, Fn&& fn) {
  common::set_thread_count(threads);
  const auto& m =
      cached_matrix(static_cast<std::size_t>(state.range(0)),
                    static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) fn(m);
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(m.rows() * m.cols() * sizeof(float)));
  common::set_thread_count(0);
}

void register_kernels() {
  static const std::size_t kKernelThreads[] = {1, 2, 4};
  for (const std::size_t t : kKernelThreads) {
    const auto suffix = "/threads:" + std::to_string(t);
    benchmark::RegisterBenchmark(
        ("kernel_row_norms" + suffix).c_str(),
        [t](benchmark::State& s) {
          run_kernel(s, t, [](const common::GradientMatrix& m) {
            auto norms = vec::row_norms(m);
            benchmark::DoNotOptimize(norms.data());
          });
        })
        ->Args({50, 1 << 20})
        ->Unit(benchmark::kMillisecond);
    // The pairwise block on both DistBackends: the Gram GEMM path the
    // aggregators use by default, and the scalar pair loops kept as the
    // SIGNGUARD_DIST=direct reference.
    for (const auto backend :
         {vec::DistBackend::kGram, vec::DistBackend::kDirect}) {
      const auto bname =
          backend == vec::DistBackend::kGram ? "gram" : "direct";
      benchmark::RegisterBenchmark(
          ("kernel_pairwise_dist2/" + std::string(bname) + suffix).c_str(),
          [t, backend](benchmark::State& s) {
            const auto ambient = vec::dist_backend();
            vec::set_dist_backend(backend);
            run_kernel(s, t, [](const common::GradientMatrix& m) {
              auto d2 = vec::pairwise_dist2(m);
              benchmark::DoNotOptimize(d2.data());
            });
            vec::set_dist_backend(ambient);
          })
          ->Args({50, 1 << 17})
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        ("kernel_sign_stats" + suffix).c_str(),
        [t](benchmark::State& s) {
          run_kernel(s, t, [](const common::GradientMatrix& m) {
            auto stats = sign_statistics(m, {});
            benchmark::DoNotOptimize(stats.data());
          });
        })
        ->Args({50, 1 << 20})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("kernel_clipped_mean" + suffix).c_str(),
        [t](benchmark::State& s) {
          std::vector<std::size_t> all(50);
          std::iota(all.begin(), all.end(), 0);
          run_kernel(s, t, [&all](const common::GradientMatrix& m) {
            auto out = core::clipped_mean(m, all, 1.0);
            benchmark::DoNotOptimize(out.data());
          });
        })
        ->Args({50, 1 << 20})
        ->Unit(benchmark::kMillisecond);
  }
}

void register_all() {
  for (const auto& name : fl::table1_defenses()) {
    auto* b = benchmark::RegisterBenchmark(
        name.c_str(),
        [name](benchmark::State& s) { run_gar_matrix(s, name, 0); });
    b->Args({50, 8704});     // the Table I grid shape
    b->Args({50, 131072});   // larger model
    b->Args({200, 8704});    // more clients
    b->Unit(benchmark::kMillisecond);

    // Legacy adapter path on the grid shape: shows the cost of the
    // vector-of-vectors copy relative to the flat path.
    benchmark::RegisterBenchmark(
        (name + "/legacy").c_str(),
        [name](benchmark::State& s) { run_gar_legacy(s, name); })
        ->Args({50, 8704})
        ->Unit(benchmark::kMillisecond);
  }

  // The acceptance proof point: SignGuard at n=50 clients, d=1M
  // coordinates, across pool sizes.
  static const std::size_t kScalingThreads[] = {1, 2, 4};
  for (const std::size_t t : kScalingThreads) {
    benchmark::RegisterBenchmark(
        ("SignGuard_50x1M/threads:" + std::to_string(t)).c_str(),
        [t](benchmark::State& s) { run_gar_matrix(s, "SignGuard", t); })
        ->Args({50, 1 << 20})
        ->Unit(benchmark::kMillisecond);
  }

  register_kernels();
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
