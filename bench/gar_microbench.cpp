// Aggregation-rule micro-benchmark (google-benchmark): per-round latency
// of every GAR as a function of client count n and gradient dimension d.
//
// This backs the paper's §IV-A "Efficiency" defense goal: SignGuard's
// filters cost O(nd) plus a clustering step on n 3-4 dim feature points,
// so it must land near Mean/TrMean — far below the O(n^2 d) of
// Krum/Bulyan — and that is exactly what this bench shows.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fl/experiment.h"

namespace {

using namespace signguard;

std::vector<std::vector<float>> make_grads(std::size_t n, std::size_t d,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(rng.normal_vector(d, 0.1, 1.0));
  return out;
}

void run_gar(benchmark::State& state, const std::string& name) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const auto grads = make_grads(n, d, 42);
  auto gar = fl::make_aggregator(name);
  Rng rng(7);
  agg::GarContext ctx;
  ctx.assumed_byzantine = n / 5;
  ctx.rng = &rng;
  for (auto _ : state) {
    auto out = gar->aggregate(grads, ctx);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}

void register_all() {
  for (const auto& name : fl::table1_defenses()) {
    auto* b = benchmark::RegisterBenchmark(
        name.c_str(), [name](benchmark::State& s) { run_gar(s, name); });
    b->Args({50, 8704});     // the Table I grid shape
    b->Args({50, 131072});   // larger model
    b->Args({200, 8704});    // more clients
    b->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
