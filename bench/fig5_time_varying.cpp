// Fig. 5 reproduction: test-accuracy curves under the time-varying attack
// strategy (the adversary re-rolls the attack every epoch, no-attack
// included) for {Multi-Krum, Bulyan, DnC, SignGuard} against the
// no-attack/no-defense baseline, on the Fashion-like and CIFAR-like
// workloads.
//
// Paper reference (Fig. 5): SignGuard tracks the baseline closely; the
// other defenses fluctuate or collapse when the attack switches.

#include "attacks/time_varying.h"
#include "bench_common.h"
#include "common/table.h"
#include "fl/trainer.h"

namespace {

using namespace signguard;

void run_workload(fl::WorkloadKind kind, const char* title,
                  fl::Scale scale) {
  fl::Workload w = fl::make_workload(kind, fl::ModelProfile::kGrid, scale);
  w.config.eval_every = std::max<std::size_t>(5, w.config.rounds / 12);
  const std::size_t rounds_per_epoch =
      std::max<std::size_t>(1, w.config.rounds / 15);

  const std::vector<std::string> defenses = {"Multi-Krum", "Bulyan", "DnC",
                                             "SignGuard"};

  // Baseline curve: no attack, Mean.
  fl::Workload base = w;
  base.config.byzantine_frac = 0.0;
  fl::Trainer base_trainer(base.data, base.model_factory, base.config);
  auto none = fl::make_attack("NoAttack");
  const auto base_res =
      base_trainer.run(*none, fl::make_aggregator("Mean"));

  std::vector<std::string> header = {"round", "Baseline"};
  for (const auto& d : defenses) header.push_back(d);
  TextTable table(header);

  std::vector<std::vector<double>> curves;
  fl::Trainer trainer(w.data, w.model_factory, w.config);
  for (const auto& defense : defenses) {
    attacks::TimeVaryingAttack attack(rounds_per_epoch, /*seed=*/1234);
    const auto res = trainer.run(attack, fl::make_aggregator(defense));
    std::vector<double> curve;
    for (const auto& rec : res.history) curve.push_back(rec.test_accuracy);
    curves.push_back(std::move(curve));
  }

  for (std::size_t i = 0; i < base_res.history.size(); ++i) {
    std::vector<std::string> row = {
        std::to_string(base_res.history[i].round + 1),
        TextTable::fmt(base_res.history[i].test_accuracy)};
    for (const auto& curve : curves)
      row.push_back(i < curve.size() ? TextTable::fmt(curve[i]) : "-");
    table.add_row(std::move(row));
  }
  std::printf("[%s] attack re-rolled every %zu rounds\n%s\n", title,
              rounds_per_epoch, table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace signguard;
  (void)argc;
  (void)argv;
  const auto scale = fl::scale_from_env();
  bench::banner("Fig. 5: defenses under time-varying attacks", scale);
  bench::Stopwatch total;
  run_workload(fl::WorkloadKind::kFashionLike, "Fashion-like (Fig. 5a)",
               scale);
  run_workload(fl::WorkloadKind::kCifarLike, "CIFAR-like (Fig. 5b)", scale);
  bench::report_wall(total);
  return 0;
}
