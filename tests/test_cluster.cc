// Clustering substrate tests: K-Means and Mean-Shift on synthetic blob
// data plus the degenerate inputs SignGuard can feed them (identical
// points, single points, one outlier).

#include <gtest/gtest.h>

#include <set>

#include "cluster/kmeans.h"
#include "cluster/meanshift.h"
#include "common/rng.h"

namespace signguard::cluster {
namespace {

// Two well separated blobs of sizes a and b around +/- center.
std::vector<std::vector<float>> two_blobs(std::size_t a, std::size_t b,
                                          double center, double spread,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> pts;
  for (std::size_t i = 0; i < a; ++i)
    pts.push_back({static_cast<float>(rng.normal(center, spread)),
                   static_cast<float>(rng.normal(center, spread))});
  for (std::size_t i = 0; i < b; ++i)
    pts.push_back({static_cast<float>(rng.normal(-center, spread)),
                   static_cast<float>(rng.normal(-center, spread))});
  return pts;
}

TEST(KMeans, SeparatesTwoBlobs) {
  const auto pts = two_blobs(20, 10, 5.0, 0.3, 1);
  Rng rng(2);
  const ClusterResult r = kmeans(pts, KMeansConfig{.k = 2}, rng);
  EXPECT_EQ(r.n_clusters, 2u);
  // All members of the first blob share a label distinct from the second.
  for (std::size_t i = 1; i < 20; ++i) EXPECT_EQ(r.labels[i], r.labels[0]);
  for (std::size_t i = 21; i < 30; ++i)
    EXPECT_EQ(r.labels[i], r.labels[20]);
  EXPECT_NE(r.labels[0], r.labels[20]);
  EXPECT_EQ(r.sizes[std::size_t(r.largest_cluster())], 20u);
}

TEST(KMeans, MembersMatchesLabels) {
  const auto pts = two_blobs(5, 3, 4.0, 0.2, 3);
  Rng rng(4);
  const ClusterResult r = kmeans(pts, KMeansConfig{.k = 2}, rng);
  const auto members = r.members(r.largest_cluster());
  EXPECT_EQ(members.size(), 5u);
  for (const auto idx : members)
    EXPECT_EQ(r.labels[idx], r.largest_cluster());
}

TEST(KMeans, MoreClustersThanPoints) {
  const std::vector<std::vector<float>> pts = {{0.0f}, {1.0f}};
  Rng rng(5);
  const ClusterResult r = kmeans(pts, KMeansConfig{.k = 5}, rng);
  EXPECT_EQ(r.n_clusters, 2u);
}

TEST(KMeans, IdenticalPointsFormOneEffectiveCluster) {
  const std::vector<std::vector<float>> pts(10, {1.0f, 1.0f});
  Rng rng(6);
  const ClusterResult r = kmeans(pts, KMeansConfig{.k = 2}, rng);
  // All points coincide: the largest cluster holds everything that
  // matters; no point may sit away from its center.
  EXPECT_EQ(r.sizes[std::size_t(r.largest_cluster())], 10u);
}

TEST(KMeans, DuplicatePointsNeverSeedTwoIdenticalCenters) {
  // Two distinct locations, each heavily duplicated. k-means++ must not
  // seed both centers on copies of the same point (which previously left
  // an empty cluster behind), for any seed.
  std::vector<std::vector<float>> pts;
  for (int i = 0; i < 6; ++i) pts.push_back({0.0f, 0.0f});
  for (int i = 0; i < 6; ++i) pts.push_back({5.0f, 5.0f});
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const ClusterResult r = kmeans(pts, KMeansConfig{.k = 2}, rng);
    ASSERT_EQ(r.n_clusters, 2u) << "seed=" << seed;
    EXPECT_EQ(r.sizes[0], 6u) << "seed=" << seed;
    EXPECT_EQ(r.sizes[1], 6u) << "seed=" << seed;
    // Members of each location agree on their label.
    for (int i = 1; i < 6; ++i) EXPECT_EQ(r.labels[i], r.labels[0]);
    for (int i = 7; i < 12; ++i) EXPECT_EQ(r.labels[i], r.labels[6]);
    EXPECT_NE(r.labels[0], r.labels[6]);
  }
}

TEST(KMeans, MostlyDuplicatesWithOneOutlier) {
  // 9 copies of one point + 1 outlier: whichever point seeds first, the
  // second center must land on the other location and no cluster may end
  // up empty.
  std::vector<std::vector<float>> pts(9, {1.0f, 1.0f});
  pts.push_back({9.0f, 9.0f});
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const ClusterResult r = kmeans(pts, KMeansConfig{.k = 2}, rng);
    ASSERT_EQ(r.n_clusters, 2u) << "seed=" << seed;
    for (const auto size : r.sizes) EXPECT_GT(size, 0u) << "seed=" << seed;
    EXPECT_EQ(r.sizes[std::size_t(r.largest_cluster())], 9u);
  }
}

TEST(ClusterResultGuards, EmptyResultIsSafe) {
  const ClusterResult empty;
  EXPECT_EQ(empty.largest_cluster(), -1);
  EXPECT_TRUE(empty.members(-1).empty());
  EXPECT_TRUE(empty.members(0).empty());
}

TEST(MeanShift, FindsTwoModes) {
  const auto pts = two_blobs(25, 12, 5.0, 0.25, 7);
  const ClusterResult r = mean_shift(pts);
  EXPECT_EQ(r.n_clusters, 2u);
  EXPECT_EQ(r.sizes[std::size_t(r.largest_cluster())], 25u);
}

TEST(MeanShift, SingleBlobIsOneCluster) {
  const auto pts = two_blobs(30, 0, 3.0, 0.3, 8);
  const ClusterResult r = mean_shift(pts);
  EXPECT_EQ(r.n_clusters, 1u);
  EXPECT_EQ(r.sizes[0], 30u);
}

TEST(MeanShift, AdaptiveClusterCountWithThreeBlobs) {
  Rng rng(9);
  std::vector<std::vector<float>> pts;
  for (const double cx : {-6.0, 0.0, 6.0})
    for (int i = 0; i < 12; ++i)
      pts.push_back({static_cast<float>(rng.normal(cx, 0.2)),
                     static_cast<float>(rng.normal(0.0, 0.2))});
  MeanShiftConfig cfg;
  cfg.bandwidth = 1.5;
  const ClusterResult r = mean_shift(pts, cfg);
  EXPECT_EQ(r.n_clusters, 3u);
}

TEST(MeanShift, IdenticalPointsDegenerate) {
  const std::vector<std::vector<float>> pts(8, {0.5f, 0.5f, 0.5f});
  const ClusterResult r = mean_shift(pts);
  EXPECT_EQ(r.n_clusters, 1u);
  EXPECT_EQ(r.sizes[0], 8u);
}

TEST(MeanShift, SinglePoint) {
  const std::vector<std::vector<float>> pts = {{1.0f, 2.0f}};
  const ClusterResult r = mean_shift(pts);
  EXPECT_EQ(r.n_clusters, 1u);
  EXPECT_EQ(r.labels[0], 0);
}

TEST(MeanShift, EmptyInput) {
  const std::vector<std::vector<float>> pts;
  const ClusterResult r = mean_shift(pts);
  EXPECT_EQ(r.n_clusters, 0u);
  EXPECT_TRUE(r.labels.empty());
}

TEST(MeanShift, OutlierIsolatedIntoOwnCluster) {
  auto pts = two_blobs(20, 0, 2.0, 0.2, 10);
  pts.push_back({50.0f, 50.0f});
  MeanShiftConfig cfg;
  cfg.bandwidth = 1.0;
  const ClusterResult r = mean_shift(pts, cfg);
  EXPECT_EQ(r.n_clusters, 2u);
  EXPECT_EQ(r.sizes[std::size_t(r.labels.back())], 1u);
}

TEST(EstimateBandwidth, PositiveAndScalesWithSpread) {
  const auto tight = two_blobs(10, 10, 1.0, 0.05, 11);
  const auto wide = two_blobs(10, 10, 10.0, 0.5, 11);
  const double bw_tight = estimate_bandwidth(tight, 0.3);
  const double bw_wide = estimate_bandwidth(wide, 0.3);
  EXPECT_GT(bw_tight, 0.0);
  EXPECT_GT(bw_wide, bw_tight);
}

TEST(EstimateBandwidth, FloorOnDegenerateInput) {
  const std::vector<std::vector<float>> pts(4, {1.0f});
  EXPECT_GT(estimate_bandwidth(pts, 0.3), 0.0);
}

}  // namespace
}  // namespace signguard::cluster
