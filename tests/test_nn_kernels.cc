// GEMM / im2col execution-path tests. The tiled GEMM's determinism
// contract is bitwise: per output element, one float accumulator and a
// strictly ascending k loop, regardless of backend, tile boundaries or
// thread count. These tests pin that contract — against the reference
// loops over awkward shapes, against a direct-convolution oracle for the
// im2col path, and against workspace growth across identical rounds.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "nn/conv.h"
#include "nn/gemm.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/models.h"
#include "nn/tensor.h"
#include "nn/workspace.h"

namespace signguard::nn {
namespace {

std::vector<float> random_vec(Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// Runs one of the three gemm entry points against both backends and
// requires byte-identical output.
enum class Kind { kNN, kNT, kTN };

void run_gemm(Kind kind, std::size_t m, std::size_t n, std::size_t k,
              const float* a, std::size_t lda, const float* b,
              std::size_t ldb, float* c, std::size_t ldc, bool accumulate) {
  switch (kind) {
    case Kind::kNN:
      gemm_nn(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
      break;
    case Kind::kNT:
      gemm_nt(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
      break;
    case Kind::kTN:
      gemm_tn(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
      break;
  }
}

// Restores the process-global backend (which other suites in this binary
// and the SIGNGUARD_GEMM env selection rely on) when a test ends.
class BackendGuard {
 public:
  BackendGuard() : saved_(gemm_backend()) {}
  ~BackendGuard() { set_gemm_backend(saved_); }

 private:
  GemmBackend saved_;
};

void expect_backends_bitwise(Kind kind, std::size_t m, std::size_t n,
                             std::size_t k, bool accumulate,
                             std::uint64_t seed) {
  Rng rng(seed);
  // Operand storage sized for either orientation of the transposed side.
  const std::vector<float> a = random_vec(rng, std::max<std::size_t>(1, m * k));
  const std::vector<float> b = random_vec(rng, std::max<std::size_t>(1, n * k));
  const std::vector<float> c0 = random_vec(rng, std::max<std::size_t>(1, m * n));
  const std::size_t lda = kind == Kind::kTN ? m : k;
  const std::size_t ldb = kind == Kind::kNT ? k : n;

  std::vector<float> c_ref = c0, c_tiled = c0;
  set_gemm_backend(GemmBackend::kReference);
  run_gemm(kind, m, n, k, a.data(), lda, b.data(), ldb, c_ref.data(), n,
           accumulate);
  set_gemm_backend(GemmBackend::kTiled);
  run_gemm(kind, m, n, k, a.data(), lda, b.data(), ldb, c_tiled.data(), n,
           accumulate);
  ASSERT_EQ(0, std::memcmp(c_ref.data(), c_tiled.data(),
                           c_ref.size() * sizeof(float)))
      << "kind=" << int(kind) << " m=" << m << " n=" << n << " k=" << k
      << " accumulate=" << accumulate;
}

TEST(GemmBitwise, TiledMatchesReferenceAcrossShapes) {
  const BackendGuard guard;
  // Degenerate, odd, rectangular, and tile-boundary (multiples of the
  // 4x8 micro-tile ± 1) shapes for all three orientations.
  const std::size_t ms[] = {1, 3, 4, 5, 8, 9, 17};
  const std::size_t ns[] = {1, 7, 8, 9, 16, 31, 33};
  const std::size_t ks[] = {1, 2, 13, 64};
  std::uint64_t seed = 1;
  for (const auto kind : {Kind::kNN, Kind::kNT, Kind::kTN})
    for (const std::size_t m : ms)
      for (const std::size_t n : ns)
        for (const std::size_t k : ks)
          expect_backends_bitwise(kind, m, n, k, (seed % 2) == 0, ++seed);
}

TEST(GemmBitwise, KZeroWritesOrPreservesC) {
  const BackendGuard guard;
  Rng rng(3);
  const std::vector<float> c0 = random_vec(rng, 12);
  for (const auto backend : {GemmBackend::kReference, GemmBackend::kTiled}) {
    set_gemm_backend(backend);
    std::vector<float> c = c0;
    // accumulate: C + A*B with empty inner dim leaves C untouched.
    gemm_nn(3, 4, 0, nullptr, 1, nullptr, 4, c.data(), 4, true);
    EXPECT_EQ(c, c0);
    // overwrite: the product is the zero matrix.
    gemm_nn(3, 4, 0, nullptr, 1, nullptr, 4, c.data(), 4, false);
    for (const float v : c) EXPECT_EQ(v, 0.0f);
  }
}

TEST(GemmBitwise, ThreadCountInvariant) {
  const BackendGuard guard;
  // Large enough to cross the parallel threshold (m*n*k = 8M MACs).
  const std::size_t m = 256, n = 256, k = 128;
  Rng rng(5);
  const std::vector<float> a = random_vec(rng, m * k);
  const std::vector<float> b = random_vec(rng, k * n);
  set_gemm_backend(GemmBackend::kTiled);
  std::vector<float> c1(m * n, 0.0f), c4(m * n, 0.0f);
  common::set_thread_count(1);
  gemm_nn(m, n, k, a.data(), k, b.data(), n, c1.data(), n, false);
  common::set_thread_count(4);
  gemm_nn(m, n, k, a.data(), k, b.data(), n, c4.data(), n, false);
  common::set_thread_count(0);  // restore automatic sizing
  ASSERT_EQ(0, std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)));
}

TEST(GemmHelpers, BiasBroadcastsAndSums) {
  std::vector<float> c = {0, 0, 0, 0, 0, 0};  // 2x3
  const std::vector<float> row_bias = {1, 2, 3};
  add_bias_rows(c.data(), 2, 3, 3, row_bias.data());
  EXPECT_EQ(c, (std::vector<float>{1, 2, 3, 1, 2, 3}));
  const std::vector<float> col_bias = {10, 20};
  add_bias_cols(c.data(), 2, 3, 3, col_bias.data());
  EXPECT_EQ(c, (std::vector<float>{11, 12, 13, 21, 22, 23}));
  std::vector<float> cols(3, 0.0f), rows(2, 100.0f);
  add_col_sums(c.data(), 2, 3, 3, cols.data());
  EXPECT_EQ(cols, (std::vector<float>{32, 34, 36}));
  add_row_sums(c.data(), 2, 3, 3, rows.data());
  EXPECT_EQ(rows, (std::vector<float>{136, 166}));
}

// ---------------------------------------------------------------- Conv2d

// Direct 3x3 same-padding convolution oracle that mirrors the im2col
// semantics exactly: per output element one float accumulator over
// k = (ic*3 + ky+1)*3 + (kx+1) ascending, with out-of-range taps
// contributing literal zeros — so layer output must match bitwise.
struct ConvOracle {
  std::size_t ic, oc, h, w;
  const std::vector<float>& wt;  // [OC][IC*9]
  const std::vector<float>& bias;

  float col(const float* x, std::size_t k, std::size_t p) const {
    const std::size_t c = k / 9;
    const std::ptrdiff_t ky = std::ptrdiff_t((k % 9) / 3) - 1;
    const std::ptrdiff_t kx = std::ptrdiff_t(k % 3) - 1;
    const std::ptrdiff_t yy = std::ptrdiff_t(p / w) + ky;
    const std::ptrdiff_t xx = std::ptrdiff_t(p % w) + kx;
    if (yy < 0 || yy >= std::ptrdiff_t(h) || xx < 0 ||
        xx >= std::ptrdiff_t(w))
      return 0.0f;
    return x[(c * h + std::size_t(yy)) * w + std::size_t(xx)];
  }

  // y[oc][p] for one sample.
  void forward(const float* x, float* y) const {
    const std::size_t kk = ic * 9, hw = h * w;
    for (std::size_t o = 0; o < oc; ++o)
      for (std::size_t p = 0; p < hw; ++p) {
        float acc = 0.0f;
        for (std::size_t k = 0; k < kk; ++k)
          acc += wt[o * kk + k] * col(x, k, p);
        y[o * hw + p] = acc + bias[o];
      }
  }

  // Accumulation-order-faithful backward for one batch: sample-major like
  // the layer (b outer), gemm-shaped loops inside.
  void backward(const std::vector<const float*>& xs,
                const std::vector<const float*>& gys, std::vector<float>& gw,
                std::vector<float>& gb, std::vector<float>& gx) const {
    const std::size_t kk = ic * 9, hw = h * w;
    std::vector<float> dcols(kk * hw);
    for (std::size_t b = 0; b < xs.size(); ++b) {
      const float* gy = gys[b];
      for (std::size_t o = 0; o < oc; ++o) {
        float acc = gb[o];
        for (std::size_t p = 0; p < hw; ++p) acc += gy[o * hw + p];
        gb[o] = acc;
      }
      for (std::size_t o = 0; o < oc; ++o)
        for (std::size_t k = 0; k < kk; ++k) {
          float acc = gw[o * kk + k];
          for (std::size_t p = 0; p < hw; ++p)
            acc += gy[o * hw + p] * col(xs[b], k, p);
          gw[o * kk + k] = acc;
        }
      for (std::size_t k = 0; k < kk; ++k)
        for (std::size_t p = 0; p < hw; ++p) {
          float acc = 0.0f;
          for (std::size_t o = 0; o < oc; ++o)
            acc += wt[o * kk + k] * gy[o * hw + p];
          dcols[k * hw + p] = acc;
        }
      // col2im scatter in the layer's k-then-row-major order.
      float* gxb = gx.data() + b * ic * hw;
      for (std::size_t k = 0; k < kk; ++k) {
        const std::size_t c = k / 9;
        const std::ptrdiff_t ky = std::ptrdiff_t((k % 9) / 3) - 1;
        const std::ptrdiff_t kx = std::ptrdiff_t(k % 3) - 1;
        for (std::size_t p = 0; p < hw; ++p) {
          const std::ptrdiff_t yy = std::ptrdiff_t(p / w) + ky;
          const std::ptrdiff_t xx = std::ptrdiff_t(p % w) + kx;
          if (yy < 0 || yy >= std::ptrdiff_t(h) || xx < 0 ||
              xx >= std::ptrdiff_t(w))
            continue;
          gxb[(c * h + std::size_t(yy)) * w + std::size_t(xx)] +=
              dcols[k * hw + p];
        }
      }
    }
  }
};

TEST(ConvIm2col, BitwiseMatchesDirectReferenceForwardBackward) {
  set_gemm_backend(GemmBackend::kTiled);
  const std::size_t batch = 2, ic = 2, oc = 3, h = 5, w = 6, hw = h * w;
  Rng rng(11);
  Conv2d conv(ic, oc, rng);
  Tensor x({batch, ic, h, w});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  Workspace ws;
  ws.begin_pass();
  Tensor y;
  conv.forward(x, y, ws);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{batch, oc, h, w}));

  auto params = conv.params();
  const std::vector<float> wt(params[0].value.begin(), params[0].value.end());
  const std::vector<float> bias(params[1].value.begin(),
                                params[1].value.end());
  const ConvOracle oracle{ic, oc, h, w, wt, bias};
  std::vector<float> y_ref(oc * hw);
  for (std::size_t b = 0; b < batch; ++b) {
    oracle.forward(x.data() + b * ic * hw, y_ref.data());
    ASSERT_EQ(0, std::memcmp(y_ref.data(), y.data() + b * oc * hw,
                             y_ref.size() * sizeof(float)))
        << "sample " << b;
  }

  Tensor gy({batch, oc, h, w});
  for (auto& v : gy.flat()) v = static_cast<float>(rng.normal());
  conv.zero_grad();
  Tensor gx;
  conv.backward(gy, gx, ws);

  std::vector<float> gw_ref(wt.size(), 0.0f), gb_ref(oc, 0.0f),
      gx_ref(batch * ic * hw, 0.0f);
  std::vector<const float*> xs, gys;
  for (std::size_t b = 0; b < batch; ++b) {
    xs.push_back(x.data() + b * ic * hw);
    gys.push_back(gy.data() + b * oc * hw);
  }
  oracle.backward(xs, gys, gw_ref, gb_ref, gx_ref);

  params = conv.params();
  ASSERT_EQ(0, std::memcmp(gw_ref.data(), params[0].grad.data(),
                           gw_ref.size() * sizeof(float)));
  ASSERT_EQ(0, std::memcmp(gb_ref.data(), params[1].grad.data(),
                           gb_ref.size() * sizeof(float)));
  ASSERT_EQ(gx.numel(), gx_ref.size());
  ASSERT_EQ(0, std::memcmp(gx_ref.data(), gx.data(),
                           gx_ref.size() * sizeof(float)));
}

// ------------------------------------------------------------- Workspace

TEST(Workspace, IdenticalRoundsIdenticalGradientsNoGrowth) {
  set_gemm_backend(GemmBackend::kTiled);
  Model m = make_small_cnn(8, 4, 21);
  Rng rng(22);
  Tensor x({4, 1, 8, 8});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  const std::vector<int> labels = {0, 1, 2, 3};

  auto round = [&]() {
    m.zero_gradients();
    const Tensor& logits = m.forward(x);
    const LossResult r = softmax_cross_entropy(logits, labels);
    m.backward(r.dlogits);
    return m.gradients();
  };

  const std::vector<float> g1 = round();
  const std::size_t slots = m.workspace().scratch_slots();
  const std::size_t cap = m.workspace().capacity_floats();
  EXPECT_GT(slots, 0u);
  EXPECT_GT(cap, 0u);
  for (int i = 0; i < 3; ++i) {
    const std::vector<float> gi = round();
    EXPECT_EQ(g1, gi) << "round " << i + 2;
    EXPECT_EQ(m.workspace().scratch_slots(), slots) << "round " << i + 2;
    EXPECT_EQ(m.workspace().capacity_floats(), cap) << "round " << i + 2;
  }

  // An interleaved larger eval batch may grow capacity once, but the
  // training round must still produce the same gradients afterwards
  // (stale workspace contents don't leak into the next pass).
  Tensor eval_x({16, 1, 8, 8});
  for (auto& v : eval_x.flat()) v = static_cast<float>(rng.normal());
  m.forward(eval_x);
  const std::size_t cap_after_eval = m.workspace().capacity_floats();
  EXPECT_EQ(round(), g1);
  EXPECT_EQ(m.workspace().capacity_floats(), cap_after_eval);
}

// --------------------------------------------------------------- Tensor

TEST(Tensor, MoveReshapedIsMetadataOnly) {
  Tensor t({4, 3});
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = float(i);
  const float* buf = t.data();
  const Tensor r = std::move(t).reshaped({3, 4});
  EXPECT_EQ(r.data(), buf);  // buffer moved, not copied
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_FLOAT_EQ(r[11], 11.0f);
  EXPECT_EQ(t.numel(), 0u);  // NOLINT(bugprone-use-after-move): asserting move
}

TEST(Tensor, CopyReshapedStillCopies) {
  Tensor t({2, 2});
  t[3] = 9.0f;
  const Tensor r = t.reshaped({4});
  EXPECT_NE(r.data(), t.data());
  EXPECT_FLOAT_EQ(r[3], 9.0f);
  EXPECT_EQ(t.numel(), 4u);
}

TEST(Tensor, AssignFromReusesCapacity) {
  Tensor big({100});
  const std::size_t cap = big.capacity();
  Tensor small({5});
  for (std::size_t i = 0; i < 5; ++i) small[i] = float(i);
  big.assign_from(small);
  EXPECT_EQ(big.shape(), small.shape());
  EXPECT_GE(big.capacity(), cap);  // shrink never releases storage
  EXPECT_FLOAT_EQ(big[4], 4.0f);
}

TEST(Tensor, ResizeIsNoOpOnSameShapeAndKeepsCapacity) {
  Tensor t({8, 8});
  const float* buf = t.data();
  t.resize({8, 8});
  EXPECT_EQ(t.data(), buf);
  t.resize({2, 2});
  EXPECT_EQ(t.numel(), 4u);
  EXPECT_GE(t.capacity(), 64u);
  t.resize({8, 8});
  EXPECT_EQ(t.numel(), 64u);
}

}  // namespace
}  // namespace signguard::nn
