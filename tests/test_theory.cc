// Theory-to-code tests: the paper's analytical claims verified on
// simulated gradient populations — Proposition 1 (LIE is closer in L2 and
// more cosine-similar than some honest gradient), the Eq. (3) sign-flip
// condition for median aggregation, Lemma 1's non-IID deviation bound, and
// the Fig. 2 observation that LIE perturbs the sign statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "attacks/lie.h"
#include "common/gradient_stats.h"
#include "common/quantiles.h"
#include "common/rng.h"
#include "common/vecops.h"
#include "core/signguard.h"

namespace signguard {
namespace {

std::vector<std::vector<float>> gaussian_grads(std::size_t n, std::size_t d,
                                               double mean, double stddev,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(rng.normal_vector(d, mean, stddev));
  return out;
}

// Proposition 1, Eq. (6): with small z there exists an honest gradient
// farther from the true average than the LIE gradient.
TEST(Proposition1, LieCloserThanSomeHonestGradient) {
  const std::size_t n = 20, d = 2048;
  const auto g = gaussian_grads(n, d, 0.2, 1.0, 1);
  const auto avg = vec::mean_of(g);
  const auto gm = attacks::LieAttack::craft_vector(g, 0.3);
  const double lie_dist = vec::dist2(gm, avg);
  bool exists = false;
  for (const auto& gi : g)
    if (lie_dist < vec::dist2(gi, avg)) exists = true;
  EXPECT_TRUE(exists);
  // Stronger empirical form of the proof's bound: the LIE distance is
  // below z^2 * (1 + 1/n) * sigma^2 * d with sigma = 1.
  EXPECT_LT(lie_dist, 0.3 * 0.3 * (1.0 + 1.0 / double(n)) * double(d) * 1.2);
}

// Proposition 1, Eq. (7): LIE can have HIGHER cosine similarity with the
// true average than some honest gradient.
TEST(Proposition1, LieMoreSimilarThanSomeHonestGradient) {
  const std::size_t n = 20, d = 2048;
  const auto g = gaussian_grads(n, d, 0.2, 1.0, 2);
  const auto avg = vec::mean_of(g);
  const auto gm = attacks::LieAttack::craft_vector(g, 0.3);
  const double lie_cos = vec::cosine(gm, avg);
  bool exists = false;
  for (const auto& gi : g)
    if (lie_cos > vec::cosine(gi, avg)) exists = true;
  EXPECT_TRUE(exists);
}

// Eq. (3): under coordinate-median aggregation hijacked to g_m, a
// coordinate with z > mu_j / sigma_j has its sign reversed.
TEST(Equation3, SignReversalCondition) {
  // mu = 0.5, sigma = 1: z = 0.3 < 0.5 keeps the sign; z = 0.8 flips it.
  EXPECT_GT(0.5 - 0.3 * 1.0, 0.0);
  EXPECT_LT(0.5 - 0.8 * 1.0, 0.0);
  // And on a simulated population with per-coordinate moments:
  const auto g = gaussian_grads(50, 512, 0.2, 1.0, 3);
  const auto moments = vec::coordinate_moments(g);
  const auto gm = attacks::LieAttack::craft_vector(g, 1.0);
  std::size_t flipped = 0, eligible = 0;
  for (std::size_t j = 0; j < gm.size(); ++j) {
    if (moments.mean[j] > 0.0f) {
      ++eligible;
      const bool cond = 1.0 > moments.mean[j] / moments.stddev[j];
      const bool did_flip = gm[j] < 0.0f;
      EXPECT_EQ(cond, did_flip) << "coordinate " << j;
      if (did_flip) ++flipped;
    }
  }
  EXPECT_GT(eligible, 0u);
  EXPECT_GT(flipped, 0u);
}

// Fig. 2: the LIE gradient's sign statistics deviate from honest ones —
// with mean mu > 0, positive fraction collapses as z grows.
TEST(Fig2Claim, LieShiftsSignStatistics) {
  const auto g = gaussian_grads(50, 4096, 0.3, 1.0, 4);
  const SignStats honest = sign_statistics(vec::mean_of(g));
  double prev_pos = 1.0;
  for (const double z : {0.3, 0.8, 1.5, 3.0}) {
    const auto gm = attacks::LieAttack::craft_vector(g, z);
    const SignStats s = sign_statistics(gm);
    EXPECT_LE(s.pos, prev_pos + 1e-9);  // monotone collapse with z
    prev_pos = s.pos;
  }
  const auto gm_strong = attacks::LieAttack::craft_vector(g, 3.0);
  const SignStats strong = sign_statistics(gm_strong);
  EXPECT_GT(honest.pos, 0.5);
  EXPECT_LT(strong.pos, 0.05);
}

// Lemma 1: E||avg(benign) - grad F||^2 <= beta^2 kappa^2/(1-beta)^2
//          + sigma^2 / ((1-beta) n).
TEST(Lemma1, NonIidDeviationBound) {
  Rng rng(5);
  const std::size_t n = 50, d = 256, trials = 30;
  const double beta = 0.2, kappa = 0.5, sigma = 1.0;
  const std::size_t n_benign = std::size_t((1.0 - beta) * n);
  double mean_sq_dev = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    // True global gradient.
    const auto f = rng.normal_vector(d, 0.0, 1.0);
    // Per-client bias delta_i with ||delta_i|| = kappa (non-IID drift),
    // constructed to average ~0 across ALL n clients by pairing.
    double acc = 0.0;
    std::vector<float> avg(d, 0.0f);
    for (std::size_t i = 0; i < n_benign; ++i) {
      auto delta = rng.normal_vector(d, 0.0, 1.0);
      vec::scale(delta, kappa / vec::norm(delta));
      auto gi = f;
      vec::axpy(1.0, delta, gi);
      // Sampling noise with per-coordinate variance sigma^2/d so the
      // total gradient variance is sigma^2 as in Assumption 1.
      const auto noise =
          rng.normal_vector(d, 0.0, sigma / std::sqrt(double(d)));
      vec::axpy(1.0, noise, gi);
      vec::axpy(1.0 / double(n_benign), gi, avg);
    }
    acc = vec::dist2(avg, f);
    mean_sq_dev += acc / double(trials);
  }
  const double bound = beta * beta * kappa * kappa /
                           ((1.0 - beta) * (1.0 - beta)) +
                       sigma * sigma / ((1.0 - beta) * double(n));
  // The constructed population has kappa-norm biases in random directions,
  // which average down by 1/n_benign — comfortably below the worst-case
  // bound the lemma permits.
  EXPECT_LT(mean_sq_dev, bound * 1.5 + kappa * kappa / double(n_benign));
}

// Assumption 2 sanity for SignGuard: the aggregate's bias w.r.t. the
// benign mean is bounded by the largest benign pairwise distance (the
// sup term of the assumption) even under corruption.
TEST(Assumption2, SignGuardBiasWithinPairwiseSup) {
  const std::size_t n = 20, m = 4, d = 2048;
  auto g = gaussian_grads(n - m, d, 0.3, 0.8, 6);
  const auto benign_mean = vec::mean_of(g);
  double sup_pair = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i)
    for (std::size_t j = i + 1; j < g.size(); ++j)
      sup_pair = std::max(sup_pair, vec::dist(g[i], g[j]));
  const auto gm = attacks::LieAttack::craft_vector(g, 1.0);
  for (std::size_t i = 0; i < m; ++i) g.push_back(gm);

  core::SignGuard sg(core::plain_config());
  const auto out = sg.aggregate(g, agg::GarContext{});
  EXPECT_LT(vec::dist(out, benign_mean), sup_pair);
}

// Theorem 1 premise: the paper's learning-rate ceiling
// (2 - sqrt(delta) - 2 beta) / (4L) is positive across the admissible
// range delta < beta < 0.5.
TEST(Theorem1, LearningRateCeilingPositive) {
  for (double beta = 0.0; beta < 0.5; beta += 0.05) {
    for (double delta = 0.0; delta <= beta; delta += 0.05) {
      const double ceiling = (2.0 - std::sqrt(delta) - 2.0 * beta) / 4.0;
      EXPECT_GT(ceiling, 0.0) << "beta=" << beta << " delta=" << delta;
    }
  }
}

// Jensen step used in Proposition 1's proof: the norm of the average is
// at most the max norm of the population.
TEST(Proposition1, NormOfAverageBelowMaxNorm) {
  const auto g = gaussian_grads(16, 512, 0.1, 1.0, 7);
  const auto avg = vec::mean_of(g);
  double max_norm = 0.0;
  for (const auto& gi : g) max_norm = std::max(max_norm, vec::norm(gi));
  EXPECT_LE(vec::norm(avg), max_norm);
}

}  // namespace
}  // namespace signguard
