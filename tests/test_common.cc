// Unit tests for the common substrate: RNG, vector ops, order statistics,
// gradient statistics and the table printer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/gradient_stats.h"
#include "common/quantiles.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/vecops.h"

namespace signguard {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  // The child stream must differ from the parent's continuation.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i)
    if (a.uniform() != child.uniform()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, RandintInclusiveBounds) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.randint(0, 5);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 0);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(3);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(1.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(4);
  const auto s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  auto sorted = s;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
  for (const auto v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementClampsK) {
  Rng rng(5);
  const auto s = rng.sample_without_replacement(5, 50);
  EXPECT_EQ(s.size(), 5u);
}

TEST(VecOps, DotAndNorm) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {-1.0f, 0.5f, 2.0f};
  EXPECT_DOUBLE_EQ(vec::dot(a, b), -1.0 + 1.0 + 6.0);
  EXPECT_DOUBLE_EQ(vec::norm(a), std::sqrt(14.0));
}

TEST(VecOps, DistAndCosine) {
  const std::vector<float> a = {1.0f, 0.0f};
  const std::vector<float> b = {0.0f, 1.0f};
  EXPECT_DOUBLE_EQ(vec::dist2(a, b), 2.0);
  EXPECT_NEAR(vec::cosine(a, b), 0.0, 1e-12);
  EXPECT_NEAR(vec::cosine(a, a), 1.0, 1e-12);
  const std::vector<float> zero = {0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(vec::cosine(a, zero), 0.0);
}

TEST(VecOps, AxpyScaleSubAdd) {
  std::vector<float> y = {1.0f, 1.0f};
  const std::vector<float> x = {2.0f, -1.0f};
  vec::axpy(0.5, x, y);
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  vec::scale(y, 2.0);
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  const auto s = vec::sub(y, x);
  EXPECT_FLOAT_EQ(s[0], 2.0f);
  const auto a = vec::add(s, x);
  EXPECT_FLOAT_EQ(a[0], 4.0f);
}

TEST(VecOps, MeanOfVectors) {
  const std::vector<std::vector<float>> vs = {{1.0f, 2.0f}, {3.0f, 4.0f}};
  const auto m = vec::mean_of(vs);
  EXPECT_FLOAT_EQ(m[0], 2.0f);
  EXPECT_FLOAT_EQ(m[1], 3.0f);
  const std::vector<std::size_t> idx = {1};
  const auto ms = vec::mean_of_subset(vs, idx);
  EXPECT_FLOAT_EQ(ms[0], 3.0f);
}

TEST(VecOps, CoordinateMoments) {
  const std::vector<std::vector<float>> vs = {{0.0f, 1.0f}, {2.0f, 1.0f}};
  const auto m = vec::coordinate_moments(vs);
  EXPECT_FLOAT_EQ(m.mean[0], 1.0f);
  EXPECT_FLOAT_EQ(m.mean[1], 1.0f);
  EXPECT_FLOAT_EQ(m.stddev[0], 1.0f);
  EXPECT_FLOAT_EQ(m.stddev[1], 0.0f);
}

TEST(VecOps, ClipNorm) {
  std::vector<float> v = {3.0f, 4.0f};  // norm 5
  vec::clip_norm(v, 2.5);
  EXPECT_NEAR(vec::norm(v), 2.5, 1e-6);
  std::vector<float> small = {0.3f, 0.4f};
  vec::clip_norm(small, 2.5);  // already within bound: untouched
  EXPECT_FLOAT_EQ(small[0], 0.3f);
}

TEST(VecOps, Sign) {
  const std::vector<float> v = {-2.0f, 0.0f, 5.0f};
  const auto s = vec::sign(v);
  EXPECT_FLOAT_EQ(s[0], -1.0f);
  EXPECT_FLOAT_EQ(s[1], 0.0f);
  EXPECT_FLOAT_EQ(s[2], 1.0f);
}

TEST(Quantiles, MedianOddEven) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::median(odd), 3.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(stats::median(even), 2.5);
  const std::vector<float> single = {7.0f};
  EXPECT_DOUBLE_EQ(stats::median(single), 7.0);
}

TEST(Quantiles, QuantileInterpolation) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.25), 1.0);
}

TEST(Quantiles, TrimmedMeanDropsExtremes) {
  const std::vector<double> xs = {100.0, 1.0, 2.0, 3.0, -100.0};
  EXPECT_DOUBLE_EQ(stats::trimmed_mean(xs, 1), 2.0);
}

TEST(Quantiles, MeanAroundMedian) {
  const std::vector<double> xs = {0.0, 10.0, 11.0, 12.0, 100.0};
  // median 11; the 3 closest are 10, 11, 12.
  EXPECT_DOUBLE_EQ(stats::mean_around_median(xs, 3), 11.0);
}

TEST(Quantiles, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(stats::stddev(xs), 1.0);
}

TEST(SignStatistics, FullVector) {
  const std::vector<float> g = {1.0f, -1.0f, 0.0f, 2.0f};
  const SignStats s = sign_statistics(g);
  EXPECT_DOUBLE_EQ(s.pos, 0.5);
  EXPECT_DOUBLE_EQ(s.neg, 0.25);
  EXPECT_DOUBLE_EQ(s.zero, 0.25);
  EXPECT_DOUBLE_EQ(s.pos + s.neg + s.zero, 1.0);
}

TEST(SignStatistics, CoordinateSubset) {
  const std::vector<float> g = {1.0f, -1.0f, 0.0f, 2.0f};
  const std::vector<std::size_t> coords = {0, 3};
  const SignStats s = sign_statistics(g, coords);
  EXPECT_DOUBLE_EQ(s.pos, 1.0);
  EXPECT_DOUBLE_EQ(s.neg, 0.0);
}

TEST(SignStatistics, EmptyInputIsAllZero) {
  const std::vector<float> g;
  const SignStats s = sign_statistics(g);
  EXPECT_DOUBLE_EQ(s.pos + s.neg + s.zero, 0.0);
}

TEST(SelectCoordinates, SizeAndRange) {
  Rng rng(9);
  const auto coords = select_coordinates(1000, 0.1, rng);
  EXPECT_EQ(coords.size(), 100u);
  for (const auto c : coords) EXPECT_LT(c, 1000u);
}

TEST(SelectCoordinates, AtLeastOne) {
  Rng rng(9);
  const auto coords = select_coordinates(3, 0.01, rng);
  EXPECT_EQ(coords.size(), 1u);
}

TEST(PairwiseDistances, MatchesDirectComputation) {
  const std::vector<std::vector<float>> grads = {
      {0.0f, 0.0f}, {3.0f, 4.0f}, {1.0f, 1.0f}};
  const PairwiseDistances pd(grads);
  EXPECT_DOUBLE_EQ(pd.dist2(0, 1), 25.0);
  EXPECT_DOUBLE_EQ(pd.dist2(1, 0), 25.0);
  EXPECT_DOUBLE_EQ(pd.dist2(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(pd.dist2(0, 2), 2.0);
}

TEST(MedianPairwiseCosine, PicksMajorityDirection) {
  // Three aligned gradients and one reversed: the reversed one has median
  // cosine -1 to the others; the aligned ones have median +1.
  const std::vector<std::vector<float>> grads = {
      {1.0f, 0.0f}, {2.0f, 0.0f}, {3.0f, 0.0f}, {-1.0f, 0.0f}};
  EXPECT_GT(median_pairwise_cosine(grads, 0), 0.9);
  EXPECT_LT(median_pairwise_cosine(grads, 3), -0.9);
}

TEST(TextTable, AlignsAndFormats) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::fmt(1.2345, 2)});
  t.add_row({"b", "x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

}  // namespace
}  // namespace signguard
