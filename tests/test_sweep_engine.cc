// Sweep-engine tests: grid expansion, canonical ordering, bit-identical
// JSONL across thread counts and submission orders, failure-injection
// accounting, and graceful per-scenario error capture for degenerate
// configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/hash.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "fl/sweep.h"

namespace signguard::fl {
namespace {

// A tiny but non-trivial grid: 2 attacks x 2 GARs x 2 partitions = 8
// scenarios, 8 clients, 4 rounds each — fast enough to run repeatedly.
SweepGrid tiny_grid() {
  SweepGrid grid;
  grid.workloads = {WorkloadKind::kMnistLike};
  grid.attacks = {"NoAttack", "SignFlip"};
  grid.gars = {"Mean", "SignGuard"};
  grid.skews = {kIidSkew, 0.5};
  grid.rounds = 4;
  grid.n_clients = 8;
  return grid;
}

SweepOptions quiet_options() {
  SweepOptions opts;
  opts.scale = Scale::kSmoke;
  return opts;
}

std::string sweep_jsonl(std::vector<ScenarioSpec> specs) {
  std::ostringstream os;
  SweepOptions opts = quiet_options();
  opts.jsonl = &os;
  run_sweep(std::move(specs), opts);
  return os.str();
}

TEST(SweepGrid, ExpandIsCartesianProduct) {
  SweepGrid grid = tiny_grid();
  grid.byzantine_fracs = {0.1, 0.2, 0.3};
  EXPECT_EQ(grid.size(), 2u * 2u * 2u * 3u);
  EXPECT_EQ(grid.expand().size(), grid.size());
}

TEST(ScenarioSpec, IdIsInjectiveOverGridAndSeedsStreams) {
  const auto specs = tiny_grid().expand();
  std::vector<std::string> ids;
  for (const auto& s : specs) ids.push_back(s.id());
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  // Distinct scenarios get distinct RNG stream roots.
  EXPECT_NE(specs[0].rng_seed(), specs[1].rng_seed());
  // ... which are stable functions of the spec.
  EXPECT_EQ(specs[0].rng_seed(), tiny_grid().expand()[0].rng_seed());
  // ... and are exactly the documented Rng::stream derivation.
  Rng documented = Rng::stream(specs[0].seed, common::fnv1a64(specs[0].id()));
  Rng actual(specs[0].rng_seed());
  EXPECT_EQ(documented.engine()(), actual.engine()());
}

TEST(RunSweep, ResultsInCanonicalOrderRegardlessOfSubmission) {
  auto specs = tiny_grid().expand();
  std::vector<ScenarioSpec> reversed(specs.rbegin(), specs.rend());
  const auto a = run_sweep(specs, quiet_options());
  const auto b = run_sweep(reversed, quiet_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.id(), b[i].spec.id());
    EXPECT_EQ(a[i].trace_checksum, b[i].trace_checksum);
    EXPECT_DOUBLE_EQ(a[i].best_accuracy, b[i].best_accuracy);
  }
}

TEST(RunSweep, JsonlBitIdenticalAcrossThreadCounts) {
  const auto specs = tiny_grid().expand();
  common::set_thread_count(1);
  const std::string one = sweep_jsonl(specs);
  common::set_thread_count(4);
  const std::string four = sweep_jsonl(specs);
  common::set_thread_count(0);  // restore automatic sizing
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
  EXPECT_EQ(std::count(one.begin(), one.end(), '\n'), 8);
}

TEST(RunSweep, JsonlBitIdenticalForShuffledSubmission) {
  auto specs = tiny_grid().expand();
  const std::string canonical = sweep_jsonl(specs);
  Rng rng(41);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<std::size_t> order(specs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    std::vector<ScenarioSpec> shuffled;
    for (const std::size_t i : order) shuffled.push_back(specs[i]);
    EXPECT_EQ(canonical, sweep_jsonl(std::move(shuffled)));
  }
}

TEST(RunSweep, SingleScenarioUsesThePoolDirectly) {
  SweepGrid grid = tiny_grid();
  grid.attacks = {"NoAttack"};
  grid.gars = {"Mean"};
  grid.skews = {kIidSkew};
  const auto results = run_sweep(grid.expand(), quiet_options());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].error.empty());
  EXPECT_EQ(results[0].rounds.size(), 4u);
  EXPECT_GT(results[0].best_accuracy, 0.0);
}

TEST(RunSweep, CapturesPerRoundTraces) {
  SweepGrid grid = tiny_grid();
  grid.attacks = {"SignFlip"};
  grid.gars = {"SignGuard"};
  grid.skews = {kIidSkew};
  const auto results = run_sweep(grid.expand(), quiet_options());
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0];
  ASSERT_EQ(r.rounds.size(), 4u);
  for (const auto& t : r.rounds) {
    EXPECT_FALSE(t.skipped);
    EXPECT_EQ(t.participants, 8u);
    EXPECT_EQ(t.byzantine, 2u);  // round(0.2 * 8)
    EXPECT_NE(t.aggregate_checksum, 0u);
    EXPECT_GT(t.selected, 0u);  // SignGuard reports its trusted set
  }
  EXPECT_GE(r.honest_pass_rate, 0.0);
  EXPECT_GE(r.malicious_pass_rate, 0.0);
}

TEST(RunSweep, FailureInjectionIsAccountedAndDeterministic) {
  SweepGrid grid = tiny_grid();
  grid.attacks = {"NoAttack"};
  grid.gars = {"Mean"};
  grid.skews = {kIidSkew};
  grid.dropout_probs = {0.25};
  grid.straggler_probs = {0.25};
  grid.rounds = 12;
  const auto a = run_sweep(grid.expand(), quiet_options());
  const auto b = run_sweep(grid.expand(), quiet_options());
  ASSERT_EQ(a.size(), 1u);
  EXPECT_GT(a[0].dropped_total, 0u);
  EXPECT_GT(a[0].straggler_total, 0u);
  EXPECT_EQ(a[0].dropped_total, b[0].dropped_total);
  EXPECT_EQ(a[0].trace_checksum, b[0].trace_checksum);
  for (const auto& t : a[0].rounds)
    if (!t.skipped)
      EXPECT_EQ(t.participants + t.dropped + t.stragglers, 8u);
}

TEST(RunSweep, DegenerateScenarioReportsErrorWithoutAbortingSweep) {
  SweepGrid grid = tiny_grid();
  grid.attacks = {"NoAttack"};
  grid.gars = {"Mean"};
  grid.skews = {kIidSkew};
  grid.byzantine_fracs = {0.2, 0.6};  // 0.6: Byzantine majority -> error
  const auto results = run_sweep(grid.expand(), quiet_options());
  ASSERT_EQ(results.size(), 2u);
  std::size_t failed = 0;
  for (const auto& r : results) {
    if (!r.error.empty()) {
      ++failed;
      EXPECT_NE(r.error.find("byzantine_frac"), std::string::npos);
      EXPECT_DOUBLE_EQ(r.spec.byzantine_frac, 0.6);
    }
  }
  EXPECT_EQ(failed, 1u);
}

TEST(RunSweep, FullDropoutSkipsEveryRoundGracefully) {
  SweepGrid grid = tiny_grid();
  grid.attacks = {"NoAttack"};
  grid.gars = {"Mean"};
  grid.skews = {kIidSkew};
  grid.dropout_probs = {1.0};
  const auto results = run_sweep(grid.expand(), quiet_options());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].error.empty());
  EXPECT_EQ(results[0].skipped_rounds, 4u);
  EXPECT_DOUBLE_EQ(results[0].best_accuracy, 0.0);
}

TEST(RunSweep, StreamsProgressForEveryScenario) {
  std::size_t calls = 0, last_done = 0;
  SweepOptions opts = quiet_options();
  opts.progress = [&](std::size_t done, std::size_t total,
                      const ScenarioResult&) {
    ++calls;
    EXPECT_GT(done, 0u);
    EXPECT_LE(done, total);
    last_done = done;
  };
  run_sweep(tiny_grid().expand(), opts);
  EXPECT_EQ(calls, 8u);
  EXPECT_EQ(last_done, 8u);
}

TEST(WriteJsonl, TimingFieldsAreOptIn) {
  SweepGrid grid = tiny_grid();
  grid.attacks = {"NoAttack"};
  grid.gars = {"Mean"};
  grid.skews = {kIidSkew};
  const auto results = run_sweep(grid.expand(), quiet_options());
  ASSERT_EQ(results.size(), 1u);
  std::ostringstream plain, timed;
  write_jsonl_line(plain, results[0], /*include_timing=*/false);
  write_jsonl_line(timed, results[0], /*include_timing=*/true);
  EXPECT_EQ(plain.str().find("wall_s"), std::string::npos);
  EXPECT_NE(timed.str().find("wall_s"), std::string::npos);
}

TEST(SummaryTable, ContainsEveryGarAndAttack) {
  const auto results = run_sweep(tiny_grid().expand(), quiet_options());
  const std::string table = summary_table(results);
  for (const char* needle :
       {"MNIST-like", "Mean", "SignGuard", "NoAttack", "SignFlip", "iid",
        "noniid s=0.5"})
    EXPECT_NE(table.find(needle), std::string::npos) << needle;
}

}  // namespace
}  // namespace signguard::fl
