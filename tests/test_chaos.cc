// Chaos-engine tests (fl/chaos.h, fl/checkpoint.h): the determinism
// contract of the fault model (stateless keyed streams — bitwise
// thread-invariance, query-order independence, no cursor to checkpoint),
// the joint dropout/straggler semantics documented in fl/trainer.h,
// exactly-once churn accounting, quorum degradation outcomes, and
// crash-consistent checkpoint/restore (kill at round r + resume must be
// bitwise identical to the uninterrupted run).

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/parallel.h"
#include "data/synth_image.h"
#include "fl/chaos.h"
#include "fl/checkpoint.h"
#include "fl/experiment.h"
#include "fl/sweep.h"
#include "fl/trainer.h"
#include "nn/models.h"

namespace signguard::fl {
namespace {

data::TrainTest tiny_data(std::uint64_t seed = 5) {
  data::SynthImageConfig cfg;
  cfg.train_per_class = 40;
  cfg.test_per_class = 10;
  cfg.seed = seed;
  return data::make_synth_image(cfg);
}

TrainerConfig tiny_config() {
  TrainerConfig cfg;
  cfg.n_clients = 20;
  cfg.byzantine_frac = 0.2;
  cfg.rounds = 12;
  cfg.batch_size = 8;
  cfg.lr = 0.2;
  cfg.eval_every = 4;
  cfg.eval_max_samples = 0;
  cfg.seed = 3;
  return cfg;
}

ModelFactory tiny_model() {
  return [](std::uint64_t seed) { return nn::make_mlp(256, 16, 10, seed); };
}

// Temp-file path unique to this test binary run (tests may run
// concurrently across suites, never within one).
std::string tmp_path(const std::string& tag) {
  return testing::TempDir() + "signguard_chaos_" + tag;
}

struct ThreadGuard {
  explicit ThreadGuard(std::size_t n) : prev(common::thread_count()) {
    common::set_thread_count(n);
  }
  ~ThreadGuard() { common::set_thread_count(prev); }
  std::size_t prev;
};

// ---- ChaosEngine determinism ----------------------------------------------

ChaosConfig flaky_config() {
  ChaosConfig cfg;
  cfg.profile = fault_profile_from_name("flaky");
  cfg.deadline_ms = 300.0;
  cfg.churn_leave_prob = 0.15;
  cfg.churn_mean_absence = 2.5;
  return cfg;
}

TEST(ChaosEngine, UplinkIsPureInClientAndRound) {
  const ChaosConfig cfg = flaky_config();
  ChaosEngine a(32, cfg, 99);
  ChaosEngine b(32, cfg, 99);
  // Query b in a scrambled order first: answers must not depend on what
  // was asked before (stateless keyed streams, not a shared cursor).
  for (std::size_t c = 31; c < 32; --c) b.simulate_uplink(c, 7);
  for (std::size_t r = 20; r > 0; --r) b.simulate_uplink(3, r - 1);
  for (std::size_t c = 0; c < 32; ++c) {
    for (std::size_t r = 0; r < 20; ++r) {
      const UplinkSim x = a.simulate_uplink(c, r);
      const UplinkSim y = b.simulate_uplink(c, r);
      EXPECT_EQ(x.delivery, y.delivery);
      EXPECT_EQ(x.corrupt, y.corrupt);
      EXPECT_EQ(x.attempts, y.attempts);
      EXPECT_EQ(x.elapsed_ms, y.elapsed_ms);  // bitwise, not approx
      EXPECT_EQ(x.corrupt_pos, y.corrupt_pos);
    }
  }
}

TEST(ChaosEngine, ChurnScheduleIsQueryOrderIndependent) {
  const ChaosConfig cfg = flaky_config();
  ChaosEngine fwd(16, cfg, 42);
  ChaosEngine rev(16, cfg, 42);
  std::vector<std::vector<bool>> want(16);
  for (std::size_t c = 0; c < 16; ++c)
    for (std::size_t r = 0; r < 64; ++r)
      want[c].push_back(fwd.client_up(c, r));
  // Reverse order forces the lazy schedule cache to extend all the way on
  // first touch; the answers must match the forward sweep exactly.
  for (std::size_t c = 16; c > 0; --c)
    for (std::size_t r = 64; r > 0; --r)
      EXPECT_EQ(rev.client_up(c - 1, r - 1), want[c - 1][r - 1])
          << "client " << c - 1 << " round " << r - 1;
}

TEST(ChaosEngine, DifferentSeedsDiffer) {
  const ChaosConfig cfg = flaky_config();
  ChaosEngine a(32, cfg, 1);
  ChaosEngine b(32, cfg, 2);
  std::size_t diff = 0;
  for (std::size_t c = 0; c < 32; ++c)
    for (std::size_t r = 0; r < 16; ++r)
      diff += a.simulate_uplink(c, r).elapsed_ms !=
              b.simulate_uplink(c, r).elapsed_ms;
  EXPECT_GT(diff, 0u);
}

TEST(ChaosEngine, TiersPartitionThePopulation) {
  ChaosConfig cfg;
  cfg.profile = fault_profile_from_name("mobile");  // 3 tiers
  ChaosEngine e(1000, cfg, 7);
  std::vector<std::size_t> counts(cfg.profile.tiers.size(), 0);
  for (std::size_t c = 0; c < 1000; ++c) {
    ASSERT_LT(e.tier_of(c), counts.size());
    ++counts[e.tier_of(c)];
    EXPECT_EQ(e.tier_latency_mult(c),
              cfg.profile.tiers[e.tier_of(c)].latency_mult);
  }
  // Tier shares within a loose band of their configured fractions.
  for (std::size_t t = 0; t < counts.size(); ++t)
    EXPECT_NEAR(double(counts[t]) / 1000.0, cfg.profile.tiers[t].fraction,
                0.08);
}

TEST(ChaosEngine, NoneProfileDeliversInstantlyAndCleanly) {
  ChaosConfig cfg;
  cfg.deadline_ms = 1.0;  // active via deadline, but no transport faults
  ChaosEngine e(4, cfg, 7);
  const UplinkSim sim = e.simulate_uplink(2, 9);
  EXPECT_EQ(sim.delivery, UplinkSim::Delivery::kOnTime);
  EXPECT_EQ(sim.attempts, 1u);
  EXPECT_EQ(sim.elapsed_ms, 0.0);
}

TEST(ChaosConfig, ValidateRejectsDegenerateParameters) {
  ChaosConfig cfg;
  cfg.profile = fault_profile_from_name("lan");
  cfg.profile.p_drop = 0.7;
  cfg.profile.p_truncate = 0.5;  // sum > 1
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ChaosConfig{};
  cfg.churn_leave_prob = 0.5;
  cfg.churn_mean_absence = 0.5;  // mean absence < 1 round
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ChaosConfig{};
  cfg.profile.max_attempts = 0;
  cfg.profile.name = "custom";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_THROW(fault_profile_from_name("wifi"), std::invalid_argument);
}

TEST(DegradeAction, NameRoundTrip) {
  for (const char* name : {"skip", "prev", "cmean"})
    EXPECT_STREQ(to_string(degrade_action_from_name(name)), name);
  EXPECT_THROW(degrade_action_from_name("retry"), std::invalid_argument);
}

// ---- Joint dropout/straggler semantics (fl/trainer.h) ---------------------

TEST(FailureSemantics, EveryClientLandsInExactlyOneState) {
  const auto tt = tiny_data();
  TrainerConfig cfg = tiny_config();
  cfg.rounds = 30;
  cfg.dropout_prob = 0.3;
  cfg.straggler_prob = 0.4;
  Trainer trainer(tt, tiny_model(), cfg);
  std::size_t dropped = 0, stragglers = 0, rounds_seen = 0;
  const auto observer = [&](const RoundObservation& obs) {
    // Full participation: dropped + stragglers + arrivals == n, every
    // round — the sequential coins leave no client in two states and
    // none unaccounted for.
    EXPECT_EQ(obs.dropped + obs.stragglers + obs.participants,
              cfg.n_clients)
        << "round " << obs.round;
    dropped += obs.dropped;
    stragglers += obs.stragglers;
    ++rounds_seen;
  };
  auto attack = make_attack("SignFlip");
  trainer.run(*attack, make_aggregator("Mean", 1), observer);
  EXPECT_EQ(rounds_seen, cfg.rounds);
  // Empirical rates against the documented sequential-coin law:
  //   P(dropped) = p_drop, P(straggler) = (1 - p_drop) * p_strag.
  const double total = double(cfg.rounds * cfg.n_clients);
  EXPECT_NEAR(double(dropped) / total, 0.3, 0.06);
  EXPECT_NEAR(double(stragglers) / total, 0.7 * 0.4, 0.06);
}

// ---- Exactly-once churn accounting ----------------------------------------

TEST(Churn, AccountedExactlyOncePerAbsentClientRound) {
  const auto tt = tiny_data();
  TrainerConfig cfg = tiny_config();
  cfg.chaos.churn_leave_prob = 0.2;
  cfg.chaos.churn_mean_absence = 2.0;
  Trainer trainer(tt, tiny_model(), cfg);
  std::size_t churned_sum = 0;
  const auto observer = [&](const RoundObservation& obs) {
    // No faults and no legacy coins: every selected client is either
    // present (an arrival) or churned — nothing else, nothing twice.
    EXPECT_EQ(obs.churned + obs.participants, cfg.n_clients)
        << "round " << obs.round;
    EXPECT_EQ(obs.dropped, 0u);
    EXPECT_EQ(obs.stragglers, 0u);
    churned_sum += obs.churned;
  };
  auto attack = make_attack("NoAttack");
  const TrainingResult res =
      trainer.run(*attack, make_aggregator("Mean", 1), observer);
  EXPECT_EQ(res.churned_total, churned_sum);
  EXPECT_GT(res.churned_total, 0u);  // p=0.2 over 240 client-rounds
}

// ---- Thread-invariance of the full fault pipeline -------------------------

std::string chaos_cell_jsonl() {
  SweepGrid grid;
  grid.attacks = {"SignFlip"};
  grid.gars = {"SignGuard"};
  grid.faults = {"flaky"};
  grid.deadlines = {250.0};
  grid.churns = {0.1};
  grid.quorum_min = 4;
  grid.rounds = 6;
  grid.n_clients = 10;
  std::ostringstream os;
  SweepOptions opts;
  opts.scale = Scale::kSmoke;
  opts.jsonl = &os;
  run_sweep(grid.expand(), opts);
  return os.str();
}

TEST(ChaosDeterminism, JsonlBitwiseIdenticalAcrossThreadCounts) {
  std::string one, four;
  {
    ThreadGuard g(1);
    one = chaos_cell_jsonl();
  }
  {
    ThreadGuard g(4);
    four = chaos_cell_jsonl();
  }
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
  // The chaos axis must actually be on in the emitted line.
  EXPECT_NE(one.find("\"fault\":\"flaky\""), std::string::npos);
  EXPECT_NE(one.find("\"uplink_attempts\":"), std::string::npos);
}

// ---- Quorum degradation ---------------------------------------------------

TEST(Quorum, SkipActionSkipsStarvedRounds) {
  const auto tt = tiny_data();
  TrainerConfig cfg = tiny_config();
  cfg.quorum.min_participants = cfg.n_clients + 1;  // unreachable
  cfg.quorum.action = DegradeAction::kSkip;
  Trainer trainer(tt, tiny_model(), cfg);
  auto attack = make_attack("NoAttack");
  std::size_t proceed = 0;
  const auto observer = [&](const RoundObservation& obs) {
    EXPECT_EQ(obs.outcome, RoundOutcome::kSkippedQuorum);
    EXPECT_TRUE(obs.skipped);
    proceed += obs.outcome == RoundOutcome::kProceed;
  };
  const TrainingResult res =
      trainer.run(*attack, make_aggregator("Mean", 1), observer);
  EXPECT_EQ(proceed, 0u);
  EXPECT_EQ(res.skipped_rounds, cfg.rounds);
  EXPECT_TRUE(res.history.empty());  // a skipped round never evaluates
}

TEST(Quorum, ChurnStarvedRoundsFallBackToPrevAggregate) {
  const auto tt = tiny_data();
  TrainerConfig cfg = tiny_config();
  cfg.n_clients = 16;
  cfg.chaos.churn_leave_prob = 0.5;
  cfg.quorum.min_participants = 16;  // any churn degrades the round
  cfg.quorum.action = DegradeAction::kPrevAggregate;
  Trainer trainer(tt, tiny_model(), cfg);
  auto attack = make_attack("NoAttack");
  const TrainingResult res =
      trainer.run(*attack, make_aggregator("Mean", 1), nullptr);
  // Churn schedules all start "up", so round 0 proceeds and seeds the
  // previous aggregate; with p=0.5 over 16 clients the later rounds are
  // overwhelmingly churn-starved and must replay it.
  EXPECT_GT(res.fallback_prev_rounds, 0u);
  EXPECT_EQ(res.fallback_cmean_rounds, 0u);
}

TEST(Quorum, ClippedMeanFallbackKeepsTraining) {
  const auto tt = tiny_data();
  TrainerConfig cfg = tiny_config();
  cfg.n_clients = 16;
  cfg.chaos.churn_leave_prob = 0.5;
  cfg.quorum.min_participants = 16;
  cfg.quorum.action = DegradeAction::kClippedMean;
  Trainer trainer(tt, tiny_model(), cfg);
  auto attack = make_attack("NoAttack");
  std::size_t cmean_rounds = 0;
  const auto observer = [&](const RoundObservation& obs) {
    if (obs.outcome == RoundOutcome::kFallbackClippedMean) {
      ++cmean_rounds;
      EXPECT_FALSE(obs.skipped);
      EXPECT_FALSE(obs.aggregate.empty());  // degraded but applied
    }
  };
  const TrainingResult res =
      trainer.run(*attack, make_aggregator("Mean", 1), observer);
  EXPECT_EQ(res.fallback_cmean_rounds, cmean_rounds);
  EXPECT_GT(res.fallback_cmean_rounds, 0u);
  EXPECT_FALSE(res.history.empty());  // fallback rounds still evaluate
}

// A rule that rejects every round's input — the "starved GAR" case the
// quorum policy must absorb instead of letting it abort the run.
class ThrowingGar : public agg::Aggregator {
 public:
  using Aggregator::aggregate;
  std::vector<float> aggregate(const common::GradientMatrix&,
                               const agg::GarContext&) override {
    throw std::runtime_error("starved");
  }
  std::string name() const override { return "Throwing"; }
};

TEST(Quorum, ThrowingGarDegradesInsteadOfAborting) {
  const auto tt = tiny_data();
  TrainerConfig cfg = tiny_config();
  cfg.quorum.min_participants = 1;
  cfg.quorum.action = DegradeAction::kClippedMean;
  Trainer trainer(tt, tiny_model(), cfg);
  auto attack = make_attack("NoAttack");
  const TrainingResult res =
      trainer.run(*attack, std::make_unique<ThrowingGar>(), nullptr);
  EXPECT_EQ(res.fallback_cmean_rounds, cfg.rounds);
  EXPECT_EQ(res.skipped_rounds, 0u);
}

TEST(Quorum, MinSurvivorsChecksSelectingRules) {
  const auto tt = tiny_data();
  TrainerConfig cfg = tiny_config();
  // SignGuard admits a trusted subset; demanding more survivors than
  // clients forces the post-filter quorum to fail on every round.
  cfg.quorum.min_survivors = cfg.n_clients + 1;
  cfg.quorum.action = DegradeAction::kClippedMean;
  Trainer trainer(tt, tiny_model(), cfg);
  auto attack = make_attack("NoAttack");
  const TrainingResult res =
      trainer.run(*attack, make_aggregator("SignGuard", 1), nullptr);
  EXPECT_EQ(res.fallback_cmean_rounds, cfg.rounds);
  // A non-selecting rule must be exempt: an empty selection means
  // "everyone", not "nobody".
  Trainer flat(tt, tiny_model(), cfg);
  const TrainingResult mean_res =
      flat.run(*attack, make_aggregator("Mean", 1), nullptr);
  EXPECT_EQ(mean_res.fallback_cmean_rounds, 0u);
}

// ---- Crash-consistent checkpoint/restore ----------------------------------

// Collects the per-round aggregate checksums + eval history that the
// bitwise-resume assertions compare.
struct TraceLog {
  std::vector<std::uint64_t> checksums;
  RoundObserver observer() {
    return [this](const RoundObservation& obs) {
      checksums.push_back(
          obs.aggregate.empty()
              ? 0
              : common::fnv1a64(obs.aggregate.data(),
                                obs.aggregate.size() * sizeof(float)));
    };
  }
};

TEST(Checkpoint, FileRoundTripAndCorruptionDetection) {
  const std::string path = tmp_path("roundtrip.ckpt");
  const std::string payload = std::string("the quick brown fox") +
                              std::string(3, '\0') + "tail";
  write_checkpoint_file(path, payload);
  EXPECT_TRUE(checkpoint_exists(path));
  EXPECT_EQ(read_checkpoint_file(path), payload);
  // Flip one payload byte: the checksum must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24 + 4);
    f.put('X');
  }
  EXPECT_THROW(read_checkpoint_file(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_FALSE(checkpoint_exists(path));
  EXPECT_THROW(read_checkpoint_file(path), std::runtime_error);
}

TEST(Checkpoint, KillAndResumeIsBitwiseIdentical) {
  const auto tt = tiny_data();
  const std::string path = tmp_path("resume.ckpt");
  std::remove(path.c_str());
  TrainerConfig cfg = tiny_config();
  cfg.chaos.profile = fault_profile_from_name("flaky");
  cfg.chaos.deadline_ms = 250.0;
  cfg.chaos.churn_leave_prob = 0.1;

  // Reference: uninterrupted run.
  TraceLog ref;
  {
    Trainer trainer(tt, tiny_model(), cfg);
    auto attack = make_attack("LIE");
    trainer.run(*attack, make_aggregator("SignGuard", 1), ref.observer());
  }

  // Killed at round 7 with checkpoints every 3 rounds (so the latest
  // checkpoint is round 6 — the resume replays round 6 exactly), then
  // resumed to completion.
  cfg.checkpoint.path = path;
  cfg.checkpoint.every = 3;
  cfg.checkpoint.halt_after_round = 7;
  TraceLog killed;
  {
    Trainer trainer(tt, tiny_model(), cfg);
    auto attack = make_attack("LIE");
    const TrainingResult res = trainer.run(
        *attack, make_aggregator("SignGuard", 1), killed.observer());
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(killed.checksums.size(), 7u);
  }
  cfg.checkpoint.halt_after_round = 0;
  cfg.checkpoint.resume = true;
  TraceLog resumed;
  TrainingResult res;
  {
    Trainer trainer(tt, tiny_model(), cfg);
    auto attack = make_attack("LIE");
    res = trainer.run(*attack, make_aggregator("SignGuard", 1),
                      resumed.observer());
    EXPECT_FALSE(res.halted);
  }
  // Rounds 0..5 ran pre-kill; the resumed run replays 6..11. Stitching
  // the pre-kill prefix (up to the checkpoint) to the resumed tail must
  // reproduce the uninterrupted trace bit for bit.
  ASSERT_EQ(resumed.checksums.size(), cfg.rounds - 6);
  std::vector<std::uint64_t> stitched(killed.checksums.begin(),
                                      killed.checksums.begin() + 6);
  stitched.insert(stitched.end(), resumed.checksums.begin(),
                  resumed.checksums.end());
  EXPECT_EQ(stitched, ref.checksums);
  std::remove(path.c_str());
}

TEST(Checkpoint, ConfigMismatchRefusesToResume) {
  const auto tt = tiny_data();
  const std::string path = tmp_path("mismatch.ckpt");
  std::remove(path.c_str());
  TrainerConfig cfg = tiny_config();
  cfg.checkpoint.path = path;
  cfg.checkpoint.every = 2;
  cfg.checkpoint.halt_after_round = 4;
  {
    Trainer trainer(tt, tiny_model(), cfg);
    auto attack = make_attack("NoAttack");
    trainer.run(*attack, make_aggregator("Mean", 1), nullptr);
  }
  ASSERT_TRUE(checkpoint_exists(path));
  cfg.checkpoint.halt_after_round = 0;
  cfg.checkpoint.resume = true;
  cfg.seed = 4;  // different run — the config hash must refuse the file
  Trainer trainer(tt, tiny_model(), cfg);
  auto attack = make_attack("NoAttack");
  EXPECT_THROW(trainer.run(*attack, make_aggregator("Mean", 1), nullptr),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, SweepResumeEmitsByteIdenticalJsonl) {
  const std::string dir = testing::TempDir() + "signguard_chaos_sweepckpt";
  ::mkdir(dir.c_str(), 0755);

  SweepGrid grid;
  grid.attacks = {"SignFlip"};
  grid.gars = {"SignGuard"};
  grid.faults = {"flaky"};
  grid.churns = {0.1};
  grid.rounds = 8;
  grid.n_clients = 10;

  // The sweep engine names each scenario's file by its id hash; the grid
  // has exactly one scenario, so pre-clean that file.
  const std::vector<ScenarioSpec> specs = grid.expand();
  ASSERT_EQ(specs.size(), 1u);
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(
                    common::fnv1a64(specs[0].id())));
  const std::string ckpt = dir + "/" + hex + ".ckpt";
  std::remove(ckpt.c_str());

  const auto run = [&](bool checkpointed, std::size_t halt, bool resume) {
    std::ostringstream os;
    SweepOptions opts;
    opts.scale = Scale::kSmoke;
    opts.jsonl = &os;
    if (checkpointed) {
      opts.checkpoint_dir = dir;
      opts.checkpoint_every = 3;
      opts.halt_after_round = halt;
      opts.resume = resume;
    }
    run_sweep(grid.expand(), opts);
    return os.str();
  };

  const std::string ref = run(false, 0, false);
  const std::string halted = run(true, 5, false);
  EXPECT_NE(halted.find("\"halted\":true"), std::string::npos);
  const std::string resumed = run(true, 0, true);
  EXPECT_EQ(resumed, ref);
  std::remove(ckpt.c_str());
}

// ---- Simulated-time accounting --------------------------------------------
// The round clock closes on the slowest DELIVERED uplink (or the deadline
// when one is set and someone is missing): a lost attempt chain is not on
// a synchronous server's critical path, however long it ran.

TEST(SimTime, RunTotalIsSumOfRoundTimes) {
  const auto tt = tiny_data();
  TrainerConfig cfg = tiny_config();
  cfg.chaos.profile = fault_profile_from_name("flaky");  // lossy, deadline 0
  Trainer trainer(tt, tiny_model(), cfg);
  auto attack = make_attack("NoAttack");
  double sum = 0.0;
  std::size_t rounds_seen = 0;
  const auto observer = [&](const RoundObservation& obs) {
    sum += obs.sim_round_ms;
    ++rounds_seen;
  };
  const TrainingResult res =
      trainer.run(*attack, make_aggregator("Mean", 1), observer);
  EXPECT_EQ(rounds_seen, cfg.rounds);
  EXPECT_GT(res.sim_time_ms, 0.0);
  // Exact, not approximate: the trainer accumulates the same doubles in
  // the same order the observer sees them.
  EXPECT_EQ(res.sim_time_ms, sum);
}

TEST(SimTime, RoundTimeIsSlowestDeliveredUplink) {
  const auto tt = tiny_data();
  TrainerConfig cfg = tiny_config();
  // The stock profiles practically never lose a chain (p_drop^attempts),
  // so crank the drop rate until losses are routine — the old accounting
  // (max over ALL chains) then visibly disagrees with delivered-only.
  cfg.chaos.profile = fault_profile_from_name("flaky");
  cfg.chaos.profile.p_drop = 0.5;
  cfg.chaos.profile.max_attempts = 2;
  // Full participation, no churn, no legacy dropout/straggler coins and
  // no deadline: every client transmits every round, so the expected
  // round time is reconstructible from the engine's pure per-(client,
  // round) streams alone.
  Trainer trainer(tt, tiny_model(), cfg);
  auto attack = make_attack("NoAttack");
  std::vector<double> round_ms;
  const auto observer = [&](const RoundObservation& obs) {
    round_ms.push_back(obs.sim_round_ms);
  };
  (void)trainer.run(*attack, make_aggregator("Mean", 1), observer);
  ASSERT_EQ(round_ms.size(), cfg.rounds);

  ChaosEngine engine(
      cfg.n_clients, cfg.chaos,
      common::stream_seed(cfg.seed, common::fnv1a64("signguard.chaos")));
  bool lost_chain_was_slowest = false;
  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    double delivered_max = 0.0, any_max = 0.0;
    for (std::size_t i = 0; i < cfg.n_clients; ++i) {
      const UplinkSim sim = engine.simulate_uplink(i, r);
      any_max = std::max(any_max, sim.elapsed_ms);
      if (sim.delivery == UplinkSim::Delivery::kOnTime ||
          sim.delivery == UplinkSim::Delivery::kCorrupt)
        delivered_max = std::max(delivered_max, sim.elapsed_ms);
    }
    EXPECT_EQ(round_ms[r], delivered_max) << "round " << r;
    lost_chain_was_slowest |= any_max > delivered_max;
  }
  // The distinction must actually have bitten: with the flaky profile's
  // loss rate over 20 clients x 12 rounds, some round's slowest chain is
  // a lost one (which the old accounting wrongly put on the clock).
  EXPECT_TRUE(lost_chain_was_slowest);
}

}  // namespace
}  // namespace signguard::fl
