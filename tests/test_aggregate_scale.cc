// Aggregation-at-scale suite: the Gram (GEMM-backed) vs direct pairwise
// backends, the packed-triangle PairwiseDistances, the column-panel
// coordinate statistics, and the selection-based quantile/Krum-ranking
// satellites. Cross-backend comparisons are tolerance-based (float-GEMM
// vs double pair loops); everything within one backend — thread counts,
// packed vs dense, panel vs per-coordinate — must be bitwise.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "aggregators/baselines.h"
#include "common/gradient_matrix.h"
#include "common/gradient_stats.h"
#include "common/parallel.h"
#include "common/quantiles.h"
#include "common/rng.h"
#include "common/vecops.h"

namespace signguard {
namespace {

// Restores the ambient dist backend / thread count when a test exits.
struct BackendGuard {
  vec::DistBackend prev = vec::dist_backend();
  ~BackendGuard() {
    vec::set_dist_backend(prev);
    common::set_thread_count(0);
  }
};

common::GradientMatrix gaussian_matrix(std::size_t n, std::size_t d,
                                       double mean, double stddev,
                                       std::uint64_t seed) {
  Rng rng(seed);
  common::GradientMatrix m(n, d);
  for (std::size_t i = 0; i < n; ++i)
    for (auto& v : m.row(i)) v = static_cast<float>(rng.normal(mean, stddev));
  return m;
}

// Adversarial fixture: benign cluster, a near-duplicate pair (Gram
// cancellation stress), huge-norm ByzMean-style outliers, and zero rows.
common::GradientMatrix adversarial_matrix(std::size_t d,
                                          std::uint64_t seed) {
  auto m = gaussian_matrix(10, d, 0.1, 1.0, seed);
  // Rows 1 = row 0 + tiny delta: dist2 ~ 1e-8 * d vs norms ~ d.
  for (std::size_t j = 0; j < d; ++j)
    m.at(1, j) = m.at(0, j) + (j % 2 == 0 ? 1e-4f : -1e-4f);
  // Huge-norm colluders.
  for (auto& v : m.row(2)) v = 1e4f;
  for (auto& v : m.row(3)) v = -1e4f;
  // Zero rows (dropped-out clients / crafted zeros).
  for (auto& v : m.row(4)) v = 0.0f;
  for (auto& v : m.row(5)) v = 0.0f;
  return m;
}

// ---- Gram vs direct --------------------------------------------------------

TEST(DistBackends, AgreeWithinToleranceOnAdversarialInputs) {
  BackendGuard guard;
  const auto m = adversarial_matrix(257, 21);
  const std::size_t n = m.rows();

  vec::set_dist_backend(vec::DistBackend::kDirect);
  const auto d2_direct = vec::pairwise_dist2(m);
  const auto dot_direct = vec::pairwise_dot(m);
  vec::set_dist_backend(vec::DistBackend::kGram);
  const auto d2_gram = vec::pairwise_dist2(m);
  const auto dot_gram = vec::pairwise_dot(m);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // Relative tolerance scaled by the row norms: the Gram identity
      // loses up to ~norm^2 * 1e-7 to float rounding/cancellation.
      const double scale =
          std::max({1.0, dot_direct[i * n + i], dot_direct[j * n + j]});
      EXPECT_NEAR(d2_gram[i * n + j], d2_direct[i * n + j], 1e-5 * scale)
          << "d2 (" << i << ", " << j << ")";
      EXPECT_NEAR(dot_gram[i * n + j], dot_direct[i * n + j], 1e-5 * scale)
          << "dot (" << i << ", " << j << ")";
      EXPECT_GE(d2_gram[i * n + j], 0.0) << "clamped at zero";
    }
  }
  // Zero rows: every quantity involving them is exact in both backends.
  EXPECT_EQ(d2_gram[4 * n + 5], 0.0);
  EXPECT_EQ(dot_gram[4 * n + 4], 0.0);
}

TEST(DistBackends, EachBackendIsThreadCountInvariant) {
  BackendGuard guard;
  const auto m = adversarial_matrix(193, 22);
  for (const auto backend :
       {vec::DistBackend::kGram, vec::DistBackend::kDirect}) {
    vec::set_dist_backend(backend);
    common::set_thread_count(1);
    const auto d2_t1 = vec::pairwise_dist2(m);
    const auto dot_t1 = vec::pairwise_dot(m);
    const auto packed_t1 = vec::pairwise_dist2_packed(m);
    common::set_thread_count(4);
    const auto d2_t4 = vec::pairwise_dist2(m);
    const auto dot_t4 = vec::pairwise_dot(m);
    const auto packed_t4 = vec::pairwise_dist2_packed(m);
    EXPECT_EQ(d2_t1, d2_t4);
    EXPECT_EQ(dot_t1, dot_t4);
    EXPECT_EQ(packed_t1, packed_t4);
  }
}

TEST(DistBackends, PackedTriangleMatchesDenseBitwise) {
  BackendGuard guard;
  for (const auto backend :
       {vec::DistBackend::kGram, vec::DistBackend::kDirect}) {
    vec::set_dist_backend(backend);
    const auto m = adversarial_matrix(129, 23);
    const std::size_t n = m.rows();
    const auto dense = vec::pairwise_dist2(m);
    const PairwiseDistances pd(m);
    ASSERT_EQ(pd.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_EQ(pd.dist2(i, j), dense[i * n + j]) << i << " " << j;
  }
}

// ---- column panels vs the seed per-coordinate scan -------------------------

// The pre-panel Median: per coordinate, gather the column then
// nth_element — the bitwise oracle.
std::vector<float> seed_median(const common::GradientMatrix& g) {
  const std::size_t n = g.rows(), d = g.cols();
  std::vector<float> out(d);
  const std::size_t mid = n / 2;
  std::vector<float> column(n);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = g.at(i, j);
    std::nth_element(column.begin(), column.begin() + std::ptrdiff_t(mid),
                     column.end());
    if (n % 2 == 1) {
      out[j] = column[mid];
    } else {
      const float lo = *std::max_element(
          column.begin(), column.begin() + std::ptrdiff_t(mid));
      out[j] = 0.5f * (lo + column[mid]);
    }
  }
  return out;
}

// The pre-panel TrimmedMean: full sort, ascending accumulation.
std::vector<float> seed_trimmed_mean(const common::GradientMatrix& g,
                                     std::size_t trim) {
  const std::size_t n = g.rows(), d = g.cols();
  std::vector<float> out(d);
  std::vector<float> column(n);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = g.at(i, j);
    std::sort(column.begin(), column.end());
    double acc = 0.0;
    for (std::size_t i = trim; i < n - trim; ++i) acc += column[i];
    out[j] = static_cast<float>(acc / double(n - 2 * trim));
  }
  return out;
}

TEST(ColumnPanels, MedianMatchesSeedBitwise) {
  agg::GarContext ctx;
  agg::MedianAggregator median;
  for (const std::size_t n : {5ul, 8ul, 33ul}) {
    // d = 130 spans two 64-wide panels plus a partial tile; duplicated
    // values exercise nth_element tie handling.
    auto m = gaussian_matrix(n, 130, 0.0, 1.0, 31 + n);
    for (std::size_t i = 0; i + 1 < n; i += 2) m.at(i, 7) = m.at(i + 1, 7);
    const auto expected = seed_median(m);
    const auto got = median.aggregate(m, ctx);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t j = 0; j < got.size(); ++j)
      EXPECT_EQ(got[j], expected[j]) << "n=" << n << " j=" << j;
  }
}

TEST(ColumnPanels, TrimmedMeanMatchesSeedBitwise) {
  agg::MedianAggregator median;
  for (const std::size_t n : {5ul, 9ul, 24ul}) {
    for (const std::size_t trim : {0ul, 1ul, 3ul}) {
      if (n <= 2 * trim) continue;
      agg::GarContext ctx;
      ctx.assumed_byzantine = trim;
      agg::TrimmedMeanAggregator tm;
      const auto m = gaussian_matrix(n, 130, 0.5, 2.0, 41 + n + trim);
      const auto expected = seed_trimmed_mean(m, trim);
      const auto got = tm.aggregate(m, ctx);
      for (std::size_t j = 0; j < got.size(); ++j)
        EXPECT_EQ(got[j], expected[j])
            << "n=" << n << " trim=" << trim << " j=" << j;
    }
  }
}

TEST(ColumnPanels, SweepIsThreadCountInvariant) {
  BackendGuard guard;
  agg::GarContext ctx;
  ctx.assumed_byzantine = 3;
  agg::MedianAggregator median;
  agg::TrimmedMeanAggregator tm;
  const auto m = gaussian_matrix(17, 300, 0.0, 1.0, 51);
  common::set_thread_count(1);
  const auto med_t1 = median.aggregate(m, ctx);
  const auto tm_t1 = tm.aggregate(m, ctx);
  common::set_thread_count(4);
  EXPECT_EQ(median.aggregate(m, ctx), med_t1);
  EXPECT_EQ(tm.aggregate(m, ctx), tm_t1);
}

// ---- Krum ranking / Bulyan mask satellites ---------------------------------

TEST(KrumRanking, PartialSortSelectionMatchesFullSortOracle) {
  BackendGuard guard;
  for (const auto backend :
       {vec::DistBackend::kGram, vec::DistBackend::kDirect}) {
    vec::set_dist_backend(backend);
    const auto m = gaussian_matrix(20, 64, 0.0, 1.0, 61);
    agg::GarContext ctx;
    ctx.assumed_byzantine = 4;
    agg::MultiKrumAggregator krum;
    krum.aggregate(m, ctx);
    const auto selected = krum.last_selected();

    // Oracle: recompute the scores exactly as the aggregator does, then
    // rank with a FULL sort under the same score-then-index ordering.
    const std::size_t n = m.rows();
    const std::size_t mm = std::min(ctx.assumed_byzantine, (n - 1) / 2);
    const std::size_t k = std::max<std::size_t>(1, n - mm - 2);
    const PairwiseDistances pd(m);
    std::vector<double> scores(n);
    std::vector<double> scratch;
    for (std::size_t i = 0; i < n; ++i)
      scores[i] = pd.krum_score(i, k, {}, scratch);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return scores[a] < scores[b] ||
                       (scores[a] == scores[b] && a < b);
              });
    const std::vector<std::size_t> expected(
        order.begin(), order.begin() + std::ptrdiff_t(std::min(k, n)));
    EXPECT_EQ(selected, expected);
  }
}

TEST(BulyanMask, ExcludeMaskSelectionMatchesEraseLoopBitwise) {
  BackendGuard guard;
  for (const auto backend :
       {vec::DistBackend::kGram, vec::DistBackend::kDirect}) {
    vec::set_dist_backend(backend);
    auto m = gaussian_matrix(14, 48, 1.0, 0.3, 71);
    for (auto& v : m.row(0)) v = 50.0f;  // one blatant outlier
    agg::GarContext ctx;
    ctx.assumed_byzantine = 2;
    agg::BulyanAggregator bulyan;
    const auto out = bulyan.aggregate(m, ctx);
    const auto selected = bulyan.last_selected();

    // Oracle: the seed's erase-based iterative-Krum loop over the same
    // PairwiseDistances.
    const std::size_t n = m.rows();
    const std::size_t mm = std::min(ctx.assumed_byzantine, (n - 1) / 2);
    const std::size_t theta = std::max<std::size_t>(1, n - 2 * mm);
    const PairwiseDistances pd(m);
    std::vector<std::size_t> remaining(n);
    std::iota(remaining.begin(), remaining.end(), 0);
    std::vector<std::size_t> expected;
    std::vector<double> row;
    while (expected.size() < theta && !remaining.empty()) {
      const std::size_t r = remaining.size();
      const std::size_t k =
          std::max<std::size_t>(1, r > mm + 2 ? r - mm - 2 : 1);
      double best_score = std::numeric_limits<double>::max();
      std::size_t best_pos = 0;
      for (std::size_t a = 0; a < r; ++a) {
        row.clear();
        for (std::size_t b = 0; b < r; ++b)
          if (b != a) row.push_back(pd.dist2(remaining[a], remaining[b]));
        const std::size_t kk = std::min(k, row.size());
        std::partial_sort(row.begin(), row.begin() + std::ptrdiff_t(kk),
                          row.end());
        double score = 0.0;
        for (std::size_t t = 0; t < kk; ++t) score += row[t];
        if (score < best_score) {
          best_score = score;
          best_pos = a;
        }
      }
      expected.push_back(remaining[best_pos]);
      remaining.erase(remaining.begin() + std::ptrdiff_t(best_pos));
    }
    EXPECT_EQ(selected, expected);
    EXPECT_EQ(out.size(), m.cols());
    // The outlier row must not survive phase 1.
    EXPECT_EQ(std::count(selected.begin(), selected.end(), 0u), 0);
  }
}

// ---- aggregate-level backend behaviour -------------------------------------

TEST(GramAggregation, KrumAndBulyanAreThreadCountInvariantPerBackend) {
  BackendGuard guard;
  const auto m = adversarial_matrix(200, 81);
  agg::GarContext ctx;
  ctx.assumed_byzantine = 2;
  for (const auto backend :
       {vec::DistBackend::kGram, vec::DistBackend::kDirect}) {
    vec::set_dist_backend(backend);
    agg::MultiKrumAggregator krum;
    agg::BulyanAggregator bulyan;
    common::set_thread_count(1);
    const auto krum_t1 = krum.aggregate(m, ctx);
    const auto bulyan_t1 = bulyan.aggregate(m, ctx);
    common::set_thread_count(4);
    EXPECT_EQ(krum.aggregate(m, ctx), krum_t1);
    EXPECT_EQ(bulyan.aggregate(m, ctx), bulyan_t1);
  }
}

TEST(GramAggregation, BackendsPickTheSameKrumSelectionOnSeparatedInputs) {
  BackendGuard guard;
  // Benign cluster + blatant outliers: the selection decision has a wide
  // margin, so both numeric flavours must agree exactly on *which*
  // gradients survive even though scores differ in low-order bits.
  auto m = gaussian_matrix(12, 100, 0.5, 0.1, 91);
  for (auto& v : m.row(10)) v = 300.0f;
  for (auto& v : m.row(11)) v = -300.0f;
  agg::GarContext ctx;
  ctx.assumed_byzantine = 2;
  agg::MultiKrumAggregator krum;
  vec::set_dist_backend(vec::DistBackend::kGram);
  krum.aggregate(m, ctx);
  const auto sel_gram = krum.last_selected();
  vec::set_dist_backend(vec::DistBackend::kDirect);
  krum.aggregate(m, ctx);
  EXPECT_EQ(sel_gram, krum.last_selected());
  for (const auto idx : sel_gram) EXPECT_LT(idx, 10u);
}

// ---- quantile selection satellite ------------------------------------------

TEST(QuantileSelection, MatchesSortOracleExactly) {
  Rng rng(101);
  for (const std::size_t n : {1ul, 2ul, 7ul, 100ul}) {
    std::vector<double> xs(n);
    for (auto& x : xs) x = rng.normal(0.0, 10.0);
    // Duplicates stress tie handling in the selection path.
    if (n >= 4) xs[n / 2] = xs[0];
    for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1.0}) {
      // Sort-based oracle (the seed implementation).
      std::vector<double> v(xs);
      std::sort(v.begin(), v.end());
      const std::size_t last = v.size() - 1;
      const double pos = q * double(last);
      const std::size_t lo =
          std::min(static_cast<std::size_t>(std::floor(pos)), last);
      const std::size_t hi =
          std::min(static_cast<std::size_t>(std::ceil(pos)), last);
      const double frac = pos - double(lo);
      const double expected = v[lo] * (1.0 - frac) + v[hi] * frac;
      EXPECT_EQ(stats::quantile(xs, q), expected) << "n=" << n << " q=" << q;
    }
  }
  EXPECT_TRUE(std::isnan(stats::quantile({}, 0.5)));
}

}  // namespace
}  // namespace signguard
