// Observability-subsystem tests (src/obs): the two-plane contract. The
// counter plane must be bitwise invariant across SIGNGUARD_THREADS and
// submission order, survive checkpoint kill+resume, and stay strictly
// gated out of the JSONL when off (committed goldens never change). The
// timing plane must emit well-formed nesting per lane and a structurally
// valid Chrome trace_event document — its values are nondeterministic
// and nothing here pins them.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/parallel.h"
#include "common/serial.h"
#include "fl/sweep.h"
#include "obs/trace.h"

namespace signguard::obs {
namespace {

struct ThreadGuard {
  explicit ThreadGuard(std::size_t n) : prev(common::thread_count()) {
    common::set_thread_count(n);
  }
  ~ThreadGuard() { common::set_thread_count(prev); }
  std::size_t prev;
};

std::string serialized(const MetricsRegistry& reg) {
  common::ByteWriter w;
  reg.serialize(w);
  return w.bytes();
}

// ---- Counter plane: determinism -------------------------------------------

TEST(Metrics, CountersAreSubmissionOrderInvariant) {
  const auto run = [](bool reverse) {
    MetricsRegistry reg(false);
    ScopedMetrics scope(&reg);
    reg.begin_round(0);
    for (std::size_t k = 0; k < 100; ++k) {
      const std::size_t i = reverse ? 99 - k : k;
      count(Stage::kFilter, Counter::kFilterAdmits, i);
      count(Stage::kDecode, Counter::kRowsDecoded, 1);
    }
    reg.end_round();
    return serialized(reg);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Metrics, CountersAreThreadCountInvariant) {
  const auto run = [](std::size_t threads) {
    ThreadGuard g(threads);
    MetricsRegistry reg(false);
    ScopedMetrics scope(&reg);
    reg.begin_round(7);
    // Helper threads inherit the launcher's context via
    // common::task_context — every add must land in the registry no
    // matter which worker executes the chunk.
    common::parallel_for(1000, [&](std::size_t i) {
      count(Stage::kClientCompute, Counter::kGemmFlops, i + 1);
    });
    reg.end_round();
    return serialized(reg);
  };
  const std::string one = run(1);
  EXPECT_EQ(one, run(4));
  // And the total is the exact arithmetic sum, not merely stable.
  MetricsRegistry check(false);
  common::ByteReader r(one);
  check.restore(r);
  ASSERT_EQ(check.rounds().size(), 1u);
  EXPECT_EQ(check.rounds()[0].round, 7u);
  EXPECT_EQ(check.rounds()[0].counters[std::size_t(Stage::kClientCompute)]
                                      [std::size_t(Counter::kGemmFlops)],
            1000u * 1001u / 2u);
}

TEST(Metrics, StageScopeAttributesCountsToItsStage) {
  MetricsRegistry reg(false);
  ScopedMetrics scope(&reg);
  reg.begin_round(0);
  {
    StageScope eval(Stage::kEval);
    count(Counter::kGemmFlops, 5);  // stage-less: the scope's stage
  }
  count(Counter::kGemmFlops, 7);  // back to the default kOther
  reg.end_round();
  const RoundCost& rc = reg.rounds()[0];
  EXPECT_EQ(rc.counters[std::size_t(Stage::kEval)]
                       [std::size_t(Counter::kGemmFlops)],
            5u);
  EXPECT_EQ(rc.counters[std::size_t(Stage::kOther)]
                       [std::size_t(Counter::kGemmFlops)],
            7u);
}

TEST(Metrics, CountIsANoOpWithoutARegistry) {
  // No ScopedMetrics anywhere on this thread: must not crash, must not
  // leak into a later-attached registry.
  count(Stage::kFilter, Counter::kFilterAdmits, 123);
  MetricsRegistry reg(false);
  ScopedMetrics scope(&reg);
  reg.begin_round(0);
  reg.end_round();
  EXPECT_EQ(reg.totals().counters[std::size_t(Stage::kFilter)]
                                 [std::size_t(Counter::kFilterAdmits)],
            0u);
}

TEST(Metrics, SerializeMidRoundMatchesEndRound) {
  // A checkpoint lands at a round boundary: serialize() with the round
  // still open must produce the bytes the closed round would.
  MetricsRegistry a(false), b(false);
  for (MetricsRegistry* reg : {&a, &b}) {
    ScopedMetrics scope(reg);
    reg->begin_round(3);
    count(Stage::kUplink, Counter::kWireBytes, 4096);
  }
  const std::string mid = serialized(a);  // round 3 still open
  b.end_round();
  EXPECT_EQ(mid, serialized(b));
}

// ---- Sweep integration: gating and bitwise identity -----------------------

fl::SweepGrid obs_grid() {
  fl::SweepGrid grid;
  grid.attacks = {"SignFlip"};
  grid.gars = {"SignGuard"};
  grid.rounds = 6;
  grid.n_clients = 10;
  return grid;
}

std::string sweep_jsonl(const fl::SweepOptions& base) {
  std::ostringstream os;
  fl::SweepOptions opts = base;
  opts.scale = fl::Scale::kSmoke;
  opts.jsonl = &os;
  fl::run_sweep(obs_grid().expand(), opts);
  return os.str();
}

TEST(ObsJsonl, GatedOffByDefaultAndAdditiveWhenOn) {
  fl::SweepOptions off;
  const std::string line_off = sweep_jsonl(off);
  EXPECT_EQ(line_off.find("\"obs\""), std::string::npos);

  fl::SweepOptions on;
  on.obs_counters = true;
  std::string line_on = sweep_jsonl(on);
  const std::size_t begin = line_on.find(",\"obs\":[");
  ASSERT_NE(begin, std::string::npos);
  // The counter records hold no nested arrays, so the first ']' closes
  // the block. Timing was off, so no "ms" sub-objects either.
  const std::size_t end = line_on.find(']', begin);
  ASSERT_NE(end, std::string::npos);
  EXPECT_EQ(line_on.find("\"ms\":"), std::string::npos);
  line_on.erase(begin, end - begin + 1);
  // Counters observe the run without perturbing it: removing the obs
  // block must give back the obs-off line byte for byte.
  EXPECT_EQ(line_on, line_off);
}

TEST(ObsJsonl, CountersBitwiseIdenticalAcrossThreadCounts) {
  fl::SweepOptions on;
  on.obs_counters = true;
  std::string one, four;
  {
    ThreadGuard g(1);
    one = sweep_jsonl(on);
  }
  {
    ThreadGuard g(4);
    four = sweep_jsonl(on);
  }
  EXPECT_NE(one.find("\"obs\":["), std::string::npos);
  EXPECT_EQ(one, four);
}

TEST(ObsJsonl, KillAndResumeKeepsCounterContinuity) {
  const std::string dir = testing::TempDir() + "signguard_obs_ckpt";
  ::mkdir(dir.c_str(), 0755);
  const std::vector<fl::ScenarioSpec> specs = obs_grid().expand();
  ASSERT_EQ(specs.size(), 1u);
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(
                    common::fnv1a64(specs[0].id())));
  const std::string ckpt = dir + "/" + hex + ".ckpt";
  std::remove(ckpt.c_str());

  // The reference is itself checkpointed (kCheckpoint work is
  // observable: the obs block of a non-checkpointed run differs), just
  // never killed. Save cadence and rounds match the halted+resumed pair,
  // so both runs write checkpoints after the same rounds.
  fl::SweepOptions base;
  base.obs_counters = true;
  base.checkpoint_dir = dir;
  base.checkpoint_every = 2;
  const std::string ref = sweep_jsonl(base);
  EXPECT_NE(ref.find("checkpoint.checkpoint_bytes"), std::string::npos);
  std::remove(ckpt.c_str());

  fl::SweepOptions halted = base;
  halted.halt_after_round = 3;
  (void)sweep_jsonl(halted);

  fl::SweepOptions resumed = base;
  resumed.resume = true;
  const std::string full = sweep_jsonl(resumed);
  // Rounds counted before the kill ride the checkpoint: the resumed
  // line — obs block included — is the uninterrupted line.
  EXPECT_EQ(full, ref);
  std::remove(ckpt.c_str());
}

// ---- Timing plane: structure only -----------------------------------------

TEST(Trace, SpansNestWellFormedPerLane) {
  set_trace_enabled(true);
  trace_reset();
  fl::SweepOptions opts;
  (void)sweep_jsonl(opts);
  const auto lanes = trace_snapshot();
  set_trace_enabled(false);
  std::size_t total = 0;
  for (const auto& lane : lanes) {
    for (std::size_t i = 0; i < lane.size(); ++i) {
      ASSERT_NE(lane[i].name, nullptr);
      if (i > 0) EXPECT_GE(lane[i].start_ns, lane[i - 1].start_ns);
      for (std::size_t j = i + 1; j < lane.size(); ++j) {
        // RAII spans on one thread are disjoint or contained, never
        // partially overlapping.
        const auto end_i = lane[i].start_ns + lane[i].dur_ns;
        const auto end_j = lane[j].start_ns + lane[j].dur_ns;
        EXPECT_TRUE(lane[j].start_ns >= end_i || end_j <= end_i)
            << lane[i].name << " / " << lane[j].name;
      }
    }
    total += lane.size();
  }
  EXPECT_GT(total, 0u);  // the round loop emitted spans
  trace_reset();
}

TEST(Trace, ChromeTraceJsonIsStructurallyValid) {
  set_trace_enabled(true);
  trace_reset();
  {
    Span outer("test/outer", 1);
    Span inner("test/inner \"quoted\\\"");  // name escaping must hold up
  }
  const std::string doc = chrome_trace_json();
  set_trace_enabled(false);
  trace_reset();

  // String-aware brace/bracket balance scan.
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char ch : doc) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (ch == '\\')
        escaped = true;
      else if (ch == '"')
        in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("test/outer"), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(Trace, DisabledSpansRecordNothing) {
  set_trace_enabled(false);
  trace_reset();
  {
    Span s("test/should-not-appear");
  }
  for (const auto& lane : trace_snapshot()) EXPECT_TRUE(lane.empty());
}

}  // namespace
}  // namespace signguard::obs
