// GradientMatrix layer tests: the flat representation itself, the thread
// pool behind it, the threaded matrix kernels, and the two properties the
// refactor promises — (1) the legacy vector-of-vectors adapter and the
// matrix entry point produce bit-identical aggregates for every defense
// in table1_defenses() under every smoke attack, and (2) results are
// independent of SIGNGUARD_THREADS.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <tuple>

#include "attacks/simple_attacks.h"
#include "common/gradient_matrix.h"
#include "common/gradient_stats.h"
#include "common/parallel.h"
#include "common/quantiles.h"
#include "common/vecops.h"
#include "data/synth_image.h"
#include "fl/experiment.h"
#include "nn/models.h"

namespace signguard {
namespace {

std::vector<std::vector<float>> gaussian_grads(std::size_t n, std::size_t d,
                                               double mean, double stddev,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(rng.normal_vector(d, mean, stddev));
  return out;
}

// Restores the automatic pool size when a test body returns.
struct ThreadCountGuard {
  ~ThreadCountGuard() { common::set_thread_count(0); }
};

// ------------------------------------------------------- representation

TEST(GradientMatrix, RoundTripsThroughVectors) {
  const auto vs = gaussian_grads(7, 33, 0.1, 1.0, 1);
  const auto m = common::GradientMatrix::from_vectors(vs);
  ASSERT_EQ(m.rows(), 7u);
  ASSERT_EQ(m.cols(), 33u);
  EXPECT_EQ(m.to_vectors(), vs);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      EXPECT_EQ(m.at(i, j), vs[i][j]);
}

TEST(GradientMatrix, RowsAreContiguous) {
  common::GradientMatrix m(3, 4);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) m.at(i, j) = float(i * 4 + j);
  EXPECT_EQ(m.row(1).data(), m.data() + 4);
  EXPECT_EQ(m.row(2)[3], 11.0f);
}

TEST(GradientMatrix, FromViewsMatchesFromVectors) {
  const auto vs = gaussian_grads(5, 16, 0.0, 1.0, 2);
  const auto a = common::GradientMatrix::from_vectors(vs);
  const auto views = a.row_views();
  const auto b = common::GradientMatrix::from_views(views);
  EXPECT_EQ(b.to_vectors(), vs);
}

TEST(GradientMatrix, ResizeReusesBuffer) {
  common::GradientMatrix m(4, 8);
  const float* p = m.data();
  m.resize(2, 8);  // shrink: same allocation
  EXPECT_EQ(m.data(), p);
  EXPECT_EQ(m.rows(), 2u);
}

// --------------------------------------------------------- thread pool

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  common::set_thread_count(4);
  std::vector<std::atomic<int>> hits(1000);
  common::parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelChunks, ChunksPartitionTheRange) {
  ThreadCountGuard guard;
  common::set_thread_count(3);
  std::vector<int> owner(100, -1);
  common::parallel_chunks(
      100, [&](std::size_t begin, std::size_t end, std::size_t worker) {
        for (std::size_t i = begin; i < end; ++i) owner[i] = int(worker);
      });
  for (const int w : owner) EXPECT_GE(w, 0);
}

TEST(ParallelFor, EnvOverrideControlsPoolSize) {
  ThreadCountGuard guard;
  ASSERT_EQ(setenv("SIGNGUARD_THREADS", "3", 1), 0);
  common::set_thread_count(0);  // back to auto -> env
  EXPECT_EQ(common::thread_count(), 3u);
  unsetenv("SIGNGUARD_THREADS");
  EXPECT_GE(common::thread_count(), 1u);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadCountGuard guard;
  common::set_thread_count(4);
  std::atomic<int> total{0};
  common::parallel_for(8, [&](std::size_t) {
    common::parallel_for(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

// ------------------------------------------------------ matrix kernels

TEST(MatrixKernels, RowNormsMatchScalarNorms) {
  const auto vs = gaussian_grads(9, 77, 0.2, 1.5, 3);
  const auto m = common::GradientMatrix::from_vectors(vs);
  const auto norms = vec::row_norms(m);
  for (std::size_t i = 0; i < vs.size(); ++i)
    EXPECT_DOUBLE_EQ(norms[i], vec::norm(vs[i]));
}

TEST(MatrixKernels, PairwiseBlocksMatchScalarKernels) {
  const auto vs = gaussian_grads(6, 40, 0.0, 1.0, 4);
  const auto m = common::GradientMatrix::from_vectors(vs);
  const auto prev_backend = vec::dist_backend();
  // The direct backend is the scalar pair loops — exact match required.
  vec::set_dist_backend(vec::DistBackend::kDirect);
  const auto d2 = vec::pairwise_dist2(m);
  const auto gram = vec::pairwise_dot(m);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (i != j) EXPECT_DOUBLE_EQ(d2[i * 6 + j], vec::dist2(vs[i], vs[j]));
      if (i == j)
        EXPECT_DOUBLE_EQ(gram[i * 6 + j], vec::dot(vs[i], vs[i]));
      else
        EXPECT_DOUBLE_EQ(gram[i * 6 + j], vec::dot(vs[i], vs[j]));
    }
  }
  // The Gram backend accumulates in float via one GEMM — tolerance only
  // (test_aggregate_scale stresses the adversarial cases).
  vec::set_dist_backend(vec::DistBackend::kGram);
  const auto d2g = vec::pairwise_dist2(m);
  const auto gramg = vec::pairwise_dot(m);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(d2g[i * 6 + j], d2[i * 6 + j], 1e-3);
      EXPECT_NEAR(gramg[i * 6 + j], gram[i * 6 + j], 1e-3);
    }
  vec::set_dist_backend(prev_backend);
}

TEST(MatrixKernels, MeanAndMomentsMatchLegacy) {
  const auto vs = gaussian_grads(8, 51, 0.3, 0.7, 5);
  const auto m = common::GradientMatrix::from_vectors(vs);
  const auto mean_m = vec::mean_of(m);
  const auto mean_v = vec::mean_of(vs);
  ASSERT_EQ(mean_m.size(), mean_v.size());
  for (std::size_t j = 0; j < mean_m.size(); ++j)
    EXPECT_NEAR(mean_m[j], mean_v[j], 1e-6);
  const auto mm = vec::coordinate_moments(m);
  const auto mv = vec::coordinate_moments(vs);
  for (std::size_t j = 0; j < mm.mean.size(); ++j) {
    EXPECT_NEAR(mm.mean[j], mv.mean[j], 1e-6);
    EXPECT_NEAR(mm.stddev[j], mv.stddev[j], 1e-6);
  }
}

TEST(MatrixKernels, FusedSignStatisticsMatchPerRow) {
  const auto vs = gaussian_grads(10, 128, 0.1, 1.0, 6);
  const auto m = common::GradientMatrix::from_vectors(vs);
  Rng rng(7);
  const auto coords = select_coordinates(128, 0.5, rng);
  const auto fused = sign_statistics(m, coords);
  ASSERT_EQ(fused.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    const SignStats s = sign_statistics(vs[i], coords);
    EXPECT_DOUBLE_EQ(fused[i].pos, s.pos);
    EXPECT_DOUBLE_EQ(fused[i].zero, s.zero);
    EXPECT_DOUBLE_EQ(fused[i].neg, s.neg);
  }
}

// ------------------------------- adapter equivalence across every GAR

// Builds a crafted gradient population: m_byz malicious rows first (as
// the trainer lays them out), benign rows after.
std::vector<std::vector<float>> attacked_population(
    const std::string& attack_name, std::size_t n, std::size_t m_byz,
    std::size_t d, std::uint64_t seed) {
  const auto benign = gaussian_grads(n - m_byz, d, 0.3, 0.8, seed);
  const auto byz_honest = gaussian_grads(m_byz, d, 0.3, 0.8, seed + 1);
  Rng rng(seed + 2);
  auto attack = fl::make_attack(attack_name);
  attack->begin_round(0, rng);
  const attacks::AttackInput in =
      attacks::make_attack_input(benign, byz_honest, n, m_byz, &rng);
  std::vector<std::vector<float>> all = attack->craft(in.ctx);
  all.insert(all.end(), benign.begin(), benign.end());
  return all;
}

class AdapterEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(AdapterEquivalence, LegacyAndMatrixPathsAgreeBitwise) {
  const auto [defense, attack_name] = GetParam();
  const std::size_t n = 20, m_byz = 4, d = 256;
  const auto grads = attacked_population(attack_name, n, m_byz, d, 11);
  const auto matrix = common::GradientMatrix::from_vectors(grads);

  // Separate aggregator instances (and Rngs for randomized rules) so
  // per-instance state cannot leak between the two paths.
  auto gar_legacy = fl::make_aggregator(defense, 2022);
  auto gar_matrix = fl::make_aggregator(defense, 2022);
  Rng rng_a(33), rng_b(33);
  agg::GarContext ctx_a, ctx_b;
  ctx_a.assumed_byzantine = ctx_b.assumed_byzantine = m_byz;
  ctx_a.rng = &rng_a;
  ctx_b.rng = &rng_b;

  const auto via_legacy = gar_legacy->aggregate(grads, ctx_a);
  const auto via_matrix = gar_matrix->aggregate(matrix, ctx_b);
  ASSERT_EQ(via_legacy.size(), d);
  EXPECT_EQ(via_legacy, via_matrix)
      << "defense=" << defense << " attack=" << attack_name;
}

INSTANTIATE_TEST_SUITE_P(
    DefensesTimesAttacks, AdapterEquivalence,
    ::testing::Combine(::testing::ValuesIn(fl::table1_defenses()),
                       ::testing::Values("NoAttack", "SignFlip", "LIE",
                                         "ByzMean", "MinMax")),
    [](const auto& info) {
      auto name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ------------------------------------ thread-count determinism per GAR

class ThreadDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(ThreadDeterminism, OneThreadAndFourThreadsAgreeBitwise) {
  ThreadCountGuard guard;
  const auto defense = GetParam();
  const std::size_t n = 24, m_byz = 5, d = 512;
  const auto grads = attacked_population("LIE", n, m_byz, d, 21);
  const auto matrix = common::GradientMatrix::from_vectors(grads);

  auto run_with = [&](std::size_t threads) {
    common::set_thread_count(threads);
    auto gar = fl::make_aggregator(defense, 2022);
    Rng rng(55);
    agg::GarContext ctx;
    ctx.assumed_byzantine = m_byz;
    ctx.rng = &rng;
    return gar->aggregate(matrix, ctx);
  };

  const auto single = run_with(1);
  const auto pooled = run_with(4);
  EXPECT_EQ(single, pooled) << "defense=" << defense;
}

INSTANTIATE_TEST_SUITE_P(AllDefenses, ThreadDeterminism,
                         ::testing::ValuesIn(fl::table1_defenses()),
                         [](const auto& info) {
                           auto name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// ------------------------------------- trainer-level thread determinism

TEST(TrainerThreads, ParallelClientLoopIsThreadCountInvariant) {
  data::SynthImageConfig dcfg;
  dcfg.train_per_class = 30;
  dcfg.test_per_class = 10;
  dcfg.seed = 5;
  const auto tt = data::make_synth_image(dcfg);
  fl::TrainerConfig cfg;
  cfg.n_clients = 12;
  cfg.byzantine_frac = 0.25;
  cfg.rounds = 6;
  cfg.batch_size = 4;
  cfg.eval_every = 3;
  cfg.eval_max_samples = 0;
  cfg.seed = 9;
  auto factory = [](std::uint64_t s) { return nn::make_mlp(256, 8, 10, s); };

  auto run_with = [&](std::size_t threads) {
    ThreadCountGuard guard;
    common::set_thread_count(threads);
    fl::Trainer trainer(tt, factory, cfg);
    attacks::SignFlipAttack attack;
    return trainer.run(attack, fl::make_aggregator("SignGuard"));
  };
  const fl::TrainingResult single = run_with(1);
  const fl::TrainingResult pooled = run_with(3);
  ASSERT_EQ(single.history.size(), pooled.history.size());
  for (std::size_t i = 0; i < single.history.size(); ++i)
    EXPECT_DOUBLE_EQ(single.history[i].test_accuracy,
                     pooled.history[i].test_accuracy);
  EXPECT_DOUBLE_EQ(single.final_accuracy, pooled.final_accuracy);
}

// --------------------------------------------------- quantile guards

TEST(QuantileGuards, EmptyInputsReturnNaN) {
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(stats::median(empty)));
  EXPECT_TRUE(std::isnan(stats::quantile(empty, 0.5)));
}

TEST(QuantileGuards, FullRangeQuantilesAreSafe) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0), 3.0);
  // Out-of-range q values clamp instead of indexing past the sample.
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.5), 3.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, -0.5), 1.0);
}

}  // namespace
}  // namespace signguard
