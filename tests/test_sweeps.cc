// Property sweeps (TEST_P): algebraic invariants every aggregation rule
// must satisfy across shapes — translation/scale equivariance, coordinate
// bounds, permutation invariance — plus attack-parameter sweeps (LIE's z,
// ByzMean's inner attack, Min-Max/Min-Sum perturbation modes).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "aggregators/baselines.h"
#include "attacks/byzmean.h"
#include "attacks/lie.h"
#include "attacks/minmax_minsum.h"
#include "attacks/simple_attacks.h"
#include "common/vecops.h"
#include "core/signguard.h"

namespace signguard {
namespace {

std::vector<std::vector<float>> gaussian_grads(std::size_t n, std::size_t d,
                                               double mean, double stddev,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(rng.normal_vector(d, mean, stddev));
  return out;
}

std::unique_ptr<agg::Aggregator> make_gar(const std::string& name) {
  using namespace agg;
  if (name == "Mean") return std::make_unique<MeanAggregator>();
  if (name == "TrMean") return std::make_unique<TrimmedMeanAggregator>();
  if (name == "Median") return std::make_unique<MedianAggregator>();
  if (name == "GeoMed") return std::make_unique<GeoMedAggregator>();
  if (name == "Multi-Krum") return std::make_unique<MultiKrumAggregator>();
  if (name == "Bulyan") return std::make_unique<BulyanAggregator>();
  if (name == "DnC") return std::make_unique<DnCAggregator>();
  return std::make_unique<core::SignGuard>(core::plain_config());
}

const std::vector<std::string>& all_gars() {
  static const std::vector<std::string> kGars = {
      "Mean",   "TrMean", "Median",    "GeoMed",
      "Multi-Krum", "Bulyan", "DnC",       "SignGuard"};
  return kGars;
}

// ---- shape robustness: every GAR on every degenerate population ------------

class ShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {
};

TEST_P(ShapeSweep, FiniteOutputRightDimension) {
  const auto [name, n] = GetParam();
  for (const std::size_t d : {1u, 3u, 64u}) {
    const auto g = gaussian_grads(n, d, 0.1, 1.0, 17 + n + d);
    Rng rng(3);
    agg::GarContext ctx;
    ctx.assumed_byzantine = n > 4 ? n / 5 : 0;
    ctx.rng = &rng;
    auto gar = make_gar(name);
    const auto out = gar->aggregate(g, ctx);
    ASSERT_EQ(out.size(), d) << name << " n=" << n << " d=" << d;
    for (const float v : out)
      ASSERT_TRUE(std::isfinite(v)) << name << " n=" << n << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GarsTimesPopulations, ShapeSweep,
    ::testing::Combine(::testing::ValuesIn(all_gars()),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{5}, std::size_t{20})),
    [](const auto& info) {
      auto name = std::get<0>(info.param) + "_n" +
                  std::to_string(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---- equivariances for the coordinate-wise / geometric rules ---------------

class EquivarianceSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(EquivarianceSweep, TranslationEquivariant) {
  const auto name = GetParam();
  const auto g = gaussian_grads(11, 16, 0.0, 1.0, 23);
  const std::vector<float> shift(16, 2.5f);
  auto shifted = g;
  for (auto& v : shifted) v = vec::add(v, shift);
  Rng r1(5), r2(5);
  agg::GarContext c1, c2;
  c1.assumed_byzantine = c2.assumed_byzantine = 2;
  c1.rng = &r1;
  c2.rng = &r2;
  const auto base = make_gar(name)->aggregate(g, c1);
  const auto moved = make_gar(name)->aggregate(shifted, c2);
  for (std::size_t j = 0; j < 16; ++j)
    EXPECT_NEAR(moved[j], base[j] + 2.5f, 1e-3) << name;
}

TEST_P(EquivarianceSweep, PositiveScaleEquivariant) {
  const auto name = GetParam();
  const auto g = gaussian_grads(11, 16, 0.3, 1.0, 29);
  auto scaled = g;
  for (auto& v : scaled) vec::scale(v, 3.0);
  Rng r1(5), r2(5);
  agg::GarContext c1, c2;
  c1.assumed_byzantine = c2.assumed_byzantine = 2;
  c1.rng = &r1;
  c2.rng = &r2;
  const auto base = make_gar(name)->aggregate(g, c1);
  const auto big = make_gar(name)->aggregate(scaled, c2);
  for (std::size_t j = 0; j < 16; ++j)
    EXPECT_NEAR(big[j], 3.0f * base[j], 2e-3) << name;
}

// Krum/Bulyan/DnC also satisfy these but select stochastically under
// ties; the coordinate-wise and geometric rules must satisfy them exactly.
INSTANTIATE_TEST_SUITE_P(CoordinateRules, EquivarianceSweep,
                         ::testing::Values("Mean", "TrMean", "Median",
                                           "GeoMed"));

TEST(CoordinateBounds, RobustRulesStayInsideValueEnvelope) {
  // Coordinate-wise robust rules must output values within the
  // [min, max] envelope of the received values, per coordinate.
  const auto g = gaussian_grads(9, 32, 0.0, 2.0, 31);
  for (const auto& name : {"TrMean", "Median"}) {
    Rng rng(6);
    agg::GarContext ctx;
    ctx.assumed_byzantine = 2;
    ctx.rng = &rng;
    const auto out = make_gar(name)->aggregate(g, ctx);
    for (std::size_t j = 0; j < 32; ++j) {
      float lo = g[0][j], hi = g[0][j];
      for (const auto& gi : g) {
        lo = std::min(lo, gi[j]);
        hi = std::max(hi, gi[j]);
      }
      EXPECT_GE(out[j], lo) << name;
      EXPECT_LE(out[j], hi) << name;
    }
  }
}

TEST(PermutationInvariance, CoordinateRulesIgnoreClientOrder) {
  auto g = gaussian_grads(12, 24, 0.1, 1.0, 37);
  auto shuffled = g;
  std::reverse(shuffled.begin(), shuffled.end());
  for (const auto& name : {"Mean", "TrMean", "Median", "GeoMed"}) {
    agg::GarContext ctx;
    ctx.assumed_byzantine = 3;
    const auto a = make_gar(name)->aggregate(g, ctx);
    const auto b = make_gar(name)->aggregate(shuffled, ctx);
    for (std::size_t j = 0; j < 24; ++j) EXPECT_NEAR(a[j], b[j], 1e-5);
  }
}

// ---- SignGuard norm-clipping convexity --------------------------------------

TEST(ClippedMeanProperty, OutputNormNeverExceedsBound) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto g = gaussian_grads(15, 64, 0.0, double(seed), seed);
    std::vector<std::size_t> sel(15);
    for (std::size_t i = 0; i < 15; ++i) sel[i] = i;
    const double bound = 0.7;
    const auto out = core::clipped_mean(g, sel, bound);
    EXPECT_LE(vec::norm(out), bound + 1e-6);
  }
}

// ---- attack-parameter sweeps -------------------------------------------------

TEST(LieSweep, StrongerZMeansFewerMaliciousKept) {
  const auto benign = gaussian_grads(40, 2048, 0.3, 0.8, 41);
  auto kept_at = [&](double z) {
    auto g = benign;
    const auto gm = attacks::LieAttack::craft_vector(benign, z);
    for (int i = 0; i < 10; ++i) g.push_back(gm);
    core::SignGuard sg(core::plain_config());
    sg.aggregate(g, agg::GarContext{});
    std::size_t kept = 0;
    for (const auto idx : sg.last_selected())
      if (idx >= 40) ++kept;
    return kept;
  };
  // A blatant LIE (large z) must never be kept MORE than a subtle one.
  EXPECT_LE(kept_at(2.0), kept_at(0.05));
  EXPECT_EQ(kept_at(2.0), 0u);
}

class ByzMeanInnerSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ByzMeanInnerSweep, MeanIdentityHoldsForEveryInnerAttack) {
  const auto inner_name = GetParam();
  std::unique_ptr<attacks::Attack> inner;
  if (inner_name == "Random")
    inner = std::make_unique<attacks::RandomAttack>(0.0, 0.5);
  else if (inner_name == "SignFlip")
    inner = std::make_unique<attacks::SignFlipAttack>();
  else
    inner = std::make_unique<attacks::LieAttack>(0.3);
  attacks::ByzMeanAttack attack(std::move(inner));

  const auto benign = gaussian_grads(16, 64, 0.1, 1.0, 43);
  const auto byz = gaussian_grads(4, 64, 0.1, 1.0, 44);
  Rng rng(45);
  const attacks::AttackInput in =
      attacks::make_attack_input(benign, byz, 20, 4, &rng);
  const auto out = attack.craft(in.ctx);
  std::vector<std::vector<float>> all(out.begin(), out.end());
  all.insert(all.end(), benign.begin(), benign.end());
  const auto mean = vec::mean_of(all);
  for (std::size_t j = 0; j < 64; ++j)
    EXPECT_NEAR(mean[j], out[0][j], 1e-3) << inner_name;
}

INSTANTIATE_TEST_SUITE_P(InnerAttacks, ByzMeanInnerSweep,
                         ::testing::Values("Random", "SignFlip", "LIE"));

class PerturbationSweep
    : public ::testing::TestWithParam<attacks::Perturbation> {};

TEST_P(PerturbationSweep, MinMaxConstraintHoldsForEveryPerturbation) {
  const auto p = GetParam();
  const auto benign = gaussian_grads(12, 128, 0.2, 1.0, 47);
  const auto byz = gaussian_grads(3, 128, 0.2, 1.0, 48);
  Rng rng(49);
  const attacks::AttackInput in =
      attacks::make_attack_input(benign, byz, 15, 3, &rng);
  attacks::MinMaxAttack attack(p);
  const auto out = attack.craft(in.ctx);
  double max_to_benign = 0.0, max_pair = 0.0;
  for (std::size_t i = 0; i < benign.size(); ++i) {
    max_to_benign = std::max(max_to_benign, vec::dist2(out[0], benign[i]));
    for (std::size_t j = i + 1; j < benign.size(); ++j)
      max_pair = std::max(max_pair, vec::dist2(benign[i], benign[j]));
  }
  EXPECT_LE(max_to_benign, max_pair * (1.0 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    AllPerturbations, PerturbationSweep,
    ::testing::Values(attacks::Perturbation::kInverseStd,
                      attacks::Perturbation::kInverseUnit,
                      attacks::Perturbation::kInverseSign));

}  // namespace
}  // namespace signguard
