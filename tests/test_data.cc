// Data substrate tests: synthetic generator properties (determinism,
// label balance, learnable structure), batch assembly, label flipping and
// the IID / sort-and-partition non-IID partitioners.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "data/partition.h"
#include "data/synth_color.h"
#include "data/synth_image.h"
#include "data/synth_text.h"

namespace signguard::data {
namespace {

TEST(SynthImage, SizesAndLabels) {
  SynthImageConfig cfg;
  cfg.train_per_class = 30;
  cfg.test_per_class = 10;
  const TrainTest tt = make_synth_image(cfg);
  EXPECT_EQ(tt.train.size(), 300u);
  EXPECT_EQ(tt.test.size(), 100u);
  EXPECT_EQ(tt.train.feature_dim(), 16u * 16u);
  EXPECT_EQ(tt.train.num_classes, 10u);
  const auto hist = label_histogram(
      tt.train, [&] {
        std::vector<std::size_t> all(tt.train.size());
        std::iota(all.begin(), all.end(), 0);
        return all;
      }());
  for (const auto c : hist) EXPECT_EQ(c, 30u);
}

TEST(SynthImage, DeterministicForSameSeed) {
  SynthImageConfig cfg;
  cfg.train_per_class = 5;
  cfg.test_per_class = 2;
  const TrainTest a = make_synth_image(cfg);
  const TrainTest b = make_synth_image(cfg);
  ASSERT_EQ(a.train.size(), b.train.size());
  EXPECT_EQ(a.train.y, b.train.y);
  EXPECT_EQ(a.train.x.front(), b.train.x.front());
}

TEST(SynthImage, DifferentSeedsDiffer) {
  SynthImageConfig cfg;
  cfg.train_per_class = 5;
  cfg.test_per_class = 2;
  cfg.seed = 1;
  const TrainTest a = make_synth_image(cfg);
  cfg.seed = 2;
  const TrainTest b = make_synth_image(cfg);
  EXPECT_NE(a.train.x.front(), b.train.x.front());
}

TEST(SynthImage, SampleOrderIsShuffled) {
  SynthImageConfig cfg;
  cfg.train_per_class = 50;
  cfg.test_per_class = 5;
  const TrainTest tt = make_synth_image(cfg);
  // If unshuffled the first 50 samples would share one label.
  std::set<int> first_labels(tt.train.y.begin(), tt.train.y.begin() + 50);
  EXPECT_GT(first_labels.size(), 1u);
}

TEST(SynthColor, ShapeAndChannels) {
  SynthColorConfig cfg;
  cfg.train_per_class = 10;
  cfg.test_per_class = 5;
  const TrainTest tt = make_synth_color(cfg);
  EXPECT_EQ(tt.train.feature_dim(), 3u * 16u * 16u);
  EXPECT_EQ(tt.train.sample_shape,
            (std::vector<std::size_t>{3, 16, 16}));
}

TEST(SynthText, TokensWithinVocab) {
  SynthTextConfig cfg;
  cfg.train_per_class = 20;
  cfg.test_per_class = 5;
  const TrainTest tt = make_synth_text(cfg);
  EXPECT_EQ(tt.train.num_classes, 4u);
  for (const auto& doc : tt.train.x) {
    EXPECT_EQ(doc.size(), cfg.seq_len);
    for (const float tok : doc) {
      EXPECT_GE(tok, 0.0f);
      EXPECT_LT(tok, float(cfg.vocab));
      EXPECT_FLOAT_EQ(tok, std::floor(tok));  // integral ids
    }
  }
}

TEST(MakeBatch, StacksSamplesInOrder) {
  Dataset ds;
  ds.sample_shape = {2};
  ds.num_classes = 2;
  ds.x = {{1.0f, 2.0f}, {3.0f, 4.0f}, {5.0f, 6.0f}};
  ds.y = {0, 1, 0};
  const std::vector<std::size_t> idx = {2, 0};
  const nn::Tensor b = make_batch(ds, idx);
  EXPECT_EQ(b.shape(), (std::vector<std::size_t>{2, 2}));
  EXPECT_FLOAT_EQ(b[0], 5.0f);
  EXPECT_FLOAT_EQ(b[2], 1.0f);
  const auto labels = batch_labels(ds, idx);
  EXPECT_EQ(labels, (std::vector<int>{0, 0}));
}

TEST(BatchLabels, FlipMapsToComplement) {
  Dataset ds;
  ds.num_classes = 10;
  ds.x = {{0.0f}, {0.0f}};
  ds.y = {0, 7};
  ds.sample_shape = {1};
  const std::vector<std::size_t> idx = {0, 1};
  const auto flipped = batch_labels(ds, idx, /*flip_labels=*/true);
  EXPECT_EQ(flipped, (std::vector<int>{9, 2}));
}

TEST(IidPartition, CoversAllSamplesOnce) {
  Rng rng(5);
  const auto parts = iid_partition(103, 10, rng);
  EXPECT_EQ(parts.size(), 10u);
  std::vector<std::size_t> all;
  for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());
  EXPECT_EQ(all.size(), 103u);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
  // Shard sizes within 1 of each other.
  for (const auto& p : parts) {
    EXPECT_GE(p.size(), 10u);
    EXPECT_LE(p.size(), 11u);
  }
}

TEST(NoniidPartition, CoversAllSamples) {
  SynthImageConfig cfg;
  cfg.train_per_class = 40;
  cfg.test_per_class = 2;
  const TrainTest tt = make_synth_image(cfg);
  Rng rng(6);
  const auto parts = noniid_partition(tt.train, 8, 0.5, rng);
  std::vector<std::size_t> all;
  for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.size(), tt.train.size());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
}

// Property sweep: lower s must produce more skewed label distributions.
class NoniidSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(NoniidSkewTest, SkewIncreasesAsSFalls) {
  const double s = GetParam();
  SynthImageConfig cfg;
  cfg.train_per_class = 100;
  cfg.test_per_class = 2;
  const TrainTest tt = make_synth_image(cfg);
  Rng rng(7);
  const auto parts = noniid_partition(tt.train, 10, s, rng);
  // Measure skew as the average fraction held by each client's two most
  // common labels.
  double skew = 0.0;
  for (const auto& p : parts) {
    auto hist = label_histogram(tt.train, p);
    std::sort(hist.begin(), hist.end(), std::greater<>());
    const double total = double(p.size());
    skew += double(hist[0] + hist[1]) / total;
  }
  skew /= double(parts.size());
  // IID expectation is ~0.2 (2 of 10 classes); full sorting pushes toward 1.
  const double expected_floor = 0.2 + 0.7 * (1.0 - s) - 0.12;
  EXPECT_GT(skew, expected_floor);
  if (s == 1.0) EXPECT_LT(skew, 0.35);
}

INSTANTIATE_TEST_SUITE_P(SkewLevels, NoniidSkewTest,
                         ::testing::Values(1.0, 0.8, 0.5, 0.3, 0.0));

// Property: every partitioner assigns every sample index exactly once,
// to exactly the requested number of shards, for any (seed, client
// count, sample count) — including counts that do not divide evenly.
TEST(IidPartition, EveryIndexAssignedExactlyOnceAcrossConfigs) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const std::size_t n_clients : {1u, 3u, 7u, 16u}) {
      for (const std::size_t n_samples : {16u, 50u, 101u}) {
        Rng rng(seed);
        const auto parts = iid_partition(n_samples, n_clients, rng);
        ASSERT_EQ(parts.size(), n_clients);
        std::vector<std::size_t> all;
        for (const auto& p : parts) {
          all.insert(all.end(), p.begin(), p.end());
          // Shard-size invariant: an even split within one sample.
          EXPECT_GE(p.size(), n_samples / n_clients);
          EXPECT_LE(p.size(), n_samples / n_clients + 1);
        }
        std::sort(all.begin(), all.end());
        ASSERT_EQ(all.size(), n_samples);
        for (std::size_t i = 0; i < all.size(); ++i)
          ASSERT_EQ(all[i], i) << "seed=" << seed << " n=" << n_clients;
      }
    }
  }
}

TEST(NoniidPartition, EveryIndexAssignedExactlyOnceAcrossSkews) {
  SynthImageConfig cfg;
  cfg.train_per_class = 30;
  cfg.test_per_class = 2;
  const TrainTest tt = make_synth_image(cfg);
  for (const std::uint64_t seed : {4u, 9u}) {
    for (const std::size_t n_clients : {2u, 5u, 9u}) {
      for (const double s : {0.0, 0.3, 0.7, 1.0}) {
        Rng rng(seed);
        const auto parts = noniid_partition(tt.train, n_clients, s, rng);
        ASSERT_EQ(parts.size(), n_clients);
        std::vector<std::size_t> all;
        for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());
        std::sort(all.begin(), all.end());
        ASSERT_EQ(all.size(), tt.train.size())
            << "seed=" << seed << " n=" << n_clients << " s=" << s;
        for (std::size_t i = 0; i < all.size(); ++i) ASSERT_EQ(all[i], i);
      }
    }
  }
}

// Property: s = 1 means "all data spread IID", so the non-IID
// partitioner must produce the exact same shards as the IID partitioner
// from the same RNG state — for multiple seeds and client counts.
TEST(NoniidPartition, SkewOneIsExactlyIid) {
  SynthImageConfig cfg;
  cfg.train_per_class = 20;
  cfg.test_per_class = 2;
  const TrainTest tt = make_synth_image(cfg);
  for (const std::uint64_t seed : {3u, 9u, 17u}) {
    for (const std::size_t n_clients : {4u, 10u}) {
      Rng a(seed), b(seed);
      const auto noniid = noniid_partition(tt.train, n_clients, 1.0, a);
      const auto iid = iid_partition(tt.train.size(), n_clients, b);
      EXPECT_EQ(noniid, iid) << "seed=" << seed << " n=" << n_clients;
    }
  }
}

TEST(NoniidPartition, SEqualOneMatchesIidBalance) {
  SynthImageConfig cfg;
  cfg.train_per_class = 50;
  cfg.test_per_class = 2;
  const TrainTest tt = make_synth_image(cfg);
  Rng rng(8);
  const auto parts = noniid_partition(tt.train, 5, 1.0, rng);
  for (const auto& p : parts) {
    EXPECT_GE(p.size(), 99u);
    EXPECT_LE(p.size(), 101u);
  }
}

}  // namespace
}  // namespace signguard::data
