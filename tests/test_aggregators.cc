// Baseline GAR tests: exact behaviour on small hand-built inputs, then
// parameterized robustness sweeps — every robust rule must stay close to
// the benign mean when a minority of gradients is arbitrarily corrupted.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "aggregators/baselines.h"
#include "aggregators/signsgd.h"
#include "common/rng.h"
#include "common/vecops.h"

namespace signguard::agg {
namespace {

std::vector<std::vector<float>> gaussian_grads(std::size_t n, std::size_t d,
                                               double mean, double stddev,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(rng.normal_vector(d, mean, stddev));
  return out;
}

GarContext ctx_with(std::size_t m, Rng* rng = nullptr) {
  GarContext ctx;
  ctx.assumed_byzantine = m;
  ctx.rng = rng;
  return ctx;
}

TEST(Mean, ExactAverage) {
  const std::vector<std::vector<float>> g = {{1.0f, 2.0f}, {3.0f, 6.0f}};
  MeanAggregator mean;
  const auto out = mean.aggregate(g, ctx_with(0));
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], 4.0f);
}

TEST(TrimmedMean, RemovesExtremesPerCoordinate) {
  const std::vector<std::vector<float>> g = {
      {100.0f}, {1.0f}, {2.0f}, {3.0f}, {-100.0f}};
  TrimmedMeanAggregator tm;
  const auto out = tm.aggregate(g, ctx_with(1));
  EXPECT_FLOAT_EQ(out[0], 2.0f);
}

TEST(TrimmedMean, ClampsOversizedTrim) {
  const std::vector<std::vector<float>> g = {{1.0f}, {2.0f}, {3.0f}};
  TrimmedMeanAggregator tm;
  const auto out = tm.aggregate(g, ctx_with(10));  // trim clamped to 1
  EXPECT_FLOAT_EQ(out[0], 2.0f);
}

TEST(Median, OddAndEvenCounts) {
  MedianAggregator med;
  const std::vector<std::vector<float>> odd = {{1.0f}, {9.0f}, {2.0f}};
  EXPECT_FLOAT_EQ(med.aggregate(odd, ctx_with(0))[0], 2.0f);
  const std::vector<std::vector<float>> even = {{1.0f}, {2.0f}, {3.0f},
                                                {10.0f}};
  EXPECT_FLOAT_EQ(med.aggregate(even, ctx_with(0))[0], 2.5f);
}

TEST(Median, RobustToMinorityOutliers) {
  auto g = gaussian_grads(9, 32, 1.0, 0.1, 1);
  for (int i = 0; i < 4; ++i) g.push_back(std::vector<float>(32, 1e6f));
  MedianAggregator med;
  const auto out = med.aggregate(g, ctx_with(4));
  for (const float v : out) EXPECT_NEAR(v, 1.0f, 0.5f);
}

TEST(GeoMed, MatchesMedianOn1D) {
  // In 1-D the geometric median is the coordinate median.
  const std::vector<std::vector<float>> g = {{0.0f}, {1.0f}, {10.0f}};
  GeoMedAggregator gm;
  EXPECT_NEAR(gm.aggregate(g, ctx_with(0))[0], 1.0f, 1e-3);
}

TEST(GeoMed, MinimizesSumOfDistances) {
  const auto g = gaussian_grads(15, 8, 0.0, 1.0, 2);
  GeoMedAggregator gm;
  const auto med = gm.aggregate(g, ctx_with(0));
  auto cost = [&](std::span<const float> x) {
    double acc = 0.0;
    for (const auto& gi : g) acc += vec::dist(gi, x);
    return acc;
  };
  const double med_cost = cost(med);
  // The geometric median must beat the mean and every input point.
  EXPECT_LE(med_cost, cost(vec::mean_of(g)) + 1e-6);
  for (const auto& gi : g) EXPECT_LE(med_cost, cost(gi) + 1e-6);
}

TEST(GeoMed, RobustToLargeOutliers) {
  auto g = gaussian_grads(12, 16, 2.0, 0.1, 3);
  for (int i = 0; i < 5; ++i) g.push_back(std::vector<float>(16, -1e5f));
  GeoMedAggregator gm;
  const auto out = gm.aggregate(g, ctx_with(5));
  for (const float v : out) EXPECT_NEAR(v, 2.0f, 0.5f);
}

TEST(MultiKrum, PicksBenignUnderBlatantOutliers) {
  auto g = gaussian_grads(8, 16, 0.5, 0.1, 4);
  g.push_back(std::vector<float>(16, 500.0f));
  g.push_back(std::vector<float>(16, -500.0f));
  MultiKrumAggregator krum;
  const auto out = krum.aggregate(g, ctx_with(2));
  for (const float v : out) EXPECT_NEAR(v, 0.5f, 0.3f);
  // Outlier indices 8 and 9 must not be selected.
  for (const auto idx : krum.last_selected()) EXPECT_LT(idx, 8u);
}

TEST(MultiKrum, SelectionSizeMatchesRule) {
  const auto g = gaussian_grads(10, 8, 0.0, 1.0, 5);
  MultiKrumAggregator krum;
  krum.aggregate(g, ctx_with(2));
  // c = n - m - 2 = 6.
  EXPECT_EQ(krum.last_selected().size(), 6u);
}

TEST(MultiKrum, NoByzantineStillAverages) {
  const auto g = gaussian_grads(6, 8, 1.0, 0.01, 6);
  MultiKrumAggregator krum;
  const auto out = krum.aggregate(g, ctx_with(0));
  for (const float v : out) EXPECT_NEAR(v, 1.0f, 0.1f);
}

TEST(Bulyan, SelectsThetaGradients) {
  const auto g = gaussian_grads(14, 8, 0.0, 1.0, 7);
  BulyanAggregator bulyan;
  bulyan.aggregate(g, ctx_with(2));
  // theta = n - 2m = 10.
  EXPECT_EQ(bulyan.last_selected().size(), 10u);
}

TEST(Bulyan, RobustToCoordinateSpikes) {
  // Outlier hides a huge value in one coordinate; Bulyan's trimmed
  // coordinate step must suppress it.
  auto g = gaussian_grads(12, 8, 1.0, 0.05, 8);
  auto evil = g[0];
  evil[3] = 1e6f;
  g.push_back(evil);
  g.push_back(evil);
  BulyanAggregator bulyan;
  const auto out = bulyan.aggregate(g, ctx_with(2));
  EXPECT_NEAR(out[3], 1.0f, 0.5f);
}

TEST(DnC, FiltersCollinearOutliers) {
  Rng rng(9);
  auto g = gaussian_grads(16, 64, 0.0, 0.2, 10);
  // Malicious gradients displaced along a common direction: exactly the
  // signal DnC's top-singular-direction projection detects.
  std::vector<float> dir(64, 1.0f);
  for (int i = 0; i < 4; ++i) {
    auto evil = std::vector<float>(64, 0.0f);
    vec::axpy(5.0, dir, evil);
    g.push_back(evil);
  }
  DnCAggregator dnc;
  const auto out = dnc.aggregate(g, ctx_with(4, &rng));
  for (const float v : out) EXPECT_NEAR(v, 0.0f, 0.3f);
  // At most a benign minority may be removed; the mean of kept gradients
  // must exclude most of the planted outliers.
  std::size_t evil_kept = 0;
  for (const auto idx : dnc.last_selected())
    if (idx >= 16) ++evil_kept;
  EXPECT_LE(evil_kept, 1u);
}

TEST(DnC, KeepsEveryoneWhenNoByzantineAssumed) {
  Rng rng(11);
  const auto g = gaussian_grads(8, 32, 0.0, 1.0, 12);
  DnCAggregator dnc;
  dnc.aggregate(g, ctx_with(0, &rng));
  EXPECT_EQ(dnc.last_selected().size(), 8u);
}

TEST(SignSgd, MajorityVotePerCoordinate) {
  const std::vector<std::vector<float>> g = {
      {1.0f, -3.0f, 0.0f}, {0.5f, -1.0f, 2.0f}, {-2.0f, 4.0f, 5.0f}};
  SignSgdMajorityAggregator sign_sgd(1.0);
  const auto out = sign_sgd.aggregate(g, GarContext{});
  EXPECT_FLOAT_EQ(out[0], 1.0f);   // votes +1 +1 -1 -> +
  EXPECT_FLOAT_EQ(out[1], -1.0f);  // votes -1 -1 +1 -> -
  EXPECT_FLOAT_EQ(out[2], 1.0f);   // votes 0 +1 +1 -> +
}

TEST(SignSgd, TieEmitsZeroAndStepScales) {
  const std::vector<std::vector<float>> g = {{1.0f}, {-1.0f}};
  SignSgdMajorityAggregator sign_sgd(0.25);
  EXPECT_FLOAT_EQ(sign_sgd.aggregate(g, GarContext{})[0], 0.0f);
  const std::vector<std::vector<float>> g2 = {{1.0f}, {2.0f}};
  EXPECT_FLOAT_EQ(sign_sgd.aggregate(g2, GarContext{})[0], 0.25f);
}

TEST(SignSgd, FaultTolerantToMagnitudeInflation) {
  // The property the paper cites from Bernstein et al.: magnitudes are
  // discarded, so a minority sending huge values cannot move the vote.
  auto g = gaussian_grads(9, 32, 0.5, 0.1, 77);
  for (int i = 0; i < 4; ++i) g.push_back(std::vector<float>(32, -1e9f));
  SignSgdMajorityAggregator sign_sgd(1.0);
  const auto out = sign_sgd.aggregate(g, GarContext{});
  for (const float v : out) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(SingleGradient, AllRulesReturnIt) {
  const std::vector<std::vector<float>> g = {{1.0f, -2.0f, 3.0f}};
  Rng rng(13);
  MeanAggregator mean;
  TrimmedMeanAggregator tm;
  MedianAggregator med;
  GeoMedAggregator geo;
  MultiKrumAggregator krum;
  BulyanAggregator bulyan;
  DnCAggregator dnc;
  for (Aggregator* a : std::initializer_list<Aggregator*>{
           &mean, &tm, &med, &geo, &krum, &bulyan, &dnc}) {
    const auto out = a->aggregate(g, ctx_with(0, &rng));
    for (std::size_t j = 0; j < g[0].size(); ++j)
      EXPECT_NEAR(out[j], g[0][j], 1e-4) << a->name();
  }
}

// ---- Parameterized robustness sweep ----------------------------------------
// Every robust rule, told the true Byzantine count, must keep the
// aggregate near the benign mean under each corruption pattern.

struct RobustCase {
  std::string gar;
  std::string corruption;
};

class RobustnessSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
 protected:
  static std::unique_ptr<Aggregator> make(const std::string& name) {
    if (name == "TrMean") return std::make_unique<TrimmedMeanAggregator>();
    if (name == "Median") return std::make_unique<MedianAggregator>();
    if (name == "GeoMed") return std::make_unique<GeoMedAggregator>();
    if (name == "Multi-Krum") return std::make_unique<MultiKrumAggregator>();
    if (name == "Bulyan") return std::make_unique<BulyanAggregator>();
    return std::make_unique<DnCAggregator>();
  }

  static std::vector<std::vector<float>> corrupt(
      const std::string& kind, std::vector<std::vector<float>> g,
      std::size_t m, Rng& rng) {
    const std::size_t d = g.front().size();
    for (std::size_t i = 0; i < m; ++i) {
      if (kind == "huge") {
        g[i].assign(d, 1e4f);
      } else if (kind == "negated") {
        vec::scale(g[i], -50.0);
      } else if (kind == "random") {
        g[i] = rng.normal_vector(d, 0.0, 100.0);
      } else {  // zero
        g[i].assign(d, 0.0f);
      }
    }
    return g;
  }
};

TEST_P(RobustnessSweep, StaysNearBenignMean) {
  const auto [gar_name, corruption] = GetParam();
  Rng rng(99);
  const std::size_t n = 20, m = 4, d = 32;
  auto g = gaussian_grads(n, d, 1.0, 0.2, 100);
  const auto benign_mean = [&] {
    std::vector<std::vector<float>> benign(g.begin() + m, g.end());
    return vec::mean_of(benign);
  }();
  g = corrupt(corruption, std::move(g), m, rng);
  auto gar = make(gar_name);
  const auto out = gar->aggregate(g, ctx_with(m, &rng));
  // The corrupted coordinates are displaced by >= 50; robust rules must
  // land within a small ball of the benign mean.
  EXPECT_LT(vec::dist(out, benign_mean), 2.0)
      << gar_name << " under " << corruption;
}

INSTANTIATE_TEST_SUITE_P(
    AllRulesAllCorruptions, RobustnessSweep,
    ::testing::Combine(::testing::Values("TrMean", "Median", "GeoMed",
                                         "Multi-Krum", "Bulyan", "DnC"),
                       ::testing::Values("huge", "negated", "random",
                                         "zero")),
    [](const auto& info) {
      auto name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace signguard::agg
