// Golden-trace regression suite: a canonical smoke-scale scenario set
// runs through the sweep engine and its deterministic JSONL output —
// per-round aggregate checksums included — is compared byte-for-byte
// against the committed golden file.
//
// The canonical set pins rounds, client count and seed explicitly, so
// the traces are independent of SIGNGUARD_SCALE and SIGNGUARD_THREADS.
// Any change to the numeric pipeline (data generation, client training,
// an aggregation rule, the RNG stream layout) shifts a checksum and
// fails this suite — which is the point. If the change is intentional,
// regenerate and commit:
//
//   SIGNGUARD_REGEN_GOLDEN=1 ./build/test_golden_traces
//   git add tests/golden/ && git commit
//
// The golden file lives in the source tree (tests/golden/), located via
// the SIGNGUARD_SOURCE_DIR compile definition.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "fl/sweep.h"

namespace signguard::fl {
namespace {

std::string golden_path() {
  return std::string(SIGNGUARD_SOURCE_DIR) + "/tests/golden/canonical_sweep.jsonl";
}

// The canonical scenario set: two workloads (image + text data paths),
// three attack regimes, three GAR families, both partition modes, plus
// one partial-participation and one failure-injection scenario — 29 in
// total, each pinned to 5 rounds of 10 clients.
std::vector<ScenarioSpec> canonical_scenarios() {
  SweepGrid grid;
  grid.workloads = {WorkloadKind::kMnistLike, WorkloadKind::kAgNewsLike};
  grid.attacks = {"NoAttack", "SignFlip", "LIE"};
  grid.gars = {"Mean", "Median", "SignGuard"};
  grid.skews = {kIidSkew, 0.5};
  grid.rounds = 5;
  grid.n_clients = 10;
  grid.seed = 7;
  // 2 x 3 x 3 x 2 = 36 grid cells is more than the smoke budget needs;
  // thin the text workload to the iid partition.
  std::vector<ScenarioSpec> specs;
  for (auto& s : grid.expand()) {
    if (s.workload == WorkloadKind::kAgNewsLike && s.skew >= 0.0) continue;
    specs.push_back(std::move(s));
  }
  // Diversity cells: partial participation and failure injection.
  ScenarioSpec partial;
  partial.attack = "SignFlip";
  partial.gar = "SignGuard";
  partial.participation = 0.6;
  partial.rounds = 5;
  partial.n_clients = 10;
  specs.push_back(partial);
  ScenarioSpec flaky;
  flaky.attack = "NoAttack";
  flaky.gar = "Median";
  flaky.dropout_prob = 0.2;
  flaky.straggler_prob = 0.2;
  flaky.rounds = 5;
  flaky.n_clients = 10;
  specs.push_back(flaky);
  return specs;
}

TEST(GoldenTraces, CanonicalSweepMatchesCommittedTraces) {
  std::ostringstream os;
  SweepOptions opts;
  opts.scale = Scale::kSmoke;  // irrelevant: every spec pins its rounds
  opts.capture_rounds = true;
  opts.include_timing = false;
  opts.jsonl = &os;
  const auto results = run_sweep(canonical_scenarios(), opts);
  for (const auto& r : results)
    EXPECT_TRUE(r.error.empty()) << r.spec.id() << ": " << r.error;
  const std::string actual = os.str();
  ASSERT_FALSE(actual.empty());

  if (std::getenv("SIGNGUARD_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "regenerated " << golden_path() << " ("
                 << results.size() << " scenarios) — commit it";
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in) << "missing golden file " << golden_path()
                  << " — run with SIGNGUARD_REGEN_GOLDEN=1 and commit";
  std::stringstream golden;
  golden << in.rdbuf();

  if (actual != golden.str()) {
    // Byte equality failed; report the first differing line for a usable
    // diff instead of two multi-kilobyte blobs.
    std::istringstream a(actual), g(golden.str());
    std::string la, lg;
    std::size_t line = 0;
    while (true) {
      const bool ha = static_cast<bool>(std::getline(a, la));
      const bool hg = static_cast<bool>(std::getline(g, lg));
      ++line;
      if (!ha && !hg) break;
      ASSERT_EQ(hg, ha) << "line count diverges at line " << line;
      ASSERT_EQ(lg, la) << "golden trace mismatch at line " << line
                        << "\nIf this change is intentional, regenerate: "
                           "SIGNGUARD_REGEN_GOLDEN=1 ./test_golden_traces";
    }
    ASSERT_EQ(golden.str(), actual);  // e.g. trailing-byte difference
  }
  SUCCEED();
}

// The golden scenario set itself must stay deterministic across repeated
// in-process runs (guards against hidden global state leaking between
// scenarios or sweeps).
TEST(GoldenTraces, RepeatedRunsAreBitIdentical) {
  SweepOptions opts;
  opts.scale = Scale::kSmoke;
  std::ostringstream a, b;
  opts.jsonl = &a;
  run_sweep(canonical_scenarios(), opts);
  opts.jsonl = &b;
  run_sweep(canonical_scenarios(), opts);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace signguard::fl
