// SignGuard core tests: each filter in isolation (norm thresholding, sign
// clustering, clipped-mean aggregation, index intersection), then the
// composed Algorithm 2 against the paper's attacks, the -Sim/-Dist
// variants, ablation toggles, and the fraction-agnostic property.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>

#include "attacks/byzmean.h"
#include "attacks/lie.h"
#include "attacks/minmax_minsum.h"
#include "attacks/simple_attacks.h"
#include "comm/codec.h"
#include "comm/stats.h"
#include "comm/wire.h"
#include "common/gradient_matrix.h"
#include "common/gradient_stats.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/vecops.h"
#include "core/filters.h"
#include "core/signguard.h"

namespace signguard::core {
namespace {

std::vector<std::vector<float>> gaussian_grads(std::size_t n, std::size_t d,
                                               double mean, double stddev,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(rng.normal_vector(d, mean, stddev));
  return out;
}

agg::GarContext gar_ctx() { return agg::GarContext{}; }

// --------------------------------------------------------- norm filter

TEST(NormFilter, AcceptsWithinBand) {
  // Norms 1,1,1,10 -> median 1; with R=3 the big one is rejected.
  std::vector<std::vector<float>> g = {
      {1.0f, 0.0f}, {0.0f, 1.0f}, {-1.0f, 0.0f}, {10.0f, 0.0f}};
  const auto r = norm_filter(g, NormFilterConfig{});
  EXPECT_DOUBLE_EQ(r.median_norm, 1.0);
  EXPECT_EQ(r.accepted, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(NormFilter, RejectsVanishinglySmall) {
  std::vector<std::vector<float>> g = {
      {1.0f, 0.0f}, {0.0f, 1.0f}, {-1.0f, 0.0f}, {0.0001f, 0.0f}};
  const auto r = norm_filter(g, NormFilterConfig{});
  EXPECT_EQ(r.accepted, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(NormFilter, BoundaryRatiosInclusive) {
  // Ratios exactly L and R are accepted (closed interval).
  std::vector<std::vector<float>> g = {
      {1.0f, 0.0f}, {1.0f, 0.0f}, {1.0f, 0.0f}, {3.0f, 0.0f}, {0.1f, 0.0f}};
  const auto r = norm_filter(g, NormFilterConfig{});
  EXPECT_EQ(r.accepted.size(), 5u);
}

TEST(NormFilter, AllZeroGradientsAcceptEverything) {
  std::vector<std::vector<float>> g(4, std::vector<float>(3, 0.0f));
  const auto r = norm_filter(g, NormFilterConfig{});
  EXPECT_EQ(r.accepted.size(), 4u);
  EXPECT_DOUBLE_EQ(r.median_norm, 0.0);
}

// ------------------------------------------------------ sign clustering

TEST(SignClusterFilter, IsolatesSignFlippedGradients) {
  // Benign gradients biased positive; flipped ones biased negative: the
  // sign statistics separate them cleanly.
  auto g = gaussian_grads(16, 512, 0.5, 1.0, 1);
  for (std::size_t i = 0; i < 4; ++i) g.push_back(vec::scaled(g[i], -1.0));
  Rng rng(2);
  SignClusterConfig cfg;
  const auto r = sign_cluster_filter(g, {}, 1.0, cfg, rng);
  EXPECT_EQ(r.accepted.size(), 16u);
  for (const auto idx : r.accepted) EXPECT_LT(idx, 16u);
}

TEST(SignClusterFilter, FeatureRowsAreSignProportions) {
  const auto g = gaussian_grads(6, 256, 0.0, 1.0, 3);
  Rng rng(4);
  SignClusterConfig cfg;
  cfg.coord_frac = 1.0;  // use every coordinate -> exact statistics
  const auto r = sign_cluster_filter(g, {}, 1.0, cfg, rng);
  ASSERT_EQ(r.features.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_EQ(r.features[i].size(), 3u);
    const SignStats s = sign_statistics(g[i]);
    EXPECT_NEAR(r.features[i][0], s.pos, 1e-6);
    EXPECT_NEAR(r.features[i][1], s.zero, 1e-6);
    EXPECT_NEAR(r.features[i][2], s.neg, 1e-6);
    EXPECT_NEAR(r.features[i][0] + r.features[i][1] + r.features[i][2], 1.0,
                1e-6);
  }
}

TEST(SignClusterFilter, SimVariantAppendsCosineFeature) {
  const auto g = gaussian_grads(5, 64, 0.2, 1.0, 5);
  const std::vector<float> ref = g[0];
  Rng rng(6);
  SignClusterConfig cfg;
  cfg.similarity = SimilarityFeature::kCosine;
  const auto r = sign_cluster_filter(g, ref, 1.0, cfg, rng);
  ASSERT_EQ(r.features[0].size(), 4u);
  EXPECT_NEAR(r.features[0][3], 1.0, 1e-5);  // cos(g0, g0) == 1
}

TEST(SignClusterFilter, DistVariantNormalizesByMedianNorm) {
  const auto g = gaussian_grads(5, 64, 0.2, 1.0, 7);
  const std::vector<float> ref = g[0];
  Rng rng(8);
  SignClusterConfig cfg;
  cfg.similarity = SimilarityFeature::kDistance;
  const double med = 2.0;
  const auto r = sign_cluster_filter(g, ref, med, cfg, rng);
  EXPECT_NEAR(r.features[0][3], 0.0, 1e-6);
  EXPECT_NEAR(r.features[1][3], vec::dist(g[1], ref) / med, 1e-5);
}

TEST(SignClusterFilter, KMeansClustererAlsoSeparates) {
  auto g = gaussian_grads(12, 512, 0.5, 1.0, 9);
  for (std::size_t i = 0; i < 3; ++i) g.push_back(vec::scaled(g[i], -1.0));
  Rng rng(10);
  SignClusterConfig cfg;
  cfg.clusterer = Clusterer::kKMeans2;
  const auto r = sign_cluster_filter(g, {}, 1.0, cfg, rng);
  EXPECT_EQ(r.accepted.size(), 12u);
  for (const auto idx : r.accepted) EXPECT_LT(idx, 12u);
}

// ------------------------------------------------- aggregation helpers

TEST(ClippedMean, ClipsOnlyAboveBound) {
  const std::vector<std::vector<float>> g = {{3.0f, 4.0f},   // norm 5
                                             {0.3f, 0.4f}};  // norm 0.5
  const std::vector<std::size_t> sel = {0, 1};
  const auto out = clipped_mean(g, sel, 1.0);
  // First gradient scaled by 1/5, second untouched.
  EXPECT_NEAR(out[0], 0.5f * (3.0f / 5.0f + 0.3f), 1e-6);
  EXPECT_NEAR(out[1], 0.5f * (4.0f / 5.0f + 0.4f), 1e-6);
}

TEST(ClippedMean, DisabledClipIsPlainSubsetMean) {
  const std::vector<std::vector<float>> g = {{10.0f}, {2.0f}, {100.0f}};
  const std::vector<std::size_t> sel = {0, 1};
  const auto out = clipped_mean(g, sel, 1.0, /*clip=*/false);
  EXPECT_FLOAT_EQ(out[0], 6.0f);
}

TEST(IntersectIndices, BasicAndEmpty) {
  const std::vector<std::size_t> a = {5, 1, 3};
  const std::vector<std::size_t> b = {3, 2, 5};
  EXPECT_EQ(intersect_indices(a, b), (std::vector<std::size_t>{3, 5}));
  const std::vector<std::size_t> c = {7};
  EXPECT_TRUE(intersect_indices(a, c).empty());
}

// --------------------------------------------------- composed SignGuard

TEST(SignGuard, NoAttackKeepsBenignMajority) {
  // Paper scale: n=50 clients. Mean-shift on the sign features keeps the
  // overwhelming majority of honest gradients — Table II reports a ~0.96
  // honest selection rate, and a small drop is expected behaviour (§VI-A
  // "SignGuard-type methods inevitably exclude part of honest gradients").
  const auto g = gaussian_grads(50, 4096, 0.1, 0.5, 11);
  SignGuard sg(plain_config());
  const auto out = sg.aggregate(g, gar_ctx());
  EXPECT_GE(sg.last_selected().size(), 45u);
  EXPECT_EQ(out.size(), 4096u);
}

TEST(SignGuard, RejectsHugeNormGradients) {
  auto g = gaussian_grads(16, 256, 0.1, 0.5, 12);
  for (int i = 0; i < 4; ++i) {
    auto evil = g[std::size_t(i)];
    vec::scale(evil, 100.0);
    g.push_back(evil);
  }
  SignGuard sg(plain_config());
  sg.aggregate(g, gar_ctx());
  for (const auto idx : sg.last_selected()) EXPECT_LT(idx, 16u);
}

TEST(SignGuard, RejectsSignFlippedGradients) {
  auto g = gaussian_grads(16, 1024, 0.4, 1.0, 13);
  for (int i = 0; i < 4; ++i)
    g.push_back(vec::scaled(g[std::size_t(i)], -1.0));
  SignGuard sg(plain_config());
  sg.aggregate(g, gar_ctx());
  std::size_t malicious_kept = 0;
  for (const auto idx : sg.last_selected())
    if (idx >= 16) ++malicious_kept;
  EXPECT_EQ(malicious_kept, 0u);
}

TEST(SignGuard, RejectsLieCraftedGradients) {
  // Positive-mean benign population: LIE with large-ish z flips a visible
  // share of signs, which the clustering filter detects.
  const auto benign = gaussian_grads(16, 1024, 0.3, 0.6, 14);
  const auto gm = attacks::LieAttack::craft_vector(benign, 1.5);
  auto g = benign;
  for (int i = 0; i < 4; ++i) g.push_back(gm);
  SignGuard sg(plain_config());
  sg.aggregate(g, gar_ctx());
  std::size_t malicious_kept = 0;
  for (const auto idx : sg.last_selected())
    if (idx >= 16) ++malicious_kept;
  EXPECT_EQ(malicious_kept, 0u);
}

TEST(SignGuard, DoesNotUseAssumedByzantineCount) {
  // Fraction-agnostic: the result must be identical whatever m is claimed.
  auto g = gaussian_grads(12, 256, 0.2, 0.5, 15);
  SignGuard sg1(plain_config(7));
  SignGuard sg2(plain_config(7));
  agg::GarContext c0;
  c0.assumed_byzantine = 0;
  agg::GarContext c5;
  c5.assumed_byzantine = 5;
  EXPECT_EQ(sg1.aggregate(g, c0), sg2.aggregate(g, c5));
}

TEST(SignGuard, DeterministicForSameSeed) {
  const auto g = gaussian_grads(10, 128, 0.1, 1.0, 16);
  SignGuard a(plain_config(42)), b(plain_config(42));
  EXPECT_EQ(a.aggregate(g, gar_ctx()), b.aggregate(g, gar_ctx()));
}

TEST(SignGuard, VariantNamesFollowConfig) {
  EXPECT_EQ(SignGuard(plain_config()).name(), "SignGuard");
  EXPECT_EQ(SignGuard(sim_config()).name(), "SignGuard-Sim");
  EXPECT_EQ(SignGuard(dist_config()).name(), "SignGuard-Dist");
}

TEST(SignGuard, SimVariantUsesPreviousAggregateAsReference) {
  const auto g = gaussian_grads(10, 256, 0.3, 0.5, 17);
  SignGuard sg(sim_config());
  sg.aggregate(g, gar_ctx());
  EXPECT_FALSE(sg.previous_aggregate().empty());
  // Second round: reference now set; still keeps the benign majority.
  sg.aggregate(g, gar_ctx());
  EXPECT_GT(sg.last_selected().size(), 5u);
}

TEST(SignGuard, ResetClearsCrossRoundState) {
  const auto g = gaussian_grads(6, 64, 0.1, 0.5, 18);
  SignGuard sg(sim_config());
  sg.aggregate(g, gar_ctx());
  sg.reset();
  EXPECT_TRUE(sg.previous_aggregate().empty());
  EXPECT_TRUE(sg.last_selected().empty());
}

TEST(SignGuard, NormClipBoundsAggregateNorm) {
  // Even if the attacker inflates magnitudes inside the accepted band,
  // the output norm stays within the median norm (convexity of the mean
  // of clipped vectors).
  const auto g = gaussian_grads(11, 128, 0.2, 1.0, 19);
  SignGuard sg(plain_config());
  const auto out = sg.aggregate(g, gar_ctx());
  EXPECT_LE(vec::norm(out), sg.last_norm_filter().median_norm + 1e-6);
}

TEST(SignGuard, SingleGradientDegenerate) {
  const std::vector<std::vector<float>> g = {{0.5f, -0.5f, 1.0f}};
  SignGuard sg(plain_config());
  const auto out = sg.aggregate(g, gar_ctx());
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(sg.last_selected(), (std::vector<std::size_t>{0}));
}

// ------------------------------------------------------ ablation toggles

TEST(SignGuardAblation, ClusterOnlyMissesScaledReverse) {
  // Reverse attack scaled within the norm band: without the sign filter,
  // thresholding alone cannot reject it.
  auto g = gaussian_grads(16, 512, 0.4, 1.0, 20);
  for (int i = 0; i < 4; ++i)
    g.push_back(vec::scaled(g[std::size_t(i)], -1.0));

  SignGuardConfig norm_only = plain_config();
  norm_only.enable_sign_cluster = false;
  SignGuard sg_norm(norm_only);
  sg_norm.aggregate(g, gar_ctx());
  std::size_t kept_by_norm_only = 0;
  for (const auto idx : sg_norm.last_selected())
    if (idx >= 16) ++kept_by_norm_only;
  EXPECT_EQ(kept_by_norm_only, 4u);  // norm filter is blind to direction

  SignGuardConfig cluster_only = plain_config();
  cluster_only.enable_norm_filter = false;
  cluster_only.enable_norm_clipping = false;
  SignGuard sg_cluster(cluster_only);
  sg_cluster.aggregate(g, gar_ctx());
  std::size_t kept_by_cluster = 0;
  for (const auto idx : sg_cluster.last_selected())
    if (idx >= 16) ++kept_by_cluster;
  EXPECT_EQ(kept_by_cluster, 0u);  // sign filter catches the flip
}

TEST(SignGuardAblation, NormFilterCatchesScaledAttack) {
  // 100x scaled reverse gradients: the norm filter alone rejects them.
  auto g = gaussian_grads(16, 256, 0.4, 1.0, 21);
  for (int i = 0; i < 4; ++i)
    g.push_back(vec::scaled(g[std::size_t(i)], -100.0));
  SignGuardConfig norm_only = plain_config();
  norm_only.enable_sign_cluster = false;
  SignGuard sg(norm_only);
  sg.aggregate(g, gar_ctx());
  for (const auto idx : sg.last_selected()) EXPECT_LT(idx, 16u);
}

TEST(SignGuardAblation, AllDisabledIsPlainMean) {
  const auto g = gaussian_grads(8, 64, 0.1, 1.0, 22);
  SignGuardConfig cfg = plain_config();
  cfg.enable_norm_filter = false;
  cfg.enable_sign_cluster = false;
  cfg.enable_norm_clipping = false;
  SignGuard sg(cfg);
  const auto out = sg.aggregate(g, gar_ctx());
  const auto mean = vec::mean_of(g);
  for (std::size_t j = 0; j < mean.size(); ++j)
    EXPECT_NEAR(out[j], mean[j], 1e-5);
}

// ------------------------------------------- compressed-domain wire path

comm::CompressionSpec wire_spec(comm::CodecKind kind, std::size_t chunk,
                                double k = 0.1) {
  comm::CompressionSpec s;
  s.codec = kind;
  s.chunk = chunk;
  s.k_fraction = k;
  return s;
}

// A round of uplinks carrying every adversarial row shape the filters
// care about: benign positive-mean gaussians, sign-flipped rows, a
// huge-norm row, a denormal-tiny row, an all-zero row. `decoded` holds
// exactly what the decode-everything reference path would see (for lossy
// codecs that is NOT the original rows).
struct WireFixture {
  std::unique_ptr<comm::Codec> codec;
  std::vector<std::vector<std::uint8_t>> uplinks;
  common::GradientMatrix decoded;

  comm::WireRound round() const {
    return {codec.get(), uplinks, decoded.cols()};
  }
};

WireFixture make_wire_round(const comm::CompressionSpec& spec, std::size_t d,
                            std::uint64_t seed) {
  WireFixture f;
  f.codec = comm::make_codec(spec);
  Rng rng(seed);
  std::vector<std::vector<float>> rows;
  for (std::size_t i = 0; i < 14; ++i)
    rows.push_back(rng.normal_vector(d, 0.3, 0.8));
  rows.push_back(vec::scaled(rows[0], -1.0));   // sign-flipped
  rows.push_back(vec::scaled(rows[1], -1.0));
  rows.push_back(vec::scaled(rows[2], 100.0));  // huge norm
  std::vector<float> tiny(d);
  for (auto& v : tiny) v = static_cast<float>(rng.normal()) * 1e-42f;
  rows.push_back(tiny);                         // denormals
  rows.push_back(std::vector<float>(d, 0.0f));  // all-zero
  f.decoded.resize(rows.size(), d);
  std::vector<comm::CodecScratch> scratch;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::vector<std::uint8_t> buf;
    comm::encode_into(*f.codec, rows[i], buf, scratch);
    EXPECT_EQ(comm::validate(*f.codec, buf, d), comm::DecodeStatus::kOk);
    EXPECT_EQ(comm::decode_into(*f.codec, buf, f.decoded.row(i)),
              comm::DecodeStatus::kOk);
    f.uplinks.push_back(std::move(buf));
  }
  return f;
}

// The backend contract: aggregate_wire on the wire bytes produces the
// bitwise-identical trusted set and aggregate as aggregate() on the
// decoded matrix — for every codec, both clusterers, any thread count,
// and round over round (the Rng streams must stay aligned or the
// backends diverge after the first call).
TEST(SignGuardWire, MatchesDecodePathBitwise) {
  struct ThreadGuard {
    ~ThreadGuard() { common::set_thread_count(0); }
  } guard;
  const std::size_t d = 3001;  // chunk 256 -> 11 full chunks + tail 185
  const comm::CompressionSpec specs[] = {
      wire_spec(comm::CodecKind::kNone, 256),
      wire_spec(comm::CodecKind::kSign1, 256),
      wire_spec(comm::CodecKind::kInt8, 256),
      wire_spec(comm::CodecKind::kTopK, 256, 0.1)};
  for (const auto& spec : specs) {
    const auto f = make_wire_round(spec, d, 97);
    for (const auto clusterer : {Clusterer::kMeanShift, Clusterer::kKMeans2}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        common::set_thread_count(threads);
        SignGuardConfig cfg = plain_config(33);
        cfg.cluster.clusterer = clusterer;
        SignGuard dec(cfg), wire(cfg);
        for (int round = 0; round < 3; ++round) {
          const auto a = dec.aggregate(f.decoded, gar_ctx());
          const auto b = wire.aggregate_wire(f.round(), gar_ctx());
          ASSERT_EQ(dec.last_selected(), wire.last_selected())
              << f.codec->name() << " clusterer=" << int(clusterer)
              << " threads=" << threads << " round=" << round;
          ASSERT_EQ(a.size(), b.size());
          ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * 4))
              << f.codec->name() << " clusterer=" << int(clusterer)
              << " threads=" << threads << " round=" << round;
        }
        // Lazy decode: only the survivors were materialized as floats
        // (the huge-norm row, at least, never was).
        EXPECT_EQ(wire.last_decoded_bytes(),
                  std::uint64_t(wire.last_selected().size()) * d * 4);
        EXPECT_LT(wire.last_selected().size(), f.decoded.rows());
      }
    }
  }
}

TEST(SignGuardWire, AblationTogglesStayBitwiseEqual) {
  const std::size_t d = 777;  // chunk 64 -> 12 full chunks + tail 9
  const auto f =
      make_wire_round(wire_spec(comm::CodecKind::kSign1, 64), d, 101);
  for (int variant = 0; variant < 4; ++variant) {
    SignGuardConfig cfg = plain_config(55);
    if (variant == 0) cfg.enable_norm_filter = false;
    if (variant == 1) cfg.enable_sign_cluster = false;
    if (variant == 2) cfg.enable_norm_clipping = false;
    if (variant == 3) {
      cfg.enable_norm_filter = false;
      cfg.enable_sign_cluster = false;
      cfg.enable_norm_clipping = false;
    }
    SignGuard dec(cfg), wire(cfg);
    const auto a = dec.aggregate(f.decoded, gar_ctx());
    const auto b = wire.aggregate_wire(f.round(), gar_ctx());
    EXPECT_EQ(dec.last_selected(), wire.last_selected()) << variant;
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * 4)) << variant;
  }
}

TEST(SignGuardWire, SimVariantDeclinesTheWirePath) {
  // The similarity feature needs decoded rows; the trainer checks
  // supports_wire_path() and keeps Sim/Dist on the decode backend.
  EXPECT_TRUE(SignGuard(plain_config()).supports_wire_path());
  EXPECT_FALSE(SignGuard(sim_config()).supports_wire_path());
  EXPECT_FALSE(SignGuard(dist_config()).supports_wire_path());
}

TEST(SignGuardWire, HostileBytesAreRefusedBeforeTheStatisticsPass) {
  // aggregate_wire's precondition is comm::validate acceptance — the
  // trainer screens every uplink first. A payload crafted to poison the
  // statistics (negative sign1 scale, the int8 -128 sentinel) must be
  // refused by validate even when its checksum is internally consistent.
  Rng rng(7);
  const std::size_t d = 100;
  const auto fix = [](std::vector<std::uint8_t>& buf) {
    const std::uint64_t sum =
        common::fnv1a64(buf.data() + comm::kWireHeaderSize,
                        buf.size() - comm::kWireHeaderSize);
    for (int i = 0; i < 8; ++i)
      buf[20 + i] = static_cast<std::uint8_t>(sum >> (8 * i));
  };
  std::vector<comm::CodecScratch> scratch;
  {
    const auto codec =
        comm::make_codec(wire_spec(comm::CodecKind::kSign1, 64));
    std::vector<std::uint8_t> buf;
    comm::encode_into(*codec, rng.normal_vector(d, 0.3, 1.0), buf, scratch);
    buf[comm::kWireHeaderSize + 4 + 3] |= 0x80;  // scale := -scale
    fix(buf);
    EXPECT_EQ(comm::validate(*codec, buf, d),
              comm::DecodeStatus::kMalformedChunk);
  }
  {
    const auto codec = comm::make_codec(wire_spec(comm::CodecKind::kInt8, 64));
    std::vector<std::uint8_t> buf;
    comm::encode_into(*codec, rng.normal_vector(d, 0.3, 1.0), buf, scratch);
    buf[comm::kWireHeaderSize + 4 + 2] = 0x80;  // first code := -128
    fix(buf);
    EXPECT_EQ(comm::validate(*codec, buf, d),
              comm::DecodeStatus::kMalformedChunk);
  }
}

// --------------------------------------- parameterized attack rejection

class SignGuardVariantSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(SignGuardVariantSweep, MajorityOfMaliciousRejected) {
  const auto [variant, attack_name] = GetParam();
  const std::size_t n = 20, m = 4, d = 1024;
  const auto benign = gaussian_grads(n - m, d, 0.3, 0.8, 23);

  Rng rng(24);
  std::vector<std::vector<float>> malicious;
  if (attack_name == "SignFlip") {
    for (std::size_t i = 0; i < m; ++i)
      malicious.push_back(vec::scaled(benign[i], -1.0));
  } else if (attack_name == "LIE-strong") {
    const auto gm = attacks::LieAttack::craft_vector(benign, 1.5);
    malicious.assign(m, gm);
  } else if (attack_name == "Random") {
    for (std::size_t i = 0; i < m; ++i)
      malicious.push_back(rng.normal_vector(d, 0.0, 0.5));
  } else {  // Scaled
    for (std::size_t i = 0; i < m; ++i)
      malicious.push_back(vec::scaled(benign[i], 20.0));
  }

  auto g = benign;
  g.insert(g.end(), malicious.begin(), malicious.end());

  SignGuardConfig cfg = variant == "Sim"   ? sim_config()
                        : variant == "Dist" ? dist_config()
                                             : plain_config();
  SignGuard sg(cfg);
  sg.aggregate(g, gar_ctx());
  std::size_t malicious_kept = 0;
  for (const auto idx : sg.last_selected())
    if (idx >= n - m) ++malicious_kept;
  EXPECT_LE(malicious_kept, 1u)
      << "variant=" << variant << " attack=" << attack_name;
}

INSTANTIATE_TEST_SUITE_P(
    VariantsTimesAttacks, SignGuardVariantSweep,
    ::testing::Combine(::testing::Values("Plain", "Sim", "Dist"),
                       ::testing::Values("SignFlip", "LIE-strong", "Random",
                                         "Scaled")),
    [](const auto& info) {
      auto name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace signguard::core
