// Adaptive-adversary tests (attacks/adaptive.h, attacks/wirecraft.h):
// the bisection converges onto a synthetic detection boundary and tracks
// it when it moves, the damage hill-climb escalates without a selection
// signal, every cross-round variable survives serialize/restore bitwise,
// the chaos-colluding scheduler bursts on degraded rounds from a
// stateless fraction stream, and the whole feedback loop stays
// deterministic through the sweep engine: bit-identical JSONL across
// thread counts and across a kill+resume. The scoreboard test pins the
// headline: amplitude adaptation breaks Multi-Krum while SignGuard
// holds.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "attacks/adaptive.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/serial.h"
#include "fl/sweep.h"

namespace signguard {
namespace {

using attacks::AdaptiveAttack;
using attacks::AdaptiveOptions;
using attacks::ChaosColludeAttack;
using attacks::RoundFeedback;

// Inner stub: every Byzantine row is benign-average + 1 in each
// coordinate, so with all-zero benign gradients the adaptive wrapper's
// emitted amplitude IS its gain — the oracle below reads it off the
// crafted rows directly.
class UnitDeviationAttack : public attacks::Attack {
 public:
  std::vector<std::vector<float>> craft(
      const attacks::AttackContext& ctx) override {
    const std::size_t d =
        ctx.benign_grads.empty() ? 0 : ctx.benign_grads.front().size();
    return std::vector<std::vector<float>>(ctx.n_byzantine,
                                           std::vector<float>(d, 1.0f));
  }
  std::string name() const override { return "UnitDev"; }
};

constexpr std::size_t kDim = 8;
constexpr std::size_t kBenign = 3;
constexpr std::size_t kByz = 2;

attacks::AttackInput oracle_round(Rng* rng, float honest_value = 0.0f) {
  static thread_local std::vector<std::vector<float>> benign, byz;
  benign.assign(kBenign, std::vector<float>(kDim, 0.0f));
  byz.assign(kByz, std::vector<float>(kDim, honest_value));
  return attacks::make_attack_input(benign, byz, kBenign + kByz, kByz, rng);
}

// One synthetic round against a threshold filter: rows whose amplitude
// exceeds `boundary` are rejected wholesale; below it they all make the
// trusted set. Returns the emitted amplitude.
double oracle_step(AdaptiveAttack& atk, std::size_t round, double boundary,
                   Rng& rng) {
  auto in = oracle_round(&rng);
  in.ctx.round = round;
  atk.begin_round(round, rng);
  const auto rows = atk.craft(in.ctx);
  const double emitted = double(rows.front().front());
  RoundFeedback fb;
  fb.round = round;
  fb.participants = kBenign + kByz;
  fb.byzantine = kByz;
  fb.has_selection = true;
  const bool admitted = emitted <= boundary;
  fb.selected = admitted ? kBenign + kByz : kBenign;
  fb.selected_byzantine = admitted ? kByz : 0;
  atk.observe_round(fb);
  return emitted;
}

TEST(AdaptiveBisection, ConvergesOntoDetectionBoundary) {
  AdaptiveAttack atk(std::make_unique<UnitDeviationAttack>());
  EXPECT_EQ(atk.name(), "Adaptive(UnitDev)");
  const double kBoundary = 37.0;
  Rng rng(11);
  for (std::size_t r = 0; r < 64; ++r) oracle_step(atk, r, kBoundary, rng);
  EXPECT_TRUE(atk.converged());
  // Converged means the bracket is within tolerance and the exploit
  // gain is pinned to the largest known-admitted amplitude: just under
  // the boundary, never over it. (The instantaneous gain may sit on the
  // rejection bound when the round happens to be an upward probe.)
  EXPECT_LE(atk.gain_lo(), kBoundary * (1.0 + 1e-9));
  EXPECT_GE(atk.gain_lo(), 0.85 * kBoundary);
  EXPECT_LE(atk.gain_lo(), atk.gain_hi());
  EXPECT_GT(atk.gain_hi(), kBoundary);
  EXPECT_TRUE(atk.gain() == atk.gain_lo() || atk.gain() == atk.gain_hi());
}

TEST(AdaptiveBisection, TracksAMovingBoundary) {
  AdaptiveAttack atk(std::make_unique<UnitDeviationAttack>());
  Rng rng(12);
  std::size_t round = 0;
  for (; round < 64; ++round) oracle_step(atk, round, 37.0, rng);
  ASSERT_TRUE(atk.converged());

  // Downward move (benign statistics tighten as training converges):
  // the old known-admitted gain now gets caught, the search reopens
  // below it and re-converges under the new threshold. Upward move (the
  // defense loosens): the periodic probe of the rejection bound finds
  // itself admitted, the bracket reopens and the escalation resumes.
  for (const double boundary : {11.0, 55.0}) {
    for (std::size_t i = 0; i < 64; ++i, ++round)
      oracle_step(atk, round, boundary, rng);
    EXPECT_TRUE(atk.converged()) << boundary;
    EXPECT_LE(atk.gain_lo(), boundary * (1.0 + 1e-9)) << boundary;
    EXPECT_GE(atk.gain_lo(), 0.85 * boundary) << boundary;
  }
}

TEST(AdaptiveHillClimb, EscalatesOnRealizedDamageWithoutSelection) {
  // Coordinate-wise defense: no trusted set is published, only the
  // broadcast aggregate. Damage (the aggregate's coefficient along the
  // attack direction) is unimodal in the gain — clipping-style rules
  // admit small deviations in full and shave large ones — with a peak
  // at gain 10 here. The hill-climb must escalate from 1 and settle
  // into an oscillation bracketing the peak, never running off to the
  // cap.
  AdaptiveAttack atk(std::make_unique<UnitDeviationAttack>());
  Rng rng(13);
  for (std::size_t r = 0; r < 30; ++r) {
    auto in = oracle_round(&rng);
    in.ctx.round = r;
    atk.begin_round(r, rng);
    const auto rows = atk.craft(in.ctx);
    const double gain = double(rows.front().front());
    RoundFeedback fb;
    fb.round = r;
    fb.participants = kBenign + kByz;
    fb.byzantine = kByz;
    fb.has_selection = false;
    const float damage = float(gain * std::exp(-gain / 10.0));
    const std::vector<float> aggregate(kDim, damage);
    fb.aggregate = aggregate;
    atk.observe_round(fb);
  }
  EXPECT_FALSE(atk.converged());  // hill-climb never claims convergence
  EXPECT_GT(atk.gain(), 1.0);
  EXPECT_GE(atk.gain(), 2.0);
  EXPECT_LE(atk.gain(), 32.0);
}

TEST(AdaptiveState, SerializeRestoreReplaysTheSearchBitwise) {
  const double kBoundary = 20.0;
  AdaptiveAttack a(std::make_unique<UnitDeviationAttack>());
  Rng rng_a(17);
  for (std::size_t r = 0; r < 9; ++r) oracle_step(a, r, kBoundary, rng_a);

  common::ByteWriter w;
  a.serialize_state(w);
  AdaptiveAttack b(std::make_unique<UnitDeviationAttack>());
  common::ByteReader r(w.bytes());
  b.restore_state(r);

  EXPECT_EQ(a.gain(), b.gain());
  EXPECT_EQ(a.gain_lo(), b.gain_lo());
  EXPECT_EQ(a.gain_hi(), b.gain_hi());
  EXPECT_EQ(a.converged(), b.converged());

  // The restored search continues bit-for-bit with the original.
  Rng rng_b(17);
  for (std::size_t r2 = 9; r2 < 24; ++r2) {
    const double ea = oracle_step(a, r2, kBoundary, rng_a);
    const double eb = oracle_step(b, r2, kBoundary, rng_b);
    EXPECT_EQ(ea, eb) << r2;
    EXPECT_EQ(a.gain(), b.gain()) << r2;
  }
}

TEST(AdaptiveOptionsValidation, DegenerateOptionsAreTypedErrors) {
  auto inner = [] { return std::make_unique<UnitDeviationAttack>(); };
  EXPECT_THROW(AdaptiveAttack(nullptr), std::invalid_argument);
  AdaptiveOptions bad;
  bad.initial_gain = 0.0;
  EXPECT_THROW(AdaptiveAttack(inner(), bad), std::invalid_argument);
  bad = {};
  bad.growth = 1.0;
  EXPECT_THROW(AdaptiveAttack(inner(), bad), std::invalid_argument);
  bad = {};
  bad.gain_cap = 0.5;  // < initial_gain
  EXPECT_THROW(AdaptiveAttack(inner(), bad), std::invalid_argument);
  bad = {};
  bad.admit_fraction = 1.5;
  EXPECT_THROW(AdaptiveAttack(inner(), bad), std::invalid_argument);
  bad = {};
  bad.tolerance = 0.0;
  EXPECT_THROW(AdaptiveAttack(inner(), bad), std::invalid_argument);
  // And the all-Byzantine craft has no anchor.
  AdaptiveAttack atk(inner());
  Rng rng(3);
  static thread_local std::vector<std::vector<float>> none, byz;
  none.clear();
  byz.assign(2, std::vector<float>(kDim, 0.0f));
  const auto in = attacks::make_attack_input(none, byz, 2, 2, &rng);
  EXPECT_THROW(atk.craft(in.ctx), std::invalid_argument);
}

TEST(ChaosCollude, DegradedRoundsTriggerFullCollusionBursts) {
  ChaosColludeAttack atk(std::make_unique<UnitDeviationAttack>(), 99, 0.5,
                         0.25, 3);
  EXPECT_EQ(atk.name(), "Collude(UnitDev)");
  // The per-round fraction comes from a stateless keyed stream: clamped
  // to [base - jitter, base + jitter] and identical for a fresh
  // instance with the same seed, regardless of query order.
  ChaosColludeAttack twin(std::make_unique<UnitDeviationAttack>(), 99, 0.5,
                          0.25, 3);
  for (std::size_t r = 0; r < 24; ++r) {
    const double f = atk.fraction_for_round(r);
    EXPECT_GE(f, 0.25);
    EXPECT_LE(f, 0.75);
    EXPECT_EQ(f, twin.fraction_for_round(r));
  }

  Rng rng(7);
  const std::size_t m = 4;
  static thread_local std::vector<std::vector<float>> benign, byz;
  benign.assign(3, std::vector<float>(kDim, 0.0f));
  byz.assign(m, std::vector<float>(kDim, 0.5f));
  auto in = attacks::make_attack_input(benign, byz, 3 + m, m, &rng);

  // Outside a burst, llround(fraction * m) inner rows collude and the
  // rest send their honest gradients (0.5f rows).
  in.ctx.round = 5;
  auto rows = atk.craft(in.ctx);
  ASSERT_EQ(rows.size(), m);
  const auto colluding = [&](const std::vector<std::vector<float>>& rs) {
    std::size_t n = 0;
    for (const auto& row : rs) n += row.front() == 1.0f ? 1 : 0;
    return n;
  };
  const auto expected =
      std::size_t(std::llround(atk.fraction_for_round(5) * double(m)));
  EXPECT_EQ(colluding(rows), expected);

  // A degraded round arms the burst; the next burst_rounds crafts
  // collude with everything, then the window decays round by round.
  EXPECT_EQ(atk.burst_left(), 0u);
  RoundFeedback degraded;
  degraded.round = 6;
  degraded.degraded = true;
  atk.observe_round(degraded);
  EXPECT_EQ(atk.burst_left(), 3u);
  in.ctx.round = 7;
  rows = atk.craft(in.ctx);
  EXPECT_EQ(colluding(rows), m);

  // Burst state is checkpointed.
  common::ByteWriter w;
  atk.serialize_state(w);
  ChaosColludeAttack restored(std::make_unique<UnitDeviationAttack>(), 99,
                              0.5, 0.25, 3);
  common::ByteReader r(w.bytes());
  restored.restore_state(r);
  EXPECT_EQ(restored.burst_left(), 3u);

  RoundFeedback ok;
  for (std::size_t i = 0; i < 3; ++i) atk.observe_round(ok);
  EXPECT_EQ(atk.burst_left(), 0u);
}

// ---- the feedback loop through the sweep engine ---------------------------

fl::SweepGrid adversary_grid() {
  fl::SweepGrid grid;
  grid.attacks = {"MinMax"};
  grid.gars = {"Multi-Krum", "SignGuard"};
  grid.codecs = {"sign1"};
  grid.adaptives = {true};
  grid.wirecrafts = {true};
  grid.colludes = {0.0, 0.4};
  grid.rounds = 4;
  grid.n_clients = 8;
  return grid;
}

std::string adversary_jsonl(const std::vector<fl::ScenarioSpec>& specs) {
  std::ostringstream os;
  fl::SweepOptions opts;
  opts.scale = fl::Scale::kSmoke;
  opts.jsonl = &os;
  fl::run_sweep(specs, opts);
  return os.str();
}

TEST(AdaptiveSweep, JsonlBitIdenticalAcrossThreadCounts) {
  const auto specs = adversary_grid().expand();
  ASSERT_EQ(specs.size(), 4u);
  // The adversary axes are gated into ids and JSONL only when active.
  EXPECT_NE(specs[0].id().find("/adapt=1/wc=1"), std::string::npos);
  common::set_thread_count(1);
  const std::string one = adversary_jsonl(specs);
  common::set_thread_count(4);
  const std::string four = adversary_jsonl(specs);
  common::set_thread_count(0);  // restore automatic sizing
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("\"adaptive\":true"), std::string::npos);
  EXPECT_NE(one.find("\"wirecraft\":true"), std::string::npos);
  EXPECT_NE(one.find("\"collude\":0.4"), std::string::npos);
}

TEST(AdaptiveSweep, KillResumeEmitsByteIdenticalJsonl) {
  const std::string dir = testing::TempDir() + "signguard_adaptive_ckpt";
  ::mkdir(dir.c_str(), 0755);

  fl::SweepGrid grid;
  grid.attacks = {"MinMax"};
  grid.gars = {"Multi-Krum"};
  grid.codecs = {"sign1"};
  grid.adaptives = {true};
  grid.wirecrafts = {true};
  grid.rounds = 8;
  grid.n_clients = 10;

  const std::vector<fl::ScenarioSpec> specs = grid.expand();
  ASSERT_EQ(specs.size(), 1u);
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(
                    common::fnv1a64(specs[0].id())));
  const std::string ckpt = dir + "/" + hex + ".ckpt";
  std::remove(ckpt.c_str());

  const auto run = [&](bool checkpointed, std::size_t halt, bool resume) {
    std::ostringstream os;
    fl::SweepOptions opts;
    opts.scale = fl::Scale::kSmoke;
    opts.jsonl = &os;
    if (checkpointed) {
      opts.checkpoint_dir = dir;
      opts.checkpoint_every = 3;
      opts.halt_after_round = halt;
      opts.resume = resume;
    }
    fl::run_sweep(grid.expand(), opts);
    return os.str();
  };

  // The kill lands mid-bisection (round 5 of 8, checkpoints every 3):
  // the resumed run must replay the adaptive search — gain, bracket,
  // last deviation direction — bitwise, or the tail diverges.
  const std::string ref = run(false, 0, false);
  const std::string halted = run(true, 5, false);
  EXPECT_NE(halted.find("\"halted\":true"), std::string::npos);
  const std::string resumed = run(true, 0, true);
  EXPECT_EQ(resumed, ref);
  std::remove(ckpt.c_str());
}

TEST(AdaptiveScoreboard, BreaksMultiKrumWhileSignGuardHolds) {
  // The headline result at unit-test scale (exact values are pinned by
  // the determinism contract; thresholds leave margin for platform FP
  // differences). The full-scale scoreboard with the paper-grade bounds
  // lives in bench/attack_microbench.
  std::vector<fl::ScenarioSpec> specs;
  const auto add = [&](const char* attack, const char* gar, bool adaptive) {
    fl::ScenarioSpec s;
    s.attack = attack;
    s.gar = gar;
    s.adaptive = adaptive;
    s.rounds = 20;
    s.n_clients = 24;
    specs.push_back(s);
  };
  add("MinMax", "Multi-Krum", false);
  add("MinMax", "Multi-Krum", true);
  add("MinMax", "SignGuard", true);
  add("NoAttack", "SignGuard", false);

  fl::SweepOptions opts;
  opts.scale = fl::Scale::kSmoke;
  const auto results = fl::run_sweep(specs, opts);

  const auto find = [&](const std::string& a, const std::string& g,
                        bool adaptive) -> const fl::ScenarioResult& {
    for (const auto& r : results)
      if (r.spec.attack == a && r.spec.gar == g && r.spec.adaptive == adaptive)
        return r;
    throw std::logic_error("scenario missing: " + a + "/" + g);
  };
  const auto& mk_static = find("MinMax", "Multi-Krum", false);
  const auto& mk_adapt = find("MinMax", "Multi-Krum", true);
  const auto& sg_adapt = find("MinMax", "SignGuard", true);
  const auto& sg_clean = find("NoAttack", "SignGuard", false);
  for (const auto& r : results) EXPECT_TRUE(r.error.empty()) << r.error;

  // Amplitude adaptation turns Multi-Krum's win into a rout...
  EXPECT_GE(mk_static.best_accuracy - mk_adapt.best_accuracy, 15.0);
  // ...by measurably buying admission into the trusted set...
  EXPECT_GE(mk_adapt.malicious_pass_rate,
            mk_static.malicious_pass_rate + 0.2);
  // ...while SignGuard degrades far less than Multi-Krum under the same
  // adaptive attacker and stays in sight of its no-attack baseline.
  EXPECT_GE(sg_adapt.best_accuracy - mk_adapt.best_accuracy, 10.0);
  EXPECT_LE(sg_clean.best_accuracy - sg_adapt.best_accuracy, 15.0);
}

}  // namespace
}  // namespace signguard
