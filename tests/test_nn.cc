// Neural-network library tests. The load-bearing ones are the
// finite-difference gradient checks: every layer's backward pass is
// verified against a numeric derivative of the loss, both for input
// gradients (via the model chain) and parameter gradients.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/conv.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/models.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"
#include "nn/tensor.h"
#include "nn/workspace.h"

namespace signguard::nn {
namespace {

double vec_norm(const std::vector<float>& v) {
  double acc = 0.0;
  for (const float x : v) acc += double(x) * double(x);
  return std::sqrt(acc);
}

// Numeric vs analytic parameter-gradient check for an arbitrary model.
// Runs forward+loss+backward once for the analytic gradient, then
// perturbs a sample of parameters to estimate the numeric gradient.
void check_parameter_gradients(Model& model, const Tensor& input,
                               const std::vector<int>& labels,
                               double tol = 2e-2) {
  model.zero_gradients();
  const Tensor logits = model.forward(input);
  const LossResult base = softmax_cross_entropy(logits, labels);
  model.backward(base.dlogits);
  const std::vector<float> analytic = model.gradients();
  std::vector<float> params = model.parameters();

  // Check a deterministic spread of coordinates (every k-th), capped.
  const std::size_t total = params.size();
  const std::size_t checks = std::min<std::size_t>(total, 60);
  const std::size_t stride = std::max<std::size_t>(1, total / checks);
  const double eps = 1e-3;
  for (std::size_t j = 0; j < total; j += stride) {
    const float saved = params[j];
    params[j] = static_cast<float>(saved + eps);
    model.set_parameters(params);
    const double lp =
        softmax_cross_entropy(model.forward(input), labels).loss;
    params[j] = static_cast<float>(saved - eps);
    model.set_parameters(params);
    const double lm =
        softmax_cross_entropy(model.forward(input), labels).loss;
    params[j] = saved;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(analytic[j], numeric,
                tol * std::max(1.0, std::abs(numeric)))
        << "parameter index " << j;
  }
  model.set_parameters(params);
}

TEST(Tensor, ShapeAndReshape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.ndim(), 2u);
  t[5] = 7.0f;
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_FLOAT_EQ(r[5], 7.0f);
}

TEST(Tensor, ZerosInitialized) {
  const Tensor t = Tensor::zeros({4, 4});
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Loss, SoftmaxCrossEntropyKnownValues) {
  // Two classes, logits (0, 0): loss = ln 2, gradient (±0.5)/B.
  Tensor logits({1, 2});
  const LossResult r = softmax_cross_entropy(logits, std::vector<int>{0});
  EXPECT_NEAR(r.loss, std::log(2.0), 1e-6);
  EXPECT_NEAR(r.dlogits[0], -0.5, 1e-6);
  EXPECT_NEAR(r.dlogits[1], 0.5, 1e-6);
}

TEST(Loss, CountsCorrectPredictions) {
  Tensor logits({2, 3});
  logits[0] = 5.0f;              // sample 0 predicts class 0
  logits[3 + 2] = 4.0f;          // sample 1 predicts class 2
  const LossResult r =
      softmax_cross_entropy(logits, std::vector<int>{0, 1});
  EXPECT_EQ(r.correct, 1u);
}

TEST(Loss, NumericallyStableWithLargeLogits) {
  Tensor logits({1, 2});
  logits[0] = 1000.0f;
  logits[1] = -1000.0f;
  const LossResult r = softmax_cross_entropy(logits, std::vector<int>{0});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_NEAR(r.loss, 0.0, 1e-6);
}

TEST(GradCheck, LinearLayer) {
  Rng rng(1);
  Model m;
  m.add(std::make_unique<Linear>(5, 4, rng));
  Tensor x({3, 5});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  check_parameter_gradients(m, x, {0, 1, 3});
}

TEST(GradCheck, MlpWithReLU) {
  Rng rng(2);
  Model m;
  m.add(std::make_unique<Linear>(6, 8, rng, std::sqrt(2.0)))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(8, 3, rng));
  Tensor x({4, 6});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  check_parameter_gradients(m, x, {0, 1, 2, 0});
}

TEST(GradCheck, TanhStack) {
  Rng rng(3);
  Model m;
  m.add(std::make_unique<Linear>(4, 6, rng))
      .add(std::make_unique<Tanh>())
      .add(std::make_unique<Linear>(6, 2, rng));
  Tensor x({2, 4});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  check_parameter_gradients(m, x, {1, 0});
}

TEST(GradCheck, Conv2dLayer) {
  Rng rng(4);
  Model m;
  m.add(std::make_unique<Conv2d>(2, 3, rng))
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Linear>(3 * 6 * 6, 2, rng));
  Tensor x({2, 2, 6, 6});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  check_parameter_gradients(m, x, {0, 1});
}

TEST(GradCheck, ConvPoolStack) {
  Rng rng(5);
  Model m;
  m.add(std::make_unique<Conv2d>(1, 4, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2>())
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Linear>(4 * 4 * 4, 3, rng));
  Tensor x({2, 1, 8, 8});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  check_parameter_gradients(m, x, {2, 1});
}

TEST(GradCheck, ResidualConvBlock) {
  Rng rng(6);
  Model m;
  m.add(std::make_unique<ResidualConvBlock>(2, rng))
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Linear>(2 * 6 * 6, 2, rng));
  Tensor x({2, 2, 6, 6});
  for (auto& v : x.flat()) v = static_cast<float>(rng.normal());
  check_parameter_gradients(m, x, {0, 1});
}

TEST(GradCheck, EmbeddingMeanPool) {
  Rng rng(7);
  Model m;
  m.add(std::make_unique<Embedding>(20, 5, rng))
      .add(std::make_unique<MeanPoolTime>())
      .add(std::make_unique<Linear>(5, 3, rng));
  Tensor ids({2, 4});
  const int toks[] = {1, 5, 7, 19, 0, 2, 2, 11};
  for (std::size_t i = 0; i < ids.numel(); ++i)
    ids[i] = static_cast<float>(toks[i]);
  check_parameter_gradients(m, ids, {0, 2});
}

TEST(GradCheck, RnnMeanPoolBptt) {
  Rng rng(12);
  Model m;
  m.add(std::make_unique<Embedding>(15, 4, rng))
      .add(std::make_unique<RnnTanh>(4, 6, rng, RnnOutput::kMeanPool))
      .add(std::make_unique<Linear>(6, 3, rng));
  Tensor ids({2, 5});
  const int toks[] = {1, 3, 5, 7, 9, 0, 2, 4, 6, 8};
  for (std::size_t i = 0; i < ids.numel(); ++i)
    ids[i] = static_cast<float>(toks[i]);
  check_parameter_gradients(m, ids, {0, 2});
}

TEST(GradCheck, RnnWithBptt) {
  Rng rng(8);
  Model m;
  m.add(std::make_unique<Embedding>(15, 4, rng))
      .add(std::make_unique<RnnTanh>(4, 6, rng))
      .add(std::make_unique<Linear>(6, 3, rng));
  Tensor ids({2, 5});
  const int toks[] = {1, 3, 5, 7, 9, 0, 2, 4, 6, 8};
  for (std::size_t i = 0; i < ids.numel(); ++i)
    ids[i] = static_cast<float>(toks[i]);
  check_parameter_gradients(m, ids, {0, 2});
}

TEST(MaxPool, ForwardSelectsMaxAndRoutesGradient) {
  MaxPool2 pool;
  Workspace ws;
  Tensor x({1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = 5.0f;
  x[2] = -1.0f;
  x[3] = 2.0f;
  Tensor y;
  pool.forward(x, y, ws);
  EXPECT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  Tensor dy({1, 1, 1, 1});
  dy[0] = 3.0f;
  Tensor dx;
  pool.backward(dy, dx, ws);
  EXPECT_FLOAT_EQ(dx[1], 3.0f);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
}

TEST(Model, ParameterRoundTrip) {
  Rng rng(9);
  Model m;
  m.add(std::make_unique<Linear>(3, 4, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(4, 2, rng));
  const std::vector<float> p = m.parameters();
  EXPECT_EQ(p.size(), m.parameter_count());
  EXPECT_EQ(p.size(), 3u * 4u + 4u + 4u * 2u + 2u);
  std::vector<float> q(p.size());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = float(i);
  m.set_parameters(q);
  EXPECT_EQ(m.parameters(), q);
}

TEST(Model, ZeroGradientsClearsAccumulation) {
  Rng rng(10);
  Model m;
  m.add(std::make_unique<Linear>(2, 2, rng));
  Tensor x({1, 2});
  x[0] = 1.0f;
  const Tensor logits = m.forward(x);
  const LossResult r = softmax_cross_entropy(logits, std::vector<int>{0});
  m.backward(r.dlogits);
  EXPECT_GT(vec_norm(m.gradients()), 0.0);
  m.zero_gradients();
  EXPECT_DOUBLE_EQ(vec_norm(m.gradients()), 0.0);
}

TEST(Optimizer, PlainSgdStep) {
  SgdMomentum opt(0.1, 0.0);
  std::vector<float> params = {1.0f, 2.0f};
  const std::vector<float> grad = {1.0f, -1.0f};
  opt.step(params, grad);
  EXPECT_NEAR(params[0], 0.9f, 1e-6);
  EXPECT_NEAR(params[1], 2.1f, 1e-6);
}

TEST(Optimizer, MomentumAccumulates) {
  SgdMomentum opt(1.0, 0.5);
  std::vector<float> params = {0.0f};
  const std::vector<float> grad = {1.0f};
  opt.step(params, grad);  // v=1, p=-1
  EXPECT_NEAR(params[0], -1.0f, 1e-6);
  opt.step(params, grad);  // v=1.5, p=-2.5
  EXPECT_NEAR(params[0], -2.5f, 1e-6);
}

TEST(Optimizer, WeightDecayAddsL2Term) {
  std::vector<float> grad = {0.0f, 0.0f};
  const std::vector<float> params = {2.0f, -4.0f};
  add_weight_decay(grad, params, 0.5);
  EXPECT_FLOAT_EQ(grad[0], 1.0f);
  EXPECT_FLOAT_EQ(grad[1], -2.0f);
}

TEST(ModelFactories, ShapesAndDeterminism) {
  Model mlp = make_mlp(16, 8, 4, 42);
  Model mlp2 = make_mlp(16, 8, 4, 42);
  EXPECT_EQ(mlp.parameters(), mlp2.parameters());

  Model cnn = make_small_cnn(16, 10, 1);
  Tensor img({2, 1, 16, 16});
  EXPECT_EQ(cnn.forward(img).shape(),
            (std::vector<std::size_t>{2, 10}));

  Model color = make_color_cnn(16, 10, 1);
  Tensor cimg({2, 3, 16, 16});
  EXPECT_EQ(color.forward(cimg).shape(),
            (std::vector<std::size_t>{2, 10}));

  Model rnn = make_text_rnn(50, 8, 12, 4, 1);
  Tensor ids({3, 6});
  EXPECT_EQ(rnn.forward(ids).shape(), (std::vector<std::size_t>{3, 4}));

  Model bag = make_embed_bag_text(50, 8, 4, 1);
  EXPECT_EQ(bag.forward(ids).shape(), (std::vector<std::size_t>{3, 4}));
}

TEST(Training, SingleModelOverfitsTinyProblem) {
  // Sanity: 40 steps of full-batch SGD separate two Gaussian blobs.
  Rng rng(11);
  Model m = make_mlp(2, 8, 2, 13);
  Tensor x({20, 2});
  std::vector<int> y(20);
  for (int i = 0; i < 20; ++i) {
    const int cls = i % 2;
    y[std::size_t(i)] = cls;
    x[std::size_t(i) * 2] =
        static_cast<float>(rng.normal(cls == 0 ? -2.0 : 2.0, 0.3));
    x[std::size_t(i) * 2 + 1] =
        static_cast<float>(rng.normal(cls == 0 ? 1.0 : -1.0, 0.3));
  }
  SgdMomentum opt(0.3, 0.9);
  std::vector<float> params = m.parameters();
  double last_loss = 0.0;
  for (int step = 0; step < 40; ++step) {
    m.set_parameters(params);
    m.zero_gradients();
    const LossResult r = softmax_cross_entropy(m.forward(x), y);
    m.backward(r.dlogits);
    opt.step(params, m.gradients());
    last_loss = r.loss;
  }
  EXPECT_LT(last_loss, 0.1);
}

}  // namespace
}  // namespace signguard::nn
