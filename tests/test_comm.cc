// Gradient transport layer tests: codec round-trip properties (shape
// edges, tail chunks, all-zero rows, denormals, idempotence, thread
// invariance), adversarial wire decoding (every malformed input must
// come back as a typed DecodeStatus, never a crash or an out-of-bounds
// read), trainer-level transport accounting (uplink bytes, per-client
// decode-rejects, the provable no-op of codec "none"), and the sweep
// engine's bandwidth fields (%.9g float round-trip through the JSONL).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "attacks/wirecraft.h"
#include "comm/codec.h"
#include "comm/stats.h"
#include "comm/wire.h"
#include "common/format.h"
#include "common/gradient_matrix.h"
#include "common/gradient_stats.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/vecops.h"
#include "data/synth_image.h"
#include "fl/experiment.h"
#include "fl/sweep.h"
#include "fl/trainer.h"
#include "nn/models.h"

namespace signguard {
namespace {

using comm::CodecKind;
using comm::CompressionSpec;
using comm::DecodeStatus;

struct ThreadCountGuard {
  ~ThreadCountGuard() { common::set_thread_count(0); }
};

CompressionSpec spec_of(CodecKind kind, std::size_t chunk = 4096,
                        double k = 0.05) {
  CompressionSpec s;
  s.codec = kind;
  s.chunk = chunk;
  s.k_fraction = k;
  return s;
}

std::vector<std::uint8_t> encode(const comm::Codec& codec,
                                 std::span<const float> row) {
  std::vector<std::uint8_t> buf;
  std::vector<comm::CodecScratch> scratch;
  comm::encode_into(codec, row, buf, scratch);
  return buf;
}

std::vector<float> decode_ok(const comm::Codec& codec,
                             std::span<const std::uint8_t> buf,
                             std::size_t d) {
  std::vector<float> out(d, std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(comm::decode_into(codec, buf, out), DecodeStatus::kOk);
  return out;
}

// The data regimes the property tests sweep: dense gaussians, all-zero
// rows, constant rows, sign-alternating rows, and denormal-tiny values
// (scale derivation must survive underflow).
std::vector<float> make_row(std::size_t d, int regime, Rng& rng) {
  std::vector<float> row(d);
  for (std::size_t j = 0; j < d; ++j) {
    switch (regime) {
      case 0:
        row[j] = static_cast<float>(rng.normal());
        break;
      case 1:
        row[j] = 0.0f;
        break;
      case 2:
        row[j] = 0.75f;
        break;
      case 3:
        row[j] = (j % 2 == 0 ? 1.0f : -1.0f) * float(j % 7) * 0.25f;
        break;
      default:
        row[j] = static_cast<float>(rng.normal()) * 1e-42f;  // denormals
        break;
    }
  }
  return row;
}

const CodecKind kAllKinds[] = {CodecKind::kNone, CodecKind::kSign1,
                               CodecKind::kInt8, CodecKind::kTopK};

// ---- round-trip properties -------------------------------------------------

TEST(CommCodec, RoundTripShapesAndIdempotence) {
  Rng rng(11);
  const std::size_t dims[] = {0,  1,    2,    7,    31,   64,  100,
                              511, 512, 513, 4095, 4096, 4097, 10000};
  for (const auto kind : kAllKinds) {
    for (const std::size_t chunk : {std::size_t{64}, std::size_t{4096}}) {
      const auto codec = comm::make_codec(spec_of(kind, chunk));
      for (const std::size_t d : dims) {
        for (int regime = 0; regime < 5; ++regime) {
          const std::vector<float> row = make_row(d, regime, rng);
          const auto buf = encode(*codec, row);
          ASSERT_EQ(buf.size(), comm::encoded_size(*codec, d));
          const auto decoded = decode_ok(*codec, buf, d);
          for (const float v : decoded) ASSERT_TRUE(std::isfinite(v));
          if (kind == CodecKind::kNone && d > 0) {
            // The identity transport is bitwise lossless. (d == 0 is
            // covered by the size checks; memcmp on a null .data() of
            // an empty vector is UB even for zero bytes.)
            ASSERT_EQ(0, std::memcmp(decoded.data(), row.data(), d * 4));
          }
          // encode(decode(encode(x))) == encode(x): a decoded gradient
          // re-enters the wire in exactly the bytes it arrived in.
          const auto buf2 = encode(*codec, decoded);
          ASSERT_EQ(buf, buf2)
              << "codec=" << codec->name() << " d=" << d << " chunk=" << chunk
              << " regime=" << regime;
        }
      }
    }
  }
}

TEST(CommCodec, Sign1PreservesSignStatisticsExactly) {
  Rng rng(13);
  const auto codec = comm::make_codec(spec_of(CodecKind::kSign1, 256));
  const std::vector<float> row = make_row(3001, 0, rng);
  const auto decoded = decode_ok(*codec, encode(*codec, row), row.size());
  for (std::size_t j = 0; j < row.size(); ++j)
    EXPECT_EQ(std::signbit(row[j]), std::signbit(decoded[j])) << j;
}

TEST(CommCodec, Int8StaysWithinHalfAQuantizationStep) {
  Rng rng(17);
  const auto codec = comm::make_codec(spec_of(CodecKind::kInt8, 512));
  const std::vector<float> row = make_row(1700, 0, rng);
  const auto decoded = decode_ok(*codec, encode(*codec, row), row.size());
  // Per 512-coordinate chunk: the power-of-two step is at most
  // max|x| / 64, so every coordinate lands within max|x| / 128.
  for (std::size_t base = 0; base < row.size(); base += 512) {
    const std::size_t end = std::min(row.size(), base + 512);
    float maxabs = 0.0f;
    for (std::size_t j = base; j < end; ++j)
      maxabs = std::max(maxabs, std::fabs(row[j]));
    for (std::size_t j = base; j < end; ++j)
      EXPECT_NEAR(row[j], decoded[j], maxabs / 128.0f) << j;
  }
}

TEST(CommCodec, TopKKeepsLargestMagnitudesWithExactValues) {
  Rng rng(19);
  const std::size_t chunk = 128;
  const auto codec = comm::make_codec(spec_of(CodecKind::kTopK, chunk, 0.25));
  const std::vector<float> row = make_row(chunk, 0, rng);
  const auto decoded = decode_ok(*codec, encode(*codec, row), row.size());
  // k = 32 survivors; every survivor is bitwise the original value, and
  // no dropped coordinate has magnitude above the smallest survivor.
  float min_kept = std::numeric_limits<float>::infinity();
  std::size_t kept = 0;
  for (std::size_t j = 0; j < row.size(); ++j) {
    if (decoded[j] != 0.0f) {
      ASSERT_EQ(decoded[j], row[j]) << j;
      min_kept = std::min(min_kept, std::fabs(decoded[j]));
      ++kept;
    }
  }
  EXPECT_EQ(kept, 32u);
  for (std::size_t j = 0; j < row.size(); ++j)
    if (decoded[j] == 0.0f) EXPECT_LE(std::fabs(row[j]), min_kept);
}

TEST(CommCodec, BitwiseThreadInvariant) {
  ThreadCountGuard guard;
  Rng rng(23);
  for (const auto kind : kAllKinds) {
    const auto codec = comm::make_codec(spec_of(kind, 512, 0.1));
    for (const std::size_t d : {std::size_t{1}, std::size_t{4097}}) {
      const std::vector<float> row = make_row(d, 0, rng);
      common::set_thread_count(1);
      const auto buf1 = encode(*codec, row);
      const auto dec1 = decode_ok(*codec, buf1, d);
      common::set_thread_count(4);
      const auto buf4 = encode(*codec, row);
      const auto dec4 = decode_ok(*codec, buf4, d);
      EXPECT_EQ(buf1, buf4) << codec->name() << " d=" << d;
      EXPECT_EQ(0, std::memcmp(dec1.data(), dec4.data(), d * 4))
          << codec->name() << " d=" << d;
    }
  }
}

TEST(CommCodec, TopKFullChunkAtMaxChunkRoundTrips) {
  // The one legal shape where round(k_fraction * len) overflows the u16
  // count field: chunk == kMaxChunk with k_fraction ~ 1. The keep count
  // caps at 65535 and the codec's own output must still decode.
  Rng rng(41);
  const auto codec =
      comm::make_codec(spec_of(CodecKind::kTopK, comm::kMaxChunk, 1.0));
  const std::vector<float> row = make_row(comm::kMaxChunk + 5, 0, rng);
  const auto buf = encode(*codec, row);
  const auto decoded = decode_ok(*codec, buf, row.size());
  EXPECT_EQ(encode(*codec, decoded), buf);  // still idempotent
  // 65535 of 65536 coordinates survive; exactly one is zeroed.
  std::size_t dropped = 0;
  for (std::size_t j = 0; j < comm::kMaxChunk; ++j)
    dropped += decoded[j] == 0.0f && row[j] != 0.0f;
  EXPECT_EQ(dropped, 1u);
}

TEST(CommCodec, NonFiniteRowsAreDeterministicAndNeverDecodeToNonFinite) {
  // Byzantine-crafted rows reach the codecs unvalidated: encode must be
  // deterministic and defined on ±inf/NaN, and whatever decodes must be
  // finite — either the uplink is rejected (none/sign1/topk store the
  // poison and the decoder refuses it) or it saturates (int8 clamps to
  // ±127 steps).
  Rng rng(43);
  std::vector<float> row = make_row(300, 0, rng);
  row[7] = std::numeric_limits<float>::infinity();
  row[100] = -std::numeric_limits<float>::infinity();
  row[231] = std::numeric_limits<float>::quiet_NaN();
  for (const auto kind : kAllKinds) {
    const auto codec = comm::make_codec(spec_of(kind, 128, 0.1));
    const auto buf = encode(*codec, row);
    EXPECT_EQ(encode(*codec, row), buf) << codec->name();  // deterministic
    std::vector<float> out(row.size());
    const DecodeStatus status = comm::decode_into(*codec, buf, out);
    if (status == DecodeStatus::kOk) {
      for (const float v : out)
        EXPECT_TRUE(std::isfinite(v)) << codec->name();
    } else {
      EXPECT_EQ(status, DecodeStatus::kMalformedChunk) << codec->name();
    }
  }
}

TEST(CommCodec, SpecValidation) {
  EXPECT_THROW(comm::make_codec(spec_of(CodecKind::kSign1, 0)),
               std::invalid_argument);
  EXPECT_THROW(comm::make_codec(spec_of(CodecKind::kSign1, comm::kMaxChunk + 1)),
               std::invalid_argument);
  EXPECT_THROW(comm::make_codec(spec_of(CodecKind::kTopK, 64, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(comm::make_codec(spec_of(CodecKind::kTopK, 64, 1.5)),
               std::invalid_argument);
  EXPECT_THROW(comm::codec_kind_from_name("zstd"), std::invalid_argument);
  for (const auto kind : kAllKinds)
    EXPECT_EQ(comm::codec_kind_from_name(comm::codec_name(kind)), kind);
}

// ---- adversarial decoding --------------------------------------------------

// Rewrites the header checksum so a deliberately malformed buffer is
// *internally consistent* — exactly what a Byzantine client, which
// controls its own bytes, would ship.
void fix_checksum(std::vector<std::uint8_t>& buf) {
  const std::uint64_t sum = common::fnv1a64(
      buf.data() + comm::kWireHeaderSize, buf.size() - comm::kWireHeaderSize);
  for (int i = 0; i < 8; ++i)
    buf[20 + i] = static_cast<std::uint8_t>(sum >> (8 * i));
}

DecodeStatus decode_status(const comm::Codec& codec,
                           const std::vector<std::uint8_t>& buf,
                           std::size_t d) {
  std::vector<float> out(d);
  return comm::decode_into(codec, buf, out);
}

TEST(CommWire, AdversarialInputsReturnTypedErrors) {
  Rng rng(29);
  const auto codec = comm::make_codec(spec_of(CodecKind::kSign1, 64));
  const std::size_t d = 200;  // 4 chunks: 64, 64, 64, 8
  const std::vector<float> row = make_row(d, 0, rng);
  const std::vector<std::uint8_t> good = encode(*codec, row);
  ASSERT_EQ(decode_status(*codec, good, d), DecodeStatus::kOk);

  // Truncation at every suspicious boundary: empty, inside the header,
  // header only, inside a record's length prefix, inside a payload.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{5}, comm::kWireHeaderSize - 1,
        comm::kWireHeaderSize, comm::kWireHeaderSize + 2,
        comm::kWireHeaderSize + 10, good.size() - 1}) {
    std::vector<std::uint8_t> buf(good.begin(), good.begin() + cut);
    EXPECT_EQ(decode_status(*codec, buf, d), DecodeStatus::kTruncated)
        << "cut=" << cut;
  }

  {  // A single flipped payload byte fails the checksum.
    auto buf = good;
    buf[comm::kWireHeaderSize + 9] ^= 0x40;
    EXPECT_EQ(decode_status(*codec, buf, d), DecodeStatus::kChecksumMismatch);
  }
  {  // Wrong magic / nonzero reserved bytes.
    auto buf = good;
    buf[0] = 'X';
    EXPECT_EQ(decode_status(*codec, buf, d), DecodeStatus::kBadMagic);
    buf = good;
    buf[6] = 1;
    EXPECT_EQ(decode_status(*codec, buf, d), DecodeStatus::kBadMagic);
  }
  {  // Wrong codec id: a sign1 server must not decode int8 frames.
    auto buf = good;
    buf[4] = static_cast<std::uint8_t>(CodecKind::kInt8);
    EXPECT_EQ(decode_status(*codec, buf, d), DecodeStatus::kCodecMismatch);
  }
  {  // Wrong dimension (header d != the model's parameter count).
    auto buf = good;
    buf[8] ^= 0x01;
    EXPECT_EQ(decode_status(*codec, buf, d), DecodeStatus::kDimMismatch);
  }
  {  // Wrong chunk size.
    auto buf = good;
    buf[16] ^= 0x01;
    EXPECT_EQ(decode_status(*codec, buf, d), DecodeStatus::kChunkMismatch);
  }
  {  // Oversized length prefix, checksum made consistent: the structural
    // walk must refuse it without ever dereferencing the huge length.
    auto buf = good;
    buf[comm::kWireHeaderSize + 0] = 0xff;
    buf[comm::kWireHeaderSize + 3] = 0x7f;
    fix_checksum(buf);
    EXPECT_EQ(decode_status(*codec, buf, d), DecodeStatus::kBadChunkLength);
  }
  {  // Trailing garbage after a well-formed frame.
    auto buf = good;
    buf.push_back(0xab);
    fix_checksum(buf);
    EXPECT_EQ(decode_status(*codec, buf, d), DecodeStatus::kTrailingBytes);
  }
  {  // Codec-level poison: a negative sign1 scale (first payload float).
    auto buf = good;
    buf[comm::kWireHeaderSize + 4 + 3] |= 0x80;  // set the sign bit
    fix_checksum(buf);
    EXPECT_EQ(decode_status(*codec, buf, d), DecodeStatus::kMalformedChunk);
  }
  {  // Codec-level poison: an infinite scale cannot smuggle inf rows in.
    const float inf = std::numeric_limits<float>::infinity();
    auto buf = good;
    std::memcpy(buf.data() + comm::kWireHeaderSize + 4, &inf, 4);
    fix_checksum(buf);
    EXPECT_EQ(decode_status(*codec, buf, d), DecodeStatus::kMalformedChunk);
  }
}

TEST(CommWire, AdversarialCodecPayloads) {
  Rng rng(31);
  {  // int8: code -128 and an out-of-range exponent are unreachable.
    const auto codec = comm::make_codec(spec_of(CodecKind::kInt8, 32));
    const std::vector<float> row = make_row(32, 0, rng);
    auto buf = encode(*codec, row);
    // Payload layout: [u16 step exponent][32 int8 codes].
    auto poke = buf;
    poke[comm::kWireHeaderSize + 4 + 2] = 0x80;  // first code := -128
    fix_checksum(poke);
    EXPECT_EQ(decode_status(*codec, poke, 32), DecodeStatus::kMalformedChunk);
    poke = buf;
    poke[comm::kWireHeaderSize + 4 + 0] = 0xff;  // exponent := 32767
    poke[comm::kWireHeaderSize + 4 + 1] = 0x7f;
    fix_checksum(poke);
    EXPECT_EQ(decode_status(*codec, poke, 32), DecodeStatus::kMalformedChunk);
  }
  {  // topk: wrong survivor count, zero delta, out-of-chunk index, NaN.
    const auto codec = comm::make_codec(spec_of(CodecKind::kTopK, 32, 0.25));
    const std::vector<float> row = make_row(32, 0, rng);
    const auto buf = encode(*codec, row);  // k = 8 per chunk
    const std::size_t payload = comm::kWireHeaderSize + 4;
    auto poke = buf;
    poke[payload] = 7;  // count field disagrees with the codec's k
    fix_checksum(poke);
    EXPECT_EQ(decode_status(*codec, poke, 32), DecodeStatus::kMalformedChunk);
    poke = buf;
    // Deltas start after the count (2) and the 8 float values (32).
    poke[payload + 2 + 32 + 2] = 0;  // second delta := 0 (non-monotone)
    poke[payload + 2 + 32 + 3] = 0;
    fix_checksum(poke);
    EXPECT_EQ(decode_status(*codec, poke, 32), DecodeStatus::kMalformedChunk);
    poke = buf;
    poke[payload + 2 + 32 + 1] = 0xff;  // first index far beyond the chunk
    fix_checksum(poke);
    EXPECT_EQ(decode_status(*codec, poke, 32), DecodeStatus::kMalformedChunk);
    poke = buf;
    const float nan = std::numeric_limits<float>::quiet_NaN();
    std::memcpy(poke.data() + payload + 2, &nan, 4);  // first stored value
    fix_checksum(poke);
    EXPECT_EQ(decode_status(*codec, poke, 32), DecodeStatus::kMalformedChunk);
  }
  {  // none: raw floats are the payload, but non-finite ones are refused.
    const auto codec = comm::make_codec(spec_of(CodecKind::kNone, 32));
    const std::vector<float> row = make_row(32, 0, rng);
    auto buf = encode(*codec, row);
    const float inf = -std::numeric_limits<float>::infinity();
    std::memcpy(buf.data() + comm::kWireHeaderSize + 4 + 8, &inf, 4);
    fix_checksum(buf);
    EXPECT_EQ(decode_status(*codec, buf, 32), DecodeStatus::kMalformedChunk);
  }
}

// Crafted-but-wire-legal corpus (attacks/wirecraft.h): the adversarial
// tests above prove hostile bytes are rejected; this one proves the
// wirecraft attacker's *clever* bytes are not — every crafted row must
// survive the wire as DecodeStatus::kOk with finite coordinates, and be
// a bitwise fixed point of its codec (what was crafted is exactly what
// the aggregator sees).
TEST(CommWire, WirecraftRowsAreWireLegalFixedPoints) {
  Rng rng(43);
  const CompressionSpec specs[] = {
      spec_of(CodecKind::kNone, 64), spec_of(CodecKind::kSign1, 64),
      spec_of(CodecKind::kInt8, 64), spec_of(CodecKind::kTopK, 32, 0.25),
      spec_of(CodecKind::kTopK, 64, 1.0)};
  const std::size_t d = 200;  // odd tail chunk for every spec above
  for (const auto& spec : specs) {
    const auto codec = comm::make_codec(spec);
    for (int regime = 0; regime < 5; ++regime) {
      for (const double inflate : {1.0, 8.0, 1e6}) {
        const std::vector<float> inner = make_row(d, regime, rng);
        const std::vector<float> crafted =
            attacks::wirecraft_row(spec, inner, inflate);
        ASSERT_EQ(crafted.size(), d);
        for (const float v : crafted)
          ASSERT_TRUE(std::isfinite(v))
              << codec->name() << " regime=" << regime;
        const auto buf = encode(*codec, crafted);
        std::vector<float> decoded(d);
        ASSERT_EQ(comm::decode_into(*codec, buf, decoded), DecodeStatus::kOk)
            << codec->name() << " regime=" << regime
            << " inflate=" << inflate;
        for (std::size_t j = 0; j < d; ++j)
          ASSERT_EQ(std::bit_cast<std::uint32_t>(decoded[j]),
                    std::bit_cast<std::uint32_t>(crafted[j]))
              << codec->name() << " regime=" << regime << " j=" << j;
      }
    }
  }
}

// ---- compressed-domain statistics ------------------------------------------

struct WirePathGuard {
  comm::WirePath saved = comm::wire_path();
  ~WirePathGuard() { comm::set_wire_path(saved); }
};

// validate() stands in for decode_into() as the wire path's reject
// screen, so the two must agree on *every* input — kOk or the identical
// typed rejection. Fuzz the agreement over truncations and single-byte
// corruptions, both raw and re-checksummed (the internally consistent
// form only a Byzantine client, which controls its own bytes, can ship).
TEST(CommWire, ValidateAgreesWithDecodeOnAdversarialCorpus) {
  Rng rng(41);
  const CompressionSpec specs[] = {
      spec_of(CodecKind::kNone, 64), spec_of(CodecKind::kSign1, 64),
      spec_of(CodecKind::kInt8, 64), spec_of(CodecKind::kTopK, 32, 0.25)};
  const std::size_t d = 200;
  for (const auto& spec : specs) {
    const auto codec = comm::make_codec(spec);
    const auto agree = [&](const std::vector<std::uint8_t>& buf) {
      const DecodeStatus dec = decode_status(*codec, buf, d);
      EXPECT_EQ(comm::validate(*codec, buf, d), dec)
          << codec->name() << " size=" << buf.size();
      return dec;
    };
    for (int regime = 0; regime < 5; ++regime)
      EXPECT_EQ(agree(encode(*codec, make_row(d, regime, rng))),
                DecodeStatus::kOk);
    const auto good = encode(*codec, make_row(d, 0, rng));
    for (std::size_t cut = 0; cut < good.size();
         cut += (cut < comm::kWireHeaderSize + 8 ? 1 : 5))
      agree(std::vector<std::uint8_t>(good.begin(), good.begin() + cut));
    for (std::size_t pos = 0; pos < good.size(); ++pos) {
      auto flipped = good;
      flipped[pos] ^= 0x80;
      agree(flipped);  // mostly header / checksum rejections
      if (pos >= comm::kWireHeaderSize) {
        fix_checksum(flipped);  // now the payload corruption itself decides
        agree(flipped);
      }
    }
    auto trailing = good;
    trailing.push_back(0xab);
    fix_checksum(trailing);
    EXPECT_EQ(agree(trailing), DecodeStatus::kTrailingBytes);
  }
}

// The statistics contract that makes SIGNGUARD_WIREPATH a pure
// performance switch: for every accepted buffer, wire_row_norms equals
// vec::row_norms of the decoded matrix and wire_sign_stats equals
// sign_statistics over the same coordinate subset — bit for bit, across
// codecs, odd-d tail chunks and the degenerate row regimes (all-zero,
// constant, alternating, denormal).
TEST(CommStats, WireNormsAndSignStatsMatchDecodedBitwise) {
  Rng rng(43);
  for (const auto kind : kAllKinds) {
    for (const std::size_t chunk : {std::size_t{64}, std::size_t{4096}}) {
      for (const std::size_t d :
           {std::size_t{1}, std::size_t{7}, std::size_t{777},
            std::size_t{4096}, std::size_t{4097}}) {
        const auto codec = comm::make_codec(spec_of(kind, chunk, 0.2));
        std::vector<std::vector<std::uint8_t>> uplinks(5);
        common::GradientMatrix decoded(5, d);
        for (int regime = 0; regime < 5; ++regime) {
          uplinks[regime] = encode(*codec, make_row(d, regime, rng));
          ASSERT_EQ(comm::validate(*codec, uplinks[regime], d),
                    DecodeStatus::kOk);
          ASSERT_EQ(
              comm::decode_into(*codec, uplinks[regime], decoded.row(regime)),
              DecodeStatus::kOk);
        }
        const comm::WireRound wire{codec.get(), uplinks, d};

        const auto wire_norms = comm::wire_row_norms(wire);
        const auto dec_norms = vec::row_norms(decoded);
        ASSERT_EQ(wire_norms.size(), dec_norms.size());
        for (std::size_t i = 0; i < wire_norms.size(); ++i)
          ASSERT_EQ(std::bit_cast<std::uint64_t>(wire_norms[i]),
                    std::bit_cast<std::uint64_t>(dec_norms[i]))
              << codec->name() << " d=" << d << " chunk=" << chunk
              << " row=" << i;

        for (const double frac : {0.3, 1.0}) {
          Rng crng(d * 31 + std::size_t(kind));
          const auto coords = select_coordinates(d, frac, crng);
          const comm::CoordMask mask(d, chunk, coords);
          ASSERT_EQ(mask.n_coords(), coords.size());
          const auto ws = comm::wire_sign_stats(wire, mask);
          const auto ds = sign_statistics(decoded, coords);
          ASSERT_EQ(ws.size(), ds.size());
          for (std::size_t i = 0; i < ws.size(); ++i) {
            ASSERT_EQ(std::bit_cast<std::uint64_t>(ws[i].pos),
                      std::bit_cast<std::uint64_t>(ds[i].pos))
                << codec->name() << " d=" << d << " frac=" << frac
                << " row=" << i;
            ASSERT_EQ(std::bit_cast<std::uint64_t>(ws[i].zero),
                      std::bit_cast<std::uint64_t>(ds[i].zero));
            ASSERT_EQ(std::bit_cast<std::uint64_t>(ws[i].neg),
                      std::bit_cast<std::uint64_t>(ds[i].neg));
          }
        }
      }
    }
  }
}

TEST(CommStats, StatisticsPassIsThreadInvariant) {
  ThreadCountGuard guard;
  Rng rng(47);
  const std::size_t d = 30000;
  for (const auto kind : {CodecKind::kSign1, CodecKind::kInt8}) {
    const auto codec = comm::make_codec(spec_of(kind, 1024));
    std::vector<std::vector<std::uint8_t>> uplinks;
    for (int i = 0; i < 6; ++i)
      uplinks.push_back(encode(*codec, make_row(d, i % 5, rng)));
    const comm::WireRound wire{codec.get(), uplinks, d};
    Rng crng(3);
    const auto coords = select_coordinates(d, 0.1, crng);
    const comm::CoordMask mask(d, 1024, coords);

    common::set_thread_count(1);
    const auto n1 = comm::wire_row_norms(wire);
    const auto s1 = comm::wire_sign_stats(wire, mask);
    common::set_thread_count(4);
    const auto n4 = comm::wire_row_norms(wire);
    const auto s4 = comm::wire_sign_stats(wire, mask);

    ASSERT_EQ(n1.size(), n4.size());
    for (std::size_t i = 0; i < n1.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(n1[i]),
                std::bit_cast<std::uint64_t>(n4[i]))
          << codec->name() << " row=" << i;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(s1[i].pos),
                std::bit_cast<std::uint64_t>(s4[i].pos));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(s1[i].zero),
                std::bit_cast<std::uint64_t>(s4[i].zero));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(s1[i].neg),
                std::bit_cast<std::uint64_t>(s4[i].neg));
    }
  }
}

// ---- trainer integration ---------------------------------------------------

data::TrainTest comm_data() {
  data::SynthImageConfig cfg;
  cfg.train_per_class = 30;
  cfg.test_per_class = 10;
  cfg.seed = 5;
  return data::make_synth_image(cfg);
}

fl::TrainerConfig comm_config() {
  fl::TrainerConfig cfg;
  cfg.n_clients = 10;
  cfg.byzantine_frac = 0.2;
  cfg.rounds = 6;
  cfg.batch_size = 8;
  cfg.lr = 0.1;
  cfg.eval_every = 3;
  cfg.eval_max_samples = 0;
  cfg.seed = 3;
  return cfg;
}

fl::ModelFactory comm_model() {
  return [](std::uint64_t seed) { return nn::make_mlp(256, 16, 10, seed); };
}

// Per-round aggregate checksums through the observer hook: the no-op
// proof compares entire training trajectories, not just end accuracy.
std::vector<std::uint64_t> run_trace(const data::TrainTest& data,
                                     const fl::TrainerConfig& cfg,
                                     fl::TrainingResult* out = nullptr) {
  std::vector<std::uint64_t> trace;
  fl::Trainer trainer(data, comm_model(), cfg);
  auto attack = fl::make_attack("SignFlip");
  const auto result = trainer.run(
      *attack, fl::make_aggregator("SignGuard"),
      [&](const fl::RoundObservation& obs) {
        trace.push_back(obs.skipped
                            ? 0
                            : common::fnv1a64(obs.aggregate.data(),
                                              obs.aggregate.size() * 4));
      });
  if (out != nullptr) *out = result;
  return trace;
}

TEST(CommTrainer, NoneCodecTransportIsAProvableNoOp) {
  const auto data = comm_data();
  fl::TrainerConfig off = comm_config();  // transport inactive
  fl::TrainerConfig on = comm_config();   // wire path active, none codec
  on.uplink_tamper = [](std::size_t, std::vector<std::uint8_t>&) {};
  fl::TrainingResult r_off, r_on;
  const auto trace_off = run_trace(data, off, &r_off);
  const auto trace_on = run_trace(data, on, &r_on);
  // Bit-identical aggregates every round: encode→decode under the
  // identity codec reproduces each gradient row exactly.
  EXPECT_EQ(trace_off, trace_on);
  EXPECT_EQ(r_off.final_accuracy, r_on.final_accuracy);
  // Accounting differs by design: only the active path bills bytes.
  EXPECT_EQ(r_off.uplink_bytes, 0u);
  EXPECT_GT(r_on.uplink_bytes, 0u);
  EXPECT_EQ(r_on.decode_rejects, 0u);
  // d floats cost a little more than 4d bytes on the wire (header and
  // length prefixes) — the dense accounting reflects exactly 4d.
  EXPECT_GT(r_on.uplink_bytes, r_on.uplink_dense_bytes);
}

TEST(CommTrainer, Sign1AccountingReportsCompression) {
  const auto data = comm_data();
  fl::TrainerConfig cfg = comm_config();
  cfg.compression = spec_of(CodecKind::kSign1);
  fl::TrainingResult result;
  run_trace(data, cfg, &result);
  ASSERT_GT(result.uplink_bytes, 0u);
  EXPECT_EQ(result.decode_rejects, 0u);
  const double ratio =
      double(result.uplink_dense_bytes) / double(result.uplink_bytes);
  EXPECT_GE(ratio, 16.0);  // the headline sign1 guarantee
  // Every round bills all 10 participants.
  EXPECT_EQ(result.uplink_dense_bytes % (comm_config().rounds * 10), 0u);
}

TEST(CommTrainer, TamperedUplinkSurfacesAsDecodeReject) {
  const auto data = comm_data();
  fl::TrainerConfig cfg = comm_config();
  cfg.compression = spec_of(CodecKind::kInt8);
  // Client 7 (benign: m = 2) ships a flipped payload byte every round.
  cfg.uplink_tamper = [](std::size_t client, std::vector<std::uint8_t>& buf) {
    if (client == 7) buf[comm::kWireHeaderSize + 11] ^= 0x10;
  };
  std::vector<std::size_t> participants, rejects;
  fl::Trainer trainer(data, comm_model(), cfg);
  auto attack = fl::make_attack("NoAttack");
  const auto result = trainer.run(*attack, fl::make_aggregator("Mean"),
                                  [&](const fl::RoundObservation& obs) {
                                    participants.push_back(obs.participants);
                                    rejects.push_back(obs.decode_rejects);
                                  });
  ASSERT_EQ(participants.size(), cfg.rounds);
  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    EXPECT_EQ(rejects[r], 1u) << r;
    EXPECT_EQ(participants[r], 9u) << r;  // 10 sampled, 1 rejected
  }
  EXPECT_EQ(result.decode_rejects, cfg.rounds);
  // The rejected uplink was still sent: 10 clients' bytes are billed.
  EXPECT_EQ(result.uplink_dense_bytes % (cfg.rounds * 10), 0u);
}

TEST(CommTrainer, AllHonestUplinksRejectedSkipsTheRound) {
  const auto data = comm_data();
  fl::TrainerConfig cfg = comm_config();
  cfg.rounds = 3;
  cfg.compression = spec_of(CodecKind::kSign1);
  cfg.uplink_tamper = [](std::size_t, std::vector<std::uint8_t>& buf) {
    buf.resize(buf.size() / 2);  // truncate every uplink
  };
  std::size_t skipped = 0;
  fl::Trainer trainer(data, comm_model(), cfg);
  auto attack = fl::make_attack("NoAttack");
  const auto result = trainer.run(*attack, fl::make_aggregator("Mean"),
                                  [&](const fl::RoundObservation& obs) {
                                    skipped += obs.skipped ? 1 : 0;
                                  });
  EXPECT_EQ(skipped, cfg.rounds);
  // Only the benign uplinks were spent (Byzantine rows are never
  // transported once the round has no honest survivor): 8 per round.
  EXPECT_EQ(result.decode_rejects, cfg.rounds * 8);
}

TEST(CommTrainer, DegenerateCompressionSpecThrowsAtConstruction) {
  const auto data = comm_data();
  fl::TrainerConfig cfg = comm_config();
  cfg.compression = spec_of(CodecKind::kTopK, 4096, 0.0);
  EXPECT_THROW(fl::Trainer(data, comm_model(), cfg), std::invalid_argument);
  cfg.compression = spec_of(CodecKind::kSign1, 0);
  EXPECT_THROW(fl::Trainer(data, comm_model(), cfg), std::invalid_argument);
}

// The tentpole contract, end to end: a full SignFlip × SignGuard training
// run under the compressed-domain backend is bit-identical — per-round
// aggregates, accuracy, admission statistics — to the decode-everything
// reference, for every codec and thread count, while materializing
// strictly fewer dense bytes on the server.
TEST(CommTrainer, WirePathMatchesDecodePathBitwise) {
  const auto data = comm_data();
  WirePathGuard wp_guard;
  ThreadCountGuard tc_guard;
  for (const auto kind :
       {CodecKind::kSign1, CodecKind::kInt8, CodecKind::kTopK}) {
    fl::TrainerConfig cfg = comm_config();
    cfg.compression = spec_of(kind, 256, 0.1);
    std::vector<std::uint64_t> first_trace;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      common::set_thread_count(threads);
      comm::set_wire_path(comm::WirePath::kWire);
      fl::TrainingResult r_wire;
      const auto t_wire = run_trace(data, cfg, &r_wire);
      comm::set_wire_path(comm::WirePath::kDecode);
      fl::TrainingResult r_decode;
      const auto t_decode = run_trace(data, cfg, &r_decode);

      const char* name = comm::codec_name(kind);
      EXPECT_EQ(t_wire, t_decode) << name << " threads=" << threads;
      EXPECT_EQ(r_wire.final_accuracy, r_decode.final_accuracy) << name;
      EXPECT_EQ(r_wire.selection.honest_rate, r_decode.selection.honest_rate)
          << name;
      EXPECT_EQ(r_wire.selection.malicious_rate,
                r_decode.selection.malicious_rate)
          << name;
      // Same wire traffic in, far fewer dense bytes out of the decoder:
      // SignGuard rejects the SignFlip rows before they are ever floats.
      EXPECT_EQ(r_wire.uplink_bytes, r_decode.uplink_bytes) << name;
      EXPECT_GT(r_wire.uplink_decoded_bytes, 0u) << name;
      EXPECT_LT(r_wire.uplink_decoded_bytes, r_decode.uplink_decoded_bytes)
          << name;
      // And the wire backend is thread-count invariant on its own.
      if (first_trace.empty())
        first_trace = t_wire;
      else
        EXPECT_EQ(t_wire, first_trace) << name;
    }
  }
}

TEST(CommTrainer, WirePathBillsOnlyTheTrustedSetsBytes) {
  const auto data = comm_data();
  WirePathGuard wp_guard;
  fl::TrainerConfig cfg = comm_config();
  cfg.compression = spec_of(CodecKind::kSign1);
  for (const bool wire : {true, false}) {
    comm::set_wire_path(wire ? comm::WirePath::kWire
                             : comm::WirePath::kDecode);
    fl::Trainer trainer(data, comm_model(), cfg);
    auto attack = fl::make_attack("SignFlip");
    std::uint64_t billed = 0;
    const auto result = trainer.run(
        *attack, fl::make_aggregator("SignGuard"),
        [&](const fl::RoundObservation& obs) {
          ASSERT_FALSE(obs.skipped);
          const std::uint64_t rows =
              wire ? obs.selected.size() : obs.participants;
          EXPECT_EQ(obs.uplink_decoded_bytes,
                    rows * std::uint64_t(obs.aggregate.size()) * 4);
          EXPECT_LE(obs.selected.size(), obs.participants);
          billed += obs.uplink_decoded_bytes;
        });
    EXPECT_EQ(result.uplink_decoded_bytes, billed);
    EXPECT_GT(result.uplink_decoded_bytes, 0u);
  }
}

TEST(CommTrainer, NonSignGuardGarsStayOnTheDecodePath) {
  // Mean has no filtering stage to run on wire statistics; under the wire
  // backend it still decodes (and bills) every accepted uplink.
  const auto data = comm_data();
  WirePathGuard wp_guard;
  comm::set_wire_path(comm::WirePath::kWire);
  fl::TrainerConfig cfg = comm_config();
  cfg.compression = spec_of(CodecKind::kSign1);
  fl::Trainer trainer(data, comm_model(), cfg);
  auto attack = fl::make_attack("NoAttack");
  trainer.run(*attack, fl::make_aggregator("Mean"),
              [&](const fl::RoundObservation& obs) {
                EXPECT_EQ(obs.uplink_decoded_bytes,
                          std::uint64_t(obs.participants) *
                              obs.aggregate.size() * 4);
              });
}

// ---- sweep integration -----------------------------------------------------

fl::ScenarioSpec sweep_cell(const std::string& codec) {
  fl::ScenarioSpec s;
  s.attack = "ByzMean";
  s.gar = "SignGuard";
  s.codec = codec;
  s.rounds = 4;
  s.n_clients = 10;
  return s;
}

TEST(CommSweep, CompressionAxisFlowsIntoJsonl) {
  std::ostringstream os;
  fl::SweepOptions opts;
  opts.scale = fl::Scale::kSmoke;
  opts.jsonl = &os;
  const auto results =
      fl::run_sweep({sweep_cell("none"), sweep_cell("sign1")}, opts);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) ASSERT_TRUE(r.error.empty()) << r.error;

  // Canonical order puts the codec=sign1 id first ("/codec=..." sorts
  // before "/r=...").
  const auto& compressed = results[0];
  const auto& dense = results[1];
  ASSERT_EQ(compressed.spec.codec, "sign1");
  ASSERT_EQ(dense.spec.codec, "none");
  EXPECT_EQ(dense.uplink_bytes, 0u);
  EXPECT_GT(compressed.uplink_bytes, 0u);
  EXPECT_GE(compressed.compression_ratio, 16.0f);
  EXPECT_EQ(dense.uplink_decoded_bytes, 0u);
  EXPECT_GT(compressed.uplink_decoded_bytes, 0u);

  // SignGuard's sign statistics survive sign1 exactly: honest admission
  // is unchanged against the uncompressed run, and compression never
  // helps the attacker past the filter.
  EXPECT_EQ(compressed.honest_pass_rate, dense.honest_pass_rate);
  EXPECT_LE(compressed.malicious_pass_rate, dense.malicious_pass_rate);

  // The JSONL carries the bandwidth fields only on the compressed line,
  // and the %.9g float parses back bit-exactly.
  std::istringstream lines(os.str());
  std::string line;
  std::size_t with_fields = 0;
  while (std::getline(lines, line)) {
    const auto pos = line.find("\"compression_ratio\":");
    if (pos == std::string::npos) {
      EXPECT_NE(line.find("/g=SignGuard/part=iid"), std::string::npos);
      // The decoded-bytes field rides only on codec lines: "none" lines
      // keep their golden byte-for-byte shape.
      EXPECT_EQ(line.find("uplink_decoded_bytes"), std::string::npos);
      continue;
    }
    ++with_fields;
    const char* p = line.c_str() + pos + std::strlen("\"compression_ratio\":");
    char* end = nullptr;
    const float parsed = std::strtof(p, &end);
    ASSERT_NE(end, p);
    EXPECT_EQ(parsed, compressed.compression_ratio);  // bit-exact
    EXPECT_NE(line.find("\"uplink_bytes\":" +
                        std::to_string(compressed.uplink_bytes)),
              std::string::npos);
    EXPECT_NE(line.find("\"uplink_dense_bytes\":" +
                        std::to_string(compressed.uplink_dense_bytes)),
              std::string::npos);
    EXPECT_NE(line.find("\"decode_rejects\":0"), std::string::npos);
    EXPECT_NE(line.find("\"uplink_decoded_bytes\":" +
                        std::to_string(compressed.uplink_decoded_bytes)),
              std::string::npos);
  }
  EXPECT_EQ(with_fields, 1u);
}

TEST(CommSweep, UnknownCodecIsAPerScenarioError) {
  fl::SweepOptions opts;
  opts.scale = fl::Scale::kSmoke;
  const auto results = fl::run_sweep({sweep_cell("gzip")}, opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].error.find("unknown codec"), std::string::npos)
      << results[0].error;
}

TEST(CommSweep, GridExpandsCodecAxis) {
  fl::SweepGrid grid;
  grid.gars = {"Mean", "SignGuard"};
  grid.codecs = {"none", "sign1", "topk"};
  grid.codec_chunk = 1024;
  grid.codec_k = 0.1;
  EXPECT_EQ(grid.size(), 6u);
  const auto specs = grid.expand();
  ASSERT_EQ(specs.size(), 6u);
  std::size_t with_codec = 0;
  for (const auto& s : specs) {
    EXPECT_EQ(s.codec_chunk, 1024u);
    if (s.codec != "none") {
      ++with_codec;
      EXPECT_NE(s.id().find("/codec=" + s.codec + "/ck=1024"),
                std::string::npos);
      if (s.codec == "topk")
        EXPECT_NE(s.id().find("/k=0.1"), std::string::npos);
    } else {
      // "none" ids keep their pre-transport form — the golden contract.
      EXPECT_EQ(s.id().find("codec"), std::string::npos);
    }
  }
  EXPECT_EQ(with_codec, 4u);
}

TEST(CommFormat, G9FloatFormattingRoundTripsBitExactly) {
  Rng rng(37);
  std::size_t checked = 0;
  while (checked < 20000) {
    const std::uint32_t bits = static_cast<std::uint32_t>(
        common::splitmix64(checked * 977u + rng.engine()() % 1000));
    float v;
    std::memcpy(&v, &bits, 4);
    if (!std::isfinite(v)) {
      ++checked;
      continue;
    }
    const std::string s = common::fmt_float(v);
    char* end = nullptr;
    const float parsed = std::strtof(s.c_str(), &end);
    ASSERT_EQ(*end, '\0') << s;
    ASSERT_EQ(std::memcmp(&parsed, &v, 4), 0)
        << s << " reparsed as " << parsed;
    ++checked;
  }
}

}  // namespace
}  // namespace signguard
