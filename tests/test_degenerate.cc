// Degenerate-shape audit across the full defense set: n = 0 must be a
// typed error in every build mode, n = 1, an oversized Byzantine budget
// and d = 0 must all produce well-defined finite output — never UB.
// Includes the DnC small-budget regression (filter_frac * m rounding to
// zero used to disable filtering entirely).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "aggregators/baselines.h"
#include "attacks/byzmean.h"
#include "attacks/lie.h"
#include "attacks/minmax_minsum.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/vecops.h"
#include "fl/experiment.h"

namespace signguard {
namespace {

common::GradientMatrix gaussian_matrix(std::size_t n, std::size_t d,
                                       double mean, double stddev,
                                       std::uint64_t seed) {
  Rng rng(seed);
  common::GradientMatrix m(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = rng.normal_vector(d, mean, stddev);
    std::copy(v.begin(), v.end(), m.row(i).begin());
  }
  return m;
}

TEST(Degenerate, EmptyRoundThrowsTypedErrorForEveryDefense) {
  const common::GradientMatrix empty(0, 5);
  for (const auto& name : fl::table1_defenses()) {
    auto gar = fl::make_aggregator(name, 17);
    Rng rng(1);
    agg::GarContext ctx;
    ctx.assumed_byzantine = 1;
    ctx.rng = &rng;
    EXPECT_THROW(gar->aggregate(empty, ctx), std::invalid_argument) << name;
  }
  // The legacy adapter also rejects inconsistent row dimensions.
  auto mean = fl::make_aggregator("Mean", 17);
  const std::vector<std::vector<float>> ragged = {{1.0f, 2.0f}, {3.0f}};
  EXPECT_THROW(mean->aggregate(ragged, agg::GarContext{}),
               std::invalid_argument);
}

TEST(Degenerate, SingleClientRoundIsWellDefined) {
  const auto grads = gaussian_matrix(1, 7, 0.3, 1.0, 23);
  for (const auto& name : fl::table1_defenses()) {
    auto gar = fl::make_aggregator(name, 17);
    Rng rng(2);
    agg::GarContext ctx;
    ctx.assumed_byzantine = 0;
    ctx.rng = &rng;
    const auto out = gar->aggregate(grads, ctx);
    ASSERT_EQ(out.size(), 7u) << name;
    for (const float v : out) EXPECT_TRUE(std::isfinite(v)) << name;
  }
}

TEST(Degenerate, OversizedByzantineBudgetIsClamped) {
  const auto grads = gaussian_matrix(4, 8, 0.1, 1.0, 29);
  for (const auto& name : fl::table1_defenses()) {
    auto gar = fl::make_aggregator(name, 17);
    Rng rng(3);
    agg::GarContext ctx;
    ctx.assumed_byzantine = 10;  // >= n/2: every rule clamps internally
    ctx.rng = &rng;
    const auto out = gar->aggregate(grads, ctx);
    ASSERT_EQ(out.size(), 8u) << name;
    for (const float v : out) EXPECT_TRUE(std::isfinite(v)) << name;
  }
}

TEST(Degenerate, ZeroDimensionalGradientsProduceEmptyOutput) {
  // d = 0 exercises DnC's coordinate subsample clamp and its power
  // iteration over width-zero rows (n = 6 keeps the filtering loop from
  // breaking out before the projection pass runs).
  const common::GradientMatrix grads(6, 0);
  for (const auto& name : fl::table1_defenses()) {
    auto gar = fl::make_aggregator(name, 17);
    Rng rng(4);
    agg::GarContext ctx;
    ctx.assumed_byzantine = 1;
    ctx.rng = &rng;
    const auto out = gar->aggregate(grads, ctx);
    EXPECT_TRUE(out.empty()) << name;
  }
}

// ---- attack-side degenerate shapes (PR 7 TimeVaryingAttack contract:
// degenerate inputs are typed errors, never silent garbage) -------------

// Views + context over a synthetic round: nb benign rows, m Byzantine.
attacks::AttackInput degenerate_round(std::size_t nb, std::size_t m,
                                      std::size_t d, Rng* rng) {
  static thread_local std::vector<std::vector<float>> benign, byz;
  benign.clear();
  byz.clear();
  Rng gen(91);
  for (std::size_t i = 0; i < nb; ++i)
    benign.push_back(gen.normal_vector(d, 0.1, 1.0));
  for (std::size_t i = 0; i < m; ++i)
    byz.push_back(gen.normal_vector(d, 0.1, 1.0));
  return attacks::make_attack_input(benign, byz, nb + m, m, rng);
}

TEST(DegenerateAttacks, EmptyHonestSetThrowsTypedError) {
  // All-Byzantine round: every omniscient attack needs benign statistics
  // and must refuse loudly instead of crafting from an empty set.
  Rng rng(7);
  const auto in = degenerate_round(0, 3, 5, &rng);
  EXPECT_THROW(attacks::LieAttack(0.3).craft(in.ctx), std::invalid_argument);
  EXPECT_THROW(attacks::MinMaxAttack().craft(in.ctx), std::invalid_argument);
  EXPECT_THROW(attacks::MinSumAttack().craft(in.ctx), std::invalid_argument);
  EXPECT_THROW(attacks::ByzMeanAttack().craft(in.ctx), std::invalid_argument);
  // LIE in auto-z mode hits the same wall one layer down (n == m).
  EXPECT_THROW(attacks::LieAttack(0.0).craft(in.ctx), std::invalid_argument);
}

TEST(DegenerateAttacks, ZeroByzantineCraftsNothing) {
  // m = 0 is a legal round shape (the trainer expects exactly m rows
  // back), not an error.
  Rng rng(8);
  const auto in = degenerate_round(4, 0, 5, &rng);
  EXPECT_TRUE(attacks::LieAttack(0.3).craft(in.ctx).empty());
  EXPECT_TRUE(attacks::MinMaxAttack().craft(in.ctx).empty());
  EXPECT_TRUE(attacks::MinSumAttack().craft(in.ctx).empty());
  EXPECT_TRUE(attacks::ByzMeanAttack().craft(in.ctx).empty());
}

TEST(DegenerateAttacks, ConstructorValidation) {
  EXPECT_THROW(attacks::ByzMeanAttack(nullptr, -0.1), std::invalid_argument);
  EXPECT_THROW(attacks::ByzMeanAttack(nullptr, 1.5), std::invalid_argument);
  EXPECT_THROW(attacks::ByzMeanAttack(nullptr, std::nan("")),
               std::invalid_argument);
  EXPECT_NO_THROW(attacks::ByzMeanAttack(nullptr, 0.5));
  EXPECT_THROW(attacks::LieAttack::z_max(3, 3), std::invalid_argument);
  EXPECT_THROW(attacks::LieAttack::z_max(2, 5), std::invalid_argument);
  EXPECT_THROW(
      attacks::make_perturbation(std::span<const attacks::GradientView>(),
                                 attacks::Perturbation::kInverseStd),
      std::invalid_argument);
}

TEST(DnC, SmallBudgetStillRemovesCollinearOutlier) {
  // The regression: at m = 1 with filter_frac < 0.5,
  // round(filter_frac * m) == 0 and DnC removed nobody while still
  // paying the full subsample + power-iteration passes. The clamp makes
  // any positive budget drop at least one candidate.
  const std::size_t n = 8, d = 16;
  Rng rng(37);
  const auto base = rng.normal_vector(d, 0.0, 1.0);
  common::GradientMatrix grads(n, d);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j)
      grads.at(i, j) = i == n - 1 ? 100.0f * base[j]
                                  : base[j] + float(rng.normal(0.0, 0.01));

  agg::DnCConfig cfg;
  cfg.filter_frac = 0.25;  // round(0.25 * 1) == 0 without the clamp
  cfg.subsample_frac = 1.0;
  agg::DnCAggregator dnc(cfg);
  Rng ctx_rng(5);
  agg::GarContext ctx;
  ctx.assumed_byzantine = 1;
  ctx.rng = &ctx_rng;
  const auto out = dnc.aggregate(grads, ctx);

  const auto sel = dnc.last_selected();
  ASSERT_EQ(sel.size(), n - 1);  // exactly one candidate removed
  EXPECT_TRUE(std::find(sel.begin(), sel.end(), n - 1) == sel.end())
      << "collinear outlier survived the filter";

  // The aggregate is the honest mean, far from the outlier's scale.
  std::vector<std::size_t> honest_ids;
  for (std::size_t i = 0; i + 1 < n; ++i) honest_ids.push_back(i);
  const auto honest_mean = vec::mean_of_subset(grads, honest_ids);
  EXPECT_LT(vec::dist(out, honest_mean), 1e-4 * vec::norm(honest_mean) + 1e-4);
}

}  // namespace
}  // namespace signguard
