// Hierarchical sharded aggregation: the determinism contract (bitwise
// thread-count invariance, shards=1 == flat rule), the exact-merge
// property of the shard statistics, robustness of both root merge rules
// under a Byzantine minority, one-client shards, and the per-shard
// decode routing against the full-round decode.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "aggregators/baselines.h"
#include "aggregators/sharded.h"
#include "comm/shard.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/shard_stats.h"
#include "common/vecops.h"
#include "fl/experiment.h"

namespace signguard {
namespace {

using agg::GarContext;
using agg::ShardedAggregator;
using agg::ShardedConfig;
using agg::ShardMerge;

common::GradientMatrix gaussian_matrix(std::size_t n, std::size_t d,
                                       double mean, double stddev,
                                       std::uint64_t seed) {
  Rng rng(seed);
  common::GradientMatrix m(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = rng.normal_vector(d, mean, stddev);
    std::copy(v.begin(), v.end(), m.row(i).begin());
  }
  return m;
}

ShardedAggregator::InnerFactory factory_for(const std::string& name) {
  return [name](std::uint64_t seed) { return fl::make_aggregator(name, seed); };
}

TEST(Sharded, ShardCountOneDelegatesBitwise) {
  const auto grads = gaussian_matrix(12, 40, 0.1, 1.0, 11);
  for (const char* name : {"Multi-Krum", "Median", "SignGuard"}) {
    auto flat = fl::make_aggregator(name, common::splitmix64(99 ^ 0ULL));
    ShardedAggregator sharded(factory_for(name), 99, {1, ShardMerge::kWeightedMean});
    Rng r1(5), r2(5);
    GarContext c1, c2;
    c1.assumed_byzantine = c2.assumed_byzantine = 2;
    c1.rng = &r1;
    c2.rng = &r2;
    const auto a = flat->aggregate(grads, c1);
    const auto b = sharded.aggregate(grads, c2);
    EXPECT_EQ(a, b) << name;
    EXPECT_EQ(flat->last_selected(), sharded.last_selected()) << name;
    EXPECT_EQ(sharded.last_shards(), 1u);
  }
}

TEST(Sharded, BitwiseThreadCountInvariant) {
  const auto grads = gaussian_matrix(48, 300, 0.05, 1.0, 21);
  for (const char* name : {"Multi-Krum", "SignGuard", "Mean"}) {
    for (const auto merge :
         {ShardMerge::kWeightedMean, ShardMerge::kMedianOfMeans}) {
      std::vector<std::vector<float>> outs;
      std::vector<std::vector<std::size_t>> sels;
      for (const std::size_t threads : {std::size_t(1), std::size_t(4)}) {
        common::set_thread_count(threads);
        ShardedConfig cfg{8, merge, /*collect_stats=*/true};
        ShardedAggregator sharded(factory_for(name), 1234, cfg);
        Rng rng(7);
        GarContext ctx;
        ctx.assumed_byzantine = 9;
        ctx.rng = &rng;
        outs.push_back(sharded.aggregate(grads, ctx));
        sels.push_back(sharded.last_selected());
        EXPECT_EQ(sharded.last_shards(), 8u);
      }
      common::set_thread_count(0);
      EXPECT_EQ(outs[0], outs[1]) << name;  // bitwise
      EXPECT_EQ(sels[0], sels[1]) << name;
    }
  }
}

TEST(Sharded, SignCountsMergeExactlyAcrossAnyPartition) {
  auto grads = gaussian_matrix(37, 101, 0.0, 1.0, 31);
  // Plant exact zeros so all three counters are exercised.
  for (std::size_t i = 0; i < grads.rows(); i += 5) grads.at(i, 3) = 0.0f;

  const auto flat = common::shard_sign_counts(grads, {});
  EXPECT_EQ(flat.total(), 37u * 101u);

  // Arbitrary 5-way partition of the rows: counts must add exactly.
  common::ShardSignCounts merged;
  for (std::size_t s = 0; s < 5; ++s) {
    common::ShardSignCounts part;
    for (std::size_t i = s; i < grads.rows(); i += 5)
      part.merge(common::shard_sign_counts(grads.row(i)));
    merged.merge(part);
  }
  EXPECT_EQ(merged.pos, flat.pos);
  EXPECT_EQ(merged.zero, flat.zero);
  EXPECT_EQ(merged.neg, flat.neg);

  // Count -> proportion conversion matches sign_statistics' division.
  const auto stats = merged.to_stats();
  const auto row_stats = sign_statistics(grads.row(0));
  const auto row_counts = common::shard_sign_counts(grads.row(0));
  EXPECT_EQ(row_counts.to_stats().pos, row_stats.pos);
  EXPECT_EQ(row_counts.to_stats().zero, row_stats.zero);
  EXPECT_EQ(row_counts.to_stats().neg, row_stats.neg);
  EXPECT_DOUBLE_EQ(stats.pos + stats.zero + stats.neg, 1.0);
}

TEST(Sharded, PartialMergeMatchesFlatStatistics) {
  const auto grads = gaussian_matrix(24, 64, 0.1, 0.7, 41);

  common::ShardPartial flat;
  common::accumulate_stats(flat, grads, {});
  for (std::size_t i = 0; i < grads.rows(); ++i)
    common::accumulate_row(flat, grads.row(i), 1.0);

  // Three shards of 8 rows, merged in shard order.
  common::ShardPartial merged;
  for (std::size_t s = 0; s < 3; ++s) {
    common::GradientMatrix shard(8, grads.cols());
    for (std::size_t i = 0; i < 8; ++i) {
      const auto src = grads.row(s * 8 + i);
      std::copy(src.begin(), src.end(), shard.row(i).begin());
    }
    common::ShardPartial part;
    common::accumulate_stats(part, shard, {});
    for (std::size_t i = 0; i < 8; ++i)
      common::accumulate_row(part, shard.row(i), 1.0);
    merged.merge(part);
  }

  EXPECT_EQ(merged.clients, flat.clients);
  EXPECT_EQ(merged.signs.pos, flat.signs.pos);
  EXPECT_EQ(merged.signs.zero, flat.signs.zero);
  EXPECT_EQ(merged.signs.neg, flat.signs.neg);
  EXPECT_NEAR(merged.norm2_sum, flat.norm2_sum,
              1e-9 * std::abs(flat.norm2_sum));
  EXPECT_DOUBLE_EQ(merged.weight, flat.weight);

  // finalize_mean of the uniform-weight partial is the plain mean.
  const auto mean = vec::mean_of(grads);
  const auto merged_mean = common::finalize_mean(merged);
  ASSERT_EQ(merged_mean.size(), mean.size());
  for (std::size_t j = 0; j < mean.size(); ++j)
    EXPECT_NEAR(merged_mean[j], mean[j], 1e-5);
}

TEST(Sharded, RobustUnderByzantineMinorityBothMerges) {
  const std::size_t n = 64, d = 32, n_byz = 12;
  Rng rng(51);
  const auto base = rng.normal_vector(d, 0.0, 1.0);
  common::GradientMatrix grads(n, d);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j)
      grads.at(i, j) = i < n_byz ? -10.0f * base[j]
                                 : base[j] + float(rng.normal(0.0, 0.1));

  // Honest mean reference from the uncorrupted rows.
  std::vector<std::size_t> honest_ids;
  for (std::size_t i = n_byz; i < n; ++i) honest_ids.push_back(i);
  const auto honest_mean = vec::mean_of_subset(grads, honest_ids);

  for (const auto merge :
       {ShardMerge::kWeightedMean, ShardMerge::kMedianOfMeans}) {
    ShardedAggregator sharded(factory_for("Multi-Krum"), 77, {8, merge});
    Rng ctx_rng(9);
    GarContext ctx;
    ctx.assumed_byzantine = n_byz;
    ctx.rng = &ctx_rng;
    const auto out = sharded.aggregate(grads, ctx);
    EXPECT_LT(vec::dist(out, honest_mean), 0.5 * vec::norm(honest_mean));

    // The trusted-set union should admit honest clients at a much
    // higher rate than Byzantine ones.
    const auto sel = sharded.last_selected();
    std::size_t byz_sel = 0;
    for (const auto i : sel) byz_sel += i < n_byz ? 1 : 0;
    EXPECT_GT(sel.size(), byz_sel * 3);
  }
}

TEST(Sharded, OneClientShardsAreWellDefined) {
  const auto grads = gaussian_matrix(9, 16, 0.2, 0.5, 61);
  for (const char* name : {"Multi-Krum", "SignGuard", "DnC", "Median"}) {
    // shards > n clamps to n: every shard holds exactly one client.
    ShardedAggregator sharded(factory_for(name), 5, {64, ShardMerge::kWeightedMean});
    Rng rng(3);
    GarContext ctx;
    ctx.assumed_byzantine = 2;
    ctx.rng = &rng;
    const auto out = sharded.aggregate(grads, ctx);
    ASSERT_EQ(out.size(), grads.cols()) << name;
    for (const float v : out) EXPECT_TRUE(std::isfinite(v)) << name;
    EXPECT_EQ(sharded.last_shards(), grads.rows());
    for (const auto sz : sharded.last_shard_sizes()) EXPECT_EQ(sz, 1u);
  }
}

TEST(Sharded, MedianOfMeansWithSingletonShardsIsCoordinateMedian) {
  // With one client per shard and inner Mean, every shard aggregate is
  // its client's row, so the momed root is exactly the coordinate-wise
  // median of the round (median is permutation-invariant).
  const auto grads = gaussian_matrix(11, 23, 0.0, 1.0, 71);
  ShardedAggregator sharded(factory_for("Mean"), 5,
                            {11, ShardMerge::kMedianOfMeans});
  Rng rng(13);
  GarContext ctx;
  ctx.rng = &rng;
  const auto out = sharded.aggregate(grads, ctx);

  agg::MedianAggregator median;
  const auto expect = median.aggregate(grads, GarContext{});
  EXPECT_EQ(out, expect);
}

TEST(Sharded, EmptyRoundAndMissingRngThrow) {
  ShardedAggregator sharded(factory_for("Mean"), 5, {4, ShardMerge::kWeightedMean});
  common::GradientMatrix empty(0, 8);
  Rng rng(1);
  GarContext ctx;
  ctx.rng = &rng;
  EXPECT_THROW(sharded.aggregate(empty, ctx), std::invalid_argument);

  const auto grads = gaussian_matrix(8, 8, 0.0, 1.0, 81);
  GarContext no_rng;
  EXPECT_THROW(sharded.aggregate(grads, no_rng), std::invalid_argument);
}

TEST(Sharded, CollectedPartialCoversWholeRound) {
  const auto grads = gaussian_matrix(20, 33, 0.0, 1.0, 91);
  ShardedConfig cfg{4, ShardMerge::kWeightedMean, /*collect_stats=*/true};
  ShardedAggregator sharded(factory_for("Multi-Krum"), 3, cfg);
  Rng rng(2);
  GarContext ctx;
  ctx.assumed_byzantine = 4;
  ctx.rng = &rng;
  sharded.aggregate(grads, ctx);

  const auto& p = sharded.last_partial();
  EXPECT_EQ(p.clients, grads.rows());
  EXPECT_EQ(p.signs.total(), grads.rows() * grads.cols());
  const auto flat = common::shard_sign_counts(grads, {});
  EXPECT_EQ(p.signs.pos, flat.pos);
  std::size_t survivor_sum = 0;
  for (const auto sv : sharded.last_shard_survivors()) survivor_sum += sv;
  EXPECT_EQ(p.survivors, survivor_sum);
}

TEST(ShardDecode, SubsetDecodeMatchesFullRoundDecode) {
  const std::size_t n = 12, d = 700;
  const auto grads = gaussian_matrix(n, d, 0.0, 1.0, 101);
  const auto codec = comm::make_codec({comm::CodecKind::kSign1, 128, 0.05});

  std::vector<std::vector<std::uint8_t>> uplinks(n);
  std::vector<comm::CodecScratch> scratch;
  for (std::size_t i = 0; i < n; ++i)
    comm::encode_into(*codec, grads.row(i), uplinks[i], scratch);

  // Full-round decode as the reference.
  common::GradientMatrix full(n, d);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(comm::decode_into(*codec, uplinks[i], full.row(i)),
              comm::DecodeStatus::kOk);

  // A shard holding an arbitrary id subset decodes the same rows.
  const std::vector<std::size_t> ids = {1, 4, 5, 9, 11};
  common::GradientMatrix shard;
  const auto res = comm::decode_shard_into(*codec, uplinks, ids, d, shard);
  EXPECT_EQ(res.rejected, 0u);
  ASSERT_EQ(shard.rows(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto a = shard.row(i), b = full.row(ids[i]);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }

  // validate_shard mirrors the decode statuses without touching floats.
  const auto val = comm::validate_shard(*codec, uplinks, ids, d);
  EXPECT_EQ(val.rejected, 0u);
  for (const auto st : val.status) EXPECT_EQ(st, comm::DecodeStatus::kOk);
}

TEST(ShardDecode, HostileMemberIsRejectedAndZeroed) {
  const std::size_t n = 6, d = 300;
  const auto grads = gaussian_matrix(n, d, 0.5, 1.0, 111);
  const auto codec = comm::make_codec({comm::CodecKind::kSign1, 128, 0.05});

  std::vector<std::vector<std::uint8_t>> uplinks(n);
  std::vector<comm::CodecScratch> scratch;
  for (std::size_t i = 0; i < n; ++i)
    comm::encode_into(*codec, grads.row(i), uplinks[i], scratch);
  uplinks[3].resize(uplinks[3].size() / 2);  // truncated hostile buffer

  const std::vector<std::size_t> ids = {2, 3, 4};
  common::GradientMatrix shard;
  const auto res = comm::decode_shard_into(*codec, uplinks, ids, d, shard);
  EXPECT_EQ(res.rejected, 1u);
  EXPECT_EQ(res.status[0], comm::DecodeStatus::kOk);
  EXPECT_NE(res.status[1], comm::DecodeStatus::kOk);
  EXPECT_EQ(res.status[2], comm::DecodeStatus::kOk);
  for (const float v : shard.row(1)) EXPECT_EQ(v, 0.0f);

  const auto val = comm::validate_shard(*codec, uplinks, ids, d);
  EXPECT_EQ(val.rejected, 1u);
  EXPECT_EQ(val.status[1], res.status[1]);
}

}  // namespace
}  // namespace signguard
