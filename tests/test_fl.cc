// FL engine tests: client gradient computation, server update mechanics,
// metrics accounting, and small end-to-end trainings exercising the full
// Algorithm 1 loop with attacks and defenses wired in.

#include <gtest/gtest.h>

#include <cmath>

#include "aggregators/baselines.h"
#include "attacks/byzmean.h"
#include "attacks/lie.h"
#include "attacks/simple_attacks.h"
#include "attacks/time_varying.h"
#include "core/signguard.h"
#include "data/synth_image.h"
#include "fl/client.h"
#include "fl/experiment.h"
#include "fl/metrics.h"
#include "fl/server.h"
#include "fl/trainer.h"
#include "nn/models.h"

namespace signguard::fl {
namespace {

data::TrainTest tiny_data(std::uint64_t seed = 5) {
  data::SynthImageConfig cfg;
  cfg.train_per_class = 40;
  cfg.test_per_class = 10;
  cfg.seed = seed;
  return data::make_synth_image(cfg);
}

TrainerConfig tiny_config() {
  TrainerConfig cfg;
  cfg.n_clients = 20;
  cfg.byzantine_frac = 0.2;
  cfg.rounds = 40;
  cfg.batch_size = 8;
  cfg.lr = 0.2;
  cfg.eval_every = 10;
  cfg.eval_max_samples = 0;
  cfg.seed = 3;
  return cfg;
}

ModelFactory tiny_model() {
  return [](std::uint64_t seed) { return nn::make_mlp(256, 16, 10, seed); };
}

TEST(Client, GradientHasModelDimension) {
  const auto tt = tiny_data();
  nn::Model model = tiny_model()(1);
  Client client(&tt.train, {0, 1, 2, 3, 4}, 7);
  const auto g = client.compute_gradient(model, 4, 0.0, false);
  EXPECT_EQ(g.size(), model.parameter_count());
  EXPECT_GT(client.average_loss(), 0.0);
}

TEST(Client, LabelFlipChangesGradient) {
  const auto tt = tiny_data();
  nn::Model model = tiny_model()(1);
  Client a(&tt.train, {0, 1, 2, 3}, 7);
  Client b(&tt.train, {0, 1, 2, 3}, 7);  // same seed -> same mini-batch
  const auto g_honest = a.compute_gradient(model, 4, 0.0, false);
  const auto g_flipped = b.compute_gradient(model, 4, 0.0, true);
  EXPECT_NE(g_honest, g_flipped);
}

TEST(Client, WeightDecayShiftsGradient) {
  const auto tt = tiny_data();
  nn::Model model = tiny_model()(1);
  Client a(&tt.train, {0, 1}, 7);
  Client b(&tt.train, {0, 1}, 7);
  const auto g0 = a.compute_gradient(model, 2, 0.0, false);
  const auto g1 = b.compute_gradient(model, 2, 0.1, false);
  const auto params = model.parameters();
  for (std::size_t j = 0; j < 20; ++j)
    EXPECT_NEAR(g1[j] - g0[j], 0.1f * params[j], 1e-4);
}

TEST(Server, AppliesAggregateWithMomentum) {
  auto gar = std::make_unique<agg::MeanAggregator>();
  Server server(std::move(gar), {0.0f, 0.0f}, 0.5, 0.0);
  const std::vector<std::vector<float>> grads = {{1.0f, 2.0f},
                                                 {3.0f, 4.0f}};
  const auto& agg = server.step(grads, agg::GarContext{});
  EXPECT_FLOAT_EQ(agg[0], 2.0f);
  EXPECT_FLOAT_EQ(server.parameters()[0], -1.0f);  // 0 - 0.5 * 2
  EXPECT_FLOAT_EQ(server.parameters()[1], -1.5f);
}

TEST(Metrics, SelectionStatsRunningAverage) {
  SelectionStats s;
  // Round 1: byz = {0,1}, selected = {2,3,4,5} -> honest 4/4, byz 0/2.
  s.accumulate(std::vector<std::size_t>{2, 3, 4, 5}, 2, 6);
  EXPECT_DOUBLE_EQ(s.honest_rate, 1.0);
  EXPECT_DOUBLE_EQ(s.malicious_rate, 0.0);
  // Round 2: selected = {0, 2} -> honest 1/4, byz 1/2.
  s.accumulate(std::vector<std::size_t>{0, 2}, 2, 6);
  EXPECT_DOUBLE_EQ(s.honest_rate, (1.0 + 0.25) / 2.0);
  EXPECT_DOUBLE_EQ(s.malicious_rate, 0.25);
  EXPECT_EQ(s.rounds, 2u);
}

TEST(Metrics, AttackImpactIsAccuracyDrop) {
  EXPECT_DOUBLE_EQ(attack_impact(90.0, 35.0), 55.0);
}

TEST(Metrics, EvaluateAccuracyPerfectModelIsHundred) {
  // A model whose logits exactly encode the label is 100% accurate; test
  // through the real evaluation path with a stub dataset of two classes.
  data::Dataset test;
  test.num_classes = 2;
  test.sample_shape = {2};
  test.x = {{5.0f, 0.0f}, {0.0f, 5.0f}, {4.0f, 1.0f}};
  test.y = {0, 1, 0};
  Rng rng(1);
  nn::Model identity;
  identity.add(std::make_unique<nn::Linear>(2, 2, rng));
  // Set W = I, b = 0.
  const std::vector<float> eye = {1.0f, 0.0f, 0.0f, 1.0f, 0.0f, 0.0f};
  identity.set_parameters(eye);
  EXPECT_DOUBLE_EQ(evaluate_accuracy(identity, test), 100.0);
}

TEST(Trainer, BaselineConverges) {
  const auto tt = tiny_data();
  Trainer trainer(tt, tiny_model(), tiny_config());
  attacks::NoAttack none;
  const auto res = trainer.run(none, std::make_unique<agg::MeanAggregator>());
  EXPECT_GT(res.best_accuracy, 60.0);
  EXPECT_EQ(res.history.size(), 4u);  // 40 rounds / eval_every 10
}

TEST(Trainer, HistoryRecordsFinalRound) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.rounds = 25;  // not divisible by eval_every
  Trainer trainer(tt, tiny_model(), cfg);
  attacks::NoAttack none;
  const auto res = trainer.run(none, std::make_unique<agg::MeanAggregator>());
  EXPECT_EQ(res.history.back().round, 24u);
  EXPECT_DOUBLE_EQ(res.final_accuracy, res.history.back().test_accuracy);
}

TEST(Trainer, DeterministicGivenSeed) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.rounds = 10;
  Trainer t1(tt, tiny_model(), cfg);
  Trainer t2(tt, tiny_model(), cfg);
  attacks::NoAttack a1, a2;
  const auto r1 = t1.run(a1, std::make_unique<agg::MeanAggregator>());
  const auto r2 = t2.run(a2, std::make_unique<agg::MeanAggregator>());
  EXPECT_DOUBLE_EQ(r1.final_accuracy, r2.final_accuracy);
}

TEST(Trainer, SignGuardBeatsMeanUnderByzMean) {
  const auto tt = tiny_data();
  Trainer trainer(tt, tiny_model(), tiny_config());

  // ByzMean with a random-noise inner vector (one of the paper's §III
  // suggestions): the mean of ALL gradients becomes pure noise, so
  // undefended training collapses while SignGuard filters both Byzantine
  // groups (noise by sign statistics, the compensating group by norm).
  auto make_byzmean = [] {
    return attacks::ByzMeanAttack(
        std::make_unique<attacks::RandomAttack>(0.0, 0.5));
  };

  auto byzmean_a = make_byzmean();
  const auto broken =
      trainer.run(byzmean_a, std::make_unique<agg::MeanAggregator>());

  auto byzmean_b = make_byzmean();
  const auto defended = trainer.run(
      byzmean_b, std::make_unique<core::SignGuard>(core::plain_config()));

  EXPECT_GT(defended.best_accuracy, broken.best_accuracy + 15.0);
}

TEST(Trainer, SignGuardSelectionStatsUnderAttacks) {
  const auto tt = tiny_data();
  Trainer trainer(tt, tiny_model(), tiny_config());

  // Strong LIE: sign statistics separate cleanly; near-zero admission.
  attacks::LieAttack lie(1.5);
  const auto res_lie = trainer.run(
      lie, std::make_unique<core::SignGuard>(core::plain_config()));
  EXPECT_GT(res_lie.selection.rounds, 0u);
  EXPECT_GT(res_lie.selection.honest_rate, 0.6);
  EXPECT_LT(res_lie.selection.malicious_rate, 0.1);

  // Sign-flip: the paper's known weak spot for plain sign statistics
  // (Table II reports a 0.39 malicious selection rate on ResNet-18, §VI-A
  // explains why). Require better-than-chance filtering, not perfection.
  attacks::SignFlipAttack flip;
  const auto res_flip = trainer.run(
      flip, std::make_unique<core::SignGuard>(core::plain_config()));
  EXPECT_GT(res_flip.selection.honest_rate, 0.6);
  EXPECT_LT(res_flip.selection.malicious_rate, 0.75);
}

TEST(Trainer, NonIidPartitionPathRuns) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.noniid = true;
  cfg.noniid_s = 0.3;
  cfg.rounds = 20;
  Trainer trainer(tt, tiny_model(), cfg);
  attacks::NoAttack none;
  const auto res = trainer.run(none, std::make_unique<agg::MeanAggregator>());
  EXPECT_GT(res.best_accuracy, 30.0);  // still learns, just slower
}

TEST(Trainer, LabelFlipAttackDegradesLessThanLargeNormRandom) {
  const auto tt = tiny_data();
  Trainer trainer(tt, tiny_model(), tiny_config());
  attacks::LabelFlipAttack label_flip;
  const auto lf = trainer.run(label_flip,
                              std::make_unique<agg::MeanAggregator>());
  // Label flipping is a mild data poisoning: 20% of clients training on
  // flipped labels barely dents an undefended mean. A large-norm random
  // gradient attack under the same undefended mean wrecks training — the
  // gap is tens of accuracy points for any seed (a ByzMean/LIE hybrid is
  // deliberately subtle, so its margin over label flipping is seed noise
  // at this scale and is not asserted here).
  attacks::RandomAttack random(0.0, 5.0);
  const auto rn =
      trainer.run(random, std::make_unique<agg::MeanAggregator>());
  EXPECT_GT(lf.best_accuracy, rn.best_accuracy + 10.0);
}

TEST(Trainer, ObserverSeesEveryRoundAndAttackNames) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.rounds = 12;
  cfg.eval_every = 4;
  Trainer trainer(tt, tiny_model(), cfg);
  attacks::TimeVaryingAttack tv(/*rounds_per_epoch=*/4, /*seed=*/9);
  std::size_t calls = 0, evals = 0;
  const auto res = trainer.run(
      tv, std::make_unique<agg::MeanAggregator>(),
      [&](const RoundObservation& obs) {
        EXPECT_EQ(obs.round, calls);
        ++calls;
        if (obs.test_accuracy.has_value()) ++evals;
        EXPECT_EQ(obs.attack_name, "TimeVarying");
      });
  EXPECT_EQ(calls, 12u);
  EXPECT_EQ(evals, res.history.size());
}

TEST(Trainer, ZeroByzantineFraction) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.byzantine_frac = 0.0;
  cfg.rounds = 10;
  Trainer trainer(tt, tiny_model(), cfg);
  EXPECT_EQ(trainer.n_byzantine(), 0u);
  attacks::SignFlipAttack flip;  // no clients to corrupt -> harmless
  const auto res =
      trainer.run(flip, std::make_unique<agg::MeanAggregator>());
  EXPECT_GT(res.best_accuracy, 15.0);
}

// Degenerate configurations must fail loudly at construction (or clamp,
// for the sampled-participant count) instead of crashing mid-round.
TEST(Trainer, DegenerateConfigsThrowAtConstruction) {
  const auto tt = tiny_data();
  const auto expect_throws = [&](TrainerConfig cfg) {
    EXPECT_THROW(Trainer(tt, tiny_model(), cfg), std::invalid_argument);
  };
  auto cfg = tiny_config();
  cfg.n_clients = 0;
  expect_throws(cfg);

  cfg = tiny_config();
  cfg.byzantine_frac = 0.5;  // Byzantine majority: m can reach n
  expect_throws(cfg);
  cfg.byzantine_frac = 1.0;  // would round to m == n
  expect_throws(cfg);
  cfg.byzantine_frac = -0.1;
  expect_throws(cfg);

  cfg = tiny_config();
  cfg.participation = 0.0;  // would sample zero clients
  expect_throws(cfg);
  cfg.participation = 1.5;
  expect_throws(cfg);

  cfg = tiny_config();
  cfg.dropout_prob = 1.5;
  expect_throws(cfg);
  cfg = tiny_config();
  cfg.straggler_prob = -0.5;
  expect_throws(cfg);

  cfg = tiny_config();
  cfg.rounds = 0;
  expect_throws(cfg);
}

TEST(Trainer, ByzantineFracRoundingToZeroStillRuns) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.n_clients = 10;
  cfg.byzantine_frac = 0.04;  // rounds to m = 0
  cfg.rounds = 6;
  Trainer trainer(tt, tiny_model(), cfg);
  EXPECT_EQ(trainer.n_byzantine(), 0u);
  attacks::SignFlipAttack flip;  // nothing to corrupt; must be a no-op
  const auto res = trainer.run(flip, std::make_unique<agg::MeanAggregator>());
  EXPECT_GT(res.best_accuracy, 10.0);
}

TEST(Trainer, TinyParticipationClampsToOneClient) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.participation = 0.01;  // 0.01 * 20 rounds to 0 -> clamped to 1
  cfg.rounds = 12;
  Trainer trainer(tt, tiny_model(), cfg);
  attacks::SignFlipAttack flip;
  std::size_t observed = 0, skipped = 0;
  const auto res = trainer.run(
      flip, std::make_unique<agg::MeanAggregator>(),
      [&](const RoundObservation& obs) {
        ++observed;
        if (obs.skipped) {
          ++skipped;  // the lone sampled client was Byzantine
          EXPECT_EQ(obs.participants, 0u);
        } else {
          EXPECT_EQ(obs.participants, 1u);
          EXPECT_EQ(obs.byzantine, 0u);
        }
      });
  EXPECT_EQ(observed, 12u);
  EXPECT_LT(skipped, 12u);  // with 20% Byzantine some rounds must survive
  (void)res;
}

TEST(Trainer, FailureInjectionAccounting) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.dropout_prob = 0.3;
  cfg.straggler_prob = 0.3;
  cfg.rounds = 15;
  Trainer trainer(tt, tiny_model(), cfg);
  attacks::NoAttack none;
  std::size_t dropped = 0, stragglers = 0;
  trainer.run(none, std::make_unique<agg::MeanAggregator>(),
              [&](const RoundObservation& obs) {
                // Every sampled client is either aggregated, dropped, or
                // arrived too late (on a skipped round the active
                // Byzantine clients are none of the three).
                if (!obs.skipped)
                  EXPECT_EQ(obs.participants + obs.dropped + obs.stragglers,
                            cfg.n_clients);
                dropped += obs.dropped;
                stragglers += obs.stragglers;
              });
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(stragglers, 0u);
}

TEST(Trainer, FullDropoutSkipsEveryRoundWithoutCrashing) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.dropout_prob = 1.0;
  cfg.rounds = 5;
  Trainer trainer(tt, tiny_model(), cfg);
  attacks::NoAttack none;
  std::size_t skipped = 0;
  const auto res = trainer.run(none, std::make_unique<agg::MeanAggregator>(),
                               [&](const RoundObservation& obs) {
                                 skipped += obs.skipped ? 1 : 0;
                               });
  EXPECT_EQ(skipped, 5u);
  EXPECT_TRUE(res.history.empty());
}

TEST(Trainer, ObserverExposesAggregateTrace) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.rounds = 4;
  Trainer trainer(tt, tiny_model(), cfg);
  const std::size_t dim = tiny_model()(1).parameter_count();
  attacks::NoAttack none;
  trainer.run(none, std::make_unique<agg::MeanAggregator>(),
              [&](const RoundObservation& obs) {
                ASSERT_EQ(obs.aggregate.size(), dim);
                EXPECT_EQ(obs.participants, cfg.n_clients);
                EXPECT_EQ(obs.byzantine, trainer.n_byzantine());
              });
}

TEST(ExperimentFactories, AllNamesConstruct) {
  for (const auto& name : table1_attacks())
    EXPECT_NE(make_attack(name), nullptr) << name;
  for (const auto& name : table1_defenses())
    EXPECT_NE(make_aggregator(name), nullptr) << name;
  EXPECT_THROW(make_attack("bogus"), std::invalid_argument);
  EXPECT_THROW(make_aggregator("bogus"), std::invalid_argument);
}

TEST(ExperimentFactories, WorkloadsConstructAndTrain) {
  // Smoke-train every workload at tiny scale through the factory path.
  for (const auto kind :
       {WorkloadKind::kMnistLike, WorkloadKind::kAgNewsLike}) {
    Workload w = make_workload(kind, ModelProfile::kGrid, Scale::kSmoke);
    w.config.rounds = 6;
    w.config.n_clients = 10;
    w.config.eval_every = 6;
    w.config.eval_max_samples = 200;
    Trainer trainer(w.data, w.model_factory, w.config);
    auto attack = make_attack("NoAttack");
    const auto res = trainer.run(*attack, make_aggregator("Mean"));
    EXPECT_GT(res.best_accuracy, 5.0) << w.name;
  }
}

TEST(Client, ClientMomentumAccumulatesAcrossRounds) {
  const auto tt = tiny_data();
  nn::Model model = tiny_model()(1);
  Client with_m(&tt.train, {0, 1, 2, 3}, 7);
  Client without(&tt.train, {0, 1, 2, 3}, 7);  // same batches
  const auto g1 = without.compute_gradient(model, 4, 0.0, false, 0.0);
  const auto v1 = with_m.compute_gradient(model, 4, 0.0, false, 0.9);
  // First round: buffer starts at zero, so v1 == g1.
  for (std::size_t j = 0; j < 10; ++j) EXPECT_NEAR(v1[j], g1[j], 1e-6);
  const auto g2 = without.compute_gradient(model, 4, 0.0, false, 0.0);
  const auto v2 = with_m.compute_gradient(model, 4, 0.0, false, 0.9);
  // Second round: v2 == 0.9 * g1 + g2.
  for (std::size_t j = 0; j < 10; ++j)
    EXPECT_NEAR(v2[j], 0.9f * g1[j] + g2[j], 1e-5);
}

TEST(Trainer, ClientMomentumModeTrains) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.momentum = 0.0;          // server momentum off
  cfg.client_momentum = 0.9;   // history-aided clients
  cfg.rounds = 40;
  cfg.lr = 0.05;               // buffered gradients are ~10x larger
  Trainer trainer(tt, tiny_model(), cfg);
  attacks::NoAttack none;
  const auto res = trainer.run(none, std::make_unique<agg::MeanAggregator>());
  EXPECT_GT(res.best_accuracy, 55.0);
}

TEST(Trainer, SignSgdAggregatorTrainsAndResistsInflation) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.momentum = 0.0;
  cfg.lr = 0.01;  // signSGD steps are +/- lr per coordinate
  cfg.rounds = 60;
  Trainer trainer(tt, tiny_model(), cfg);
  // Reverse-with-scaling cannot flip the majority vote with 20% clients.
  attacks::ReverseScalingAttack attack(1e6);
  const auto res =
      trainer.run(attack, fl::make_aggregator("SignSGD"));
  EXPECT_GT(res.best_accuracy, 40.0);
}

TEST(Trainer, PartialParticipationConverges) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.participation = 0.5;
  cfg.rounds = 60;
  Trainer trainer(tt, tiny_model(), cfg);
  attacks::NoAttack none;
  const auto res = trainer.run(none, std::make_unique<agg::MeanAggregator>());
  // Half the clients per round: still learns, just on fewer samples/round.
  EXPECT_GT(res.best_accuracy, 50.0);
}

TEST(Trainer, PartialParticipationDefendedUnderAttack) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.participation = 0.6;
  cfg.rounds = 50;
  Trainer trainer(tt, tiny_model(), cfg);
  // The per-round Byzantine count now varies; SignGuard needs no count
  // information, so the defense carries over unchanged.
  auto byzmean = attacks::ByzMeanAttack(
      std::make_unique<attacks::RandomAttack>(0.0, 0.5));
  const auto defended = trainer.run(
      byzmean, std::make_unique<core::SignGuard>(core::plain_config()));
  auto byzmean2 = attacks::ByzMeanAttack(
      std::make_unique<attacks::RandomAttack>(0.0, 0.5));
  const auto broken =
      trainer.run(byzmean2, std::make_unique<agg::MeanAggregator>());
  EXPECT_GT(defended.best_accuracy, broken.best_accuracy + 10.0);
}

TEST(Trainer, PartialParticipationDeterministic) {
  const auto tt = tiny_data();
  auto cfg = tiny_config();
  cfg.participation = 0.4;
  cfg.rounds = 15;
  Trainer t1(tt, tiny_model(), cfg);
  Trainer t2(tt, tiny_model(), cfg);
  attacks::NoAttack a1, a2;
  const auto r1 = t1.run(a1, std::make_unique<agg::MeanAggregator>());
  const auto r2 = t2.run(a2, std::make_unique<agg::MeanAggregator>());
  EXPECT_DOUBLE_EQ(r1.final_accuracy, r2.final_accuracy);
}

TEST(ScaleFromEnv, ParsesKnownValues) {
  EXPECT_EQ(to_string(Scale::kSmoke), "smoke");
  EXPECT_EQ(to_string(Scale::kDefault), "default");
  EXPECT_EQ(to_string(Scale::kFull), "full");
}

}  // namespace
}  // namespace signguard::fl
