// Attack library tests: every attack's defining mathematical property is
// asserted directly on synthetic gradient populations — LIE's Eq. (1)
// crafting rule and Eq. (2) attack factor, ByzMean's exact-mean identity
// (Eq. 8), Min-Max/Min-Sum constraint satisfaction and gamma maximality
// (Eqs. 14/15), and the simple perturbation attacks.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "attacks/byzmean.h"
#include "attacks/lie.h"
#include "attacks/minmax_minsum.h"
#include "attacks/simple_attacks.h"
#include "attacks/time_varying.h"
#include "common/vecops.h"

namespace signguard::attacks {
namespace {

std::vector<std::vector<float>> gaussian_grads(std::size_t n, std::size_t d,
                                               double mean, double stddev,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(rng.normal_vector(d, mean, stddev));
  return out;
}

// AttackContext now holds borrowed row views; the AttackInput holder owns
// the view arrays for the duration of the craft() expression.
AttackInput make_ctx(std::span<const std::vector<float>> benign,
                     std::span<const std::vector<float>> byz_honest,
                     std::size_t n, std::size_t m, Rng& rng) {
  return make_attack_input(benign, byz_honest, n, m, &rng);
}

TEST(NoAttack, ForwardsHonestGradients) {
  Rng rng(1);
  const auto benign = gaussian_grads(8, 16, 0.1, 1.0, 2);
  const auto byz = gaussian_grads(2, 16, 0.1, 1.0, 3);
  NoAttack attack;
  const auto out = attack.craft(make_ctx(benign, byz, 10, 2, rng).ctx);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], byz[0]);
  EXPECT_EQ(out[1], byz[1]);
}

TEST(RandomAttack, StatisticsMatchConfiguredGaussian) {
  Rng rng(4);
  const auto benign = gaussian_grads(8, 4000, 0.5, 1.0, 5);
  const auto byz = gaussian_grads(2, 4000, 0.5, 1.0, 6);
  RandomAttack attack(0.0, 0.5);
  const auto out = attack.craft(make_ctx(benign, byz, 10, 2, rng).ctx);
  ASSERT_EQ(out.size(), 2u);
  const auto m = vec::coordinate_moments(out);
  double mean_acc = 0.0;
  for (const float v : out[0]) mean_acc += v;
  EXPECT_NEAR(mean_acc / 4000.0, 0.0, 0.05);
  // Per-vector empirical stddev near 0.5.
  const double nrm = vec::norm(out[0]);
  EXPECT_NEAR(nrm / std::sqrt(4000.0), 0.5, 0.05);
  (void)m;
}

TEST(NoiseAttack, PerturbsHonestGradient) {
  Rng rng(7);
  const auto benign = gaussian_grads(8, 2000, 0.0, 1.0, 8);
  const auto byz = gaussian_grads(2, 2000, 0.0, 1.0, 9);
  NoiseAttack attack(0.0, 0.5);
  const auto out = attack.craft(make_ctx(benign, byz, 10, 2, rng).ctx);
  const auto delta = vec::sub(out[0], byz[0]);
  EXPECT_NEAR(vec::norm(delta) / std::sqrt(2000.0), 0.5, 0.05);
}

TEST(SignFlip, ExactNegation) {
  Rng rng(10);
  const auto benign = gaussian_grads(4, 8, 0.0, 1.0, 11);
  const auto byz = gaussian_grads(2, 8, 0.0, 1.0, 12);
  SignFlipAttack attack;
  const auto out = attack.craft(make_ctx(benign, byz, 6, 2, rng).ctx);
  for (std::size_t j = 0; j < 8; ++j)
    EXPECT_FLOAT_EQ(out[0][j], -byz[0][j]);
}

TEST(ReverseScaling, NegatesAndScales) {
  Rng rng(13);
  const auto benign = gaussian_grads(4, 8, 0.0, 1.0, 14);
  const auto byz = gaussian_grads(1, 8, 0.0, 1.0, 15);
  ReverseScalingAttack attack(100.0);
  const auto out = attack.craft(make_ctx(benign, byz, 5, 1, rng).ctx);
  for (std::size_t j = 0; j < 8; ++j)
    EXPECT_FLOAT_EQ(out[0][j], -100.0f * byz[0][j]);
}

TEST(LabelFlip, FlagsDataPoisoningAndForwards) {
  LabelFlipAttack attack;
  EXPECT_TRUE(attack.flips_labels());
  Rng rng(16);
  const auto benign = gaussian_grads(4, 8, 0.0, 1.0, 17);
  const auto byz = gaussian_grads(2, 8, 0.0, 1.0, 18);
  const auto out = attack.craft(make_ctx(benign, byz, 6, 2, rng).ctx);
  EXPECT_EQ(out[0], byz[0]);
}

TEST(Lie, CraftMatchesEquationOne) {
  const auto benign = gaussian_grads(10, 32, 0.2, 0.8, 19);
  const double z = 0.3;
  const auto gm = LieAttack::craft_vector(benign, z);
  const auto moments = vec::coordinate_moments(benign);
  for (std::size_t j = 0; j < gm.size(); ++j)
    EXPECT_NEAR(gm[j], moments.mean[j] - z * moments.stddev[j], 1e-5);
}

TEST(Lie, AllByzantineSendSameVector) {
  Rng rng(20);
  const auto benign = gaussian_grads(8, 16, 0.0, 1.0, 21);
  const auto byz = gaussian_grads(3, 16, 0.0, 1.0, 22);
  LieAttack attack(0.3);
  const auto out = attack.craft(make_ctx(benign, byz, 11, 3, rng).ctx);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], out[1]);
  EXPECT_EQ(out[1], out[2]);
}

TEST(Lie, ZMaxMatchesCumulativeNormalRule) {
  // n=50, m=10: s = (50 - 26) / 40 = 0.6; Phi^-1(0.6) ~ 0.2533.
  const double z = LieAttack::z_max(50, 10);
  EXPECT_NEAR(z, 0.2533, 1e-3);
  // Verify the defining property: Phi(z) == s at the supremum.
  EXPECT_NEAR(standard_normal_cdf(z), 0.6, 1e-6);
}

TEST(Lie, ZMaxGrowsWithByzantineFraction) {
  // More Byzantine clients -> attacker can push harder (larger z).
  EXPECT_LT(LieAttack::z_max(50, 5), LieAttack::z_max(50, 15));
  EXPECT_LT(LieAttack::z_max(50, 15), LieAttack::z_max(50, 24));
}

TEST(Lie, NonPositiveZUsesZMax) {
  Rng rng(23);
  const auto benign = gaussian_grads(40, 16, 0.0, 1.0, 24);
  const auto byz = gaussian_grads(10, 16, 0.0, 1.0, 25);
  LieAttack attack(0.0);  // auto
  const auto out = attack.craft(make_ctx(benign, byz, 50, 10, rng).ctx);
  const auto expected =
      LieAttack::craft_vector(benign, LieAttack::z_max(50, 10));
  for (std::size_t j = 0; j < expected.size(); ++j)
    EXPECT_NEAR(out[0][j], expected[j], 1e-6);
}

TEST(StandardNormalCdf, KnownValues) {
  EXPECT_NEAR(standard_normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(standard_normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(standard_normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(ByzMean, MeanOfAllGradientsEqualsGm1) {
  Rng rng(26);
  const auto benign = gaussian_grads(8, 64, 0.1, 1.0, 27);
  const auto byz = gaussian_grads(2, 64, 0.1, 1.0, 28);
  ByzMeanAttack attack;
  const std::size_t n = 10, m = 2;
  const auto out = attack.craft(make_ctx(benign, byz, n, m, rng).ctx);
  ASSERT_EQ(out.size(), m);
  // Assemble the full gradient population and check Eq. (8)'s identity.
  std::vector<std::vector<float>> all(out.begin(), out.end());
  all.insert(all.end(), benign.begin(), benign.end());
  const auto mean = vec::mean_of(all);
  const auto& gm1 = out[0];
  for (std::size_t j = 0; j < mean.size(); ++j)
    EXPECT_NEAR(mean[j], gm1[j], 1e-3);
}

TEST(ByzMean, SplitsGroupsEvenly) {
  Rng rng(29);
  const auto benign = gaussian_grads(40, 16, 0.0, 1.0, 30);
  const auto byz = gaussian_grads(10, 16, 0.0, 1.0, 31);
  ByzMeanAttack attack;
  const auto out = attack.craft(make_ctx(benign, byz, 50, 10, rng).ctx);
  ASSERT_EQ(out.size(), 10u);
  // m1 = 5 copies of g_m1, then 5 copies of g_m2.
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(out[i], out[0]);
  for (std::size_t i = 6; i < 10; ++i) EXPECT_EQ(out[i], out[5]);
  EXPECT_NE(out[0], out[5]);
}

TEST(ByzMean, SingleByzantineClientStillWellDefined) {
  Rng rng(32);
  const auto benign = gaussian_grads(8, 8, 0.0, 1.0, 33);
  const auto byz = gaussian_grads(1, 8, 0.0, 1.0, 34);
  ByzMeanAttack attack;
  const auto out = attack.craft(make_ctx(benign, byz, 9, 1, rng).ctx);
  EXPECT_EQ(out.size(), 1u);
}

TEST(MinMax, SatisfiesCliqueConstraint) {
  Rng rng(35);
  const auto benign = gaussian_grads(12, 64, 0.1, 1.0, 36);
  const auto byz = gaussian_grads(3, 64, 0.1, 1.0, 37);
  MinMaxAttack attack;
  const auto out = attack.craft(make_ctx(benign, byz, 15, 3, rng).ctx);
  const auto& gm = out[0];
  double max_to_benign = 0.0, max_pair = 0.0;
  for (std::size_t i = 0; i < benign.size(); ++i) {
    max_to_benign = std::max(max_to_benign, vec::dist2(gm, benign[i]));
    for (std::size_t j = i + 1; j < benign.size(); ++j)
      max_pair = std::max(max_pair, vec::dist2(benign[i], benign[j]));
  }
  EXPECT_LE(max_to_benign, max_pair * (1.0 + 1e-6));
  EXPECT_GT(attack.last_gamma(), 0.0);
}

TEST(MinSum, SatisfiesSumConstraint) {
  Rng rng(38);
  const auto benign = gaussian_grads(12, 64, 0.1, 1.0, 39);
  const auto byz = gaussian_grads(3, 64, 0.1, 1.0, 40);
  MinSumAttack attack;
  const auto out = attack.craft(make_ctx(benign, byz, 15, 3, rng).ctx);
  const auto& gm = out[0];
  double sum_gm = 0.0, max_sum = 0.0;
  for (std::size_t i = 0; i < benign.size(); ++i) {
    sum_gm += vec::dist2(gm, benign[i]);
    double sum_i = 0.0;
    for (std::size_t j = 0; j < benign.size(); ++j)
      sum_i += vec::dist2(benign[i], benign[j]);
    max_sum = std::max(max_sum, sum_i);
  }
  EXPECT_LE(sum_gm, max_sum * (1.0 + 1e-6));
}

TEST(MinMax, GammaIsMaximal) {
  // Doubling gamma beyond the found maximum must violate the constraint
  // (gamma is a supremum up to bisection tolerance).
  Rng rng(41);
  const auto benign = gaussian_grads(10, 32, 0.1, 1.0, 42);
  const auto byz = gaussian_grads(2, 32, 0.1, 1.0, 43);
  MinMaxAttack attack;
  const auto out = attack.craft(make_ctx(benign, byz, 12, 2, rng).ctx);
  const double gamma = attack.last_gamma();
  ASSERT_GT(gamma, 0.0);
  if (gamma < 99.0) {  // not capped
    const auto avg = vec::mean_of(benign);
    const auto dp = make_perturbation(benign, Perturbation::kInverseStd);
    auto gm_over = avg;
    vec::axpy(gamma * 1.2, dp, gm_over);
    double max_to_benign = 0.0, max_pair = 0.0;
    for (std::size_t i = 0; i < benign.size(); ++i) {
      max_to_benign = std::max(max_to_benign, vec::dist2(gm_over, benign[i]));
      for (std::size_t j = i + 1; j < benign.size(); ++j)
        max_pair = std::max(max_pair, vec::dist2(benign[i], benign[j]));
    }
    EXPECT_GT(max_to_benign, max_pair);
  }
}

TEST(Perturbations, AllVariantsHaveExpectedGeometry) {
  const auto benign = gaussian_grads(10, 128, 0.5, 1.0, 44);
  const auto std_p = make_perturbation(benign, Perturbation::kInverseStd);
  const auto moments = vec::coordinate_moments(benign);
  for (std::size_t j = 0; j < 10; ++j)
    EXPECT_NEAR(std_p[j], -moments.stddev[j], 1e-6);

  const auto unit_p = make_perturbation(benign, Perturbation::kInverseUnit);
  EXPECT_NEAR(vec::norm(unit_p), 1.0, 1e-5);
  EXPECT_LT(vec::cosine(unit_p, vec::mean_of(benign)), -0.999);

  const auto sign_p = make_perturbation(benign, Perturbation::kInverseSign);
  for (const float v : sign_p)
    EXPECT_TRUE(v == 1.0f || v == -1.0f || v == 0.0f);
}

TEST(MaxFeasibleGamma, BisectionFindsBoundary) {
  const double g =
      max_feasible_gamma([](double x) { return x <= 7.25; }, 100.0);
  EXPECT_NEAR(g, 7.25, 1e-6);
  const double capped =
      max_feasible_gamma([](double) { return true; }, 100.0);
  EXPECT_DOUBLE_EQ(capped, 100.0);
}

TEST(TimeVarying, SwitchesPerEpochDeterministically) {
  TimeVaryingAttack a(/*rounds_per_epoch=*/5, /*seed=*/77);
  TimeVaryingAttack b(/*rounds_per_epoch=*/5, /*seed=*/77);
  Rng rng(45);
  std::vector<std::string> names_a, names_b;
  for (std::size_t round = 0; round < 40; ++round) {
    a.begin_round(round, rng);
    b.begin_round(round, rng);
    names_a.push_back(a.current());
    names_b.push_back(b.current());
  }
  EXPECT_EQ(names_a, names_b);
  // Within an epoch the attack is constant.
  for (std::size_t r = 0; r < 40; ++r)
    EXPECT_EQ(names_a[r], names_a[(r / 5) * 5]);
  // Across 8 epochs at least two distinct attacks should appear.
  std::set<std::string> distinct(names_a.begin(), names_a.end());
  EXPECT_GT(distinct.size(), 1u);
}

TEST(TimeVarying, EmptyPoolThrows) {
  std::vector<std::unique_ptr<Attack>> pool;
  EXPECT_THROW(TimeVaryingAttack(std::move(pool), /*rounds_per_epoch=*/5,
                                 /*seed=*/7),
               std::invalid_argument);
  std::vector<std::unique_ptr<Attack>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(TimeVaryingAttack(std::move(with_null), 5, 7),
               std::invalid_argument);
}

TEST(TimeVarying, QueriesBeforeBeginRoundThrow) {
  // Before the first begin_round no epoch has drawn a sub-attack; the
  // old behaviour silently acted as pool_[0].
  TimeVaryingAttack attack(/*rounds_per_epoch=*/5, /*seed=*/7);
  EXPECT_THROW(attack.flips_labels(), std::logic_error);
  EXPECT_THROW(attack.current(), std::logic_error);
  const auto benign = gaussian_grads(4, 8, 0.0, 1.0, 47);
  const auto byz = gaussian_grads(1, 8, 0.0, 1.0, 48);
  Rng rng(46);
  auto input = make_ctx(benign, byz, 5, 1, rng);
  EXPECT_THROW(attack.craft(input.ctx), std::logic_error);
  // After begin_round every query is defined.
  attack.begin_round(0, rng);
  EXPECT_NO_THROW(attack.flips_labels());
  EXPECT_FALSE(attack.current().empty());
  EXPECT_NO_THROW(attack.craft(input.ctx));
}

TEST(TimeVarying, CraftDelegatesToActiveAttack) {
  std::vector<std::unique_ptr<Attack>> pool;
  pool.push_back(std::make_unique<SignFlipAttack>());
  TimeVaryingAttack attack(std::move(pool), 1, 7);
  Rng rng(46);
  attack.begin_round(0, rng);
  EXPECT_EQ(attack.current(), "SignFlip");
  const auto benign = gaussian_grads(4, 8, 0.0, 1.0, 47);
  const auto byz = gaussian_grads(1, 8, 0.0, 1.0, 48);
  const auto out = attack.craft(make_ctx(benign, byz, 5, 1, rng).ctx);
  for (std::size_t j = 0; j < 8; ++j)
    EXPECT_FLOAT_EQ(out[0][j], -byz[0][j]);
}

}  // namespace
}  // namespace signguard::attacks
