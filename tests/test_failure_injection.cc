// Failure-injection tests: Byzantine clients may send ARBITRARY bytes
// (Definition 2), including NaN / infinity / zero-length pathologies. The
// defense pipeline must stay finite and keep training alive. Also
// end-to-end "mini Table I" robustness properties on a small federation.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "aggregators/baselines.h"
#include "attacks/attack.h"
#include "core/signguard.h"
#include "common/vecops.h"
#include "data/synth_image.h"
#include "fl/experiment.h"
#include "fl/trainer.h"
#include "nn/models.h"

namespace signguard {
namespace {

std::vector<std::vector<float>> gaussian_grads(std::size_t n, std::size_t d,
                                               double mean, double stddev,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(rng.normal_vector(d, mean, stddev));
  return out;
}

bool all_finite(std::span<const float> v) {
  for (const float x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

TEST(FailureInjection, SignGuardRejectsNaNGradients) {
  auto g = gaussian_grads(16, 512, 0.2, 0.5, 1);
  for (int i = 0; i < 4; ++i)
    g.push_back(std::vector<float>(
        512, std::numeric_limits<float>::quiet_NaN()));
  core::SignGuard sg(core::plain_config());
  const auto out = sg.aggregate(g, agg::GarContext{});
  // NaN norms fail the band check, so the poisoned gradients are dropped
  // by the norm filter and the aggregate stays finite.
  for (const auto idx : sg.last_selected()) EXPECT_LT(idx, 16u);
  EXPECT_TRUE(all_finite(out));
}

TEST(FailureInjection, SignGuardRejectsInfinityGradients) {
  auto g = gaussian_grads(16, 512, 0.2, 0.5, 2);
  for (int i = 0; i < 4; ++i)
    g.push_back(
        std::vector<float>(512, std::numeric_limits<float>::infinity()));
  core::SignGuard sg(core::plain_config());
  const auto out = sg.aggregate(g, agg::GarContext{});
  for (const auto idx : sg.last_selected()) EXPECT_LT(idx, 16u);
  EXPECT_TRUE(all_finite(out));
}

TEST(FailureInjection, SignGuardRejectsZeroGradientsFromMinority) {
  auto g = gaussian_grads(16, 512, 0.2, 0.5, 3);
  for (int i = 0; i < 4; ++i) g.push_back(std::vector<float>(512, 0.0f));
  core::SignGuard sg(core::plain_config());
  sg.aggregate(g, agg::GarContext{});
  // Zero norm fails the lower threshold L = 0.1.
  for (const auto idx : sg.last_selected()) EXPECT_LT(idx, 16u);
}

TEST(FailureInjection, MedianSurvivesNaNMinority) {
  // Coordinate-wise median with a NaN minority: std::nth_element with
  // NaNs is UB-adjacent in general; our pipeline's contract is that
  // SignGuard-style norm screening happens first. This test documents
  // that the *robust mean family* (trimmed mean over finite values)
  // stays finite when NaNs are pre-filtered.
  auto g = gaussian_grads(9, 64, 0.5, 0.2, 4);
  core::NormFilterResult screen = core::norm_filter(g, {});
  EXPECT_EQ(screen.accepted.size(), 9u);
  agg::MedianAggregator median;
  const auto out = median.aggregate(g, agg::GarContext{});
  EXPECT_TRUE(all_finite(out));
}

// A Byzantine attack that sends NaN payloads through the full trainer.
class NaNAttack final : public attacks::Attack {
 public:
  std::vector<std::vector<float>> craft(
      const attacks::AttackContext& ctx) override {
    const std::size_t d =
        ctx.benign_grads.empty() ? 0 : ctx.benign_grads.front().size();
    return std::vector<std::vector<float>>(
        ctx.n_byzantine,
        std::vector<float>(d, std::numeric_limits<float>::quiet_NaN()));
  }
  std::string name() const override { return "NaN"; }
};

TEST(FailureInjection, TrainingSurvivesNaNAttackWithSignGuard) {
  data::SynthImageConfig dcfg;
  dcfg.train_per_class = 40;
  dcfg.test_per_class = 10;
  const auto tt = data::make_synth_image(dcfg);
  fl::TrainerConfig cfg;
  cfg.n_clients = 20;
  cfg.byzantine_frac = 0.2;
  cfg.rounds = 30;
  cfg.batch_size = 8;
  cfg.lr = 0.2;
  cfg.eval_every = 10;
  cfg.eval_max_samples = 0;
  fl::Trainer trainer(
      tt, [](std::uint64_t seed) { return nn::make_mlp(256, 16, 10, seed); },
      cfg);
  NaNAttack attack;
  const auto res = trainer.run(
      attack, std::make_unique<core::SignGuard>(core::plain_config()));
  EXPECT_GT(res.best_accuracy, 50.0);
  EXPECT_TRUE(std::isfinite(res.final_accuracy));
  EXPECT_DOUBLE_EQ(res.selection.malicious_rate, 0.0);
}

// ---- mini Table I property: SignGuard stays near baseline ------------------

class MiniTableSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(MiniTableSweep, SignGuardWithinMarginOfBaseline) {
  const std::string attack_name = GetParam();
  data::SynthImageConfig dcfg;
  dcfg.train_per_class = 40;
  dcfg.test_per_class = 10;
  const auto tt = data::make_synth_image(dcfg);
  fl::TrainerConfig cfg;
  cfg.n_clients = 20;
  cfg.byzantine_frac = 0.2;
  cfg.rounds = 50;
  cfg.batch_size = 8;
  cfg.lr = 0.2;
  cfg.eval_every = 10;
  cfg.eval_max_samples = 0;
  const auto model = [](std::uint64_t seed) {
    return nn::make_mlp(256, 16, 10, seed);
  };
  fl::Trainer trainer(tt, model, cfg);

  attacks::NoAttack none;
  const double baseline =
      trainer.run(none, fl::make_aggregator("Mean")).best_accuracy;

  auto attack = fl::make_attack(attack_name);
  const double defended =
      trainer.run(*attack, fl::make_aggregator("SignGuard")).best_accuracy;

  // Generous margin: the point is "not broken", not exact parity — at
  // this tiny scale run-to-run spread is a few points.
  EXPECT_GT(defended, baseline - 15.0) << attack_name;
}

INSTANTIATE_TEST_SUITE_P(StrongAttacks, MiniTableSweep,
                         ::testing::Values("ByzMean", "LIE", "MinMax",
                                           "MinSum", "Random", "Noise"));

}  // namespace
}  // namespace signguard
