#include "comm/stats.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/parallel.h"
#include "obs/trace.h"

namespace signguard::comm {

namespace {

WirePath wire_path_from_env() {
  const char* env = std::getenv("SIGNGUARD_WIREPATH");
  if (env != nullptr && std::strcmp(env, "decode") == 0)
    return WirePath::kDecode;
  return WirePath::kWire;
}

std::atomic<WirePath> g_wire_path{wire_path_from_env()};

}  // namespace

WirePath wire_path() { return g_wire_path.load(std::memory_order_relaxed); }

void set_wire_path(WirePath p) {
  g_wire_path.store(p, std::memory_order_relaxed);
}

CoordMask::CoordMask(std::size_t d, std::size_t chunk,
                     std::span<const std::size_t> coords)
    : n_coords_(coords.size()) {
  assert(chunk > 0);
  const std::size_t n_chunks = d == 0 ? 0 : (d + chunk - 1) / chunk;

  // One pass of mask geometry (data-independent), then a sorted scatter:
  // sorting the global sample once gives every chunk its offsets in
  // ascending order — the ChunkCoords contract the topk merge and the
  // popcount mask both rely on.
  mask_begin_.assign(n_chunks + 1, 0);
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t len = std::min(chunk, d - c * chunk);
    mask_begin_[c + 1] = mask_begin_[c] + (len + 7) / 8;
  }
  mask_.assign(mask_begin_[n_chunks], 0);

  std::vector<std::size_t> sorted(coords.begin(), coords.end());
  std::sort(sorted.begin(), sorted.end());

  offsets_.resize(sorted.size());
  begin_.assign(n_chunks + 1, 0);
  std::size_t i = 0;
  for (std::size_t c = 0; c < n_chunks; ++c) {
    begin_[c] = i;
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, d);
    std::uint8_t* mk = mask_.data() + mask_begin_[c];
    while (i < sorted.size() && sorted[i] < hi) {
      assert(sorted[i] >= lo);
      const auto o = static_cast<std::uint32_t>(sorted[i] - lo);
      offsets_[i] = o;
      mk[o >> 3] |= static_cast<std::uint8_t>(1u << (o & 7u));
      ++i;
    }
  }
  begin_[n_chunks] = i;
  assert(i == sorted.size());  // every coordinate must lie in [0, d)
}

std::vector<double> wire_row_norms(const WireRound& wire) {
  assert(wire.codec != nullptr);
  obs::Span span("wire/row_norms", std::int64_t(wire.uplinks.size()));
  const Codec& codec = *wire.codec;
  const std::size_t chunk = codec.chunk();
  const WireLayout l = wire_layout(codec, wire.d);
  std::vector<double> out(wire.uplinks.size(), 0.0);
  common::parallel_for(wire.uplinks.size(), [&](std::size_t i) {
    const std::vector<std::uint8_t>& buf = wire.uplinks[i];
    assert(buf.size() == l.total);  // validated upstream
    double acc = 0.0;
    for (std::size_t c = 0; c < l.n_chunks; ++c) {
      const std::size_t len = c + 1 == l.n_chunks ? l.tail_len : chunk;
      const std::size_t psize = codec.chunk_payload_size(len);
      const std::uint8_t* rec =
          buf.data() + kWireHeaderSize + c * l.full_record;
      acc = codec.chunk_norm2({rec + 4, psize}, len, acc);
    }
    out[i] = std::sqrt(acc);
  });
  return out;
}

std::vector<SignStats> wire_sign_stats(const WireRound& wire,
                                       const CoordMask& mask) {
  assert(wire.codec != nullptr);
  obs::Span span("wire/sign_stats", std::int64_t(wire.uplinks.size()));
  const Codec& codec = *wire.codec;
  const std::size_t chunk = codec.chunk();
  const WireLayout l = wire_layout(codec, wire.d);
  assert(mask.n_chunks() == l.n_chunks);
  std::vector<SignStats> out(wire.uplinks.size());
  common::parallel_for(wire.uplinks.size(), [&](std::size_t i) {
    const std::vector<std::uint8_t>& buf = wire.uplinks[i];
    assert(buf.size() == l.total);  // validated upstream
    std::size_t counts[3] = {0, 0, 0};
    for (std::size_t c = 0; c < l.n_chunks; ++c) {
      const std::size_t len = c + 1 == l.n_chunks ? l.tail_len : chunk;
      const std::size_t psize = codec.chunk_payload_size(len);
      const std::uint8_t* rec =
          buf.data() + kWireHeaderSize + c * l.full_record;
      codec.chunk_sign_counts({rec + 4, psize}, len, mask.chunk_coords(c),
                              counts);
    }
    if (mask.n_coords() == 0) return;  // sign_statistics' empty-coords case
    const double n = double(mask.n_coords());
    out[i].pos = double(counts[0]) / n;
    out[i].zero = double(counts[1]) / n;
    out[i].neg = double(counts[2]) / n;
  });
  return out;
}

}  // namespace signguard::comm
