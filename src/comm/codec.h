#pragma once
// Gradient uplink codecs: the compression half of the transport layer
// that sits between fl::Client and the server-side GradientMatrix. A
// codec turns a chunk of float32 gradient coordinates into a byte
// payload and back; the framing around chunks (header, length prefixes,
// checksum) lives in comm/wire.h.
//
// Determinism contract (shared with the rest of the codebase):
//   * encode is a pure function of the chunk's floats — no RNG, no
//     platform dependence, sequential accumulation inside a chunk — so
//     encoded bytes are bitwise thread-invariant and reproducible.
//   * chunk_payload_size() depends only on the chunk length, never on
//     the data, so every chunk's output offset is computable up front
//     and chunks can be encoded/decoded concurrently into disjoint
//     slots (comm/wire.h does exactly that on the common/parallel pool).
//   * encode(decode(encode(x))) == encode(x) byte-for-byte for every
//     finite input: a decoded gradient re-enters the wire in exactly the
//     bytes it arrived in, so relays and replays cannot drift.
//   * decode_chunk never exhibits UB on hostile bytes — a Byzantine
//     client controls its own payload — and rejects any chunk that a
//     legitimate encoder could not have produced (non-finite scales,
//     out-of-range codes, non-monotone sparse indices), so corrupt
//     uplinks cannot inject NaN/inf into the aggregation pipeline.
//
// Codecs (kind byte is the on-wire id; never renumber):
//   none  raw little-endian float32 — the identity transport.
//   sign1 1 bit per coordinate + one float32 mean-|x| scale per chunk
//         (à la SignSGD). sign(decode(x)) == sign(x) coordinate-wise
//         (zeros surface as +scale), so SignGuard's sign statistics
//         survive compression exactly. ~32x smaller at chunk 4096.
//   int8  per-chunk symmetric quantization to q in [-127, 127] with
//         deterministic round-half-even on a power-of-two grid (the
//         stored per-chunk parameter is the step exponent, sized so
//         max|x| spans [64, 128) steps). A power-of-two step decodes
//         with exact float arithmetic, which is what makes re-encoding
//         a bitwise projection even for denormal chunks — an arbitrary
//         scale (or an affine offset) cannot round-trip once its own
//         rounding error grows. ~4x smaller.
//   topk  magnitude top-k sparsification per chunk (k = k_fraction of
//         the chunk, at least 1) with a deterministic
//         magnitude-then-value-then-index tie-break; surviving entries
//         are stored as exact float32 plus u16 index deltas.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace signguard::comm {

enum class CodecKind : std::uint8_t {
  kNone = 0,
  kSign1 = 1,
  kInt8 = 2,
  kTopK = 3,
};

// Index deltas inside a chunk are u16, so a chunk never spans more
// coordinates than one delta can express.
inline constexpr std::size_t kMaxChunk = 65536;

// Trainer-facing knob: which codec, how many coordinates per wire chunk,
// and (top-k only) which fraction of each chunk survives.
struct CompressionSpec {
  CodecKind codec = CodecKind::kNone;
  std::size_t chunk = 4096;
  double k_fraction = 0.05;
};

// Reusable per-worker scratch for encode_chunk (top-k candidate
// ordering). One instance per concurrent encoder; zero steady-state
// allocation once grown.
struct CodecScratch {
  std::vector<std::uint32_t> order;
};

// Sampled-coordinate view of one chunk for the compressed-domain sign
// statistics (comm/stats.h builds one per chunk, shared by every client
// in the round). Both members describe the same coordinate subset:
//   offsets  in-chunk coordinate offsets, strictly ascending, distinct
//   mask     the same offsets as packed bits, (len + 7) / 8 bytes in the
//            sign1 payload bit layout (bit j of byte j/8 = offset j
//            sampled), so sign counting is one masked popcount sweep
struct ChunkCoords {
  std::span<const std::uint32_t> offsets;
  std::span<const std::uint8_t> mask;
};

class Codec {
 public:
  explicit Codec(std::size_t chunk) : chunk_(chunk) {}
  virtual ~Codec() = default;

  virtual CodecKind kind() const = 0;
  virtual const char* name() const = 0;

  // Coordinates per wire chunk (every chunk but the row's tail).
  std::size_t chunk() const { return chunk_; }

  // Exact payload size of a chunk of `len` coordinates. Data-independent
  // by contract (see file header).
  virtual std::size_t chunk_payload_size(std::size_t len) const = 0;

  // Writes exactly chunk_payload_size(in.size()) bytes to `out`.
  virtual void encode_chunk(std::span<const float> in, std::uint8_t* out,
                            CodecScratch& scratch) const = 0;

  // Inverse of encode_chunk; writes every coordinate of `out`. `in` has
  // already been length-checked against chunk_payload_size(out.size());
  // returns false when the payload's internals are malformed (the wire
  // layer surfaces that as DecodeStatus::kMalformedChunk).
  virtual bool decode_chunk(std::span<const std::uint8_t> in,
                            std::span<float> out) const = 0;

  // --- compressed-domain statistics (the SIGNGUARD_WIREPATH=wire path) ---
  // The three hooks below let the server run SignGuard's filters on wire
  // bytes without materializing floats. Each consumes a payload of
  // exactly chunk_payload_size(len) bytes and is bitwise-equivalent to
  // the corresponding scan of the decoded chunk; the equivalence is what
  // tests/test_comm.cc's CommStats suite pins down per codec.

  // True iff decode_chunk would accept the payload — same acceptance
  // predicate, no output writes. Runs BEFORE any statistics hook: the
  // stats contracts below only hold for validated payloads.
  virtual bool validate_chunk(std::span<const std::uint8_t> in,
                              std::size_t len) const = 0;

  // Continues the squared-norm accumulation chain over the decoded chunk
  // in coordinate order, starting from `acc`. Bitwise identical to
  //   for (j in chunk) acc += double(x[j]) * double(x[j]);
  // on the decoded coordinates (the sequential-double-chain contract of
  // vec::dot), which is what makes wire-path norms equal decode-path
  // norms bit for bit.
  virtual double chunk_norm2(std::span<const std::uint8_t> in,
                             std::size_t len, double acc) const = 0;

  // Sign census of the decoded chunk restricted to the sampled offsets
  // in `coords`: adds into counts[0] (x > 0), counts[1] (x == 0),
  // counts[2] (x < 0). Integer counts are order-free, so this is exact
  // regardless of traversal; sign1 implements it as a masked popcount
  // over the payload bits.
  virtual void chunk_sign_counts(std::span<const std::uint8_t> in,
                                 std::size_t len, const ChunkCoords& coords,
                                 std::size_t counts[3]) const = 0;

 private:
  std::size_t chunk_;
};

// Survivor count of the top-k codec for a chunk of `len` coordinates:
// min(len, max(1, nearbyint(k_fraction * len))), capped at the u16 count
// field. Exposed so codec-aware callers (attacks/wirecraft.cc crafts
// exactly-k-spike chunks, tests pin the formula) share the encoder's
// arithmetic instead of re-deriving it.
std::size_t topk_keep_count(double k_fraction, std::size_t len);

// Canonical lowercase codec names ("none", "sign1", "int8", "topk").
const char* codec_name(CodecKind kind);
// Throws std::invalid_argument for an unknown name.
CodecKind codec_kind_from_name(const std::string& name);

// Builds the configured codec. Throws std::invalid_argument for a
// degenerate spec: chunk outside [1, kMaxChunk], or (top-k) k_fraction
// outside (0, 1].
std::unique_ptr<Codec> make_codec(const CompressionSpec& spec);

}  // namespace signguard::comm
