#include "comm/shard.h"

#include <algorithm>
#include <cassert>

#include "common/parallel.h"

namespace signguard::comm {

ShardDecode decode_shard_into(
    const Codec& codec, std::span<const std::vector<std::uint8_t>> uplinks,
    std::span<const std::size_t> ids, std::size_t d,
    common::GradientMatrix& out) {
  ShardDecode r;
  r.status.assign(ids.size(), DecodeStatus::kOk);
  out.resize(ids.size(), d);
  common::parallel_for(ids.size(), [&](std::size_t i) {
    assert(ids[i] < uplinks.size());
    const auto row = out.row(i);
    const DecodeStatus st = decode_into(codec, uplinks[ids[i]], row);
    r.status[i] = st;
    // decode_into leaves a rejected row unspecified; pin it to zero so
    // a shard kernel that still touches it reads defined values.
    if (st != DecodeStatus::kOk) std::fill(row.begin(), row.end(), 0.0f);
  });
  for (const DecodeStatus st : r.status)
    if (st != DecodeStatus::kOk) ++r.rejected;
  return r;
}

ShardDecode validate_shard(
    const Codec& codec, std::span<const std::vector<std::uint8_t>> uplinks,
    std::span<const std::size_t> ids, std::size_t d) {
  ShardDecode r;
  r.status.assign(ids.size(), DecodeStatus::kOk);
  common::parallel_for(ids.size(), [&](std::size_t i) {
    assert(ids[i] < uplinks.size());
    r.status[i] = validate(codec, uplinks[ids[i]], d);
  });
  for (const DecodeStatus st : r.status)
    if (st != DecodeStatus::kOk) ++r.rejected;
  return r;
}

}  // namespace signguard::comm
