#include "comm/wire.h"

#include <atomic>
#include <cstring>

#include "common/hash.h"
#include "common/parallel.h"

namespace signguard::comm {

namespace {

inline void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
inline void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// Everything up to (but not including) the per-chunk codec decode:
// header fields, record structure, and the payload checksum. Shared by
// decode_into and validate so the two can never drift apart on which
// buffers they accept.
DecodeStatus check_structure(const Codec& codec,
                             std::span<const std::uint8_t> buf, std::size_t d,
                             const WireLayout& l) {
  const std::size_t chunk = codec.chunk();
  if (buf.size() < kWireHeaderSize) return DecodeStatus::kTruncated;
  const std::uint8_t* h = buf.data();
  if (h[0] != 'S' || h[1] != 'G' || h[2] != 'T' || h[3] != '1' || h[5] != 0 ||
      h[6] != 0 || h[7] != 0)
    return DecodeStatus::kBadMagic;
  if (h[4] != static_cast<std::uint8_t>(codec.kind()))
    return DecodeStatus::kCodecMismatch;
  if (get_u64(h + 8) != d) return DecodeStatus::kDimMismatch;
  if (get_u32(h + 16) != chunk) return DecodeStatus::kChunkMismatch;

  // Structural walk before the checksum: a buffer cut short reports
  // kTruncated (the likely transport failure), while a size-consistent
  // buffer with damaged bytes reports kChecksumMismatch below.
  std::size_t off = kWireHeaderSize;
  for (std::size_t c = 0; c < l.n_chunks; ++c) {
    if (buf.size() - off < 4) return DecodeStatus::kTruncated;
    const std::size_t len = c + 1 == l.n_chunks ? l.tail_len : chunk;
    const std::size_t psize = codec.chunk_payload_size(len);
    if (get_u32(buf.data() + off) != psize)
      return DecodeStatus::kBadChunkLength;
    if (buf.size() - off - 4 < psize) return DecodeStatus::kTruncated;
    off += 4 + psize;
  }
  if (off != buf.size()) return DecodeStatus::kTrailingBytes;

  if (get_u64(h + 20) !=
      common::fnv1a64(buf.data() + kWireHeaderSize,
                      buf.size() - kWireHeaderSize))
    return DecodeStatus::kChecksumMismatch;
  return DecodeStatus::kOk;
}

}  // namespace

WireLayout wire_layout(const Codec& codec, std::size_t d) {
  WireLayout l;
  const std::size_t chunk = codec.chunk();
  if (d == 0) return l;
  l.n_chunks = (d + chunk - 1) / chunk;
  l.tail_len = d - (l.n_chunks - 1) * chunk;
  l.full_record = 4 + codec.chunk_payload_size(chunk);
  l.total = kWireHeaderSize + (l.n_chunks - 1) * l.full_record + 4 +
            codec.chunk_payload_size(l.tail_len);
  return l;
}

const char* to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kTruncated:
      return "truncated";
    case DecodeStatus::kBadMagic:
      return "bad-magic";
    case DecodeStatus::kCodecMismatch:
      return "codec-mismatch";
    case DecodeStatus::kDimMismatch:
      return "dim-mismatch";
    case DecodeStatus::kChunkMismatch:
      return "chunk-mismatch";
    case DecodeStatus::kBadChunkLength:
      return "bad-chunk-length";
    case DecodeStatus::kChecksumMismatch:
      return "checksum-mismatch";
    case DecodeStatus::kMalformedChunk:
      return "malformed-chunk";
    case DecodeStatus::kTrailingBytes:
      return "trailing-bytes";
  }
  return "unknown";
}

std::size_t encoded_size(const Codec& codec, std::size_t d) {
  return wire_layout(codec, d).total;
}

void encode_into(const Codec& codec, std::span<const float> row,
                 std::vector<std::uint8_t>& out,
                 std::vector<CodecScratch>& scratch) {
  const std::size_t d = row.size();
  const std::size_t chunk = codec.chunk();
  const WireLayout l = wire_layout(codec, d);
  out.resize(l.total);

  std::uint8_t* h = out.data();
  h[0] = 'S';
  h[1] = 'G';
  h[2] = 'T';
  h[3] = '1';
  h[4] = static_cast<std::uint8_t>(codec.kind());
  h[5] = h[6] = h[7] = 0;
  put_u64(h + 8, d);
  put_u32(h + 16, static_cast<std::uint32_t>(chunk));

  if (scratch.size() < common::thread_count())
    scratch.resize(common::thread_count());
  // Records land at precomputed offsets, so the chunk fan-out writes
  // disjoint byte ranges — bitwise thread-invariant by construction.
  common::parallel_chunks(
      l.n_chunks,
      [&](std::size_t begin, std::size_t end, std::size_t worker) {
        CodecScratch& s = scratch[worker];
        for (std::size_t c = begin; c < end; ++c) {
          const std::size_t len = c + 1 == l.n_chunks ? l.tail_len : chunk;
          const std::size_t psize = codec.chunk_payload_size(len);
          std::uint8_t* rec = out.data() + kWireHeaderSize + c * l.full_record;
          put_u32(rec, static_cast<std::uint32_t>(psize));
          codec.encode_chunk(row.subspan(c * chunk, len), rec + 4, s);
        }
      });

  put_u64(h + 20, common::fnv1a64(out.data() + kWireHeaderSize,
                                  l.total - kWireHeaderSize));
}

DecodeStatus decode_into(const Codec& codec,
                         std::span<const std::uint8_t> buf,
                         std::span<float> row) {
  const std::size_t d = row.size();
  const std::size_t chunk = codec.chunk();
  const WireLayout l = wire_layout(codec, d);
  const DecodeStatus st = check_structure(codec, buf, d, l);
  if (st != DecodeStatus::kOk) return st;

  // Every record's offset and length is now verified; decode the chunks
  // concurrently into disjoint coordinate ranges of the row.
  std::atomic<bool> ok{true};
  common::parallel_chunks(
      l.n_chunks, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t c = begin; c < end && ok.load(); ++c) {
          const std::size_t len = c + 1 == l.n_chunks ? l.tail_len : chunk;
          const std::size_t psize = codec.chunk_payload_size(len);
          const std::uint8_t* rec =
              buf.data() + kWireHeaderSize + c * l.full_record;
          if (!codec.decode_chunk({rec + 4, psize},
                                  row.subspan(c * chunk, len)))
            ok.store(false);
        }
      });
  return ok.load() ? DecodeStatus::kOk : DecodeStatus::kMalformedChunk;
}

DecodeStatus validate(const Codec& codec, std::span<const std::uint8_t> buf,
                      std::size_t d) {
  const std::size_t chunk = codec.chunk();
  const WireLayout l = wire_layout(codec, d);
  const DecodeStatus st = check_structure(codec, buf, d, l);
  if (st != DecodeStatus::kOk) return st;

  std::atomic<bool> ok{true};
  common::parallel_chunks(
      l.n_chunks, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t c = begin; c < end && ok.load(); ++c) {
          const std::size_t len = c + 1 == l.n_chunks ? l.tail_len : chunk;
          const std::size_t psize = codec.chunk_payload_size(len);
          const std::uint8_t* rec =
              buf.data() + kWireHeaderSize + c * l.full_record;
          if (!codec.validate_chunk({rec + 4, psize}, len)) ok.store(false);
        }
      });
  return ok.load() ? DecodeStatus::kOk : DecodeStatus::kMalformedChunk;
}

}  // namespace signguard::comm
