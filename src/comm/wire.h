#pragma once
// The wire format of the gradient transport layer: framing around the
// comm/codec.h chunk payloads. One uplink buffer per client per round:
//
//   [ 28-byte header ][ chunk record ][ chunk record ] ... (ceil(d/chunk))
//
//   header:  0..4   magic "SGT1"
//            4      codec id (CodecKind)
//            5..8   reserved, must be zero
//            8..16  d — coordinate count (u64 LE)
//           16..20  chunk size — coords per chunk (u32 LE)
//           20..28  FNV-1a64 checksum over every byte after the header
//   record:  u32 LE payload length, then the codec's chunk payload
//
// Because every codec's chunk payload size is a pure function of the
// chunk length (comm/codec.h contract), all record offsets are known up
// front: encode and decode fan chunks out over the common/parallel pool
// into disjoint byte/coordinate ranges, so the bytes and the decoded
// floats are bitwise identical for any SIGNGUARD_THREADS.
//
// decode_into trusts nothing — a Byzantine client controls its own
// bytes. Every read is bounds-checked, every structural field is
// validated against the server's configured codec, and failures come
// back as a typed DecodeStatus (no asserts, no exceptions on the decode
// path, no out-of-bounds access). An accepted buffer always decodes to
// all-finite rows.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/codec.h"

namespace signguard::comm {

enum class DecodeStatus {
  kOk = 0,
  kTruncated,         // buffer ends before the declared structure does
  kBadMagic,          // wrong magic or nonzero reserved bytes
  kCodecMismatch,     // header codec id != the round's configured codec
  kDimMismatch,       // header d != the model's parameter count
  kChunkMismatch,     // header chunk size != the configured chunk size
  kBadChunkLength,    // a record's length prefix != the codec's size
  kChecksumMismatch,  // payload bytes don't match the header checksum
  kMalformedChunk,    // codec-level rejection (bad scale, index, code)
  kTrailingBytes,     // well-formed chunks followed by extra bytes
};

const char* to_string(DecodeStatus status);

inline constexpr std::size_t kWireHeaderSize = 28;

// Chunk geometry of a d-coordinate row under `codec`: record sizes are
// fixed for every chunk but the tail, so record c starts at
// kWireHeaderSize + c * full_record. Data-independent (the codec
// contract), which is what lets the compressed-domain statistics pass
// in comm/stats.h walk a validated buffer without re-deriving offsets.
struct WireLayout {
  std::size_t n_chunks = 0;
  std::size_t tail_len = 0;     // coords in the last chunk
  std::size_t full_record = 0;  // bytes of a full chunk's record
  std::size_t total = kWireHeaderSize;
};

WireLayout wire_layout(const Codec& codec, std::size_t d);

// Exact wire size of a d-coordinate row under `codec` — header, length
// prefixes and payloads. Data-independent (uplink accounting uses it as
// the per-client cost without touching gradient bytes).
std::size_t encoded_size(const Codec& codec, std::size_t d);

// Encodes `row` into `out` (resized to exactly encoded_size; capacity is
// reused round over round). `scratch` holds one CodecScratch per pool
// worker — pass the same instance every call for zero steady-state
// allocation; it is grown on demand.
void encode_into(const Codec& codec, std::span<const float> row,
                 std::vector<std::uint8_t>& out,
                 std::vector<CodecScratch>& scratch);

// Decodes `buf` straight into `row` (a GradientMatrix row of the
// expected dimension). On any status but kOk the row's contents are
// unspecified, but every access stayed in bounds.
DecodeStatus decode_into(const Codec& codec,
                         std::span<const std::uint8_t> buf,
                         std::span<float> row);

// Full acceptance check without materializing a single float: identical
// structural walk, checksum, and per-chunk codec validation, so
// validate(...) == kOk  <=>  decode_into(...) == kOk (and the statuses
// match on rejection too — the test suite pins this down over the
// adversarial corpus). The compressed-domain statistics pass
// (comm/stats.h) runs only on buffers this accepted, which is how
// hostile bytes are rejected before any filter sees a statistic.
DecodeStatus validate(const Codec& codec, std::span<const std::uint8_t> buf,
                      std::size_t d);

}  // namespace signguard::comm
