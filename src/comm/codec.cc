#include "comm/codec.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace signguard::comm {

namespace {

// Byte-level primitives. Multi-byte integers are explicit little-endian;
// float32 payloads are memcpy'd (the repo's golden traces already assume
// a little-endian host for their bit-level checksums).
inline void put_f32(std::uint8_t* p, float v) { std::memcpy(p, &v, 4); }
inline float get_f32(const std::uint8_t* p) {
  float v;
  std::memcpy(&v, p, 4);
  return v;
}
inline void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

// A finite float whose sign bit is clear: the canonical form of every
// stored per-chunk scale/anchor (mean |x| or max |x|). Anything else is
// a payload no legitimate encoder produces.
inline bool valid_scale(float s) {
  return std::isfinite(s) && !std::signbit(s);
}

// ---- none: the identity transport ----------------------------------------

class NoneCodec final : public Codec {
 public:
  using Codec::Codec;
  CodecKind kind() const override { return CodecKind::kNone; }
  const char* name() const override { return "none"; }

  std::size_t chunk_payload_size(std::size_t len) const override {
    return len * 4;
  }

  void encode_chunk(std::span<const float> in, std::uint8_t* out,
                    CodecScratch&) const override {
    std::memcpy(out, in.data(), in.size() * 4);
  }

  bool decode_chunk(std::span<const std::uint8_t> in,
                    std::span<float> out) const override {
    std::memcpy(out.data(), in.data(), out.size() * 4);
    // Even the identity transport refuses to deliver non-finite
    // coordinates: an accepted uplink always decodes to finite rows.
    // Exponent-field scan with an OR-accumulator (no early exit) so the
    // loop vectorizes.
    std::uint32_t bad = 0;
    for (const float v : out) {
      const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
      bad |= static_cast<std::uint32_t>((bits & 0x7f800000u) == 0x7f800000u);
    }
    return bad == 0;
  }

  bool validate_chunk(std::span<const std::uint8_t> in,
                      std::size_t len) const override {
    std::uint32_t bad = 0;
    for (std::size_t j = 0; j < len; ++j) {
      const std::uint32_t bits =
          std::bit_cast<std::uint32_t>(get_f32(in.data() + j * 4));
      bad |= static_cast<std::uint32_t>((bits & 0x7f800000u) == 0x7f800000u);
    }
    return bad == 0;
  }

  double chunk_norm2(std::span<const std::uint8_t> in, std::size_t len,
                     double acc) const override {
    for (std::size_t j = 0; j < len; ++j) {
      const double v = double(get_f32(in.data() + j * 4));
      acc += v * v;
    }
    return acc;
  }

  void chunk_sign_counts(std::span<const std::uint8_t> in, std::size_t,
                         const ChunkCoords& coords,
                         std::size_t counts[3]) const override {
    for (const std::uint32_t o : coords.offsets) {
      const float v = get_f32(in.data() + std::size_t{o} * 4);
      if (v > 0.0f)
        ++counts[0];
      else if (v < 0.0f)
        ++counts[2];
      else
        ++counts[1];
    }
  }
};

// ---- sign1: 1-bit signs + per-chunk mean-|x| scale ------------------------

class Sign1Codec final : public Codec {
 public:
  using Codec::Codec;
  CodecKind kind() const override { return CodecKind::kSign1; }
  const char* name() const override { return "sign1"; }

  std::size_t chunk_payload_size(std::size_t len) const override {
    return 4 + (len + 7) / 8;
  }

  void encode_chunk(std::span<const float> in, std::uint8_t* out,
                    CodecScratch&) const override {
    const std::size_t len = in.size();
    // Sequential double accumulation: deterministic, and exact enough
    // that re-encoding a decoded chunk (len copies of ±scale) recovers
    // the identical scale — len * scale is exact in double for
    // len <= kMaxChunk, and (len * scale) / len is exactly scale.
    double sum = 0.0;
    for (const float v : in) sum += std::fabs(v);
    const float scale = len > 0 ? static_cast<float>(sum / double(len)) : 0.0f;
    put_f32(out, scale);
    std::uint8_t* bits = out + 4;
    // Branchless sign harvest (the signs of a gradient row are
    // effectively random, so a per-coordinate branch would mispredict
    // half the time): bit = !signbit, straight from the float's bits.
    for (std::size_t base = 0; base < len; base += 8) {
      std::uint8_t byte = 0;
      const std::size_t end = std::min(len, base + 8);
      for (std::size_t j = base; j < end; ++j)
        byte |= static_cast<std::uint8_t>(
            (~(std::bit_cast<std::uint32_t>(in[j]) >> 31) & 1u)
            << (j - base));
      bits[base / 8] = byte;  // unused tail bits stay zero
    }
  }

  bool decode_chunk(std::span<const std::uint8_t> in,
                    std::span<float> out) const override {
    const float scale = get_f32(in.data());
    if (!valid_scale(scale)) return false;
    const std::uint8_t* bits = in.data() + 4;
    // Branchless two-entry select, eight coordinates per sign byte: the
    // wire-to-row hot path of the 1 GB/s single-thread decode guarantee.
    const float vals[2] = {-scale, scale};
    const std::size_t len = out.size();
    const std::size_t full = len & ~std::size_t{7};
    for (std::size_t j = 0; j < full; j += 8) {
      const std::uint8_t b = bits[j >> 3];
      out[j + 0] = vals[b & 1u];
      out[j + 1] = vals[(b >> 1) & 1u];
      out[j + 2] = vals[(b >> 2) & 1u];
      out[j + 3] = vals[(b >> 3) & 1u];
      out[j + 4] = vals[(b >> 4) & 1u];
      out[j + 5] = vals[(b >> 5) & 1u];
      out[j + 6] = vals[(b >> 6) & 1u];
      out[j + 7] = vals[(b >> 7) & 1u];
    }
    for (std::size_t j = full; j < len; ++j)
      out[j] = vals[(bits[j >> 3] >> (j & 7u)) & 1u];
    return true;
  }

  bool validate_chunk(std::span<const std::uint8_t> in,
                      std::size_t) const override {
    return valid_scale(get_f32(in.data()));
  }

  double chunk_norm2(std::span<const std::uint8_t> in, std::size_t len,
                     double acc) const override {
    // Every decoded coordinate is ±scale and IEEE multiplication gives
    // (-s)*(-s) the identical bits as s*s, so the decode-path chain
    // `acc += double(out[j]) * double(out[j])` degenerates to len
    // additions of one precomputed square. Zero payload-byte traffic:
    // the whole chunk's norm contribution comes from 4 scale bytes.
    const double s = double(get_f32(in.data()));
    const double q = s * s;
    for (std::size_t j = 0; j < len; ++j) acc += q;
    return acc;
  }

  void chunk_sign_counts(std::span<const std::uint8_t> in, std::size_t len,
                         const ChunkCoords& coords,
                         std::size_t counts[3]) const override {
    const std::size_t m = coords.offsets.size();
    const float scale = get_f32(in.data());
    if (!(scale > 0.0f)) {
      // valid_scale leaves exactly one non-positive scale: +0.0, which
      // decodes every coordinate to ±0.0f — all zeros to the census.
      counts[1] += m;
      return;
    }
    // Masked 64-bit popcount over the payload bits: bit 1 decodes to
    // +scale (positive), bit 0 to -scale (negative), so the sampled
    // positive count is popcount(payload & mask) and the rest of the
    // sample is negative. This is the wire path's hot loop — ~d/8 bytes
    // per chunk instead of 4d decoded plus the float gather.
    const std::uint8_t* bits = in.data() + 4;
    const std::uint8_t* mask = coords.mask.data();
    const std::size_t nbytes = (len + 7) / 8;
    std::size_t pos = 0;
    std::size_t i = 0;
    for (; i + 8 <= nbytes; i += 8) {
      std::uint64_t b, mk;
      std::memcpy(&b, bits + i, 8);
      std::memcpy(&mk, mask + i, 8);
      pos += static_cast<std::size_t>(std::popcount(b & mk));
    }
    for (; i < nbytes; ++i)
      pos += static_cast<std::size_t>(
          std::popcount(static_cast<unsigned>(bits[i] & mask[i])));
    counts[0] += pos;
    counts[2] += m - pos;
  }
};

// ---- int8: symmetric quantization on a power-of-two grid ------------------
//
// q = round-half-even(x * 2^-e), q in [-127, 127], decode = q * 2^e,
// with e chosen so max|x| lands in [64, 128) steps. A power-of-two step
// makes every decode EXACT float arithmetic (q has 7 bits; ldexp by a
// clamped exponent neither overflows nor loses denormal bits), which is
// what buys the transport contract its idempotence: re-encoding a
// decoded chunk re-derives the same exponent (q_max in [64, 127] pins
// frexp right back to e) and recovers every code exactly. An arbitrary
// scale max|x|/127 — let alone an affine offset — cannot make that
// round-trip bitwise once the scale's own rounding error grows (deep
// denormal chunks), so this codec trades at most one bit of resolution
// for a provable projection.

inline constexpr int kInt8MinExp = -149;  // 2^-149 = smallest denormal step
// Largest step a legitimate encoder can derive (maxabs < 2^128 gives
// e = E - 7 <= 121) — and the largest whose decode stays finite:
// 127 * 2^121 < FLT_MAX < 127 * 2^122.
inline constexpr int kInt8MaxExp = 121;

class Int8Codec final : public Codec {
 public:
  using Codec::Codec;
  CodecKind kind() const override { return CodecKind::kInt8; }
  const char* name() const override { return "int8"; }

  std::size_t chunk_payload_size(std::size_t len) const override {
    return 2 + len;
  }

  void encode_chunk(std::span<const float> in, std::uint8_t* out,
                    CodecScratch&) const override {
    float maxabs = 0.0f;
    for (const float v : in) maxabs = std::max(maxabs, std::fabs(v));
    int e = 0;
    if (!std::isfinite(maxabs)) {
      // A Byzantine-crafted row can carry ±inf/NaN; frexp's exponent is
      // unspecified for those, so pin the step deterministically (the
      // codes still clamp to ±127 and decode stays well-defined).
      e = kInt8MaxExp;
    } else if (maxabs > 0.0f) {
      int exp = 0;
      std::frexp(maxabs, &exp);  // maxabs = m * 2^exp, m in [0.5, 1)
      e = std::max(exp - 7, kInt8MinExp);
    }
    put_u16(out, static_cast<std::uint16_t>(static_cast<std::int16_t>(e)));
    std::uint8_t* codes = out + 2;
    // Hot path: x * 2^-e is one exact multiply whenever 2^-e is a normal
    // float (a power of two times a float is correctly rounded exactly
    // like ldexp). Only deep-denormal chunks (e < -126) take the ldexp
    // fallback. Default rounding mode (FE_TONEAREST) = round half to
    // even; nothing in this codebase ever changes it.
    if (e >= -126 && e <= 126) {
      const float inv_step = std::ldexp(1.0f, -e);
      for (std::size_t j = 0; j < in.size(); ++j) {
        float r = std::nearbyint(in[j] * inv_step);
        r = std::min(127.0f, std::max(-127.0f, r));
        codes[j] = static_cast<std::uint8_t>(
            static_cast<std::int8_t>(static_cast<int>(r)));
      }
    } else {
      for (std::size_t j = 0; j < in.size(); ++j) {
        float r = std::nearbyint(std::ldexp(in[j], -e));
        r = std::min(127.0f, std::max(-127.0f, r));
        codes[j] = static_cast<std::uint8_t>(
            static_cast<std::int8_t>(static_cast<int>(r)));
      }
    }
  }

  bool decode_chunk(std::span<const std::uint8_t> in,
                    std::span<float> out) const override {
    const int e = static_cast<std::int16_t>(get_u16(in.data()));
    if (e < kInt8MinExp || e > kInt8MaxExp) return false;
    const std::uint8_t* codes = in.data() + 2;
    // One exact ldexp per possible code byte, then the chunk is a pure
    // table gather; the 0x80 sentinel (-128, unreachable by encode) is
    // flagged with an OR-accumulator so the loop stays branchless.
    float table[256];
    for (int b = 0; b < 256; ++b)
      table[b] = std::ldexp(
          static_cast<float>(static_cast<std::int8_t>(b)), e);  // exact
    std::uint32_t bad = 0;
    for (std::size_t j = 0; j < out.size(); ++j) {
      const std::uint8_t c = codes[j];
      bad |= static_cast<std::uint32_t>(c == 0x80u);
      out[j] = table[c];
    }
    return bad == 0;
  }

  bool validate_chunk(std::span<const std::uint8_t> in,
                      std::size_t len) const override {
    const int e = static_cast<std::int16_t>(get_u16(in.data()));
    if (e < kInt8MinExp || e > kInt8MaxExp) return false;
    const std::uint8_t* codes = in.data() + 2;
    std::uint32_t bad = 0;
    for (std::size_t j = 0; j < len; ++j)
      bad |= static_cast<std::uint32_t>(codes[j] == 0x80u);
    return bad == 0;
  }

  double chunk_norm2(std::span<const std::uint8_t> in, std::size_t len,
                     double acc) const override {
    const int e = static_cast<std::int16_t>(get_u16(in.data()));
    const std::uint8_t* codes = in.data() + 2;
    // Squared decode table in double: q2[c] is bitwise
    // double(table_f32[c]) * double(table_f32[c]), the exact term the
    // decode-path norm chain adds for code c. The chunk then costs one
    // table gather per byte instead of a float materialization.
    double q2[256];
    for (int b = 0; b < 256; ++b) {
      const float f =
          std::ldexp(static_cast<float>(static_cast<std::int8_t>(b)), e);
      const double d = double(f);
      q2[b] = d * d;
    }
    for (std::size_t j = 0; j < len; ++j) acc += q2[codes[j]];
    return acc;
  }

  void chunk_sign_counts(std::span<const std::uint8_t> in, std::size_t,
                         const ChunkCoords& coords,
                         std::size_t counts[3]) const override {
    // Exact ldexp by a legal exponent never flushes a nonzero code to
    // zero (e >= -149 keeps even ±2^-149 representable), so the decoded
    // sign IS the code's sign.
    const std::uint8_t* codes = in.data() + 2;
    for (const std::uint32_t o : coords.offsets) {
      const auto c = static_cast<std::int8_t>(codes[o]);
      if (c > 0)
        ++counts[0];
      else if (c < 0)
        ++counts[2];
      else
        ++counts[1];
    }
  }
};

// ---- topk: magnitude sparsification, exact values + u16 index deltas ------

class TopKCodec final : public Codec {
 public:
  TopKCodec(std::size_t chunk, double k_fraction)
      : Codec(chunk), k_fraction_(k_fraction) {}
  CodecKind kind() const override { return CodecKind::kTopK; }
  const char* name() const override { return "topk"; }

  // Kept entries for a chunk of `len`: round(k_fraction * len), at least
  // one, never more than the chunk — and never more than the u16 count
  // field can carry (relevant only for the one legal shape chunk == 65536
  // with k_fraction ~ 1). Data-independent, so chunk sizes — and with
  // them every wire offset — are known before touching floats.
  std::size_t keep_count(std::size_t len) const {
    return topk_keep_count(k_fraction_, len);
  }

  std::size_t chunk_payload_size(std::size_t len) const override {
    return 2 + keep_count(len) * 6;
  }

  void encode_chunk(std::span<const float> in, std::uint8_t* out,
                    CodecScratch& scratch) const override {
    const std::size_t len = in.size();
    const std::size_t k = keep_count(len);
    auto& order = scratch.order;
    order.resize(len);
    for (std::size_t j = 0; j < len; ++j)
      order[j] = static_cast<std::uint32_t>(j);
    if (k < len) {
      // Total order (|v| desc, then v desc, then index asc): the
      // selected *set* is implementation-independent, and re-sorting by
      // index below makes the emitted bytes so too. Magnitude compares
      // on the absolute bit pattern — identical to |v| ordering for
      // every non-NaN float (IEEE magnitudes are bit-monotone) but also
      // total for NaN (a float NaN comparator breaks nth_element's
      // strict-weak-ordering precondition, and Byzantine-crafted rows
      // reach this path unvalidated; NaNs sort first, get stored, and
      // the decoder then rejects the uplink).
      const auto cmp = [&in](std::uint32_t a, std::uint32_t b) {
        const std::uint32_t ma =
            std::bit_cast<std::uint32_t>(in[a]) & 0x7fffffffu;
        const std::uint32_t mb =
            std::bit_cast<std::uint32_t>(in[b]) & 0x7fffffffu;
        if (ma != mb) return ma > mb;
        // Equal magnitude bits: ±x (x != 0) orders positive-first; ±0
        // stays *equivalent* (index decides — signed-zero idempotence
        // depends on it) and so does a same-payload NaN pair, whose
        // float compares would otherwise skip the index tie-break.
        if (ma <= 0x7f800000u && in[a] != in[b]) return in[a] > in[b];
        return a < b;
      };
      std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                       cmp);
    }
    std::sort(order.begin(), order.begin() + k);
    put_u16(out, static_cast<std::uint16_t>(k));
    std::uint8_t* values = out + 2;
    std::uint8_t* deltas = out + 2 + k * 4;
    std::uint32_t prev = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const std::uint32_t idx = order[j];
      put_f32(values + j * 4, in[idx]);
      put_u16(deltas + j * 2, static_cast<std::uint16_t>(idx - prev));
      prev = idx;
    }
  }

  bool decode_chunk(std::span<const std::uint8_t> in,
                    std::span<float> out) const override {
    const std::size_t len = out.size();
    const std::size_t k = keep_count(len);
    if (get_u16(in.data()) != k) return false;
    std::fill(out.begin(), out.end(), 0.0f);
    const std::uint8_t* values = in.data() + 2;
    const std::uint8_t* deltas = in.data() + 2 + k * 4;
    std::size_t idx = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t step = get_u16(deltas + j * 2);
      // First index is its delta from 0; every later delta must advance
      // (strictly increasing indices) and stay inside the chunk.
      if (j > 0 && step == 0) return false;
      idx += step;
      if (idx >= len) return false;
      const float v = get_f32(values + j * 4);
      if (!std::isfinite(v)) return false;
      out[idx] = v;
    }
    return true;
  }

  bool validate_chunk(std::span<const std::uint8_t> in,
                      std::size_t len) const override {
    // Same walk as decode_chunk minus the zero-fill and scatter.
    const std::size_t k = keep_count(len);
    if (get_u16(in.data()) != k) return false;
    const std::uint8_t* values = in.data() + 2;
    const std::uint8_t* deltas = in.data() + 2 + k * 4;
    std::size_t idx = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t step = get_u16(deltas + j * 2);
      if (j > 0 && step == 0) return false;
      idx += step;
      if (idx >= len) return false;
      if (!std::isfinite(get_f32(values + j * 4))) return false;
    }
    return true;
  }

  double chunk_norm2(std::span<const std::uint8_t> in, std::size_t len,
                     double acc) const override {
    // The decoded chunk is zero everywhere but the k stored entries, and
    // a +0.0 addend never changes the accumulation chain: acc starts at
    // +0.0 and only ever gains non-negative squares, so it is never -0.0
    // and x + 0.0 == x bitwise. Dropping the zero terms and walking the
    // stored values in index order therefore reproduces the full-chunk
    // chain exactly.
    const std::size_t k = keep_count(len);
    const std::uint8_t* values = in.data() + 2;
    for (std::size_t j = 0; j < k; ++j) {
      const double v = double(get_f32(values + j * 4));
      acc += v * v;
    }
    return acc;
  }

  void chunk_sign_counts(std::span<const std::uint8_t> in, std::size_t len,
                         const ChunkCoords& coords,
                         std::size_t counts[3]) const override {
    // Two-pointer merge of the sampled offsets (ascending by the
    // ChunkCoords contract) with the stored indices (strictly ascending
    // by the wire contract): a sampled coordinate that is not stored
    // decoded to 0.0f.
    const std::size_t k = keep_count(len);
    const std::uint8_t* values = in.data() + 2;
    const std::uint8_t* deltas = in.data() + 2 + k * 4;
    const auto& offs = coords.offsets;
    std::size_t oi = 0;
    std::size_t idx = 0;
    for (std::size_t j = 0; j < k && oi < offs.size(); ++j) {
      idx += get_u16(deltas + j * 2);
      while (oi < offs.size() && offs[oi] < idx) {
        ++counts[1];
        ++oi;
      }
      if (oi < offs.size() && offs[oi] == idx) {
        const float v = get_f32(values + j * 4);
        if (v > 0.0f)
          ++counts[0];
        else if (v < 0.0f)
          ++counts[2];
        else
          ++counts[1];
        ++oi;
      }
    }
    counts[1] += offs.size() - oi;
  }

 private:
  double k_fraction_;
};

}  // namespace

std::size_t topk_keep_count(double k_fraction, std::size_t len) {
  if (len == 0) return 0;
  const auto k = static_cast<std::size_t>(
      std::nearbyint(k_fraction * static_cast<double>(len)));
  return std::min({len, std::max<std::size_t>(1, k), std::size_t{0xffff}});
}

const char* codec_name(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNone:
      return "none";
    case CodecKind::kSign1:
      return "sign1";
    case CodecKind::kInt8:
      return "int8";
    case CodecKind::kTopK:
      return "topk";
  }
  return "unknown";
}

CodecKind codec_kind_from_name(const std::string& name) {
  if (name == "none") return CodecKind::kNone;
  if (name == "sign1") return CodecKind::kSign1;
  if (name == "int8") return CodecKind::kInt8;
  if (name == "topk") return CodecKind::kTopK;
  throw std::invalid_argument("unknown codec '" + name +
                              "' (known: none, sign1, int8, topk)");
}

std::unique_ptr<Codec> make_codec(const CompressionSpec& spec) {
  if (spec.chunk == 0 || spec.chunk > kMaxChunk)
    throw std::invalid_argument(
        "CompressionSpec: chunk must be in [1, " +
        std::to_string(kMaxChunk) + "], got " + std::to_string(spec.chunk));
  switch (spec.codec) {
    case CodecKind::kNone:
      return std::make_unique<NoneCodec>(spec.chunk);
    case CodecKind::kSign1:
      return std::make_unique<Sign1Codec>(spec.chunk);
    case CodecKind::kInt8:
      return std::make_unique<Int8Codec>(spec.chunk);
    case CodecKind::kTopK:
      if (!(spec.k_fraction > 0.0 && spec.k_fraction <= 1.0))
        throw std::invalid_argument(
            "CompressionSpec: topk k_fraction must be in (0, 1]");
      return std::make_unique<TopKCodec>(spec.chunk, spec.k_fraction);
  }
  throw std::invalid_argument("CompressionSpec: unknown codec id " +
                              std::to_string(int(spec.codec)));
}

}  // namespace signguard::comm
