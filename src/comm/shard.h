#pragma once
// Per-shard decode routing for the hierarchical aggregation tree: a
// shard aggregator receives the *ids* of its members and pulls exactly
// those uplinks out of the round's wire buffers, decoding (or merely
// validating, on the compressed-domain path) straight into a compacted
// per-shard matrix. The flat n x d round matrix is never materialized —
// at n = 65536 that buffer alone is what makes the flat path infeasible.
//
// Same trust model as comm/wire.h: every buffer is hostile until
// validated, failures come back as per-member DecodeStatus values (no
// exceptions on the decode path), and a rejected member's row is left
// zeroed so downstream kernels never read unspecified floats. Rows fan
// out over the pool into disjoint row ranges, so the decoded matrix is
// bitwise identical for any SIGNGUARD_THREADS.

#include <cstddef>
#include <span>
#include <vector>

#include "comm/wire.h"
#include "common/gradient_matrix.h"

namespace signguard::comm {

// Outcome of routing one shard's uplinks through the wire decoder:
// one status per shard member, in member (id) order.
struct ShardDecode {
  std::size_t rejected = 0;
  std::vector<DecodeStatus> status;
};

// Decodes uplinks[ids[i]] into row i of `out`, which is resized to
// ids.size() x d (allocation reused across shards). A member whose
// buffer fails validation keeps a zeroed row and its status records why.
// Precondition: every id indexes into `uplinks`.
ShardDecode decode_shard_into(
    const Codec& codec, std::span<const std::vector<std::uint8_t>> uplinks,
    std::span<const std::size_t> ids, std::size_t d,
    common::GradientMatrix& out);

// Validation-only variant for the wire path: the same statuses as
// decode_shard_into (the wire contract: validate == decode on every
// buffer) without materializing a single float.
ShardDecode validate_shard(
    const Codec& codec, std::span<const std::vector<std::uint8_t>> uplinks,
    std::span<const std::size_t> ids, std::size_t d);

}  // namespace signguard::comm
