#pragma once
// Compressed-domain statistics: SignGuard's filtering inputs computed
// straight from validated wire buffers, without decoding a single float.
// This is the server half of the wire path (SIGNGUARD_WIREPATH=wire):
//
//   uplinks --validate()--> wire_row_norms / wire_sign_stats
//          --> norm + sign-cluster filters --> decode ONLY the trusted
//          set into a compacted GradientMatrix --> weighted mean
//
// Per-codec statistic sources (the per-chunk hooks in comm/codec.h):
//   sign1  norms from the 4-byte per-chunk scales alone; sign counts as
//          a masked 64-bit popcount over the packed payload bits
//   int8   norms via a per-chunk 256-entry squared-decode table gather;
//          signs straight from the int8 codes (exact ldexp never flushes
//          a nonzero code to zero)
//   topk   norms/signs from the stored exact values + index deltas
//          (absent coordinates decoded to 0.0f)
//   none   the raw float payload, read in place
//
// Equivalence contract (tested bit-for-bit in tests/test_comm.cc and
// tests/test_signguard.cc): for every buffer validate() accepts,
// wire_row_norms equals vec::row_norms of the decoded matrix and
// wire_sign_stats equals sign_statistics of the decoded matrix over the
// same coordinate subset — bitwise, for any SIGNGUARD_THREADS. The
// filters therefore make identical admission decisions on either path.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/codec.h"
#include "comm/wire.h"
#include "common/gradient_stats.h"

namespace signguard::comm {

// Which backend the trainer's SignGuard aggregation uses when a codec is
// active. kWire runs the compressed-domain statistics pass above; kDecode
// is the decode-everything reference. Same two-backend discipline as
// vec::DistBackend (SIGNGUARD_DIST): identical results by contract, so
// the knob is a pure performance switch.
enum class WirePath { kWire, kDecode };

// Active backend: set_wire_path() override if any, else the
// SIGNGUARD_WIREPATH environment variable ("decode" selects the
// reference path), else kWire.
WirePath wire_path();
void set_wire_path(WirePath p);

// A round's sampled coordinate subset re-expressed in per-chunk form,
// built once and shared by every client's statistics pass: for each
// chunk, the in-chunk offsets (strictly ascending) plus the same subset
// as packed bits in the sign1 payload layout (comm/codec.h ChunkCoords).
class CoordMask {
 public:
  // `coords` are global coordinate indices in [0, d), distinct, in any
  // order (select_coordinates' sample order is fine — sign counts are
  // order-free).
  CoordMask(std::size_t d, std::size_t chunk,
            std::span<const std::size_t> coords);

  std::size_t n_coords() const { return n_coords_; }
  std::size_t n_chunks() const { return begin_.size() - 1; }

  ChunkCoords chunk_coords(std::size_t c) const {
    return {std::span<const std::uint32_t>(offsets_)
                .subspan(begin_[c], begin_[c + 1] - begin_[c]),
            std::span<const std::uint8_t>(mask_).subspan(
                mask_begin_[c], mask_begin_[c + 1] - mask_begin_[c])};
  }

 private:
  std::size_t n_coords_;
  std::vector<std::uint32_t> offsets_;     // in-chunk, ascending per chunk
  std::vector<std::size_t> begin_;         // offsets_ range per chunk
  std::vector<std::uint8_t> mask_;         // packed bits per chunk
  std::vector<std::size_t> mask_begin_;    // mask_ range per chunk
};

// One aggregation round's worth of uplinks, every buffer already
// accepted by comm::validate (the statistics hooks assume validated
// payloads). Non-owning views into the trainer's per-client buffers.
struct WireRound {
  const Codec* codec = nullptr;
  std::span<const std::vector<std::uint8_t>> uplinks;
  std::size_t d = 0;
};

// L2 norm of every (virtual) decoded row, straight from wire bytes.
// Bitwise equal to vec::row_norms of the decoded matrix; rows fan out
// over the common/parallel pool.
std::vector<double> wire_row_norms(const WireRound& wire);

// Sign statistics of every (virtual) decoded row over the mask's
// coordinate subset. Bitwise equal to sign_statistics(decoded, coords).
std::vector<SignStats> wire_sign_stats(const WireRound& wire,
                                       const CoordMask& mask);

}  // namespace signguard::comm
