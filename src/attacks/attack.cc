#include "attacks/attack.h"

namespace signguard::attacks {

AttackInput make_attack_input(std::span<const std::vector<float>> benign,
                              std::span<const std::vector<float>> byz_honest,
                              std::size_t n_total, std::size_t n_byzantine,
                              Rng* rng) {
  AttackInput in;
  in.benign_views.assign(benign.begin(), benign.end());
  in.byz_views.assign(byz_honest.begin(), byz_honest.end());
  in.ctx.benign_grads = in.benign_views;
  in.ctx.byz_honest_grads = in.byz_views;
  in.ctx.n_total = n_total;
  in.ctx.n_byzantine = n_byzantine;
  in.ctx.rng = rng;
  return in;
}

std::vector<std::vector<float>> NoAttack::craft(const AttackContext& ctx) {
  std::vector<std::vector<float>> out;
  out.reserve(ctx.byz_honest_grads.size());
  for (const GradientView g : ctx.byz_honest_grads)
    out.emplace_back(g.begin(), g.end());
  return out;
}

}  // namespace signguard::attacks
