#include "attacks/attack.h"

namespace signguard::attacks {

std::vector<std::vector<float>> NoAttack::craft(const AttackContext& ctx) {
  return {ctx.byz_honest_grads.begin(), ctx.byz_honest_grads.end()};
}

}  // namespace signguard::attacks
