#pragma once
// Codec-aware wire-crafting attacks: malicious payloads engineered
// against the frozen wire format (comm/codec.h) rather than against the
// aggregation rule. PR 5/6's adversarial-decode corpus proves the server
// rejects *hostile* bytes; the attackers here emit *clever* bytes —
// every crafted gradient is a bitwise fixed point of its codec
// (encode(craft) decodes back to exactly craft, DecodeStatus::kOk,
// finite everywhere), so no transport check can flag it, yet the decoded
// floats are shaped to maximize post-decode damage:
//
//   sign1  scale inflation — all coordinates of a chunk sit at +/-A with
//          A = inflate * mean|inner chunk|, so the per-chunk scale the
//          encoder derives (mean |x|) is exactly the inflated A and every
//          coordinate lands at full amplitude while keeping the inner
//          attack's sign pattern (which is all sign1 transports anyway).
//   int8   grid-edge placement — per-chunk amplitude snapped to
//          127 * 2^e (the largest code on the quantizer's power-of-two
//          grid), so every coordinate decodes to the extreme quantization
//          level with zero rounding loss.
//   topk   index-delta concentration — exactly k = topk_keep_count()
//          leading coordinates per chunk carry +/-A (minimal u16 index
//          deltas), the rest are exactly +0.0f, making the crafted chunk
//          the encoder's own fixed point: the sparsifier keeps precisely
//          the attacker's spikes.
//
// The crafted rows are injected through the same uplink encode path as
// benign traffic (fl/trainer.cc byzantine transport) — there is no side
// channel to firewall.

#include <memory>

#include "attacks/attack.h"
#include "comm/codec.h"

namespace signguard::attacks {

// One crafted row for the given codec: the per-chunk fixed-point snap of
// `inner` described above, with per-chunk amplitude
// A = inflate * mean|inner chunk| (fallback 1.0 when the chunk mean is
// zero or non-finite). Exposed for the adversarial-wire test corpus.
std::vector<float> wirecraft_row(const comm::CompressionSpec& spec,
                                 GradientView inner, double inflate);

class WirecraftAttack : public Attack {
 public:
  // Throws std::invalid_argument on a null inner attack, a degenerate
  // spec (same contract as comm::make_codec), or a non-positive /
  // non-finite inflate.
  WirecraftAttack(std::unique_ptr<Attack> inner, comm::CompressionSpec spec,
                  double inflate = 8.0);

  void begin_round(std::size_t round, Rng& rng) override;
  bool flips_labels() const override;
  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  void observe_round(const RoundFeedback& fb) override;
  std::string name() const override;

  void serialize_state(common::ByteWriter& w) const override;
  void restore_state(common::ByteReader& r) override;

  const comm::CompressionSpec& spec() const { return spec_; }

 private:
  std::unique_ptr<Attack> inner_;
  comm::CompressionSpec spec_;
  double inflate_;
};

}  // namespace signguard::attacks
