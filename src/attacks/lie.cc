#include "attacks/lie.h"

#include <cmath>
#include <stdexcept>

#include "common/vecops.h"

namespace signguard::attacks {

double standard_normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double LieAttack::z_max(std::size_t n, std::size_t m) {
  // Eq. (2) divides by n - m; an all-byzantine cohort has no supremum.
  if (n <= m)
    throw std::invalid_argument(
        "LieAttack::z_max: requires n > m (some benign clients)");
  const double s =
      (double(n) - std::floor(double(n) / 2.0 + 1.0)) / double(n - m);
  // Largest z with Phi(z) < s  ==  Phi^{-1}(s), found by bisection. The
  // supremum itself satisfies Phi(z) == s; we return it (standard usage).
  if (s <= 0.0) return 0.0;
  if (s >= 1.0) return 6.0;
  double lo = -6.0, hi = 6.0;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (standard_normal_cdf(mid) < s)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

std::vector<float> LieAttack::craft_vector(
    std::span<const GradientView> benign_grads, double z) {
  if (benign_grads.empty())
    throw std::invalid_argument(
        "LieAttack::craft_vector: benign set is empty — Eq. (1) has no "
        "mean/stddev to perturb");
  const auto moments = vec::coordinate_moments(benign_grads);
  std::vector<float> g(moments.mean.size());
  for (std::size_t j = 0; j < g.size(); ++j)
    g[j] = static_cast<float>(double(moments.mean[j]) -
                              z * double(moments.stddev[j]));
  return g;
}

std::vector<float> LieAttack::craft_vector(
    std::span<const std::vector<float>> benign_grads, double z) {
  const std::vector<GradientView> views(benign_grads.begin(),
                                        benign_grads.end());
  return craft_vector(std::span<const GradientView>(views), z);
}

std::vector<std::vector<float>> LieAttack::craft(const AttackContext& ctx) {
  if (ctx.n_byzantine == 0) return {};
  const double z =
      z_ > 0.0 ? z_ : z_max(ctx.n_total, ctx.n_byzantine);
  const auto gm = craft_vector(ctx.benign_grads, z);
  return std::vector<std::vector<float>>(ctx.n_byzantine, gm);
}

}  // namespace signguard::attacks
