#pragma once
// Feedback-driven adaptive adversaries (the regime Shejwalkar &
// Houmansadr's Min-Max/Min-Sum formalize, pushed one step further): the
// attacker re-optimizes against the deployed defense every round using
// the RoundFeedback channel (attack.h) the trainer feeds back after
// aggregation.
//
// AdaptiveAttack wraps any inner attack and rescales its deviation from
// the benign average by a per-round gain, then steers that gain from
// feedback:
//   * selection-reporting rules (Krum/Bulyan/DnC/SignGuard) leak which
//     updates were admitted — the attacker bisects the detection
//     boundary: admitted rounds raise the known-safe gain (lo), rejected
//     rounds lower the known-caught gain (hi), and the probe converges
//     geometrically to the largest amplitude the filter still admits.
//   * coordinate-wise rules (Mean/TrMean/Median) report no selection —
//     the attacker hill-climbs on realized damage instead, measured as
//     the projection of the broadcast aggregate onto its own deviation
//     direction.
//
// ChaosColludeAttack times the collusion: a stateless keyed stream in
// (seed, round) draws a time-varying colluding fraction, and feedback
// that a round degraded (quorum fallback / skip — PR 8's chaos fallback
// chain) triggers a full-collusion burst for the next few rounds, when
// the surviving cohort is smallest and the Byzantine fraction among
// survivors is highest.
//
// Determinism: craft() and observe_round() are pure functions of
// (inner attack, feedback history, keyed streams) — no wall clock, no
// ambient RNG — and every cross-round variable is carried by
// serialize_state, so kill+resume and SIGNGUARD_THREADS changes replay
// the whole feedback loop bitwise.

#include <memory>

#include "attacks/attack.h"

namespace signguard::attacks {

struct AdaptiveOptions {
  double initial_gain = 1.0;  // gain on round 0 (1.0 = the inner attack)
  double growth = 2.0;        // escalation factor while unbounded above
  double gain_cap = 1e4;      // hard amplitude ceiling for the search
  // An admitted round means at least this fraction of the Byzantine
  // updates made the trusted set.
  double admit_fraction = 0.5;
  // Bisection stops (and the gain pins to the known-admitted bound) once
  // hi - lo <= tolerance * hi.
  double tolerance = 0.1;
  // Once converged, re-probe the rejection bound every this many
  // exploit rounds: a boundary that loosened (e.g. the defense relaxes
  // as benign variance grows) is re-discovered and the escalation
  // reopens upward. 0 disables probing; the converged gain then tracks
  // only downward moves.
  std::size_t probe_every = 8;
};

class AdaptiveAttack : public Attack {
 public:
  // Throws std::invalid_argument on a null inner attack or degenerate
  // options (non-positive initial_gain/gain_cap, growth <= 1,
  // admit_fraction outside [0, 1], tolerance outside (0, 1)).
  explicit AdaptiveAttack(std::unique_ptr<Attack> inner,
                          AdaptiveOptions opts = {});

  void begin_round(std::size_t round, Rng& rng) override;
  bool flips_labels() const override;
  // Throws std::invalid_argument when n_byzantine > 0 with an empty
  // benign set — the deviation has no anchor.
  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  void observe_round(const RoundFeedback& fb) override;
  std::string name() const override;

  void serialize_state(common::ByteWriter& w) const override;
  void restore_state(common::ByteReader& r) override;

  // Exposed for tests: the amplitude the next craft() will use, the
  // bracket the bisection has established, and whether it has settled.
  double gain() const { return gain_; }
  double gain_lo() const { return lo_; }
  double gain_hi() const { return hi_; }
  bool converged() const { return converged_; }

 private:
  std::unique_ptr<Attack> inner_;
  AdaptiveOptions opts_;

  // --- cross-round search state (all checkpointed) ---
  double gain_ = 1.0;       // amplitude for the next craft
  double lo_ = 0.0;         // largest gain known to be admitted
  double hi_ = 0.0;         // smallest gain known to be rejected
  bool have_hi_ = false;    // hi_ is meaningful
  bool converged_ = false;  // bracket within tolerance; gain pinned to lo
  // Damage hill-climb state for non-selecting rules.
  double last_proj_ = 0.0;        // realized damage on the previous round
  bool have_proj_ = false;
  bool climbing_up_ = true;
  // Exploit rounds since the last upward probe of hi (converged only).
  std::size_t since_probe_ = 0;
  // Deviation direction of the last craft (mean inner row - benign avg),
  // unnormalized; the damage probe projects the aggregate onto it.
  std::vector<float> last_dir_;
  bool crafted_this_round_ = false;
};

class ChaosColludeAttack : public Attack {
 public:
  // base_fraction: mean colluding fraction outside bursts, in [0, 1].
  // jitter: the per-round fraction is base +/- uniform(jitter), drawn
  //   from the stateless stream (seed, round); clamped to [0, 1].
  // burst_rounds: rounds of full collusion after a degraded round.
  // Throws std::invalid_argument on a null inner, base_fraction or
  // jitter outside [0, 1], or NaN anywhere.
  ChaosColludeAttack(std::unique_ptr<Attack> inner, std::uint64_t seed,
                     double base_fraction = 0.5, double jitter = 0.25,
                     std::size_t burst_rounds = 3);

  void begin_round(std::size_t round, Rng& rng) override;
  bool flips_labels() const override;
  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  void observe_round(const RoundFeedback& fb) override;
  std::string name() const override;

  void serialize_state(common::ByteWriter& w) const override;
  void restore_state(common::ByteReader& r) override;

  // Exposed for tests.
  std::size_t burst_left() const { return burst_left_; }
  double fraction_for_round(std::size_t round) const;

 private:
  std::unique_ptr<Attack> inner_;
  std::uint64_t seed_;
  double base_fraction_;
  double jitter_;
  std::size_t burst_rounds_;
  std::size_t burst_left_ = 0;  // checkpointed
};

// Serialization helpers shared by the wrapper attacks: a nested attack's
// state travels as one length-prefixed blob so the wrapper's own fields
// and the inner state stay independently versioned.
void write_nested_state(common::ByteWriter& w, const Attack& inner);
void read_nested_state(common::ByteReader& r, Attack& inner);

}  // namespace signguard::attacks
