#pragma once
// "A Little Is Enough" attack (Baruch et al., NeurIPS'19), paper Eq. (1):
//   (g_m)_j = mu_j - z * sigma_j
// where mu/sigma are the coordinate-wise mean and standard deviation of the
// benign gradients. The attack factor z is either fixed (the paper uses
// z = 0.3 in its default setting) or derived from the client counts via the
// cumulative-normal rule of Eq. (2).

#include "attacks/attack.h"

namespace signguard::attacks {

class LieAttack : public Attack {
 public:
  // z > 0: fixed attack factor. z <= 0: use z_max(n, m) from Eq. (2).
  explicit LieAttack(double z = 0.3) : z_(z) {}

  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "LIE"; }

  // The malicious vector itself (all m Byzantine clients send a copy).
  // Exposed so ByzMean can embed a LIE vector and Fig. 2 can analyze it.
  // The view overload is the primary; the vector-of-vectors one adapts.
  static std::vector<float> craft_vector(
      std::span<const GradientView> benign_grads, double z);
  static std::vector<float> craft_vector(
      std::span<const std::vector<float>> benign_grads, double z);

  // Eq. (2): largest z with Phi(z) < (n - floor(n/2 + 1)) / (n - m).
  static double z_max(std::size_t n, std::size_t m);

  double z() const { return z_; }

 private:
  double z_;
};

// Standard normal CDF, shared with tests.
double standard_normal_cdf(double z);

}  // namespace signguard::attacks
