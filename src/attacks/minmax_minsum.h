#pragma once
// Min-Max and Min-Sum attacks (Shejwalkar & Houmansadr, NDSS'21), paper
// Eqs. (13)-(15): the malicious gradient is a scaled perturbation of the
// benign average,
//   g_m = avg(benign) + gamma * grad_p,
// with gamma maximized subject to the malicious gradient remaining inside
// the benign "clique":
//   Min-Max: max_i ||g_m - g_i||   <= max_{i,j} ||g_i - g_j||
//   Min-Sum: sum_i ||g_m - g_i||^2 <= max_i sum_j ||g_i - g_j||^2
// The default perturbation is the inverse coordinate-wise standard
// deviation, grad_p = -std(benign), as in the paper's §V-B. All Byzantine
// clients send the same vector.

#include <functional>

#include "attacks/attack.h"

namespace signguard::attacks {

enum class Perturbation {
  kInverseStd,   // -std(benign)           (paper default)
  kInverseUnit,  // -avg / ||avg||         (unit vector)
  kInverseSign,  // -sign(avg)
};

class MinMaxAttack : public Attack {
 public:
  explicit MinMaxAttack(Perturbation p = Perturbation::kInverseStd)
      : perturbation_(p) {}

  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "MinMax"; }

  // Exposed for testing: the gamma chosen on the last craft() call.
  double last_gamma() const { return last_gamma_; }

 private:
  Perturbation perturbation_;
  double last_gamma_ = 0.0;
};

class MinSumAttack : public Attack {
 public:
  explicit MinSumAttack(Perturbation p = Perturbation::kInverseStd)
      : perturbation_(p) {}

  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "MinSum"; }

  double last_gamma() const { return last_gamma_; }

 private:
  Perturbation perturbation_;
  double last_gamma_ = 0.0;
};

// Shared helpers (used by both attacks and their tests). The view
// overload is the primary; the vector-of-vectors one adapts.
std::vector<float> make_perturbation(std::span<const GradientView> benign,
                                     Perturbation p);
std::vector<float> make_perturbation(
    std::span<const std::vector<float>> benign, Perturbation p);

// Largest gamma in [0, gamma_cap] such that feasible(gamma) holds, found by
// bisection; assumes feasible(0) and monotone infeasibility in gamma.
double max_feasible_gamma(const std::function<bool(double)>& feasible,
                          double gamma_cap = 100.0);

}  // namespace signguard::attacks
