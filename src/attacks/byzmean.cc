#include "attacks/byzmean.h"

#include <cmath>
#include <stdexcept>

#include "attacks/lie.h"
#include "common/vecops.h"

namespace signguard::attacks {

ByzMeanAttack::ByzMeanAttack(std::unique_ptr<Attack> inner,
                             double m1_fraction)
    : inner_(inner ? std::move(inner) : std::make_unique<LieAttack>(0.3)),
      m1_fraction_(m1_fraction) {
  // NaN fails both comparisons, so it is rejected here too.
  if (!(m1_fraction_ >= 0.0) || !(m1_fraction_ <= 1.0))
    throw std::invalid_argument(
        "ByzMeanAttack: m1_fraction must be in [0, 1]");
}

void ByzMeanAttack::begin_round(std::size_t round, Rng& rng) {
  inner_->begin_round(round, rng);
}

std::vector<std::vector<float>> ByzMeanAttack::craft(
    const AttackContext& ctx) {
  const std::size_t m = ctx.n_byzantine;
  const std::size_t n = ctx.n_total;
  if (m == 0) return {};
  // Eq. (8) steers the mean of all n gradients relative to the benign
  // sum; with no benign gradients the construction (and the inner LIE
  // vector) is undefined.
  if (ctx.benign_grads.empty())
    throw std::invalid_argument(
        "ByzMeanAttack: craft with no benign gradients");
  // Eq. (8) needs both groups non-empty (m >= 2); with a single Byzantine
  // client the hybrid degenerates to the inner attack alone.
  if (m == 1) return inner_->craft(ctx);
  std::size_t m1 = static_cast<std::size_t>(
      std::floor(m1_fraction_ * double(m)));
  m1 = std::min(std::max<std::size_t>(m1, 1), m - 1);
  const std::size_t m2 = m - m1;

  // g_m1 from the inner attack (one representative vector).
  AttackContext inner_ctx = ctx;
  inner_ctx.n_byzantine = m1;
  inner_ctx.byz_honest_grads = ctx.byz_honest_grads.subspan(0, m1);
  auto inner_out = inner_->craft(inner_ctx);
  if (inner_out.empty())
    throw std::logic_error(
        "ByzMeanAttack: inner attack produced no gradient for group 1");
  const std::vector<float>& gm1 = inner_out.front();

  // g_m2 per Eq. (8): ((n - m1) * g_m1 - sum(benign)) / m2.
  std::vector<float> gm2(gm1.size(), 0.0f);
  for (const auto& g : ctx.benign_grads) vec::axpy(-1.0, g, gm2);
  vec::axpy(double(n - m1), gm1, gm2);
  vec::scale(gm2, 1.0 / double(m2));

  std::vector<std::vector<float>> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m1; ++i) out.push_back(gm1);
  for (std::size_t i = 0; i < m2; ++i) out.push_back(gm2);
  return out;
}

}  // namespace signguard::attacks
