#pragma once
// Time-varying attack strategy (paper §VI-A, Fig. 5): the adversary
// switches attack randomly at every epoch, including rounds of behaving
// honestly. Owns a pool of sub-attacks and delegates to the one active in
// the current epoch.

#include <memory>
#include <vector>

#include "attacks/attack.h"

namespace signguard::attacks {

class TimeVaryingAttack : public Attack {
 public:
  // Default pool: NoAttack, Random, SignFlip, LIE, ByzMean, MinMax, MinSum.
  TimeVaryingAttack(std::size_t rounds_per_epoch, std::uint64_t seed);
  // Throws std::invalid_argument when `pool` is empty or holds a null
  // attack — there would be nothing to delegate to.
  TimeVaryingAttack(std::vector<std::unique_ptr<Attack>> pool,
                    std::size_t rounds_per_epoch, std::uint64_t seed);

  void begin_round(std::size_t round, Rng& rng) override;
  // flips_labels/craft/current delegate to the epoch's sub-attack and
  // throw std::logic_error before the first begin_round — the protocol
  // in attack.h starts every round with begin_round, and anything
  // earlier has no defined active attack.
  bool flips_labels() const override;
  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "TimeVarying"; }

  // Active sub-attack name (after begin_round), for logging.
  std::string current() const;

  // Cross-round state: the epoch selector's RNG cursor and the active
  // epoch/sub-attack (the pool's sub-attacks are memoryless, see
  // attack.h). Without this a resumed run would re-roll the attack
  // schedule from scratch.
  void serialize_state(common::ByteWriter& w) const override;
  void restore_state(common::ByteReader& r) override;

 private:
  // The epoch's sub-attack; throws std::logic_error pre-begin_round.
  Attack& active() const;

  std::vector<std::unique_ptr<Attack>> pool_;
  std::size_t rounds_per_epoch_;
  Rng selector_;
  std::size_t current_epoch_ = SIZE_MAX;
  std::size_t current_idx_ = 0;
};

}  // namespace signguard::attacks
