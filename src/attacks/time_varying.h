#pragma once
// Time-varying attack strategy (paper §VI-A, Fig. 5): the adversary
// switches attack randomly at every epoch, including rounds of behaving
// honestly. Owns a pool of sub-attacks and delegates to the one active in
// the current epoch.

#include <memory>
#include <vector>

#include "attacks/attack.h"

namespace signguard::attacks {

class TimeVaryingAttack : public Attack {
 public:
  // Default pool: NoAttack, Random, SignFlip, LIE, ByzMean, MinMax, MinSum.
  TimeVaryingAttack(std::size_t rounds_per_epoch, std::uint64_t seed);
  TimeVaryingAttack(std::vector<std::unique_ptr<Attack>> pool,
                    std::size_t rounds_per_epoch, std::uint64_t seed);

  void begin_round(std::size_t round, Rng& rng) override;
  bool flips_labels() const override;
  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "TimeVarying"; }

  // Active sub-attack name (after begin_round), for logging.
  std::string current() const;

 private:
  std::vector<std::unique_ptr<Attack>> pool_;
  std::size_t rounds_per_epoch_;
  Rng selector_;
  std::size_t current_epoch_ = SIZE_MAX;
  std::size_t current_idx_ = 0;
};

}  // namespace signguard::attacks
