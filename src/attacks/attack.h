#pragma once
// Model-poisoning attack interface (paper §IV-A threat model): an attacker
// controls the m Byzantine clients, sees every benign gradient and the
// global model, and may send arbitrary colluding gradient messages.
//
// Protocol per round (driven by fl::Trainer):
//   1. begin_round(round, rng)      — attack picks per-round state
//   2. flips_labels()               — data-poisoning attacks make Byzantine
//                                     clients train on flipped labels
//   3. craft(ctx)                   — returns the m malicious gradients
//
// ctx.byz_honest_grads holds what the Byzantine clients would send if they
// behaved (computed on flipped labels when flips_labels() is true); attacks
// like sign-flip and noise perturb these, while omniscient attacks (LIE,
// ByzMean, Min-Max/Min-Sum) work from ctx.benign_grads.
//
// Gradients arrive as borrowed row views (GradientView), which in the
// trainer alias rows of the round's flat GradientMatrix — the attacker
// observes the real buffers, no per-round copies. Legacy
// vector-of-vectors call sites adapt through make_attack_input().

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serial.h"

namespace signguard::attacks {

// A borrowed, read-only client gradient (usually a GradientMatrix row).
using GradientView = std::span<const float>;

// Per-round feedback the trainer hands back to the attack after
// aggregation — the adaptive adversary's observation channel. The threat
// model behind each field: colluding clients see the broadcast global
// update (`aggregate`), know which of their own updates made the trusted
// set when the rule publishes one (selection is observable through the
// update's effect), and share round metadata. Nothing here exposes
// honest clients' private data beyond what §IV-A already grants the
// omniscient attacker.
//
// `aggregate` borrows the trainer's round buffer and is only valid for
// the duration of the observe_round() call.
struct RoundFeedback {
  std::size_t round = 0;
  std::size_t participants = 0;        // updates that reached the GAR
  std::size_t byzantine = 0;           // Byzantine updates among them
  // Trusted-set feedback, meaningful only when has_selection: the rule
  // reported a selection this round (Krum/Bulyan/DnC/SignGuard on a
  // normally-aggregated round). Coordinate-wise rules leave it false.
  bool has_selection = false;
  std::size_t selected = 0;            // trusted-set size
  std::size_t selected_byzantine = 0;  // Byzantine updates admitted
  std::size_t decode_rejects = 0;      // uplinks the wire refused
  bool skipped = false;                // no aggregate applied this round
  // The round left the normal path (any RoundOutcome other than
  // kProceed): a quorum fallback, a quorum skip, or a no-honest skip.
  // The chaos-colluding scheduler keys its bursts off this.
  bool degraded = false;
  std::span<const float> aggregate;    // post-GAR, pre-momentum; may be empty
};

struct AttackContext {
  std::span<const GradientView> benign_grads;
  std::span<const GradientView> byz_honest_grads;
  std::size_t n_total = 0;      // n  (benign + Byzantine)
  std::size_t n_byzantine = 0;  // m == byz_honest_grads.size()
  std::size_t round = 0;
  Rng* rng = nullptr;
};

// Owns the view arrays an AttackContext points into; the adapter for
// legacy vector-of-vectors call sites (tests, examples). The context
// stays valid for the holder's lifetime: moving is fine (the spans
// reference heap buffers that moves preserve), but copying is deleted —
// a copy's ctx would silently alias the source's view arrays.
struct AttackInput {
  AttackInput() = default;
  AttackInput(AttackInput&&) = default;
  AttackInput& operator=(AttackInput&&) = default;
  AttackInput(const AttackInput&) = delete;
  AttackInput& operator=(const AttackInput&) = delete;

  std::vector<GradientView> benign_views;
  std::vector<GradientView> byz_views;
  AttackContext ctx;
};

AttackInput make_attack_input(std::span<const std::vector<float>> benign,
                              std::span<const std::vector<float>> byz_honest,
                              std::size_t n_total, std::size_t n_byzantine,
                              Rng* rng);

class Attack {
 public:
  virtual ~Attack() = default;

  virtual void begin_round(std::size_t /*round*/, Rng& /*rng*/) {}
  virtual bool flips_labels() const { return false; }
  virtual std::vector<std::vector<float>> craft(const AttackContext& ctx) = 0;
  virtual std::string name() const = 0;

  // Called by the trainer after every round — including skipped and
  // degraded ones — with what the colluding clients could observe.
  // Static attacks ignore it; adaptive attacks (attacks/adaptive.h) close
  // their feedback loop here. Any state mutated here must be covered by
  // serialize_state so kill+resume replays identically.
  virtual void observe_round(const RoundFeedback& /*fb*/) {}

  // Cross-round state snapshot/restore for crash-consistent checkpoints
  // (fl/checkpoint.h). Every in-tree attack except TimeVaryingAttack is
  // memoryless given (round, rng) — all per-round randomness flows
  // through the trainer's attack_rng, whose cursor the checkpoint already
  // carries — so the empty default is correct for them. An attack that
  // keeps its own cross-round state (TimeVarying's epoch selector) must
  // override both.
  virtual void serialize_state(common::ByteWriter& /*w*/) const {}
  virtual void restore_state(common::ByteReader& /*r*/) {}
};

// Byzantine clients behave honestly (the paper's "No Attack" column).
class NoAttack : public Attack {
 public:
  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "NoAttack"; }
};

}  // namespace signguard::attacks
