#pragma once
// Model-poisoning attack interface (paper §IV-A threat model): an attacker
// controls the m Byzantine clients, sees every benign gradient and the
// global model, and may send arbitrary colluding gradient messages.
//
// Protocol per round (driven by fl::Trainer):
//   1. begin_round(round, rng)      — attack picks per-round state
//   2. flips_labels()               — data-poisoning attacks make Byzantine
//                                     clients train on flipped labels
//   3. craft(ctx)                   — returns the m malicious gradients
//
// ctx.byz_honest_grads holds what the Byzantine clients would send if they
// behaved (computed on flipped labels when flips_labels() is true); attacks
// like sign-flip and noise perturb these, while omniscient attacks (LIE,
// ByzMean, Min-Max/Min-Sum) work from ctx.benign_grads.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace signguard::attacks {

struct AttackContext {
  std::span<const std::vector<float>> benign_grads;
  std::span<const std::vector<float>> byz_honest_grads;
  std::size_t n_total = 0;      // n  (benign + Byzantine)
  std::size_t n_byzantine = 0;  // m == byz_honest_grads.size()
  std::size_t round = 0;
  Rng* rng = nullptr;
};

class Attack {
 public:
  virtual ~Attack() = default;

  virtual void begin_round(std::size_t /*round*/, Rng& /*rng*/) {}
  virtual bool flips_labels() const { return false; }
  virtual std::vector<std::vector<float>> craft(const AttackContext& ctx) = 0;
  virtual std::string name() const = 0;
};

// Byzantine clients behave honestly (the paper's "No Attack" column).
class NoAttack : public Attack {
 public:
  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "NoAttack"; }
};

}  // namespace signguard::attacks
