#pragma once
// Model-poisoning attack interface (paper §IV-A threat model): an attacker
// controls the m Byzantine clients, sees every benign gradient and the
// global model, and may send arbitrary colluding gradient messages.
//
// Protocol per round (driven by fl::Trainer):
//   1. begin_round(round, rng)      — attack picks per-round state
//   2. flips_labels()               — data-poisoning attacks make Byzantine
//                                     clients train on flipped labels
//   3. craft(ctx)                   — returns the m malicious gradients
//
// ctx.byz_honest_grads holds what the Byzantine clients would send if they
// behaved (computed on flipped labels when flips_labels() is true); attacks
// like sign-flip and noise perturb these, while omniscient attacks (LIE,
// ByzMean, Min-Max/Min-Sum) work from ctx.benign_grads.
//
// Gradients arrive as borrowed row views (GradientView), which in the
// trainer alias rows of the round's flat GradientMatrix — the attacker
// observes the real buffers, no per-round copies. Legacy
// vector-of-vectors call sites adapt through make_attack_input().

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serial.h"

namespace signguard::attacks {

// A borrowed, read-only client gradient (usually a GradientMatrix row).
using GradientView = std::span<const float>;

struct AttackContext {
  std::span<const GradientView> benign_grads;
  std::span<const GradientView> byz_honest_grads;
  std::size_t n_total = 0;      // n  (benign + Byzantine)
  std::size_t n_byzantine = 0;  // m == byz_honest_grads.size()
  std::size_t round = 0;
  Rng* rng = nullptr;
};

// Owns the view arrays an AttackContext points into; the adapter for
// legacy vector-of-vectors call sites (tests, examples). The context
// stays valid for the holder's lifetime: moving is fine (the spans
// reference heap buffers that moves preserve), but copying is deleted —
// a copy's ctx would silently alias the source's view arrays.
struct AttackInput {
  AttackInput() = default;
  AttackInput(AttackInput&&) = default;
  AttackInput& operator=(AttackInput&&) = default;
  AttackInput(const AttackInput&) = delete;
  AttackInput& operator=(const AttackInput&) = delete;

  std::vector<GradientView> benign_views;
  std::vector<GradientView> byz_views;
  AttackContext ctx;
};

AttackInput make_attack_input(std::span<const std::vector<float>> benign,
                              std::span<const std::vector<float>> byz_honest,
                              std::size_t n_total, std::size_t n_byzantine,
                              Rng* rng);

class Attack {
 public:
  virtual ~Attack() = default;

  virtual void begin_round(std::size_t /*round*/, Rng& /*rng*/) {}
  virtual bool flips_labels() const { return false; }
  virtual std::vector<std::vector<float>> craft(const AttackContext& ctx) = 0;
  virtual std::string name() const = 0;

  // Cross-round state snapshot/restore for crash-consistent checkpoints
  // (fl/checkpoint.h). Every in-tree attack except TimeVaryingAttack is
  // memoryless given (round, rng) — all per-round randomness flows
  // through the trainer's attack_rng, whose cursor the checkpoint already
  // carries — so the empty default is correct for them. An attack that
  // keeps its own cross-round state (TimeVarying's epoch selector) must
  // override both.
  virtual void serialize_state(common::ByteWriter& /*w*/) const {}
  virtual void restore_state(common::ByteReader& /*r*/) {}
};

// Byzantine clients behave honestly (the paper's "No Attack" column).
class NoAttack : public Attack {
 public:
  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "NoAttack"; }
};

}  // namespace signguard::attacks
