#include "attacks/wirecraft.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "attacks/adaptive.h"  // write_nested_state / read_nested_state

namespace signguard::attacks {

namespace {

// Per-chunk crafting amplitude: inflate * mean|x| over the chunk in the
// encoder's own sequential-double order, snapped to float. Falls back to
// 1.0 when the chunk carries no usable magnitude — the crafted chunk
// must never be all-zero (it would vanish under top-k) or non-finite
// (the wire would reject it).
float craft_amplitude(std::span<const float> chunk, double inflate) {
  double acc = 0.0;
  for (const float v : chunk)
    if (std::isfinite(v)) acc += std::fabs(double(v));
  const double a = inflate * (acc / double(chunk.size()));
  const float af = float(a);
  if (!std::isfinite(af) || !(af > 0.0f)) return 1.0f;
  return af;
}

// Sign source: the inner attack's direction when it has one; NaNs still
// yield a finite output because copysign only reads the sign bit.
inline float signed_amp(float amp, float src) {
  return std::copysign(amp, src);
}

void craft_sign_chunk(std::span<const float> in, std::span<float> out,
                      double inflate) {
  // sign1 derives its scale as the sequential-double mean of |x|; a chunk
  // of identical magnitudes A recovers exactly A (len * A and the divide
  // are both exact in double for len <= 65536), so the decoded chunk is
  // bitwise +/-A — the inflated amplitude survives the codec untouched.
  const float a = craft_amplitude(in, inflate);
  for (std::size_t j = 0; j < in.size(); ++j) out[j] = signed_amp(a, in[j]);
}

void craft_int8_chunk(std::span<const float> in, std::span<float> out,
                      double inflate) {
  // Snap the amplitude onto the quantizer's grid edge: 127 * 2^e with e
  // chosen so 127 * 2^e is the power-of-two-step level nearest the
  // target. The encoder then derives the same e from frexp(max|x|)
  // (127 * 2^e = 0.9921875 * 2^(e+7), so exp - 7 == e) and every
  // coordinate rounds to code +/-127 — zero quantization loss at the
  // extreme level. e stays inside [-126, 120], well within the codec's
  // legal exponent range, so the encoder never clamps.
  const float target = craft_amplitude(in, inflate);
  int exp = 0;
  std::frexp(target, &exp);
  const int e = std::clamp(exp - 7, -126, 120);
  const float a = std::ldexp(127.0f, e);
  for (std::size_t j = 0; j < in.size(); ++j) out[j] = signed_amp(a, in[j]);
}

void craft_topk_chunk(std::span<const float> in, std::span<float> out,
                      double inflate, double k_fraction) {
  // Exactly k spikes at the head of the chunk, everything else exactly
  // +0.0f: the sparsifier's top-k by magnitude is precisely the spike
  // set, the stored u16 index deltas are minimal (0, 1, 1, ...), and the
  // decoder's zero-fill reproduces the +0.0f tail bitwise.
  const std::size_t k = comm::topk_keep_count(k_fraction, in.size());
  const float a = craft_amplitude(in, inflate);
  for (std::size_t j = 0; j < in.size(); ++j)
    out[j] = j < k ? signed_amp(a, in[j]) : 0.0f;
}

}  // namespace

std::vector<float> wirecraft_row(const comm::CompressionSpec& spec,
                                 GradientView inner, double inflate) {
  std::vector<float> out(inner.size());
  const std::size_t chunk = spec.chunk;
  for (std::size_t start = 0; start < inner.size(); start += chunk) {
    const std::size_t len = std::min(chunk, inner.size() - start);
    const std::span<const float> in = inner.subspan(start, len);
    const std::span<float> dst(out.data() + start, len);
    switch (spec.codec) {
      case comm::CodecKind::kNone:
      case comm::CodecKind::kSign1:
        craft_sign_chunk(in, dst, inflate);
        break;
      case comm::CodecKind::kInt8:
        craft_int8_chunk(in, dst, inflate);
        break;
      case comm::CodecKind::kTopK:
        craft_topk_chunk(in, dst, inflate, spec.k_fraction);
        break;
    }
  }
  return out;
}

WirecraftAttack::WirecraftAttack(std::unique_ptr<Attack> inner,
                                 comm::CompressionSpec spec, double inflate)
    : inner_(std::move(inner)), spec_(spec), inflate_(inflate) {
  if (!inner_)
    throw std::invalid_argument("WirecraftAttack: inner attack is null");
  if (!(inflate_ > 0.0) || !std::isfinite(inflate_))
    throw std::invalid_argument(
        "WirecraftAttack: inflate must be positive and finite");
  // Same spec contract as the transport; throws std::invalid_argument on
  // a degenerate chunk size or top-k fraction.
  (void)comm::make_codec(spec_);
}

void WirecraftAttack::begin_round(std::size_t round, Rng& rng) {
  inner_->begin_round(round, rng);
}

bool WirecraftAttack::flips_labels() const { return inner_->flips_labels(); }

std::string WirecraftAttack::name() const {
  return std::string("Wirecraft[") + comm::codec_name(spec_.codec) + "](" +
         inner_->name() + ")";
}

std::vector<std::vector<float>> WirecraftAttack::craft(
    const AttackContext& ctx) {
  std::vector<std::vector<float>> rows = inner_->craft(ctx);
  if (rows.size() != ctx.n_byzantine)
    throw std::logic_error("WirecraftAttack: inner attack returned " +
                           std::to_string(rows.size()) + " rows, expected " +
                           std::to_string(ctx.n_byzantine));
  for (std::vector<float>& row : rows)
    row = wirecraft_row(spec_, GradientView(row), inflate_);
  return rows;
}

void WirecraftAttack::observe_round(const RoundFeedback& fb) {
  inner_->observe_round(fb);
}

void WirecraftAttack::serialize_state(common::ByteWriter& w) const {
  write_nested_state(w, *inner_);
}

void WirecraftAttack::restore_state(common::ByteReader& r) {
  read_nested_state(r, *inner_);
}

}  // namespace signguard::attacks
