#include "attacks/minmax_minsum.h"

#include <algorithm>
#include <stdexcept>

#include "common/vecops.h"

namespace signguard::attacks {

std::vector<float> make_perturbation(std::span<const GradientView> benign,
                                     Perturbation p) {
  if (benign.empty())
    throw std::invalid_argument(
        "make_perturbation: benign set is empty — the perturbation "
        "direction is undefined");
  switch (p) {
    case Perturbation::kInverseStd: {
      const auto moments = vec::coordinate_moments(benign);
      return vec::scaled(moments.stddev, -1.0);
    }
    case Perturbation::kInverseUnit: {
      auto avg = vec::mean_of(benign);
      const double n = vec::norm(avg);
      vec::scale(avg, n > 0.0 ? -1.0 / n : -1.0);
      return avg;
    }
    case Perturbation::kInverseSign: {
      const auto avg = vec::mean_of(benign);
      return vec::scaled(vec::sign(avg), -1.0);
    }
  }
  return {};
}

std::vector<float> make_perturbation(
    std::span<const std::vector<float>> benign, Perturbation p) {
  const std::vector<GradientView> views(benign.begin(), benign.end());
  return make_perturbation(std::span<const GradientView>(views), p);
}

double max_feasible_gamma(const std::function<bool(double)>& feasible,
                          double gamma_cap) {
  if (feasible(gamma_cap)) return gamma_cap;
  double lo = 0.0, hi = gamma_cap;
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid))
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

namespace {

std::vector<std::vector<float>> craft_perturbed(
    const AttackContext& ctx, Perturbation perturbation, bool min_max,
    double& gamma_out) {
  if (ctx.n_byzantine == 0) return {};
  // All-byzantine / empty-honest round: Eqs. (14)/(15) constrain the
  // crafted gradient against the benign clique, which does not exist.
  if (ctx.benign_grads.empty())
    throw std::invalid_argument(
        "MinMax/MinSum: craft with no benign gradients — the feasibility "
        "constraint is undefined");
  const auto avg = vec::mean_of(ctx.benign_grads);
  const auto dp = make_perturbation(ctx.benign_grads, perturbation);
  const std::size_t nb = ctx.benign_grads.size();

  // Benign-to-benign distance bounds (right-hand sides of Eqs. 14/15),
  // from one backend-dispatched pairwise block (Gram GEMM by default)
  // over the gathered benign rows.
  const auto benign = common::GradientMatrix::from_views(ctx.benign_grads);
  const auto d2 = vec::pairwise_dist2(benign);
  double max_pair_d2 = 0.0;
  double max_sum_d2 = 0.0;
  for (std::size_t i = 0; i < nb; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < nb; ++j) {
      max_pair_d2 = std::max(max_pair_d2, d2[i * nb + j]);
      row_sum += d2[i * nb + j];
    }
    max_sum_d2 = std::max(max_sum_d2, row_sum);
  }

  // The crafted gradient is gm(gamma) = avg + gamma * dp, so
  //   dist2(gm, g_i) = ||avg||^2 + 2 gamma <avg,dp> + gamma^2 ||dp||^2
  //                    + ||g_i||^2 - 2 (<g_i,avg> + gamma <g_i,dp>).
  // Every gamma-independent term is computed once (three O(nb d) passes);
  // the bisection then evaluates each candidate in O(nb) scalar ops
  // instead of re-walking all nb gradients at O(d) per probe.
  const auto avg_dots = vec::row_dots(benign, avg);
  const auto dp_dots = vec::row_dots(benign, dp);
  const auto norms = vec::row_norms(benign);
  const double avg2 = vec::dot(avg, avg);
  const double dp2 = vec::dot(dp, dp);
  const double avg_dp = vec::dot(avg, dp);

  auto feasible = [&](double gamma) {
    const double gm2 = avg2 + 2.0 * gamma * avg_dp + gamma * gamma * dp2;
    if (min_max) {
      double worst = 0.0;
      for (std::size_t i = 0; i < nb; ++i) {
        const double di = gm2 + norms[i] * norms[i] -
                          2.0 * (avg_dots[i] + gamma * dp_dots[i]);
        worst = std::max(worst, di);
      }
      return worst <= max_pair_d2;
    }
    double total = 0.0;
    for (std::size_t i = 0; i < nb; ++i)
      total += gm2 + norms[i] * norms[i] -
               2.0 * (avg_dots[i] + gamma * dp_dots[i]);
    return total <= max_sum_d2;
  };

  gamma_out = max_feasible_gamma(feasible);
  auto gm = avg;
  vec::axpy(gamma_out, dp, gm);
  return std::vector<std::vector<float>>(ctx.n_byzantine, gm);
}

}  // namespace

std::vector<std::vector<float>> MinMaxAttack::craft(const AttackContext& ctx) {
  return craft_perturbed(ctx, perturbation_, /*min_max=*/true, last_gamma_);
}

std::vector<std::vector<float>> MinSumAttack::craft(const AttackContext& ctx) {
  return craft_perturbed(ctx, perturbation_, /*min_max=*/false, last_gamma_);
}

}  // namespace signguard::attacks
