#include "attacks/minmax_minsum.h"

#include <algorithm>
#include <cassert>

#include "common/vecops.h"

namespace signguard::attacks {

std::vector<float> make_perturbation(std::span<const GradientView> benign,
                                     Perturbation p) {
  assert(!benign.empty());
  switch (p) {
    case Perturbation::kInverseStd: {
      const auto moments = vec::coordinate_moments(benign);
      return vec::scaled(moments.stddev, -1.0);
    }
    case Perturbation::kInverseUnit: {
      auto avg = vec::mean_of(benign);
      const double n = vec::norm(avg);
      vec::scale(avg, n > 0.0 ? -1.0 / n : -1.0);
      return avg;
    }
    case Perturbation::kInverseSign: {
      const auto avg = vec::mean_of(benign);
      return vec::scaled(vec::sign(avg), -1.0);
    }
  }
  return {};
}

std::vector<float> make_perturbation(
    std::span<const std::vector<float>> benign, Perturbation p) {
  const std::vector<GradientView> views(benign.begin(), benign.end());
  return make_perturbation(std::span<const GradientView>(views), p);
}

double max_feasible_gamma(const std::function<bool(double)>& feasible,
                          double gamma_cap) {
  if (feasible(gamma_cap)) return gamma_cap;
  double lo = 0.0, hi = gamma_cap;
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid))
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

namespace {

std::vector<std::vector<float>> craft_perturbed(
    const AttackContext& ctx, Perturbation perturbation, bool min_max,
    double& gamma_out) {
  assert(!ctx.benign_grads.empty());
  const auto avg = vec::mean_of(ctx.benign_grads);
  const auto dp = make_perturbation(ctx.benign_grads, perturbation);
  const std::size_t nb = ctx.benign_grads.size();

  // Benign-to-benign distance bounds (right-hand sides of Eqs. 14/15).
  double max_pair_d2 = 0.0;
  std::vector<double> sum_d2(nb, 0.0);
  for (std::size_t i = 0; i < nb; ++i) {
    for (std::size_t j = i + 1; j < nb; ++j) {
      const double d2 = vec::dist2(ctx.benign_grads[i], ctx.benign_grads[j]);
      max_pair_d2 = std::max(max_pair_d2, d2);
      sum_d2[i] += d2;
      sum_d2[j] += d2;
    }
  }
  const double max_sum_d2 =
      nb > 0 ? *std::max_element(sum_d2.begin(), sum_d2.end()) : 0.0;

  auto gm_for = [&](double gamma) {
    auto gm = avg;
    vec::axpy(gamma, dp, gm);
    return gm;
  };
  auto feasible = [&](double gamma) {
    const auto gm = gm_for(gamma);
    if (min_max) {
      double worst = 0.0;
      for (const auto& g : ctx.benign_grads)
        worst = std::max(worst, vec::dist2(gm, g));
      return worst <= max_pair_d2;
    }
    double total = 0.0;
    for (const auto& g : ctx.benign_grads) total += vec::dist2(gm, g);
    return total <= max_sum_d2;
  };

  gamma_out = max_feasible_gamma(feasible);
  const auto gm = gm_for(gamma_out);
  return std::vector<std::vector<float>>(ctx.n_byzantine, gm);
}

}  // namespace

std::vector<std::vector<float>> MinMaxAttack::craft(const AttackContext& ctx) {
  return craft_perturbed(ctx, perturbation_, /*min_max=*/true, last_gamma_);
}

std::vector<std::vector<float>> MinSumAttack::craft(const AttackContext& ctx) {
  return craft_perturbed(ctx, perturbation_, /*min_max=*/false, last_gamma_);
}

}  // namespace signguard::attacks
