#pragma once
// The "simple attacks" of the paper's evaluation (§V-B) plus the scaled
// reverse attack used by the Table III ablation:
//   Random        g_m ~ N(mu, sigma^2 I)
//   Noise         g_m = g_b + N(mu, sigma^2 I)
//   Sign-flip     g_m = -g_b
//   Label-flip    g_m = gradient computed on labels l -> C-1-l
//   Reverse(r)    g_m = -r * g_b   (DETOX's reverse attack with scaling)

#include "attacks/attack.h"

namespace signguard::attacks {

class RandomAttack : public Attack {
 public:
  explicit RandomAttack(double mean = 0.0, double stddev = 0.5)
      : mean_(mean), stddev_(stddev) {}

  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "Random"; }

 private:
  double mean_, stddev_;
};

class NoiseAttack : public Attack {
 public:
  explicit NoiseAttack(double mean = 0.0, double stddev = 0.5)
      : mean_(mean), stddev_(stddev) {}

  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "Noise"; }

 private:
  double mean_, stddev_;
};

class SignFlipAttack : public Attack {
 public:
  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "SignFlip"; }
};

class LabelFlipAttack : public Attack {
 public:
  bool flips_labels() const override { return true; }
  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "LabelFlip"; }
};

class ReverseScalingAttack : public Attack {
 public:
  explicit ReverseScalingAttack(double scale) : scale_(scale) {}

  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "Reverse"; }

 private:
  double scale_;
};

}  // namespace signguard::attacks
