#include "attacks/adaptive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace signguard::attacks {

namespace {

// Coordinate-wise mean of the benign set in a fixed sequential order —
// the anchor every emitted gradient deviates from. Plain double chains,
// no parallelism: the result is bitwise thread-invariant by construction.
std::vector<double> benign_average(std::span<const GradientView> benign) {
  const std::size_t dim = benign.front().size();
  std::vector<double> avg(dim, 0.0);
  for (const GradientView& g : benign) {
    if (g.size() != dim)
      throw std::invalid_argument("AdaptiveAttack: ragged benign gradients");
    for (std::size_t j = 0; j < dim; ++j) avg[j] += double(g[j]);
  }
  const double inv = 1.0 / double(benign.size());
  for (double& v : avg) v *= inv;
  return avg;
}

}  // namespace

void write_nested_state(common::ByteWriter& w, const Attack& inner) {
  common::ByteWriter sub;
  inner.serialize_state(sub);
  w.str(sub.bytes());
}

void read_nested_state(common::ByteReader& r, Attack& inner) {
  const std::string blob = r.str();
  common::ByteReader sub(blob);
  inner.restore_state(sub);
}

// ---- AdaptiveAttack --------------------------------------------------------

AdaptiveAttack::AdaptiveAttack(std::unique_ptr<Attack> inner,
                               AdaptiveOptions opts)
    : inner_(std::move(inner)), opts_(opts) {
  if (!inner_)
    throw std::invalid_argument("AdaptiveAttack: inner attack is null");
  if (!(opts_.initial_gain > 0.0) || !std::isfinite(opts_.initial_gain))
    throw std::invalid_argument("AdaptiveAttack: initial_gain must be > 0");
  if (!(opts_.growth > 1.0) || !std::isfinite(opts_.growth))
    throw std::invalid_argument("AdaptiveAttack: growth must be > 1");
  if (!(opts_.gain_cap >= opts_.initial_gain) ||
      !std::isfinite(opts_.gain_cap))
    throw std::invalid_argument(
        "AdaptiveAttack: gain_cap must be >= initial_gain");
  if (!(opts_.admit_fraction >= 0.0) || !(opts_.admit_fraction <= 1.0))
    throw std::invalid_argument(
        "AdaptiveAttack: admit_fraction must be in [0, 1]");
  if (!(opts_.tolerance > 0.0) || !(opts_.tolerance < 1.0))
    throw std::invalid_argument(
        "AdaptiveAttack: tolerance must be in (0, 1)");
  gain_ = opts_.initial_gain;
}

void AdaptiveAttack::begin_round(std::size_t round, Rng& rng) {
  inner_->begin_round(round, rng);
}

bool AdaptiveAttack::flips_labels() const { return inner_->flips_labels(); }

std::string AdaptiveAttack::name() const {
  return "Adaptive(" + inner_->name() + ")";
}

std::vector<std::vector<float>> AdaptiveAttack::craft(
    const AttackContext& ctx) {
  const std::size_t m = ctx.n_byzantine;
  if (m == 0) return {};
  if (ctx.benign_grads.empty())
    throw std::invalid_argument(
        "AdaptiveAttack: craft with no benign gradients — the deviation "
        "has no anchor");

  std::vector<std::vector<float>> rows = inner_->craft(ctx);
  if (rows.size() != m)
    throw std::logic_error("AdaptiveAttack: inner attack returned " +
                           std::to_string(rows.size()) + " rows, expected " +
                           std::to_string(m));

  const std::vector<double> avg = benign_average(ctx.benign_grads);
  const std::size_t dim = avg.size();
  last_dir_.assign(dim, 0.0f);
  std::vector<double> dir(dim, 0.0);
  for (std::vector<float>& row : rows) {
    if (row.size() != dim)
      throw std::logic_error(
          "AdaptiveAttack: inner row dimension mismatch");
    for (std::size_t j = 0; j < dim; ++j) {
      const double dev = double(row[j]) - avg[j];
      dir[j] += dev;
      row[j] = float(avg[j] + gain_ * dev);
    }
  }
  const double inv = 1.0 / double(m);
  for (std::size_t j = 0; j < dim; ++j) last_dir_[j] = float(dir[j] * inv);
  crafted_this_round_ = true;
  return rows;
}

void AdaptiveAttack::observe_round(const RoundFeedback& fb) {
  inner_->observe_round(fb);
  const bool crafted = crafted_this_round_;
  crafted_this_round_ = false;
  // Nothing to learn from a round we did not attack, and a degraded
  // round's aggregate came from a fallback path (clipped mean, previous
  // aggregate, or nothing) — feedback from it would poison the search.
  if (!crafted || fb.byzantine == 0 || fb.degraded || fb.skipped) return;

  if (fb.has_selection) {
    const bool passed = double(fb.selected_byzantine) >=
                        opts_.admit_fraction * double(fb.byzantine);
    if (passed) {
      lo_ = std::max(lo_, gain_);
      if (have_hi_ && lo_ >= hi_) {
        // The boundary moved up past our old rejection bound; reopen.
        have_hi_ = false;
        converged_ = false;
      }
    } else {
      if (gain_ <= lo_) {
        // The boundary moved below our old admitted bound (benign
        // statistics tighten as training converges); restart the bracket
        // below the rejection.
        lo_ = gain_ / (opts_.growth * opts_.growth);
        converged_ = false;
      }
      hi_ = have_hi_ ? std::min(hi_, gain_) : gain_;
      have_hi_ = true;
    }
    if (!have_hi_) {
      // Unbounded above: escalate geometrically from the admitted bound.
      gain_ = std::min(lo_ * opts_.growth, opts_.gain_cap);
      if (gain_ >= opts_.gain_cap) converged_ = true;
    } else if (lo_ > 0.0 && hi_ - lo_ <= opts_.tolerance * hi_) {
      // Bracket tight enough: exploit the largest known-admitted gain,
      // but periodically re-probe the rejection bound — if the boundary
      // loosened since it was established, the probe gets admitted, the
      // `lo >= hi` branch above reopens the bracket and the escalation
      // resumes. One potentially-caught round every probe_every is the
      // exploration price.
      converged_ = true;
      if (opts_.probe_every > 0 && ++since_probe_ >= opts_.probe_every) {
        since_probe_ = 0;
        gain_ = hi_;
      } else {
        gain_ = lo_;
      }
    } else {
      converged_ = false;
      gain_ = 0.5 * (lo_ + hi_);
    }
    return;
  }

  // No trusted-set signal (coordinate-wise rule). Once selection feedback
  // has ever been seen, keep trusting it — mixed signals would fight.
  if (have_hi_ || lo_ > 0.0) return;
  if (fb.aggregate.empty() || last_dir_.empty() ||
      fb.aggregate.size() != last_dir_.size())
    return;
  double num = 0.0, den = 0.0;
  for (std::size_t j = 0; j < last_dir_.size(); ++j) {
    num += double(fb.aggregate[j]) * double(last_dir_[j]);
    den += double(last_dir_[j]) * double(last_dir_[j]);
  }
  if (!(den > 0.0)) return;
  // Realized damage: the coefficient of our deviation direction inside
  // the applied aggregate. Hill-climb the gain on it — trimming-style
  // rules admit small deviations in full and clip large ones, so damage
  // is unimodal in the gain.
  const double proj = num / den;
  if (have_proj_ && proj < last_proj_) climbing_up_ = !climbing_up_;
  last_proj_ = proj;
  have_proj_ = true;
  const double factor = climbing_up_ ? opts_.growth : 1.0 / opts_.growth;
  gain_ = std::clamp(gain_ * factor, opts_.initial_gain / opts_.gain_cap,
                     opts_.gain_cap);
}

void AdaptiveAttack::serialize_state(common::ByteWriter& w) const {
  w.f64(gain_);
  w.f64(lo_);
  w.f64(hi_);
  w.u8(have_hi_ ? 1 : 0);
  w.u8(converged_ ? 1 : 0);
  w.f64(last_proj_);
  w.u8(have_proj_ ? 1 : 0);
  w.u8(climbing_up_ ? 1 : 0);
  w.u8(crafted_this_round_ ? 1 : 0);
  w.u64(since_probe_);
  w.floats(last_dir_);
  write_nested_state(w, *inner_);
}

void AdaptiveAttack::restore_state(common::ByteReader& r) {
  gain_ = r.f64();
  lo_ = r.f64();
  hi_ = r.f64();
  have_hi_ = r.u8() != 0;
  converged_ = r.u8() != 0;
  last_proj_ = r.f64();
  have_proj_ = r.u8() != 0;
  climbing_up_ = r.u8() != 0;
  crafted_this_round_ = r.u8() != 0;
  since_probe_ = r.u64();
  last_dir_ = r.floats();
  read_nested_state(r, *inner_);
}

// ---- ChaosColludeAttack ----------------------------------------------------

ChaosColludeAttack::ChaosColludeAttack(std::unique_ptr<Attack> inner,
                                       std::uint64_t seed,
                                       double base_fraction, double jitter,
                                       std::size_t burst_rounds)
    : inner_(std::move(inner)),
      seed_(seed),
      base_fraction_(base_fraction),
      jitter_(jitter),
      burst_rounds_(burst_rounds) {
  if (!inner_)
    throw std::invalid_argument("ChaosColludeAttack: inner attack is null");
  if (!(base_fraction_ >= 0.0) || !(base_fraction_ <= 1.0))
    throw std::invalid_argument(
        "ChaosColludeAttack: base_fraction must be in [0, 1]");
  if (!(jitter_ >= 0.0) || !(jitter_ <= 1.0))
    throw std::invalid_argument(
        "ChaosColludeAttack: jitter must be in [0, 1]");
}

void ChaosColludeAttack::begin_round(std::size_t round, Rng& rng) {
  inner_->begin_round(round, rng);
}

bool ChaosColludeAttack::flips_labels() const {
  return inner_->flips_labels();
}

std::string ChaosColludeAttack::name() const {
  return "Collude(" + inner_->name() + ")";
}

double ChaosColludeAttack::fraction_for_round(std::size_t round) const {
  // Stateless keyed stream in (seed, round): any round's fraction is
  // computable without replaying earlier rounds, which is what keeps
  // checkpoint resume and thread-count changes bitwise identical.
  Rng stream = Rng::stream(seed_, 0x636f6c6c75646534ULL ^ round);
  const double f = base_fraction_ + jitter_ * stream.uniform(-1.0, 1.0);
  return std::clamp(f, 0.0, 1.0);
}

std::vector<std::vector<float>> ChaosColludeAttack::craft(
    const AttackContext& ctx) {
  const std::size_t m = ctx.n_byzantine;
  if (m == 0) return {};
  if (ctx.byz_honest_grads.size() != m)
    throw std::invalid_argument(
        "ChaosColludeAttack: byz_honest_grads must hold one gradient per "
        "Byzantine client");
  std::size_t n_att =
      burst_left_ > 0
          ? m
          : std::size_t(std::llround(fraction_for_round(ctx.round) *
                                     double(m)));
  n_att = std::min(n_att, m);

  std::vector<std::vector<float>> rows;
  rows.reserve(m);
  if (n_att > 0) {
    AttackContext sub = ctx;
    sub.byz_honest_grads = ctx.byz_honest_grads.subspan(0, n_att);
    sub.n_byzantine = n_att;
    rows = inner_->craft(sub);
    if (rows.size() != n_att)
      throw std::logic_error(
          "ChaosColludeAttack: inner attack returned " +
          std::to_string(rows.size()) + " rows, expected " +
          std::to_string(n_att));
  }
  // The non-colluding Byzantine clients behave honestly this round.
  for (std::size_t i = n_att; i < m; ++i) {
    const GradientView g = ctx.byz_honest_grads[i];
    rows.emplace_back(g.begin(), g.end());
  }
  return rows;
}

void ChaosColludeAttack::observe_round(const RoundFeedback& fb) {
  inner_->observe_round(fb);
  if (fb.degraded) {
    // The fallback chain fired: the next rounds aggregate over a thinned
    // cohort where the colluding fraction is proportionally larger.
    // Attack with everything while the window lasts.
    burst_left_ = burst_rounds_;
  } else if (burst_left_ > 0) {
    --burst_left_;
  }
}

void ChaosColludeAttack::serialize_state(common::ByteWriter& w) const {
  w.u64(burst_left_);
  write_nested_state(w, *inner_);
}

void ChaosColludeAttack::restore_state(common::ByteReader& r) {
  burst_left_ = r.u64();
  read_nested_state(r, *inner_);
}

}  // namespace signguard::attacks
