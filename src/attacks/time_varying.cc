#include "attacks/time_varying.h"

#include <stdexcept>

#include "attacks/byzmean.h"
#include "attacks/lie.h"
#include "attacks/minmax_minsum.h"
#include "attacks/simple_attacks.h"

namespace signguard::attacks {

namespace {

std::vector<std::unique_ptr<Attack>> default_pool() {
  std::vector<std::unique_ptr<Attack>> pool;
  pool.push_back(std::make_unique<NoAttack>());
  pool.push_back(std::make_unique<RandomAttack>());
  pool.push_back(std::make_unique<SignFlipAttack>());
  pool.push_back(std::make_unique<LieAttack>());
  pool.push_back(std::make_unique<ByzMeanAttack>());
  pool.push_back(std::make_unique<MinMaxAttack>());
  pool.push_back(std::make_unique<MinSumAttack>());
  return pool;
}

}  // namespace

TimeVaryingAttack::TimeVaryingAttack(std::size_t rounds_per_epoch,
                                     std::uint64_t seed)
    : TimeVaryingAttack(default_pool(), rounds_per_epoch, seed) {}

TimeVaryingAttack::TimeVaryingAttack(
    std::vector<std::unique_ptr<Attack>> pool, std::size_t rounds_per_epoch,
    std::uint64_t seed)
    : pool_(std::move(pool)),
      rounds_per_epoch_(rounds_per_epoch == 0 ? 1 : rounds_per_epoch),
      selector_(seed) {
  // A typed error in every build mode: with an empty pool there is no
  // sub-attack to delegate to, and the release-build dereference of
  // pool_[0] was undefined behaviour.
  if (pool_.empty())
    throw std::invalid_argument(
        "TimeVaryingAttack: attack pool must be non-empty");
  for (const auto& a : pool_)
    if (a == nullptr)
      throw std::invalid_argument(
          "TimeVaryingAttack: attack pool holds a null attack");
}

Attack& TimeVaryingAttack::active() const {
  // Before the first begin_round no epoch has drawn a sub-attack;
  // silently acting as pool_[0] hid protocol misuse, so the contract is
  // now explicit: query order is begin_round first (attack.h).
  if (current_epoch_ == SIZE_MAX)
    throw std::logic_error(
        "TimeVaryingAttack: begin_round must run before the attack is "
        "queried");
  return *pool_[current_idx_];
}

void TimeVaryingAttack::begin_round(std::size_t round, Rng& rng) {
  const std::size_t epoch = round / rounds_per_epoch_;
  if (epoch != current_epoch_) {
    current_epoch_ = epoch;
    current_idx_ = std::size_t(selector_.randint(0, int(pool_.size()) - 1));
  }
  pool_[current_idx_]->begin_round(round, rng);
}

bool TimeVaryingAttack::flips_labels() const { return active().flips_labels(); }

std::vector<std::vector<float>> TimeVaryingAttack::craft(
    const AttackContext& ctx) {
  return active().craft(ctx);
}

std::string TimeVaryingAttack::current() const { return active().name(); }

void TimeVaryingAttack::serialize_state(common::ByteWriter& w) const {
  w.str(selector_.state());
  w.u64(current_epoch_);
  w.u64(current_idx_);
}

void TimeVaryingAttack::restore_state(common::ByteReader& r) {
  selector_.set_state(r.str());
  current_epoch_ = r.u64();
  current_idx_ = r.u64();
  if (current_epoch_ != SIZE_MAX && current_idx_ >= pool_.size())
    throw std::runtime_error(
        "TimeVaryingAttack: checkpointed attack index out of range");
}

}  // namespace signguard::attacks
