#include "attacks/time_varying.h"

#include <cassert>

#include "attacks/byzmean.h"
#include "attacks/lie.h"
#include "attacks/minmax_minsum.h"
#include "attacks/simple_attacks.h"

namespace signguard::attacks {

namespace {

std::vector<std::unique_ptr<Attack>> default_pool() {
  std::vector<std::unique_ptr<Attack>> pool;
  pool.push_back(std::make_unique<NoAttack>());
  pool.push_back(std::make_unique<RandomAttack>());
  pool.push_back(std::make_unique<SignFlipAttack>());
  pool.push_back(std::make_unique<LieAttack>());
  pool.push_back(std::make_unique<ByzMeanAttack>());
  pool.push_back(std::make_unique<MinMaxAttack>());
  pool.push_back(std::make_unique<MinSumAttack>());
  return pool;
}

}  // namespace

TimeVaryingAttack::TimeVaryingAttack(std::size_t rounds_per_epoch,
                                     std::uint64_t seed)
    : TimeVaryingAttack(default_pool(), rounds_per_epoch, seed) {}

TimeVaryingAttack::TimeVaryingAttack(
    std::vector<std::unique_ptr<Attack>> pool, std::size_t rounds_per_epoch,
    std::uint64_t seed)
    : pool_(std::move(pool)),
      rounds_per_epoch_(rounds_per_epoch == 0 ? 1 : rounds_per_epoch),
      selector_(seed) {
  assert(!pool_.empty());
}

void TimeVaryingAttack::begin_round(std::size_t round, Rng& rng) {
  const std::size_t epoch = round / rounds_per_epoch_;
  if (epoch != current_epoch_) {
    current_epoch_ = epoch;
    current_idx_ = std::size_t(selector_.randint(0, int(pool_.size()) - 1));
  }
  pool_[current_idx_]->begin_round(round, rng);
}

bool TimeVaryingAttack::flips_labels() const {
  return pool_[current_idx_]->flips_labels();
}

std::vector<std::vector<float>> TimeVaryingAttack::craft(
    const AttackContext& ctx) {
  return pool_[current_idx_]->craft(ctx);
}

std::string TimeVaryingAttack::current() const {
  return pool_[current_idx_]->name();
}

}  // namespace signguard::attacks
