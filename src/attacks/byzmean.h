#pragma once
// The paper's proposed hybrid "ByzMean" attack (§III, Eq. 8): split the m
// Byzantine clients into two groups. Group 1 (m1 clients) sends an
// arbitrary vector g_m1 (by default a LIE-crafted vector); group 2
// (m2 = m - m1 clients) sends
//   g_m2 = ((n - m1) * g_m1 - sum(benign)) / m2
// so the mean of ALL n gradients equals exactly g_m1 — any mean-style
// aggregation is steered wherever the attacker wants.

#include <memory>

#include "attacks/attack.h"

namespace signguard::attacks {

class ByzMeanAttack : public Attack {
 public:
  // inner: attack used to produce g_m1 (defaults to LIE z=0.3 when null).
  // m1_fraction: |group 1| = floor(m1_fraction * m); paper uses 0.5.
  explicit ByzMeanAttack(std::unique_ptr<Attack> inner = nullptr,
                         double m1_fraction = 0.5);

  void begin_round(std::size_t round, Rng& rng) override;
  std::vector<std::vector<float>> craft(const AttackContext& ctx) override;
  std::string name() const override { return "ByzMean"; }

 private:
  std::unique_ptr<Attack> inner_;
  double m1_fraction_;
};

}  // namespace signguard::attacks
