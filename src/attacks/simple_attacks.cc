#include "attacks/simple_attacks.h"

#include <cassert>

#include "common/vecops.h"

namespace signguard::attacks {

std::vector<std::vector<float>> RandomAttack::craft(const AttackContext& ctx) {
  assert(ctx.rng != nullptr);
  const std::size_t d =
      ctx.benign_grads.empty() ? 0 : ctx.benign_grads.front().size();
  std::vector<std::vector<float>> out;
  out.reserve(ctx.n_byzantine);
  for (std::size_t i = 0; i < ctx.n_byzantine; ++i)
    out.push_back(ctx.rng->normal_vector(d, mean_, stddev_));
  return out;
}

std::vector<std::vector<float>> NoiseAttack::craft(const AttackContext& ctx) {
  assert(ctx.rng != nullptr);
  std::vector<std::vector<float>> out;
  out.reserve(ctx.n_byzantine);
  for (const GradientView g : ctx.byz_honest_grads) {
    std::vector<float> noisy(g.begin(), g.end());
    for (auto& v : noisy)
      v = static_cast<float>(double(v) + ctx.rng->normal(mean_, stddev_));
    out.push_back(std::move(noisy));
  }
  return out;
}

std::vector<std::vector<float>> SignFlipAttack::craft(
    const AttackContext& ctx) {
  std::vector<std::vector<float>> out;
  out.reserve(ctx.n_byzantine);
  for (const GradientView g : ctx.byz_honest_grads)
    out.push_back(vec::scaled(g, -1.0));
  return out;
}

std::vector<std::vector<float>> LabelFlipAttack::craft(
    const AttackContext& ctx) {
  // The poisoning happened during local training (flipped labels); the
  // gradients are forwarded unmodified.
  std::vector<std::vector<float>> out;
  out.reserve(ctx.byz_honest_grads.size());
  for (const GradientView g : ctx.byz_honest_grads)
    out.emplace_back(g.begin(), g.end());
  return out;
}

std::vector<std::vector<float>> ReverseScalingAttack::craft(
    const AttackContext& ctx) {
  std::vector<std::vector<float>> out;
  out.reserve(ctx.n_byzantine);
  for (const GradientView g : ctx.byz_honest_grads)
    out.push_back(vec::scaled(g, -scale_));
  return out;
}

}  // namespace signguard::attacks
