#pragma once
// The synchronous federated training loop of Algorithm 1 with the paper's
// threat model wired in: Byzantine clients occupy indices [0, m); every
// round the attacker observes all benign gradients and substitutes the
// Byzantine ones via the Attack interface; the server aggregates with the
// configured GAR and updates the global model.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "aggregators/aggregator.h"
#include "attacks/attack.h"
#include "comm/codec.h"
#include "data/partition.h"
#include "data/synth_image.h"  // TrainTest
#include "fl/chaos.h"
#include "fl/checkpoint.h"
#include "fl/metrics.h"
#include "nn/model.h"
#include "obs/metrics.h"

namespace signguard::fl {

struct TrainerConfig {
  std::size_t n_clients = 50;
  double byzantine_frac = 0.2;      // m = round(frac * n)
  std::size_t rounds = 100;
  std::size_t batch_size = 8;
  double lr = 0.05;
  double momentum = 0.9;            // §V-C: momentum 0.9 (server-side)
  // History-aided alternative (refs [31]-[32]): momentum accumulated in
  // each client's own buffer before sending. When > 0, the server
  // momentum should normally be set to 0 to avoid double damping.
  double client_momentum = 0.0;
  double weight_decay = 5e-4;       // §V-C: weight decay 0.0005
  std::size_t eval_every = 10;      // rounds between test evaluations
  std::size_t eval_max_samples = 1000;  // 0 = full test set
  bool noniid = false;
  double noniid_s = 0.5;            // §VI-B skewness parameter
  // Fraction of clients sampled each round (§IV-A partial participation;
  // 1.0 = the paper's default synchronous full participation). Must be in
  // (0, 1]; when the sampled count rounds to zero it is clamped to one
  // client.
  double participation = 1.0;
  // Legacy failure injection (per selected client, per round, from a
  // dedicated RNG stream). dropout: the client misses the round entirely
  // (no local work, no state change). straggler: the client trains — its
  // batch sampling, momentum buffer and loss stats advance — but the
  // update arrives too late and is discarded before aggregation.
  //
  // Joint semantics: the two coins are SEQUENTIAL, not independent — the
  // dropout coin is flipped first, and the straggler coin only for
  // clients that survived it. Each selected client therefore lands in
  // exactly one of three states per round:
  //   dropped    with probability  p_drop
  //   straggler  with probability  (1 - p_drop) * p_strag
  //   active     with probability  (1 - p_drop) * (1 - p_strag)
  // so any (p_drop, p_strag) pair in [0, 1]^2 is meaningful (no "dropped
  // AND straggling" state, no constraint on the sum), and the expected
  // active fraction is the product of the survival probabilities.
  // tests/test_chaos.cc pins both the rates and the exactly-one-state
  // partition. A coin with probability zero is never flipped — the
  // stream advances only for the coins actually in play.
  double dropout_prob = 0.0;
  double straggler_prob = 0.0;
  // Chaos engine (fl/chaos.h): latency/churn/transport-fault injection
  // with retry-and-deadline uplinks. Inactive by default; when active it
  // layers ON TOP of the legacy coins above (legacy sift first, then
  // churn/uplink simulation for the survivors) and forces the uplink
  // transport on — a simulated retransmission needs wire buffers even
  // under the kNone codec.
  ChaosConfig chaos;
  // Quorum degradation policy (fl/chaos.h). Inactive by default: a
  // quorum-starved or filter-empty round then behaves exactly as before
  // (the GAR aggregates whatever arrived). When active, the trainer
  // checks min_participants before aggregation and min_survivors after a
  // selecting rule, and degrades per the policy's action instead of
  // proceeding; a GAR that throws on its input degrades the round too.
  QuorumPolicy quorum;
  // Crash-consistent checkpoint/restore (fl/checkpoint.h). Inactive by
  // default.
  CheckpointConfig checkpoint;
  // Uplink transport (src/comm): every participating client's gradient is
  // encoded into a per-client wire buffer and the server decodes it
  // straight into the round GradientMatrix row. The default codec kNone
  // disables the layer entirely — the round is then bit-identical to the
  // pre-transport pipeline (the golden traces prove it). When the GAR is
  // a plain SignGuard and SIGNGUARD_WIREPATH is "wire" (the default),
  // the server instead filters on statistics computed from the wire
  // bytes and decodes only the trusted set — bitwise-identical results,
  // far fewer bytes touched (comm/stats.h).
  comm::CompressionSpec compression;
  // Test/chaos hook: runs on each client's encoded uplink buffer before
  // the server-side decode (the argument is the global client index). A
  // mutation that no longer decodes surfaces as a per-client
  // decode-reject: the update is dropped before aggregation and counted
  // in RoundObservation::decode_rejects. Setting the hook activates the
  // transport even under the kNone codec.
  std::function<void(std::size_t client, std::vector<std::uint8_t>& buf)>
      uplink_tamper;
  // Deterministic work-counter registry (src/obs). Borrowed, may be null
  // (all counting then reduces to no-ops). The trainer opens one counter
  // round per training round — begin_round before the round's work,
  // end_round after the round's checkpoint save, so checkpoint bytes land
  // in the round that wrote them and a mid-round serialize() snapshot
  // matches the eventual record (kill+resume stays bitwise).
  obs::MetricsRegistry* metrics = nullptr;
  std::uint64_t seed = 7;
};

using ModelFactory = std::function<nn::Model(std::uint64_t seed)>;

// Per-round observer hook — used by the Fig. 5 curve bench and the sweep
// engine's trace capture. The spans borrow the trainer's round buffers
// and are only valid for the duration of the callback.
struct RoundObservation {
  std::size_t round = 0;
  std::optional<double> test_accuracy;
  std::string attack_name;
  // Trace capture: the post-GAR, pre-momentum global aggregate for this
  // round (empty when the round was skipped for lack of honest
  // participants), the GAR's trusted set when the rule reports one, and
  // the round's participation / failure accounting.
  std::span<const float> aggregate;
  std::span<const std::size_t> selected;
  std::size_t participants = 0;  // gradients that reached the aggregator
  std::size_t byzantine = 0;     // Byzantine gradients among them
  std::size_t dropped = 0;       // clients lost to dropout injection
  std::size_t stragglers = 0;    // clients whose update arrived too late
  // Transport accounting (all zero while the transport layer is off).
  // `participants` above counts post-reject survivors; a rejected uplink
  // was still paid for, so it contributes to the byte totals.
  std::size_t decode_rejects = 0;     // uplinks the wire decoder refused
  std::uint64_t uplink_bytes = 0;     // encoded bytes sent this round
  std::uint64_t uplink_dense_bytes = 0;  // float32 cost of the same updates
  // Dense bytes the server-side aggregation pipeline materialized from
  // the round's accepted uplinks: n_eff * 4d on the decode path, only
  // |trusted set| * 4d on the compressed-domain SignGuard path
  // (SIGNGUARD_WIREPATH=wire — see comm/stats.h). The in-place decode of
  // benign rows that feeds the simulated omniscient attacker is a
  // harness artifact and is not billed here.
  std::uint64_t uplink_decoded_bytes = 0;
  // Hierarchical aggregation accounting (src/aggregators/sharded.h):
  // shard count the GAR used this round and the per-shard survivor
  // counts in canonical shard order. Zero/empty whenever the GAR is not
  // a ShardedAggregator. Borrows the aggregator's buffers, same
  // lifetime as the other spans.
  std::size_t shards = 0;
  std::span<const std::size_t> shard_survivors;
  // Chaos accounting (all zero while the chaos engine is off).
  std::size_t churned = 0;          // selected clients absent to churn
  std::size_t deadline_misses = 0;  // uplinks late past the deadline
  std::size_t lost_uplinks = 0;     // uplinks dropped on every attempt
  std::uint64_t uplink_attempts = 0;  // transmissions incl. retries
  // Simulated wall-clock of the round's uplink phase: the deadline when
  // any transmitter ran past it, else the slowest DELIVERED uplink's
  // attempt-chain time. A lost uplink (or, with no deadline, one that
  // would have been late) never extends the round — a synchronous server
  // closes the round on the updates it actually received.
  double sim_round_ms = 0.0;
  // Degradation outcome (kProceed on every normal round; the fallback /
  // quorum-skip values only occur with an active QuorumPolicy).
  RoundOutcome outcome = RoundOutcome::kProceed;
  bool skipped = false;          // no aggregate applied this round
};
using RoundObserver = std::function<void(const RoundObservation&)>;

class Trainer {
 public:
  // Throws std::invalid_argument for degenerate configurations: zero
  // clients, byzantine_frac outside [0, 0.5) (a Byzantine majority — in
  // particular m == n — is unsupported), participation outside (0, 1],
  // failure probabilities outside [0, 1], or a compression spec that
  // comm::make_codec rejects (chunk outside [1, kMaxChunk], topk
  // k_fraction outside (0, 1]).
  Trainer(const data::TrainTest& data, ModelFactory model_factory,
          TrainerConfig cfg);

  // Runs a full training job from a fresh model. The trainer owns the
  // clients and server for the duration of the call; `attack` and `gar`
  // are borrowed (non-owning) so callers can inspect them afterwards.
  TrainingResult run(attacks::Attack& attack,
                     std::unique_ptr<agg::Aggregator> gar,
                     const RoundObserver& observer = nullptr);

  std::size_t n_byzantine() const { return n_byz_; }
  const TrainerConfig& config() const { return cfg_; }

 private:
  const data::TrainTest& data_;
  ModelFactory model_factory_;
  TrainerConfig cfg_;
  std::size_t n_byz_;
};

}  // namespace signguard::fl
