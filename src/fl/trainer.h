#pragma once
// The synchronous federated training loop of Algorithm 1 with the paper's
// threat model wired in: Byzantine clients occupy indices [0, m); every
// round the attacker observes all benign gradients and substitutes the
// Byzantine ones via the Attack interface; the server aggregates with the
// configured GAR and updates the global model.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "aggregators/aggregator.h"
#include "attacks/attack.h"
#include "data/partition.h"
#include "data/synth_image.h"  // TrainTest
#include "fl/metrics.h"
#include "nn/model.h"

namespace signguard::fl {

struct TrainerConfig {
  std::size_t n_clients = 50;
  double byzantine_frac = 0.2;      // m = round(frac * n)
  std::size_t rounds = 100;
  std::size_t batch_size = 8;
  double lr = 0.05;
  double momentum = 0.9;            // §V-C: momentum 0.9 (server-side)
  // History-aided alternative (refs [31]-[32]): momentum accumulated in
  // each client's own buffer before sending. When > 0, the server
  // momentum should normally be set to 0 to avoid double damping.
  double client_momentum = 0.0;
  double weight_decay = 5e-4;       // §V-C: weight decay 0.0005
  std::size_t eval_every = 10;      // rounds between test evaluations
  std::size_t eval_max_samples = 1000;  // 0 = full test set
  bool noniid = false;
  double noniid_s = 0.5;            // §VI-B skewness parameter
  // Fraction of clients sampled each round (§IV-A partial participation;
  // 1.0 = the paper's default synchronous full participation).
  double participation = 1.0;
  std::uint64_t seed = 7;
};

using ModelFactory = std::function<nn::Model(std::uint64_t seed)>;

// Per-round observer hook (round, test accuracy if evaluated this round,
// attack name active this round) — used by the Fig. 5 curve bench.
struct RoundObservation {
  std::size_t round = 0;
  std::optional<double> test_accuracy;
  std::string attack_name;
};
using RoundObserver = std::function<void(const RoundObservation&)>;

class Trainer {
 public:
  Trainer(const data::TrainTest& data, ModelFactory model_factory,
          TrainerConfig cfg);

  // Runs a full training job from a fresh model. The trainer owns the
  // clients and server for the duration of the call; `attack` and `gar`
  // are borrowed (non-owning) so callers can inspect them afterwards.
  TrainingResult run(attacks::Attack& attack,
                     std::unique_ptr<agg::Aggregator> gar,
                     const RoundObserver& observer = nullptr);

  std::size_t n_byzantine() const { return n_byz_; }
  const TrainerConfig& config() const { return cfg_; }

 private:
  const data::TrainTest& data_;
  ModelFactory model_factory_;
  TrainerConfig cfg_;
  std::size_t n_byz_;
};

}  // namespace signguard::fl
