#include "fl/checkpoint.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/hash.h"

namespace signguard::fl {
namespace {

constexpr char kMagic[4] = {'S', 'G', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 24;

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("checkpoint: " + what + " (" + path + ")");
}

}  // namespace

void write_checkpoint_file(const std::string& path,
                           std::string_view payload) {
  common::ByteWriter header;
  header.raw(kMagic, sizeof kMagic);
  header.u32(kVersion);
  header.u64(payload.size());
  header.u64(common::fnv1a64(payload));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) fail("cannot open temp file for writing", tmp);
  const bool wrote =
      std::fwrite(header.bytes().data(), 1, header.bytes().size(), f) ==
          header.bytes().size() &&
      (payload.empty() ||
       std::fwrite(payload.data(), 1, payload.size(), f) == payload.size());
  // Durability before visibility: the bytes must be on disk before the
  // rename publishes them, or a crash could expose a valid-looking but
  // empty file.
  const bool synced = wrote && std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!synced) {
    std::remove(tmp.c_str());
    fail("short write", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("rename failed", path);
  }
}

std::string read_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail("cannot open", path);
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) fail("read error", path);

  if (bytes.size() < kHeaderSize) fail("truncated header", path);
  common::ByteReader r(bytes);
  char magic[4];
  r.raw(magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) fail("bad magic", path);
  if (r.u32() != kVersion) fail("unsupported format version", path);
  const std::uint64_t len = r.u64();
  const std::uint64_t sum = r.u64();
  if (len != bytes.size() - kHeaderSize) fail("payload length mismatch", path);
  std::string payload = bytes.substr(kHeaderSize);
  if (common::fnv1a64(payload) != sum) fail("checksum mismatch", path);
  return payload;
}

bool checkpoint_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace signguard::fl
