#pragma once
// Deterministic chaos engine: the benign-failure model of a production
// federation, replacing the trainer's original two Bernoulli coins with
// (a) a client latency model — device-class speed tiers crossed with a
//     lognormal per-attempt uplink latency,
// (b) session churn — clients leave and rejoin on per-client schedules
//     of geometric up/down durations,
// (c) a simulated uplink protocol — per-attempt transport faults
//     (drop / truncate / bit-flip, surfacing through the comm wire
//     layer's DecodeStatus machinery), bounded retry with exponential
//     backoff, and a per-round deadline budget: an update whose last
//     attempt lands after the deadline becomes a straggler,
// (d) quorum degradation — when a round is starved of participants or
//     post-filter survivors, the server degrades per policy (skip /
//     previous aggregate / clipped mean) instead of throwing or
//     aggregating nothing.
//
// Determinism contract: every draw comes from a stateless keyed stream
// (Rng::stream semantics) keyed on (engine seed, client, round), never
// from a shared sequential cursor. Consequences the tests pin down:
//   * results are bitwise identical for any SIGNGUARD_THREADS and any
//     query order;
//   * an engine rebuilt from the same seed after a checkpoint restore
//     answers every (client, round) query identically — the chaos
//     engine needs NO cursor in the checkpoint (fl/checkpoint.h);
//   * with the engine off (ChaosConfig::active() == false) the trainer
//     draws nothing from it, so all pre-chaos traces stay byte-identical.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace signguard::fl {

// One device class: a share of the population and the latency multiplier
// its uplinks pay (1.0 = the profile's base latency).
struct DeviceTier {
  double fraction = 1.0;
  double latency_mult = 1.0;
};

// The transport/latency half of the fault model, nameable so it can ride
// the sweep grid as one axis ("--faults=none,lan,wan,flaky,mobile").
struct FaultProfile {
  std::string name = "none";
  // Per-attempt uplink latency: latency_mult * exp(N(log(median), sigma)).
  double latency_median_ms = 0.0;
  double latency_sigma = 0.0;
  std::vector<DeviceTier> tiers;  // empty = one tier, multiplier 1.0
  // Per-attempt transport fault probabilities (must sum to <= 1):
  // drop — the packet never arrives; truncate / bit-flip — the bytes
  // arrive mangled, the wire decoder rejects them (comm::DecodeStatus),
  // and the server NACKs, triggering a retry.
  double p_drop = 0.0;
  double p_truncate = 0.0;
  double p_bitflip = 0.0;
  // Bounded retry with exponential backoff: attempt k (k >= 2) waits
  // backoff_ms * backoff_mult^(k-2) before retransmitting.
  std::size_t max_attempts = 1;
  double backoff_ms = 0.0;
  double backoff_mult = 2.0;

  bool none() const { return name == "none"; }
};

// Preset registry. Throws std::invalid_argument on an unknown name; the
// presets are frozen (they parameterize committed sweep ids and traces).
FaultProfile fault_profile_from_name(const std::string& name);
const std::vector<std::string>& fault_profile_names();

struct ChaosConfig {
  FaultProfile profile;
  // Round deadline budget in simulated milliseconds (0 = no deadline):
  // an uplink whose delivery lands after the deadline is discarded as a
  // straggler, exactly like the legacy straggler coin's victims.
  double deadline_ms = 0.0;
  // Session churn: per-round hazard of an up client starting an absence,
  // and the mean absence length in rounds (geometric, >= 1). A client
  // absent in a round misses it entirely — no local work, no state
  // change — and is counted in RoundObservation::churned.
  double churn_leave_prob = 0.0;
  double churn_mean_absence = 2.0;

  bool active() const {
    return !profile.none() || deadline_ms > 0.0 || churn_leave_prob > 0.0;
  }
  // Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

// Outcome of one simulated uplink (all attempts folded together).
struct UplinkSim {
  enum class Delivery : std::uint8_t {
    kOnTime = 0,  // clean bytes arrived within the deadline
    kCorrupt,     // bytes arrived in budget, but mangled (decode reject)
    kLate,        // delivery landed after the deadline -> straggler
    kLost,        // every attempt dropped -> update never arrived
  };
  enum class Corrupt : std::uint8_t { kNone = 0, kTruncate, kBitFlip };

  Delivery delivery = Delivery::kOnTime;
  Corrupt corrupt = Corrupt::kNone;
  std::uint32_t attempts = 1;   // transmissions, including the first
  double elapsed_ms = 0.0;      // simulated time until resolution
  std::uint64_t corrupt_pos = 0;  // raw draw; caller maps it into the buffer
};

// The engine itself. Not thread-safe across concurrent callers (the
// trainer queries it only from the round loop's own thread; each sweep
// scenario owns its own engine), but all answers are pure functions of
// (seed, client, round), so call order never matters.
class ChaosEngine {
 public:
  // Throws std::invalid_argument when cfg.validate() does.
  ChaosEngine(std::size_t n_clients, ChaosConfig cfg, std::uint64_t seed);

  // Session churn: is `client` present in `round`? Always true while
  // churn is off. Schedules are generated lazily per client from that
  // client's own stream and cached; the cache is an optimization only.
  bool client_up(std::size_t client, std::size_t round);

  // Simulates every attempt of one uplink. Pure in (seed, client, round).
  UplinkSim simulate_uplink(std::size_t client, std::size_t round) const;

  std::size_t tier_of(std::size_t client) const { return tier_[client]; }
  double tier_latency_mult(std::size_t client) const {
    return tier_mult_[client];
  }
  const ChaosConfig& config() const { return cfg_; }

 private:
  ChaosConfig cfg_;
  std::uint64_t seed_;
  std::vector<std::uint8_t> tier_;   // device class per client
  std::vector<double> tier_mult_;    // latency multiplier per client
  // Churn schedule cache: per client, cumulative segment ends (segment i
  // covers rounds [seg_end[i-1], seg_end[i]); even i = up) plus the
  // client's schedule stream, so extension resumes where generation
  // stopped.
  struct ChurnSchedule {
    Rng rng;
    std::vector<std::uint64_t> seg_end;
  };
  std::vector<ChurnSchedule> churn_;
};

// ---- Quorum degradation -----------------------------------------------------

// What the server does when a round fails its quorum (or the GAR throws
// / filters everyone out): skip the update, replay the previous round's
// aggregate, or fall back to a norm-clipped mean over the finite-norm
// participants.
enum class DegradeAction : std::uint8_t {
  kSkip = 0,
  kPrevAggregate = 1,
  kClippedMean = 2,
};
const char* to_string(DegradeAction a);
// "skip" | "prev" | "cmean"; throws std::invalid_argument otherwise.
DegradeAction degrade_action_from_name(const std::string& name);

struct QuorumPolicy {
  // Pre-aggregation quorum: fewer than min_participants accepted updates
  // degrades the round (0 = no check).
  std::size_t min_participants = 0;
  // Post-filter quorum for selecting rules (reports_selection() == true):
  // a trusted set smaller than min_survivors — including the empty set a
  // filter-everyone round produces — degrades the round (0 = no check).
  std::size_t min_survivors = 0;
  // Fallback chain: kClippedMean falls back to kPrevAggregate when no
  // finite-norm participant exists, which falls back to kSkip before the
  // first aggregate exists.
  DegradeAction action = DegradeAction::kClippedMean;

  bool active() const { return min_participants > 0 || min_survivors > 0; }
};

// Explicit per-round outcome, surfaced in RoundObservation and counted
// in TrainingResult. kSkippedNoHonest covers the pre-existing skip
// reasons (no honest participant / every honest uplink rejected).
enum class RoundOutcome : std::uint8_t {
  kProceed = 0,
  kFallbackClippedMean = 1,
  kFallbackPrevAggregate = 2,
  kSkippedQuorum = 3,
  kSkippedNoHonest = 4,
};
const char* to_string(RoundOutcome o);

}  // namespace signguard::fl
