#pragma once
// The parameter server of Algorithm 1: collects the round's gradients,
// runs the configured gradient aggregation rule, and applies the global
// update with momentum SGD (momentum is applied server-side; see
// DESIGN.md substitution #3 for why this is equivalent in the paper's
// one-local-iteration full-participation setting).

#include <memory>
#include <span>
#include <vector>

#include "aggregators/aggregator.h"
#include "nn/optimizer.h"

namespace signguard::fl {

class Server {
 public:
  Server(std::unique_ptr<agg::Aggregator> gar, std::vector<float> init_params,
         double lr, double momentum);

  // One synchronous round: aggregate + parameter update. Returns the
  // aggregated (pre-momentum) global gradient. The matrix overload is the
  // zero-copy path the trainer uses; the legacy overload adapts.
  const std::vector<float>& step(const common::GradientMatrix& grads,
                                 const agg::GarContext& ctx);
  const std::vector<float>& step(std::span<const std::vector<float>> grads,
                                 const agg::GarContext& ctx);

  // Applies an aggregate the caller computed through a non-matrix GAR
  // entry point (the trainer's compressed-domain SignGuard path calls
  // aggregate_wire itself): identical optimizer update to step(), with
  // the provided aggregate.
  const std::vector<float>& apply_aggregate(std::vector<float> aggregate);

  std::span<const float> parameters() const { return params_; }
  agg::Aggregator& gar() { return *gar_; }
  void set_lr(double lr) { optimizer_.set_lr(lr); }

  // The aggregate applied by the most recent step()/apply_aggregate()
  // (empty before the first update) — the quorum fallback's
  // previous-aggregate replay and the checkpoint both need it.
  const std::vector<float>& last_aggregate() const { return last_aggregate_; }
  const nn::SgdMomentum& optimizer() const { return optimizer_; }

  // Checkpoint restore: overwrite the full mutable server state (model
  // parameters, momentum velocity, previous aggregate) in one shot.
  // Throws std::invalid_argument on a parameter-size mismatch.
  void restore(std::vector<float> params, std::vector<float> velocity,
               std::vector<float> last_aggregate);

 private:
  std::unique_ptr<agg::Aggregator> gar_;
  std::vector<float> params_;
  nn::SgdMomentum optimizer_;
  std::vector<float> last_aggregate_;
};

}  // namespace signguard::fl
