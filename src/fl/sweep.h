#pragma once
// Parallel scenario-sweep engine: the paper's evaluation is a grid
// (workload × attack × GAR × partition skew × Byzantine fraction ×
// participation — Tables I-III, Figs. 4-6), and this subsystem runs any
// such grid concurrently on the common::parallel pool.
//
// Determinism contract: scenarios are sorted into a canonical order (by
// ScenarioSpec::id()) and each scenario draws every random decision from
// its own stream, derived statelessly from (id, seed) via Rng::stream
// semantics. A scenario occupies exactly one pool worker — the trainer's
// nested parallel_chunks calls run inline (common::in_parallel_region) —
// so every ScenarioResult, and the streamed JSONL, is bit-identical for
// any SIGNGUARD_THREADS value and any submission or completion order.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fl/experiment.h"
#include "obs/metrics.h"

namespace signguard::fl {

// Partition-skew value meaning IID; any value in [0, 1] means the §VI-B
// sort-and-partition scheme with that IID fraction s.
inline constexpr double kIidSkew = -1.0;

// One cell of the evaluation grid. Fields left at their "default"
// sentinel (rounds == 0, n_clients == 0) resolve to the workload's
// scale-dependent config at run time.
struct ScenarioSpec {
  WorkloadKind workload = WorkloadKind::kMnistLike;
  ModelProfile profile = ModelProfile::kGrid;
  std::string attack = "NoAttack";   // make_attack name
  std::string gar = "Mean";          // make_aggregator name
  double skew = kIidSkew;            // kIidSkew = IID, else non-IID s
  double byzantine_frac = 0.2;
  double participation = 1.0;
  double dropout_prob = 0.0;         // failure injection, per client/round
  double straggler_prob = 0.0;
  // Uplink transport axis (src/comm): codec name ("none", "sign1",
  // "int8", "topk"), coordinates per wire chunk, and the top-k keep
  // fraction. "none" disables the transport layer entirely; such
  // scenarios keep their pre-transport ids and JSONL bytes, so the
  // committed golden traces stay valid (the layer is a provable no-op
  // when off).
  std::string codec = "none";
  std::size_t codec_chunk = 4096;
  double codec_k = 0.05;
  // Hierarchical aggregation axis (src/aggregators/sharded.h): number of
  // shard-local aggregators the round is partitioned across, and the
  // root merge rule ("wmean" | "momed"). shards <= 1 runs the flat path
  // with no wrapper at all, so such scenarios keep their pre-sharding
  // ids, RNG streams and golden traces byte-for-byte.
  std::size_t shards = 1;
  std::string shard_merge = "wmean";
  // Chaos axis (fl/chaos.h): fault profile name ("none", "lan", "wan",
  // "flaky", "mobile"), per-round uplink deadline (0 = unbounded) and
  // session churn (leave probability per up-round; absence lengths are
  // geometric with the given mean). All three default to off, and the
  // whole axis is gated out of ids / JSONL exactly like codec/shards, so
  // existing scenarios keep their bytes.
  std::string fault = "none";
  double deadline_ms = 0.0;
  double churn = 0.0;
  double churn_absence = 2.0;
  // Quorum degradation axis (fl/chaos.h): minimum gradients reaching the
  // aggregator / minimum post-filter survivors before the round degrades
  // per `quorum_action` ("cmean" | "prev" | "skip"). Both zero = policy
  // off (pre-quorum behavior, bytes included).
  std::size_t quorum_min = 0;
  std::size_t quorum_survivors = 0;
  std::string quorum_action = "cmean";
  // Adaptive-adversary axis (src/attacks/adaptive.h, wirecraft.h): wrap
  // the scenario's attack in feedback-driven amplitude adaptation
  // (`adaptive`), codec-aware wire crafting (`wirecraft` — crafts
  // against this spec's codec), and/or chaos-colluding scheduling with
  // time-varying colluding fraction (`collude` = base fraction, 0 = off).
  // All default off and are gated out of ids / JSONL exactly like
  // codec/shards/fault, so committed goldens keep their bytes.
  bool adaptive = false;
  bool wirecraft = false;
  double collude = 0.0;
  std::size_t rounds = 0;            // 0 = workload default for the scale
  std::size_t n_clients = 0;         // 0 = workload default
  std::uint64_t seed = 7;

  bool chaos_active() const {
    return fault != "none" || deadline_ms > 0.0 || churn > 0.0;
  }
  bool quorum_active() const {
    return quorum_min > 0 || quorum_survivors > 0;
  }
  bool adversary_active() const {
    return adaptive || wirecraft || collude > 0.0;
  }

  // Canonical key: total order over scenarios and the root of the
  // scenario's RNG stream. Two specs with equal ids are the same
  // experiment.
  std::string id() const;

  // Stateless per-scenario stream root: depends only on (id(), seed), so
  // a scenario's randomness is unaffected by what else is in the sweep.
  std::uint64_t rng_seed() const;
};

// Declarative cartesian grid; expand() emits one ScenarioSpec per
// combination. Explicit scenario lists can skip the grid and go straight
// to run_sweep.
struct SweepGrid {
  std::vector<WorkloadKind> workloads = {WorkloadKind::kMnistLike};
  ModelProfile profile = ModelProfile::kGrid;
  std::vector<std::string> attacks = {"NoAttack"};
  std::vector<std::string> gars = {"Mean"};
  std::vector<double> skews = {kIidSkew};
  std::vector<double> byzantine_fracs = {0.2};
  std::vector<double> participations = {1.0};
  std::vector<double> dropout_probs = {0.0};
  std::vector<double> straggler_probs = {0.0};
  // Compression axis: one scenario per codec name. Chunk size and top-k
  // fraction are grid-wide scalars (sweeping them too would square the
  // grid; pin them per run instead).
  std::vector<std::string> codecs = {"none"};
  std::size_t codec_chunk = 4096;
  double codec_k = 0.05;
  // Sharding axis: one scenario per shard count. The merge rule is a
  // grid-wide scalar, same rationale as codec_chunk.
  std::vector<std::size_t> shard_counts = {1};
  std::string shard_merge = "wmean";
  // Chaos axes: one scenario per (fault profile, deadline, churn) triple.
  // The absence mean and the whole quorum policy are grid-wide scalars,
  // same rationale as codec_chunk.
  std::vector<std::string> faults = {"none"};
  std::vector<double> deadlines = {0.0};
  std::vector<double> churns = {0.0};
  double churn_absence = 2.0;
  std::size_t quorum_min = 0;
  std::size_t quorum_survivors = 0;
  std::string quorum_action = "cmean";
  // Adaptive-adversary axes: one scenario per flag value / collude
  // fraction ({false} / {0.0} keep the grid adversary-free).
  std::vector<bool> adaptives = {false};
  std::vector<bool> wirecrafts = {false};
  std::vector<double> colludes = {0.0};
  std::size_t rounds = 0;
  std::size_t n_clients = 0;
  std::uint64_t seed = 7;

  std::size_t size() const;  // product of the dimension sizes
  std::vector<ScenarioSpec> expand() const;
};

// Per-round trace record captured through the trainer's RoundObservation
// hook.
struct RoundTrace {
  std::size_t round = 0;
  std::uint64_t aggregate_checksum = 0;  // FNV-1a over the aggregate's bits
  std::size_t participants = 0;
  std::size_t byzantine = 0;
  std::size_t dropped = 0;
  std::size_t stragglers = 0;
  std::size_t selected = 0;              // trusted-set size (0: non-selecting)
  // Uplinks the wire decoder rejected this round. Deliberately NOT part
  // of the folded trace checksum: the fold's word set is pinned by the
  // committed goldens, and a reject already shifts `participants`,
  // which is folded.
  std::size_t decode_rejects = 0;
  // Sharded-aggregation accounting (zero on the flat path): shard count
  // the GAR used this round and the sum of per-shard survivor counts.
  // Folded into the trace checksum only when shards > 0, so flat
  // scenarios keep the pinned golden fold word set.
  std::size_t shards = 0;
  std::size_t shard_survivor_sum = 0;
  // Chaos accounting, folded into the trace checksum only when the
  // scenario runs the chaos engine (`chaos` below) — same golden-trace
  // gating as the shard words.
  std::size_t churned = 0;
  std::size_t deadline_misses = 0;
  std::size_t lost_uplinks = 0;
  std::uint64_t uplink_attempts = 0;
  double sim_round_ms = 0.0;
  // Degradation outcome; folded only when a quorum policy is active
  // (`quorum` below) — without one the outcome is implied by `skipped`.
  RoundOutcome outcome = RoundOutcome::kProceed;
  bool chaos = false;   // fold gate: scenario ran with the chaos engine
  bool quorum = false;  // fold gate: scenario ran with a quorum policy
  std::optional<double> test_accuracy;
  bool skipped = false;
};

struct ScenarioResult {
  ScenarioSpec spec;
  std::size_t resolved_rounds = 0;    // after scale/default resolution
  std::size_t resolved_clients = 0;
  std::string error;                  // non-empty: the scenario threw

  double final_accuracy = 0.0;
  double best_accuracy = 0.0;
  // GAR filter pass-rates (SignGuard's S' admission, Krum's selection,
  // ...); negative when the rule reports no selection.
  double honest_pass_rate = -1.0;
  double malicious_pass_rate = -1.0;

  // Folds every round's aggregate checksum and participation accounting
  // into one value — the golden-trace regression signal.
  std::uint64_t trace_checksum = 0;
  std::size_t skipped_rounds = 0;
  std::size_t dropped_total = 0;
  std::size_t straggler_total = 0;
  // Transport accounting over the run (all zero for codec "none"):
  // encoded uplink bytes actually sent, the float32 cost of the same
  // updates, rejected uplinks, and dense/sent as a float ratio (the
  // JSONL's %.9g-round-trippable bandwidth field).
  std::uint64_t uplink_bytes = 0;
  std::uint64_t uplink_dense_bytes = 0;
  std::size_t decode_rejects = 0;
  float compression_ratio = 0.0f;
  // Dense bytes the server's aggregation pipeline actually materialized
  // from accepted uplinks (see RoundObservation::uplink_decoded_bytes):
  // the field the SIGNGUARD_WIREPATH=wire backend drives down. Expected
  // to differ across backends; the CI wire/decode diff strips it.
  std::uint64_t uplink_decoded_bytes = 0;
  // Chaos / degradation accounting over the run (all zero with the axes
  // off; the JSONL blocks are gated accordingly).
  std::size_t churned_total = 0;
  std::size_t deadline_miss_total = 0;
  std::size_t lost_uplink_total = 0;
  std::uint64_t uplink_attempts = 0;
  double sim_time_ms = 0.0;
  std::size_t fallback_cmean_rounds = 0;
  std::size_t fallback_prev_rounds = 0;
  // True when the scenario stopped at SweepOptions::halt_after_round (the
  // simulated-kill switch) instead of finishing its rounds.
  bool halted = false;
  std::vector<RoundTrace> rounds;     // empty unless capture_rounds

  // Observability (src/obs): per-round work-counter / stage-timing
  // records, captured only when the matching SweepOptions flag is on.
  // The flags gate the JSONL "obs" block exactly like codec/shards/
  // fault fields gate theirs, so existing goldens keep their bytes; the
  // counter plane is deterministic (thread- and order-invariant), the
  // stage_ms plane is wall-clock and never folded or golden-compared.
  bool obs_counters = false;
  bool obs_timing = false;
  std::vector<obs::RoundCost> obs_rounds;

  // Non-deterministic timing; excluded from JSONL unless include_timing.
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

struct SweepOptions {
  Scale scale = scale_from_env();
  bool capture_rounds = true;   // keep per-round traces in the results
  bool include_timing = false;  // add wall/cpu fields to the JSONL
  // Stream results as JSONL, one line per scenario, flushed in canonical
  // order as soon as every earlier scenario has finished.
  std::ostream* jsonl = nullptr;
  // Completion callback (any order, serialized under the engine's lock):
  // scenarios finished so far, total, and the result that just landed.
  std::function<void(std::size_t done, std::size_t total,
                     const ScenarioResult&)>
      progress;
  // Crash-consistent sweep checkpointing (fl/checkpoint.h). Non-empty
  // checkpoint_dir gives every scenario its own file in that directory
  // (named by the FNV-1a64 of its id), carrying the full trainer state
  // plus the engine's observer fold — a resumed scenario emits
  // byte-identical JSONL. halt_after_round is the simulated kill for
  // crash-recovery tests: scenarios stop cleanly after that many rounds
  // with ScenarioResult::halted set; rerunning with `resume` continues
  // them from their latest checkpoint.
  std::string checkpoint_dir;
  std::size_t checkpoint_every = 1;
  bool resume = false;
  std::size_t halt_after_round = 0;
  // Observability (src/obs): obs_counters gives every scenario its own
  // MetricsRegistry (deterministic per-round work counters, emitted as
  // the JSONL "obs" block and carried through sweep checkpoints);
  // obs_timing additionally records per-stage wall-clock into the same
  // records (nondeterministic — never golden-compare a timed line).
  bool obs_counters = false;
  bool obs_timing = false;
};

// Runs every scenario concurrently on the common::parallel pool and
// returns the results in canonical (ScenarioSpec::id) order. A scenario
// that throws — degenerate config, misbehaving attack — is reported via
// ScenarioResult::error instead of aborting the sweep.
std::vector<ScenarioResult> run_sweep(std::vector<ScenarioSpec> specs,
                                      const SweepOptions& opts = {});

// One JSONL line for one result (schema: docs/ARCHITECTURE.md). All
// fields except the optional timing pair are deterministic.
void write_jsonl_line(std::ostream& os, const ScenarioResult& r,
                      bool include_timing = false);

// Table-I-style summary: one text table per scenario group (everything
// but attack and GAR), GAR rows × attack columns, best-accuracy cells.
std::string summary_table(const std::vector<ScenarioResult>& results);

}  // namespace signguard::fl
