#pragma once
// Experiment harness shared by the bench binaries and examples: named
// construction of workloads (dataset + model + tuned trainer config),
// attacks and aggregation rules, plus the SIGNGUARD_SCALE=smoke|default|full
// environment knob that scales round counts to the available time budget.

#include <memory>
#include <string>
#include <vector>

#include "aggregators/aggregator.h"
#include "attacks/attack.h"
#include "fl/trainer.h"

namespace signguard::fl {

enum class Scale { kSmoke, kDefault, kFull };

// Reads SIGNGUARD_SCALE (default kDefault).
Scale scale_from_env();
std::string to_string(Scale s);

// One-line runtime summary for bench banners: the active scale plus the
// thread-pool size (SIGNGUARD_THREADS / hardware_concurrency) every
// matrix kernel and the parallel trainer will use.
std::string runtime_summary(Scale s);

// The paper's four evaluation workloads (§V-A), backed by this repo's
// synthetic stand-in datasets (DESIGN.md substitution #1).
enum class WorkloadKind { kMnistLike, kFashionLike, kCifarLike, kAgNewsLike };

// kGrid: fast dense/bag models for the wide sweeps (Table I, Fig. 4/6);
// kPaper: the structurally faithful CNN / residual-CNN / RNN models used
// by the focused experiments (Fig. 2/5, Table II/III, examples).
enum class ModelProfile { kGrid, kPaper };

// Workload naming without building the (expensive) dataset: the same
// names make_workload() stamps into Workload::name.
std::string workload_name(WorkloadKind kind);
WorkloadKind workload_kind_from_name(const std::string& name);  // throws
const std::vector<WorkloadKind>& all_workloads();

std::string to_string(ModelProfile p);

struct Workload {
  std::string name;
  data::TrainTest data;
  ModelFactory model_factory;
  TrainerConfig config;
};

Workload make_workload(WorkloadKind kind, ModelProfile profile, Scale scale);

// Attack factory. Names (Table I columns): "NoAttack", "Random", "Noise",
// "LabelFlip", "ByzMean", "SignFlip", "LIE", "MinMax", "MinSum",
// "Reverse".
std::unique_ptr<attacks::Attack> make_attack(const std::string& name);

// GAR factory. Names (Table I rows): "Mean", "TrMean", "Median", "GeoMed",
// "Multi-Krum", "Bulyan", "DnC", "SignGuard", "SignGuard-Sim",
// "SignGuard-Dist".
std::unique_ptr<agg::Aggregator> make_aggregator(const std::string& name,
                                                 std::uint64_t seed = 2022);

// Row/column orders used by Table I.
const std::vector<std::string>& table1_attacks();
const std::vector<std::string>& table1_defenses();

}  // namespace signguard::fl
