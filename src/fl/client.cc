#include "fl/client.h"

#include <cassert>

#include "nn/loss.h"
#include "nn/optimizer.h"

namespace signguard::fl {

Client::Client(const data::Dataset* dataset, std::vector<std::size_t> shard,
               std::uint64_t seed)
    : dataset_(dataset), shard_(std::move(shard)), rng_(seed) {
  assert(dataset_ != nullptr);
  assert(!shard_.empty());
}

std::vector<float> Client::compute_gradient(nn::Model& model,
                                            std::size_t batch_size,
                                            double weight_decay,
                                            bool flip_labels,
                                            double client_momentum) {
  const std::size_t bs = std::min(batch_size, shard_.size());
  const auto picks = rng_.sample_without_replacement(shard_.size(), bs);
  std::vector<std::size_t> indices(bs);
  for (std::size_t i = 0; i < bs; ++i) indices[i] = shard_[picks[i]];

  const nn::Tensor batch = data::make_batch(*dataset_, indices);
  const std::vector<int> labels =
      data::batch_labels(*dataset_, indices, flip_labels);

  model.zero_gradients();
  const nn::Tensor logits = model.forward(batch);
  const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
  model.backward(loss.dlogits);

  loss_sum_ += loss.loss;
  ++loss_count_;

  std::vector<float> grad = model.gradients();
  const std::vector<float> params = model.parameters();
  nn::add_weight_decay(grad, params, weight_decay);

  if (client_momentum > 0.0) {
    if (momentum_buffer_.size() != grad.size())
      momentum_buffer_.assign(grad.size(), 0.0f);
    for (std::size_t i = 0; i < grad.size(); ++i) {
      momentum_buffer_[i] = static_cast<float>(
          client_momentum * momentum_buffer_[i] + double(grad[i]));
      grad[i] = momentum_buffer_[i];
    }
  }
  return grad;
}

double Client::average_loss() const {
  return loss_count_ > 0 ? loss_sum_ / double(loss_count_) : 0.0;
}

}  // namespace signguard::fl
