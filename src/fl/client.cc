#include "fl/client.h"

#include <algorithm>
#include <cassert>

#include "nn/loss.h"
#include "nn/optimizer.h"

namespace signguard::fl {

Client::Client(const data::Dataset* dataset, std::vector<std::size_t> shard,
               std::uint64_t seed)
    : dataset_(dataset), shard_(std::move(shard)), rng_(seed) {
  assert(dataset_ != nullptr);
  assert(!shard_.empty());
}

std::vector<float> Client::compute_gradient(nn::Model& model,
                                            std::size_t batch_size,
                                            double weight_decay,
                                            bool flip_labels,
                                            double client_momentum) {
  std::vector<float> grad(model.parameter_count());
  compute_gradient_into(grad, model, batch_size, weight_decay, flip_labels,
                        client_momentum);
  return grad;
}

void Client::compute_gradient_into(std::span<float> out, nn::Model& model,
                                   std::size_t batch_size,
                                   double weight_decay, bool flip_labels,
                                   double client_momentum) {
  const std::size_t bs = std::min(batch_size, shard_.size());
  rng_.sample_without_replacement_into(shard_.size(), bs, picks_);
  indices_.resize(bs);
  for (std::size_t i = 0; i < bs; ++i) indices_[i] = shard_[picks_[i]];

  data::make_batch_into(*dataset_, indices_, batch_);
  data::batch_labels_into(*dataset_, indices_, labels_, flip_labels);

  // Forward/backward run inside the model's workspace arena; the logits
  // reference and the layers' borrowed input pointers stay valid until
  // the next forward pass.
  model.zero_gradients();
  const nn::Tensor& logits = model.forward(batch_);
  nn::softmax_cross_entropy_into(logits, labels_, loss_);
  model.backward(loss_.dlogits);

  loss_sum_ += loss_.loss;
  ++loss_count_;

  // Flat gradient straight into the caller's row; weight decay streams
  // from the layer blobs — no per-client flat copies on the hot path.
  model.gradients_into(out);
  model.add_weight_decay_into(out, weight_decay);

  if (client_momentum > 0.0) {
    if (momentum_buffer_.size() != out.size())
      momentum_buffer_.assign(out.size(), 0.0f);
    for (std::size_t i = 0; i < out.size(); ++i) {
      momentum_buffer_[i] = static_cast<float>(
          client_momentum * momentum_buffer_[i] + double(out[i]));
      out[i] = momentum_buffer_[i];
    }
  }
}

double Client::average_loss() const {
  return loss_count_ > 0 ? loss_sum_ / double(loss_count_) : 0.0;
}

void Client::serialize_state(common::ByteWriter& w) const {
  w.str(rng_.state());
  w.floats(momentum_buffer_);
  w.f64(loss_sum_);
  w.u64(loss_count_);
}

void Client::restore_state(common::ByteReader& r) {
  rng_.set_state(r.str());
  momentum_buffer_ = r.floats();
  loss_sum_ = r.f64();
  loss_count_ = r.u64();
}

}  // namespace signguard::fl
