#include "fl/metrics.h"

#include <algorithm>
#include <cassert>

#include "nn/loss.h"

namespace signguard::fl {

void SelectionStats::accumulate(std::span<const std::size_t> selected,
                                std::size_t n_byzantine,
                                std::size_t n_total) {
  assert(n_total > 0);
  const std::size_t n_honest = n_total - n_byzantine;
  std::size_t sel_honest = 0, sel_byz = 0;
  for (const std::size_t idx : selected) {
    if (idx < n_byzantine)
      ++sel_byz;  // convention: Byzantine clients occupy indices [0, m)
    else
      ++sel_honest;
  }
  const double h =
      n_honest > 0 ? double(sel_honest) / double(n_honest) : 0.0;
  const double b =
      n_byzantine > 0 ? double(sel_byz) / double(n_byzantine) : 0.0;
  // Running average.
  honest_rate = (honest_rate * double(rounds) + h) / double(rounds + 1);
  malicious_rate = (malicious_rate * double(rounds) + b) / double(rounds + 1);
  ++rounds;
}

double attack_impact(double baseline_accuracy, double achieved_accuracy) {
  return baseline_accuracy - achieved_accuracy;
}

double evaluate_accuracy(nn::Model& model, const data::Dataset& test,
                         std::size_t batch_size, std::size_t max_samples) {
  const std::size_t total = max_samples == 0
                                ? test.size()
                                : std::min(max_samples, test.size());
  assert(total > 0);
  std::size_t correct = 0;
  std::vector<std::size_t> indices;
  nn::Tensor batch;
  std::vector<int> labels;
  nn::LossResult r;
  for (std::size_t begin = 0; begin < total; begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, total);
    indices.resize(end - begin);
    for (std::size_t i = begin; i < end; ++i) indices[i - begin] = i;
    data::make_batch_into(test, indices, batch);
    data::batch_labels_into(test, indices, labels);
    const nn::Tensor& logits = model.forward(batch);
    nn::softmax_cross_entropy_into(logits, labels, r);
    correct += r.correct;
  }
  return 100.0 * double(correct) / double(total);
}

}  // namespace signguard::fl
