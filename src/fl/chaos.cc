#include "fl/chaos.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/hash.h"

namespace signguard::fl {
namespace {

// Sub-stream salts under the engine seed. Frozen: changing any of these
// (or the draw order in simulate_uplink / churn extension) changes every
// faults-on trace.
constexpr std::uint64_t kTierSalt = 0x7469657273ULL;    // "tiers"
constexpr std::uint64_t kChurnSalt = 0x636875726eULL;   // "churn"
constexpr std::uint64_t kUplinkSalt = 0x75706c696eULL;  // "uplin"

// One keyed stream per (salt, client[, round]): pure in its inputs, so
// query order and thread count never matter.
std::uint64_t stream_key(std::uint64_t salt, std::uint64_t client,
                         std::uint64_t round = 0) {
  std::uint64_t h = common::fnv1a64(&salt, sizeof salt);
  h = common::fnv1a64(&client, sizeof client, h);
  h = common::fnv1a64(&round, sizeof round, h);
  return h;
}

// Geometric duration with mean 1/p, support {1, 2, ...}. Inverse-CDF on a
// uniform draw — one draw per segment, branch-free, so schedule extension
// consumes a fixed slice of the client's stream per segment.
std::uint64_t geometric_len(Rng& rng, double p) {
  if (p >= 1.0) return 1;
  // uniform() is [0, 1); 1-u is (0, 1] so log() is finite and <= 0.
  const double u = 1.0 - rng.uniform();
  const double len = std::floor(std::log(u) / std::log1p(-p));
  return 1 + static_cast<std::uint64_t>(std::max(0.0, len));
}

void check_prob(double p, const char* what) {
  if (!(p >= 0.0) || p > 1.0)
    throw std::invalid_argument(std::string("chaos: ") + what +
                                " must be in [0, 1]");
}

}  // namespace

FaultProfile fault_profile_from_name(const std::string& name) {
  FaultProfile p;
  p.name = name;
  if (name == "none") {
    return p;
  }
  if (name == "lan") {
    // Wired/campus federation: tight latency, rare drops, quick retries.
    p.latency_median_ms = 20.0;
    p.latency_sigma = 0.3;
    p.p_drop = 0.01;
    p.max_attempts = 3;
    p.backoff_ms = 10.0;
    return p;
  }
  if (name == "wan") {
    // Cross-region federation: heavier tail, a slow device minority,
    // occasional corruption on the path.
    p.latency_median_ms = 120.0;
    p.latency_sigma = 0.6;
    p.tiers = {{0.50, 1.0}, {0.35, 2.0}, {0.15, 4.0}};
    p.p_drop = 0.03;
    p.p_truncate = 0.005;
    p.p_bitflip = 0.005;
    p.max_attempts = 4;
    p.backoff_ms = 50.0;
    return p;
  }
  if (name == "flaky") {
    // Stress profile: every seventh-ish attempt fails some way.
    p.latency_median_ms = 80.0;
    p.latency_sigma = 0.8;
    p.p_drop = 0.10;
    p.p_truncate = 0.02;
    p.p_bitflip = 0.02;
    p.max_attempts = 5;
    p.backoff_ms = 25.0;
    return p;
  }
  if (name == "mobile") {
    // Phone fleet: wide latency spread, strong device-class split.
    p.latency_median_ms = 200.0;
    p.latency_sigma = 1.0;
    p.tiers = {{0.30, 1.0}, {0.40, 2.5}, {0.30, 6.0}};
    p.p_drop = 0.05;
    p.p_truncate = 0.01;
    p.p_bitflip = 0.01;
    p.max_attempts = 4;
    p.backoff_ms = 80.0;
    return p;
  }
  throw std::invalid_argument("chaos: unknown fault profile '" + name + "'");
}

const std::vector<std::string>& fault_profile_names() {
  static const std::vector<std::string> names = {"none", "lan", "wan", "flaky",
                                                 "mobile"};
  return names;
}

void ChaosConfig::validate() const {
  check_prob(profile.p_drop, "p_drop");
  check_prob(profile.p_truncate, "p_truncate");
  check_prob(profile.p_bitflip, "p_bitflip");
  if (profile.p_drop + profile.p_truncate + profile.p_bitflip > 1.0)
    throw std::invalid_argument(
        "chaos: per-attempt fault probabilities must sum to <= 1");
  if (profile.latency_median_ms < 0.0 || profile.latency_sigma < 0.0)
    throw std::invalid_argument("chaos: latency parameters must be >= 0");
  if (profile.max_attempts < 1)
    throw std::invalid_argument("chaos: max_attempts must be >= 1");
  if (profile.backoff_ms < 0.0 || profile.backoff_mult < 1.0)
    throw std::invalid_argument(
        "chaos: backoff_ms must be >= 0 and backoff_mult >= 1");
  double tier_sum = 0.0;
  for (const auto& t : profile.tiers) {
    if (t.fraction <= 0.0 || t.latency_mult <= 0.0)
      throw std::invalid_argument(
          "chaos: tier fractions and multipliers must be > 0");
    tier_sum += t.fraction;
  }
  if (!profile.tiers.empty() && std::abs(tier_sum - 1.0) > 1e-6)
    throw std::invalid_argument("chaos: tier fractions must sum to 1");
  if (deadline_ms < 0.0)
    throw std::invalid_argument("chaos: deadline_ms must be >= 0");
  check_prob(churn_leave_prob, "churn_leave_prob");
  if (churn_leave_prob >= 1.0)
    throw std::invalid_argument("chaos: churn_leave_prob must be < 1");
  if (churn_leave_prob > 0.0 && churn_mean_absence < 1.0)
    throw std::invalid_argument("chaos: churn_mean_absence must be >= 1");
}

ChaosEngine::ChaosEngine(std::size_t n_clients, ChaosConfig cfg,
                         std::uint64_t seed)
    : cfg_(std::move(cfg)), seed_(seed) {
  cfg_.validate();
  tier_.assign(n_clients, 0);
  tier_mult_.assign(n_clients, 1.0);
  if (!cfg_.profile.tiers.empty()) {
    // Tier assignment: one keyed draw per client against the cumulative
    // tier fractions, so client i's device class is independent of n.
    for (std::size_t i = 0; i < n_clients; ++i) {
      Rng r = Rng::stream(seed_, stream_key(kTierSalt, i));
      const double u = r.uniform();
      double cum = 0.0;
      std::size_t t = cfg_.profile.tiers.size() - 1;
      for (std::size_t k = 0; k < cfg_.profile.tiers.size(); ++k) {
        cum += cfg_.profile.tiers[k].fraction;
        if (u < cum) {
          t = k;
          break;
        }
      }
      tier_[i] = static_cast<std::uint8_t>(t);
      tier_mult_[i] = cfg_.profile.tiers[t].latency_mult;
    }
  }
  if (cfg_.churn_leave_prob > 0.0) {
    churn_.reserve(n_clients);
    for (std::size_t i = 0; i < n_clients; ++i)
      churn_.push_back({Rng::stream(seed_, stream_key(kChurnSalt, i)), {}});
  }
}

bool ChaosEngine::client_up(std::size_t client, std::size_t round) {
  if (cfg_.churn_leave_prob <= 0.0) return true;
  ChurnSchedule& s = churn_[client];
  // Extend the alternating up/down schedule until it covers `round`.
  // Every client starts up; up durations are geometric with the leave
  // hazard, absences geometric with mean churn_mean_absence.
  while (s.seg_end.empty() || s.seg_end.back() <= round) {
    const bool up = s.seg_end.size() % 2 == 0;
    const double p =
        up ? cfg_.churn_leave_prob : 1.0 / cfg_.churn_mean_absence;
    const std::uint64_t len = geometric_len(s.rng, p);
    const std::uint64_t prev = s.seg_end.empty() ? 0 : s.seg_end.back();
    s.seg_end.push_back(prev + len);
  }
  const auto it =
      std::upper_bound(s.seg_end.begin(), s.seg_end.end(), round);
  const std::size_t seg = static_cast<std::size_t>(it - s.seg_end.begin());
  return seg % 2 == 0;
}

UplinkSim ChaosEngine::simulate_uplink(std::size_t client,
                                       std::size_t round) const {
  UplinkSim sim;
  const FaultProfile& p = cfg_.profile;
  if (p.none()) {
    // Deadline/churn-only configs: uplinks are instantaneous and clean.
    return sim;
  }
  Rng rng = Rng::stream(seed_, stream_key(kUplinkSalt, client, round));
  const double mu = std::log(std::max(p.latency_median_ms, 1e-9));
  const double mult = tier_mult_[client];
  const bool deadline = cfg_.deadline_ms > 0.0;
  double backoff = p.backoff_ms;
  // Draw order per attempt is frozen: latency normal, fault uniform, and
  // (for corrupting faults) one engine() word for the corruption site.
  for (std::size_t attempt = 1;; ++attempt) {
    sim.attempts = static_cast<std::uint32_t>(attempt);
    const double latency =
        p.latency_median_ms > 0.0
            ? mult * std::exp(rng.normal(mu, p.latency_sigma))
            : 0.0;
    sim.elapsed_ms += latency;
    const double u = rng.uniform();
    if (u < p.p_drop) {
      sim.corrupt = UplinkSim::Corrupt::kNone;
      if (attempt >= p.max_attempts) {
        sim.delivery = UplinkSim::Delivery::kLost;
        return sim;
      }
    } else if (u < p.p_drop + p.p_truncate + p.p_bitflip) {
      sim.corrupt = u < p.p_drop + p.p_truncate
                        ? UplinkSim::Corrupt::kTruncate
                        : UplinkSim::Corrupt::kBitFlip;
      sim.corrupt_pos = rng.engine()();
      if (attempt >= p.max_attempts) {
        // The mangled bytes did arrive; whether in budget decides
        // corrupt-reject vs straggler.
        sim.delivery = (deadline && sim.elapsed_ms > cfg_.deadline_ms)
                           ? UplinkSim::Delivery::kLate
                           : UplinkSim::Delivery::kCorrupt;
        return sim;
      }
    } else {
      sim.corrupt = UplinkSim::Corrupt::kNone;
      sim.delivery = (deadline && sim.elapsed_ms > cfg_.deadline_ms)
                         ? UplinkSim::Delivery::kLate
                         : UplinkSim::Delivery::kOnTime;
      return sim;
    }
    sim.elapsed_ms += backoff;
    backoff *= p.backoff_mult;
  }
}

const char* to_string(DegradeAction a) {
  switch (a) {
    case DegradeAction::kSkip:
      return "skip";
    case DegradeAction::kPrevAggregate:
      return "prev";
    case DegradeAction::kClippedMean:
      return "cmean";
  }
  return "?";
}

DegradeAction degrade_action_from_name(const std::string& name) {
  if (name == "skip") return DegradeAction::kSkip;
  if (name == "prev") return DegradeAction::kPrevAggregate;
  if (name == "cmean") return DegradeAction::kClippedMean;
  throw std::invalid_argument("chaos: unknown degrade action '" + name +
                              "' (want skip|prev|cmean)");
}

const char* to_string(RoundOutcome o) {
  switch (o) {
    case RoundOutcome::kProceed:
      return "proceed";
    case RoundOutcome::kFallbackClippedMean:
      return "fallback_cmean";
    case RoundOutcome::kFallbackPrevAggregate:
      return "fallback_prev";
    case RoundOutcome::kSkippedQuorum:
      return "skipped_quorum";
    case RoundOutcome::kSkippedNoHonest:
      return "skipped_no_honest";
  }
  return "?";
}

}  // namespace signguard::fl
