#include "fl/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <mutex>
#include <ostream>
#include <utility>

#include "aggregators/sharded.h"
#include "attacks/adaptive.h"
#include "attacks/wirecraft.h"
#include "comm/codec.h"
#include "common/format.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/table.h"
#include "fl/trainer.h"

namespace signguard::fl {

namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// JSON number formatting: %.12g round-trips every value this engine
// emits (accuracies, rates, probabilities) and is locale-independent.
std::string json_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string json_hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "\"0x%016llx\"",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      (out += '\\') += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      // Control characters (error strings come from arbitrary
      // exception::what()) must be escaped for the line to stay JSON.
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out += '"';
}

double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return double(ts.tv_sec) + 1e-9 * double(ts.tv_nsec);
#endif
  return 0.0;
}

}  // namespace

std::string ScenarioSpec::id() const {
  std::string s = workload_name(workload) + "/" + to_string(profile) +
                  "/a=" + attack + "/g=" + gar;
  s += "/part=" + (skew < 0.0 ? std::string("iid") : "s" + num(skew));
  s += "/byz=" + num(byzantine_frac);
  s += "/p=" + num(participation);
  s += "/drop=" + num(dropout_prob);
  s += "/strag=" + num(straggler_prob);
  // The transport segment appears only when the layer is on: "none"
  // scenarios keep their pre-transport ids (and with them their RNG
  // streams and golden traces) byte-for-byte.
  if (codec != "none") {
    s += "/codec=" + codec + "/ck=" + std::to_string(codec_chunk);
    if (codec == "topk") s += "/k=" + num(codec_k);
  }
  // Same gating for the sharding segment: flat scenarios (shards <= 1)
  // keep their pre-sharding ids and RNG streams.
  if (shards > 1) {
    s += "/shards=" + std::to_string(shards);
    if (shard_merge != "wmean") s += "/smerge=" + shard_merge;
  }
  // Chaos and quorum segments join the id only when their axis is on,
  // like the transport segment: fault-free scenarios keep their bytes.
  if (chaos_active()) {
    s += "/fault=" + fault;
    if (deadline_ms > 0.0) s += "/dl=" + num(deadline_ms);
    if (churn > 0.0)
      s += "/churn=" + num(churn) + "/abs=" + num(churn_absence);
  }
  if (quorum_active()) {
    s += "/qmin=" + std::to_string(quorum_min);
    if (quorum_survivors > 0)
      s += "/qsurv=" + std::to_string(quorum_survivors);
    if (quorum_action != "cmean") s += "/qact=" + quorum_action;
  }
  // Adversary segments under the same gating: adversary-free scenarios —
  // every committed golden among them — keep their exact ids.
  if (adversary_active()) {
    if (adaptive) s += "/adapt=1";
    if (wirecraft) s += "/wc=1";
    if (collude > 0.0) s += "/collude=" + num(collude);
  }
  s += "/r=" + std::to_string(rounds);
  s += "/n=" + std::to_string(n_clients);
  s += "/seed=" + std::to_string(seed);
  return s;
}

std::uint64_t ScenarioSpec::rng_seed() const {
  // The engine's streams are exactly Rng::stream(seed, fnv1a64(id())):
  // root = the user-facing sweep seed, key = the scenario's identity.
  return common::stream_seed(seed, common::fnv1a64(id()));
}

std::size_t SweepGrid::size() const {
  return workloads.size() * attacks.size() * gars.size() * skews.size() *
         byzantine_fracs.size() * participations.size() *
         dropout_probs.size() * straggler_probs.size() * codecs.size() *
         shard_counts.size() * faults.size() * deadlines.size() *
         churns.size() * adaptives.size() * wirecrafts.size() *
         colludes.size();
}

std::vector<ScenarioSpec> SweepGrid::expand() const {
  std::vector<ScenarioSpec> specs;
  specs.reserve(size());
  for (const auto workload : workloads)
    for (const auto& attack : attacks)
      for (const auto& gar : gars)
        for (const double skew : skews)
          for (const double byz : byzantine_fracs)
            for (const double part : participations)
              for (const double drop : dropout_probs)
                for (const double strag : straggler_probs)
                  for (const auto& codec : codecs)
                    for (const auto shards : shard_counts)
                      for (const auto& fault : faults)
                        for (const double deadline : deadlines)
                          for (const double churn : churns)
                            for (const bool adapt : adaptives)
                              for (const bool wc : wirecrafts)
                                for (const double collude : colludes) {
                                  ScenarioSpec s;
                                  s.workload = workload;
                                  s.profile = profile;
                                  s.attack = attack;
                                  s.gar = gar;
                                  s.skew = skew;
                                  s.byzantine_frac = byz;
                                  s.participation = part;
                                  s.dropout_prob = drop;
                                  s.straggler_prob = strag;
                                  s.codec = codec;
                                  s.codec_chunk = codec_chunk;
                                  s.codec_k = codec_k;
                                  s.shards = shards;
                                  s.shard_merge = shard_merge;
                                  s.fault = fault;
                                  s.deadline_ms = deadline;
                                  s.churn = churn;
                                  s.churn_absence = churn_absence;
                                  s.quorum_min = quorum_min;
                                  s.quorum_survivors = quorum_survivors;
                                  s.quorum_action = quorum_action;
                                  s.adaptive = adapt;
                                  s.wirecraft = wc;
                                  s.collude = collude;
                                  s.rounds = rounds;
                                  s.n_clients = n_clients;
                                  s.seed = seed;
                                  specs.push_back(std::move(s));
                                }
  return specs;
}

namespace {

// Folds one round's deterministic accounting into the running trace
// checksum.
std::uint64_t fold_round(std::uint64_t state, const RoundTrace& t) {
  const std::uint64_t words[] = {t.round,
                                 t.aggregate_checksum,
                                 t.participants,
                                 t.byzantine,
                                 t.dropped,
                                 t.stragglers,
                                 t.selected,
                                 t.skipped ? 1ULL : 0ULL};
  state = common::fnv1a64(words, sizeof words, state);
  // Shard accounting joins the fold only on sharded rounds: the flat
  // path's word set is pinned by the committed goldens.
  if (t.shards > 0) {
    const std::uint64_t shard_words[] = {t.shards, t.shard_survivor_sum};
    state = common::fnv1a64(shard_words, sizeof shard_words, state);
  }
  // Chaos accounting joins only for chaos scenarios, and the outcome
  // word only under a quorum policy — same gating discipline, so
  // fault-free goldens keep their pinned word set.
  if (t.chaos) {
    std::uint64_t ms_bits;
    std::memcpy(&ms_bits, &t.sim_round_ms, sizeof ms_bits);
    const std::uint64_t chaos_words[] = {t.churned, t.deadline_misses,
                                         t.lost_uplinks, t.uplink_attempts,
                                         ms_bits};
    state = common::fnv1a64(chaos_words, sizeof chaos_words, state);
  }
  if (t.quorum) {
    const std::uint64_t outcome_word[] = {
        static_cast<std::uint64_t>(t.outcome)};
    state = common::fnv1a64(outcome_word, sizeof outcome_word, state);
  }
  return state;
}

// RoundTrace round-trip for the sweep checkpoint's extra blob: a resumed
// scenario must re-emit the already-traced rounds byte-identically, so
// the captured traces ride inside the trainer checkpoint.
void write_trace(common::ByteWriter& w, const RoundTrace& t) {
  w.u64(t.round);
  w.u64(t.aggregate_checksum);
  w.u64(t.participants);
  w.u64(t.byzantine);
  w.u64(t.dropped);
  w.u64(t.stragglers);
  w.u64(t.selected);
  w.u64(t.decode_rejects);
  w.u64(t.shards);
  w.u64(t.shard_survivor_sum);
  w.u64(t.churned);
  w.u64(t.deadline_misses);
  w.u64(t.lost_uplinks);
  w.u64(t.uplink_attempts);
  w.f64(t.sim_round_ms);
  w.u8(static_cast<std::uint8_t>(t.outcome));
  w.u8(t.chaos ? 1 : 0);
  w.u8(t.quorum ? 1 : 0);
  w.u8(t.test_accuracy.has_value() ? 1 : 0);
  if (t.test_accuracy) w.f64(*t.test_accuracy);
  w.u8(t.skipped ? 1 : 0);
}

RoundTrace read_trace(common::ByteReader& r) {
  RoundTrace t;
  t.round = r.u64();
  t.aggregate_checksum = r.u64();
  t.participants = r.u64();
  t.byzantine = r.u64();
  t.dropped = r.u64();
  t.stragglers = r.u64();
  t.selected = r.u64();
  t.decode_rejects = r.u64();
  t.shards = r.u64();
  t.shard_survivor_sum = r.u64();
  t.churned = r.u64();
  t.deadline_misses = r.u64();
  t.lost_uplinks = r.u64();
  t.uplink_attempts = r.u64();
  t.sim_round_ms = r.f64();
  t.outcome = static_cast<RoundOutcome>(r.u8());
  t.chaos = r.u8() != 0;
  t.quorum = r.u8() != 0;
  if (r.u8() != 0) t.test_accuracy = r.f64();
  t.skipped = r.u8() != 0;
  return t;
}

ScenarioResult run_scenario(const ScenarioSpec& spec, const Workload& w,
                            const SweepOptions& opts) {
  ScenarioResult r;
  r.spec = spec;

  TrainerConfig cfg = w.config;
  if (spec.rounds > 0) cfg.rounds = spec.rounds;
  if (spec.n_clients > 0) cfg.n_clients = spec.n_clients;
  cfg.byzantine_frac = spec.byzantine_frac;
  cfg.participation = spec.participation;
  cfg.dropout_prob = spec.dropout_prob;
  cfg.straggler_prob = spec.straggler_prob;
  cfg.noniid = spec.skew >= 0.0;
  if (cfg.noniid) cfg.noniid_s = spec.skew;
  cfg.seed = spec.rng_seed();
  r.resolved_rounds = cfg.rounds;
  r.resolved_clients = cfg.n_clients;

  const auto wall0 = std::chrono::steady_clock::now();
  const double cpu0 = thread_cpu_seconds();
  // Declared ahead of the try so the checkpoint extra-blob lambdas (which
  // outlive this scope inside the TrainerConfig) can capture it.
  std::uint64_t fold = common::kFnvOffsetBasis;
  // Scenario-local counter registry (src/obs), likewise captured by the
  // checkpoint lambdas: its per-round records ride in the extra blob so
  // a resumed scenario re-emits a byte-identical "obs" JSONL block.
  std::optional<obs::MetricsRegistry> reg;
  if (opts.obs_counters || opts.obs_timing) reg.emplace(opts.obs_timing);
  r.obs_counters = reg.has_value();
  r.obs_timing = opts.obs_timing;
  try {
    // Inside the try: an unknown codec name or degenerate chunk/k is a
    // per-scenario error, not a sweep abort.
    cfg.compression.codec = comm::codec_kind_from_name(spec.codec);
    cfg.compression.chunk = spec.codec_chunk;
    cfg.compression.k_fraction = spec.codec_k;
    // Chaos / quorum axes (an unknown profile or action name is likewise
    // a per-scenario error).
    cfg.chaos.profile = fault_profile_from_name(spec.fault);
    cfg.chaos.deadline_ms = spec.deadline_ms;
    cfg.chaos.churn_leave_prob = spec.churn;
    cfg.chaos.churn_mean_absence = spec.churn_absence;
    cfg.quorum.min_participants = spec.quorum_min;
    cfg.quorum.min_survivors = spec.quorum_survivors;
    cfg.quorum.action = degrade_action_from_name(spec.quorum_action);
    const bool chaos_scn = cfg.chaos.active();
    const bool quorum_scn = cfg.quorum.active();
    if (!opts.checkpoint_dir.empty()) {
      // One checkpoint file per scenario, named by its id hash: the id is
      // the canonical key, and hashing keeps the filename filesystem-safe
      // at any grid size.
      char hex[17];
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(
                        common::fnv1a64(spec.id())));
      cfg.checkpoint.path = opts.checkpoint_dir + "/" + hex + ".ckpt";
      cfg.checkpoint.every = opts.checkpoint_every;
      cfg.checkpoint.resume = opts.resume;
      cfg.checkpoint.halt_after_round = opts.halt_after_round;
      // The observer's fold state and captured traces ride in the
      // checkpoint's extra blob, so a resumed scenario replays its JSONL
      // byte-identically. &r / &fold outlive trainer.run below.
      cfg.checkpoint.save_extra = [&r, &fold, &reg](common::ByteWriter& w) {
        w.u64(fold);
        w.u64(r.skipped_rounds);
        w.u64(r.dropped_total);
        w.u64(r.straggler_total);
        w.u64(r.rounds.size());
        for (const RoundTrace& t : r.rounds) write_trace(w, t);
        // The registry serializes the still-open round as a snapshot
        // identical to the record end_round will push (nothing counts
        // between a round's save and its end_round), so a kill+resume
        // reconstructs bitwise-identical counter records.
        w.u8(reg ? 1 : 0);
        if (reg) reg->serialize(w);
      };
      cfg.checkpoint.load_extra = [&r, &fold, &reg](common::ByteReader& rd) {
        fold = rd.u64();
        r.skipped_rounds = rd.u64();
        r.dropped_total = rd.u64();
        r.straggler_total = rd.u64();
        const std::uint64_t n_traces = rd.u64();
        r.rounds.clear();
        for (std::uint64_t i = 0; i < n_traces; ++i)
          r.rounds.push_back(read_trace(rd));
        if (rd.u8() != 0) {
          // The checkpoint carries counter state; restore it, or drain
          // it into a throwaway registry when this run has obs off (the
          // blob must be consumed either way).
          obs::MetricsRegistry scratch(false);
          (reg ? *reg : scratch).restore(rd);
        }
      };
    }
    if (reg) cfg.metrics = &*reg;
    Trainer trainer(w.data, w.model_factory, cfg);
    auto attack = make_attack(spec.attack);
    // Adversary-axis wrappers, innermost first: amplitude adaptation
    // steers the base attack from round feedback, wire crafting then
    // snaps the (possibly rescaled) rows onto this scenario's codec
    // fixed points — wirecraft wraps OUTSIDE adaptive so the emitted
    // amplitudes are always wire-legal no matter where the gain search
    // wanders — and the chaos-colluding scheduler (outermost) decides
    // who sends it. Feedback flows through every layer either way. The
    // collude stream root is a stateless key off the scenario seed, like
    // the GAR/shard seeds above.
    if (spec.adaptive)
      attack = std::make_unique<attacks::AdaptiveAttack>(std::move(attack));
    if (spec.wirecraft)
      attack = std::make_unique<attacks::WirecraftAttack>(std::move(attack),
                                                          cfg.compression);
    if (spec.collude > 0.0)
      attack = std::make_unique<attacks::ChaosColludeAttack>(
          std::move(attack), common::splitmix64(cfg.seed ^ 0xc0117deULL),
          spec.collude);
    auto gar =
        make_aggregator(spec.gar, common::splitmix64(cfg.seed ^ 0x6a5ULL));
    if (spec.shards > 1) {
      // The sharded wrapper replaces the flat rule; per-shard instances
      // come from the same factory, seeded off the wrapper seed. An
      // unknown merge name throws here — a per-scenario error.
      agg::ShardedConfig scfg;
      scfg.shards = spec.shards;
      scfg.merge = agg::shard_merge_from_name(spec.shard_merge);
      const std::string inner = spec.gar;
      gar = std::make_unique<agg::ShardedAggregator>(
          [inner](std::uint64_t s) { return make_aggregator(inner, s); },
          common::splitmix64(cfg.seed ^ 0x5d17ULL), scfg);
    }

    const auto observer = [&](const RoundObservation& obs) {
      RoundTrace t;
      t.round = obs.round;
      if (!obs.skipped && !obs.aggregate.empty())
        t.aggregate_checksum = common::fnv1a64(
            obs.aggregate.data(), obs.aggregate.size() * sizeof(float));
      t.participants = obs.participants;
      t.byzantine = obs.byzantine;
      t.dropped = obs.dropped;
      t.stragglers = obs.stragglers;
      t.selected = obs.selected.size();
      t.decode_rejects = obs.decode_rejects;
      t.shards = obs.shards;
      for (const std::size_t sv : obs.shard_survivors)
        t.shard_survivor_sum += sv;
      t.churned = obs.churned;
      t.deadline_misses = obs.deadline_misses;
      t.lost_uplinks = obs.lost_uplinks;
      t.uplink_attempts = obs.uplink_attempts;
      t.sim_round_ms = obs.sim_round_ms;
      t.outcome = obs.outcome;
      t.chaos = chaos_scn;
      t.quorum = quorum_scn;
      t.test_accuracy = obs.test_accuracy;
      t.skipped = obs.skipped;
      fold = fold_round(fold, t);
      if (t.skipped) ++r.skipped_rounds;
      r.dropped_total += t.dropped;
      r.straggler_total += t.stragglers;
      if (opts.capture_rounds) r.rounds.push_back(std::move(t));
    };

    const TrainingResult res = trainer.run(*attack, std::move(gar), observer);
    r.final_accuracy = res.final_accuracy;
    r.best_accuracy = res.best_accuracy;
    if (res.selection.rounds > 0) {
      r.honest_pass_rate = res.selection.honest_rate;
      r.malicious_pass_rate = res.selection.malicious_rate;
    }
    r.uplink_bytes = res.uplink_bytes;
    r.uplink_dense_bytes = res.uplink_dense_bytes;
    r.decode_rejects = res.decode_rejects;
    r.uplink_decoded_bytes = res.uplink_decoded_bytes;
    r.churned_total = res.churned_total;
    r.deadline_miss_total = res.deadline_miss_total;
    r.lost_uplink_total = res.lost_uplink_total;
    r.uplink_attempts = res.uplink_attempts;
    r.sim_time_ms = res.sim_time_ms;
    r.fallback_cmean_rounds = res.fallback_cmean_rounds;
    r.fallback_prev_rounds = res.fallback_prev_rounds;
    r.halted = res.halted;
    if (res.uplink_bytes > 0)
      r.compression_ratio = static_cast<float>(
          double(res.uplink_dense_bytes) / double(res.uplink_bytes));
    r.trace_checksum = fold;
    if (reg) r.obs_rounds = reg->rounds();
  } catch (const std::exception& e) {
    r.error = e.what();
  }
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  r.cpu_seconds = thread_cpu_seconds() - cpu0;
  return r;
}

}  // namespace

std::vector<ScenarioResult> run_sweep(std::vector<ScenarioSpec> specs,
                                      const SweepOptions& opts) {
  // Canonical order: the result vector and the streamed JSONL are sorted
  // by scenario id, so output is independent of submission order. Ids
  // are built once per spec (decorate-sort), not per comparison.
  {
    std::vector<std::pair<std::string, ScenarioSpec>> keyed;
    keyed.reserve(specs.size());
    for (auto& s : specs) keyed.emplace_back(s.id(), std::move(s));
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    specs.clear();
    for (auto& kv : keyed) specs.push_back(std::move(kv.second));
  }
  const std::size_t n = specs.size();
  std::vector<ScenarioResult> results(n);
  if (n == 0) return results;

  // Datasets are shared: one Workload per distinct (kind, profile),
  // built sequentially before the parallel region.
  std::map<std::pair<int, int>, Workload> workloads;
  for (const auto& s : specs) {
    const auto key = std::make_pair(int(s.workload), int(s.profile));
    if (!workloads.count(key))
      workloads.emplace(key, make_workload(s.workload, s.profile, opts.scale));
  }

  std::mutex emit_mu;
  std::vector<char> finished(n, 0);
  std::size_t emitted = 0, done = 0;
  const auto finish = [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(emit_mu);
    finished[i] = 1;
    ++done;
    if (opts.progress) opts.progress(done, n, results[i]);
    // Flush the completed prefix: JSONL streams in canonical order.
    while (emitted < n && finished[emitted]) {
      if (opts.jsonl)
        write_jsonl_line(*opts.jsonl, results[emitted], opts.include_timing);
      ++emitted;
    }
  };
  const auto run_one = [&](std::size_t i) {
    const auto& s = specs[i];
    const auto& w =
        workloads.at(std::make_pair(int(s.workload), int(s.profile)));
    results[i] = run_scenario(s, w, opts);
    finish(i);
  };

  if (n == 1) {
    // A single scenario keeps the pool for its own nested kernels instead
    // of being pinned to one worker.
    run_one(0);
    return results;
  }

  // One lane per pool worker; lanes drain a shared atomic queue so long
  // and short scenarios balance. Each scenario runs entirely inside its
  // lane (nested parallelism is inline), so scheduling cannot affect the
  // results.
  std::atomic<std::size_t> next{0};
  common::parallel_chunks(
      std::min(common::thread_count(), n),
      [&](std::size_t, std::size_t, std::size_t) {
        for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1))
          run_one(i);
      });
  return results;
}

void write_jsonl_line(std::ostream& os, const ScenarioResult& r,
                      bool include_timing) {
  const ScenarioSpec& s = r.spec;
  std::string line = "{";
  line += "\"id\":" + json_str(s.id());
  line += ",\"workload\":" + json_str(workload_name(s.workload));
  line += ",\"profile\":" + json_str(to_string(s.profile));
  line += ",\"attack\":" + json_str(s.attack);
  line += ",\"gar\":" + json_str(s.gar);
  line += ",\"partition\":";
  line += s.skew < 0.0 ? "\"iid\"" : "\"noniid\"";
  if (s.skew >= 0.0) line += ",\"skew\":" + json_num(s.skew);
  line += ",\"byzantine_frac\":" + json_num(s.byzantine_frac);
  line += ",\"participation\":" + json_num(s.participation);
  line += ",\"dropout\":" + json_num(s.dropout_prob);
  line += ",\"straggler\":" + json_num(s.straggler_prob);
  line += ",\"rounds\":" + std::to_string(r.resolved_rounds);
  line += ",\"n_clients\":" + std::to_string(r.resolved_clients);
  line += ",\"seed\":" + std::to_string(s.seed);
  line += ",\"error\":";
  line += r.error.empty() ? "null" : json_str(r.error);
  line += ",\"final_accuracy\":" + json_num(r.final_accuracy);
  line += ",\"best_accuracy\":" + json_num(r.best_accuracy);
  line += ",\"honest_pass_rate\":";
  line += r.honest_pass_rate < 0.0 ? "null" : json_num(r.honest_pass_rate);
  line += ",\"malicious_pass_rate\":";
  line +=
      r.malicious_pass_rate < 0.0 ? "null" : json_num(r.malicious_pass_rate);
  line += ",\"skipped_rounds\":" + std::to_string(r.skipped_rounds);
  line += ",\"dropped\":" + std::to_string(r.dropped_total);
  line += ",\"stragglers\":" + std::to_string(r.straggler_total);
  // Transport fields only when the layer is on, so codec "none" lines —
  // the committed golden traces among them — keep their exact bytes.
  // compression_ratio is a float32 printed with %.9g: parsing it back
  // with strtof recovers the stored value bit-exactly.
  if (s.codec != "none") {
    line += ",\"codec\":" + json_str(s.codec);
    line += ",\"codec_chunk\":" + std::to_string(s.codec_chunk);
    if (s.codec == "topk") line += ",\"codec_k\":" + json_num(s.codec_k);
    line += ",\"uplink_bytes\":" + std::to_string(r.uplink_bytes);
    line += ",\"uplink_dense_bytes\":" + std::to_string(r.uplink_dense_bytes);
    line += ",\"compression_ratio\":" + common::fmt_float(r.compression_ratio);
    line += ",\"decode_rejects\":" + std::to_string(r.decode_rejects);
    line += ",\"uplink_decoded_bytes\":" +
            std::to_string(r.uplink_decoded_bytes);
  }
  // Sharding fields only on sharded scenarios, mirroring the codec
  // gating: flat lines keep their exact pre-sharding bytes.
  if (s.shards > 1) {
    line += ",\"shards\":" + std::to_string(s.shards);
    line += ",\"shard_merge\":" + json_str(s.shard_merge);
  }
  // Chaos / quorum blocks under the same gating: fault-free,
  // policy-free lines — the goldens — keep their exact bytes.
  if (s.chaos_active()) {
    line += ",\"fault\":" + json_str(s.fault);
    if (s.deadline_ms > 0.0)
      line += ",\"deadline_ms\":" + json_num(s.deadline_ms);
    if (s.churn > 0.0) {
      line += ",\"churn\":" + json_num(s.churn);
      line += ",\"churn_absence\":" + json_num(s.churn_absence);
    }
    line += ",\"churned\":" + std::to_string(r.churned_total);
    line += ",\"deadline_misses\":" + std::to_string(r.deadline_miss_total);
    line += ",\"lost_uplinks\":" + std::to_string(r.lost_uplink_total);
    line += ",\"uplink_attempts\":" + std::to_string(r.uplink_attempts);
    line += ",\"sim_time_ms\":" + json_num(r.sim_time_ms);
  }
  if (s.quorum_active()) {
    line += ",\"quorum_min\":" + std::to_string(s.quorum_min);
    line += ",\"quorum_survivors\":" + std::to_string(s.quorum_survivors);
    line += ",\"quorum_action\":" + json_str(s.quorum_action);
    line += ",\"fallback_cmean_rounds\":" +
            std::to_string(r.fallback_cmean_rounds);
    line += ",\"fallback_prev_rounds\":" +
            std::to_string(r.fallback_prev_rounds);
  }
  // Adversary block under the same gating: adversary-free lines — all
  // committed goldens — keep their exact bytes.
  if (s.adversary_active()) {
    line += ",\"adaptive\":";
    line += s.adaptive ? "true" : "false";
    line += ",\"wirecraft\":";
    line += s.wirecraft ? "true" : "false";
    if (s.collude > 0.0) line += ",\"collude\":" + json_num(s.collude);
  }
  if (r.halted) line += ",\"halted\":true";
  line += ",\"trace_checksum\":" + json_hex(r.trace_checksum);
  if (!r.rounds.empty()) {
    line += ",\"round_checksums\":[";
    for (std::size_t i = 0; i < r.rounds.size(); ++i) {
      if (i > 0) line += ',';
      line += json_hex(r.rounds[i].aggregate_checksum);
    }
    line += ']';
  }
  // Observability block, gated exactly like the codec/shards/fault
  // blocks: absent with obs off, so existing goldens keep their bytes.
  // "c" holds the round's nonzero work counters keyed "<stage>.<counter>"
  // in stage-major canonical order (deterministic — the CI thread-diff
  // target); "ms" the per-stage wall-clock, only under obs_timing.
  if (r.obs_counters && !r.obs_rounds.empty()) {
    line += ",\"obs\":[";
    for (std::size_t i = 0; i < r.obs_rounds.size(); ++i) {
      const obs::RoundCost& rc = r.obs_rounds[i];
      if (i > 0) line += ',';
      line += "{\"r\":" + std::to_string(rc.round) + ",\"c\":{";
      bool first = true;
      for (std::size_t st = 0; st < obs::kNumStages; ++st)
        for (std::size_t c = 0; c < obs::kNumCounters; ++c) {
          if (rc.counters[st][c] == 0) continue;
          if (!first) line += ',';
          first = false;
          line += '"';
          line += obs::to_string(obs::Stage(st));
          line += '.';
          line += obs::to_string(obs::Counter(c));
          line += "\":" + std::to_string(rc.counters[st][c]);
        }
      line += '}';
      if (r.obs_timing) {
        line += ",\"ms\":{";
        first = true;
        for (std::size_t st = 0; st < obs::kNumStages; ++st) {
          if (rc.stage_ms[st] == 0.0) continue;
          if (!first) line += ',';
          first = false;
          line += '"';
          line += obs::to_string(obs::Stage(st));
          line += "\":" + json_num(rc.stage_ms[st]);
        }
        line += '}';
      }
      line += '}';
    }
    line += ']';
  }
  if (include_timing) {
    line += ",\"wall_s\":" + json_num(r.wall_seconds);
    line += ",\"cpu_s\":" + json_num(r.cpu_seconds);
  }
  line += "}\n";
  os << line << std::flush;
}

std::string summary_table(const std::vector<ScenarioResult>& results) {
  // Group key: every grid dimension except attack and GAR.
  const auto group_of = [](const ScenarioResult& r) {
    const ScenarioSpec& s = r.spec;
    std::string g = workload_name(s.workload) + " (" + to_string(s.profile);
    g += s.skew < 0.0 ? ", iid" : ", noniid s=" + num(s.skew);
    g += ", byz=" + num(s.byzantine_frac);
    if (s.participation < 1.0) g += ", p=" + num(s.participation);
    if (s.dropout_prob > 0.0) g += ", drop=" + num(s.dropout_prob);
    if (s.straggler_prob > 0.0) g += ", strag=" + num(s.straggler_prob);
    if (s.codec != "none") g += ", codec=" + s.codec;
    if (s.shards > 1) g += ", shards=" + std::to_string(s.shards);
    if (s.fault != "none") g += ", fault=" + s.fault;
    if (s.deadline_ms > 0.0) g += ", dl=" + num(s.deadline_ms);
    if (s.churn > 0.0) g += ", churn=" + num(s.churn);
    if (s.quorum_active()) g += ", qmin=" + std::to_string(s.quorum_min);
    if (s.adaptive) g += ", adaptive";
    if (s.wirecraft) g += ", wirecraft";
    if (s.collude > 0.0) g += ", collude=" + num(s.collude);
    g += ", rounds=" + std::to_string(r.resolved_rounds);
    g += ", n=" + std::to_string(r.resolved_clients);
    g += ", seed=" + std::to_string(s.seed) + ")";
    return g;
  };

  // First-appearance orders keep the output aligned with the canonical
  // result order.
  std::vector<std::string> groups;
  std::map<std::string, std::vector<const ScenarioResult*>> by_group;
  for (const auto& r : results) {
    const std::string g = group_of(r);
    if (!by_group.count(g)) groups.push_back(g);
    by_group[g].push_back(&r);
  }

  std::string out;
  for (const auto& g : groups) {
    const auto& members = by_group[g];
    std::vector<std::string> attacks, gars;
    for (const auto* r : members) {
      if (std::find(attacks.begin(), attacks.end(), r->spec.attack) ==
          attacks.end())
        attacks.push_back(r->spec.attack);
      if (std::find(gars.begin(), gars.end(), r->spec.gar) == gars.end())
        gars.push_back(r->spec.gar);
    }
    std::vector<std::string> header = {"GAR"};
    header.insert(header.end(), attacks.begin(), attacks.end());
    TextTable table(header);
    for (const auto& gar : gars) {
      std::vector<std::string> row = {gar};
      for (const auto& attack : attacks) {
        std::string cell = "-";
        for (const auto* r : members) {
          if (r->spec.gar != gar || r->spec.attack != attack) continue;
          cell = r->error.empty() ? TextTable::fmt(r->best_accuracy) : "ERR";
          break;
        }
        row.push_back(std::move(cell));
      }
      table.add_row(std::move(row));
    }
    out += "[" + g + "]\n" + table.to_string() + "\n";
  }
  return out;
}

}  // namespace signguard::fl
