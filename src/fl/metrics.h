#pragma once
// Training metrics: accuracy evaluation, per-round history, best-accuracy
// tracking (Table I reports best achieved test accuracy), attack impact
// (Definition 3), and honest/malicious selection-rate accounting
// (Table II).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "nn/model.h"

namespace signguard::fl {

struct RoundRecord {
  std::size_t round = 0;
  double test_accuracy = 0.0;
};

// Average fraction of honest / malicious gradients admitted to the trusted
// set by a selecting aggregation rule, over the rounds where selection
// information was reported.
struct SelectionStats {
  double honest_rate = 0.0;
  double malicious_rate = 0.0;
  std::size_t rounds = 0;

  void accumulate(std::span<const std::size_t> selected,
                  std::size_t n_byzantine, std::size_t n_total);
};

struct TrainingResult {
  std::vector<RoundRecord> history;
  double best_accuracy = 0.0;
  double final_accuracy = 0.0;
  SelectionStats selection;
  // Uplink transport totals over the whole run (zero while the transport
  // layer is off): encoded bytes actually sent, the float32 cost of the
  // same updates, and how many uplinks the wire decoder rejected.
  std::uint64_t uplink_bytes = 0;
  std::uint64_t uplink_dense_bytes = 0;
  std::size_t decode_rejects = 0;
  // Dense bytes the server-side aggregation pipeline materialized from
  // accepted uplinks: every accepted uplink's 4d on the decode path,
  // only the trusted set's on the compressed-domain SignGuard path
  // (SIGNGUARD_WIREPATH) — the whole point of filtering on wire bytes.
  std::uint64_t uplink_decoded_bytes = 0;
  // Degradation accounting (fl/chaos.h): rounds that did not apply a
  // normal aggregate. skipped_rounds counts every skip (quorum-starved
  // plus the no-honest-participant skips that predate the chaos engine);
  // the fallback counters split out the quorum policy's degraded-but-
  // applied rounds. Sweep summaries read these directly — skipped rounds
  // used to be visible only through the per-round observer.
  std::size_t skipped_rounds = 0;
  std::size_t fallback_cmean_rounds = 0;
  std::size_t fallback_prev_rounds = 0;
  // Chaos totals over the run (zero while the chaos engine is off).
  std::size_t churned_total = 0;         // client-rounds missed to churn
  std::size_t deadline_miss_total = 0;   // uplinks that became stragglers
  std::size_t lost_uplink_total = 0;     // uplinks dropped on every attempt
  std::uint64_t uplink_attempts = 0;     // transmissions incl. retries
  double sim_time_ms = 0.0;              // summed simulated round time
  // True when the run stopped early at CheckpointConfig::halt_after_round
  // (the simulated-kill switch) rather than completing cfg.rounds.
  bool halted = false;
};

// Definition 3: attack impact = baseline accuracy - achieved accuracy.
double attack_impact(double baseline_accuracy, double achieved_accuracy);

// Test accuracy (percent) of `model` with its current parameters, over at
// most `max_samples` test samples (0 = all), evaluated in mini-batches.
double evaluate_accuracy(nn::Model& model, const data::Dataset& test,
                         std::size_t batch_size = 256,
                         std::size_t max_samples = 0);

}  // namespace signguard::fl
