#include "fl/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>

#include "aggregators/sharded.h"
#include "comm/stats.h"
#include "comm/wire.h"
#include "common/gradient_matrix.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/vecops.h"
#include "core/filters.h"
#include "core/signguard.h"
#include "fl/client.h"
#include "fl/server.h"
#include "obs/trace.h"

namespace signguard::fl {

Trainer::Trainer(const data::TrainTest& data, ModelFactory model_factory,
                 TrainerConfig cfg)
    : data_(data), model_factory_(std::move(model_factory)), cfg_(cfg) {
  // Loud validation in every build type: a degenerate configuration must
  // fail at construction, not crash (or silently misbehave) mid-round.
  if (cfg_.n_clients == 0)
    throw std::invalid_argument("TrainerConfig: n_clients must be > 0");
  if (!(cfg_.byzantine_frac >= 0.0 && cfg_.byzantine_frac < 0.5))
    throw std::invalid_argument(
        "TrainerConfig: byzantine_frac must be in [0, 0.5); a Byzantine "
        "majority (up to m == n) is outside the paper's threat model");
  if (!(cfg_.participation > 0.0 && cfg_.participation <= 1.0))
    throw std::invalid_argument(
        "TrainerConfig: participation must be in (0, 1]; a round that "
        "samples zero clients cannot make progress");
  if (!(cfg_.dropout_prob >= 0.0 && cfg_.dropout_prob <= 1.0) ||
      !(cfg_.straggler_prob >= 0.0 && cfg_.straggler_prob <= 1.0))
    throw std::invalid_argument(
        "TrainerConfig: dropout_prob / straggler_prob must be in [0, 1]");
  if (cfg_.rounds == 0)
    throw std::invalid_argument("TrainerConfig: rounds must be > 0");
  cfg_.chaos.validate();
  if (cfg_.checkpoint.active() && cfg_.checkpoint.every == 0)
    throw std::invalid_argument(
        "TrainerConfig: checkpoint.every must be >= 1 when checkpointing");
  // A degenerate compression spec must also fail here, not mid-round:
  // building the codec is cheap and runs every validation make_codec has.
  comm::make_codec(cfg_.compression);
  n_byz_ = static_cast<std::size_t>(
      std::round(cfg_.byzantine_frac * double(cfg_.n_clients)));
}

TrainingResult Trainer::run(attacks::Attack& attack,
                            std::unique_ptr<agg::Aggregator> gar,
                            const RoundObserver& observer) {
  // Attach the (possibly null) counter registry to this thread for the
  // whole run; pool helpers inherit it through common::task_context, so
  // every obs::count below — trainer-level or deep inside a kernel —
  // lands in the same per-round record regardless of SIGNGUARD_THREADS.
  obs::ScopedMetrics obs_scope(cfg_.metrics);
  Rng rng(cfg_.seed);
  Rng attack_rng = rng.split();
  Rng gar_rng = rng.split();

  // Partition the training data over the clients.
  data::ClientIndices shards =
      cfg_.noniid
          ? data::noniid_partition(data_.train, cfg_.n_clients, cfg_.noniid_s,
                                   rng)
          : data::iid_partition(data_.train.size(), cfg_.n_clients, rng);

  std::vector<Client> clients;
  clients.reserve(cfg_.n_clients);
  for (std::size_t i = 0; i < cfg_.n_clients; ++i)
    clients.emplace_back(&data_.train, std::move(shards[i]),
                         rng.split().engine()());

  // Scratch models for the parallel client loop: every client evaluates
  // the same global parameters each round, and client-level local
  // training fans out over the thread pool (clients are independent —
  // their rng, loss stats and momentum buffers are per-client, so
  // results are identical for any SIGNGUARD_THREADS). Models are grown
  // on demand to min(pool size, participants), re-checked per round in
  // case the pool is resized mid-run. A deque keeps references to
  // existing models stable across growth.
  std::deque<nn::Model> worker_models;
  auto ensure_models = [&](std::size_t count) {
    while (worker_models.size() < count)
      worker_models.push_back(model_factory_(cfg_.seed));
  };
  ensure_models(1);
  nn::Model& model = worker_models.front();
  const std::size_t dim = model.parameter_count();
  Server server(std::move(gar), model.parameters(), cfg_.lr, cfg_.momentum);

  const std::size_t n = cfg_.n_clients;
  const std::size_t m = n_byz_;
  Rng participation_rng = rng.split();
  Rng failure_rng = rng.split();

  // Chaos engine (fl/chaos.h): seeded from its own keyed stream under the
  // config seed — never from `rng` — so enabling it leaves every draw
  // above (and the legacy failure stream) untouched. Its transport faults
  // need wire buffers, so a non-none profile forces the transport on.
  const bool chaos_on = cfg_.chaos.active();
  const bool chaos_transport = chaos_on && !cfg_.chaos.profile.none();
  std::optional<ChaosEngine> chaos;
  if (chaos_on)
    chaos.emplace(n, cfg_.chaos,
                  common::stream_seed(
                      cfg_.seed, common::fnv1a64("signguard.chaos")));
  const bool quorum_on = cfg_.quorum.active();

  TrainingResult result;
  // Round buffers, allocated once and reused: the m_round Byzantine rows
  // lead (so selection accounting can attribute them), benign rows
  // follow. byz_honest holds what the Byzantine clients would honestly
  // send — the attack's raw material. late_grads receives straggler
  // gradients: computed (the client's state advances) but discarded
  // before aggregation.
  common::GradientMatrix round_grads;
  common::GradientMatrix byz_honest;
  common::GradientMatrix late_grads;
  // Selection / view scratch, reused round to round (the per-batch NN
  // path below is allocation-free via the per-worker model workspaces).
  std::vector<std::size_t> byz_sel, benign_sel, benign_late, sampled, active;
  std::vector<attacks::GradientView> benign_views;

  // Uplink transport (src/comm): active when a codec is configured, a
  // tamper hook wants to exercise the wire path, or the chaos engine
  // injects transport faults. Every participating row is encoded into
  // its per-client buffer and decoded back into the same GradientMatrix
  // row — the server-side view of the round. All buffers and scratch are
  // allocated once and reused.
  const bool transport_on =
      cfg_.compression.codec != comm::CodecKind::kNone ||
      static_cast<bool>(cfg_.uplink_tamper) || chaos_transport;
  std::unique_ptr<comm::Codec> codec;
  std::vector<std::vector<std::uint8_t>> uplink;          // per round row
  std::vector<std::vector<comm::CodecScratch>> enc_scratch;  // per worker
  std::vector<char> rejected;
  std::uint64_t wire_bytes = 0;  // encoded_size(codec, dim), 0 when off
  if (transport_on) {
    codec = comm::make_codec(cfg_.compression);
    uplink.resize(n);
    rejected.reserve(n);
    wire_bytes = comm::encoded_size(*codec, dim);
  }
  // Compressed-domain SignGuard (SIGNGUARD_WIREPATH=wire, the default):
  // when the GAR is a plain SignGuard and a real codec is active, the
  // server never decodes the Byzantine uplinks up front — it validates
  // them, runs the filters on statistics computed from the wire bytes,
  // and decodes only the trusted set. Benign rows are still decoded in
  // place first: the attacker observes the post-codec view of honest
  // gradients on either backend (a simulation requirement, and on the
  // decode backend that same decode doubles as the server's).
  // Admission decisions and the aggregate are bitwise identical across
  // the two backends; only the decoded-bytes accounting differs.
  // An active QuorumPolicy pins the decode backend: its clipped-mean
  // fallback needs every accepted row materialized.
  auto* const sg = dynamic_cast<core::SignGuard*>(&server.gar());
  const bool wire_filtering =
      transport_on && cfg_.compression.codec != comm::CodecKind::kNone &&
      sg != nullptr && sg->supports_wire_path() &&
      comm::wire_path() == comm::WirePath::kWire && !quorum_on;
  // Encodes round_grads rows [begin_row, end_row) through the wire —
  // encode, optional tamper, chaos transport corruption, then either
  // decode back in place (decode_rows) or validate the buffer without
  // touching the row (the wire path's Byzantine uplinks) — marking
  // rejects either way. validate() accepts exactly the buffers
  // decode_into accepts, so the reject set is backend-independent.
  // client_of maps a row to its global client id (for the hook and the
  // chaos stream). Rows are independent, and the chaos draws are
  // stateless in (client, round), so the fan-out is bitwise
  // thread-invariant.
  const std::size_t round_sentinel = std::size_t(-1);
  std::size_t current_round = round_sentinel;
  const auto transport_rows = [&](std::size_t begin_row, std::size_t end_row,
                                  bool decode_rows, auto client_of) {
    // The fan-out interleaves encode and decode per row, so wall-clock is
    // billed to the uplink stage as a whole; the work counters use
    // explicit stages so the per-stage volumes stay separable.
    obs::StageScope stage(obs::Stage::kUplink, "transport",
                          std::int64_t(end_row - begin_row));
    const std::uint64_t n_rows = end_row - begin_row;
    obs::count(obs::Stage::kEncode, obs::Counter::kRowsEncoded, n_rows);
    if (decode_rows) {
      obs::count(obs::Stage::kDecode, obs::Counter::kRowsDecoded, n_rows);
      obs::count(obs::Stage::kDecode, obs::Counter::kDenseBytes,
                 n_rows * dim * 4);
    }
    if (enc_scratch.size() < common::thread_count())
      enc_scratch.resize(common::thread_count());
    common::parallel_chunks(
        end_row - begin_row,
        [&](std::size_t b, std::size_t e, std::size_t worker) {
          for (std::size_t t = begin_row + b; t < begin_row + e; ++t) {
            auto& buf = uplink[t];
            comm::encode_into(*codec, round_grads.row(t), buf,
                              enc_scratch[worker]);
            if (cfg_.uplink_tamper) cfg_.uplink_tamper(client_of(t), buf);
            if (chaos_transport) {
              // Re-derive this uplink's fate from its stateless stream (a
              // pure function of (client, round) — see fl/chaos.h) and
              // mangle the bytes of a corrupt arrival. The wire layer's
              // checksum/framing then rejects it like any hostile buffer.
              const UplinkSim sim =
                  chaos->simulate_uplink(client_of(t), current_round);
              if (sim.delivery == UplinkSim::Delivery::kCorrupt &&
                  !buf.empty()) {
                if (sim.corrupt == UplinkSim::Corrupt::kTruncate)
                  buf.resize(sim.corrupt_pos % buf.size());
                else
                  buf[(sim.corrupt_pos / 8) % buf.size()] ^=
                      std::uint8_t(1) << (sim.corrupt_pos % 8);
              }
            }
            const comm::DecodeStatus st =
                decode_rows ? comm::decode_into(*codec, buf,
                                                round_grads.row(t))
                            : comm::validate(*codec, buf, dim);
            if (st != comm::DecodeStatus::kOk) rejected[t] = 1;
          }
        });
  };

  // ---- Crash-consistent checkpointing (fl/checkpoint.h) -------------------
  // The payload carries every piece of mutable cross-round state; the
  // config hash up front refuses a checkpoint written under a different
  // configuration (resuming it would silently diverge). The chaos engine
  // carries no cursor — its draws are stateless in (seed, client, round).
  const bool ckpt_on = cfg_.checkpoint.active();
  const std::uint64_t config_hash = [&] {
    std::string s;
    const auto add = [&s](const std::string& v) {
      s += v;
      s += '|';
    };
    add(std::to_string(cfg_.n_clients));
    add(std::to_string(cfg_.byzantine_frac));
    add(std::to_string(cfg_.rounds));
    add(std::to_string(cfg_.batch_size));
    add(std::to_string(cfg_.lr));
    add(std::to_string(cfg_.momentum));
    add(std::to_string(cfg_.client_momentum));
    add(std::to_string(cfg_.weight_decay));
    add(std::to_string(cfg_.eval_every));
    add(std::to_string(cfg_.eval_max_samples));
    add(std::to_string(cfg_.noniid));
    add(std::to_string(cfg_.noniid_s));
    add(std::to_string(cfg_.participation));
    add(std::to_string(cfg_.dropout_prob));
    add(std::to_string(cfg_.straggler_prob));
    add(std::to_string(int(cfg_.compression.codec)));
    add(std::to_string(cfg_.compression.chunk));
    add(std::to_string(cfg_.compression.k_fraction));
    add(cfg_.chaos.profile.name);
    add(std::to_string(cfg_.chaos.deadline_ms));
    add(std::to_string(cfg_.chaos.churn_leave_prob));
    add(std::to_string(cfg_.chaos.churn_mean_absence));
    add(std::to_string(cfg_.quorum.min_participants));
    add(std::to_string(cfg_.quorum.min_survivors));
    add(to_string(cfg_.quorum.action));
    add(server.gar().name());
    add(attack.name());
    add(std::to_string(cfg_.seed));
    return common::fnv1a64(s);
  }();

  const auto save_checkpoint = [&](std::size_t next_round) {
    obs::StageScope stage(obs::Stage::kCheckpoint, "checkpoint/save",
                          std::int64_t(next_round));
    common::ByteWriter w;
    w.u64(config_hash);
    w.u64(next_round);
    w.floats(server.parameters());
    w.floats(server.optimizer().velocity());
    w.floats(server.last_aggregate());
    w.str(attack_rng.state());
    w.str(gar_rng.state());
    w.str(participation_rng.state());
    w.str(failure_rng.state());
    w.u64(clients.size());
    for (const Client& c : clients) c.serialize_state(w);
    w.u64(result.history.size());
    for (const RoundRecord& rec : result.history) {
      w.u64(rec.round);
      w.f64(rec.test_accuracy);
    }
    w.f64(result.best_accuracy);
    w.f64(result.final_accuracy);
    w.f64(result.selection.honest_rate);
    w.f64(result.selection.malicious_rate);
    w.u64(result.selection.rounds);
    w.u64(result.uplink_bytes);
    w.u64(result.uplink_dense_bytes);
    w.u64(result.decode_rejects);
    w.u64(result.uplink_decoded_bytes);
    w.u64(result.skipped_rounds);
    w.u64(result.fallback_cmean_rounds);
    w.u64(result.fallback_prev_rounds);
    w.u64(result.churned_total);
    w.u64(result.deadline_miss_total);
    w.u64(result.lost_uplink_total);
    w.u64(result.uplink_attempts);
    w.f64(result.sim_time_ms);
    {
      common::ByteWriter b;
      server.gar().serialize_state(b);
      w.str(b.bytes());
    }
    {
      common::ByteWriter b;
      attack.serialize_state(b);
      w.str(b.bytes());
    }
    // Checkpoint bytes = the core payload, measured before the extra blob
    // is appended: the registry itself may serialize into that blob, and
    // counting its own output would make the count depend on it.
    obs::count(obs::Counter::kCheckpointBytes, w.bytes().size());
    {
      common::ByteWriter b;
      if (cfg_.checkpoint.save_extra) cfg_.checkpoint.save_extra(b);
      w.str(b.bytes());
    }
    write_checkpoint_file(cfg_.checkpoint.path, w.bytes());
  };

  const auto load_checkpoint = [&]() -> std::size_t {
    const std::string payload = read_checkpoint_file(cfg_.checkpoint.path);
    common::ByteReader r(payload);
    if (r.u64() != config_hash)
      throw std::runtime_error(
          "checkpoint: configuration hash mismatch — the file was written "
          "by a differently-configured run (" + cfg_.checkpoint.path + ")");
    const std::size_t next_round = r.u64();
    std::vector<float> params = r.floats();
    std::vector<float> velocity = r.floats();
    std::vector<float> last_agg = r.floats();
    server.restore(std::move(params), std::move(velocity),
                   std::move(last_agg));
    attack_rng.set_state(r.str());
    gar_rng.set_state(r.str());
    participation_rng.set_state(r.str());
    failure_rng.set_state(r.str());
    if (r.u64() != clients.size())
      throw std::runtime_error("checkpoint: client count mismatch");
    for (Client& c : clients) c.restore_state(r);
    result.history.resize(r.u64());
    for (RoundRecord& rec : result.history) {
      rec.round = r.u64();
      rec.test_accuracy = r.f64();
    }
    result.best_accuracy = r.f64();
    result.final_accuracy = r.f64();
    result.selection.honest_rate = r.f64();
    result.selection.malicious_rate = r.f64();
    result.selection.rounds = r.u64();
    result.uplink_bytes = r.u64();
    result.uplink_dense_bytes = r.u64();
    result.decode_rejects = r.u64();
    result.uplink_decoded_bytes = r.u64();
    result.skipped_rounds = r.u64();
    result.fallback_cmean_rounds = r.u64();
    result.fallback_prev_rounds = r.u64();
    result.churned_total = r.u64();
    result.deadline_miss_total = r.u64();
    result.lost_uplink_total = r.u64();
    result.uplink_attempts = r.u64();
    result.sim_time_ms = r.f64();
    {
      const std::string blob = r.str();
      common::ByteReader b(blob);
      server.gar().restore_state(b);
    }
    {
      const std::string blob = r.str();
      common::ByteReader b(blob);
      attack.restore_state(b);
    }
    {
      const std::string blob = r.str();
      common::ByteReader b(blob);
      if (cfg_.checkpoint.load_extra) cfg_.checkpoint.load_extra(b);
    }
    return next_round;
  };

  std::size_t start_round = 0;
  if (ckpt_on && cfg_.checkpoint.resume &&
      checkpoint_exists(cfg_.checkpoint.path))
    start_round = load_checkpoint();

  // ---- One synchronous round ----------------------------------------------
  const auto run_round = [&](std::size_t round) {
    obs::Span round_span("round", std::int64_t(round));
    current_round = round;
    attack.begin_round(round, attack_rng);
    const bool flip = attack.flips_labels();

    // Participating clients this round (full set unless partial
    // participation is configured). Byzantine clients are those among the
    // sampled set with index < m.
    byz_sel.clear();
    benign_sel.clear();
    if (cfg_.participation >= 1.0) {
      for (std::size_t i = 0; i < m; ++i) byz_sel.push_back(i);
      for (std::size_t i = m; i < n; ++i) benign_sel.push_back(i);
    } else {
      const std::size_t k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::round(cfg_.participation * double(n))));
      participation_rng.sample_without_replacement_into(n, k, sampled);
      for (const std::size_t i : sampled)
        (i < m ? byz_sel : benign_sel).push_back(i);
    }

    // Legacy failure injection, drawn sequentially from a dedicated
    // stream so the outcome is a pure function of the seed. The two coins
    // are sequential (see trainer.h): dropout first, straggler only for
    // survivors, so every selected client lands in exactly one state. A
    // dropped client misses the round entirely; a benign straggler still
    // trains (into late_grads) but its update is discarded; a Byzantine
    // straggler's crafted update simply never reaches the server.
    std::size_t n_dropped = 0, n_straggler = 0;
    benign_late.clear();
    if (cfg_.dropout_prob > 0.0 || cfg_.straggler_prob > 0.0) {
      auto sift = [&](std::vector<std::size_t>& sel, bool benign) {
        active.clear();
        for (const std::size_t i : sel) {
          if (cfg_.dropout_prob > 0.0 &&
              failure_rng.bernoulli(cfg_.dropout_prob)) {
            ++n_dropped;
          } else if (cfg_.straggler_prob > 0.0 &&
                     failure_rng.bernoulli(cfg_.straggler_prob)) {
            ++n_straggler;
            if (benign) benign_late.push_back(i);
          } else {
            active.push_back(i);
          }
        }
        // swap (not move) so both buffers keep their capacity round over
        // round.
        std::swap(sel, active);
      };
      sift(byz_sel, /*benign=*/false);
      sift(benign_sel, /*benign=*/true);
    }

    // Chaos sift, layered after the legacy coins: churned clients miss
    // the round entirely; the survivors' uplinks are simulated (latency x
    // retries vs deadline). A late or lost uplink means the client DID
    // train — its state advances exactly like a legacy straggler's — but
    // no update reaches the aggregator. Corrupt arrivals stay active
    // here; the wire decode below rejects their mangled bytes.
    std::size_t n_churned = 0, n_deadline = 0, n_lost = 0;
    std::size_t transmitters = 0;
    std::uint64_t attempts_total = 0;
    double slowest_ms = 0.0;
    bool uplink_missing = false;
    if (chaos_on) {
      obs::StageScope stage(obs::Stage::kUplink, "chaos/sift");
      auto chaos_sift = [&](std::vector<std::size_t>& sel, bool benign) {
        active.clear();
        for (const std::size_t i : sel) {
          if (!chaos->client_up(i, round)) {
            ++n_churned;
            continue;
          }
          const UplinkSim sim = chaos->simulate_uplink(i, round);
          ++transmitters;
          attempts_total += sim.attempts;
          switch (sim.delivery) {
            case UplinkSim::Delivery::kOnTime:
            case UplinkSim::Delivery::kCorrupt:
              // Only delivered uplinks extend the round: a synchronous
              // server closes on what it received, so a lost chain's (or,
              // with no deadline, a late chain's) elapsed time is not on
              // the critical path.
              slowest_ms = std::max(slowest_ms, sim.elapsed_ms);
              active.push_back(i);
              break;
            case UplinkSim::Delivery::kLate:
              ++n_deadline;
              ++n_straggler;
              uplink_missing = true;
              if (benign) benign_late.push_back(i);
              break;
            case UplinkSim::Delivery::kLost:
              ++n_lost;
              uplink_missing = true;
              if (benign) benign_late.push_back(i);
              break;
          }
        }
        std::swap(sel, active);
      };
      chaos_sift(byz_sel, /*benign=*/false);
      chaos_sift(benign_sel, /*benign=*/true);
      obs::count(obs::Counter::kRetryAttempts, attempts_total);
    }
    // Simulated round wall-clock: the server closes the round at the
    // deadline when anyone is still missing, else at the slowest arrival.
    const double round_ms = (cfg_.chaos.deadline_ms > 0.0 && uplink_missing)
                                ? cfg_.chaos.deadline_ms
                                : slowest_ms;
    if (chaos_on) {
      result.churned_total += n_churned;
      result.deadline_miss_total += n_deadline;
      result.lost_uplink_total += n_lost;
      result.uplink_attempts += attempts_total;
      result.sim_time_ms += round_ms;
    }
    const auto fill_chaos = [&](RoundObservation& obs) {
      if (!chaos_on) return;
      obs.churned = n_churned;
      obs.deadline_misses = n_deadline;
      obs.lost_uplinks = n_lost;
      obs.uplink_attempts = attempts_total;
      obs.sim_round_ms = round_ms;
    };
    // Under chaos transport every post-churn client transmitted (retries
    // included), whether or not its update was ultimately usable — so the
    // byte accounting is attempts-based and uniform across the normal and
    // skip paths below.
    const std::uint64_t chaos_sent_bytes = attempts_total * wire_bytes;
    const std::uint64_t chaos_dense_bytes =
        std::uint64_t(transmitters) * dim * 4;

    const std::size_t n_round = byz_sel.size() + benign_sel.size();
    const std::size_t m_round = byz_sel.size();

    // Local training: every participating client writes its gradient
    // straight into a matrix row, in parallel. Benign clients fill
    // round_grads rows [m_round, n_round); Byzantine clients fill their
    // honest-behaviour rows in byz_honest; benign stragglers fill
    // late_grads. Only the workers that can receive a non-empty chunk
    // need a synced scratch model — and inside an outer parallel region
    // (the sweep engine) the nested loop runs inline on one worker, so a
    // single model suffices.
    const std::size_t n_work = n_round + benign_late.size();
    const std::size_t active_models = std::min(
        common::in_parallel_region() ? 1 : common::thread_count(), n_work);
    ensure_models(active_models);
    for (std::size_t w = 0; w < active_models; ++w)
      worker_models[w].set_parameters(server.parameters());
    round_grads.resize(n_round, dim);
    byz_honest.resize(m_round, dim);
    late_grads.resize(benign_late.size(), dim);
    {
      obs::StageScope stage(obs::Stage::kClientCompute, nullptr,
                            std::int64_t(n_work));
      obs::count(obs::Counter::kDenseBytes, std::uint64_t(n_work) * dim * 4);
      common::parallel_chunks(
          n_work,
          [&](std::size_t begin, std::size_t end, std::size_t worker) {
            nn::Model& wm = worker_models[worker];
            for (std::size_t t = begin; t < end; ++t) {
              if (t < m_round) {
                clients[byz_sel[t]].compute_gradient_into(
                    byz_honest.row(t), wm, cfg_.batch_size, cfg_.weight_decay,
                    flip, cfg_.client_momentum);
              } else if (t < n_round) {
                const std::size_t b = t - m_round;
                clients[benign_sel[b]].compute_gradient_into(
                    round_grads.row(t), wm, cfg_.batch_size,
                    cfg_.weight_decay,
                    /*flip_labels=*/false, cfg_.client_momentum);
              } else {
                const std::size_t s = t - n_round;
                clients[benign_late[s]].compute_gradient_into(
                    late_grads.row(s), wm, cfg_.batch_size, cfg_.weight_decay,
                    /*flip_labels=*/false, cfg_.client_momentum);
              }
            }
          });
    }

    if (benign_sel.empty()) {
      // No honest gradient reached the server: skip aggregation. Local
      // training above still ran for every active / straggling client, so
      // a client's state evolution depends only on its own fate, never on
      // what happened to the others this round.
      ++result.skipped_rounds;
      if (chaos_transport) {
        result.uplink_bytes += chaos_sent_bytes;
        result.uplink_dense_bytes += chaos_dense_bytes;
        obs::count(obs::Stage::kUplink, obs::Counter::kWireBytes,
                   chaos_sent_bytes);
        obs::count(obs::Stage::kUplink, obs::Counter::kDenseBytes,
                   chaos_dense_bytes);
      }
      {
        // The feedback channel fires on every round, skips included —
        // an adaptive attacker (attacks/adaptive.h) learns from silence
        // too. craft() never ran, so there is nothing to leak.
        attacks::RoundFeedback fb;
        fb.round = round;
        fb.skipped = true;
        fb.degraded = true;
        attack.observe_round(fb);
      }
      if (observer) {
        RoundObservation obs;
        obs.round = round;
        obs.attack_name = attack.name();
        obs.dropped = n_dropped;
        obs.stragglers = n_straggler;
        obs.skipped = true;
        obs.outcome = RoundOutcome::kSkippedNoHonest;
        fill_chaos(obs);
        if (chaos_transport) {
          obs.uplink_bytes = chaos_sent_bytes;
          obs.uplink_dense_bytes = chaos_dense_bytes;
        }
        observer(obs);
      }
      return;
    }

    // Benign uplinks go through the wire first: what the attacker gets
    // to observe — and what the server aggregates — is the decoded
    // (post-compression) view of every honest gradient. A benign uplink
    // only fails to decode under the tamper hook or a chaos-corrupted
    // arrival.
    std::size_t benign_rejects = 0;
    if (transport_on) {
      rejected.assign(n_round, 0);
      transport_rows(m_round, n_round, /*decode_rows=*/true,
                     [&](std::size_t t) { return benign_sel[t - m_round]; });
      for (std::size_t t = m_round; t < n_round; ++t)
        benign_rejects += rejected[t] != 0;
      if (benign_rejects == n_round - m_round) {
        // Every honest uplink was rejected: nothing trustworthy reached
        // the server, so the round is skipped like a fully-dropped one.
        // Without chaos the Byzantine rows were never transported, so
        // only the benign uplinks' bytes were spent.
        const std::uint64_t sent = n_round - m_round;
        const std::uint64_t sent_bytes =
            chaos_transport ? chaos_sent_bytes : sent * wire_bytes;
        const std::uint64_t dense_bytes =
            chaos_transport ? chaos_dense_bytes
                            : sent * std::uint64_t(dim) * 4;
        result.uplink_bytes += sent_bytes;
        result.uplink_dense_bytes += dense_bytes;
        result.decode_rejects += benign_rejects;
        obs::count(obs::Stage::kUplink, obs::Counter::kWireBytes, sent_bytes);
        obs::count(obs::Stage::kUplink, obs::Counter::kDenseBytes,
                   dense_bytes);
        obs::count(obs::Stage::kDecode, obs::Counter::kDecodeRejects,
                   benign_rejects);
        ++result.skipped_rounds;
        {
          attacks::RoundFeedback fb;
          fb.round = round;
          fb.decode_rejects = benign_rejects;
          fb.skipped = true;
          fb.degraded = true;
          attack.observe_round(fb);
        }
        if (observer) {
          RoundObservation obs;
          obs.round = round;
          obs.attack_name = attack.name();
          obs.dropped = n_dropped;
          obs.stragglers = n_straggler;
          obs.decode_rejects = benign_rejects;
          obs.uplink_bytes = sent_bytes;
          obs.uplink_dense_bytes = dense_bytes;
          obs.skipped = true;
          obs.outcome = RoundOutcome::kSkippedNoHonest;
          fill_chaos(obs);
          observer(obs);
        }
        return;
      }
    }

    // The attacker observes the benign rows (and the honest Byzantine
    // gradients) as borrowed views of the round buffers — no copies.
    // Rejected uplinks never reached the server, so they are invisible
    // to the (omniscient-but-server-side) attacker too.
    benign_views.clear();
    benign_views.reserve(n_round - m_round - benign_rejects);
    for (std::size_t t = m_round; t < n_round; ++t)
      if (!transport_on || !rejected[t])
        benign_views.push_back(round_grads.row(t));
    const std::vector<attacks::GradientView> byz_views =
        byz_honest.row_views();

    attacks::AttackContext actx;
    actx.benign_grads = benign_views;
    actx.byz_honest_grads = byz_views;
    actx.n_total = n_round - benign_rejects;
    actx.n_byzantine = m_round;
    actx.round = round;
    actx.rng = &attack_rng;
    {
      obs::StageScope stage(obs::Stage::kOther, "attack/craft",
                            std::int64_t(m_round));
      const std::vector<std::vector<float>> malicious = attack.craft(actx);
      // Loud validation in every build type: a misbehaving user-defined
      // attack must not turn into an out-of-bounds copy into the matrix.
      if (malicious.size() != m_round)
        throw std::invalid_argument(
            "attack '" + attack.name() + "' crafted " +
            std::to_string(malicious.size()) + " gradients, expected " +
            std::to_string(m_round));
      for (std::size_t i = 0; i < m_round; ++i) {
        if (malicious[i].size() != dim)
          throw std::invalid_argument(
              "attack '" + attack.name() + "' crafted gradient " +
              std::to_string(i) + " with dimension " +
              std::to_string(malicious[i].size()) + ", expected " +
              std::to_string(dim));
        const auto row = round_grads.row(i);
        std::copy(malicious[i].begin(), malicious[i].end(), row.begin());
      }
    }

    // Byzantine uplinks take the same wire as everyone else's: the
    // crafted update is what gets compressed, so defenses face the
    // attack as the codec delivers it. A Byzantine client shipping
    // bytes that do not decode is simply rejected — its slot never
    // reaches the aggregator.
    std::size_t m_eff = m_round, n_eff = n_round;
    std::size_t round_rejects = benign_rejects;
    if (transport_on) {
      // On the wire path the crafted rows are validated, never decoded:
      // their floats stay wire-side until (and unless) SignGuard admits
      // them below.
      transport_rows(0, m_round, /*decode_rows=*/!wire_filtering,
                     [&](std::size_t t) { return byz_sel[t]; });
      for (std::size_t t = 0; t < m_round; ++t)
        round_rejects += rejected[t] != 0;
      if (round_rejects > 0) {
        // Compact the surviving rows into a prefix (Byzantine rows stay
        // in front, order preserved) so the aggregator sees a dense
        // matrix of exactly the updates that decoded — and their uplink
        // buffers move with them, so buffer t keeps describing row t for
        // the wire path.
        std::size_t w = 0;
        m_eff = 0;
        for (std::size_t t = 0; t < n_round; ++t) {
          if (rejected[t]) continue;
          if (t < m_round) ++m_eff;
          if (w != t) {
            const auto src = round_grads.row(t);
            std::copy(src.begin(), src.end(), round_grads.row(w).begin());
            std::swap(uplink[w], uplink[t]);
          }
          ++w;
        }
        n_eff = w;
        round_grads.resize(n_eff, dim);
      }
    }

    agg::GarContext gctx;
    gctx.assumed_byzantine = m_eff;
    gctx.round = round;
    gctx.rng = &gar_rng;
    // Dense bytes the aggregation pipeline materialized from accepted
    // uplinks: all of them on the decode path, only the trusted set's on
    // the wire path.
    std::uint64_t decoded_bytes = 0;
    const std::vector<float>* agg_ptr = nullptr;
    RoundOutcome outcome = RoundOutcome::kProceed;
    // Optional (not a block) so the branches below stay un-reindented;
    // reset() closes the aggregation stage before the eval below.
    std::optional<obs::StageScope> agg_stage;
    agg_stage.emplace(obs::Stage::kAggregate, nullptr, std::int64_t(n_eff));
    if (quorum_on) {
      // Quorum-policed aggregation (fl/chaos.h): same GAR + optimizer
      // sequence as server.step(), but the aggregate is only applied
      // after the pre- and post-filter quorums pass; otherwise the round
      // degrades down the policy's fallback chain.
      if (transport_on) decoded_bytes = std::uint64_t(n_eff) * dim * 4;
      bool have = false;
      std::vector<float> agg;
      if (n_eff >= cfg_.quorum.min_participants) {
        try {
          agg = server.gar().aggregate(round_grads, gctx);
          have = true;
        } catch (const std::exception&) {
          // A starved rule (e.g. Bulyan's n >= 4m+3) degrades instead of
          // aborting the run.
          have = false;
        }
        if (have && cfg_.quorum.min_survivors > 0 &&
            server.gar().reports_selection() &&
            server.gar().last_selected().size() < cfg_.quorum.min_survivors)
          have = false;
      }
      if (have) {
        agg_ptr = &server.apply_aggregate(std::move(agg));
      } else {
        DegradeAction act = cfg_.quorum.action;
        if (act == DegradeAction::kClippedMean) {
          // Norm-clipped mean over the finite-norm accepted rows, with
          // their median norm as the bound — SignGuard's own aggregation
          // step minus its filters. Falls through when nothing finite
          // arrived.
          const std::vector<double> norms = vec::row_norms(round_grads);
          std::vector<std::size_t> finite;
          std::vector<double> fnorms;
          for (std::size_t i = 0; i < n_eff; ++i)
            if (std::isfinite(norms[i])) {
              finite.push_back(i);
              fnorms.push_back(norms[i]);
            }
          if (!finite.empty()) {
            std::sort(fnorms.begin(), fnorms.end());
            const std::size_t mid = fnorms.size() / 2;
            const double median =
                fnorms.size() % 2 == 1
                    ? fnorms[mid]
                    : 0.5 * (fnorms[mid - 1] + fnorms[mid]);
            agg_ptr = &server.apply_aggregate(
                core::clipped_mean(round_grads, finite, median,
                                   /*clip=*/true, norms));
            outcome = RoundOutcome::kFallbackClippedMean;
            ++result.fallback_cmean_rounds;
          } else {
            act = DegradeAction::kPrevAggregate;
          }
        }
        if (agg_ptr == nullptr && act == DegradeAction::kPrevAggregate) {
          if (!server.last_aggregate().empty()) {
            // Replay the previous round's aggregate (copy first:
            // apply_aggregate overwrites the buffer being read).
            std::vector<float> prev = server.last_aggregate();
            agg_ptr = &server.apply_aggregate(std::move(prev));
            outcome = RoundOutcome::kFallbackPrevAggregate;
            ++result.fallback_prev_rounds;
          }
        }
        if (agg_ptr == nullptr) outcome = RoundOutcome::kSkippedQuorum;
      }
    } else if (wire_filtering) {
      comm::WireRound wr;
      wr.codec = codec.get();
      wr.uplinks = std::span<const std::vector<std::uint8_t>>(
          uplink.data(), n_eff);
      wr.d = dim;
      agg_ptr = &server.apply_aggregate(sg->aggregate_wire(wr, gctx));
      decoded_bytes = sg->last_decoded_bytes();
    } else {
      agg_ptr = &server.step(round_grads, gctx);
      if (transport_on) decoded_bytes = std::uint64_t(n_eff) * dim * 4;
    }
    agg_stage.reset();

    // Selection accounting (only meaningful for selecting rules, and only
    // on rounds where the rule's aggregate was actually applied).
    std::vector<std::size_t> selected;
    if (outcome == RoundOutcome::kProceed) {
      selected = server.gar().last_selected();
      if (!selected.empty())
        result.selection.accumulate(selected, m_eff, n_eff);
    }

    // Periodic evaluation (always evaluate the final round).
    RoundObservation obs;
    obs.round = round;
    obs.attack_name = attack.name();
    obs.selected = selected;
    obs.participants = n_eff;
    obs.byzantine = m_eff;
    obs.dropped = n_dropped;
    obs.stragglers = n_straggler;
    obs.outcome = outcome;
    fill_chaos(obs);
    if (agg_ptr != nullptr) {
      obs.aggregate = *agg_ptr;
    } else {
      obs.skipped = true;
      ++result.skipped_rounds;
    }
    if (outcome == RoundOutcome::kProceed) {
      if (const auto* sharded =
              dynamic_cast<const agg::ShardedAggregator*>(&server.gar())) {
        obs.shards = sharded->last_shards();
        obs.shard_survivors = sharded->last_shard_survivors();
      }
    }
    if (transport_on) {
      obs.decode_rejects = round_rejects;
      if (chaos_transport) {
        obs.uplink_bytes = chaos_sent_bytes;
        obs.uplink_dense_bytes = chaos_dense_bytes;
      } else {
        obs.uplink_bytes = n_round * wire_bytes;
        obs.uplink_dense_bytes = std::uint64_t(n_round) * dim * 4;
      }
      obs.uplink_decoded_bytes = decoded_bytes;
      result.uplink_bytes += obs.uplink_bytes;
      result.uplink_dense_bytes += obs.uplink_dense_bytes;
      result.decode_rejects += round_rejects;
      result.uplink_decoded_bytes += decoded_bytes;
      obs::count(obs::Stage::kUplink, obs::Counter::kWireBytes,
                 obs.uplink_bytes);
      obs::count(obs::Stage::kUplink, obs::Counter::kDenseBytes,
                 obs.uplink_dense_bytes);
      obs::count(obs::Stage::kDecode, obs::Counter::kDecodeRejects,
                 round_rejects);
    }
    if (agg_ptr != nullptr &&
        ((round + 1) % cfg_.eval_every == 0 || round + 1 == cfg_.rounds)) {
      obs::StageScope stage(obs::Stage::kEval);
      model.set_parameters(server.parameters());
      const double acc = evaluate_accuracy(model, data_.test, 256,
                                           cfg_.eval_max_samples);
      result.history.push_back({round, acc});
      result.best_accuracy = std::max(result.best_accuracy, acc);
      result.final_accuracy = acc;
      obs.test_accuracy = acc;
    }
    {
      // Close the adversary's feedback loop (attack.h RoundFeedback):
      // what the colluding clients could observe this round. Runs before
      // the round-boundary checkpoint below, so adaptive search state is
      // crash-consistent; the aggregate span borrows the server buffer
      // and is only valid for the call.
      attacks::RoundFeedback fb;
      fb.round = round;
      fb.participants = n_eff;
      fb.byzantine = m_eff;
      fb.has_selection =
          outcome == RoundOutcome::kProceed && server.gar().reports_selection();
      fb.selected = selected.size();
      for (const std::size_t id : selected)
        fb.selected_byzantine += id < m_eff ? 1 : 0;
      fb.decode_rejects = transport_on ? round_rejects : 0;
      fb.skipped = agg_ptr == nullptr;
      fb.degraded = outcome != RoundOutcome::kProceed;
      if (agg_ptr != nullptr) fb.aggregate = *agg_ptr;
      attack.observe_round(fb);
    }
    if (observer) observer(obs);
  };

  for (std::size_t round = start_round; round < cfg_.rounds; ++round) {
    // Counter round brackets the checkpoint save, so checkpoint bytes
    // land in the round that wrote them, and a serialize() inside
    // save_extra snapshots the open round exactly as end_round will
    // record it (nothing counts between the save and end_round) —
    // kill+resume therefore restores bitwise-identical counter state.
    if (cfg_.metrics != nullptr) cfg_.metrics->begin_round(round);
    run_round(round);
    // Checkpoint AFTER the round completes (skipped rounds included), so
    // a resume replays from a round boundary; the final round's state is
    // not worth a file. The halt switch simulates a crash right after
    // the round — deliberately without forcing a save, exactly like a
    // real kill between checkpoints.
    if (ckpt_on && (round + 1) % cfg_.checkpoint.every == 0 &&
        round + 1 < cfg_.rounds)
      save_checkpoint(round + 1);
    if (cfg_.metrics != nullptr) cfg_.metrics->end_round();
    if (cfg_.checkpoint.halt_after_round > 0 &&
        round + 1 >= cfg_.checkpoint.halt_after_round &&
        round + 1 < cfg_.rounds) {
      result.halted = true;
      break;
    }
  }
  return result;
}

}  // namespace signguard::fl
