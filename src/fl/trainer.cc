#include "fl/trainer.h"

#include <cassert>
#include <cmath>

#include "fl/client.h"
#include "fl/server.h"

namespace signguard::fl {

Trainer::Trainer(const data::TrainTest& data, ModelFactory model_factory,
                 TrainerConfig cfg)
    : data_(data), model_factory_(std::move(model_factory)), cfg_(cfg) {
  assert(cfg_.n_clients > 0);
  assert(cfg_.byzantine_frac >= 0.0 && cfg_.byzantine_frac < 0.5);
  n_byz_ = static_cast<std::size_t>(
      std::round(cfg_.byzantine_frac * double(cfg_.n_clients)));
}

TrainingResult Trainer::run(attacks::Attack& attack,
                            std::unique_ptr<agg::Aggregator> gar,
                            const RoundObserver& observer) {
  Rng rng(cfg_.seed);
  Rng attack_rng = rng.split();
  Rng gar_rng = rng.split();

  // Partition the training data over the clients.
  data::ClientIndices shards =
      cfg_.noniid
          ? data::noniid_partition(data_.train, cfg_.n_clients, cfg_.noniid_s,
                                   rng)
          : data::iid_partition(data_.train.size(), cfg_.n_clients, rng);

  std::vector<Client> clients;
  clients.reserve(cfg_.n_clients);
  for (std::size_t i = 0; i < cfg_.n_clients; ++i)
    clients.emplace_back(&data_.train, std::move(shards[i]),
                         rng.split().engine()());

  // One scratch model shared by every client (all clients evaluate the
  // same global parameters each round), plus the server.
  nn::Model model = model_factory_(cfg_.seed);
  Server server(std::move(gar), model.parameters(), cfg_.lr, cfg_.momentum);

  const std::size_t n = cfg_.n_clients;
  const std::size_t m = n_byz_;
  Rng participation_rng = rng.split();

  TrainingResult result;
  std::vector<std::vector<float>> benign_grads;
  std::vector<std::vector<float>> byz_honest;

  for (std::size_t round = 0; round < cfg_.rounds; ++round) {
    attack.begin_round(round, attack_rng);
    const bool flip = attack.flips_labels();

    model.set_parameters(server.parameters());

    // Participating clients this round (full set unless partial
    // participation is configured). Byzantine clients are those among the
    // sampled set with index < m; their gradients go first so selection
    // accounting can attribute them.
    std::vector<std::size_t> byz_sel, benign_sel;
    if (cfg_.participation >= 1.0) {
      for (std::size_t i = 0; i < m; ++i) byz_sel.push_back(i);
      for (std::size_t i = m; i < n; ++i) benign_sel.push_back(i);
    } else {
      const std::size_t k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::round(cfg_.participation * double(n))));
      for (const std::size_t i :
           participation_rng.sample_without_replacement(n, k)) {
        (i < m ? byz_sel : benign_sel).push_back(i);
      }
      if (benign_sel.empty()) continue;  // no honest gradient this round
    }
    const std::size_t n_round = byz_sel.size() + benign_sel.size();
    const std::size_t m_round = byz_sel.size();

    benign_grads.clear();
    byz_honest.clear();
    for (const std::size_t i : benign_sel)
      benign_grads.push_back(clients[i].compute_gradient(
          model, cfg_.batch_size, cfg_.weight_decay, /*flip_labels=*/false,
          cfg_.client_momentum));
    for (const std::size_t i : byz_sel)
      byz_honest.push_back(clients[i].compute_gradient(
          model, cfg_.batch_size, cfg_.weight_decay, flip,
          cfg_.client_momentum));

    attacks::AttackContext actx;
    actx.benign_grads = benign_grads;
    actx.byz_honest_grads = byz_honest;
    actx.n_total = n_round;
    actx.n_byzantine = m_round;
    actx.round = round;
    actx.rng = &attack_rng;
    std::vector<std::vector<float>> all_grads = attack.craft(actx);
    assert(all_grads.size() == m_round);
    for (auto& g : benign_grads) all_grads.push_back(std::move(g));
    benign_grads.clear();

    agg::GarContext gctx;
    gctx.assumed_byzantine = m_round;
    gctx.round = round;
    gctx.rng = &gar_rng;
    server.step(all_grads, gctx);

    // Selection accounting (only meaningful for selecting rules).
    const auto selected = server.gar().last_selected();
    if (!selected.empty())
      result.selection.accumulate(selected, m_round, n_round);

    // Periodic evaluation (always evaluate the final round).
    RoundObservation obs;
    obs.round = round;
    obs.attack_name = attack.name();
    if ((round + 1) % cfg_.eval_every == 0 || round + 1 == cfg_.rounds) {
      model.set_parameters(server.parameters());
      const double acc = evaluate_accuracy(model, data_.test, 256,
                                           cfg_.eval_max_samples);
      result.history.push_back({round, acc});
      result.best_accuracy = std::max(result.best_accuracy, acc);
      result.final_accuracy = acc;
      obs.test_accuracy = acc;
    }
    if (observer) observer(obs);
  }
  return result;
}

}  // namespace signguard::fl
