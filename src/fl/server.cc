#include "fl/server.h"

#include <cassert>

namespace signguard::fl {

Server::Server(std::unique_ptr<agg::Aggregator> gar,
               std::vector<float> init_params, double lr, double momentum)
    : gar_(std::move(gar)),
      params_(std::move(init_params)),
      optimizer_(lr, momentum) {
  assert(gar_ != nullptr);
}

const std::vector<float>& Server::step(const common::GradientMatrix& grads,
                                       const agg::GarContext& ctx) {
  last_aggregate_ = gar_->aggregate(grads, ctx);
  assert(last_aggregate_.size() == params_.size());
  optimizer_.step(params_, last_aggregate_);
  return last_aggregate_;
}

const std::vector<float>& Server::step(
    std::span<const std::vector<float>> grads, const agg::GarContext& ctx) {
  last_aggregate_ = gar_->aggregate(grads, ctx);
  assert(last_aggregate_.size() == params_.size());
  optimizer_.step(params_, last_aggregate_);
  return last_aggregate_;
}

const std::vector<float>& Server::apply_aggregate(
    std::vector<float> aggregate) {
  last_aggregate_ = std::move(aggregate);
  assert(last_aggregate_.size() == params_.size());
  optimizer_.step(params_, last_aggregate_);
  return last_aggregate_;
}

}  // namespace signguard::fl
