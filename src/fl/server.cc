#include "fl/server.h"

#include <cassert>
#include <stdexcept>

namespace signguard::fl {

Server::Server(std::unique_ptr<agg::Aggregator> gar,
               std::vector<float> init_params, double lr, double momentum)
    : gar_(std::move(gar)),
      params_(std::move(init_params)),
      optimizer_(lr, momentum) {
  assert(gar_ != nullptr);
}

const std::vector<float>& Server::step(const common::GradientMatrix& grads,
                                       const agg::GarContext& ctx) {
  last_aggregate_ = gar_->aggregate(grads, ctx);
  assert(last_aggregate_.size() == params_.size());
  optimizer_.step(params_, last_aggregate_);
  return last_aggregate_;
}

const std::vector<float>& Server::step(
    std::span<const std::vector<float>> grads, const agg::GarContext& ctx) {
  last_aggregate_ = gar_->aggregate(grads, ctx);
  assert(last_aggregate_.size() == params_.size());
  optimizer_.step(params_, last_aggregate_);
  return last_aggregate_;
}

const std::vector<float>& Server::apply_aggregate(
    std::vector<float> aggregate) {
  last_aggregate_ = std::move(aggregate);
  assert(last_aggregate_.size() == params_.size());
  optimizer_.step(params_, last_aggregate_);
  return last_aggregate_;
}

void Server::restore(std::vector<float> params, std::vector<float> velocity,
                     std::vector<float> last_aggregate) {
  if (params.size() != params_.size())
    throw std::invalid_argument(
        "Server::restore: parameter count mismatch (checkpoint from a "
        "different model?)");
  params_ = std::move(params);
  optimizer_.set_velocity(std::move(velocity));
  last_aggregate_ = std::move(last_aggregate);
}

}  // namespace signguard::fl
