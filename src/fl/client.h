#pragma once
// A federated client: owns an index shard into the shared training set and
// computes one mini-batch stochastic gradient per round (the paper's §V-C
// setting: one local iteration). The trainer loads the current global
// parameters into a scratch model before asking clients for gradients, so
// clients only run forward/backward.

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/serial.h"
#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/model.h"

namespace signguard::fl {

class Client {
 public:
  Client(const data::Dataset* dataset, std::vector<std::size_t> shard,
         std::uint64_t seed);

  // Mini-batch gradient at the parameters currently loaded in `model`.
  // `flip_labels` implements the label-flip data-poisoning attack.
  // Weight decay is folded into the returned gradient.
  //
  // `client_momentum` > 0 enables the history-aided mode (Karimireddy et
  // al., ICML'21; the paper's refs [31]-[32]): the client keeps a local
  // buffer v <- beta*v + g across rounds and sends v instead of g, which
  // damps the round-to-round variance attackers like LIE hide behind.
  std::vector<float> compute_gradient(nn::Model& model,
                                      std::size_t batch_size,
                                      double weight_decay, bool flip_labels,
                                      double client_momentum = 0.0);

  // Same computation, written straight into `out` (a row of the round's
  // GradientMatrix). Thread-safe across *distinct* clients with distinct
  // scratch models: all mutable state (rng, momentum buffer, loss stats)
  // is per-client, so the trainer fans clients out over the pool.
  // Precondition: out.size() == model.parameter_count().
  void compute_gradient_into(std::span<float> out, nn::Model& model,
                             std::size_t batch_size, double weight_decay,
                             bool flip_labels, double client_momentum = 0.0);

  std::size_t shard_size() const { return shard_.size(); }
  const std::vector<std::size_t>& shard() const { return shard_; }

  // Running mean of training loss observed by this client (diagnostic).
  double average_loss() const;

  // Cross-round state snapshot/restore for crash-consistent checkpoints:
  // batch-sampling RNG cursor, client-momentum buffer, loss statistics.
  // The shard itself is NOT serialized — it is a pure function of the
  // trainer config seed and is rebuilt identically on resume.
  void serialize_state(common::ByteWriter& w) const;
  void restore_state(common::ByteReader& r);

 private:
  const data::Dataset* dataset_;
  std::vector<std::size_t> shard_;
  Rng rng_;
  std::vector<float> momentum_buffer_;  // only used with client momentum
  double loss_sum_ = 0.0;
  std::size_t loss_count_ = 0;
  // Per-batch scratch, reused across rounds: with the model's workspace
  // arena this makes a steady-state training batch allocation-free.
  std::vector<std::size_t> picks_, indices_;
  nn::Tensor batch_;
  std::vector<int> labels_;
  nn::LossResult loss_;
};

}  // namespace signguard::fl
