#pragma once
// Crash-consistent trainer checkpoints.
//
// File format (consumed by the same build that wrote it; see
// common/serial.h for the byte conventions):
//
//   offset  size  field
//   0       4     magic "SGCK"
//   4       4     format version (u32, currently 1)
//   8       8     payload length (u64)
//   16      8     FNV-1a64 of the payload bytes
//   24      n     payload (the trainer's serialized state)
//
// Writes are atomic: the blob goes to "<path>.tmp", is flushed and
// fsync'd, then rename(2)'d over the destination — a crash mid-save
// leaves either the previous checkpoint or none, never a torn file.
// Reads verify magic, version, length and checksum and throw
// std::runtime_error on any mismatch: a corrupted checkpoint must fail
// loudly, never resume from garbage.
//
// What goes IN the payload is the trainer's business (fl/trainer.cc):
// model parameters, server momentum and previous aggregate, per-client
// RNG cursors / momentum buffers / loss stats, the trainer's four stream
// cursors, the GAR's and attack's cross-round state, the result
// accumulators, and the caller's extra blob (the sweep observer's fold
// state). The chaos engine (fl/chaos.h) is deliberately absent: its
// draws are stateless in (seed, client, round), so rebuilding it from
// the config reproduces every answer.

#include <functional>
#include <string>
#include <string_view>

#include "common/serial.h"

namespace signguard::fl {

struct CheckpointConfig {
  // Checkpoint file path; empty disables checkpointing entirely.
  std::string path;
  // Save after every `every`-th completed round (1 = every round).
  std::size_t every = 1;
  // Load `path` before training and continue from the saved round. With
  // no file at `path` the run starts from round 0 (first run and resumed
  // run share one command line).
  bool resume = false;
  // Simulated kill switch for crash-recovery tests and the CI
  // chaos-smoke job: stop cleanly after this many completed rounds
  // (TrainingResult::halted = true). 0 = run to completion. The halt
  // does NOT force a save; only the `every` schedule writes checkpoints,
  // exactly like a real crash.
  std::size_t halt_after_round = 0;
  // Observer-side state riding inside the checkpoint (the sweep engine
  // stores its trace fold + captured rounds here, so a resumed scenario
  // emits byte-identical JSONL).
  std::function<void(common::ByteWriter&)> save_extra;
  std::function<void(common::ByteReader&)> load_extra;

  bool active() const { return !path.empty(); }
};

// Atomic checksummed write of `payload` to `path` (via <path>.tmp +
// fsync + rename). Throws std::runtime_error on any I/O failure.
void write_checkpoint_file(const std::string& path, std::string_view payload);

// Reads and verifies a checkpoint, returning the payload. Throws
// std::runtime_error when the file is missing, truncated, of a different
// format version, or fails its checksum.
std::string read_checkpoint_file(const std::string& path);

bool checkpoint_exists(const std::string& path);

}  // namespace signguard::fl
