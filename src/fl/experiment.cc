#include "fl/experiment.h"

#include <cstdlib>
#include <stdexcept>

#include "common/parallel.h"

#include "attacks/adaptive.h"
#include "attacks/byzmean.h"
#include "attacks/lie.h"
#include "attacks/minmax_minsum.h"
#include "attacks/simple_attacks.h"
#include "aggregators/baselines.h"
#include "aggregators/signsgd.h"
#include "core/signguard.h"
#include "data/synth_color.h"
#include "data/synth_image.h"
#include "data/synth_text.h"
#include "nn/models.h"

namespace signguard::fl {

Scale scale_from_env() {
  const char* env = std::getenv("SIGNGUARD_SCALE");
  if (env == nullptr) return Scale::kDefault;
  const std::string s(env);
  if (s == "smoke") return Scale::kSmoke;
  if (s == "full") return Scale::kFull;
  return Scale::kDefault;
}

std::string to_string(Scale s) {
  switch (s) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kFull:
      return "full";
    case Scale::kDefault:
      break;
  }
  return "default";
}

std::string runtime_summary(Scale s) {
  return "scale=" + to_string(s) +
         " threads=" + std::to_string(common::thread_count()) +
         " (set SIGNGUARD_SCALE=smoke|default|full, SIGNGUARD_THREADS=N)";
}

namespace {

std::size_t rounds_for(Scale s, std::size_t smoke, std::size_t def,
                       std::size_t full) {
  switch (s) {
    case Scale::kSmoke:
      return smoke;
    case Scale::kFull:
      return full;
    case Scale::kDefault:
      break;
  }
  return def;
}

}  // namespace

std::string workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kMnistLike:
      return "MNIST-like";
    case WorkloadKind::kFashionLike:
      return "Fashion-like";
    case WorkloadKind::kCifarLike:
      return "CIFAR-like";
    case WorkloadKind::kAgNewsLike:
      break;
  }
  return "AGNews-like";
}

WorkloadKind workload_kind_from_name(const std::string& name) {
  for (const WorkloadKind kind : all_workloads())
    if (workload_name(kind) == name) return kind;
  throw std::invalid_argument("unknown workload: " + name);
}

const std::vector<WorkloadKind>& all_workloads() {
  static const std::vector<WorkloadKind> kAll = {
      WorkloadKind::kMnistLike, WorkloadKind::kFashionLike,
      WorkloadKind::kCifarLike, WorkloadKind::kAgNewsLike};
  return kAll;
}

std::string to_string(ModelProfile p) {
  return p == ModelProfile::kGrid ? "grid" : "paper";
}

Workload make_workload(WorkloadKind kind, ModelProfile profile, Scale scale) {
  Workload w;
  w.name = workload_name(kind);
  w.config.n_clients = 50;
  w.config.byzantine_frac = 0.2;
  w.config.batch_size = 8;
  w.config.lr = 0.15;
  w.config.eval_every = 25;
  w.config.eval_max_samples = 1000;
  w.config.rounds = rounds_for(scale, 30, 100, 300);

  switch (kind) {
    case WorkloadKind::kMnistLike: {
      w.data = data::make_synth_image(data::mnist_like_config());
      if (profile == ModelProfile::kGrid) {
        w.model_factory = [](std::uint64_t seed) {
          return nn::make_mlp(256, 32, 10, seed);
        };
      } else {
        w.model_factory = [](std::uint64_t seed) {
          return nn::make_small_cnn(16, 10, seed);
        };
      }
      break;
    }
    case WorkloadKind::kFashionLike: {
      w.data = data::make_synth_image(data::fashion_like_config());
      if (profile == ModelProfile::kGrid) {
        w.model_factory = [](std::uint64_t seed) {
          return nn::make_mlp(256, 32, 10, seed);
        };
      } else {
        w.model_factory = [](std::uint64_t seed) {
          return nn::make_small_cnn(16, 10, seed);
        };
      }
      break;
    }
    case WorkloadKind::kCifarLike: {
      w.data = data::make_synth_color(data::SynthColorConfig{});
      if (profile == ModelProfile::kGrid) {
        w.model_factory = [](std::uint64_t seed) {
          return nn::make_mlp(768, 24, 10, seed);
        };
      } else {
        w.model_factory = [](std::uint64_t seed) {
          return nn::make_color_cnn(16, 10, seed);
        };
      }
      break;
    }
    case WorkloadKind::kAgNewsLike: {
      w.data = data::make_synth_text(data::SynthTextConfig{});
      w.config.lr = 0.2;  // bag/RNN text models train well a bit hotter
      if (profile == ModelProfile::kGrid) {
        w.model_factory = [](std::uint64_t seed) {
          return nn::make_embed_bag_text(1000, 16, 4, seed);
        };
      } else {
        w.model_factory = [](std::uint64_t seed) {
          return nn::make_text_rnn(1000, 16, 32, 4, seed);
        };
      }
      break;
    }
  }
  return w;
}

std::unique_ptr<attacks::Attack> make_attack(const std::string& name) {
  using namespace attacks;
  if (name == "NoAttack") return std::make_unique<NoAttack>();
  if (name == "Random") return std::make_unique<RandomAttack>();
  if (name == "Noise") return std::make_unique<NoiseAttack>();
  if (name == "LabelFlip") return std::make_unique<LabelFlipAttack>();
  if (name == "ByzMean") return std::make_unique<ByzMeanAttack>();
  if (name == "SignFlip") return std::make_unique<SignFlipAttack>();
  if (name == "LIE") return std::make_unique<LieAttack>(0.3);
  if (name == "MinMax") return std::make_unique<MinMaxAttack>();
  if (name == "MinSum") return std::make_unique<MinSumAttack>();
  if (name == "Reverse") return std::make_unique<ReverseScalingAttack>(3.0);
  // Feedback-driven adaptive variants (attacks/adaptive.h): the static
  // base attack wrapped in amplitude adaptation against the deployed
  // defense. Registered names so CLI grids and config hashes stay stable.
  if (name == "AdaptMinMax")
    return std::make_unique<AdaptiveAttack>(std::make_unique<MinMaxAttack>());
  if (name == "AdaptLIE")
    return std::make_unique<AdaptiveAttack>(
        std::make_unique<LieAttack>(0.3));
  throw std::invalid_argument("unknown attack: " + name);
}

std::unique_ptr<agg::Aggregator> make_aggregator(const std::string& name,
                                                 std::uint64_t seed) {
  using namespace agg;
  using namespace core;
  if (name == "Mean") return std::make_unique<MeanAggregator>();
  if (name == "TrMean") return std::make_unique<TrimmedMeanAggregator>();
  if (name == "Median") return std::make_unique<MedianAggregator>();
  if (name == "GeoMed") return std::make_unique<GeoMedAggregator>();
  if (name == "Multi-Krum") return std::make_unique<MultiKrumAggregator>();
  if (name == "Bulyan") return std::make_unique<BulyanAggregator>();
  if (name == "DnC") return std::make_unique<DnCAggregator>();
  if (name == "SignSGD") return std::make_unique<SignSgdMajorityAggregator>();
  if (name == "SignGuard")
    return std::make_unique<SignGuard>(plain_config(seed));
  if (name == "SignGuard-Sim")
    return std::make_unique<SignGuard>(sim_config(seed));
  if (name == "SignGuard-Dist")
    return std::make_unique<SignGuard>(dist_config(seed));
  throw std::invalid_argument("unknown aggregator: " + name);
}

const std::vector<std::string>& table1_attacks() {
  static const std::vector<std::string> kAttacks = {
      "NoAttack", "Random", "Noise",  "LabelFlip", "ByzMean",
      "SignFlip", "LIE",    "MinMax", "MinSum"};
  return kAttacks;
}

const std::vector<std::string>& table1_defenses() {
  static const std::vector<std::string> kDefenses = {
      "Mean",   "TrMean", "Median",    "GeoMed",
      "Multi-Krum", "Bulyan", "DnC",       "SignGuard",
      "SignGuard-Sim", "SignGuard-Dist"};
  return kDefenses;
}

}  // namespace signguard::fl
