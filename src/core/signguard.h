#pragma once
// SignGuard (paper Algorithm 2): collaborative malicious gradient
// filtering. Each round the received gradients pass through
//   (1) norm-based thresholding  -> S1
//   (2) sign-based clustering    -> S2
// and the trusted set S' = S1 ∩ S2 is aggregated by a norm-clipped mean
// with the median gradient norm as clipping bound.
//
// Variants (paper §IV-B): the plain SignGuard clusters on sign statistics
// only; SignGuard-Sim appends a cosine-similarity feature; SignGuard-Dist
// appends a Euclidean-distance feature. The similarity reference is the
// previous round's aggregate.
//
// Unlike the baselines, SignGuard never reads ctx.assumed_byzantine — it
// does not need to know the Byzantine fraction.

// Compressed-domain entry point: when the uplinks arrive through a
// comm codec, aggregate_wire() runs the same two filters on statistics
// computed straight from the wire bytes (comm/stats.h) and decodes ONLY
// the trusted set — bitwise-identical admission decisions and aggregate
// to the decode-everything path, at a fraction of the bytes touched.

#include <cstdint>
#include <memory>

#include "aggregators/aggregator.h"
#include "comm/stats.h"
#include "core/filters.h"

namespace signguard::core {

struct SignGuardConfig {
  NormFilterConfig norm;
  SignClusterConfig cluster;
  // Ablation toggles (Table III): each component can be disabled.
  bool enable_norm_filter = true;
  bool enable_sign_cluster = true;
  bool enable_norm_clipping = true;
  std::uint64_t seed = 2022;  // drives coordinate sampling / k-means init
};

class SignGuard : public agg::Aggregator {
 public:
  explicit SignGuard(SignGuardConfig cfg = {});

  using agg::Aggregator::aggregate;
  std::vector<float> aggregate(const common::GradientMatrix& grads,
                               const agg::GarContext& ctx) override;

  // The SIGNGUARD_WIREPATH=wire backend: same pipeline, but the norm and
  // sign statistics come from the validated wire buffers and only the
  // post-filter trusted set is decoded (into an internal compacted
  // matrix) for the weighted-mean step. Contract: bitwise-identical
  // selected set and aggregate to aggregate() on the decoded matrix —
  // including the Rng stream, so the two backends stay exchangeable
  // round over round. Preconditions: every buffer was accepted by
  // comm::validate (rejects are the caller's job, exactly as they are
  // for the decoded matrix), uplinks non-empty, supports_wire_path().
  std::vector<float> aggregate_wire(const comm::WireRound& wire,
                                    const agg::GarContext& ctx);

  // The wire path reproduces the plain variant's statistics exactly; the
  // Sim/Dist variants need decoded rows for their similarity feature, so
  // they stay on the decode backend.
  bool supports_wire_path() const {
    return cfg_.cluster.similarity == SimilarityFeature::kNone;
  }

  // Dense bytes materialized by the last aggregate_wire call (trusted
  // set × 4 bytes × d) — the wire path's share of the round's decode
  // traffic; the trainer folds it into RoundObservation.
  std::uint64_t last_decoded_bytes() const { return last_decoded_bytes_; }

  std::string name() const override;
  std::vector<std::size_t> last_selected() const override {
    return selected_;
  }
  bool reports_selection() const override { return true; }

  // Cross-round state: the internal Rng (coordinate sampling / k-means
  // init cursor) and the previous-aggregate similarity reference.
  void serialize_state(common::ByteWriter& w) const override;
  void restore_state(common::ByteReader& r) override;

  // Diagnostics from the last aggregate() call.
  const NormFilterResult& last_norm_filter() const { return last_norm_; }
  const SignClusterResult& last_sign_cluster() const { return last_cluster_; }
  const std::vector<float>& previous_aggregate() const {
    return prev_aggregate_;
  }

  // Drops cross-round state (the previous-aggregate reference).
  void reset();

 private:
  SignGuardConfig cfg_;
  Rng rng_;
  std::vector<float> prev_aggregate_;
  std::vector<std::size_t> selected_;
  NormFilterResult last_norm_;
  SignClusterResult last_cluster_;
  // aggregate_wire scratch: the compacted survivor matrix and its
  // per-survivor norms (gathered from the stats pass), reused across
  // rounds so the wire path allocates only on growth.
  common::GradientMatrix wire_survivors_;
  std::vector<double> survivor_norms_;
  std::vector<std::size_t> survivor_ids_;
  std::uint64_t last_decoded_bytes_ = 0;
};

// Config presets matching the paper's three variants.
SignGuardConfig plain_config(std::uint64_t seed = 2022);
SignGuardConfig sim_config(std::uint64_t seed = 2022);
SignGuardConfig dist_config(std::uint64_t seed = 2022);

}  // namespace signguard::core
