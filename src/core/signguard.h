#pragma once
// SignGuard (paper Algorithm 2): collaborative malicious gradient
// filtering. Each round the received gradients pass through
//   (1) norm-based thresholding  -> S1
//   (2) sign-based clustering    -> S2
// and the trusted set S' = S1 ∩ S2 is aggregated by a norm-clipped mean
// with the median gradient norm as clipping bound.
//
// Variants (paper §IV-B): the plain SignGuard clusters on sign statistics
// only; SignGuard-Sim appends a cosine-similarity feature; SignGuard-Dist
// appends a Euclidean-distance feature. The similarity reference is the
// previous round's aggregate.
//
// Unlike the baselines, SignGuard never reads ctx.assumed_byzantine — it
// does not need to know the Byzantine fraction.

#include <cstdint>
#include <memory>

#include "aggregators/aggregator.h"
#include "core/filters.h"

namespace signguard::core {

struct SignGuardConfig {
  NormFilterConfig norm;
  SignClusterConfig cluster;
  // Ablation toggles (Table III): each component can be disabled.
  bool enable_norm_filter = true;
  bool enable_sign_cluster = true;
  bool enable_norm_clipping = true;
  std::uint64_t seed = 2022;  // drives coordinate sampling / k-means init
};

class SignGuard : public agg::Aggregator {
 public:
  explicit SignGuard(SignGuardConfig cfg = {});

  using agg::Aggregator::aggregate;
  std::vector<float> aggregate(const common::GradientMatrix& grads,
                               const agg::GarContext& ctx) override;

  std::string name() const override;
  std::vector<std::size_t> last_selected() const override {
    return selected_;
  }

  // Diagnostics from the last aggregate() call.
  const NormFilterResult& last_norm_filter() const { return last_norm_; }
  const SignClusterResult& last_sign_cluster() const { return last_cluster_; }
  const std::vector<float>& previous_aggregate() const {
    return prev_aggregate_;
  }

  // Drops cross-round state (the previous-aggregate reference).
  void reset();

 private:
  SignGuardConfig cfg_;
  Rng rng_;
  std::vector<float> prev_aggregate_;
  std::vector<std::size_t> selected_;
  NormFilterResult last_norm_;
  SignClusterResult last_cluster_;
};

// Config presets matching the paper's three variants.
SignGuardConfig plain_config(std::uint64_t seed = 2022);
SignGuardConfig sim_config(std::uint64_t seed = 2022);
SignGuardConfig dist_config(std::uint64_t seed = 2022);

}  // namespace signguard::core
