#include "core/filters.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cluster/kmeans.h"
#include "common/gradient_stats.h"
#include "common/quantiles.h"
#include "common/vecops.h"

namespace signguard::core {

NormFilterResult norm_filter(std::span<const std::vector<float>> grads,
                             const NormFilterConfig& cfg) {
  NormFilterResult r;
  r.norms.reserve(grads.size());
  for (const auto& g : grads) r.norms.push_back(vec::norm(g));
  // Byzantine payloads may carry NaN/Inf; they are rejected outright and
  // excluded from the median so they cannot poison the reference norm.
  std::vector<double> finite;
  finite.reserve(r.norms.size());
  for (const double n : r.norms)
    if (std::isfinite(n)) finite.push_back(n);
  if (finite.empty()) return r;  // nothing trustworthy this round
  r.median_norm = stats::median(finite);
  // Degenerate case: all-zero gradients; accept the finite ones (nothing
  // to threshold against) and let aggregation return zero.
  if (r.median_norm <= 0.0) {
    for (std::size_t i = 0; i < grads.size(); ++i)
      if (std::isfinite(r.norms[i])) r.accepted.push_back(i);
    return r;
  }
  for (std::size_t i = 0; i < grads.size(); ++i) {
    if (!std::isfinite(r.norms[i])) continue;
    const double ratio = r.norms[i] / r.median_norm;
    if (ratio >= cfg.lower && ratio <= cfg.upper) r.accepted.push_back(i);
  }
  return r;
}

SignClusterResult sign_cluster_filter(
    std::span<const std::vector<float>> grads,
    std::span<const float> reference, double median_norm,
    const SignClusterConfig& cfg, Rng& rng) {
  SignClusterResult result;
  const std::size_t n = grads.size();
  if (n == 0) return result;
  const std::size_t d = grads.front().size();

  // Randomized coordinate selection, shared by every gradient this round.
  const auto coords = select_coordinates(d, cfg.coord_frac, rng);

  result.features.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SignStats s = sign_statistics(grads[i], coords);
    std::vector<float> f = {static_cast<float>(s.pos),
                            static_cast<float>(s.zero),
                            static_cast<float>(s.neg)};
    switch (cfg.similarity) {
      case SimilarityFeature::kNone:
        break;
      case SimilarityFeature::kCosine: {
        const double sim =
            reference.empty() ? median_pairwise_cosine(grads, i)
                              : vec::cosine(grads[i], reference);
        f.push_back(static_cast<float>(sim));
        break;
      }
      case SimilarityFeature::kDistance: {
        double dist;
        if (reference.empty()) {
          // Median distance to the other gradients as the proxy.
          std::vector<double> ds;
          ds.reserve(n - 1);
          for (std::size_t j = 0; j < n; ++j)
            if (j != i) ds.push_back(vec::dist(grads[i], grads[j]));
          dist = ds.empty() ? 0.0 : stats::median(ds);
        } else {
          dist = vec::dist(grads[i], reference);
        }
        // Normalize by the median norm so the feature is dimensionless and
        // comparable in scale to the sign proportions.
        const double scale = median_norm > 0.0 ? median_norm : 1.0;
        f.push_back(static_cast<float>(dist / scale));
        break;
      }
    }
    result.features.push_back(std::move(f));
  }

  cluster::ClusterResult cr;
  if (cfg.clusterer == Clusterer::kMeanShift) {
    cr = cluster::mean_shift(result.features, cfg.meanshift);
  } else {
    cluster::KMeansConfig km;
    km.k = 2;
    cr = cluster::kmeans(result.features, km, rng);
  }
  result.n_clusters = cr.n_clusters;
  result.accepted = cr.members(cr.largest_cluster());
  return result;
}

std::vector<float> clipped_mean(std::span<const std::vector<float>> grads,
                                std::span<const std::size_t> selected,
                                double bound, bool clip) {
  assert(!selected.empty());
  const std::size_t d = grads.front().size();
  std::vector<float> out(d, 0.0f);
  for (const std::size_t idx : selected) {
    const auto& g = grads[idx];
    double w = 1.0;
    if (clip && bound > 0.0) {
      const double nrm = vec::norm(g);
      if (nrm > bound) w = bound / nrm;
    }
    vec::axpy(w, g, out);
  }
  vec::scale(out, 1.0 / double(selected.size()));
  return out;
}

std::vector<std::size_t> intersect_indices(std::span<const std::size_t> a,
                                           std::span<const std::size_t> b) {
  std::vector<std::size_t> sa(a.begin(), a.end());
  std::vector<std::size_t> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::vector<std::size_t> out;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace signguard::core
