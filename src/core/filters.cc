#include "core/filters.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cluster/kmeans.h"
#include "common/gradient_stats.h"
#include "common/parallel.h"
#include "common/quantiles.h"
#include "common/vecops.h"

namespace signguard::core {

NormFilterResult norm_filter_from_norms(std::vector<double> norms,
                                        const NormFilterConfig& cfg) {
  NormFilterResult r;
  r.norms = std::move(norms);
  // Byzantine payloads may carry NaN/Inf; they are rejected outright and
  // excluded from the median so they cannot poison the reference norm.
  std::vector<double> finite;
  finite.reserve(r.norms.size());
  for (const double n : r.norms)
    if (std::isfinite(n)) finite.push_back(n);
  if (finite.empty()) return r;  // nothing trustworthy this round
  r.median_norm = stats::median(finite);
  // Degenerate case: all-zero gradients; accept the finite ones (nothing
  // to threshold against) and let aggregation return zero.
  if (r.median_norm <= 0.0) {
    for (std::size_t i = 0; i < r.norms.size(); ++i)
      if (std::isfinite(r.norms[i])) r.accepted.push_back(i);
    return r;
  }
  for (std::size_t i = 0; i < r.norms.size(); ++i) {
    if (!std::isfinite(r.norms[i])) continue;
    const double ratio = r.norms[i] / r.median_norm;
    if (ratio >= cfg.lower && ratio <= cfg.upper) r.accepted.push_back(i);
  }
  return r;
}

NormFilterResult norm_filter(const common::GradientMatrix& grads,
                             const NormFilterConfig& cfg) {
  return norm_filter_from_norms(vec::row_norms(grads), cfg);
}

NormFilterResult norm_filter(std::span<const std::vector<float>> grads,
                             const NormFilterConfig& cfg) {
  return norm_filter(common::GradientMatrix::from_vectors(grads), cfg);
}

SignClusterResult sign_cluster_filter(const common::GradientMatrix& grads,
                                      std::span<const float> reference,
                                      double median_norm,
                                      const SignClusterConfig& cfg,
                                      Rng& rng) {
  SignClusterResult result;
  const std::size_t n = grads.rows();
  if (n == 0) return result;
  const std::size_t d = grads.cols();

  // Randomized coordinate selection, shared by every gradient this round
  // (drawn on the calling thread so the Rng stream is pool-size
  // independent).
  const auto coords = select_coordinates(d, cfg.coord_frac, rng);

  // Fused threaded pass: per-client sign statistics over the shared
  // coordinate subset.
  const std::vector<SignStats> stats_rows = sign_statistics(grads, coords);

  // Optional similarity feature, computed for all clients at once: one
  // threaded row_dots/row_norms pass against the reference, or one
  // threaded pairwise block when no reference exists yet.
  std::vector<double> similarity(n, 0.0);
  switch (cfg.similarity) {
    case SimilarityFeature::kNone:
      break;  // plain SignGuard: sign statistics only
    case SimilarityFeature::kCosine: {
      if (reference.empty()) {
        similarity = median_pairwise_cosines(grads);
      } else {
        const auto dots = vec::row_dots(grads, reference);
        const auto norms = vec::row_norms(grads);
        const double ref_norm = vec::norm(reference);
        for (std::size_t i = 0; i < n; ++i)
          similarity[i] = (norms[i] == 0.0 || ref_norm == 0.0)
                              ? 0.0
                              : dots[i] / (norms[i] * ref_norm);
      }
      break;
    }
    case SimilarityFeature::kDistance: {
      std::vector<double> dist(n, 0.0);
      if (reference.empty()) {
        // Median distance to the other gradients as the proxy.
        dist = median_pairwise_distances(grads);
      } else {
        common::parallel_for(n, [&](std::size_t i) {
          dist[i] = vec::dist(grads.row(i), reference);
        });
      }
      // Normalize by the median norm so the feature is dimensionless
      // and comparable in scale to the sign proportions.
      const double scale = median_norm > 0.0 ? median_norm : 1.0;
      for (std::size_t i = 0; i < n; ++i) similarity[i] = dist[i] / scale;
      break;
    }
  }

  return sign_cluster_filter_from_stats(stats_rows, similarity, cfg, rng);
}

SignClusterResult sign_cluster_filter_from_stats(
    std::span<const SignStats> stats, std::span<const double> similarity,
    const SignClusterConfig& cfg, Rng& rng) {
  SignClusterResult result;
  const std::size_t n = stats.size();
  if (n == 0) return result;
  const bool has_similarity = cfg.similarity != SimilarityFeature::kNone;
  assert(!has_similarity || similarity.size() == n);

  // Feature rows live in their own small flat matrix (n x 3 or n x 4)
  // that the clusterers consume as row spans; the legacy per-row vectors
  // are kept on the result for diagnostics and tests.
  const std::size_t feat_dim = has_similarity ? 4 : 3;
  common::GradientMatrix features(n, feat_dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto f = features.row(i);
    f[0] = static_cast<float>(stats[i].pos);
    f[1] = static_cast<float>(stats[i].zero);
    f[2] = static_cast<float>(stats[i].neg);
    if (has_similarity) f[3] = static_cast<float>(similarity[i]);
  }
  result.features = features.to_vectors();

  cluster::ClusterResult cr;
  if (cfg.clusterer == Clusterer::kMeanShift) {
    cr = cluster::mean_shift(features, cfg.meanshift);
  } else {
    cluster::KMeansConfig km;
    km.k = 2;
    cr = cluster::kmeans(features, km, rng);
  }
  result.n_clusters = cr.n_clusters;
  result.accepted = cr.members(cr.largest_cluster());
  return result;
}

SignClusterResult sign_cluster_filter(
    std::span<const std::vector<float>> grads,
    std::span<const float> reference, double median_norm,
    const SignClusterConfig& cfg, Rng& rng) {
  return sign_cluster_filter(common::GradientMatrix::from_vectors(grads),
                             reference, median_norm, cfg, rng);
}

std::vector<float> clipped_mean(const common::GradientMatrix& grads,
                                std::span<const std::size_t> selected,
                                double bound, bool clip,
                                std::span<const double> row_norms) {
  assert(!selected.empty());
  assert(row_norms.empty() || row_norms.size() == grads.rows());
  // Per-row clip weights — from the caller's precomputed norms when it
  // has them (the norm filter's pass), else one threaded norm pass —
  // then one coordinate-parallel weighted accumulation.
  std::vector<double> weights(selected.size(), 1.0);
  if (clip && bound > 0.0) {
    common::parallel_for(selected.size(), [&](std::size_t k) {
      const double nrm = row_norms.empty()
                             ? vec::norm(grads.row(selected[k]))
                             : row_norms[selected[k]];
      if (nrm > bound) weights[k] = bound / nrm;
    });
  }
  return vec::weighted_mean_of_subset(grads, selected, weights);
}

std::vector<float> clipped_mean(std::span<const std::vector<float>> grads,
                                std::span<const std::size_t> selected,
                                double bound, bool clip) {
  return clipped_mean(common::GradientMatrix::from_vectors(grads), selected,
                      bound, clip);
}

std::vector<std::size_t> intersect_indices(std::span<const std::size_t> a,
                                           std::span<const std::size_t> b) {
  std::vector<std::size_t> sa(a.begin(), a.end());
  std::vector<std::size_t> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::vector<std::size_t> out;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace signguard::core
