#include "core/signguard.h"

#include <cassert>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "aggregators/internal.h"
#include "common/parallel.h"
#include "obs/trace.h"

namespace signguard::core {

SignGuard::SignGuard(SignGuardConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

std::string SignGuard::name() const {
  switch (cfg_.cluster.similarity) {
    case SimilarityFeature::kCosine:
      return "SignGuard-Sim";
    case SimilarityFeature::kDistance:
      return "SignGuard-Dist";
    case SimilarityFeature::kNone:
      break;
  }
  return "SignGuard";
}

std::vector<float> SignGuard::aggregate(const common::GradientMatrix& grads,
                                        const agg::GarContext&) {
  agg::check_grads(grads);
  const std::size_t n = grads.rows();
  obs::Span span("agg/signguard", std::int64_t(n));
  // Steps 1–2 (and the intersection) are the filter stage; the clipped
  // mean after filter_stage.reset() bills to the caller's aggregate
  // stage. An optional rather than a block: the early return below must
  // stay an early return.
  std::optional<obs::StageScope> filter_stage;
  filter_stage.emplace(obs::Stage::kFilter);

  // Step 1: norm-based thresholding (also computes the clipping bound M).
  last_norm_ = norm_filter(grads, cfg_.norm);

  // Even when the norm filter is ablated away, non-finite gradients are
  // screened: Byzantine clients can send NaN/Inf payloads and no
  // downstream statistic is defined on them.
  std::vector<std::size_t> all;
  all.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (std::isfinite(last_norm_.norms[i])) all.push_back(i);
  if (all.empty()) {
    // No trustworthy gradient this round; emit a zero update.
    selected_.clear();
    last_cluster_ = SignClusterResult{};
    obs::count(obs::Stage::kFilter, obs::Counter::kFilterRejects, n);
    prev_aggregate_.assign(grads.cols(), 0.0f);
    return prev_aggregate_;
  }

  const std::vector<std::size_t>& s1 =
      cfg_.enable_norm_filter ? last_norm_.accepted : all;

  // Step 2: sign-based clustering.
  std::vector<std::size_t> s2 = all;
  if (cfg_.enable_sign_cluster) {
    last_cluster_ = sign_cluster_filter(grads, prev_aggregate_,
                                        last_norm_.median_norm, cfg_.cluster,
                                        rng_);
    s2 = last_cluster_.accepted;
  } else {
    last_cluster_ = SignClusterResult{};
  }

  // Step 3: trusted set = S1 ∩ S2, then norm-clipped mean aggregation.
  selected_ = intersect_indices(s1, s2);
  // The intersection can come up empty (e.g. the largest sign-cluster was
  // entirely norm-rejected). Fall back to the less aggressive single
  // filter rather than emitting nothing — an empty update would stall
  // training without any robustness benefit.
  if (selected_.empty()) selected_ = !s1.empty() ? s1 : all;
  obs::count(obs::Stage::kFilter, obs::Counter::kFilterAdmits,
             selected_.size());
  obs::count(obs::Stage::kFilter, obs::Counter::kFilterRejects,
             n - selected_.size());
  filter_stage.reset();

  // The norm filter already paid for every row norm; reusing them here is
  // bitwise-identical to recomputing (same accumulation chain).
  std::vector<float> agg =
      clipped_mean(grads, selected_, last_norm_.median_norm,
                   cfg_.enable_norm_clipping, last_norm_.norms);
  prev_aggregate_ = agg;
  return agg;
}

std::vector<float> SignGuard::aggregate_wire(const comm::WireRound& wire,
                                             const agg::GarContext&) {
  if (wire.codec == nullptr || wire.uplinks.empty())
    throw std::invalid_argument("aggregate_wire: empty wire round");
  assert(supports_wire_path());
  const std::size_t n = wire.uplinks.size();
  const std::size_t d = wire.d;
  last_decoded_bytes_ = 0;
  obs::Span span("agg/signguard-wire", std::int64_t(n));
  std::optional<obs::StageScope> filter_stage;
  filter_stage.emplace(obs::Stage::kFilter);

  // Step 1: norm-based thresholding on norms derived from wire bytes
  // (bitwise equal to vec::row_norms of the decoded matrix).
  last_norm_ = norm_filter_from_norms(comm::wire_row_norms(wire), cfg_.norm);

  std::vector<std::size_t> all;
  all.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (std::isfinite(last_norm_.norms[i])) all.push_back(i);
  if (all.empty()) {
    // No trustworthy gradient this round; emit a zero update. (Mirrors
    // aggregate(): in particular no coordinate sample is drawn, keeping
    // the Rng streams of the two backends aligned.)
    selected_.clear();
    last_cluster_ = SignClusterResult{};
    obs::count(obs::Stage::kFilter, obs::Counter::kFilterRejects, n);
    prev_aggregate_.assign(d, 0.0f);
    return prev_aggregate_;
  }

  const std::vector<std::size_t>& s1 =
      cfg_.enable_norm_filter ? last_norm_.accepted : all;

  // Step 2: sign-based clustering on popcount/code-derived sign
  // statistics — the same coordinate sample (same Rng draw), bitwise the
  // same proportions, hence the same clusters.
  std::vector<std::size_t> s2 = all;
  if (cfg_.enable_sign_cluster) {
    const auto coords = select_coordinates(d, cfg_.cluster.coord_frac, rng_);
    const comm::CoordMask mask(d, wire.codec->chunk(), coords);
    const auto stats = comm::wire_sign_stats(wire, mask);
    last_cluster_ = sign_cluster_filter_from_stats(stats, {}, cfg_.cluster,
                                                   rng_);
    s2 = last_cluster_.accepted;
  } else {
    last_cluster_ = SignClusterResult{};
  }

  // Step 3: trusted set, then lazy decode — only survivors are ever
  // materialized as f32, compacted into the reusable scratch matrix.
  selected_ = intersect_indices(s1, s2);
  if (selected_.empty()) selected_ = !s1.empty() ? s1 : all;
  obs::count(obs::Stage::kFilter, obs::Counter::kFilterAdmits,
             selected_.size());
  obs::count(obs::Stage::kFilter, obs::Counter::kFilterRejects,
             n - selected_.size());
  filter_stage.reset();

  wire_survivors_.resize(selected_.size(), d);
  survivor_norms_.resize(selected_.size());
  common::parallel_for(selected_.size(), [&](std::size_t k) {
    const comm::DecodeStatus st = comm::decode_into(
        *wire.codec, wire.uplinks[selected_[k]], wire_survivors_.row(k));
    assert(st == comm::DecodeStatus::kOk);  // caller validated every buffer
    (void)st;
    survivor_norms_[k] = last_norm_.norms[selected_[k]];
  });
  last_decoded_bytes_ = std::uint64_t(selected_.size()) * d * 4;
  obs::count(obs::Stage::kDecode, obs::Counter::kRowsDecoded,
             selected_.size());
  obs::count(obs::Stage::kDecode, obs::Counter::kDenseBytes,
             last_decoded_bytes_);

  survivor_ids_.resize(selected_.size());
  std::iota(survivor_ids_.begin(), survivor_ids_.end(), std::size_t{0});
  std::vector<float> agg =
      clipped_mean(wire_survivors_, survivor_ids_, last_norm_.median_norm,
                   cfg_.enable_norm_clipping, survivor_norms_);
  prev_aggregate_ = agg;
  return agg;
}

void SignGuard::serialize_state(common::ByteWriter& w) const {
  w.str(rng_.state());
  w.floats(prev_aggregate_);
}

void SignGuard::restore_state(common::ByteReader& r) {
  rng_.set_state(r.str());
  prev_aggregate_ = r.floats();
}

void SignGuard::reset() {
  prev_aggregate_.clear();
  selected_.clear();
  last_norm_ = NormFilterResult{};
  last_cluster_ = SignClusterResult{};
  last_decoded_bytes_ = 0;
}

SignGuardConfig plain_config(std::uint64_t seed) {
  SignGuardConfig cfg;
  cfg.seed = seed;
  return cfg;
}

SignGuardConfig sim_config(std::uint64_t seed) {
  SignGuardConfig cfg;
  cfg.cluster.similarity = SimilarityFeature::kCosine;
  cfg.seed = seed;
  return cfg;
}

SignGuardConfig dist_config(std::uint64_t seed) {
  SignGuardConfig cfg;
  cfg.cluster.similarity = SimilarityFeature::kDistance;
  cfg.seed = seed;
  return cfg;
}

}  // namespace signguard::core
