#pragma once
// The two collaborative filters of SignGuard (paper Algorithm 2) as
// standalone, individually testable components, plus the norm-clipped mean
// aggregation step. The SignGuard aggregator composes them; the Table III
// ablation bench toggles them one by one.
//
// Matrix overloads are the primary implementations: row norms, the fused
// sign-statistic pass and the pairwise similarity blocks all run on the
// shared thread pool. The vector-of-vectors overloads adapt via one copy
// into a GradientMatrix.

#include <span>
#include <vector>

#include "cluster/meanshift.h"
#include "common/gradient_matrix.h"
#include "common/gradient_stats.h"  // SignStats
#include "common/rng.h"

namespace signguard::core {

// ---- Step 1: norm-based thresholding --------------------------------------

struct NormFilterConfig {
  double lower = 0.1;  // L: loose lower bound (small gradients are harmless)
  double upper = 3.0;  // R: strict upper bound (huge gradients are malicious)
};

struct NormFilterResult {
  std::vector<std::size_t> accepted;  // S1: indices with L <= ||g||/M <= R
  double median_norm = 0.0;           // M, reused as the clipping bound
  std::vector<double> norms;          // per-gradient l2 norms
};

NormFilterResult norm_filter(const common::GradientMatrix& grads,
                             const NormFilterConfig& cfg);
NormFilterResult norm_filter(std::span<const std::vector<float>> grads,
                             const NormFilterConfig& cfg);

// Statistics-input entry point: the same filter given precomputed
// per-gradient norms (the matrix overloads delegate here after one
// vec::row_norms pass). This is what the compressed-domain wire path
// feeds with comm::wire_row_norms — bitwise-identical norms in, so
// bitwise-identical admission decisions out.
NormFilterResult norm_filter_from_norms(std::vector<double> norms,
                                        const NormFilterConfig& cfg);

// ---- Step 2: sign-based clustering -----------------------------------------

// Which similarity feature to append to the sign statistics: none is the
// plain SignGuard; cosine is SignGuard-Sim; distance is SignGuard-Dist.
enum class SimilarityFeature { kNone, kCosine, kDistance };

enum class Clusterer { kMeanShift, kKMeans2 };

struct SignClusterConfig {
  double coord_frac = 0.1;  // fraction of coordinates randomly sampled
  SimilarityFeature similarity = SimilarityFeature::kNone;
  Clusterer clusterer = Clusterer::kMeanShift;
  cluster::MeanShiftConfig meanshift = {};
};

struct SignClusterResult {
  std::vector<std::size_t> accepted;        // S2: the largest cluster
  std::vector<std::vector<float>> features; // per-gradient feature rows
  std::size_t n_clusters = 0;
};

// `reference` is the "correct gradient" proxy for the similarity feature
// (the previous round's aggregate). When empty, the median of pairwise
// similarities is used instead, as suggested in §IV-B. `median_norm`
// normalizes the distance feature to a dimensionless scale.
SignClusterResult sign_cluster_filter(const common::GradientMatrix& grads,
                                      std::span<const float> reference,
                                      double median_norm,
                                      const SignClusterConfig& cfg, Rng& rng);
SignClusterResult sign_cluster_filter(
    std::span<const std::vector<float>> grads, std::span<const float> reference,
    double median_norm, const SignClusterConfig& cfg, Rng& rng);

// Statistics-input entry point: clustering on precomputed per-client
// sign statistics (plus the similarity feature when cfg.similarity is
// not kNone — `similarity` must then hold one value per client; it is
// ignored otherwise). The matrix overload delegates here after its
// fused sign_statistics pass; the wire path feeds it from
// comm::wire_sign_stats. Consumes the Rng exactly like the matrix
// overload's clustering stage (only kKMeans2 draws), so the two paths
// stay stream-aligned.
SignClusterResult sign_cluster_filter_from_stats(
    std::span<const SignStats> stats, std::span<const double> similarity,
    const SignClusterConfig& cfg, Rng& rng);

// ---- Step 3: aggregation ----------------------------------------------------

// Mean over the selected gradients with per-gradient norm clipping:
//   (1/|S|) * sum_{i in S} g_i * min(1, bound/||g_i||)       (Algorithm 2,
// line 14). With clip == false it degrades to the plain subset mean.
// `row_norms`, when non-empty, supplies ||g_i|| indexed by GLOBAL row
// (one entry per matrix row, not per selected index) and skips the
// per-row norm recomputation — the norm filter already paid for it.
// vec::norm(row) and a row_norms entry are the same accumulation chain,
// so passing them is a bitwise no-op.
std::vector<float> clipped_mean(const common::GradientMatrix& grads,
                                std::span<const std::size_t> selected,
                                double bound, bool clip = true,
                                std::span<const double> row_norms = {});
std::vector<float> clipped_mean(std::span<const std::vector<float>> grads,
                                std::span<const std::size_t> selected,
                                double bound, bool clip = true);

// Sorted intersection of two index sets (each unsorted, duplicate-free).
std::vector<std::size_t> intersect_indices(std::span<const std::size_t> a,
                                           std::span<const std::size_t> b);

}  // namespace signguard::core
