#pragma once
// Aligned plain-text table printer used by the bench harnesses to emit
// paper-style tables (Table I/II/III rows and figure series).

#include <string>
#include <vector>

namespace signguard {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Formats a double with fixed precision; convenience for accuracy cells.
  static std::string fmt(double v, int precision = 2);

  // Renders the table with column alignment and a header separator.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace signguard
