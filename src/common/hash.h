#pragma once
// Small deterministic hashing utilities shared by the RNG stream-splitting
// machinery and the sweep engine's trace checksums. Everything here is a
// pure function of its inputs — no platform, thread-count or
// iteration-order dependence — so hashes are stable across runs and are
// safe to commit in golden files.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace signguard::common {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

// FNV-1a over raw bytes, resumable via the `state` parameter so a running
// checksum can fold many buffers (e.g. one per round) into one value.
inline std::uint64_t fnv1a64(const void* data, std::size_t len,
                             std::uint64_t state = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    state ^= p[i];
    state *= kFnvPrime;
  }
  return state;
}

inline std::uint64_t fnv1a64(std::string_view s,
                             std::uint64_t state = kFnvOffsetBasis) {
  return fnv1a64(s.data(), s.size(), state);
}

// Finalizing mix from the splitmix64 generator: a cheap bijective
// scrambler used to turn structured keys (hashes, indices) into
// well-distributed seeds for independent RNG streams.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// The seed of stream `key` under root seed `root` — the single stream
// derivation shared by Rng::stream and the sweep engine's per-scenario
// seeds. Two splitmix64 rounds keep adjacent (root, key) pairs (the
// common case: scenario grids) decorrelated.
inline std::uint64_t stream_seed(std::uint64_t root, std::uint64_t key) {
  return splitmix64(splitmix64(root) ^ key);
}

}  // namespace signguard::common
