#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace signguard {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(int(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace signguard
