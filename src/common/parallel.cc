#include "common/parallel.h"

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace signguard::common {

namespace {

// True while the current thread is executing a pool chunk; nested
// parallel_chunks calls from inside a kernel run inline instead of
// deadlocking on the pool.
thread_local bool t_in_pool = false;

// RAII so t_in_pool is restored even when a kernel throws — otherwise the
// thread would be permanently stuck on the nested-inline path.
struct InPoolScope {
  bool saved = t_in_pool;
  InPoolScope() { t_in_pool = true; }
  ~InPoolScope() { t_in_pool = saved; }
};

// Per-thread opaque context (task_context / set_task_context): the
// launching thread's value is captured at job submission and installed on
// every helper for the duration of its chunk. The caller thread keeps its
// own value, so nested-inline execution sees it unchanged.
thread_local void* t_task_ctx = nullptr;

struct TaskContextScope {
  void* saved = t_task_ctx;
  explicit TaskContextScope(void* ctx) { t_task_ctx = ctx; }
  ~TaskContextScope() { t_task_ctx = saved; }
};

std::size_t auto_thread_count() {
  if (const char* env = std::getenv("SIGNGUARD_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// A lazily started pool of n-1 helper threads; the caller of run() acts
// as worker 0. Workers idle on a condition variable between jobs, so a
// round of several kernel launches reuses the same threads. Jobs are
// launched from one thread at a time (the simulation driver); the pool is
// not re-entrant across caller threads.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  std::size_t size() {
    std::lock_guard<std::mutex> lock(mu_);
    return target_size();
  }

  void set_override(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    override_ = n;
    resize_locked(lock, target_size());
  }

  void run(std::size_t total,
           const std::function<void(std::size_t, std::size_t, std::size_t)>&
               fn) {
    if (total == 0) return;
    std::unique_lock<std::mutex> lock(mu_);
    const std::size_t n_workers = target_size();
    resize_locked(lock, n_workers);
    if (n_workers <= 1 || total == 1) {
      lock.unlock();
      run_inline(total, fn);
      return;
    }
    job_fn_ = &fn;
    job_total_ = total;
    job_workers_ = n_workers;
    job_ctx_ = t_task_ctx;
    job_error_ = nullptr;
    pending_ = workers_.size();
    ++generation_;
    lock.unlock();
    cv_start_.notify_all();

    // Run worker 0's share; even if it throws, the helpers must finish
    // draining before `fn` (the caller's temporary) can be destroyed.
    std::exception_ptr error;
    try {
      run_chunk(total, n_workers, /*worker=*/0, fn);
    } catch (...) {
      error = std::current_exception();
    }

    lock.lock();
    cv_done_.wait(lock, [this] { return pending_ == 0; });
    job_fn_ = nullptr;
    if (!error) error = job_error_;
    job_error_ = nullptr;
    if (error) {
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& t : workers_) t.join();
  }

 private:
  ThreadPool() = default;

  std::size_t target_size() const {
    return override_ > 0 ? override_ : auto_thread_count();
  }

  static void run_chunk(
      std::size_t total, std::size_t n_workers, std::size_t worker,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
    // Contiguous near-even split of [0, total) over n_workers.
    const std::size_t base = total / n_workers;
    const std::size_t rem = total % n_workers;
    const std::size_t begin =
        worker * base + std::min<std::size_t>(worker, rem);
    const std::size_t end = begin + base + (worker < rem ? 1 : 0);
    if (begin >= end) return;
    InPoolScope scope;
    fn(begin, end, worker);
  }

  static void run_inline(
      std::size_t total,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
    InPoolScope scope;
    fn(0, total, 0);
  }

  // Brings the helper-thread count to n - 1. `lock` owns mu_ on entry and
  // on exit; it is released while joining so exiting workers can finish.
  void resize_locked(std::unique_lock<std::mutex>& lock, std::size_t n) {
    const std::size_t helpers = n > 0 ? n - 1 : 0;
    if (workers_.size() == helpers) return;
    stop_ = true;
    cv_start_.notify_all();
    lock.unlock();
    for (auto& t : workers_) t.join();
    lock.lock();
    workers_.clear();
    stop_ = false;
    for (std::size_t w = 1; w <= helpers; ++w) {
      // Hand the worker the current generation so it only reacts to jobs
      // submitted after its spawn.
      workers_.emplace_back(
          [this, w, gen = generation_] { worker_loop(w, gen); });
    }
  }

  void worker_loop(std::size_t worker, std::uint64_t seen) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      const auto* fn = job_fn_;
      const std::size_t total = job_total_;
      const std::size_t n_workers = job_workers_;
      void* const ctx = job_ctx_;
      lock.unlock();
      std::exception_ptr error;
      if (fn != nullptr && worker < n_workers) {
        TaskContextScope ctx_scope(ctx);
        try {
          run_chunk(total, n_workers, worker, *fn);
        } catch (...) {
          // Helper-side exceptions must not reach std::terminate; the
          // first one is rethrown to the run() caller after the drain.
          error = std::current_exception();
        }
      }
      lock.lock();
      if (error && !job_error_) job_error_ = error;
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  std::vector<std::thread> workers_;
  std::size_t override_ = 0;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* job_fn_ =
      nullptr;
  std::size_t job_total_ = 0;
  std::size_t job_workers_ = 1;
  void* job_ctx_ = nullptr;
  std::exception_ptr job_error_ = nullptr;
};

}  // namespace

std::size_t thread_count() { return ThreadPool::instance().size(); }

void set_thread_count(std::size_t n) {
  ThreadPool::instance().set_override(n);
}

void parallel_chunks(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (total == 0) return;
  if (t_in_pool) {  // nested: run the whole range on this worker
    fn(0, total, 0);
    return;
  }
  ThreadPool::instance().run(total, fn);
}

bool in_parallel_region() { return t_in_pool; }

void* task_context() { return t_task_ctx; }

void set_task_context(void* ctx) { t_task_ctx = ctx; }

void parallel_for(std::size_t total,
                  const std::function<void(std::size_t)>& fn) {
  parallel_chunks(total,
                  [&fn](std::size_t begin, std::size_t end, std::size_t) {
                    for (std::size_t i = begin; i < end; ++i) fn(i);
                  });
}

}  // namespace signguard::common
