#include "common/gradient_matrix.h"

#include <algorithm>
#include <cassert>

#include "common/parallel.h"

namespace signguard::common {

GradientMatrix GradientMatrix::from_vectors(
    std::span<const std::vector<float>> rows) {
  const std::vector<std::span<const float>> views(rows.begin(), rows.end());
  return from_views(views);
}

GradientMatrix GradientMatrix::from_views(
    std::span<const std::span<const float>> rows) {
  GradientMatrix m;
  if (rows.empty()) return m;
  m.rows_ = rows.size();
  m.cols_ = rows.front().size();
  m.data_.resize(m.rows_ * m.cols_);
  parallel_for(m.rows_, [&](std::size_t i) {
    assert(rows[i].size() == m.cols_);
    std::copy(rows[i].begin(), rows[i].end(),
              m.data_.begin() + std::ptrdiff_t(i * m.cols_));
  });
  return m;
}

std::vector<std::vector<float>> GradientMatrix::to_vectors() const {
  std::vector<std::vector<float>> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const auto r = row(i);
    out[i].assign(r.begin(), r.end());
  }
  return out;
}

void GradientMatrix::fill_zero() {
  std::fill(data_.begin(), data_.end(), 0.0f);
}

std::vector<std::span<const float>> GradientMatrix::row_views() const {
  std::vector<std::span<const float>> views;
  views.reserve(rows_);
  for (std::size_t i = 0; i < rows_; ++i) views.push_back(row(i));
  return views;
}

}  // namespace signguard::common
