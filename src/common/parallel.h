#pragma once
// Process-wide thread pool behind the matrix kernels and the parallel
// federated round (the "ParallelFor" helper of the flat-gradient
// pipeline). Sized by std::thread::hardware_concurrency, overridable via
// the SIGNGUARD_THREADS environment variable or set_thread_count().
//
// Determinism contract: parallel_chunks hands each worker a contiguous
// index range and every kernel in this codebase writes only to slots of
// its own range (per row, per coordinate, per pair). Reductions inside a
// slot run sequentially, so results are bit-identical for any thread
// count — SIGNGUARD_THREADS=1 and =64 produce the same floats.

#include <cstddef>
#include <functional>

namespace signguard::common {

// Worker count used by parallel_chunks / parallel_for. Resolution order:
// set_thread_count() override, then SIGNGUARD_THREADS (clamped to >= 1),
// then hardware_concurrency. Always >= 1.
std::size_t thread_count();

// Overrides the pool size (rebuilds the pool). n == 0 restores the
// automatic choice. Must not be called concurrently with a running
// parallel_chunks.
void set_thread_count(std::size_t n);

// Splits [0, total) into one contiguous chunk per worker and runs
// fn(begin, end, worker) in parallel; worker is in [0, thread_count()).
// The calling thread participates as worker 0. Blocks until every chunk
// is done. Nested calls execute inline on the calling worker.
void parallel_chunks(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

// Convenience wrapper: fn(i) for every i in [0, total), parallelized.
void parallel_for(std::size_t total,
                  const std::function<void(std::size_t)>& fn);

// True while the calling thread is executing inside a parallel_chunks
// worker. Nested parallel_chunks calls from such a context run inline on
// the calling worker; outer coordinators (e.g. the sweep engine) and
// per-worker scratch sizing (the trainer's model pool) use this to tell
// the two regimes apart.
bool in_parallel_region();

// Opaque per-thread context pointer, propagated from the thread that
// launches a parallel_chunks job to the helper threads executing its
// chunks (and restored to null on each helper afterwards). The caller
// must keep the pointee alive for the job's duration — trivially true,
// since run() blocks. Used by the observability layer (src/obs) to hand
// pool workers the launching thread's metrics context without threading
// a parameter through every kernel.
void* task_context();
void set_task_context(void* ctx);

}  // namespace signguard::common
