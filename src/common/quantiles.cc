#include "common/quantiles.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace signguard::stats {

namespace {

double median_in_place(std::vector<double>& v) {
  assert(!v.empty());
  const std::size_t n = v.size();
  const std::size_t mid = n / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  const double hi = v[mid];
  if (n % 2 == 1) return hi;
  // Even size: the other middle element is the max of the lower half.
  const double lo = *std::max_element(v.begin(), v.begin() + mid);
  return 0.5 * (lo + hi);
}

}  // namespace

double median(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  return median_in_place(v);
}

double median(std::span<const float> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  return median_in_place(v);
}

double quantile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * double(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - double(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double trimmed_mean(std::span<const double> xs, std::size_t trim) {
  assert(xs.size() > 2 * trim);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  double acc = 0.0;
  for (std::size_t i = trim; i < v.size() - trim; ++i) acc += v[i];
  return acc / double(v.size() - 2 * trim);
}

double mean_around_median(std::span<const double> xs, std::size_t k) {
  assert(k >= 1 && k <= xs.size());
  const double med = median(xs);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end(), [med](double a, double b) {
    return std::abs(a - med) < std::abs(b - med);
  });
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) acc += v[i];
  return acc / double(k);
}

double mean(std::span<const double> xs) {
  assert(!xs.empty());
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / double(xs.size());
}

double stddev(std::span<const double> xs) {
  const double mu = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / double(xs.size()));
}

}  // namespace signguard::stats
