#include "common/quantiles.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace signguard::stats {

namespace {

double median_in_place(std::vector<double>& v) {
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  const std::size_t n = v.size();
  const std::size_t mid = n / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  const double hi = v[mid];
  if (n % 2 == 1) return hi;
  // Even size: the other middle element is the max of the lower half.
  const double lo = *std::max_element(v.begin(), v.begin() + mid);
  return 0.5 * (lo + hi);
}

}  // namespace

double median(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  return median_in_place(v);
}

double median(std::span<const float> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  return median_in_place(v);
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t last = v.size() - 1;
  const double pos = q * double(last);
  // Clamp both interpolation indices: at q == 1.0, FP round-off can push
  // ceil(pos) one past the final order statistic.
  const std::size_t lo =
      std::min(static_cast<std::size_t>(std::floor(pos)), last);
  const std::size_t hi =
      std::min(static_cast<std::size_t>(std::ceil(pos)), last);
  // Two selections instead of a full sort: the lo-th order statistic,
  // then (hi == lo + 1 whenever they differ) the minimum of the upper
  // partition — exactly the order statistics the sort produced.
  std::nth_element(v.begin(), v.begin() + std::ptrdiff_t(lo), v.end());
  const double vlo = v[lo];
  double vhi = vlo;
  if (hi != lo) {
    std::nth_element(v.begin() + std::ptrdiff_t(lo) + 1,
                     v.begin() + std::ptrdiff_t(hi), v.end());
    vhi = v[hi];
  }
  const double frac = pos - double(lo);
  return vlo * (1.0 - frac) + vhi * frac;
}

double trimmed_mean(std::span<const double> xs, std::size_t trim) {
  assert(xs.size() > 2 * trim);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  double acc = 0.0;
  for (std::size_t i = trim; i < v.size() - trim; ++i) acc += v[i];
  return acc / double(v.size() - 2 * trim);
}

double mean_around_median(std::span<const double> xs, std::size_t k) {
  assert(k >= 1 && k <= xs.size());
  const double med = median(xs);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end(), [med](double a, double b) {
    return std::abs(a - med) < std::abs(b - med);
  });
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) acc += v[i];
  return acc / double(k);
}

double mean(std::span<const double> xs) {
  assert(!xs.empty());
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / double(xs.size());
}

double stddev(std::span<const double> xs) {
  const double mu = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / double(xs.size()));
}

}  // namespace signguard::stats
