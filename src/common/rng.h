#pragma once
// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in the library (data generation, mini-batch
// sampling, attacks, clustering seeds) draws from an explicitly seeded Rng
// so that a whole federated-learning experiment is a pure function of its
// configuration seed.

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace signguard {

// A seedable pseudo-random generator with the distribution helpers the
// library needs. Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  // Standard normal draw scaled to N(mean, stddev^2).
  double normal(double mean = 0.0, double stddev = 1.0);

  // Uniform integer in [lo, hi] inclusive.
  int randint(int lo, int hi);

  // Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  // Derive an independent child generator; advancing the child does not
  // affect this generator beyond the single draw used to seed it.
  Rng split();

  // Stateless keyed stream splitting: the generator for stream `key`
  // under root seed `root`. Unlike split(), no parent generator is
  // consulted or advanced, so any number of streams can be derived in any
  // order (or concurrently) and each depends only on (root, key) — the
  // property the sweep engine needs for per-scenario determinism.
  static Rng stream(std::uint64_t root, std::uint64_t key);

  // Fisher-Yates shuffle of an index container.
  void shuffle(std::span<std::size_t> items);
  void shuffle(std::span<int> items);

  // k distinct indices sampled uniformly from [0, n). Order is random.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // Same draws, written into `out` (capacity-reusing; identical sequence
  // to sample_without_replacement for the same engine state).
  void sample_without_replacement_into(std::size_t n, std::size_t k,
                                       std::vector<std::size_t>& out);

  // Vector of n iid N(mean, stddev^2) floats.
  std::vector<float> normal_vector(std::size_t n, double mean = 0.0,
                                   double stddev = 1.0);

  std::mt19937_64& engine() { return engine_; }

  // Exact engine state as a portable text blob (mt19937_64's stream
  // operators), for crash-consistent checkpoints: set_state(state())
  // reproduces the draw sequence bitwise. Throws std::runtime_error on a
  // malformed blob.
  std::string state() const;
  void set_state(std::string_view s);

 private:
  std::mt19937_64 engine_;
};

}  // namespace signguard
