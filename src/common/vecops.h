#pragma once
// Dense float-vector primitives shared by the NN library, the attacks and
// the aggregation rules. Gradients throughout the project are flat
// std::vector<float> buffers; read-only views are std::span<const float>.

#include <cstddef>
#include <span>
#include <vector>

namespace signguard::vec {

// Inner product <a, b>. Preconditions: a.size() == b.size().
double dot(std::span<const float> a, std::span<const float> b);

// Euclidean norm ||a||_2.
double norm(std::span<const float> a);

// Squared Euclidean distance ||a - b||^2.
double dist2(std::span<const float> a, std::span<const float> b);

// Euclidean distance ||a - b||.
double dist(std::span<const float> a, std::span<const float> b);

// Cosine similarity <a,b>/(||a||·||b||); 0 when either norm is 0.
double cosine(std::span<const float> a, std::span<const float> b);

// y += alpha * x  (classic axpy).
void axpy(double alpha, std::span<const float> x, std::span<float> y);

// x *= alpha.
void scale(std::span<float> x, double alpha);

// Element-wise out = a - b.
std::vector<float> sub(std::span<const float> a, std::span<const float> b);

// Element-wise out = a + b.
std::vector<float> add(std::span<const float> a, std::span<const float> b);

// out = alpha * a.
std::vector<float> scaled(std::span<const float> a, double alpha);

// Arithmetic mean of a non-empty set of equal-length vectors.
std::vector<float> mean_of(std::span<const std::vector<float>> vs);

// Mean of the subset vs[idx] for idx in `indices` (non-empty).
std::vector<float> mean_of_subset(std::span<const std::vector<float>> vs,
                                  std::span<const std::size_t> indices);

// Coordinate-wise mean and standard deviation (population, i.e. /n) over a
// set of equal-length vectors.
struct CoordinateMoments {
  std::vector<float> mean;
  std::vector<float> stddev;
};
CoordinateMoments coordinate_moments(std::span<const std::vector<float>> vs);

// In-place rescale so that ||x|| <= bound (no-op when already within, or
// when ||x|| == 0).
void clip_norm(std::span<float> x, double bound);

// Element-wise sign as -1 / 0 / +1 stored in int8-like floats.
std::vector<float> sign(std::span<const float> a);

// Fills `out` with zeros; convenience for accumulators.
void zero(std::span<float> out);

}  // namespace signguard::vec
