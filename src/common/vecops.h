#pragma once
// Dense float-vector primitives shared by the NN library, the attacks and
// the aggregation rules. Gradients throughout the project are flat
// std::vector<float> buffers; read-only views are std::span<const float>.
// A round's worth of gradients is a common::GradientMatrix, and the
// matrix-level kernels at the bottom of this header run on the shared
// thread pool (common/parallel.h) with thread-count-invariant results.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/gradient_matrix.h"

namespace signguard::vec {

// ---- pairwise-geometry backend ---------------------------------------------
// The O(n^2 d) pairwise blocks behind Krum/Bulyan/Min-Max/Min-Sum and the
// similarity filters come in two numerically distinct flavours:
//   kGram   — one n x n Gram matrix from a single nn::gemm_nt(G, G) call
//             (float accumulation, register-tiled, thread-parallel), with
//             dist2(i, j) = <g_i,g_i> + <g_j,g_j> - 2<g_i,g_j> clamped at 0.
//   kDirect — the scalar per-pair loops with one double accumulator per
//             entry: the reference backend for tolerance cross-checks.
// Both are bitwise thread-count-invariant; they differ from each other by
// float-vs-double rounding and by cancellation on near-duplicate rows, so
// cross-backend comparisons are tolerance-based, never bitwise.
enum class DistBackend { kGram, kDirect };

// Active backend: set_dist_backend() override if any, else the
// SIGNGUARD_DIST environment variable ("direct" selects the scalar pair
// loops; anything else, or unset, selects the Gram path).
DistBackend dist_backend();
void set_dist_backend(DistBackend b);

// Inner product <a, b>. Preconditions: a.size() == b.size().
double dot(std::span<const float> a, std::span<const float> b);

// Euclidean norm ||a||_2.
double norm(std::span<const float> a);

// Squared Euclidean distance ||a - b||^2.
double dist2(std::span<const float> a, std::span<const float> b);

// Euclidean distance ||a - b||.
double dist(std::span<const float> a, std::span<const float> b);

// Cosine similarity <a,b>/(||a||·||b||); 0 when either norm is 0.
double cosine(std::span<const float> a, std::span<const float> b);

// y += alpha * x  (classic axpy).
void axpy(double alpha, std::span<const float> x, std::span<float> y);

// x *= alpha.
void scale(std::span<float> x, double alpha);

// Element-wise out = a - b.
std::vector<float> sub(std::span<const float> a, std::span<const float> b);

// Element-wise out = a + b.
std::vector<float> add(std::span<const float> a, std::span<const float> b);

// out = alpha * a.
std::vector<float> scaled(std::span<const float> a, double alpha);

// Arithmetic mean of a non-empty set of equal-length vectors.
std::vector<float> mean_of(std::span<const std::vector<float>> vs);

// Mean of the subset vs[idx] for idx in `indices` (non-empty).
std::vector<float> mean_of_subset(std::span<const std::vector<float>> vs,
                                  std::span<const std::size_t> indices);

// Coordinate-wise mean and standard deviation (population, i.e. /n) over a
// set of equal-length vectors.
struct CoordinateMoments {
  std::vector<float> mean;
  std::vector<float> stddev;
};
CoordinateMoments coordinate_moments(std::span<const std::vector<float>> vs);

// In-place rescale so that ||x|| <= bound (no-op when already within, or
// when ||x|| == 0).
void clip_norm(std::span<float> x, double bound);

// Element-wise sign as -1 / 0 / +1 stored in int8-like floats.
std::vector<float> sign(std::span<const float> a);

// Fills `out` with zeros; convenience for accumulators.
void zero(std::span<float> out);

// ---- borrowed-row-set overloads --------------------------------------------
// Same math as the vector-of-vectors versions, over spans that typically
// alias GradientMatrix rows (the attack layer's AttackContext shape).

std::vector<float> mean_of(std::span<const std::span<const float>> vs);
CoordinateMoments coordinate_moments(
    std::span<const std::span<const float>> vs);

// ---- matrix kernels (threaded) ---------------------------------------------
// All kernels below parallelize over rows, pairs or coordinate ranges of
// the flat matrix; each output slot is produced by exactly one chunk with
// sequential inner accumulation, so results do not depend on the thread
// count.

// Accumulator tile width shared by the coordinate-parallel reductions
// (mean/weighted-mean/moments here, GeoMed's Weiszfeld sweep): a worker's
// chunk of a d=1M gradient is a multi-megabyte accumulator that would be
// re-streamed from memory once per row; a 4K-coordinate tile (32 KB of
// doubles) stays in L1 across the whole row loop. Tiling only regroups
// coordinates — each coordinate still accumulates over rows in the same
// order — so results are bitwise unchanged.
inline constexpr std::size_t kAccumulatorTile = 4096;

// Per-row l2 norms.
std::vector<double> row_norms(const common::GradientMatrix& g);

// Per-row inner products <g_i, ref>. Precondition: ref.size() == cols.
std::vector<double> row_dots(const common::GradientMatrix& g,
                             std::span<const float> ref);

// Dense symmetric n x n blocks, row-major, diagonal zero / self-dot.
// Computed by the active DistBackend (one GEMM for the Gram path, scalar
// pair loops for the direct path).
std::vector<double> pairwise_dist2(const common::GradientMatrix& g);
std::vector<double> pairwise_dot(const common::GradientMatrix& g);

// Packed upper triangle of pairwise squared distances: n*(n-1)/2 entries,
// (i, j) with i < j at [i*(2n-i-1)/2 + j-i-1] — half the memory of the
// dense block. Same backend dispatch and the same values as the dense
// kernel. Backs PairwiseDistances.
std::vector<double> pairwise_dist2_packed(const common::GradientMatrix& g);

// Arithmetic mean of all rows / of the rows in `indices` (non-empty).
std::vector<float> mean_of(const common::GradientMatrix& g);
std::vector<float> mean_of_subset(const common::GradientMatrix& g,
                                  std::span<const std::size_t> indices);

// sum_k(weights[k] * g.row(indices[k])) / indices.size() — the clipped-
// mean inner loop. Precondition: weights.size() == indices.size() > 0.
std::vector<float> weighted_mean_of_subset(
    const common::GradientMatrix& g, std::span<const std::size_t> indices,
    std::span<const double> weights);

// Coordinate-wise mean/stddev in one fused pass over the matrix.
CoordinateMoments coordinate_moments(const common::GradientMatrix& g);

// ---- column panels ---------------------------------------------------------
// Cache-blocked column-statistic sweep: transposes fixed-width column
// tiles of g — restricted to `rows` when non-empty, all rows otherwise —
// into a per-worker panel, then calls fn(j, column) for every coordinate
// j with that column's values contiguous and mutable (selection
// algorithms may permute them), ordered by position in `rows`. Each tile
// reads the source row-major (every cache line touched once) instead of
// the per-coordinate stride-d walk, and each coordinate is produced by
// exactly one worker, so results are thread-count-invariant whenever fn
// is deterministic.
void for_each_column(
    const common::GradientMatrix& g, std::span<const std::size_t> rows,
    const std::function<void(std::size_t, std::span<float>)>& fn);

}  // namespace signguard::vec
