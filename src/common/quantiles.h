#pragma once
// Order statistics over small scalar samples: medians, quantiles and
// trimmed means. These back the coordinate-wise robust aggregation rules
// and SignGuard's norm-median reference.

#include <cstddef>
#include <span>
#include <vector>

namespace signguard::stats {

// Median of a sample (copies, so the input is untouched). For even sizes
// returns the average of the two middle elements. Returns quiet NaN on an
// empty sample (callers that cannot tolerate NaN must check first).
double median(std::span<const double> xs);
double median(std::span<const float> xs);

// q-quantile by linear interpolation between order statistics. q is
// clamped to [0, 1]; the interpolation indices are clamped to the sample,
// so q == 1.0 is safe even when FP round-off pushes ceil(pos) past the
// last element. Returns quiet NaN on an empty sample.
double quantile(std::span<const double> xs, double q);

// Mean after removing the `trim` smallest and `trim` largest entries.
// Precondition: xs.size() > 2 * trim.
double trimmed_mean(std::span<const double> xs, std::size_t trim);

// Mean of the k values closest to the median of xs (Bulyan's coordinate
// step). Precondition: 1 <= k <= xs.size().
double mean_around_median(std::span<const double> xs, std::size_t k);

// Arithmetic mean; Precondition: non-empty.
double mean(std::span<const double> xs);

// Population standard deviation; Precondition: non-empty.
double stddev(std::span<const double> xs);

}  // namespace signguard::stats
