#include "common/vecops.h"

#include <cassert>
#include <cmath>

namespace signguard::vec {

double dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += double(a[i]) * double(b[i]);
  return acc;
}

double norm(std::span<const float> a) { return std::sqrt(dot(a, a)); }

double dist2(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = double(a[i]) - double(b[i]);
    acc += d * d;
  }
  return acc;
}

double dist(std::span<const float> a, std::span<const float> b) {
  return std::sqrt(dist2(a, b));
}

double cosine(std::span<const float> a, std::span<const float> b) {
  const double na = norm(a);
  const double nb = norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

void axpy(double alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    y[i] = static_cast<float>(double(y[i]) + alpha * double(x[i]));
}

void scale(std::span<float> x, double alpha) {
  for (auto& v : x) v = static_cast<float>(double(v) * alpha);
}

std::vector<float> sub(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<float> add(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<float> scaled(std::span<const float> a, double alpha) {
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = static_cast<float>(double(a[i]) * alpha);
  return out;
}

std::vector<float> mean_of(std::span<const std::vector<float>> vs) {
  assert(!vs.empty());
  std::vector<float> out(vs.front().size(), 0.0f);
  for (const auto& v : vs) axpy(1.0, v, out);
  scale(out, 1.0 / double(vs.size()));
  return out;
}

std::vector<float> mean_of_subset(std::span<const std::vector<float>> vs,
                                  std::span<const std::size_t> indices) {
  assert(!indices.empty());
  std::vector<float> out(vs.front().size(), 0.0f);
  for (const std::size_t idx : indices) axpy(1.0, vs[idx], out);
  scale(out, 1.0 / double(indices.size()));
  return out;
}

CoordinateMoments coordinate_moments(std::span<const std::vector<float>> vs) {
  assert(!vs.empty());
  const std::size_t d = vs.front().size();
  const double n = double(vs.size());
  CoordinateMoments m;
  m.mean.assign(d, 0.0f);
  m.stddev.assign(d, 0.0f);
  std::vector<double> sum(d, 0.0), sum_sq(d, 0.0);
  for (const auto& v : vs) {
    for (std::size_t j = 0; j < d; ++j) {
      sum[j] += v[j];
      sum_sq[j] += double(v[j]) * double(v[j]);
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const double mu = sum[j] / n;
    const double var = std::max(0.0, sum_sq[j] / n - mu * mu);
    m.mean[j] = static_cast<float>(mu);
    m.stddev[j] = static_cast<float>(std::sqrt(var));
  }
  return m;
}

void clip_norm(std::span<float> x, double bound) {
  const double n = norm(x);
  if (n > bound && n > 0.0) scale(x, bound / n);
}

std::vector<float> sign(std::span<const float> a) {
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = a[i] > 0.0f ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
  return out;
}

void zero(std::span<float> out) {
  for (auto& v : out) v = 0.0f;
}

}  // namespace signguard::vec
