#include "common/vecops.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/parallel.h"
#include "nn/gemm.h"

namespace signguard::vec {

namespace {

DistBackend dist_backend_from_env() {
  const char* env = std::getenv("SIGNGUARD_DIST");
  if (env != nullptr && std::string(env) == "direct")
    return DistBackend::kDirect;
  return DistBackend::kGram;
}

std::atomic<DistBackend> g_dist_backend{dist_backend_from_env()};

}  // namespace

DistBackend dist_backend() {
  return g_dist_backend.load(std::memory_order_relaxed);
}

void set_dist_backend(DistBackend b) {
  g_dist_backend.store(b, std::memory_order_relaxed);
}

double dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += double(a[i]) * double(b[i]);
  return acc;
}

double norm(std::span<const float> a) { return std::sqrt(dot(a, a)); }

double dist2(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = double(a[i]) - double(b[i]);
    acc += d * d;
  }
  return acc;
}

double dist(std::span<const float> a, std::span<const float> b) {
  return std::sqrt(dist2(a, b));
}

double cosine(std::span<const float> a, std::span<const float> b) {
  const double na = norm(a);
  const double nb = norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

void axpy(double alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    y[i] = static_cast<float>(double(y[i]) + alpha * double(x[i]));
}

void scale(std::span<float> x, double alpha) {
  for (auto& v : x) v = static_cast<float>(double(v) * alpha);
}

std::vector<float> sub(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<float> add(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<float> scaled(std::span<const float> a, double alpha) {
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = static_cast<float>(double(a[i]) * alpha);
  return out;
}

std::vector<float> mean_of(std::span<const std::vector<float>> vs) {
  const std::vector<std::span<const float>> views(vs.begin(), vs.end());
  return mean_of(std::span<const std::span<const float>>(views));
}

std::vector<float> mean_of_subset(std::span<const std::vector<float>> vs,
                                  std::span<const std::size_t> indices) {
  assert(!indices.empty());
  std::vector<float> out(vs.front().size(), 0.0f);
  for (const std::size_t idx : indices) axpy(1.0, vs[idx], out);
  scale(out, 1.0 / double(indices.size()));
  return out;
}

CoordinateMoments coordinate_moments(std::span<const std::vector<float>> vs) {
  const std::vector<std::span<const float>> views(vs.begin(), vs.end());
  return coordinate_moments(std::span<const std::span<const float>>(views));
}

void clip_norm(std::span<float> x, double bound) {
  const double n = norm(x);
  if (n > bound && n > 0.0) scale(x, bound / n);
}

std::vector<float> sign(std::span<const float> a) {
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = a[i] > 0.0f ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
  return out;
}

void zero(std::span<float> out) {
  for (auto& v : out) v = 0.0f;
}

// ---- borrowed-row-set overloads --------------------------------------------

std::vector<float> mean_of(std::span<const std::span<const float>> vs) {
  assert(!vs.empty());
  std::vector<float> out(vs.front().size(), 0.0f);
  for (const auto v : vs) axpy(1.0, v, out);
  scale(out, 1.0 / double(vs.size()));
  return out;
}

CoordinateMoments coordinate_moments(
    std::span<const std::span<const float>> vs) {
  assert(!vs.empty());
  const std::size_t d = vs.front().size();
  const double n = double(vs.size());
  CoordinateMoments m;
  m.mean.assign(d, 0.0f);
  m.stddev.assign(d, 0.0f);
  std::vector<double> sum(d, 0.0), sum_sq(d, 0.0);
  for (const auto v : vs) {
    for (std::size_t j = 0; j < d; ++j) {
      sum[j] += v[j];
      sum_sq[j] += double(v[j]) * double(v[j]);
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const double mu = sum[j] / n;
    const double var = std::max(0.0, sum_sq[j] / n - mu * mu);
    m.mean[j] = static_cast<float>(mu);
    m.stddev[j] = static_cast<float>(std::sqrt(var));
  }
  return m;
}

// ---- matrix kernels (threaded) ---------------------------------------------

std::vector<double> row_norms(const common::GradientMatrix& g) {
  std::vector<double> out(g.rows(), 0.0);
  common::parallel_for(g.rows(),
                       [&](std::size_t i) { out[i] = norm(g.row(i)); });
  return out;
}

std::vector<double> row_dots(const common::GradientMatrix& g,
                             std::span<const float> ref) {
  assert(ref.size() == g.cols() || g.rows() == 0);
  std::vector<double> out(g.rows(), 0.0);
  common::parallel_for(g.rows(),
                       [&](std::size_t i) { out[i] = dot(g.row(i), ref); });
  return out;
}

namespace {

// Parallelizes a symmetric pairwise kernel over the upper-triangle pair
// list so work stays balanced when n is small and d is huge. The direct
// (reference) backend.
template <typename Kernel>
std::vector<double> pairwise_block(const common::GradientMatrix& g,
                                   Kernel&& kernel, bool self_dot) {
  const std::size_t n = g.rows();
  std::vector<double> out(n * n, 0.0);
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  common::parallel_for(pairs.size(), [&](std::size_t p) {
    const auto [i, j] = pairs[p];
    const double v = kernel(g.row(i), g.row(j));
    out[i * n + j] = v;
    out[j * n + i] = v;
  });
  if (self_dot)
    common::parallel_for(
        n, [&](std::size_t i) { out[i * n + i] = dot(g.row(i), g.row(i)); });
  return out;
}

// Upper-triangle Gram matrix <g_i, g_j> via GEMM: for each 64-row block
// [i0, i1), one gemm_nt call fills C[i0:i1, i0:n] = G_block * G[i0:]^T —
// the diagonal and upper triangle only, which halves the flops of a full
// C = G * G^T against a symmetric result. Every C element still comes
// from the pinned GEMM accumulation contract (one float accumulator,
// ascending k), so the entries are bitwise identical to the single full
// call and thread-count-invariant. When `mirror` is set the lower
// triangle is filled by reflection for dense consumers; the packed
// kernel reads the upper triangle only and skips it.
std::vector<float> gram_matrix(const common::GradientMatrix& g,
                               bool mirror) {
  const std::size_t n = g.rows();
  const std::size_t d = g.cols();
  std::vector<float> gram(n * n, 0.0f);
  constexpr std::size_t kRowBlock = 64;
  for (std::size_t i0 = 0; i0 < n; i0 += kRowBlock) {
    const std::size_t i1 = std::min(n, i0 + kRowBlock);
    nn::gemm_nt(i1 - i0, n - i0, d, g.data() + i0 * d, d, g.data() + i0 * d,
                d, gram.data() + i0 * n + i0, n, /*accumulate=*/false);
  }
  if (mirror)
    common::parallel_for(n, [&](std::size_t j) {
      for (std::size_t i = 0; i < j; ++i) gram[j * n + i] = gram[i * n + j];
    });
  return gram;
}

// dist2 from Gram entries; clamped at 0 because cancellation on
// near-duplicate rows can push the identity slightly negative.
inline double dist2_from_gram(const std::vector<float>& gram, std::size_t n,
                              std::size_t i, std::size_t j) {
  const double d2 = double(gram[i * n + i]) + double(gram[j * n + j]) -
                    2.0 * double(gram[i * n + j]);
  return std::max(0.0, d2);
}

// Offset of row i's packed-triangle segment: entries (i, j) for j > i.
inline std::size_t packed_row_offset(std::size_t n, std::size_t i) {
  return i * (2 * n - i - 1) / 2;
}

}  // namespace

std::vector<double> pairwise_dist2(const common::GradientMatrix& g) {
  const std::size_t n = g.rows();
  if (dist_backend() == DistBackend::kGram && n >= 2) {
    const auto gram = gram_matrix(g, /*mirror=*/true);
    std::vector<double> out(n * n, 0.0);
    common::parallel_for(n, [&](std::size_t i) {
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) out[i * n + j] = dist2_from_gram(gram, n, i, j);
    });
    return out;
  }
  return pairwise_block(
      g,
      [](std::span<const float> a, std::span<const float> b) {
        return dist2(a, b);
      },
      /*self_dot=*/false);
}

std::vector<double> pairwise_dot(const common::GradientMatrix& g) {
  const std::size_t n = g.rows();
  if (dist_backend() == DistBackend::kGram && n >= 1) {
    const auto gram = gram_matrix(g, /*mirror=*/true);
    std::vector<double> out(n * n, 0.0);
    common::parallel_for(n, [&](std::size_t i) {
      for (std::size_t j = 0; j < n; ++j) out[i * n + j] = double(gram[i * n + j]);
    });
    return out;
  }
  return pairwise_block(
      g,
      [](std::span<const float> a, std::span<const float> b) {
        return dot(a, b);
      },
      /*self_dot=*/true);
}

std::vector<double> pairwise_dist2_packed(const common::GradientMatrix& g) {
  const std::size_t n = g.rows();
  if (n < 2) return {};
  std::vector<double> out(n * (n - 1) / 2, 0.0);
  if (dist_backend() == DistBackend::kGram) {
    const auto gram = gram_matrix(g, /*mirror=*/false);
    common::parallel_for(n - 1, [&](std::size_t i) {
      const std::size_t base = packed_row_offset(n, i);
      for (std::size_t j = i + 1; j < n; ++j)
        out[base + j - i - 1] = dist2_from_gram(gram, n, i, j);
    });
    return out;
  }
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  common::parallel_for(pairs.size(), [&](std::size_t p) {
    const auto [i, j] = pairs[p];
    out[packed_row_offset(n, i) + j - i - 1] = dist2(g.row(i), g.row(j));
  });
  return out;
}

namespace {

constexpr std::size_t kAccTile = kAccumulatorTile;  // local shorthand

// Coordinate-parallel weighted accumulation: each chunk owns a disjoint
// coordinate range and walks the selected rows in order, so the float
// rounding sequence per coordinate is fixed for any thread count.
std::vector<float> accumulate_columns(const common::GradientMatrix& g,
                                      std::span<const std::size_t> indices,
                                      std::span<const double> weights,
                                      double inv_count) {
  assert(!indices.empty());
  const std::size_t d = g.cols();
  std::vector<float> out(d, 0.0f);
  common::parallel_chunks(
      d, [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<double> acc(std::min(kAccTile, end - begin), 0.0);
        for (std::size_t t0 = begin; t0 < end; t0 += kAccTile) {
          const std::size_t t1 = std::min(end, t0 + kAccTile);
          std::fill(acc.begin(), acc.begin() + std::ptrdiff_t(t1 - t0), 0.0);
          for (std::size_t k = 0; k < indices.size(); ++k) {
            const auto row = g.row(indices[k]);
            const double w = weights.empty() ? 1.0 : weights[k];
            for (std::size_t j = t0; j < t1; ++j)
              acc[j - t0] += w * double(row[j]);
          }
          for (std::size_t j = t0; j < t1; ++j)
            out[j] = static_cast<float>(acc[j - t0] * inv_count);
        }
      });
  return out;
}

}  // namespace

std::vector<float> mean_of(const common::GradientMatrix& g) {
  assert(!g.empty());
  std::vector<std::size_t> all(g.rows());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return accumulate_columns(g, all, {}, 1.0 / double(g.rows()));
}

std::vector<float> mean_of_subset(const common::GradientMatrix& g,
                                  std::span<const std::size_t> indices) {
  return accumulate_columns(g, indices, {}, 1.0 / double(indices.size()));
}

std::vector<float> weighted_mean_of_subset(
    const common::GradientMatrix& g, std::span<const std::size_t> indices,
    std::span<const double> weights) {
  assert(weights.size() == indices.size());
  return accumulate_columns(g, indices, weights,
                            1.0 / double(indices.size()));
}

CoordinateMoments coordinate_moments(const common::GradientMatrix& g) {
  assert(!g.empty());
  const std::size_t d = g.cols();
  const std::size_t n = g.rows();
  CoordinateMoments m;
  m.mean.assign(d, 0.0f);
  m.stddev.assign(d, 0.0f);
  common::parallel_chunks(
      d, [&](std::size_t begin, std::size_t end, std::size_t) {
        const std::size_t tile = std::min(kAccTile, end - begin);
        std::vector<double> sum(tile, 0.0), sum_sq(tile, 0.0);
        for (std::size_t t0 = begin; t0 < end; t0 += kAccTile) {
          const std::size_t t1 = std::min(end, t0 + kAccTile);
          std::fill(sum.begin(), sum.begin() + std::ptrdiff_t(t1 - t0), 0.0);
          std::fill(sum_sq.begin(), sum_sq.begin() + std::ptrdiff_t(t1 - t0),
                    0.0);
          for (std::size_t i = 0; i < n; ++i) {
            const auto row = g.row(i);
            for (std::size_t j = t0; j < t1; ++j) {
              const double v = double(row[j]);
              sum[j - t0] += v;
              sum_sq[j - t0] += v * v;
            }
          }
          for (std::size_t j = t0; j < t1; ++j) {
            const double mu = sum[j - t0] / double(n);
            const double var =
                std::max(0.0, sum_sq[j - t0] / double(n) - mu * mu);
            m.mean[j] = static_cast<float>(mu);
            m.stddev[j] = static_cast<float>(std::sqrt(var));
          }
        }
      });
  return m;
}

void for_each_column(
    const common::GradientMatrix& g, std::span<const std::size_t> rows,
    const std::function<void(std::size_t, std::span<float>)>& fn) {
  const std::size_t d = g.cols();
  const std::size_t n = rows.empty() ? g.rows() : rows.size();
  if (n == 0 || d == 0) return;
  // Panel width: 64 columns x n rows. The transposition pass reads each
  // source row segment sequentially (one cache-line touch per line) and
  // scatters into 64 write streams — n * 256 bytes of panel, L2-resident
  // for any realistic cohort size.
  constexpr std::size_t kPanelCols = 64;
  const std::size_t tiles = (d + kPanelCols - 1) / kPanelCols;
  common::parallel_chunks(
      tiles, [&](std::size_t t_begin, std::size_t t_end, std::size_t) {
        std::vector<float> panel(kPanelCols * n);
        for (std::size_t t = t_begin; t < t_end; ++t) {
          const std::size_t j0 = t * kPanelCols;
          const std::size_t j1 = std::min(d, j0 + kPanelCols);
          const std::size_t w = j1 - j0;
          for (std::size_t r = 0; r < n; ++r) {
            const auto row = g.row(rows.empty() ? r : rows[r]);
            for (std::size_t c = 0; c < w; ++c)
              panel[c * n + r] = row[j0 + c];
          }
          for (std::size_t c = 0; c < w; ++c)
            fn(j0 + c, std::span<float>(panel.data() + c * n, n));
        }
      });
}

}  // namespace signguard::vec

