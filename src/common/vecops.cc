#include "common/vecops.h"

#include <cassert>
#include <cmath>

#include "common/parallel.h"

namespace signguard::vec {

double dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += double(a[i]) * double(b[i]);
  return acc;
}

double norm(std::span<const float> a) { return std::sqrt(dot(a, a)); }

double dist2(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = double(a[i]) - double(b[i]);
    acc += d * d;
  }
  return acc;
}

double dist(std::span<const float> a, std::span<const float> b) {
  return std::sqrt(dist2(a, b));
}

double cosine(std::span<const float> a, std::span<const float> b) {
  const double na = norm(a);
  const double nb = norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

void axpy(double alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    y[i] = static_cast<float>(double(y[i]) + alpha * double(x[i]));
}

void scale(std::span<float> x, double alpha) {
  for (auto& v : x) v = static_cast<float>(double(v) * alpha);
}

std::vector<float> sub(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<float> add(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<float> scaled(std::span<const float> a, double alpha) {
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = static_cast<float>(double(a[i]) * alpha);
  return out;
}

std::vector<float> mean_of(std::span<const std::vector<float>> vs) {
  const std::vector<std::span<const float>> views(vs.begin(), vs.end());
  return mean_of(std::span<const std::span<const float>>(views));
}

std::vector<float> mean_of_subset(std::span<const std::vector<float>> vs,
                                  std::span<const std::size_t> indices) {
  assert(!indices.empty());
  std::vector<float> out(vs.front().size(), 0.0f);
  for (const std::size_t idx : indices) axpy(1.0, vs[idx], out);
  scale(out, 1.0 / double(indices.size()));
  return out;
}

CoordinateMoments coordinate_moments(std::span<const std::vector<float>> vs) {
  const std::vector<std::span<const float>> views(vs.begin(), vs.end());
  return coordinate_moments(std::span<const std::span<const float>>(views));
}

void clip_norm(std::span<float> x, double bound) {
  const double n = norm(x);
  if (n > bound && n > 0.0) scale(x, bound / n);
}

std::vector<float> sign(std::span<const float> a) {
  std::vector<float> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = a[i] > 0.0f ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
  return out;
}

void zero(std::span<float> out) {
  for (auto& v : out) v = 0.0f;
}

// ---- borrowed-row-set overloads --------------------------------------------

std::vector<float> mean_of(std::span<const std::span<const float>> vs) {
  assert(!vs.empty());
  std::vector<float> out(vs.front().size(), 0.0f);
  for (const auto v : vs) axpy(1.0, v, out);
  scale(out, 1.0 / double(vs.size()));
  return out;
}

CoordinateMoments coordinate_moments(
    std::span<const std::span<const float>> vs) {
  assert(!vs.empty());
  const std::size_t d = vs.front().size();
  const double n = double(vs.size());
  CoordinateMoments m;
  m.mean.assign(d, 0.0f);
  m.stddev.assign(d, 0.0f);
  std::vector<double> sum(d, 0.0), sum_sq(d, 0.0);
  for (const auto v : vs) {
    for (std::size_t j = 0; j < d; ++j) {
      sum[j] += v[j];
      sum_sq[j] += double(v[j]) * double(v[j]);
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const double mu = sum[j] / n;
    const double var = std::max(0.0, sum_sq[j] / n - mu * mu);
    m.mean[j] = static_cast<float>(mu);
    m.stddev[j] = static_cast<float>(std::sqrt(var));
  }
  return m;
}

// ---- matrix kernels (threaded) ---------------------------------------------

std::vector<double> row_norms(const common::GradientMatrix& g) {
  std::vector<double> out(g.rows(), 0.0);
  common::parallel_for(g.rows(),
                       [&](std::size_t i) { out[i] = norm(g.row(i)); });
  return out;
}

std::vector<double> row_dots(const common::GradientMatrix& g,
                             std::span<const float> ref) {
  assert(ref.size() == g.cols() || g.rows() == 0);
  std::vector<double> out(g.rows(), 0.0);
  common::parallel_for(g.rows(),
                       [&](std::size_t i) { out[i] = dot(g.row(i), ref); });
  return out;
}

namespace {

// Parallelizes a symmetric pairwise kernel over the upper-triangle pair
// list so work stays balanced when n is small and d is huge.
template <typename Kernel>
std::vector<double> pairwise_block(const common::GradientMatrix& g,
                                   Kernel&& kernel, bool self_dot) {
  const std::size_t n = g.rows();
  std::vector<double> out(n * n, 0.0);
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  common::parallel_for(pairs.size(), [&](std::size_t p) {
    const auto [i, j] = pairs[p];
    const double v = kernel(g.row(i), g.row(j));
    out[i * n + j] = v;
    out[j * n + i] = v;
  });
  if (self_dot)
    common::parallel_for(
        n, [&](std::size_t i) { out[i * n + i] = dot(g.row(i), g.row(i)); });
  return out;
}

}  // namespace

std::vector<double> pairwise_dist2(const common::GradientMatrix& g) {
  return pairwise_block(
      g,
      [](std::span<const float> a, std::span<const float> b) {
        return dist2(a, b);
      },
      /*self_dot=*/false);
}

std::vector<double> pairwise_dot(const common::GradientMatrix& g) {
  return pairwise_block(
      g,
      [](std::span<const float> a, std::span<const float> b) {
        return dot(a, b);
      },
      /*self_dot=*/true);
}

namespace {

// Coordinate-parallel weighted accumulation: each chunk owns a disjoint
// coordinate range and walks the selected rows in order, so the float
// rounding sequence per coordinate is fixed for any thread count.
std::vector<float> accumulate_columns(const common::GradientMatrix& g,
                                      std::span<const std::size_t> indices,
                                      std::span<const double> weights,
                                      double inv_count) {
  assert(!indices.empty());
  const std::size_t d = g.cols();
  std::vector<float> out(d, 0.0f);
  common::parallel_chunks(
      d, [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<double> acc(end - begin, 0.0);
        for (std::size_t k = 0; k < indices.size(); ++k) {
          const auto row = g.row(indices[k]);
          const double w = weights.empty() ? 1.0 : weights[k];
          for (std::size_t j = begin; j < end; ++j)
            acc[j - begin] += w * double(row[j]);
        }
        for (std::size_t j = begin; j < end; ++j)
          out[j] = static_cast<float>(acc[j - begin] * inv_count);
      });
  return out;
}

}  // namespace

std::vector<float> mean_of(const common::GradientMatrix& g) {
  assert(!g.empty());
  std::vector<std::size_t> all(g.rows());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return accumulate_columns(g, all, {}, 1.0 / double(g.rows()));
}

std::vector<float> mean_of_subset(const common::GradientMatrix& g,
                                  std::span<const std::size_t> indices) {
  return accumulate_columns(g, indices, {}, 1.0 / double(indices.size()));
}

std::vector<float> weighted_mean_of_subset(
    const common::GradientMatrix& g, std::span<const std::size_t> indices,
    std::span<const double> weights) {
  assert(weights.size() == indices.size());
  return accumulate_columns(g, indices, weights,
                            1.0 / double(indices.size()));
}

CoordinateMoments coordinate_moments(const common::GradientMatrix& g) {
  assert(!g.empty());
  const std::size_t d = g.cols();
  const std::size_t n = g.rows();
  CoordinateMoments m;
  m.mean.assign(d, 0.0f);
  m.stddev.assign(d, 0.0f);
  common::parallel_chunks(
      d, [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<double> sum(end - begin, 0.0), sum_sq(end - begin, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
          const auto row = g.row(i);
          for (std::size_t j = begin; j < end; ++j) {
            const double v = double(row[j]);
            sum[j - begin] += v;
            sum_sq[j - begin] += v * v;
          }
        }
        for (std::size_t j = begin; j < end; ++j) {
          const double mu = sum[j - begin] / double(n);
          const double var =
              std::max(0.0, sum_sq[j - begin] / double(n) - mu * mu);
          m.mean[j] = static_cast<float>(mu);
          m.stddev[j] = static_cast<float>(std::sqrt(var));
        }
      });
  return m;
}

}  // namespace signguard::vec

