#include "common/shard_stats.h"

#include <cassert>

#include "common/parallel.h"
#include "common/vecops.h"

namespace signguard::common {

SignStats ShardSignCounts::to_stats() const {
  SignStats s;
  const std::uint64_t t = total();
  if (t == 0) return s;
  const double n = double(t);
  s.pos = double(pos) / n;
  s.zero = double(zero) / n;
  s.neg = double(neg) / n;
  return s;
}

namespace {

inline void count_value(float v, ShardSignCounts& c) {
  if (v > 0.0f)
    ++c.pos;
  else if (v < 0.0f)
    ++c.neg;
  else
    ++c.zero;
}

}  // namespace

ShardSignCounts shard_sign_counts(std::span<const float> g) {
  ShardSignCounts c;
  for (const float v : g) count_value(v, c);
  return c;
}

ShardSignCounts shard_sign_counts(std::span<const float> g,
                                  std::span<const std::size_t> coords) {
  ShardSignCounts c;
  for (const std::size_t j : coords) {
    assert(j < g.size());
    count_value(g[j], c);
  }
  return c;
}

ShardSignCounts shard_sign_counts(const GradientMatrix& g,
                                  std::span<const std::size_t> coords) {
  std::vector<ShardSignCounts> per_row(g.rows());
  parallel_for(g.rows(), [&](std::size_t i) {
    per_row[i] = coords.empty() ? shard_sign_counts(g.row(i))
                                : shard_sign_counts(g.row(i), coords);
  });
  ShardSignCounts c;
  for (const auto& r : per_row) c.merge(r);
  return c;
}

void ShardPartial::merge(const ShardPartial& o) {
  clients += o.clients;
  survivors += o.survivors;
  signs.merge(o.signs);
  norm2_sum += o.norm2_sum;
  weight += o.weight;
  if (o.sum.empty()) return;
  if (sum.empty()) sum.assign(o.sum.size(), 0.0);
  assert(sum.size() == o.sum.size());
  parallel_chunks(sum.size(),
                  [&](std::size_t begin, std::size_t end, std::size_t) {
                    for (std::size_t j = begin; j < end; ++j)
                      sum[j] += o.sum[j];
                  });
}

void accumulate_stats(ShardPartial& p, const GradientMatrix& g,
                      std::span<const std::size_t> coords) {
  p.clients += g.rows();
  p.signs.merge(shard_sign_counts(g, coords));
  // Per-row squared norms fan out; the fold runs in row order so the
  // double sum is reproducible.
  std::vector<double> n2(g.rows());
  parallel_for(g.rows(), [&](std::size_t i) {
    n2[i] = vec::dot(g.row(i), g.row(i));
  });
  for (const double v : n2) p.norm2_sum += v;
}

void accumulate_row(ShardPartial& p, std::span<const float> row, double w) {
  if (p.sum.empty()) p.sum.assign(row.size(), 0.0);
  assert(p.sum.size() == row.size());
  parallel_chunks(row.size(),
                  [&](std::size_t begin, std::size_t end, std::size_t) {
                    for (std::size_t j = begin; j < end; ++j)
                      p.sum[j] += w * double(row[j]);
                  });
  p.weight += w;
}

std::vector<float> finalize_mean(const ShardPartial& p) {
  std::vector<float> out(p.sum.size(), 0.0f);
  if (p.weight == 0.0) return out;
  parallel_chunks(out.size(),
                  [&](std::size_t begin, std::size_t end, std::size_t) {
                    for (std::size_t j = begin; j < end; ++j)
                      out[j] = float(p.sum[j] / p.weight);
                  });
  return out;
}

}  // namespace signguard::common
