#include "common/gradient_stats.h"

#include <cassert>
#include <cmath>

#include "common/quantiles.h"
#include "common/vecops.h"

namespace signguard {

SignStats sign_statistics(std::span<const float> g) {
  SignStats s;
  if (g.empty()) return s;
  std::size_t pos = 0, zero = 0, neg = 0;
  for (const float v : g) {
    if (v > 0.0f)
      ++pos;
    else if (v < 0.0f)
      ++neg;
    else
      ++zero;
  }
  const double n = double(g.size());
  s.pos = double(pos) / n;
  s.zero = double(zero) / n;
  s.neg = double(neg) / n;
  return s;
}

SignStats sign_statistics(std::span<const float> g,
                          std::span<const std::size_t> coords) {
  SignStats s;
  if (coords.empty()) return s;
  std::size_t pos = 0, zero = 0, neg = 0;
  for (const std::size_t j : coords) {
    assert(j < g.size());
    const float v = g[j];
    if (v > 0.0f)
      ++pos;
    else if (v < 0.0f)
      ++neg;
    else
      ++zero;
  }
  const double n = double(coords.size());
  s.pos = double(pos) / n;
  s.zero = double(zero) / n;
  s.neg = double(neg) / n;
  return s;
}

std::vector<std::size_t> select_coordinates(std::size_t d, double frac,
                                            Rng& rng) {
  assert(frac > 0.0 && frac <= 1.0);
  const auto k =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(frac * double(d))));
  return rng.sample_without_replacement(d, k);
}

PairwiseDistances::PairwiseDistances(
    std::span<const std::vector<float>> grads)
    : n_(grads.size()), d2_(grads.size() * grads.size(), 0.0) {
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      const double d2 = vec::dist2(grads[i], grads[j]);
      d2_[i * n_ + j] = d2;
      d2_[j * n_ + i] = d2;
    }
  }
}

double median_pairwise_cosine(std::span<const std::vector<float>> grads,
                              std::size_t self) {
  assert(grads.size() >= 2);
  std::vector<double> sims;
  sims.reserve(grads.size() - 1);
  for (std::size_t j = 0; j < grads.size(); ++j) {
    if (j == self) continue;
    sims.push_back(vec::cosine(grads[self], grads[j]));
  }
  return stats::median(sims);
}

}  // namespace signguard
