#include "common/gradient_stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/parallel.h"
#include "common/quantiles.h"
#include "common/vecops.h"

namespace signguard {

SignStats sign_statistics(std::span<const float> g) {
  SignStats s;
  if (g.empty()) return s;
  std::size_t pos = 0, zero = 0, neg = 0;
  for (const float v : g) {
    if (v > 0.0f)
      ++pos;
    else if (v < 0.0f)
      ++neg;
    else
      ++zero;
  }
  const double n = double(g.size());
  s.pos = double(pos) / n;
  s.zero = double(zero) / n;
  s.neg = double(neg) / n;
  return s;
}

SignStats sign_statistics(std::span<const float> g,
                          std::span<const std::size_t> coords) {
  SignStats s;
  if (coords.empty()) return s;
  std::size_t pos = 0, zero = 0, neg = 0;
  for (const std::size_t j : coords) {
    assert(j < g.size());
    const float v = g[j];
    if (v > 0.0f)
      ++pos;
    else if (v < 0.0f)
      ++neg;
    else
      ++zero;
  }
  const double n = double(coords.size());
  s.pos = double(pos) / n;
  s.zero = double(zero) / n;
  s.neg = double(neg) / n;
  return s;
}

std::vector<SignStats> sign_statistics(const common::GradientMatrix& grads,
                                       std::span<const std::size_t> coords) {
  std::vector<SignStats> out(grads.rows());
  common::parallel_for(grads.rows(), [&](std::size_t i) {
    out[i] = coords.empty() ? sign_statistics(grads.row(i))
                            : sign_statistics(grads.row(i), coords);
  });
  return out;
}

std::vector<std::size_t> select_coordinates(std::size_t d, double frac,
                                            Rng& rng) {
  assert(frac > 0.0 && frac <= 1.0);
  const auto k =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(frac * double(d))));
  return rng.sample_without_replacement(d, k);
}

PairwiseDistances::PairwiseDistances(
    std::span<const std::vector<float>> grads)
    : PairwiseDistances(common::GradientMatrix::from_vectors(grads)) {}

PairwiseDistances::PairwiseDistances(const common::GradientMatrix& grads)
    : n_(grads.rows()), d2_(vec::pairwise_dist2_packed(grads)) {}

double PairwiseDistances::krum_score(std::size_t i, std::size_t k,
                                     std::span<const char> excluded,
                                     std::vector<double>& scratch) const {
  scratch.clear();
  for (std::size_t j = 0; j < n_; ++j) {
    if (j == i) continue;
    if (!excluded.empty() && excluded[j]) continue;
    scratch.push_back(dist2(i, j));
  }
  const std::size_t kk = std::min(k, scratch.size());
  std::partial_sort(scratch.begin(), scratch.begin() + std::ptrdiff_t(kk),
                    scratch.end());
  double score = 0.0;
  for (std::size_t t = 0; t < kk; ++t) score += scratch[t];
  return score;
}

double median_pairwise_cosine(std::span<const std::vector<float>> grads,
                              std::size_t self) {
  assert(grads.size() >= 2);
  std::vector<double> sims;
  sims.reserve(grads.size() - 1);
  for (std::size_t j = 0; j < grads.size(); ++j) {
    if (j == self) continue;
    sims.push_back(vec::cosine(grads[self], grads[j]));
  }
  return stats::median(sims);
}

std::vector<double> median_pairwise_cosines(
    const common::GradientMatrix& grads) {
  const std::size_t n = grads.rows();
  std::vector<double> out(n, 0.0);
  if (n < 2) return out;
  // One threaded gram block; cos(i, j) = <g_i, g_j> / (||g_i|| ||g_j||)
  // with the same 0-norm convention as vec::cosine.
  const auto gram = vec::pairwise_dot(grads);
  common::parallel_chunks(
      n, [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<double> sims;  // one scratch buffer per chunk
        for (std::size_t i = begin; i < end; ++i) {
          const double ni = std::sqrt(gram[i * n + i]);
          sims.clear();
          for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            const double nj = std::sqrt(gram[j * n + j]);
            sims.push_back(ni == 0.0 || nj == 0.0
                               ? 0.0
                               : gram[i * n + j] / (ni * nj));
          }
          out[i] = stats::median(sims);
        }
      });
  return out;
}

std::vector<double> median_pairwise_distances(
    const common::GradientMatrix& grads) {
  const std::size_t n = grads.rows();
  std::vector<double> out(n, 0.0);
  if (n < 2) return out;
  const auto d2 = vec::pairwise_dist2(grads);
  common::parallel_chunks(
      n, [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<double> ds;  // one scratch buffer per chunk
        for (std::size_t i = begin; i < end; ++i) {
          ds.clear();
          for (std::size_t j = 0; j < n; ++j)
            if (j != i) ds.push_back(std::sqrt(d2[i * n + j]));
          out[i] = stats::median(ds);
        }
      });
  return out;
}

}  // namespace signguard
