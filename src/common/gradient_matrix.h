#pragma once
// The flat gradient representation of the aggregation pipeline: one
// contiguous n_clients x dim float buffer, one row per client gradient.
// Replaces the legacy std::vector<std::vector<float>> shape in every hot
// path — a round's gradients live in a single allocation, rows are
// std::span views, and the matrix kernels in common/vecops.h iterate it
// with the thread pool from common/parallel.h.
//
// Legacy call sites keep working through from_vectors()/to_vectors() and
// the adapter overloads the aggregator/filter layers retain.

#include <cstddef>
#include <span>
#include <vector>

namespace signguard::common {

class GradientMatrix {
 public:
  GradientMatrix() = default;

  // rows x cols, zero-initialised.
  GradientMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  // Single-copy import of the legacy vector-of-vectors shape.
  // Precondition: all rows share the front row's dimension.
  static GradientMatrix from_vectors(
      std::span<const std::vector<float>> rows);

  // Import from borrowed row views (e.g. rows of another matrix).
  static GradientMatrix from_views(
      std::span<const std::span<const float>> rows);

  // Export back to the legacy shape (copies).
  std::vector<std::vector<float>> to_vectors() const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  std::span<float> row(std::size_t i) {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const float> row(std::size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }

  float& at(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  float at(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  // Reshapes to rows x cols, reusing the allocation when it is large
  // enough (per-round reuse in the trainer). Contents are unspecified
  // afterwards unless zeroed.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  void fill_zero();

  // Borrowed per-row views, e.g. for an AttackContext over matrix rows.
  std::vector<std::span<const float>> row_views() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace signguard::common
