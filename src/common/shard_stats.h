#pragma once
// Shard-mergeable gradient statistics for the hierarchical aggregation
// tree (docs/ARCHITECTURE.md "Sharded aggregation"). The paper's
// filtering inputs are sums — element-sign counts, squared norms,
// weighted coordinate sums — so a round partitioned into shards can
// compute one partial per shard and merge them at the root: integer
// counts merge exactly (counts(A) + counts(B) == counts(A ∪ B)), and the
// double accumulators merge bitwise-deterministically as long as partials
// are folded in canonical shard order, matching the engine's
// thread-count-invariance contract.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/gradient_matrix.h"
#include "common/gradient_stats.h"

namespace signguard::common {

// Element-sign counts — the integer-domain form of SignStats. Unlike the
// proportions, counts add exactly across any partition of rows or
// coordinates, which is what makes the paper's sign statistics
// decomposable over shards.
struct ShardSignCounts {
  std::uint64_t pos = 0;
  std::uint64_t zero = 0;
  std::uint64_t neg = 0;

  std::uint64_t total() const { return pos + zero + neg; }
  void merge(const ShardSignCounts& o) {
    pos += o.pos;
    zero += o.zero;
    neg += o.neg;
  }
  // Count -> proportion conversion with the same double division as
  // sign_statistics, so to_stats() of merged counts equals the flat
  // SignStats bitwise. All-zero counts map to the all-zero SignStats.
  SignStats to_stats() const;
};

// Sign counts over all coordinates of g / over a coordinate subset.
ShardSignCounts shard_sign_counts(std::span<const float> g);
ShardSignCounts shard_sign_counts(std::span<const float> g,
                                  std::span<const std::size_t> coords);
// Cohort counts over every row of a shard matrix, restricted to `coords`
// when non-empty (per-row passes fan out over the pool; the fold over
// rows is exact integer addition, so order cannot matter).
ShardSignCounts shard_sign_counts(const GradientMatrix& g,
                                  std::span<const std::size_t> coords);

// One shard's partial aggregation state. Everything is a sum: two
// partials over disjoint row sets merge into the partial of the union —
// exactly for the counts, in canonical shard order for the double
// accumulators.
struct ShardPartial {
  std::size_t clients = 0;    // rows this shard processed
  std::size_t survivors = 0;  // rows its local filter admitted
  ShardSignCounts signs;      // cohort sign counts over the shard's rows
  double norm2_sum = 0.0;     // sum of squared row l2 norms, fixed row order
  double weight = 0.0;        // total weight accumulated into `sum`
  std::vector<double> sum;    // sum of weight_i * row_i; empty until used

  // Folds `o` into this partial. Count fields add exactly; `sum` adds
  // coordinate-wise (each coordinate owned by one pool worker), so merge
  // order must be canonical for bitwise reproducibility of the doubles.
  void merge(const ShardPartial& o);
};

// Folds a whole shard matrix into the partial's filter-input statistics:
// clients, sign counts over `coords` (empty = all coordinates) and the
// squared-norm sum. Does not touch survivors/weight/sum — those
// accumulate the filtered rows via accumulate_row.
void accumulate_stats(ShardPartial& p, const GradientMatrix& g,
                      std::span<const std::size_t> coords);

// sum += w * row; weight += w. Coordinate-parallel with each coordinate
// produced by exactly one worker; rows must arrive in canonical order
// for the double sums to be reproducible. Precondition: row.size()
// matches p.sum when p.sum is non-empty.
void accumulate_row(ShardPartial& p, std::span<const float> row, double w);

// The weighted mean sum / weight as float32 (sized like `sum`); all
// zeros when no weight was accumulated.
std::vector<float> finalize_mean(const ShardPartial& p);

}  // namespace signguard::common
