#pragma once
// Stable float formatting shared by the sweep JSONL writer and the bench
// JSON emitters. %.9g prints FLT_DECIMAL_DIG significant digits — the
// smallest fixed precision for which strtof(fmt_float(v)) == v for every
// finite float — so a float32 value committed to a JSONL trace can be
// parsed back bit-exactly. Locale-independent ("C" numeric formatting is
// assumed process-wide, as everywhere else in this codebase).

#include <cstdio>
#include <string>

namespace signguard::common {

inline std::string fmt_float(float v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", double(v));
  return buf;
}

// The same %.9g rendering for doubles the bench binaries report
// (timings, rates, accuracies). Not round-trip-exact for arbitrary
// doubles — these are measurements, not state — but stable, compact and
// valid JSON for every finite value.
inline std::string fmt_g9(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace signguard::common
