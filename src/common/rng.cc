#include "common/rng.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/hash.h"

namespace signguard {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int Rng::randint(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Rng Rng::stream(std::uint64_t root, std::uint64_t key) {
  return Rng(common::stream_seed(root, key));
}

Rng Rng::split() {
  // A single 64-bit draw seeds the child; mixing with a constant keeps the
  // child stream decorrelated from the parent's subsequent output.
  const std::uint64_t child_seed = engine_() ^ 0x9e3779b97f4a7c15ULL;
  return Rng(child_seed);
}

std::string Rng::state() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

void Rng::set_state(std::string_view s) {
  std::istringstream is{std::string(s)};
  is >> engine_;
  if (is.fail())
    throw std::runtime_error("Rng::set_state: malformed engine state");
}

void Rng::shuffle(std::span<std::size_t> items) {
  std::shuffle(items.begin(), items.end(), engine_);
}

void Rng::shuffle(std::span<int> items) {
  std::shuffle(items.begin(), items.end(), engine_);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  std::vector<std::size_t> out;
  sample_without_replacement_into(n, k, out);
  return out;
}

void Rng::sample_without_replacement_into(std::size_t n, std::size_t k,
                                          std::vector<std::size_t>& out) {
  k = std::min(k, n);
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  // Partial Fisher-Yates: only the first k positions need to be finalized.
  // The buffer keeps its capacity across calls, so a steady caller (the
  // client's per-batch sampling) allocates only once.
  for (std::size_t i = 0; i < k; ++i) {
    std::uniform_int_distribution<std::size_t> dist(i, n - 1);
    std::swap(out[i], out[dist(engine_)]);
  }
  out.resize(k);
}

std::vector<float> Rng::normal_vector(std::size_t n, double mean,
                                      double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  std::vector<float> out(n);
  for (auto& v : out) v = static_cast<float>(dist(engine_));
  return out;
}

}  // namespace signguard
