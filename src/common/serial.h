#pragma once
// Tiny byte-oriented serialization used by the crash-consistent trainer
// checkpoints (fl/checkpoint.h) and the stateful-component snapshots
// (Aggregator/Attack serialize_state). Deliberately minimal: explicit
// little-endian fixed-width integers, raw IEEE-754 floats (the in-memory
// representation on every supported target), length-prefixed strings.
// A checkpoint is consumed by the same build that wrote it, so no
// cross-architecture byte swapping is attempted — the format is pinned
// by a header checksum, not by portability machinery.
//
// ByteReader is total on hostile bytes: every read is bounds-checked and
// underflow throws std::runtime_error (a truncated or corrupted
// checkpoint must fail loudly, never read out of bounds).

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace signguard::common {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(std::string_view s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void floats(std::span<const float> v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(float));
  }
  void doubles(std::span<const double> v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(double));
  }
  void raw(const void* data, std::size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t len = length(1);
    std::string out(len, '\0');
    raw(out.data(), len);
    return out;
  }
  std::vector<float> floats() {
    const std::uint64_t len = length(sizeof(float));
    std::vector<float> out(len);
    raw(out.data(), len * sizeof(float));
    return out;
  }
  std::vector<double> doubles() {
    const std::uint64_t len = length(sizeof(double));
    std::vector<double> out(len);
    raw(out.data(), len * sizeof(double));
    return out;
  }
  void raw(void* out, std::size_t len) {
    need(len);
    std::memcpy(out, bytes_.data() + pos_, len);
    pos_ += len;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  // A length prefix bounded by the remaining bytes: a corrupted prefix
  // must not turn into a multi-gigabyte allocation before the bounds
  // check fires.
  std::uint64_t length(std::size_t elem_size) {
    const std::uint64_t len = u64();
    if (elem_size != 0 && len > remaining() / elem_size)
      throw std::runtime_error("serial: length prefix exceeds buffer");
    return len;
  }
  void need(std::size_t len) const {
    if (bytes_.size() - pos_ < len)
      throw std::runtime_error("serial: read past end of buffer");
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace signguard::common
