#pragma once
// Gradient-level statistics used by SignGuard's filters (paper §IV-B) and
// by the Fig. 2 sign-statistics experiment: proportions of positive / zero /
// negative elements, optionally restricted to a random coordinate subset,
// plus pairwise-distance machinery shared by Krum/Bulyan/Min-Max/Min-Sum.

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/gradient_matrix.h"
#include "common/rng.h"

namespace signguard {

// Proportions of element signs in a gradient; pos + zero + neg == 1.
struct SignStats {
  double pos = 0.0;
  double zero = 0.0;
  double neg = 0.0;
};

// Sign statistics over all coordinates of g.
SignStats sign_statistics(std::span<const float> g);

// Sign statistics over the subset of coordinates in `coords`.
SignStats sign_statistics(std::span<const float> g,
                          std::span<const std::size_t> coords);

// Fused per-client pass: sign statistics of every matrix row over the
// shared coordinate subset, computed in parallel on the thread pool.
// Empty `coords` means "all coordinates".
std::vector<SignStats> sign_statistics(const common::GradientMatrix& grads,
                                       std::span<const std::size_t> coords);

// Randomized coordinate selection for the sign-based filter: chooses
// ceil(frac * d) distinct coordinates of a d-dimensional gradient.
std::vector<std::size_t> select_coordinates(std::size_t d, double frac,
                                            Rng& rng);

// Symmetric matrix of squared Euclidean distances between gradients,
// stored as the packed upper triangle (n*(n-1)/2 doubles — half the dense
// block). The matrix constructor runs the active vec::DistBackend pairwise
// kernel (Gram GEMM or the direct pair loops) on the thread pool.
class PairwiseDistances {
 public:
  explicit PairwiseDistances(std::span<const std::vector<float>> grads);
  explicit PairwiseDistances(const common::GradientMatrix& grads);

  double dist2(std::size_t i, std::size_t j) const {
    if (i == j) return 0.0;
    if (i > j) std::swap(i, j);
    return d2_[i * (2 * n_ - i - 1) / 2 + (j - i - 1)];
  }
  std::size_t size() const { return n_; }

  // Krum score of row i: the sum of its k smallest dist2(i, j) over the
  // rows j != i with excluded[j] == 0 (an empty mask excludes nothing).
  // `scratch` is caller-provided so iterative consumers (Bulyan's
  // selection loop) do not reallocate per call. Candidates are gathered
  // in ascending j and the k smallest are summed in ascending value
  // order, so the score is deterministic and identical to scoring an
  // explicit index subset.
  double krum_score(std::size_t i, std::size_t k,
                    std::span<const char> excluded,
                    std::vector<double>& scratch) const;

 private:
  std::size_t n_;
  std::vector<double> d2_;  // packed upper triangle
};

// Median of pairwise cosine similarities between g and every other gradient
// in `grads` except index `self` — the "correct gradient" proxy the paper
// suggests when no previous aggregate is available.
double median_pairwise_cosine(std::span<const std::vector<float>> grads,
                              std::size_t self);

// Reference-free similarity proxies for every client at once, derived
// from one threaded pairwise block instead of n independent scans:
// median over j != i of cos(g_i, g_j), and of ||g_i - g_j||.
std::vector<double> median_pairwise_cosines(
    const common::GradientMatrix& grads);
std::vector<double> median_pairwise_distances(
    const common::GradientMatrix& grads);

}  // namespace signguard
