#pragma once
// A Model is an ordered stack of layers plus flat-buffer parameter I/O.
// The federated-learning layer treats a model as an opaque vector of
// parameters: it reads the flattened gradient after backward() and writes
// flattened parameters before the next round.
//
// Every Model owns a Workspace arena: forward() threads it through the
// layer chain and returns a reference to the last activation slot (valid
// until the next forward()), backward() ping-pongs gradient buffers
// through the same arena. The trainer keeps one scratch Model per pool
// worker, which makes the arena per-worker: after the first batch of a
// given shape, a training step allocates nothing.

#include <memory>
#include <span>
#include <vector>

#include "nn/layers.h"
#include "nn/workspace.h"

namespace signguard::nn {

class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  // Appends a layer; returns *this for fluent building.
  Model& add(std::unique_ptr<Layer> layer);

  // Runs the layer chain; the result lives in this model's workspace and
  // stays valid until the next forward() call. The input `x` is borrowed
  // by the layers and must outlive the matching backward().
  const Tensor& forward(const Tensor& x);

  // Propagates dL/d(logits) through the stack, accumulating param grads.
  void backward(const Tensor& dlogits);

  Workspace& workspace() { return ws_; }

  // Non-const because they traverse Layer::params() views.
  std::size_t parameter_count();

  // Flat copies across every layer, in layer order then blob order.
  std::vector<float> parameters();
  std::vector<float> gradients();

  // Allocation-free variants for the per-round hot path: write the
  // flattened gradient into `out` (e.g. a GradientMatrix row), and fold
  // weight decay in directly from the layer blobs (out += wd * params)
  // without materializing a flat parameter copy. Preconditions:
  // out.size() == parameter_count().
  void gradients_into(std::span<float> out);
  void add_weight_decay_into(std::span<float> out, double weight_decay);

  void set_parameters(std::span<const float> flat);
  void zero_gradients();

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  static constexpr std::size_t kFirstParamUnknown = ~std::size_t(0);

  std::vector<std::unique_ptr<Layer>> layers_;
  Workspace ws_;
  // Lowest layer index with parameters (computed lazily; layers_.size()
  // when no layer has any). backward() stops its gradient chain there.
  std::size_t first_param_layer_ = kFirstParamUnknown;
};

}  // namespace signguard::nn
