#pragma once
// A Model is an ordered stack of layers plus flat-buffer parameter I/O.
// The federated-learning layer treats a model as an opaque vector of
// parameters: it reads the flattened gradient after backward() and writes
// flattened parameters before the next round.

#include <memory>
#include <span>
#include <vector>

#include "nn/layers.h"

namespace signguard::nn {

class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  // Appends a layer; returns *this for fluent building.
  Model& add(std::unique_ptr<Layer> layer);

  Tensor forward(const Tensor& x);

  // Propagates dL/d(logits) through the stack, accumulating param grads.
  void backward(const Tensor& dlogits);

  // Non-const because they traverse Layer::params() views.
  std::size_t parameter_count();

  // Flat copies across every layer, in layer order then blob order.
  std::vector<float> parameters();
  std::vector<float> gradients();

  // Allocation-free variants for the per-round hot path: write the
  // flattened gradient into `out` (e.g. a GradientMatrix row), and fold
  // weight decay in directly from the layer blobs (out += wd * params)
  // without materializing a flat parameter copy. Preconditions:
  // out.size() == parameter_count().
  void gradients_into(std::span<float> out);
  void add_weight_decay_into(std::span<float> out, double weight_decay);

  void set_parameters(std::span<const float> flat);
  void zero_gradients();

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace signguard::nn
