#pragma once
// Per-model arena of reusable scratch Tensors for the forward/backward
// hot path. Every Model owns one Workspace, and the trainer's per-worker
// scratch models make it a per-worker arena: once shapes stabilize
// (after the first batch of each size), a training round performs zero
// steady-state heap allocation inside the NN stack.
//
// Ownership rules:
//  - activation(i) / grad_buffer(i) are stable, indexed slots the Model
//    uses for the layer-chain outputs and the backward ping-pong.
//  - take(shape) is a cursor arena for layer-internal scratch (im2col
//    columns, RNN hidden states, residual-branch temporaries). The
//    cursor resets at the start of every forward pass (begin_pass) and
//    keeps advancing through backward, so a buffer taken in forward —
//    e.g. a cached im2col panel — stays untouched until the *next*
//    forward pass. A fixed pass structure therefore maps every take()
//    to the same slot each batch.
//  - Slots live in deques: references and pointers into them remain
//    valid as the arena grows, so layers may cache borrowed pointers to
//    activations/scratch between forward and backward instead of deep
//    copying inputs.

#include <cstddef>
#include <deque>
#include <initializer_list>
#include <span>

#include "nn/tensor.h"

namespace signguard::nn {

class Workspace {
 public:
  // Called by Model::forward before the layer chain runs; resets the
  // take() cursor (slot contents and capacity are retained).
  void begin_pass() { cursor_ = 0; }

  // Cursor checkpointing: mark() after forward and rewind() before each
  // repeated backward lets a caller replay the backward take() sequence
  // onto the same slots (the layer microbench needs this; the Model's
  // forward/backward pairing gets the same effect from begin_pass()).
  std::size_t mark() const { return cursor_; }
  void rewind(std::size_t cursor) { cursor_ = cursor; }

  // Next scratch slot, resized (capacity-reusing) to `shape`.
  Tensor& take(std::span<const std::size_t> shape);
  Tensor& take(std::initializer_list<std::size_t> shape) {
    return take(std::span<const std::size_t>(shape.begin(), shape.size()));
  }

  // Output slot of layer i (the activation chain).
  Tensor& activation(std::size_t i);

  // Backward ping-pong buffers (the Model alternates between two).
  Tensor& grad_buffer(std::size_t i);

  // Growth accounting for the reuse tests: slot count and total allocated
  // floats across every slot. Both must be flat across identical batches.
  std::size_t scratch_slots() const { return scratch_.size(); }
  std::size_t capacity_floats() const;

 private:
  std::deque<Tensor> scratch_, acts_, grads_;
  std::size_t cursor_ = 0;
};

}  // namespace signguard::nn
