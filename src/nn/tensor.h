#pragma once
// Minimal dense tensor: a shape plus a flat row-major float buffer. The
// neural-network layers index it manually; no broadcasting or views. This
// is deliberately small — the hot path is the GEMM-backed layer kernels,
// and gradients leave the NN world as flat std::vector<float> buffers.
//
// Capacity contract: resize(), assign_from() and zero() never release
// storage, so a Tensor that lives in a Workspace slot (or as a layer's
// scratch member) reaches a steady state after the first batch and does
// no further heap allocation.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace signguard::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);

  static Tensor zeros(std::vector<std::size_t> shape);

  std::size_t numel() const { return data_.size(); }
  std::size_t ndim() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_[i]; }
  const std::vector<std::size_t>& shape() const { return shape_; }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // Same buffer, different shape. Precondition: product(new_shape)==numel().
  // The rvalue overload moves the buffer instead of copying it, so
  // `std::move(t).reshaped(...)` is a metadata-only operation.
  Tensor reshaped(std::vector<std::size_t> new_shape) const&;
  Tensor reshaped(std::vector<std::size_t> new_shape) &&;

  // In-place metadata-only reshape. Precondition as above.
  void reshape_in_place(std::span<const std::size_t> new_shape);
  void reshape_in_place(std::initializer_list<std::size_t> s) {
    reshape_in_place(std::span<const std::size_t>(s.begin(), s.size()));
  }

  // Re-shapes this tensor, reusing existing storage (never shrinks
  // capacity). New elements are zero; surviving elements keep their
  // values — callers are expected to overwrite the buffer fully.
  void resize(std::span<const std::size_t> shape);
  void resize(std::initializer_list<std::size_t> s) {
    resize(std::span<const std::size_t>(s.begin(), s.size()));
  }

  // Shape + contents of `src`, reusing this tensor's capacity.
  void assign_from(const Tensor& src);

  void fill(float v);
  void zero() { fill(0.0f); }

  // Allocated storage in floats (>= numel); for workspace-growth tests.
  std::size_t capacity() const { return data_.capacity(); }

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace signguard::nn
