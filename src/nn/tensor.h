#pragma once
// Minimal dense tensor: a shape plus a flat row-major float buffer. The
// neural-network layers index it manually; no broadcasting or views. This
// is deliberately small — the library's hot path is the layer loops, and
// gradients leave the NN world as flat std::vector<float> buffers anyway.

#include <cstddef>
#include <span>
#include <vector>

namespace signguard::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);

  static Tensor zeros(std::vector<std::size_t> shape);

  std::size_t numel() const { return data_.size(); }
  std::size_t ndim() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_[i]; }
  const std::vector<std::size_t>& shape() const { return shape_; }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // Same buffer, different shape. Precondition: product(new_shape)==numel().
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace signguard::nn
