#include "nn/models.h"

#include <cmath>

namespace signguard::nn {

Model make_mlp(std::size_t input_dim, std::size_t hidden_dim,
               std::size_t classes, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  // Leading Flatten lets the MLP consume [B, C, H, W] image batches
  // directly; it is the identity on already-flat [B, D] input.
  m.add(std::make_unique<Flatten>())
      .add(std::make_unique<Linear>(input_dim, hidden_dim, rng, std::sqrt(2.0)))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(hidden_dim, classes, rng));
  return m;
}

Model make_small_cnn(std::size_t hw, std::size_t classes,
                     std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  const std::size_t c1 = 6, c2 = 12;
  const std::size_t flat = c2 * (hw / 4) * (hw / 4);
  m.add(std::make_unique<Conv2d>(1, c1, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2>())
      .add(std::make_unique<Conv2d>(c1, c2, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2>())
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Linear>(flat, 48, rng, std::sqrt(2.0)))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(48, classes, rng));
  return m;
}

Model make_color_cnn(std::size_t hw, std::size_t classes,
                     std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  const std::size_t ch = 8;
  const std::size_t flat = ch * (hw / 4) * (hw / 4);
  m.add(std::make_unique<Conv2d>(3, ch, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2>())
      .add(std::make_unique<ResidualConvBlock>(ch, rng))
      .add(std::make_unique<MaxPool2>())
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Linear>(flat, 48, rng, std::sqrt(2.0)))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(48, classes, rng));
  return m;
}

Model make_text_rnn(std::size_t vocab, std::size_t embed_dim,
                    std::size_t hidden_dim, std::size_t classes,
                    std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  // Mean-pooled hidden states: topic evidence is spread across the whole
  // sequence, and pooling gives every token gradient signal (the bi-LSTM
  // in the paper's TextRNN reads both directions for the same reason).
  m.add(std::make_unique<Embedding>(vocab, embed_dim, rng))
      .add(std::make_unique<RnnTanh>(embed_dim, hidden_dim, rng,
                                     RnnOutput::kMeanPool))
      .add(std::make_unique<Linear>(hidden_dim, classes, rng));
  return m;
}

Model make_embed_bag_text(std::size_t vocab, std::size_t embed_dim,
                          std::size_t classes, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  m.add(std::make_unique<Embedding>(vocab, embed_dim, rng))
      .add(std::make_unique<MeanPoolTime>())
      .add(std::make_unique<Linear>(embed_dim, classes, rng));
  return m;
}

}  // namespace signguard::nn
