#pragma once
// Vanilla tanh recurrent layer with full backpropagation through time —
// the recurrent core of the TextRNN stand-in for the paper's AG-News
// bi-LSTM classifier. Each timestep is two batch-level GEMMs
// (x_t W_xh^T and h_{t-1} W_hh^T) over strided [B, *] slices of the
// [B, T, *] tensors; the hidden-state history lives in the Workspace
// arena and is borrowed across forward->backward.

#include <vector>

#include "nn/layers.h"

namespace signguard::nn {

// Which hidden states form the layer output.
enum class RnnOutput {
  kLastHidden,  // h_T, the classic sequence summary
  kMeanPool,    // (1/T) sum_t h_t — better signal flow for topic tasks
};

// h_t = tanh(W_xh x_t + W_hh h_{t-1} + b), h_0 = 0.
// Input [B, T, E]; output [B, H] per the RnnOutput mode.
class RnnTanh : public Layer {
 public:
  RnnTanh(std::size_t input_dim, std::size_t hidden_dim, Rng& rng,
          RnnOutput output_mode = RnnOutput::kLastHidden);

  void forward(const Tensor& x, Tensor& y, Workspace& ws) override;
  void backward(const Tensor& grad_out, Tensor& grad_in,
                Workspace& ws) override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "RnnTanh"; }

 private:
  std::size_t in_, hid_;
  RnnOutput output_mode_;
  std::vector<float> wxh_, whh_, bh_;    // [H x E], [H x H], [H]
  std::vector<float> gwxh_, gwhh_, gbh_;
  const Tensor* cached_input_ = nullptr;  // [B, T, E], borrowed
  const Tensor* hidden_states_ = nullptr; // [B, T, H] ws slot (post-tanh)
};

}  // namespace signguard::nn
