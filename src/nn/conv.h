#pragma once
// Convolutional layers: 3x3 same-padding Conv2d, 2x2 MaxPool, and a
// two-conv residual block (the "ResNet-18-like" ingredient of the CIFAR
// stand-in model). Activations are [B, C, H, W] row-major tensors.
//
// Conv2d lowers to GEMM: forward im2cols each sample into a packed
// [IC*9 x H*W] column buffer (zero padding materialized as zero columns)
// and multiplies by the [OC x IC*9] weight matrix; backward re-lowers
// the borrowed input for the weight gradient and col2im-scatters the
// column gradient back to the input. The single-sample column buffers
// come from the Workspace arena, so steady-state training allocates
// nothing and eval-sized batches don't balloon the arena.

#include <vector>

#include "nn/layers.h"

namespace signguard::nn {

// 2-D convolution, kernel 3x3, stride 1, zero padding 1 (same spatial size).
class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, Rng& rng);

  void forward(const Tensor& x, Tensor& y, Workspace& ws) override;
  void backward(const Tensor& grad_out, Tensor& grad_in,
                Workspace& ws) override;
  void backward_params_only(const Tensor& grad_out, Workspace& ws) override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "Conv2d"; }

  static constexpr std::size_t kKernel = 3;

 private:
  std::size_t in_ch_, out_ch_;
  std::vector<float> w_, b_, gw_, gb_;  // w: [OC, IC, 3, 3] == [OC x IC*9]
  // Forward lowers one sample at a time into a single [IC*9 x H*W]
  // workspace panel and backward re-lowers from the borrowed input (a
  // memory-bound copy), so no batch-sized panel is ever retained — an
  // evaluation-sized forward would otherwise pin megabytes per layer in
  // the never-shrinking arena.
  const Tensor* cached_input_ = nullptr;  // borrowed; valid until backward
};

// 2x2 max pooling with stride 2. H and W must be even.
class MaxPool2 : public Layer {
 public:
  void forward(const Tensor& x, Tensor& y, Workspace& ws) override;
  void backward(const Tensor& grad_out, Tensor& grad_in,
                Workspace& ws) override;
  std::string name() const override { return "MaxPool2"; }

 private:
  std::vector<std::size_t> cached_in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index of each pooled max
};

// y = relu(conv2(relu(conv1(x))) + x). Channel count is preserved so the
// identity shortcut needs no projection.
class ResidualConvBlock : public Layer {
 public:
  ResidualConvBlock(std::size_t channels, Rng& rng);

  void forward(const Tensor& x, Tensor& y, Workspace& ws) override;
  void backward(const Tensor& grad_out, Tensor& grad_in,
                Workspace& ws) override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "ResidualConvBlock"; }

 private:
  Conv2d conv1_, conv2_;
  ReLU relu_mid_;
  const Tensor* cached_sum_ = nullptr;  // pre-activation of the output ReLU
};

}  // namespace signguard::nn
