#pragma once
// Convolutional layers: 3x3 same-padding Conv2d, 2x2 MaxPool, and a
// two-conv residual block (the "ResNet-18-like" ingredient of the CIFAR
// stand-in model). Activations are [B, C, H, W] row-major tensors.

#include <vector>

#include "nn/layers.h"

namespace signguard::nn {

// 2-D convolution, kernel 3x3, stride 1, zero padding 1 (same spatial size).
class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "Conv2d"; }

  static constexpr std::size_t kKernel = 3;

 private:
  std::size_t in_ch_, out_ch_;
  std::vector<float> w_, b_, gw_, gb_;  // w: [OC, IC, 3, 3]
  Tensor cached_input_;
};

// 2x2 max pooling with stride 2. H and W must be even.
class MaxPool2 : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "MaxPool2"; }

 private:
  std::vector<std::size_t> cached_in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index of each pooled max
};

// y = relu(conv2(relu(conv1(x))) + x). Channel count is preserved so the
// identity shortcut needs no projection.
class ResidualConvBlock : public Layer {
 public:
  ResidualConvBlock(std::size_t channels, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "ResidualConvBlock"; }

 private:
  Conv2d conv1_, conv2_;
  ReLU relu_mid_;
  Tensor cached_sum_;  // pre-activation of the output ReLU
};

}  // namespace signguard::nn
