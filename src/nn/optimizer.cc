#include "nn/optimizer.h"

#include <cassert>

namespace signguard::nn {

void SgdMomentum::step(std::span<float> params, std::span<const float> grad) {
  assert(params.size() == grad.size());
  if (velocity_.size() != grad.size()) velocity_.assign(grad.size(), 0.0f);
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] =
        static_cast<float>(momentum_ * velocity_[i] + double(grad[i]));
    params[i] = static_cast<float>(double(params[i]) - lr_ * velocity_[i]);
  }
}

void add_weight_decay(std::span<float> grad, std::span<const float> params,
                      double weight_decay) {
  assert(grad.size() == params.size());
  if (weight_decay == 0.0) return;
  for (std::size_t i = 0; i < grad.size(); ++i)
    grad[i] =
        static_cast<float>(double(grad[i]) + weight_decay * double(params[i]));
}

}  // namespace signguard::nn
