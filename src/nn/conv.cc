#include "nn/conv.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/gemm.h"

namespace signguard::nn {

namespace {

// Lowers one [C, H, W] sample to a [C*9 x H*W] column panel for the 3x3
// same-padding convolution: row k = (c*3 + ky+1)*3 + (kx+1) holds the
// input shifted by (ky, kx), with out-of-range taps materialized as
// literal zeros. Column p of the panel is the 9C-tap receptive field of
// output pixel p, so conv becomes W[OC x C*9] * cols.
void im2col_3x3(const float* x, std::size_t ch, std::size_t h, std::size_t w,
                float* cols) {
  const std::size_t hw = h * w;
  float* out_row = cols;
  for (std::size_t c = 0; c < ch; ++c) {
    const float* xc = x + c * hw;
    for (std::ptrdiff_t ky = -1; ky <= 1; ++ky) {
      for (std::ptrdiff_t kx = -1; kx <= 1; ++kx) {
        const std::size_t x0 = kx < 0 ? std::size_t(-kx) : 0;
        const std::size_t x1 = kx > 0 ? w - std::size_t(kx) : w;
        for (std::size_t yy = 0; yy < h; ++yy) {
          float* dst = out_row + yy * w;
          const std::ptrdiff_t sy = std::ptrdiff_t(yy) + ky;
          if (sy < 0 || sy >= std::ptrdiff_t(h)) {
            std::fill(dst, dst + w, 0.0f);
            continue;
          }
          const float* src = xc + std::size_t(sy) * w;
          std::fill(dst, dst + x0, 0.0f);
          for (std::size_t xx = x0; xx < x1; ++xx)
            dst[xx] = src[std::size_t(std::ptrdiff_t(xx) + kx)];
          std::fill(dst + x1, dst + w, 0.0f);
        }
        out_row += hw;
      }
    }
  }
}

// Adjoint of im2col_3x3: scatter-accumulate a [C*9 x H*W] column-gradient
// panel back onto the (pre-zeroed) [C, H, W] input gradient. Iteration
// order matches im2col (k ascending, then row-major pixels), so the
// accumulation order is fixed and thread-count independent.
void col2im_3x3(const float* cols, std::size_t ch, std::size_t h,
                std::size_t w, float* gx) {
  const std::size_t hw = h * w;
  const float* in_row = cols;
  for (std::size_t c = 0; c < ch; ++c) {
    float* gxc = gx + c * hw;
    for (std::ptrdiff_t ky = -1; ky <= 1; ++ky) {
      for (std::ptrdiff_t kx = -1; kx <= 1; ++kx) {
        const std::size_t x0 = kx < 0 ? std::size_t(-kx) : 0;
        const std::size_t x1 = kx > 0 ? w - std::size_t(kx) : w;
        for (std::size_t yy = 0; yy < h; ++yy) {
          const float* src = in_row + yy * w;
          const std::ptrdiff_t sy = std::ptrdiff_t(yy) + ky;
          if (sy < 0 || sy >= std::ptrdiff_t(h)) continue;
          float* dst = gxc + std::size_t(sy) * w;
          for (std::size_t xx = x0; xx < x1; ++xx)
            dst[std::size_t(std::ptrdiff_t(xx) + kx)] += src[xx];
        }
        in_row += hw;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      w_(out_channels * in_channels * kKernel * kKernel),
      b_(out_channels, 0.0f),
      gw_(w_.size(), 0.0f),
      gb_(out_channels, 0.0f) {
  // He-uniform: fan_in = IC * 3 * 3.
  const double fan_in = double(in_channels * kKernel * kKernel);
  const double bound = std::sqrt(6.0 / fan_in);
  for (auto& v : w_) v = static_cast<float>(rng.uniform(-bound, bound));
}

void Conv2d::forward(const Tensor& x, Tensor& y, Workspace& ws) {
  assert(x.ndim() == 4 && x.dim(1) == in_ch_);
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t hw = h * w, kk = in_ch_ * kKernel * kKernel;
  cached_input_ = &x;
  y.resize({batch, out_ch_, h, w});
  // One single-sample panel, reused across the batch; backward re-lowers
  // from the borrowed input, so eval-sized batches never pin a
  // batch-sized panel in the arena.
  Tensor& cols = ws.take({kk, hw});
  for (std::size_t b = 0; b < batch; ++b) {
    im2col_3x3(x.data() + b * in_ch_ * hw, in_ch_, h, w, cols.data());
    float* yb = y.data() + b * out_ch_ * hw;
    // y_b = W cols_b, then the per-channel bias broadcast.
    gemm_nn(out_ch_, hw, kk, w_.data(), kk, cols.data(), hw, yb, hw,
            /*accumulate=*/false);
    add_bias_cols(yb, out_ch_, hw, hw, b_.data());
  }
}

void Conv2d::backward(const Tensor& grad_out, Tensor& grad_in,
                      Workspace& ws) {
  assert(cached_input_ != nullptr);
  const Tensor& x = *cached_input_;
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t hw = h * w, kk = in_ch_ * kKernel * kKernel;
  assert(grad_out.dim(0) == batch && grad_out.dim(1) == out_ch_ &&
         grad_out.dim(2) == h && grad_out.dim(3) == w);
  grad_in.resize({batch, in_ch_, h, w});
  grad_in.zero();
  Tensor& cols = ws.take({kk, hw});
  Tensor& dcols = ws.take({kk, hw});
  for (std::size_t b = 0; b < batch; ++b) {
    const float* gyb = grad_out.data() + b * out_ch_ * hw;
    // gb += per-channel sums of gy.
    add_row_sums(gyb, out_ch_, hw, hw, gb_.data());
    // gW += gy_b cols_b^T (columns re-lowered; bitwise equal to forward's).
    im2col_3x3(x.data() + b * in_ch_ * hw, in_ch_, h, w, cols.data());
    gemm_nt(out_ch_, kk, hw, gyb, hw, cols.data(), hw, gw_.data(), kk,
            /*accumulate=*/true);
    // dcols = W^T gy_b, scattered back onto the input gradient.
    gemm_tn(kk, hw, out_ch_, w_.data(), kk, gyb, hw, dcols.data(), hw,
            /*accumulate=*/false);
    col2im_3x3(dcols.data(), in_ch_, h, w, grad_in.data() + b * in_ch_ * hw);
  }
}

void Conv2d::backward_params_only(const Tensor& grad_out, Workspace& ws) {
  assert(cached_input_ != nullptr);
  const Tensor& x = *cached_input_;
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t hw = h * w, kk = in_ch_ * kKernel * kKernel;
  assert(grad_out.dim(0) == batch && grad_out.dim(1) == out_ch_);
  Tensor& cols = ws.take({kk, hw});
  for (std::size_t b = 0; b < batch; ++b) {
    const float* gyb = grad_out.data() + b * out_ch_ * hw;
    add_row_sums(gyb, out_ch_, hw, hw, gb_.data());
    im2col_3x3(x.data() + b * in_ch_ * hw, in_ch_, h, w, cols.data());
    gemm_nt(out_ch_, kk, hw, gyb, hw, cols.data(), hw, gw_.data(), kk,
            /*accumulate=*/true);
  }
}

std::vector<ParamView> Conv2d::params() {
  return {{w_, gw_}, {b_, gb_}};
}

// -------------------------------------------------------------- MaxPool2

void MaxPool2::forward(const Tensor& x, Tensor& y, Workspace&) {
  assert(x.ndim() == 4 && x.dim(2) % 2 == 0 && x.dim(3) % 2 == 0);
  cached_in_shape_ = x.shape();
  const std::size_t batch = x.dim(0), ch = x.dim(1), h = x.dim(2),
                    w = x.dim(3);
  const std::size_t oh = h / 2, ow = w / 2;
  y.resize({batch, ch, oh, ow});
  argmax_.assign(y.numel(), 0);
  for (std::size_t bc = 0; bc < batch * ch; ++bc) {
    const float* xp = x.data() + bc * h * w;
    float* yp = y.data() + bc * oh * ow;
    std::size_t* ap = argmax_.data() + bc * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        std::size_t best = (2 * oy) * w + 2 * ox;
        float best_v = xp[best];
        const std::size_t cands[3] = {(2 * oy) * w + 2 * ox + 1,
                                      (2 * oy + 1) * w + 2 * ox,
                                      (2 * oy + 1) * w + 2 * ox + 1};
        for (const std::size_t c : cands) {
          if (xp[c] > best_v) {
            best_v = xp[c];
            best = c;
          }
        }
        yp[oy * ow + ox] = best_v;
        ap[oy * ow + ox] = bc * h * w + best;
      }
    }
  }
}

void MaxPool2::backward(const Tensor& grad_out, Tensor& grad_in, Workspace&) {
  assert(grad_out.numel() == argmax_.size());
  grad_in.resize(cached_in_shape_);
  grad_in.zero();
  for (std::size_t i = 0; i < grad_out.numel(); ++i)
    grad_in[argmax_[i]] += grad_out[i];
}

// ----------------------------------------------------- ResidualConvBlock

ResidualConvBlock::ResidualConvBlock(std::size_t channels, Rng& rng)
    : conv1_(channels, channels, rng), conv2_(channels, channels, rng) {}

void ResidualConvBlock::forward(const Tensor& x, Tensor& y, Workspace& ws) {
  Tensor& h1 = ws.take(x.shape());
  conv1_.forward(x, h1, ws);
  Tensor& h2 = ws.take(x.shape());
  relu_mid_.forward(h1, h2, ws);
  Tensor& s = ws.take(x.shape());
  conv2_.forward(h2, s, ws);
  assert(s.same_shape(x));
  const std::size_t n = s.numel();
  {
    float* __restrict sp = s.data();
    const float* __restrict xp = x.data();
    for (std::size_t i = 0; i < n; ++i) sp[i] += xp[i];
  }
  cached_sum_ = &s;
  y.resize(s.shape());
  {
    const float* __restrict sp = s.data();
    float* __restrict yp = y.data();
    for (std::size_t i = 0; i < n; ++i)
      yp[i] = sp[i] > 0.0f ? sp[i] : 0.0f;
  }
}

void ResidualConvBlock::backward(const Tensor& grad_out, Tensor& grad_in,
                                 Workspace& ws) {
  assert(cached_sum_ != nullptr);
  const Tensor& s = *cached_sum_;
  // Through the output ReLU.
  Tensor& ds = ws.take(s.shape());
  {
    const float* __restrict sp = s.data();
    const float* __restrict gp = grad_out.data();
    float* __restrict dp = ds.data();
    const std::size_t n = s.numel();
    for (std::size_t i = 0; i < n; ++i) {
      const float g = gp[i];  // unconditional load -> vector blend
      dp[i] = sp[i] > 0.0f ? g : 0.0f;
    }
  }
  // Main branch: conv2 -> mid ReLU -> conv1; skip branch adds ds directly.
  Tensor& g2 = ws.take(s.shape());
  conv2_.backward(ds, g2, ws);
  Tensor& g3 = ws.take(s.shape());
  relu_mid_.backward(g2, g3, ws);
  conv1_.backward(g3, grad_in, ws);
  {
    float* __restrict gp = grad_in.data();
    const float* __restrict dp = ds.data();
    const std::size_t n = grad_in.numel();
    for (std::size_t i = 0; i < n; ++i) gp[i] += dp[i];
  }
}

std::vector<ParamView> ResidualConvBlock::params() {
  auto p = conv1_.params();
  auto p2 = conv2_.params();
  p.insert(p.end(), p2.begin(), p2.end());
  return p;
}

}  // namespace signguard::nn
