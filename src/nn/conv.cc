#include "nn/conv.h"

#include <cassert>
#include <cmath>

namespace signguard::nn {

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      w_(out_channels * in_channels * kKernel * kKernel),
      b_(out_channels, 0.0f),
      gw_(w_.size(), 0.0f),
      gb_(out_channels, 0.0f) {
  // He-uniform: fan_in = IC * 3 * 3.
  const double fan_in = double(in_channels * kKernel * kKernel);
  const double bound = std::sqrt(6.0 / fan_in);
  for (auto& v : w_) v = static_cast<float>(rng.uniform(-bound, bound));
}

Tensor Conv2d::forward(const Tensor& x) {
  assert(x.ndim() == 4 && x.dim(1) == in_ch_);
  cached_input_ = x;
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  Tensor y({batch, out_ch_, h, w});
  const std::ptrdiff_t hh = std::ptrdiff_t(h), ww = std::ptrdiff_t(w);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      float* yp = y.data() + ((b * out_ch_ + oc) * h) * w;
      for (std::size_t i = 0; i < h * w; ++i) yp[i] = b_[oc];
      for (std::size_t ic = 0; ic < in_ch_; ++ic) {
        const float* xp = x.data() + ((b * in_ch_ + ic) * h) * w;
        const float* wk = w_.data() + ((oc * in_ch_ + ic) * kKernel) * kKernel;
        for (std::ptrdiff_t ky = -1; ky <= 1; ++ky) {
          for (std::ptrdiff_t kx = -1; kx <= 1; ++kx) {
            const float kv = wk[(ky + 1) * 3 + (kx + 1)];
            if (kv == 0.0f) continue;
            const std::ptrdiff_t y0 = std::max<std::ptrdiff_t>(0, -ky);
            const std::ptrdiff_t y1 = std::min(hh, hh - ky);
            const std::ptrdiff_t x0 = std::max<std::ptrdiff_t>(0, -kx);
            const std::ptrdiff_t x1 = std::min(ww, ww - kx);
            for (std::ptrdiff_t yy = y0; yy < y1; ++yy) {
              float* yrow = yp + yy * ww;
              const float* xrow = xp + (yy + ky) * ww + kx;
              for (std::ptrdiff_t xx = x0; xx < x1; ++xx)
                yrow[xx] += kv * xrow[xx];
            }
          }
        }
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const std::size_t batch = x.dim(0), h = x.dim(2), w = x.dim(3);
  assert(grad_out.dim(1) == out_ch_ && grad_out.dim(2) == h &&
         grad_out.dim(3) == w);
  Tensor dx({batch, in_ch_, h, w});
  const std::ptrdiff_t hh = std::ptrdiff_t(h), ww = std::ptrdiff_t(w);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float* gy = grad_out.data() + ((b * out_ch_ + oc) * h) * w;
      for (std::size_t i = 0; i < h * w; ++i) gb_[oc] += gy[i];
      for (std::size_t ic = 0; ic < in_ch_; ++ic) {
        const float* xp = x.data() + ((b * in_ch_ + ic) * h) * w;
        float* gxp = dx.data() + ((b * in_ch_ + ic) * h) * w;
        const float* wk = w_.data() + ((oc * in_ch_ + ic) * kKernel) * kKernel;
        float* gwk = gw_.data() + ((oc * in_ch_ + ic) * kKernel) * kKernel;
        for (std::ptrdiff_t ky = -1; ky <= 1; ++ky) {
          for (std::ptrdiff_t kx = -1; kx <= 1; ++kx) {
            const float kv = wk[(ky + 1) * 3 + (kx + 1)];
            double gk = 0.0;
            const std::ptrdiff_t y0 = std::max<std::ptrdiff_t>(0, -ky);
            const std::ptrdiff_t y1 = std::min(hh, hh - ky);
            const std::ptrdiff_t x0 = std::max<std::ptrdiff_t>(0, -kx);
            const std::ptrdiff_t x1 = std::min(ww, ww - kx);
            for (std::ptrdiff_t yy = y0; yy < y1; ++yy) {
              const float* gyrow = gy + yy * ww;
              const float* xrow = xp + (yy + ky) * ww + kx;
              float* gxrow = gxp + (yy + ky) * ww + kx;
              for (std::ptrdiff_t xx = x0; xx < x1; ++xx) {
                gk += double(gyrow[xx]) * double(xrow[xx]);
                gxrow[xx] += gyrow[xx] * kv;
              }
            }
            gwk[(ky + 1) * 3 + (kx + 1)] += static_cast<float>(gk);
          }
        }
      }
    }
  }
  return dx;
}

std::vector<ParamView> Conv2d::params() {
  return {{w_, gw_}, {b_, gb_}};
}

// -------------------------------------------------------------- MaxPool2

Tensor MaxPool2::forward(const Tensor& x) {
  assert(x.ndim() == 4 && x.dim(2) % 2 == 0 && x.dim(3) % 2 == 0);
  cached_in_shape_ = x.shape();
  const std::size_t batch = x.dim(0), ch = x.dim(1), h = x.dim(2),
                    w = x.dim(3);
  const std::size_t oh = h / 2, ow = w / 2;
  Tensor y({batch, ch, oh, ow});
  argmax_.assign(y.numel(), 0);
  for (std::size_t bc = 0; bc < batch * ch; ++bc) {
    const float* xp = x.data() + bc * h * w;
    float* yp = y.data() + bc * oh * ow;
    std::size_t* ap = argmax_.data() + bc * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        std::size_t best = (2 * oy) * w + 2 * ox;
        float best_v = xp[best];
        const std::size_t cands[3] = {(2 * oy) * w + 2 * ox + 1,
                                      (2 * oy + 1) * w + 2 * ox,
                                      (2 * oy + 1) * w + 2 * ox + 1};
        for (const std::size_t c : cands) {
          if (xp[c] > best_v) {
            best_v = xp[c];
            best = c;
          }
        }
        yp[oy * ow + ox] = best_v;
        ap[oy * ow + ox] = bc * h * w + best;
      }
    }
  }
  return y;
}

Tensor MaxPool2::backward(const Tensor& grad_out) {
  Tensor dx(cached_in_shape_);
  assert(grad_out.numel() == argmax_.size());
  for (std::size_t i = 0; i < grad_out.numel(); ++i)
    dx[argmax_[i]] += grad_out[i];
  return dx;
}

// ----------------------------------------------------- ResidualConvBlock

ResidualConvBlock::ResidualConvBlock(std::size_t channels, Rng& rng)
    : conv1_(channels, channels, rng), conv2_(channels, channels, rng) {}

Tensor ResidualConvBlock::forward(const Tensor& x) {
  Tensor h = relu_mid_.forward(conv1_.forward(x));
  Tensor s = conv2_.forward(h);
  assert(s.same_shape(x));
  for (std::size_t i = 0; i < s.numel(); ++i) s[i] += x[i];
  cached_sum_ = s;
  Tensor y = s;
  for (auto& v : y.flat()) v = v > 0.0f ? v : 0.0f;
  return y;
}

Tensor ResidualConvBlock::backward(const Tensor& grad_out) {
  // Through the output ReLU.
  Tensor ds = grad_out;
  for (std::size_t i = 0; i < ds.numel(); ++i)
    if (cached_sum_[i] <= 0.0f) ds[i] = 0.0f;
  // Main branch: conv2 -> mid ReLU -> conv1; skip branch adds ds directly.
  Tensor dx = conv1_.backward(relu_mid_.backward(conv2_.backward(ds)));
  for (std::size_t i = 0; i < dx.numel(); ++i) dx[i] += ds[i];
  return dx;
}

std::vector<ParamView> ResidualConvBlock::params() {
  auto p = conv1_.params();
  auto p2 = conv2_.params();
  p.insert(p.end(), p2.begin(), p2.end());
  return p;
}

}  // namespace signguard::nn
