#pragma once
// SGD with momentum over flat parameter buffers, plus the weight-decay
// helper clients apply when forming their gradient message.
//
// Placement note (documented in DESIGN.md): with one local iteration and
// full participation (the paper's §V-C setting), client-side momentum
// buffers evolve identically on every client, so the library applies
// momentum once at the server.

#include <span>
#include <vector>

namespace signguard::nn {

class SgdMomentum {
 public:
  SgdMomentum(double lr, double momentum) : lr_(lr), momentum_(momentum) {}

  // params <- params - lr * v, where v <- momentum * v + grad.
  void step(std::span<float> params, std::span<const float> grad);

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }
  void reset() { velocity_.clear(); }

  // Momentum buffer snapshot/restore for crash-consistent checkpoints
  // (fl/checkpoint.h). Empty means "no step taken yet".
  const std::vector<float>& velocity() const { return velocity_; }
  void set_velocity(std::vector<float> v) { velocity_ = std::move(v); }

 private:
  double lr_;
  double momentum_;
  std::vector<float> velocity_;
};

// grad += weight_decay * params (L2 regularization contribution).
void add_weight_decay(std::span<float> grad, std::span<const float> params,
                      double weight_decay);

}  // namespace signguard::nn
