#pragma once
// Model factories for the four workloads in the paper's evaluation
// (§V-A), scaled to this repo's synthetic datasets:
//   - Mlp        : fast dense classifier used for wide defense-grid sweeps
//   - SmallCnn   : 2 conv + 2 fc, the "CNN on MNIST/Fashion-MNIST" family
//   - ColorCnn   : 3-channel CNN with a residual block, the "ResNet-18 on
//                  CIFAR-10" family (≈50/50 positive/negative gradient sign
//                  balance, the property the paper calls out in Table II)
//   - TextRnn    : embedding + tanh RNN + linear head, the "TextRNN on
//                  AG-News" family
//   - EmbedBagText: embedding + mean-pool + linear, a cheap text model for
//                  large sweeps

#include <cstdint>

#include "nn/conv.h"
#include "nn/model.h"
#include "nn/rnn.h"

namespace signguard::nn {

Model make_mlp(std::size_t input_dim, std::size_t hidden_dim,
               std::size_t classes, std::uint64_t seed);

// Input [B, 1, hw, hw]; hw must be divisible by 4.
Model make_small_cnn(std::size_t hw, std::size_t classes, std::uint64_t seed);

// Input [B, 3, hw, hw]; hw must be divisible by 4.
Model make_color_cnn(std::size_t hw, std::size_t classes, std::uint64_t seed);

// Input [B, T] of token ids.
Model make_text_rnn(std::size_t vocab, std::size_t embed_dim,
                    std::size_t hidden_dim, std::size_t classes,
                    std::uint64_t seed);

// Input [B, T] of token ids.
Model make_embed_bag_text(std::size_t vocab, std::size_t embed_dim,
                          std::size_t classes, std::uint64_t seed);

}  // namespace signguard::nn
