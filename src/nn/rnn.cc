#include "nn/rnn.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/gemm.h"

namespace signguard::nn {

RnnTanh::RnnTanh(std::size_t input_dim, std::size_t hidden_dim, Rng& rng,
                 RnnOutput output_mode)
    : in_(input_dim),
      hid_(hidden_dim),
      output_mode_(output_mode),
      wxh_(hidden_dim * input_dim),
      whh_(hidden_dim * hidden_dim),
      bh_(hidden_dim, 0.0f),
      gwxh_(wxh_.size(), 0.0f),
      gwhh_(whh_.size(), 0.0f),
      gbh_(hidden_dim, 0.0f) {
  const double bx = std::sqrt(6.0 / double(input_dim + hidden_dim));
  for (auto& v : wxh_) v = static_cast<float>(rng.uniform(-bx, bx));
  // Orthogonal-ish small init for the recurrent matrix keeps BPTT stable.
  const double bh = std::sqrt(3.0 / double(hidden_dim));
  for (auto& v : whh_) v = static_cast<float>(rng.uniform(-bh, bh));
}

void RnnTanh::forward(const Tensor& x, Tensor& y, Workspace& ws) {
  assert(x.ndim() == 3 && x.dim(2) == in_);
  cached_input_ = &x;
  const std::size_t batch = x.dim(0), time = x.dim(1);
  Tensor& hidden = ws.take({batch, time, hid_});
  hidden_states_ = &hidden;
  Tensor& pre = ws.take({batch, hid_});
  y.resize({batch, hid_});
  // A fixed-t slice of a [B, T, *] tensor is a strided [B, *] matrix:
  // row b lives at base + t*width + b*(T*width), i.e. ld = T*width.
  const std::size_t x_stride = time * in_, h_stride = time * hid_;
  for (std::size_t t = 0; t < time; ++t) {
    float* p = pre.data();
    for (std::size_t b = 0; b < batch; ++b)
      std::copy(bh_.begin(), bh_.end(), p + b * hid_);
    // pre = b + x_t W_xh^T + h_{t-1} W_hh^T (h_0 = 0 -> term skipped).
    gemm_nt(batch, hid_, in_, x.data() + t * in_, x_stride, wxh_.data(), in_,
            p, hid_, /*accumulate=*/true);
    if (t > 0)
      gemm_nt(batch, hid_, hid_, hidden.data() + (t - 1) * hid_, h_stride,
              whh_.data(), hid_, p, hid_, /*accumulate=*/true);
    float* ht = hidden.data() + t * hid_;
    for (std::size_t b = 0; b < batch; ++b) {
      const float* pb = p + b * hid_;
      float* hb = ht + b * h_stride;
      for (std::size_t k = 0; k < hid_; ++k) hb[k] = std::tanh(pb[k]);
    }
  }
  if (output_mode_ == RnnOutput::kLastHidden) {
    for (std::size_t b = 0; b < batch; ++b) {
      const float* h_last = hidden.data() + (b * time + time - 1) * hid_;
      std::copy(h_last, h_last + hid_, y.data() + b * hid_);
    }
  } else {
    y.zero();
    for (std::size_t b = 0; b < batch; ++b) {
      float* yb = y.data() + b * hid_;
      for (std::size_t t = 0; t < time; ++t) {
        const float* ht = hidden.data() + (b * time + t) * hid_;
        for (std::size_t k = 0; k < hid_; ++k) yb[k] += ht[k];
      }
      for (std::size_t k = 0; k < hid_; ++k) yb[k] /= float(time);
    }
  }
}

void RnnTanh::backward(const Tensor& grad_out, Tensor& grad_in,
                       Workspace& ws) {
  assert(cached_input_ != nullptr && hidden_states_ != nullptr);
  const Tensor& x = *cached_input_;
  const Tensor& hidden = *hidden_states_;
  const std::size_t batch = x.dim(0), time = x.dim(1);
  assert(grad_out.ndim() == 2 && grad_out.dim(1) == hid_);
  grad_in.resize({batch, time, in_});
  Tensor& dh = ws.take({batch, hid_});
  Tensor& dpre = ws.take({batch, hid_});
  // Under mean pooling every step receives gy/T directly, in addition to
  // the recurrent gradient flowing back from later steps.
  const float pool_w =
      output_mode_ == RnnOutput::kMeanPool ? 1.0f / float(time) : 0.0f;
  const float* gy = grad_out.data();
  {
    const float seed_w = output_mode_ == RnnOutput::kLastHidden ? 1.0f
                                                                : pool_w;
    for (std::size_t i = 0; i < batch * hid_; ++i) dh[i] = gy[i] * seed_w;
  }
  const std::size_t x_stride = time * in_, h_stride = time * hid_;
  for (std::size_t t = time; t-- > 0;) {
    // dpre = dh * (1 - h_t^2): gradient at the pre-activation.
    const float* ht = hidden.data() + t * hid_;
    for (std::size_t b = 0; b < batch; ++b) {
      const float* hb = ht + b * h_stride;
      const float* dhb = dh.data() + b * hid_;
      float* dpb = dpre.data() + b * hid_;
      for (std::size_t k = 0; k < hid_; ++k)
        dpb[k] = dhb[k] * (1.0f - hb[k] * hb[k]);
    }
    add_col_sums(dpre.data(), batch, hid_, hid_, gbh_.data());
    // gW_xh += dpre^T x_t ; dx_t = dpre W_xh
    gemm_tn(hid_, in_, batch, dpre.data(), hid_, x.data() + t * in_, x_stride,
            gwxh_.data(), in_, /*accumulate=*/true);
    gemm_nn(batch, in_, hid_, dpre.data(), hid_, wxh_.data(), in_,
            grad_in.data() + t * in_, x_stride, /*accumulate=*/false);
    if (t > 0) {
      gemm_tn(hid_, hid_, batch, dpre.data(), hid_,
              hidden.data() + (t - 1) * hid_, h_stride, gwhh_.data(), hid_,
              /*accumulate=*/true);
      // dh for the previous step: recurrent flow through W_hh plus the
      // direct mean-pool contribution (zero in last-hidden mode). Not
      // needed after the t == 0 step — there is no previous step.
      gemm_nn(batch, hid_, hid_, dpre.data(), hid_, whh_.data(), hid_,
              dh.data(), hid_, /*accumulate=*/false);
      if (pool_w != 0.0f)
        for (std::size_t i = 0; i < batch * hid_; ++i)
          dh[i] += pool_w * gy[i];
    }
  }
}

std::vector<ParamView> RnnTanh::params() {
  return {{wxh_, gwxh_}, {whh_, gwhh_}, {bh_, gbh_}};
}

}  // namespace signguard::nn
