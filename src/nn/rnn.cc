#include "nn/rnn.h"

#include <cassert>
#include <cmath>

namespace signguard::nn {

RnnTanh::RnnTanh(std::size_t input_dim, std::size_t hidden_dim, Rng& rng,
                 RnnOutput output_mode)
    : in_(input_dim),
      hid_(hidden_dim),
      output_mode_(output_mode),
      wxh_(hidden_dim * input_dim),
      whh_(hidden_dim * hidden_dim),
      bh_(hidden_dim, 0.0f),
      gwxh_(wxh_.size(), 0.0f),
      gwhh_(whh_.size(), 0.0f),
      gbh_(hidden_dim, 0.0f) {
  const double bx = std::sqrt(6.0 / double(input_dim + hidden_dim));
  for (auto& v : wxh_) v = static_cast<float>(rng.uniform(-bx, bx));
  // Orthogonal-ish small init for the recurrent matrix keeps BPTT stable.
  const double bh = std::sqrt(3.0 / double(hidden_dim));
  for (auto& v : whh_) v = static_cast<float>(rng.uniform(-bh, bh));
}

Tensor RnnTanh::forward(const Tensor& x) {
  assert(x.ndim() == 3 && x.dim(2) == in_);
  cached_input_ = x;
  const std::size_t batch = x.dim(0), time = x.dim(1);
  hidden_states_ = Tensor({batch, time, hid_});
  Tensor out({batch, hid_});
  std::vector<float> h_prev(hid_);
  for (std::size_t b = 0; b < batch; ++b) {
    for (auto& v : h_prev) v = 0.0f;
    for (std::size_t t = 0; t < time; ++t) {
      const float* xt = x.data() + (b * time + t) * in_;
      float* ht = hidden_states_.data() + (b * time + t) * hid_;
      for (std::size_t k = 0; k < hid_; ++k) {
        double acc = bh_[k];
        const float* wx = wxh_.data() + k * in_;
        for (std::size_t e = 0; e < in_; ++e) acc += double(wx[e]) * xt[e];
        const float* wh = whh_.data() + k * hid_;
        for (std::size_t j = 0; j < hid_; ++j) acc += double(wh[j]) * h_prev[j];
        ht[k] = static_cast<float>(std::tanh(acc));
      }
      for (std::size_t k = 0; k < hid_; ++k) h_prev[k] = ht[k];
    }
    float* ob = out.data() + b * hid_;
    if (output_mode_ == RnnOutput::kLastHidden) {
      const float* h_last =
          hidden_states_.data() + (b * time + time - 1) * hid_;
      for (std::size_t k = 0; k < hid_; ++k) ob[k] = h_last[k];
    } else {
      for (std::size_t t = 0; t < time; ++t) {
        const float* ht = hidden_states_.data() + (b * time + t) * hid_;
        for (std::size_t k = 0; k < hid_; ++k) ob[k] += ht[k];
      }
      for (std::size_t k = 0; k < hid_; ++k) ob[k] /= float(time);
    }
  }
  return out;
}

Tensor RnnTanh::backward(const Tensor& grad_out) {
  const std::size_t batch = cached_input_.dim(0),
                    time = cached_input_.dim(1);
  assert(grad_out.ndim() == 2 && grad_out.dim(1) == hid_);
  Tensor dx({batch, time, in_});
  std::vector<float> dh(hid_), dpre(hid_);
  // Under mean pooling every step receives gy/T directly, in addition to
  // the recurrent gradient flowing back from later steps.
  const float pool_w = output_mode_ == RnnOutput::kMeanPool
                           ? 1.0f / float(time)
                           : 0.0f;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* gy = grad_out.data() + b * hid_;
    if (output_mode_ == RnnOutput::kLastHidden) {
      for (std::size_t k = 0; k < hid_; ++k) dh[k] = gy[k];
    } else {
      for (std::size_t k = 0; k < hid_; ++k) dh[k] = gy[k] * pool_w;
    }
    for (std::size_t t = time; t-- > 0;) {
      const float* ht = hidden_states_.data() + (b * time + t) * hid_;
      const float* xt = cached_input_.data() + (b * time + t) * in_;
      float* gxt = dx.data() + (b * time + t) * in_;
      // dpre = dh * (1 - h^2): gradient at the pre-activation.
      for (std::size_t k = 0; k < hid_; ++k)
        dpre[k] = dh[k] * (1.0f - ht[k] * ht[k]);
      const float* h_prev =
          t > 0 ? hidden_states_.data() + (b * time + t - 1) * hid_ : nullptr;
      for (std::size_t k = 0; k < hid_; ++k) {
        const float g = dpre[k];
        if (g == 0.0f) continue;
        gbh_[k] += g;
        float* gwx = gwxh_.data() + k * in_;
        for (std::size_t e = 0; e < in_; ++e) {
          gwx[e] += g * xt[e];
          gxt[e] += g * wxh_[k * in_ + e];
        }
        if (h_prev != nullptr) {
          float* gwh = gwhh_.data() + k * hid_;
          for (std::size_t j = 0; j < hid_; ++j) gwh[j] += g * h_prev[j];
        }
      }
      // dh for the previous step: recurrent flow through W_hh plus the
      // direct mean-pool contribution (zero in last-hidden mode).
      for (std::size_t j = 0; j < hid_; ++j) {
        double acc = double(pool_w) * double(gy[j]);
        for (std::size_t k = 0; k < hid_; ++k)
          acc += double(dpre[k]) * double(whh_[k * hid_ + j]);
        dh[j] = static_cast<float>(acc);
      }
    }
  }
  return dx;
}

std::vector<ParamView> RnnTanh::params() {
  return {{wxh_, gwxh_}, {whh_, gwhh_}, {bh_, gbh_}};
}

}  // namespace signguard::nn
