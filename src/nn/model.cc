#include "nn/model.h"

#include <cassert>

namespace signguard::nn {

Model& Model::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  first_param_layer_ = kFirstParamUnknown;
  return *this;
}

const Tensor& Model::forward(const Tensor& x) {
  ws_.begin_pass();
  const Tensor* h = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Tensor& y = ws_.activation(i);
    layers_[i]->forward(*h, y, ws_);
    h = &y;
  }
  return *h;
}

void Model::backward(const Tensor& dlogits) {
  if (first_param_layer_ == kFirstParamUnknown) {
    first_param_layer_ = layers_.size();
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      if (!layers_[i]->params().empty()) {
        first_param_layer_ = i;
        break;
      }
    }
  }
  // Two ping-pong buffers: layer i reads the buffer layer i+1 wrote
  // ((i+1) & 1) and writes its own (i & 1) — never the same slot. The
  // chain stops at the first parameterized layer: no input gradient is
  // consumed below it, so that layer runs its params-only backward and
  // any parameter-free layers underneath are skipped entirely.
  const Tensor* g = &dlogits;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    if (i == first_param_layer_) {
      layers_[i]->backward_params_only(*g, ws_);
      return;
    }
    Tensor& gx = ws_.grad_buffer(i & 1);
    layers_[i]->backward(*g, gx, ws_);
    g = &gx;
  }
}

std::size_t Model::parameter_count() {
  std::size_t n = 0;
  for (auto& l : layers_)
    for (const auto& p : l->params()) n += p.value.size();
  return n;
}

std::vector<float> Model::parameters() {
  std::vector<float> flat;
  flat.reserve(parameter_count());
  for (auto& l : layers_)
    for (const auto& p : l->params())
      flat.insert(flat.end(), p.value.begin(), p.value.end());
  return flat;
}

std::vector<float> Model::gradients() {
  std::vector<float> flat;
  flat.reserve(parameter_count());
  for (auto& l : layers_)
    for (const auto& p : l->params())
      flat.insert(flat.end(), p.grad.begin(), p.grad.end());
  return flat;
}

void Model::gradients_into(std::span<float> out) {
  std::size_t off = 0;
  for (auto& l : layers_) {
    for (const auto& p : l->params()) {
      assert(off + p.grad.size() <= out.size());
      for (std::size_t i = 0; i < p.grad.size(); ++i)
        out[off + i] = p.grad[i];
      off += p.grad.size();
    }
  }
  assert(off == out.size());
}

void Model::add_weight_decay_into(std::span<float> out, double weight_decay) {
  if (weight_decay == 0.0) return;
  std::size_t off = 0;
  for (auto& l : layers_) {
    for (const auto& p : l->params()) {
      assert(off + p.value.size() <= out.size());
      for (std::size_t i = 0; i < p.value.size(); ++i)
        out[off + i] = static_cast<float>(double(out[off + i]) +
                                          weight_decay * double(p.value[i]));
      off += p.value.size();
    }
  }
  assert(off == out.size());
}

void Model::set_parameters(std::span<const float> flat) {
  std::size_t off = 0;
  for (auto& l : layers_) {
    for (auto& p : l->params()) {
      assert(off + p.value.size() <= flat.size());
      for (std::size_t i = 0; i < p.value.size(); ++i)
        p.value[i] = flat[off + i];
      off += p.value.size();
    }
  }
  assert(off == flat.size());
}

void Model::zero_gradients() {
  for (auto& l : layers_) l->zero_grad();
}

}  // namespace signguard::nn
