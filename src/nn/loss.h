#pragma once
// Softmax cross-entropy loss over a logits batch, returning both the
// scalar loss and the gradient w.r.t. the logits (ready for backward()).

#include <span>

#include "nn/tensor.h"

namespace signguard::nn {

struct LossResult {
  double loss = 0.0;          // mean over the batch
  Tensor dlogits;             // [B, C], already divided by batch size
  std::size_t correct = 0;    // argmax == label count, for accuracy
};

// logits: [B, C]; labels: B ints in [0, C).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels);

// Allocation-free variant for the training hot path: writes into `out`,
// reusing out.dlogits capacity across calls.
void softmax_cross_entropy_into(const Tensor& logits,
                                std::span<const int> labels, LossResult& out);

}  // namespace signguard::nn
