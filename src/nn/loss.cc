#include "nn/loss.h"

#include <cassert>
#include <cmath>

namespace signguard::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels) {
  LossResult r;
  softmax_cross_entropy_into(logits, labels, r);
  return r;
}

void softmax_cross_entropy_into(const Tensor& logits,
                                std::span<const int> labels,
                                LossResult& r) {
  assert(logits.ndim() == 2 && logits.dim(0) == labels.size());
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  r.dlogits.resize({batch, classes});
  r.correct = 0;
  double total = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* z = logits.data() + b * classes;
    float* g = r.dlogits.data() + b * classes;
    float zmax = z[0];
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (z[c] > zmax) {
        zmax = z[c];
        argmax = c;
      }
    }
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c)
      denom += std::exp(double(z[c]) - double(zmax));
    const int y = labels[b];
    assert(y >= 0 && std::size_t(y) < classes);
    const double log_p =
        double(z[std::size_t(y)]) - double(zmax) - std::log(denom);
    total -= log_p;
    if (argmax == std::size_t(y)) ++r.correct;
    for (std::size_t c = 0; c < classes; ++c) {
      const double p = std::exp(double(z[c]) - double(zmax)) / denom;
      g[c] = static_cast<float>(
          (p - (c == std::size_t(y) ? 1.0 : 0.0)) / double(batch));
    }
  }
  r.loss = total / double(batch);
}

}  // namespace signguard::nn
