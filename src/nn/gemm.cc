#include "nn/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "obs/metrics.h"

namespace signguard::nn {
namespace {

enum class Trans { kN, kT };

constexpr std::size_t kMr = 4;  // micro-tile rows
constexpr std::size_t kNr = 8;  // micro-tile cols
// Below this many multiply-adds the row-panel fan-out costs more than it
// saves; the kernel then stays on the calling thread.
constexpr std::size_t kParallelMacs = std::size_t{1} << 20;

inline float elem(const float* p, std::size_t ld, Trans t, std::size_t row,
                  std::size_t col) {
  // Logical (row, col) of the possibly-transposed operand.
  return t == Trans::kN ? p[row * ld + col] : p[col * ld + row];
}

// Per-element reference: one float accumulator per C[i][j], p strictly
// ascending — the numeric contract every other code path reproduces
// bitwise.
void scalar_block(std::size_t i0, std::size_t i1, std::size_t j0,
                  std::size_t j1, std::size_t k, const float* a,
                  std::size_t lda, Trans ta, const float* b, std::size_t ldb,
                  Trans tb, float* c, std::size_t ldc, bool accumulate) {
  for (std::size_t i = i0; i < i1; ++i) {
    for (std::size_t j = j0; j < j1; ++j) {
      float acc = accumulate ? c[i * ldc + j] : 0.0f;
      for (std::size_t p = 0; p < k; ++p)
        acc += elem(a, lda, ta, i, p) * elem(b, ldb, tb, p, j);
      c[i * ldc + j] = acc;
    }
  }
}

// Wider vector units only change how many independent accumulators a
// lane batch holds, never the per-accumulator addition order, and
// -ffp-contract=off keeps mul+add unfused in every clone — so the AVX2
// clone is bit-identical to the baseline and to the reference loops.
#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define SIGNGUARD_GEMM_CLONES \
  __attribute__((target_clones("default", "avx2")))
#endif
#endif
#ifndef SIGNGUARD_GEMM_CLONES
#define SIGNGUARD_GEMM_CLONES
#endif

// One kMr x kNr C tile: kMr*kNr independent accumulators held in
// registers; the k loop is sequential per accumulator, so each output
// element sees the exact scalar_block addition order.
SIGNGUARD_GEMM_CLONES
void micro_kernel(std::size_t k, const float* pa, const float* pb, float* c,
                  std::size_t ldc, bool accumulate) {
  float acc[kMr][kNr];
  for (std::size_t r = 0; r < kMr; ++r)
    for (std::size_t q = 0; q < kNr; ++q)
      acc[r][q] = accumulate ? c[r * ldc + q] : 0.0f;
  for (std::size_t p = 0; p < k; ++p) {
    const float* ap = pa + p * kMr;
    const float* bp = pb + p * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float av = ap[r];
      for (std::size_t q = 0; q < kNr; ++q) acc[r][q] += av * bp[q];
    }
  }
  for (std::size_t r = 0; r < kMr; ++r)
    for (std::size_t q = 0; q < kNr; ++q) c[r * ldc + q] = acc[r][q];
}

// Edge tile: same packed panels (zero-padded), but the row/column loops
// are bounded by the valid extent, so a 1-wide tail panel costs one
// multiply per k step instead of kNr. Valid lanes see the identical
// ascending-k addition sequence, so bitwise determinism is preserved;
// the padded pack lanes are simply never read.
SIGNGUARD_GEMM_CLONES
void micro_kernel_edge(std::size_t k, const float* pa, const float* pb,
                       float* c, std::size_t ldc, bool accumulate,
                       std::size_t rows, std::size_t cols) {
  float acc[kMr][kNr];
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t q = 0; q < cols; ++q)
      acc[r][q] = accumulate ? c[r * ldc + q] : 0.0f;
  for (std::size_t p = 0; p < k; ++p) {
    const float* ap = pa + p * kMr;
    const float* bp = pb + p * kNr;
    for (std::size_t r = 0; r < rows; ++r) {
      const float av = ap[r];
      for (std::size_t q = 0; q < cols; ++q) acc[r][q] += av * bp[q];
    }
  }
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t q = 0; q < cols; ++q) c[r * ldc + q] = acc[r][q];
}

// Packing scratch, grown once per thread and reused — GEMM calls on the
// training hot path do no steady-state allocation.
thread_local std::vector<float> tl_pack_a;
thread_local std::vector<float> tl_pack_b;

void gemm_tiled(std::size_t m, std::size_t n, std::size_t k, const float* a,
                std::size_t lda, Trans ta, const float* b, std::size_t ldb,
                Trans tb, float* c, std::size_t ldc, bool accumulate) {
  const std::size_t n_panels = (n + kNr - 1) / kNr;
  // Pack B's kNr-wide panels once, p-major, so the micro-kernel streams
  // each panel linearly; transposition happens here, which is what keeps
  // the kernels free of col-major access. The final partial panel is
  // zero-padded — padded lanes are computed but never stored.
  if (tl_pack_b.size() < k * n_panels * kNr)
    tl_pack_b.resize(k * n_panels * kNr);
  float* pb_base = tl_pack_b.data();
  for (std::size_t pj = 0; pj < n_panels; ++pj) {
    const std::size_t j0 = pj * kNr;
    const std::size_t cols = std::min(kNr, n - j0);
    float* dst = pb_base + j0 * k;
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t q = 0; q < cols; ++q)
        *dst++ = elem(b, ldb, tb, p, j0 + q);
      for (std::size_t q = cols; q < kNr; ++q) *dst++ = 0.0f;
    }
  }

  const std::size_t panels = (m + kMr - 1) / kMr;
  auto run_panels = [&](std::size_t begin, std::size_t end) {
    // tl_pack_a resolves to the executing worker's buffer.
    if (tl_pack_a.size() < k * kMr) tl_pack_a.resize(k * kMr);
    float* pa = tl_pack_a.data();
    for (std::size_t pi = begin; pi < end; ++pi) {
      const std::size_t i0 = pi * kMr;
      const std::size_t rows = std::min(kMr, m - i0);
      for (std::size_t p = 0; p < k; ++p) {
        for (std::size_t r = 0; r < rows; ++r)
          pa[p * kMr + r] = elem(a, lda, ta, i0 + r, p);
        for (std::size_t r = rows; r < kMr; ++r) pa[p * kMr + r] = 0.0f;
      }
      for (std::size_t pj = 0; pj < n_panels; ++pj) {
        const std::size_t j0 = pj * kNr;
        const std::size_t cols = std::min(kNr, n - j0);
        if (rows == kMr && cols == kNr)
          micro_kernel(k, pa, pb_base + j0 * k, c + i0 * ldc + j0, ldc,
                       accumulate);
        else
          micro_kernel_edge(k, pa, pb_base + j0 * k, c + i0 * ldc + j0, ldc,
                            accumulate, rows, cols);
      }
    }
  };

  // Whole C rows per worker -> disjoint writes, and every element's value
  // is independent of the split, so any thread count yields the same bits.
  if (m * n * k >= kParallelMacs && common::thread_count() > 1 &&
      !common::in_parallel_region()) {
    common::parallel_chunks(
        panels,
        [&](std::size_t b0, std::size_t e0, std::size_t) { run_panels(b0, e0); });
  } else {
    run_panels(0, panels);
  }
}

GemmBackend backend_from_env() {
  const char* env = std::getenv("SIGNGUARD_GEMM");
  if (env != nullptr) {
    const std::string s(env);
    if (s == "ref" || s == "reference") return GemmBackend::kReference;
  }
  return GemmBackend::kTiled;
}

std::atomic<GemmBackend> g_backend{backend_from_env()};

void gemm_dispatch(std::size_t m, std::size_t n, std::size_t k,
                   const float* a, std::size_t lda, Trans ta, const float* b,
                   std::size_t ldb, Trans tb, float* c, std::size_t ldc,
                   bool accumulate) {
  if (m == 0 || n == 0) return;
  // Billed to whatever stage the caller's obs context is in (client
  // compute, eval, ...); a no-op without an attached registry.
  obs::count(obs::Counter::kGemmFlops,
             std::uint64_t(2) * m * n * k);
  if (k == 0) {
    // Degenerate inner dimension: the product is a zero matrix.
    if (!accumulate)
      for (std::size_t i = 0; i < m; ++i)
        std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    return;
  }
  if (gemm_backend() == GemmBackend::kReference) {
    scalar_block(0, m, 0, n, k, a, lda, ta, b, ldb, tb, c, ldc, accumulate);
    return;
  }
  gemm_tiled(m, n, k, a, lda, ta, b, ldb, tb, c, ldc, accumulate);
}

}  // namespace

GemmBackend gemm_backend() {
  return g_backend.load(std::memory_order_relaxed);
}

void set_gemm_backend(GemmBackend b) {
  g_backend.store(b, std::memory_order_relaxed);
}

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c,
             std::size_t ldc, bool accumulate) {
  gemm_dispatch(m, n, k, a, lda, Trans::kN, b, ldb, Trans::kN, c, ldc,
                accumulate);
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c,
             std::size_t ldc, bool accumulate) {
  gemm_dispatch(m, n, k, a, lda, Trans::kN, b, ldb, Trans::kT, c, ldc,
                accumulate);
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c,
             std::size_t ldc, bool accumulate) {
  gemm_dispatch(m, n, k, a, lda, Trans::kT, b, ldb, Trans::kN, c, ldc,
                accumulate);
}

void add_bias_rows(float* c, std::size_t m, std::size_t n, std::size_t ldc,
                   const float* bias) {
  for (std::size_t i = 0; i < m; ++i) {
    float* row = c + i * ldc;
    for (std::size_t j = 0; j < n; ++j) row[j] += bias[j];
  }
}

void add_bias_cols(float* c, std::size_t m, std::size_t n, std::size_t ldc,
                   const float* bias) {
  for (std::size_t i = 0; i < m; ++i) {
    float* row = c + i * ldc;
    const float bv = bias[i];
    for (std::size_t j = 0; j < n; ++j) row[j] += bv;
  }
}

void add_col_sums(const float* a, std::size_t m, std::size_t n,
                  std::size_t lda, float* out) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = a + i * lda;
    for (std::size_t j = 0; j < n; ++j) out[j] += row[j];
  }
}

void add_row_sums(const float* a, std::size_t m, std::size_t n,
                  std::size_t lda, float* out) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = a + i * lda;
    float acc = out[i];
    for (std::size_t j = 0; j < n; ++j) acc += row[j];
    out[i] = acc;
  }
}

}  // namespace signguard::nn
