#pragma once
// Single-precision GEMM kernels behind the NN layers (Linear, im2col
// Conv2d, per-timestep RNN matmuls), plus the small broadcast/reduction
// helpers those layers need. All matrices are row-major with explicit
// leading dimensions, so strided views (a timestep slice of a [B, T, E]
// tensor, a sample block of a packed im2col buffer) feed the kernels
// directly — no col-major conversion, no staging copies.
//
// Two backends share one numeric contract:
//   kTiled     — register-tiled (4x8 accumulator block), cache-blocked
//                packing of A/B panels, row-panel parallelism over the
//                common::parallel pool.
//   kReference — the plain per-element triple loop (the pre-GEMM scalar
//                path), used as the correctness oracle and the baseline
//                the train microbench compares against.
//
// Determinism: for every output element C[i][j], both backends accumulate
// a_ip * b_pj over p = 0..k-1 strictly in order, in float, into a single
// accumulator (initialized from C[i][j] when accumulate is set). Register
// tiling only batches *independent* accumulators, and the parallel split
// assigns whole output rows to workers, so results are bit-identical
// across backends, tile shapes and SIGNGUARD_THREADS values. gemm.cc is
// compiled with -ffp-contract=off so no backend silently fuses into FMA.

#include <cstddef>

namespace signguard::nn {

enum class GemmBackend { kTiled, kReference };

// Active backend: set_gemm_backend() override if any, else the
// SIGNGUARD_GEMM environment variable ("ref"/"reference" selects the
// reference loops; anything else, or unset, selects the tiled path).
GemmBackend gemm_backend();
void set_gemm_backend(GemmBackend b);

// C[m x n] (+)= A[m x k] * B[k x n].
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c,
             std::size_t ldc, bool accumulate);

// C[m x n] (+)= A[m x k] * B[n x k]^T  (B stored row-major [n x k]).
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c,
             std::size_t ldc, bool accumulate);

// C[m x n] (+)= A[k x m]^T * B[k x n]  (A stored row-major [k x m]).
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c,
             std::size_t ldc, bool accumulate);

// Row-wise bias broadcast: c[i][j] += bias[j] (Linear output).
void add_bias_rows(float* c, std::size_t m, std::size_t n, std::size_t ldc,
                   const float* bias);

// Per-row bias broadcast: c[i][j] += bias[i] (conv output channels).
void add_bias_cols(float* c, std::size_t m, std::size_t n, std::size_t ldc,
                   const float* bias);

// out[j] += sum_i a[i][j] (bias gradient of a [batch x out] grad block).
void add_col_sums(const float* a, std::size_t m, std::size_t n,
                  std::size_t lda, float* out);

// out[i] += sum_j a[i][j] (bias gradient of a [channels x hw] grad block).
void add_row_sums(const float* a, std::size_t m, std::size_t n,
                  std::size_t lda, float* out);

}  // namespace signguard::nn
