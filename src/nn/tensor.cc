#include "nn/tensor.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace signguard::nn {

namespace {
std::size_t product(std::span<const std::size_t> shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         std::multiplies<>());
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(product(shape_), 0.0f) {}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const& {
  assert(product(new_shape) == numel());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) && {
  assert(product(new_shape) == numel());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = std::move(data_);
  // Leave *this empty-consistent: a stale shape over a moved-out buffer
  // would defeat resize()'s same-shape early return.
  shape_.clear();
  return t;
}

void Tensor::reshape_in_place(std::span<const std::size_t> new_shape) {
  assert(product(new_shape) == numel());
  shape_.assign(new_shape.begin(), new_shape.end());
}

void Tensor::resize(std::span<const std::size_t> shape) {
  if (shape_.size() == shape.size() &&
      std::equal(shape.begin(), shape.end(), shape_.begin()))
    return;  // steady state: no shape churn, no allocation
  shape_.assign(shape.begin(), shape.end());
  data_.resize(product(shape));
}

void Tensor::assign_from(const Tensor& src) {
  shape_.assign(src.shape_.begin(), src.shape_.end());
  data_.assign(src.data_.begin(), src.data_.end());
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

}  // namespace signguard::nn
