#include "nn/tensor.h"

#include <cassert>
#include <numeric>

namespace signguard::nn {

namespace {
std::size_t product(const std::vector<std::size_t>& shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         std::multiplies<>());
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(product(shape_), 0.0f) {}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  assert(product(new_shape) == numel());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

}  // namespace signguard::nn
