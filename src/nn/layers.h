#pragma once
// Layer interface plus the dense / elementwise / embedding layers. The
// convolutional layers live in conv.h, the recurrent layer in rnn.h.
//
// Contract: forward(x, y, ws) writes the layer output into the
// caller-provided tensor y (resizing it, capacity-reusing) and may cache
// a borrowed pointer to x — the caller (Model) guarantees x outlives the
// matching backward() call, so layers never deep-copy activations.
// backward(grad_out, grad_in, ws) receives dL/d(output), accumulates
// parameter gradients in place, and writes dL/d(input) into grad_in.
// Layer-internal scratch comes from the Workspace arena (ws.take), so a
// fixed pass structure allocates nothing after the first batch.
// Parameter gradients accumulate across backward() calls until
// zero_grad(); the Model gathers them into one flat buffer for the FL
// layer.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"
#include "nn/workspace.h"

namespace signguard::nn {

// A (value, gradient) view pair over one parameter blob of a layer.
struct ParamView {
  std::span<float> value;
  std::span<float> grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual void forward(const Tensor& x, Tensor& y, Workspace& ws) = 0;
  virtual void backward(const Tensor& grad_out, Tensor& grad_in,
                        Workspace& ws) = 0;

  // Backward for the model's first parameterized layer: nothing below it
  // consumes dL/d(input), so layers that can skip producing it override
  // this (Linear drops one GEMM, Conv2d drops the col2im scatter and its
  // GEMM). Default: full backward into a workspace sink. Parameter
  // gradients are identical to backward()'s.
  virtual void backward_params_only(const Tensor& grad_out, Workspace& ws) {
    Tensor& sink = ws.take({});
    backward(grad_out, sink, ws);
  }

  // Views over every learnable blob (empty for stateless layers).
  virtual std::vector<ParamView> params() { return {}; }
  virtual void zero_grad();

  virtual std::string name() const = 0;
};

// Fully connected: y = x W^T + b, W is [out x in] row-major, x is [B, in].
// Forward/backward are three GEMM calls (nt for the output, nn for dx,
// tn for the weight gradient) plus bias broadcast/reduction.
class Linear : public Layer {
 public:
  // `gain` scales the Xavier-uniform initialization bound (use
  // sqrt(2) ~ He for ReLU stacks, 1 for linear/tanh heads).
  Linear(std::size_t in, std::size_t out, Rng& rng, double gain = 1.0);

  void forward(const Tensor& x, Tensor& y, Workspace& ws) override;
  void backward(const Tensor& grad_out, Tensor& grad_in,
                Workspace& ws) override;
  void backward_params_only(const Tensor& grad_out, Workspace& ws) override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "Linear"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  std::vector<float> w_, b_, gw_, gb_;
  const Tensor* cached_input_ = nullptr;  // borrowed; valid until backward
};

// Elementwise max(0, x).
class ReLU : public Layer {
 public:
  void forward(const Tensor& x, Tensor& y, Workspace& ws) override;
  void backward(const Tensor& grad_out, Tensor& grad_in,
                Workspace& ws) override;
  std::string name() const override { return "ReLU"; }

 private:
  const Tensor* cached_input_ = nullptr;
};

// Elementwise tanh(x).
class Tanh : public Layer {
 public:
  void forward(const Tensor& x, Tensor& y, Workspace& ws) override;
  void backward(const Tensor& grad_out, Tensor& grad_in,
                Workspace& ws) override;
  std::string name() const override { return "Tanh"; }

 private:
  const Tensor* cached_output_ = nullptr;  // our own y slot, reused in bwd
};

// [B, ...] -> [B, prod(...)]. Metadata-only reshape plus one buffer copy
// into the caller's slot (assign_from reuses its capacity).
class Flatten : public Layer {
 public:
  void forward(const Tensor& x, Tensor& y, Workspace& ws) override;
  void backward(const Tensor& grad_out, Tensor& grad_in,
                Workspace& ws) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> cached_shape_;
};

// Token embedding: input [B, T] of ids stored as floats, output [B, T, E].
// Ids must be integers in [0, vocab).
class Embedding : public Layer {
 public:
  Embedding(std::size_t vocab, std::size_t dim, Rng& rng);

  void forward(const Tensor& ids, Tensor& y, Workspace& ws) override;
  void backward(const Tensor& grad_out, Tensor& grad_in,
                Workspace& ws) override;
  void backward_params_only(const Tensor& grad_out, Workspace& ws) override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "Embedding"; }

 private:
  std::size_t vocab_, dim_;
  std::vector<float> w_, gw_;
  std::vector<int> cached_ids_;
  std::size_t cached_batch_ = 0, cached_time_ = 0;
};

// Mean over the time axis: [B, T, E] -> [B, E].
class MeanPoolTime : public Layer {
 public:
  void forward(const Tensor& x, Tensor& y, Workspace& ws) override;
  void backward(const Tensor& grad_out, Tensor& grad_in,
                Workspace& ws) override;
  std::string name() const override { return "MeanPoolTime"; }

 private:
  std::size_t cached_time_ = 0;
};

}  // namespace signguard::nn
