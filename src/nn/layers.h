#pragma once
// Layer interface plus the dense / elementwise / embedding layers. The
// convolutional layers live in conv.h, the recurrent layer in rnn.h.
//
// Contract: forward() caches whatever backward() needs; backward() receives
// dL/d(output), accumulates parameter gradients in place, and returns
// dL/d(input). Parameter gradients accumulate across backward() calls until
// zero_grad(); the Model gathers them into one flat buffer for the FL layer.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace signguard::nn {

// A (value, gradient) view pair over one parameter blob of a layer.
struct ParamView {
  std::span<float> value;
  std::span<float> grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;

  // Views over every learnable blob (empty for stateless layers).
  virtual std::vector<ParamView> params() { return {}; }
  virtual void zero_grad();

  virtual std::string name() const = 0;
};

// Fully connected: y = W x + b, W is [out x in] row-major, x is [B, in].
class Linear : public Layer {
 public:
  // `gain` scales the Xavier-uniform initialization bound (use
  // sqrt(2) ~ He for ReLU stacks, 1 for linear/tanh heads).
  Linear(std::size_t in, std::size_t out, Rng& rng, double gain = 1.0);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "Linear"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  std::vector<float> w_, b_, gw_, gb_;
  Tensor cached_input_;
};

// Elementwise max(0, x).
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

// Elementwise tanh(x).
class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

// [B, ...] -> [B, prod(...)]. Pure reshape.
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> cached_shape_;
};

// Token embedding: input [B, T] of ids stored as floats, output [B, T, E].
// Ids must be integers in [0, vocab).
class Embedding : public Layer {
 public:
  Embedding(std::size_t vocab, std::size_t dim, Rng& rng);

  Tensor forward(const Tensor& ids) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "Embedding"; }

 private:
  std::size_t vocab_, dim_;
  std::vector<float> w_, gw_;
  std::vector<int> cached_ids_;
  std::size_t cached_batch_ = 0, cached_time_ = 0;
};

// Mean over the time axis: [B, T, E] -> [B, E].
class MeanPoolTime : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "MeanPoolTime"; }

 private:
  std::size_t cached_time_ = 0;
};

}  // namespace signguard::nn
