#include "nn/layers.h"

#include <cassert>
#include <cmath>

namespace signguard::nn {

void Layer::zero_grad() {
  for (auto& p : params())
    for (auto& g : p.grad) g = 0.0f;
}

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in, std::size_t out, Rng& rng, double gain)
    : in_(in),
      out_(out),
      w_(in * out),
      b_(out, 0.0f),
      gw_(in * out, 0.0f),
      gb_(out, 0.0f) {
  const double bound = gain * std::sqrt(6.0 / double(in + out));
  for (auto& v : w_) v = static_cast<float>(rng.uniform(-bound, bound));
}

Tensor Linear::forward(const Tensor& x) {
  assert(x.ndim() == 2 && x.dim(1) == in_);
  cached_input_ = x;
  const std::size_t batch = x.dim(0);
  Tensor y({batch, out_});
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xb = x.data() + b * in_;
    float* yb = y.data() + b * out_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float* wo = w_.data() + o * in_;
      double acc = b_[o];
      for (std::size_t i = 0; i < in_; ++i) acc += double(wo[i]) * double(xb[i]);
      yb[o] = static_cast<float>(acc);
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const std::size_t batch = cached_input_.dim(0);
  assert(grad_out.ndim() == 2 && grad_out.dim(0) == batch &&
         grad_out.dim(1) == out_);
  Tensor dx({batch, in_});
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xb = cached_input_.data() + b * in_;
    const float* gy = grad_out.data() + b * out_;
    float* gx = dx.data() + b * in_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float g = gy[o];
      if (g == 0.0f) continue;
      gb_[o] += g;
      float* gwo = gw_.data() + o * in_;
      const float* wo = w_.data() + o * in_;
      for (std::size_t i = 0; i < in_; ++i) {
        gwo[i] += g * xb[i];
        gx[i] += g * wo[i];
      }
    }
  }
  return dx;
}

std::vector<ParamView> Linear::params() {
  return {{w_, gw_}, {b_, gb_}};
}

// ------------------------------------------------------------------ ReLU

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y = x;
  for (auto& v : y.flat()) v = v > 0.0f ? v : 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  assert(grad_out.numel() == cached_input_.numel());
  Tensor dx = grad_out;
  for (std::size_t i = 0; i < dx.numel(); ++i)
    if (cached_input_[i] <= 0.0f) dx[i] = 0.0f;
  return dx;
}

// ------------------------------------------------------------------ Tanh

Tensor Tanh::forward(const Tensor& x) {
  Tensor y = x;
  for (auto& v : y.flat()) v = std::tanh(v);
  cached_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  assert(grad_out.numel() == cached_output_.numel());
  Tensor dx = grad_out;
  for (std::size_t i = 0; i < dx.numel(); ++i) {
    const float t = cached_output_[i];
    dx[i] *= (1.0f - t * t);
  }
  return dx;
}

// --------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& x) {
  cached_shape_ = x.shape();
  const std::size_t batch = x.dim(0);
  return x.reshaped({batch, x.numel() / batch});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_shape_);
}

// ------------------------------------------------------------- Embedding

Embedding::Embedding(std::size_t vocab, std::size_t dim, Rng& rng)
    : vocab_(vocab), dim_(dim), w_(vocab * dim), gw_(vocab * dim, 0.0f) {
  for (auto& v : w_) v = static_cast<float>(rng.normal(0.0, 0.1));
}

Tensor Embedding::forward(const Tensor& ids) {
  assert(ids.ndim() == 2);
  cached_batch_ = ids.dim(0);
  cached_time_ = ids.dim(1);
  cached_ids_.resize(ids.numel());
  Tensor y({cached_batch_, cached_time_, dim_});
  for (std::size_t i = 0; i < ids.numel(); ++i) {
    const int id = static_cast<int>(ids[i]);
    assert(id >= 0 && std::size_t(id) < vocab_);
    cached_ids_[i] = id;
    const float* row = w_.data() + std::size_t(id) * dim_;
    float* out = y.data() + i * dim_;
    for (std::size_t e = 0; e < dim_; ++e) out[e] = row[e];
  }
  return y;
}

Tensor Embedding::backward(const Tensor& grad_out) {
  assert(grad_out.numel() == cached_ids_.size() * dim_);
  for (std::size_t i = 0; i < cached_ids_.size(); ++i) {
    float* grow = gw_.data() + std::size_t(cached_ids_[i]) * dim_;
    const float* g = grad_out.data() + i * dim_;
    for (std::size_t e = 0; e < dim_; ++e) grow[e] += g[e];
  }
  // Token ids are discrete inputs; there is no gradient to propagate.
  return Tensor({cached_batch_, cached_time_});
}

std::vector<ParamView> Embedding::params() { return {{w_, gw_}}; }

// ---------------------------------------------------------- MeanPoolTime

Tensor MeanPoolTime::forward(const Tensor& x) {
  assert(x.ndim() == 3);
  const std::size_t batch = x.dim(0), time = x.dim(1), dim = x.dim(2);
  cached_time_ = time;
  Tensor y({batch, dim});
  for (std::size_t b = 0; b < batch; ++b) {
    float* yb = y.data() + b * dim;
    for (std::size_t t = 0; t < time; ++t) {
      const float* xt = x.data() + (b * time + t) * dim;
      for (std::size_t e = 0; e < dim; ++e) yb[e] += xt[e];
    }
    for (std::size_t e = 0; e < dim; ++e) yb[e] /= float(time);
  }
  return y;
}

Tensor MeanPoolTime::backward(const Tensor& grad_out) {
  assert(grad_out.ndim() == 2);
  const std::size_t batch = grad_out.dim(0), dim = grad_out.dim(1);
  Tensor dx({batch, cached_time_, dim});
  const float inv = 1.0f / float(cached_time_);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* gy = grad_out.data() + b * dim;
    for (std::size_t t = 0; t < cached_time_; ++t) {
      float* gx = dx.data() + (b * cached_time_ + t) * dim;
      for (std::size_t e = 0; e < dim; ++e) gx[e] = gy[e] * inv;
    }
  }
  return dx;
}

}  // namespace signguard::nn
