#include "nn/layers.h"

#include <cassert>
#include <cmath>

#include "nn/gemm.h"

namespace signguard::nn {

void Layer::zero_grad() {
  for (auto& p : params())
    for (auto& g : p.grad) g = 0.0f;
}

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in, std::size_t out, Rng& rng, double gain)
    : in_(in),
      out_(out),
      w_(in * out),
      b_(out, 0.0f),
      gw_(in * out, 0.0f),
      gb_(out, 0.0f) {
  const double bound = gain * std::sqrt(6.0 / double(in + out));
  for (auto& v : w_) v = static_cast<float>(rng.uniform(-bound, bound));
}

void Linear::forward(const Tensor& x, Tensor& y, Workspace&) {
  assert(x.ndim() == 2 && x.dim(1) == in_);
  cached_input_ = &x;
  const std::size_t batch = x.dim(0);
  y.resize({batch, out_});
  // y = x W^T, then the bias broadcast.
  gemm_nt(batch, out_, in_, x.data(), in_, w_.data(), in_, y.data(), out_,
          /*accumulate=*/false);
  add_bias_rows(y.data(), batch, out_, out_, b_.data());
}

void Linear::backward(const Tensor& grad_out, Tensor& grad_in, Workspace&) {
  assert(cached_input_ != nullptr);
  const Tensor& x = *cached_input_;
  const std::size_t batch = x.dim(0);
  assert(grad_out.ndim() == 2 && grad_out.dim(0) == batch &&
         grad_out.dim(1) == out_);
  grad_in.resize({batch, in_});
  // dx = gy W
  gemm_nn(batch, in_, out_, grad_out.data(), out_, w_.data(), in_,
          grad_in.data(), in_, /*accumulate=*/false);
  // gW += gy^T x
  gemm_tn(out_, in_, batch, grad_out.data(), out_, x.data(), in_, gw_.data(),
          in_, /*accumulate=*/true);
  // gb += column sums of gy
  add_col_sums(grad_out.data(), batch, out_, out_, gb_.data());
}

void Linear::backward_params_only(const Tensor& grad_out, Workspace&) {
  assert(cached_input_ != nullptr);
  const Tensor& x = *cached_input_;
  const std::size_t batch = x.dim(0);
  assert(grad_out.ndim() == 2 && grad_out.dim(0) == batch &&
         grad_out.dim(1) == out_);
  gemm_tn(out_, in_, batch, grad_out.data(), out_, x.data(), in_, gw_.data(),
          in_, /*accumulate=*/true);
  add_col_sums(grad_out.data(), batch, out_, out_, gb_.data());
}

std::vector<ParamView> Linear::params() {
  return {{w_, gw_}, {b_, gb_}};
}

// ------------------------------------------------------------------ ReLU

void ReLU::forward(const Tensor& x, Tensor& y, Workspace&) {
  cached_input_ = &x;
  y.resize(x.shape());
  const float* in = x.data();
  float* out = y.data();
  for (std::size_t i = 0; i < x.numel(); ++i)
    out[i] = in[i] > 0.0f ? in[i] : 0.0f;
}

void ReLU::backward(const Tensor& grad_out, Tensor& grad_in, Workspace&) {
  assert(cached_input_ != nullptr &&
         grad_out.numel() == cached_input_->numel());
  const Tensor& x = *cached_input_;
  grad_in.resize(x.shape());
  // restrict lets the compiler vectorize the select into a masked blend;
  // the three buffers are distinct by construction (input activation,
  // incoming gradient, outgoing gradient slot).
  const float* __restrict xp = x.data();
  const float* __restrict gy = grad_out.data();
  float* __restrict gx = grad_in.data();
  const std::size_t n = x.numel();
  for (std::size_t i = 0; i < n; ++i) {
    // Unconditional load keeps the select if-convertible (vector blend);
    // a load behind the branch defeats auto-vectorization.
    const float g = gy[i];
    gx[i] = xp[i] > 0.0f ? g : 0.0f;
  }
}

// ------------------------------------------------------------------ Tanh

void Tanh::forward(const Tensor& x, Tensor& y, Workspace&) {
  y.resize(x.shape());
  const float* in = x.data();
  float* out = y.data();
  for (std::size_t i = 0; i < x.numel(); ++i)
    out[i] = std::tanh(in[i]);
  cached_output_ = &y;
}

void Tanh::backward(const Tensor& grad_out, Tensor& grad_in, Workspace&) {
  assert(cached_output_ != nullptr &&
         grad_out.numel() == cached_output_->numel());
  const Tensor& yv = *cached_output_;
  grad_in.resize(yv.shape());
  const float* __restrict yp = yv.data();
  const float* __restrict gy = grad_out.data();
  float* __restrict gx = grad_in.data();
  const std::size_t n = yv.numel();
  for (std::size_t i = 0; i < n; ++i) {
    const float t = yp[i];
    gx[i] = gy[i] * (1.0f - t * t);
  }
}

// --------------------------------------------------------------- Flatten

void Flatten::forward(const Tensor& x, Tensor& y, Workspace&) {
  cached_shape_ = x.shape();
  const std::size_t batch = x.dim(0);
  y.assign_from(x);
  y.reshape_in_place({batch, x.numel() / batch});
}

void Flatten::backward(const Tensor& grad_out, Tensor& grad_in, Workspace&) {
  grad_in.assign_from(grad_out);
  grad_in.reshape_in_place(cached_shape_);
}

// ------------------------------------------------------------- Embedding

Embedding::Embedding(std::size_t vocab, std::size_t dim, Rng& rng)
    : vocab_(vocab), dim_(dim), w_(vocab * dim), gw_(vocab * dim, 0.0f) {
  for (auto& v : w_) v = static_cast<float>(rng.normal(0.0, 0.1));
}

void Embedding::forward(const Tensor& ids, Tensor& y, Workspace&) {
  assert(ids.ndim() == 2);
  cached_batch_ = ids.dim(0);
  cached_time_ = ids.dim(1);
  cached_ids_.resize(ids.numel());
  y.resize({cached_batch_, cached_time_, dim_});
  for (std::size_t i = 0; i < ids.numel(); ++i) {
    const int id = static_cast<int>(ids[i]);
    assert(id >= 0 && std::size_t(id) < vocab_);
    cached_ids_[i] = id;
    const float* row = w_.data() + std::size_t(id) * dim_;
    float* out = y.data() + i * dim_;
    for (std::size_t e = 0; e < dim_; ++e) out[e] = row[e];
  }
}

void Embedding::backward(const Tensor& grad_out, Tensor& grad_in,
                         Workspace& ws) {
  backward_params_only(grad_out, ws);
  // Token ids are discrete inputs; there is no gradient to propagate.
  grad_in.resize({cached_batch_, cached_time_});
  grad_in.zero();
}

void Embedding::backward_params_only(const Tensor& grad_out, Workspace&) {
  assert(grad_out.numel() == cached_ids_.size() * dim_);
  for (std::size_t i = 0; i < cached_ids_.size(); ++i) {
    float* grow = gw_.data() + std::size_t(cached_ids_[i]) * dim_;
    const float* g = grad_out.data() + i * dim_;
    for (std::size_t e = 0; e < dim_; ++e) grow[e] += g[e];
  }
}

std::vector<ParamView> Embedding::params() { return {{w_, gw_}}; }

// ---------------------------------------------------------- MeanPoolTime

void MeanPoolTime::forward(const Tensor& x, Tensor& y, Workspace&) {
  assert(x.ndim() == 3);
  const std::size_t batch = x.dim(0), time = x.dim(1), dim = x.dim(2);
  cached_time_ = time;
  y.resize({batch, dim});
  y.zero();
  for (std::size_t b = 0; b < batch; ++b) {
    float* yb = y.data() + b * dim;
    for (std::size_t t = 0; t < time; ++t) {
      const float* xt = x.data() + (b * time + t) * dim;
      for (std::size_t e = 0; e < dim; ++e) yb[e] += xt[e];
    }
    for (std::size_t e = 0; e < dim; ++e) yb[e] /= float(time);
  }
}

void MeanPoolTime::backward(const Tensor& grad_out, Tensor& grad_in,
                            Workspace&) {
  assert(grad_out.ndim() == 2);
  const std::size_t batch = grad_out.dim(0), dim = grad_out.dim(1);
  grad_in.resize({batch, cached_time_, dim});
  const float inv = 1.0f / float(cached_time_);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* gy = grad_out.data() + b * dim;
    for (std::size_t t = 0; t < cached_time_; ++t) {
      float* gx = grad_in.data() + (b * cached_time_ + t) * dim;
      for (std::size_t e = 0; e < dim; ++e) gx[e] = gy[e] * inv;
    }
  }
}

}  // namespace signguard::nn
