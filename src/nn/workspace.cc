#include "nn/workspace.h"

namespace signguard::nn {

Tensor& Workspace::take(std::span<const std::size_t> shape) {
  if (cursor_ == scratch_.size()) scratch_.emplace_back();
  Tensor& t = scratch_[cursor_++];
  t.resize(shape);
  return t;
}

Tensor& Workspace::activation(std::size_t i) {
  while (acts_.size() <= i) acts_.emplace_back();
  return acts_[i];
}

Tensor& Workspace::grad_buffer(std::size_t i) {
  while (grads_.size() <= i) grads_.emplace_back();
  return grads_[i];
}

std::size_t Workspace::capacity_floats() const {
  std::size_t total = 0;
  for (const auto& t : scratch_) total += t.capacity();
  for (const auto& t : acts_) total += t.capacity();
  for (const auto& t : grads_) total += t.capacity();
  return total;
}

}  // namespace signguard::nn
