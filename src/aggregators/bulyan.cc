#include <algorithm>
#include <limits>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/gradient_stats.h"
#include "common/quantiles.h"
#include "common/vecops.h"
#include "obs/trace.h"

namespace signguard::agg {

std::vector<float> BulyanAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext& ctx) {
  check_grads(grads);
  const std::size_t n = grads.rows();
  obs::Span span("agg/bulyan", std::int64_t(n));
  const std::size_t m = std::min(ctx.assumed_byzantine, (n - 1) / 2);

  // Phase 1: iterative Krum. Repeatedly pick the gradient with the lowest
  // Krum score among the remaining set and move it to the selection set,
  // until theta = n - 2m gradients are selected. One packed pairwise
  // block is computed up front (Gram GEMM or direct loops) and reused
  // across every iteration; removals only flip the exclusion mask.
  const std::size_t theta = std::max<std::size_t>(1, n - 2 * m);
  const PairwiseDistances pd(grads);
  std::vector<char> excluded(n, 0);
  std::size_t remaining = n;
  selected_.clear();
  std::vector<double> row;
  while (selected_.size() < theta && remaining > 0) {
    // Krum neighborhood within the remaining set.
    const std::size_t k =
        std::max<std::size_t>(1, remaining > m + 2 ? remaining - m - 2 : 1);
    double best_score = std::numeric_limits<double>::max();
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (excluded[i]) continue;
      const double score = pd.krum_score(i, k, excluded, row);
      if (score < best_score) {
        best_score = score;
        best = i;
      }
    }
    selected_.push_back(best);
    excluded[best] = 1;
    --remaining;
  }

  // Phase 2: per coordinate, average the beta = theta - 2m selected values
  // closest to the coordinate median. The selected rows are transposed
  // tile-by-tile into contiguous column panels (vec::for_each_column), so
  // the selection statistic never walks the matrix at stride d.
  obs::count(obs::Stage::kFilter, obs::Counter::kFilterAdmits,
             selected_.size());
  obs::count(obs::Stage::kFilter, obs::Counter::kFilterRejects,
             n - selected_.size());
  const std::size_t beta =
      std::max<std::size_t>(1, theta > 2 * m ? theta - 2 * m : 1);
  std::vector<float> out(grads.cols());
  thread_local std::vector<double> column;
  vec::for_each_column(
      grads, selected_, [&](std::size_t j, std::span<float> col) {
        column.assign(col.begin(), col.end());
        out[j] = static_cast<float>(stats::mean_around_median(column, beta));
      });
  return out;
}

}  // namespace signguard::agg
