#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/gradient_stats.h"
#include "common/parallel.h"
#include "common/quantiles.h"

namespace signguard::agg {

std::vector<float> BulyanAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext& ctx) {
  check_grads(grads);
  const std::size_t n = grads.rows();
  const std::size_t d = grads.cols();
  const std::size_t m = std::min(ctx.assumed_byzantine, (n - 1) / 2);

  // Phase 1: iterative Krum. Repeatedly pick the gradient with the lowest
  // Krum score among the remaining set and move it to the selection set,
  // until theta = n - 2m gradients are selected. The pairwise block is
  // threaded; the selection loop is cheap (distances are precomputed).
  const std::size_t theta = std::max<std::size_t>(1, n - 2 * m);
  const PairwiseDistances pd(grads);
  std::vector<std::size_t> remaining(n);
  std::iota(remaining.begin(), remaining.end(), 0);
  selected_.clear();
  std::vector<double> row;
  while (selected_.size() < theta && !remaining.empty()) {
    const std::size_t r = remaining.size();
    // Krum neighborhood within the remaining set.
    const std::size_t k =
        std::max<std::size_t>(1, r > m + 2 ? r - m - 2 : 1);
    double best_score = std::numeric_limits<double>::max();
    std::size_t best_pos = 0;
    for (std::size_t a = 0; a < r; ++a) {
      row.clear();
      for (std::size_t b = 0; b < r; ++b)
        if (b != a) row.push_back(pd.dist2(remaining[a], remaining[b]));
      const std::size_t kk = std::min(k, row.size());
      if (kk > 0)
        std::partial_sort(row.begin(), row.begin() + std::ptrdiff_t(kk),
                          row.end());
      const double score = std::accumulate(
          row.begin(), row.begin() + std::ptrdiff_t(kk), 0.0);
      if (score < best_score) {
        best_score = score;
        best_pos = a;
      }
    }
    selected_.push_back(remaining[best_pos]);
    remaining.erase(remaining.begin() + std::ptrdiff_t(best_pos));
  }

  // Phase 2: per coordinate, average the beta = theta - 2m selected values
  // closest to the coordinate median — parallel over coordinate ranges
  // with a per-chunk column buffer.
  const std::size_t beta =
      std::max<std::size_t>(1, theta > 2 * m ? theta - 2 * m : 1);
  std::vector<float> out(d);
  common::parallel_chunks(
      d, [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<double> column(selected_.size());
        for (std::size_t j = begin; j < end; ++j) {
          for (std::size_t i = 0; i < selected_.size(); ++i)
            column[i] = double(grads.at(selected_[i], j));
          out[j] = static_cast<float>(stats::mean_around_median(column, beta));
        }
      });
  return out;
}

}  // namespace signguard::agg
