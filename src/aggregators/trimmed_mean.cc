#include <algorithm>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/parallel.h"

namespace signguard::agg {

std::vector<float> TrimmedMeanAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext& ctx) {
  check_grads(grads);
  const std::size_t n = grads.rows();
  const std::size_t d = grads.cols();
  // Trim m from each side but always keep at least one value.
  const std::size_t trim =
      std::min(ctx.assumed_byzantine, (n - 1) / 2);
  std::vector<float> out(d);
  common::parallel_chunks(
      d, [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<float> column(n);
        for (std::size_t j = begin; j < end; ++j) {
          for (std::size_t i = 0; i < n; ++i) column[i] = grads.at(i, j);
          std::sort(column.begin(), column.end());
          double acc = 0.0;
          for (std::size_t i = trim; i < n - trim; ++i) acc += column[i];
          out[j] = static_cast<float>(acc / double(n - 2 * trim));
        }
      });
  return out;
}

}  // namespace signguard::agg
