#include <algorithm>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"

namespace signguard::agg {

std::vector<float> TrimmedMeanAggregator::aggregate(
    std::span<const std::vector<float>> grads, const GarContext& ctx) {
  check_grads(grads);
  const std::size_t n = grads.size();
  const std::size_t d = grads.front().size();
  // Trim m from each side but always keep at least one value.
  const std::size_t trim =
      std::min(ctx.assumed_byzantine, (n - 1) / 2);
  std::vector<float> out(d);
  std::vector<float> column(n);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = grads[i][j];
    std::sort(column.begin(), column.end());
    double acc = 0.0;
    for (std::size_t i = trim; i < n - trim; ++i) acc += column[i];
    out[j] = static_cast<float>(acc / double(n - 2 * trim));
  }
  return out;
}

}  // namespace signguard::agg
