#include <algorithm>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/vecops.h"
#include "obs/trace.h"

namespace signguard::agg {

std::vector<float> TrimmedMeanAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext& ctx) {
  check_grads(grads);
  const std::size_t n = grads.rows();
  obs::Span span("agg/trimmed-mean", std::int64_t(n));
  // Trim m from each side but always keep at least one value.
  const std::size_t trim =
      std::min(ctx.assumed_byzantine, (n - 1) / 2);
  std::vector<float> out(grads.cols());
  // Column-panel sweep over contiguous columns (vec::for_each_column),
  // with selection instead of a full sort: two nth_element cuts isolate
  // the middle ranks, and only that kept segment is sorted so the
  // accumulation still runs in ascending value order — the same partial
  // sums, bit for bit, as sorting the whole column.
  vec::for_each_column(grads, {}, [&](std::size_t j, std::span<float> col) {
    const auto keep_begin = col.begin() + std::ptrdiff_t(trim);
    const auto keep_end = col.begin() + std::ptrdiff_t(n - trim);
    if (trim > 0) {
      std::nth_element(col.begin(), keep_begin, col.end());
      std::nth_element(keep_begin, keep_end - 1, col.end());
    }
    std::sort(keep_begin, keep_end);
    double acc = 0.0;
    for (auto it = keep_begin; it != keep_end; ++it) acc += *it;
    out[j] = static_cast<float>(acc / double(n - 2 * trim));
  });
  return out;
}

}  // namespace signguard::agg
