#include <algorithm>
#include <cmath>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/parallel.h"
#include "common/vecops.h"

namespace signguard::agg {

std::vector<float> GeoMedAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext&) {
  check_grads(grads);
  const std::size_t n = grads.rows();
  const std::size_t d = grads.cols();
  // Weiszfeld: x <- sum_i(g_i / ||g_i - x||) / sum_i(1 / ||g_i - x||),
  // starting from the arithmetic mean. Per iteration, the n distances to
  // x fan out over rows and the weighted column accumulation over
  // coordinate ranges. The convergence statistic is reduced sequentially
  // from per-coordinate deltas so the stopping decision (and thus the
  // result) is identical for any thread count.
  std::vector<float> x = vec::mean_of(grads);
  std::vector<double> w(n);
  std::vector<double> delta2(d);
  for (std::size_t iter = 0; iter < max_iters_; ++iter) {
    common::parallel_for(n, [&](std::size_t i) {
      w[i] = 1.0 / std::max(vec::dist(grads.row(i), x), eps_);
    });
    double denom = 0.0;
    for (const double wi : w) denom += wi;
    common::parallel_chunks(
        d, [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t j = begin; j < end; ++j) {
            double numer = 0.0;
            for (std::size_t i = 0; i < n; ++i)
              numer += w[i] * double(grads.at(i, j));
            const double nx = numer / denom;
            const double delta = nx - double(x[j]);
            delta2[j] = delta * delta;
            x[j] = static_cast<float>(nx);
          }
        });
    double movement = 0.0;
    for (const double dv : delta2) movement += dv;
    if (movement < eps_) break;
  }
  return x;
}

}  // namespace signguard::agg
