#include <cmath>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/vecops.h"

namespace signguard::agg {

std::vector<float> GeoMedAggregator::aggregate(
    std::span<const std::vector<float>> grads, const GarContext&) {
  check_grads(grads);
  const std::size_t d = grads.front().size();
  // Weiszfeld: x <- sum_i(g_i / ||g_i - x||) / sum_i(1 / ||g_i - x||),
  // starting from the arithmetic mean.
  std::vector<float> x = vec::mean_of(grads);
  std::vector<double> numer(d);
  for (std::size_t iter = 0; iter < max_iters_; ++iter) {
    std::fill(numer.begin(), numer.end(), 0.0);
    double denom = 0.0;
    for (const auto& g : grads) {
      const double dist = std::max(vec::dist(g, x), eps_);
      const double w = 1.0 / dist;
      denom += w;
      for (std::size_t j = 0; j < d; ++j) numer[j] += w * double(g[j]);
    }
    double movement = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double nx = numer[j] / denom;
      const double delta = nx - double(x[j]);
      movement += delta * delta;
      x[j] = static_cast<float>(nx);
    }
    if (movement < eps_) break;
  }
  return x;
}

}  // namespace signguard::agg
