#include <algorithm>
#include <cmath>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/parallel.h"
#include "common/vecops.h"
#include "obs/trace.h"

namespace signguard::agg {

std::vector<float> GeoMedAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext&) {
  check_grads(grads);
  const std::size_t n = grads.rows();
  obs::Span span("agg/geomed", std::int64_t(n));
  const std::size_t d = grads.cols();
  // Weiszfeld: x <- sum_i(g_i / ||g_i - x||) / sum_i(1 / ||g_i - x||),
  // starting from the arithmetic mean. Per iteration, the n distances to
  // x fan out over rows and the weighted accumulation runs as row-major
  // w[i] * row(i) axpy passes over small coordinate tiles — each row
  // segment is read sequentially and the tile accumulator stays cache
  // resident, instead of the per-coordinate stride-d walk. Per
  // coordinate the accumulation order over rows is unchanged, so the
  // iterates (and the sequentially reduced stopping statistic) are
  // bit-identical to the untiled sweep for any thread count.
  std::vector<float> x = vec::mean_of(grads);
  std::vector<double> w(n);
  std::vector<double> delta2(d);
  constexpr std::size_t kTile = vec::kAccumulatorTile;
  for (std::size_t iter = 0; iter < max_iters_; ++iter) {
    common::parallel_for(n, [&](std::size_t i) {
      w[i] = 1.0 / std::max(vec::dist(grads.row(i), x), eps_);
    });
    double denom = 0.0;
    for (const double wi : w) denom += wi;
    common::parallel_chunks(
        d, [&](std::size_t begin, std::size_t end, std::size_t) {
          std::vector<double> acc(std::min(kTile, end - begin));
          for (std::size_t t0 = begin; t0 < end; t0 += kTile) {
            const std::size_t t1 = std::min(end, t0 + kTile);
            std::fill(acc.begin(), acc.begin() + std::ptrdiff_t(t1 - t0),
                      0.0);
            for (std::size_t i = 0; i < n; ++i) {
              const auto row = grads.row(i);
              for (std::size_t j = t0; j < t1; ++j)
                acc[j - t0] += w[i] * double(row[j]);
            }
            for (std::size_t j = t0; j < t1; ++j) {
              const double nx = acc[j - t0] / denom;
              const double delta = nx - double(x[j]);
              delta2[j] = delta * delta;
              x[j] = static_cast<float>(nx);
            }
          }
        });
    double movement = 0.0;
    for (const double dv : delta2) movement += dv;
    if (movement < eps_) break;
  }
  return x;
}

}  // namespace signguard::agg
