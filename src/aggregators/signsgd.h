#pragma once
// signSGD with majority vote (Bernstein et al., ICML'18) — the sign-based
// aggregation family the paper cites as motivation (§I-II: "even if PS
// only collects the sign of gradient, the model training can still
// converge ... and keep the training process fault-tolerant"). Included as
// a library-level comparison point; the paper itself does not put it in
// Table I.
//
// Output_j = step * majority_sign({sign(g_i_j)}). The `step` magnitude
// plays the role of the signSGD learning-rate unit; with the trainer's
// global learning rate eta the effective per-coordinate step is
// eta * step.

#include "aggregators/aggregator.h"

namespace signguard::agg {

class SignSgdMajorityAggregator : public Aggregator {
 public:
  explicit SignSgdMajorityAggregator(double step = 1.0) : step_(step) {}

  using Aggregator::aggregate;
  std::vector<float> aggregate(const common::GradientMatrix& grads,
                               const GarContext& ctx) override;
  std::string name() const override { return "SignSGD"; }

 private:
  double step_;
};

}  // namespace signguard::agg
