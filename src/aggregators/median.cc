#include <algorithm>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/vecops.h"
#include "obs/trace.h"

namespace signguard::agg {

std::vector<float> MedianAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext&) {
  check_grads(grads);
  const std::size_t n = grads.rows();
  obs::Span span("agg/median", std::int64_t(n));
  std::vector<float> out(grads.cols());
  const std::size_t mid = n / 2;
  // Column-panel sweep: fixed-width column tiles are transposed once into
  // a contiguous per-worker panel (vec::for_each_column), then each
  // column is an in-place nth_element over contiguous floats — no
  // per-coordinate stride-d gather. The column holds the same values in
  // the same row order as the old per-coordinate copy, so the selected
  // median is bitwise unchanged.
  vec::for_each_column(grads, {}, [&](std::size_t j, std::span<float> col) {
    std::nth_element(col.begin(), col.begin() + std::ptrdiff_t(mid),
                     col.end());
    if (n % 2 == 1) {
      out[j] = col[mid];
    } else {
      const float lo =
          *std::max_element(col.begin(), col.begin() + std::ptrdiff_t(mid));
      out[j] = 0.5f * (lo + col[mid]);
    }
  });
  return out;
}

}  // namespace signguard::agg
