#include <algorithm>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"

namespace signguard::agg {

std::vector<float> MedianAggregator::aggregate(
    std::span<const std::vector<float>> grads, const GarContext&) {
  check_grads(grads);
  const std::size_t n = grads.size();
  const std::size_t d = grads.front().size();
  std::vector<float> out(d);
  std::vector<float> column(n);
  const std::size_t mid = n / 2;
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < n; ++i) column[i] = grads[i][j];
    std::nth_element(column.begin(), column.begin() + mid, column.end());
    if (n % 2 == 1) {
      out[j] = column[mid];
    } else {
      const float lo =
          *std::max_element(column.begin(), column.begin() + mid);
      out[j] = 0.5f * (lo + column[mid]);
    }
  }
  return out;
}

}  // namespace signguard::agg
