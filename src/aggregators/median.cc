#include <algorithm>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/parallel.h"

namespace signguard::agg {

std::vector<float> MedianAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext&) {
  check_grads(grads);
  const std::size_t n = grads.rows();
  const std::size_t d = grads.cols();
  std::vector<float> out(d);
  const std::size_t mid = n / 2;
  // Coordinate-parallel: each chunk owns a column buffer and a disjoint
  // coordinate range, so results match the sequential scan exactly.
  common::parallel_chunks(
      d, [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<float> column(n);
        for (std::size_t j = begin; j < end; ++j) {
          for (std::size_t i = 0; i < n; ++i) column[i] = grads.at(i, j);
          std::nth_element(column.begin(), column.begin() + mid,
                           column.end());
          if (n % 2 == 1) {
            out[j] = column[mid];
          } else {
            const float lo =
                *std::max_element(column.begin(), column.begin() + mid);
            out[j] = 0.5f * (lo + column[mid]);
          }
        }
      });
  return out;
}

}  // namespace signguard::agg
