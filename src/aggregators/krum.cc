#include <algorithm>
#include <limits>
#include <numeric>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/gradient_stats.h"
#include "common/parallel.h"
#include "common/vecops.h"

namespace signguard::agg {

std::vector<float> MultiKrumAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext& ctx) {
  check_grads(grads);
  const std::size_t n = grads.rows();
  const std::size_t m = std::min(ctx.assumed_byzantine, (n - 1) / 2);
  // Krum's neighborhood size; at least 1 so tiny test fixtures work.
  const std::size_t k =
      std::max<std::size_t>(1, n > m + 2 ? n - m - 2 : 1);

  // The O(n^2 d) pairwise block fans out over pairs; the O(n^2 log n)
  // score selection fans out over rows.
  const PairwiseDistances pd(grads);
  std::vector<double> scores(n, 0.0);
  common::parallel_chunks(
      n, [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<double> row;  // one scratch buffer per chunk
        for (std::size_t i = begin; i < end; ++i) {
          row.clear();
          for (std::size_t j = 0; j < n; ++j)
            if (j != i) row.push_back(pd.dist2(i, j));
          const std::size_t kk = std::min(k, row.size());
          std::partial_sort(row.begin(), row.begin() + std::ptrdiff_t(kk),
                            row.end());
          scores[i] = std::accumulate(
              row.begin(), row.begin() + std::ptrdiff_t(kk), 0.0);
        }
      });

  // Select the k best-scored gradients and average them.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  const std::size_t select = std::min(k, n);
  selected_.assign(order.begin(), order.begin() + std::ptrdiff_t(select));
  return vec::mean_of_subset(grads, selected_);
}

}  // namespace signguard::agg
