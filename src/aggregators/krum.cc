#include <algorithm>
#include <limits>
#include <numeric>

#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/gradient_stats.h"
#include "common/parallel.h"
#include "common/vecops.h"
#include "obs/trace.h"

namespace signguard::agg {

std::vector<float> MultiKrumAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext& ctx) {
  check_grads(grads);
  const std::size_t n = grads.rows();
  obs::Span span("agg/multi-krum", std::int64_t(n));
  const std::size_t m = std::min(ctx.assumed_byzantine, (n - 1) / 2);
  // Krum's neighborhood size; at least 1 so tiny test fixtures work.
  const std::size_t k =
      std::max<std::size_t>(1, n > m + 2 ? n - m - 2 : 1);

  // The O(n^2 d) pairwise block runs as one Gram GEMM (or the direct
  // pair loops under SIGNGUARD_DIST=direct); the O(n^2 log n) score
  // selection fans out over rows.
  const PairwiseDistances pd(grads);
  std::vector<double> scores(n, 0.0);
  common::parallel_chunks(
      n, [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<double> row;  // one scratch buffer per chunk
        for (std::size_t i = begin; i < end; ++i)
          scores[i] = pd.krum_score(i, k, {}, row);
      });

  // Select the k best-scored gradients and average them. Only the top k
  // need ordering, so partial_sort the index array instead of fully
  // sorting all n scores; ties break on the lower index, which both a
  // full sort and the partial sort resolve identically.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const std::size_t select = std::min(k, n);
  const auto by_score = [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b] || (scores[a] == scores[b] && a < b);
  };
  std::partial_sort(order.begin(), order.begin() + std::ptrdiff_t(select),
                    order.end(), by_score);
  selected_.assign(order.begin(), order.begin() + std::ptrdiff_t(select));
  obs::count(obs::Stage::kFilter, obs::Counter::kFilterAdmits,
             selected_.size());
  obs::count(obs::Stage::kFilter, obs::Counter::kFilterRejects,
             n - selected_.size());
  return vec::mean_of_subset(grads, selected_);
}

}  // namespace signguard::agg
