#pragma once
// Gradient aggregation rule (GAR) interface — Eq. (11): the server turns
// the n received gradients into one global gradient. Robust baselines from
// the paper's comparison set live in this module; the SignGuard family
// lives in src/core and implements the same interface.
//
// Per the paper's experimental note, baseline defenses are "favored" by
// being told the true Byzantine count (ctx.assumed_byzantine); SignGuard
// deliberately ignores it.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace signguard::agg {

struct GarContext {
  std::size_t assumed_byzantine = 0;  // m given to fraction-aware baselines
  std::size_t round = 0;
  Rng* rng = nullptr;                 // for randomized rules
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  // Preconditions: grads non-empty, all the same dimension.
  virtual std::vector<float> aggregate(
      std::span<const std::vector<float>> grads, const GarContext& ctx) = 0;

  virtual std::string name() const = 0;

  // Client indices that contributed to the last aggregate, for rules that
  // perform explicit selection (Krum/Bulyan/DnC/SignGuard). Empty for
  // coordinate-wise rules where "selection" has no single meaning.
  virtual std::vector<std::size_t> last_selected() const { return {}; }
};

}  // namespace signguard::agg
