#pragma once
// Gradient aggregation rule (GAR) interface — Eq. (11): the server turns
// the n received gradients into one global gradient. Robust baselines from
// the paper's comparison set live in this module; the SignGuard family
// lives in src/core and implements the same interface.
//
// The primary entry point takes a flat common::GradientMatrix (one
// contiguous n x d buffer, one row per client); every rule implements it
// and the matrix kernels it uses run on the shared thread pool. The
// legacy vector-of-vectors overload remains as a thin non-virtual adapter
// (single copy into a matrix) so older call sites and tests keep working.
// Derived classes pull it back into scope with `using
// Aggregator::aggregate;`.
//
// Per the paper's experimental note, baseline defenses are "favored" by
// being told the true Byzantine count (ctx.assumed_byzantine); SignGuard
// deliberately ignores it.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/gradient_matrix.h"
#include "common/rng.h"
#include "common/serial.h"

namespace signguard::agg {

struct GarContext {
  std::size_t assumed_byzantine = 0;  // m given to fraction-aware baselines
  std::size_t round = 0;
  Rng* rng = nullptr;                 // for randomized rules
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  // Primary entry point. Throws std::invalid_argument on an empty
  // gradient set (check_grads — typed in every build mode, never UB).
  virtual std::vector<float> aggregate(const common::GradientMatrix& grads,
                                       const GarContext& ctx) = 0;

  // Legacy adapter: copies the rows into a GradientMatrix and forwards.
  // Throws std::invalid_argument when grads is empty or the rows have
  // inconsistent dimensions.
  std::vector<float> aggregate(std::span<const std::vector<float>> grads,
                               const GarContext& ctx);

  virtual std::string name() const = 0;

  // Client indices that contributed to the last aggregate, for rules that
  // perform explicit selection (Krum/Bulyan/DnC/SignGuard). Empty for
  // coordinate-wise rules where "selection" has no single meaning.
  virtual std::vector<std::size_t> last_selected() const { return {}; }

  // Whether last_selected() is meaningful for this rule. The quorum
  // degradation policy (fl/chaos.h) only applies its min-survivors check
  // to rules that actually report a trusted set — for a coordinate-wise
  // rule an empty selection means "everyone", not "nobody".
  virtual bool reports_selection() const { return false; }

  // Cross-round state snapshot/restore for crash-consistent checkpoints
  // (fl/checkpoint.h). Rules whose aggregate depends only on (inputs,
  // ctx.rng) keep the empty default; stateful rules (SignGuard's
  // previous-aggregate reference and internal Rng, sharded trees'
  // per-shard instances) serialize everything a resumed run needs to
  // reproduce the interrupted run bitwise.
  virtual void serialize_state(common::ByteWriter& /*w*/) const {}
  virtual void restore_state(common::ByteReader& /*r*/) {}
};

}  // namespace signguard::agg
