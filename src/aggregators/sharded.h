#pragma once
// Hierarchical (sharded) aggregation: partition the round's n gradients
// into S shards, run one instance of the configured rule per shard on its
// slice alone, and robustly merge the S shard aggregates at the root.
// The expensive O(n^2 d) rules then only ever see n/S rows — Multi-Krum
// at n = 65536 is a 256x smaller pairwise block per shard — at the cost
// of a bounded robustness change (Zhu et al., PAPERS.md: bucketed robust
// aggregation preserves the guarantees when each shard's Byzantine
// fraction stays below 1/2, which the proportional per-shard budget
// below targets).
//
// Determinism contract (matches the sweep engine's lane discipline):
// shard assignment is one Fisher-Yates shuffle drawn from the caller's
// GarContext rng — the scenario stream — followed by balanced contiguous
// slices with ids sorted ascending inside each shard; shards are
// processed in canonical order 0..S-1 (the inner kernels fan out over
// the pool, the tree level does not), and every per-shard random rule
// draws from its own Rng::stream child. The aggregate is therefore
// bitwise identical for any SIGNGUARD_THREADS and independent of shard
// scheduling; the shard *count* is a declared scenario axis, like the
// codec.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aggregators/aggregator.h"
#include "aggregators/baselines.h"
#include "common/shard_stats.h"

namespace signguard::agg {

// Root merge rule over the shard aggregates.
enum class ShardMerge {
  kWeightedMean,   // survivor-count-weighted mean of shard aggregates
  kMedianOfMeans,  // coordinate-wise median of shard aggregates
};

const char* to_string(ShardMerge m);
// "wmean" / "momed"; throws std::invalid_argument on anything else.
ShardMerge shard_merge_from_name(const std::string& name);

struct ShardedConfig {
  std::size_t shards = 1;  // <= 1 (or >= n falling back to n) shards
  ShardMerge merge = ShardMerge::kWeightedMean;
  // When set, every aggregate() call also folds the round's mergeable
  // statistics (sign counts, squared-norm sums) into last_partial() —
  // one extra O(n d) pass, off by default.
  bool collect_stats = false;
};

class ShardedAggregator : public Aggregator {
 public:
  // Builds one inner rule per shard on demand; shard s gets the seed
  // splitmix64(seed ^ s) so randomized rules stay decorrelated. The
  // instances persist across rounds (stateful rules like SignGuard keep
  // per-shard history).
  using InnerFactory =
      std::function<std::unique_ptr<Aggregator>(std::uint64_t seed)>;

  ShardedAggregator(InnerFactory factory, std::uint64_t seed,
                    ShardedConfig cfg);

  using Aggregator::aggregate;
  // Throws std::invalid_argument when grads is empty, or when S > 1 and
  // ctx.rng is null (the shard assignment has nowhere to draw from).
  // Each shard's context scales the Byzantine budget proportionally:
  // m_s = min(round(m * |shard| / n), (|shard| - 1) / 2).
  std::vector<float> aggregate(const common::GradientMatrix& grads,
                               const GarContext& ctx) override;

  std::string name() const override;

  // Union of the shards' trusted sets mapped back to global client
  // indices, sorted ascending. Empty when the inner rule reports no
  // selection (coordinate-wise rules).
  std::vector<std::size_t> last_selected() const override {
    return selected_;
  }
  // The tree reports a selection exactly when its inner rule does.
  bool reports_selection() const override {
    return rules_.front()->reports_selection();
  }

  // Checkpoints: the tree's own state is the per-shard inner instances
  // (stateful rules keep per-shard history); each built instance's blob
  // is serialized in shard order. On restore the same instances are
  // rebuilt deterministically from the factory and refilled.
  void serialize_state(common::ByteWriter& w) const override;
  void restore_state(common::ByteReader& r) override;

  // Per-shard accounting for RoundObservation: shard count, sizes and
  // survivor counts in canonical shard order. A shard whose rule reports
  // no selection counts every member as a survivor.
  std::size_t last_shards() const { return shard_sizes_.size(); }
  const std::vector<std::size_t>& last_shard_sizes() const {
    return shard_sizes_;
  }
  const std::vector<std::size_t>& last_shard_survivors() const {
    return shard_survivors_;
  }
  // Merged round statistics; only populated when cfg.collect_stats.
  const common::ShardPartial& last_partial() const { return partial_; }

 private:
  Aggregator& shard_rule(std::size_t s);

  InnerFactory factory_;
  std::uint64_t seed_;
  ShardedConfig cfg_;
  std::vector<std::unique_ptr<Aggregator>> rules_;
  MedianAggregator median_;  // kMedianOfMeans root rule

  std::vector<std::size_t> selected_;
  std::vector<std::size_t> shard_sizes_;
  std::vector<std::size_t> shard_survivors_;
  common::ShardPartial partial_;
  common::GradientMatrix shard_mat_;   // gathered shard rows (reused)
  common::GradientMatrix shard_aggs_;  // S x d shard outputs (reused)
};

}  // namespace signguard::agg
