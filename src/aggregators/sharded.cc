#include "aggregators/sharded.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "aggregators/internal.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "obs/trace.h"

namespace signguard::agg {

const char* to_string(ShardMerge m) {
  switch (m) {
    case ShardMerge::kWeightedMean:
      return "wmean";
    case ShardMerge::kMedianOfMeans:
      return "momed";
  }
  return "?";
}

ShardMerge shard_merge_from_name(const std::string& name) {
  if (name == "wmean") return ShardMerge::kWeightedMean;
  if (name == "momed") return ShardMerge::kMedianOfMeans;
  throw std::invalid_argument("unknown shard merge rule: " + name);
}

ShardedAggregator::ShardedAggregator(InnerFactory factory,
                                     std::uint64_t seed, ShardedConfig cfg)
    : factory_(std::move(factory)), seed_(seed), cfg_(cfg) {
  if (!factory_)
    throw std::invalid_argument("ShardedAggregator: null inner factory");
  shard_rule(0);  // eager so name() works before the first round
}

Aggregator& ShardedAggregator::shard_rule(std::size_t s) {
  while (rules_.size() <= s)
    rules_.push_back(
        factory_(common::splitmix64(seed_ ^ std::uint64_t(rules_.size()))));
  return *rules_[s];
}

void ShardedAggregator::serialize_state(common::ByteWriter& w) const {
  w.u64(rules_.size());
  for (const auto& rule : rules_) {
    common::ByteWriter inner;
    rule->serialize_state(inner);
    w.str(inner.bytes());
  }
}

void ShardedAggregator::restore_state(common::ByteReader& r) {
  const std::uint64_t count = r.u64();
  for (std::uint64_t s = 0; s < count; ++s) {
    const std::string blob = r.str();
    common::ByteReader inner(blob);
    shard_rule(s).restore_state(inner);
  }
}

std::string ShardedAggregator::name() const {
  return "Sharded(" + rules_.front()->name() + " x" +
         std::to_string(cfg_.shards) + ", " + to_string(cfg_.merge) + ")";
}

std::vector<float> ShardedAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext& ctx) {
  check_grads(grads);
  const std::size_t n = grads.rows();
  const std::size_t d = grads.cols();
  const std::size_t S = std::min(std::max<std::size_t>(cfg_.shards, 1), n);
  obs::Span span("agg/sharded", std::int64_t(n));

  partial_ = common::ShardPartial{};
  if (cfg_.collect_stats) accumulate_stats(partial_, grads, {});

  if (S <= 1) {
    // Flat fallback: delegate with the caller's context untouched — no
    // assignment shuffle, no extra RNG draws — so a shard count of 1 is
    // bitwise the inner rule (the golden-trace guarantee).
    auto& rule = shard_rule(0);
    auto out = rule.aggregate(grads, ctx);
    selected_ = rule.last_selected();
    shard_sizes_.assign(1, n);
    shard_survivors_.assign(1, selected_.empty() ? n : selected_.size());
    partial_.survivors += shard_survivors_[0];
    obs::count(obs::Stage::kMerge, obs::Counter::kShardSurvivors,
               shard_survivors_[0]);
    return out;
  }
  if (ctx.rng == nullptr)
    throw std::invalid_argument(
        "ShardedAggregator: ctx.rng is required for shard assignment");

  // Canonical assignment: one shuffle on the calling thread, balanced
  // contiguous slices (the first n % S shards get the extra row), ids
  // sorted ascending within each shard.
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  ctx.rng->shuffle(perm);
  const std::uint64_t shard_root = ctx.rng->engine()();

  shard_sizes_.assign(S, 0);
  shard_survivors_.assign(S, 0);
  selected_.clear();
  shard_aggs_.resize(S, d);

  const std::size_t base = n / S;
  const std::size_t extra = n % S;
  std::size_t begin = 0;
  std::vector<std::size_t> ids;
  for (std::size_t s = 0; s < S; ++s) {
    const std::size_t size_s = base + (s < extra ? 1 : 0);
    ids.assign(perm.begin() + std::ptrdiff_t(begin),
               perm.begin() + std::ptrdiff_t(begin + size_s));
    begin += size_s;
    std::sort(ids.begin(), ids.end());
    shard_sizes_[s] = size_s;

    shard_mat_.resize(size_s, d);
    common::parallel_for(size_s, [&](std::size_t i) {
      const auto src = grads.row(ids[i]);
      std::copy(src.begin(), src.end(), shard_mat_.row(i).begin());
    });

    // Proportional Byzantine budget with the baselines' usual clamp.
    std::size_t ms = std::size_t(std::llround(
        double(ctx.assumed_byzantine) * double(size_s) / double(n)));
    ms = std::min(ms, (size_s - 1) / 2);

    obs::Span shard_span("agg/shard", std::int64_t(s));
    Rng shard_rng = Rng::stream(shard_root, s);
    GarContext sctx;
    sctx.assumed_byzantine = ms;
    sctx.round = ctx.round;
    sctx.rng = &shard_rng;

    auto& rule = shard_rule(s);
    const auto out = rule.aggregate(shard_mat_, sctx);
    std::copy(out.begin(), out.end(), shard_aggs_.row(s).begin());

    const auto local = rule.last_selected();
    shard_survivors_[s] = local.empty() ? size_s : local.size();
    partial_.survivors += shard_survivors_[s];
    obs::count(obs::Stage::kMerge, obs::Counter::kShardSurvivors,
               shard_survivors_[s]);
    for (const std::size_t i : local) selected_.push_back(ids[i]);
  }
  std::sort(selected_.begin(), selected_.end());

  obs::StageScope merge_stage(obs::Stage::kMerge, "agg/shard-merge",
                              std::int64_t(S));
  if (cfg_.merge == ShardMerge::kMedianOfMeans) {
    GarContext mctx;  // coordinate-wise median ignores the context
    return median_.aggregate(shard_aggs_, mctx);
  }
  // Survivor-weighted mean of the shard aggregates, accumulated in shard
  // order through the mergeable-partial machinery. A shard that admitted
  // nobody still reports size_s survivors above (non-selecting rules)
  // or a positive count, so the total weight is always > 0 here.
  common::ShardPartial root;
  for (std::size_t s = 0; s < S; ++s)
    accumulate_row(root, shard_aggs_.row(s), double(shard_survivors_[s]));
  return finalize_mean(root);
}

}  // namespace signguard::agg
