#pragma once
// Internal helpers shared between the GAR implementations.

#include <span>
#include <vector>

#include "common/gradient_matrix.h"

namespace signguard::agg {

void check_grads(std::span<const std::vector<float>> grads);
void check_grads(const common::GradientMatrix& grads);

}  // namespace signguard::agg
