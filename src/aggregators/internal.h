#pragma once
// Internal helpers shared between the GAR implementations.

#include <span>
#include <vector>

namespace signguard::agg {

void check_grads(std::span<const std::vector<float>> grads);

}  // namespace signguard::agg
