#include "aggregators/signsgd.h"

#include "aggregators/internal.h"

namespace signguard::agg {

std::vector<float> SignSgdMajorityAggregator::aggregate(
    std::span<const std::vector<float>> grads, const GarContext&) {
  check_grads(grads);
  const std::size_t n = grads.size();
  const std::size_t d = grads.front().size();
  std::vector<float> out(d);
  for (std::size_t j = 0; j < d; ++j) {
    // Majority vote over {-1, 0, +1}; ties (vote == 0) emit 0.
    long vote = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const float v = grads[i][j];
      vote += v > 0.0f ? 1 : (v < 0.0f ? -1 : 0);
    }
    out[j] = static_cast<float>(
        step_ * (vote > 0 ? 1.0 : (vote < 0 ? -1.0 : 0.0)));
  }
  return out;
}

}  // namespace signguard::agg
