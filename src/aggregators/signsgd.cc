#include "aggregators/signsgd.h"

#include "aggregators/internal.h"
#include "common/parallel.h"
#include "obs/trace.h"

namespace signguard::agg {

std::vector<float> SignSgdMajorityAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext&) {
  check_grads(grads);
  const std::size_t n = grads.rows();
  obs::Span span("agg/signsgd-mv", std::int64_t(n));
  const std::size_t d = grads.cols();
  std::vector<float> out(d);
  common::parallel_chunks(
      d, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t j = begin; j < end; ++j) {
          // Majority vote over {-1, 0, +1}; ties (vote == 0) emit 0.
          long vote = 0;
          for (std::size_t i = 0; i < n; ++i) {
            const float v = grads.at(i, j);
            vote += v > 0.0f ? 1 : (v < 0.0f ? -1 : 0);
          }
          out[j] = static_cast<float>(
              step_ * (vote > 0 ? 1.0 : (vote < 0 ? -1.0 : 0.0)));
        }
      });
  return out;
}

}  // namespace signguard::agg
