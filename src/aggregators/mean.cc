#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/vecops.h"
#include "obs/trace.h"

namespace signguard::agg {

std::vector<float> MeanAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext&) {
  check_grads(grads);
  obs::Span span("agg/mean", std::int64_t(grads.rows()));
  return vec::mean_of(grads);
}

}  // namespace signguard::agg
