#include "aggregators/baselines.h"
#include "aggregators/internal.h"
#include "common/vecops.h"

namespace signguard::agg {

std::vector<float> MeanAggregator::aggregate(
    const common::GradientMatrix& grads, const GarContext&) {
  check_grads(grads);
  return vec::mean_of(grads);
}

}  // namespace signguard::agg
