#include "aggregators/aggregator.h"

#include <cassert>

namespace signguard::agg {

// Shared precondition check for every GAR implementation.
void check_grads(std::span<const std::vector<float>> grads) {
  assert(!grads.empty());
#ifndef NDEBUG
  for (const auto& g : grads) assert(g.size() == grads.front().size());
#else
  (void)grads;
#endif
}

}  // namespace signguard::agg
