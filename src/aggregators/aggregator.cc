#include "aggregators/aggregator.h"

#include <stdexcept>

#include "aggregators/internal.h"

namespace signguard::agg {

// Shared precondition checks for the GAR implementations. Degenerate
// shapes are caller errors that must surface as typed exceptions in
// every build mode — an n = 0 round reaching a rule would otherwise hit
// (n - 1) / 2 underflow and out-of-bounds row reads.
void check_grads(std::span<const std::vector<float>> grads) {
  if (grads.empty())
    throw std::invalid_argument("aggregate: empty gradient set");
  for (const auto& g : grads)
    if (g.size() != grads.front().size())
      throw std::invalid_argument(
          "aggregate: inconsistent gradient dimensions");
}

void check_grads(const common::GradientMatrix& grads) {
  if (grads.empty())
    throw std::invalid_argument("aggregate: empty gradient set");
}

std::vector<float> Aggregator::aggregate(
    std::span<const std::vector<float>> grads, const GarContext& ctx) {
  check_grads(grads);
  return aggregate(common::GradientMatrix::from_vectors(grads), ctx);
}

}  // namespace signguard::agg
