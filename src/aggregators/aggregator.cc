#include "aggregators/aggregator.h"

#include <cassert>

#include "aggregators/internal.h"

namespace signguard::agg {

// Shared precondition checks for the GAR implementations.
void check_grads(std::span<const std::vector<float>> grads) {
  assert(!grads.empty());
#ifndef NDEBUG
  for (const auto& g : grads) assert(g.size() == grads.front().size());
#else
  (void)grads;
#endif
}

void check_grads(const common::GradientMatrix& grads) {
  assert(!grads.empty());
  (void)grads;
}

std::vector<float> Aggregator::aggregate(
    std::span<const std::vector<float>> grads, const GarContext& ctx) {
  check_grads(grads);
  return aggregate(common::GradientMatrix::from_vectors(grads), ctx);
}

}  // namespace signguard::agg
